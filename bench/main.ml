(* Benchmark entry point.

   Default mode regenerates every experiment table/figure of the
   reproduction (DESIGN.md §3) as aligned text tables, then runs the
   Bechamel section: one [Test.make] per experiment table (a scaled-down
   run, so per-experiment cost is tracked like any other bench) plus
   micro-benchmarks of the hot substrate paths.

     dune exec bench/main.exe                 # full suite + bechamel
     dune exec bench/main.exe -- --quick      # scaled-down tables
     dune exec bench/main.exe -- f2 t2        # subset by experiment id
     dune exec bench/main.exe -- --bechamel   # bechamel section only
     dune exec bench/main.exe -- --tables     # tables only
     dune exec bench/main.exe -- --json LABEL # also write BENCH_LABEL.json

   With --quick the bechamel section drops the per-table meso-benchmarks
   and shrinks the measurement quota — the shape CI's bench-smoke step
   runs.  --json LABEL writes BENCH_<LABEL>.json (schema: DESIGN.md §8)
   capturing whatever sections ran, plus a deterministic wire-cost probe
   (messages and bytes per committed command, from the network
   counters). *)

module Registry = Rsmr_experiments.Registry
module Table = Rsmr_experiments.Table
module Counters = Rsmr_sim.Counters

let run_experiments ~quick ids =
  let entries =
    match ids with
    | [] -> Registry.all
    | ids ->
      List.filter_map
        (fun id ->
          match Registry.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment id: %s\n" id;
            None)
        ids
  in
  Printf.printf
    "Reconfigurable SMR from non-reconfigurable building blocks — evaluation \
     suite (%s mode)\n"
    (if quick then "quick" else "full");
  List.map
    (fun (e : Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let table = e.Registry.run ~quick () in
      Table.print table;
      let wall = Unix.gettimeofday () -. t0 in
      Printf.printf "  [%s finished in %.1fs wall]\n%!" e.Registry.id wall;
      (e.Registry.id, wall))
    entries

(* --- Bechamel --- *)

(* A representative tunnelled payload for the wire micro-benchmarks: a
   16-command Accept_multi batch inside a Wire.Block, the shape the
   sizer sees on every leader fan-out under batching. *)
let bench_block_msg () =
  let kinds =
    List.init 16 (fun i ->
        Rsmr_smr.Log.Value (String.make 32 (Char.chr (97 + (i mod 26)))))
  in
  let msg =
    Rsmr_smr.Msg.Accept_multi
      {
        ballot = { Rsmr_smr.Ballot.round = 7; node = 2 };
        from_index = 42;
        kinds;
        commit_index = 41;
      }
  in
  Rsmr_core.Wire.Block { epoch = 3; data = Rsmr_smr.Msg.encode msg }

let micro_tests () =
  let open Bechamel in
  let codec =
    let cmd = Rsmr_app.Kv.Put ("key00000042", String.make 64 'x') in
    Test.make ~name:"kv-command-codec-roundtrip"
      (Staged.stage (fun () ->
           ignore (Rsmr_app.Kv.decode_command (Rsmr_app.Kv.encode_command cmd))))
  in
  let wire_block = bench_block_msg () in
  let wire_size =
    Test.make ~name:"wire-block-size"
      (Staged.stage (fun () -> ignore (Rsmr_core.Wire.size wire_block)))
  in
  let wire_encode =
    Test.make ~name:"wire-block-encode"
      (Staged.stage (fun () -> ignore (Rsmr_core.Wire.encode wire_block)))
  in
  let histogram =
    let h = Rsmr_sim.Histogram.create () in
    Test.make ~name:"histogram-record"
      (Staged.stage (fun () -> Rsmr_sim.Histogram.record h 0.00123))
  in
  let engine =
    Test.make ~name:"engine-10k-timer-events"
      (Staged.stage (fun () ->
           let e = Rsmr_sim.Engine.create () in
           for i = 1 to 10_000 do
             ignore
               (Rsmr_sim.Engine.schedule e
                  ~delay:(float_of_int (i mod 97) /. 100.0)
                  (fun () -> ()))
           done;
           Rsmr_sim.Engine.run e))
  in
  let paxos =
    Test.make ~name:"core-100-commands-3-replicas"
      (Staged.stage (fun () ->
           let module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv) in
           let engine = Rsmr_sim.Engine.create ~seed:3 () in
           let svc = KvCore.create ~engine ~members:[ 0; 1; 2 ] () in
           let cluster = KvCore.cluster svc in
           Rsmr_workload.Driver.preload ~cluster ~client:99
             ~commands:
               (Rsmr_workload.Kv_gen.preload_commands ~n_keys:100 ~value_size:32)
             ~deadline:30.0 ()))
  in
  [ codec; wire_size; wire_encode; histogram; engine; paxos ]

let experiment_table_tests () =
  let open Bechamel in
  (* One Test.make per experiment table, running its quick variant. *)
  List.map
    (fun (e : Registry.entry) ->
      Test.make
        ~name:("table-" ^ String.lowercase_ascii e.Registry.id)
        (Staged.stage (fun () -> ignore (e.Registry.run ~quick:true ()))))
    Registry.all

let run_bechamel ~quick () =
  let open Bechamel in
  print_endline "\n== Bechamel micro/meso benchmarks ==";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    if quick then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.25) ()
    else Benchmark.cfg ~limit:40 ~quota:(Time.second 1.0) ()
  in
  let tests =
    if quick then micro_tests () else micro_tests () @ experiment_table_tests ()
  in
  let grouped = Test.make_grouped ~name:"rsmr" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-45s %15s\n" name "-"
      else if ns > 1e9 then Printf.printf "%-45s %12.2f s/run\n" name (ns /. 1e9)
      else if ns > 1e6 then Printf.printf "%-45s %12.2f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "%-45s %12.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "%-45s %12.0f ns/run\n" name ns)
    rows;
  rows

(* --- wire-cost probe --- *)

(* The simulator passes messages by value, so network counters give exact,
   host-independent wire accounting.  Pump a fixed workload through a
   3-replica cluster and report messages/bytes per committed command.

   The probe measures the steady-state marginal cost: a short warm-up
   preload first elects a leader and settles the clients (otherwise the
   pre-election redirect churn — a fixed startup cost — dominates the
   per-command figure), then the measured run reports the counter delta
   across exactly [n] commands. *)
let wire_cost () =
  let module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv) in
  let module Registry = Rsmr_obs.Registry in
  let module Span = Rsmr_obs.Span in
  let engine = Rsmr_sim.Engine.create ~seed:3 () in
  let svc = KvCore.create ~engine ~members:[ 0; 1; 2 ] () in
  let cluster = KvCore.cluster svc in
  let obs = cluster.Rsmr_iface.Cluster.obs in
  let warmup =
    Rsmr_workload.Kv_gen.preload_commands ~n_keys:50 ~value_size:32
  in
  Rsmr_workload.Driver.preload ~cluster ~client:98 ~commands:warmup
    ~deadline:60.0 ();
  let net = Registry.counters obs "net" in
  let sent0 = Counters.get net "sent" in
  let bytes0 = Counters.get net "bytes_sent" in
  (* Span collection rides the measured run only: every command's
     submit -> applied -> replied path lands in the metrics document. *)
  let coll = Span.collect (Registry.bus obs) in
  let commands =
    Rsmr_workload.Kv_gen.preload_commands ~n_keys:500 ~value_size:32
  in
  let n = List.length commands in
  Rsmr_workload.Driver.preload ~cluster ~client:99 ~commands ~deadline:120.0 ();
  let spans = Span.finalize coll in
  Span.record obs spans;
  let summary = Span.summarize spans in
  let sent = Counters.get net "sent" - sent0 in
  let bytes = Counters.get net "bytes_sent" - bytes0 in
  let fn = float_of_int n in
  ( [
      ("commands", float_of_int n);
      ("messages_sent", float_of_int sent);
      ("bytes_sent", float_of_int bytes);
      ("messages_per_command", float_of_int sent /. fn);
      ("bytes_per_command", float_of_int bytes /. fn);
      ("span_resolved_fraction", Span.resolved_fraction summary);
    ],
    obs )

(* Same probe at platform scale: two composed shards plus the replicated
   directory over one pool, all overlays accounting into a shared
   registry — so the per-command figures price the whole platform,
   including the directory's (amortised) publish traffic.  Gated in CI as
   shard2_messages_per_command / shard2_bytes_per_command. *)
let shard_wire_cost () =
  let module Platform = Rsmr_shard.Platform in
  let module Keyspace = Rsmr_shard.Keyspace in
  let module Registry = Rsmr_obs.Registry in
  let engine = Rsmr_sim.Engine.create ~seed:3 () in
  let n_keys = 500 in
  let pf =
    Platform.Core.create ~engine ~pool:[ 0; 1; 2; 3; 4; 5 ]
      ~shards:[ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]
      ~keyspace:(Keyspace.ranges ~shards:2 ~n_keys)
      ()
  in
  let cluster = Platform.Core.cluster pf in
  let client = Platform.Core.first_client_id pf in
  let warmup = Rsmr_workload.Kv_gen.preload_commands ~n_keys:50 ~value_size:32 in
  Rsmr_workload.Driver.preload ~cluster ~client ~commands:warmup ~deadline:60.0
    ();
  let net = Registry.counters (Platform.Core.obs pf) "net" in
  let sent0 = Counters.get net "sent" in
  let bytes0 = Counters.get net "bytes_sent" in
  let commands =
    Rsmr_workload.Kv_gen.preload_commands ~n_keys ~value_size:32
  in
  let n = List.length commands in
  Rsmr_workload.Driver.preload ~cluster ~client:(client + 1) ~commands
    ~deadline:120.0 ();
  let sent = Counters.get net "sent" - sent0 in
  let bytes = Counters.get net "bytes_sent" - bytes0 in
  let fn = float_of_int n in
  [
    ("shard2_commands", float_of_int n);
    ("shard2_messages_per_command", float_of_int sent /. fn);
    ("shard2_bytes_per_command", float_of_int bytes /. fn);
  ]

(* Per-strategy handoff accounting: one fleet replacement under each
   composition-driver reconfiguration strategy, measured in virtual time.
   The wedge->announce window comes from the service's own
   [wedged_window_s] histogram (labelled by strategy) and the transfer
   volume from the svc counter — both simulator-exact, so they gate in CI
   like the wire-cost fields.  This is where the matchmaker claim is
   priced: its early prepare should shrink the window below composed's
   for the same transfer bytes.  The probe runs over the WAN latency
   model: with sub-millisecond RTTs the prepare->wedge gap (one commit
   round) is too small for the head start to be measurable. *)
let reconfig_cost () =
  let module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv) in
  let module Registry = Rsmr_obs.Registry in
  let module Strategy = Rsmr_iface.Reconfig_strategy in
  let probe strategy =
    let name = strategy.Strategy.name in
    let engine = Rsmr_sim.Engine.create ~seed:3 () in
    let svc =
      KvCore.create ~engine ~latency:Rsmr_net.Latency.wan
        ~options:{ Rsmr_core.Options.default with Rsmr_core.Options.strategy }
        ~universe:[ 0; 1; 2; 3; 4; 5 ] ~members:[ 0; 1; 2 ] ()
    in
    let cluster = KvCore.cluster svc in
    let obs = cluster.Rsmr_iface.Cluster.obs in
    Rsmr_workload.Driver.preload ~cluster ~client:98
      ~commands:
        (Rsmr_workload.Kv_gen.preload_commands ~n_keys:200 ~value_size:64)
      ~deadline:60.0 ();
    Rsmr_iface.Overlay.reconfigure cluster.Rsmr_iface.Cluster.control
      [ 3; 4; 5 ];
    Rsmr_sim.Engine.run
      ~until:(Rsmr_sim.Engine.now engine +. 30.0)
      engine;
    let h =
      Registry.histogram obs "wedged_window_s" ~labels:[ ("strategy", name) ]
    in
    let svcc = Registry.counters obs "svc" in
    [
      (name ^ "_wedged_window_ms", Rsmr_sim.Histogram.mean h *. 1000.0);
      ( name ^ "_transfer_bytes",
        float_of_int (Counters.get svcc "transfer_bytes") );
    ]
  in
  List.concat_map probe
    [ Strategy.composed; Strategy.matchmaker; Strategy.stopworld ]

(* --- machine-readable output (--json) --- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

let json_assoc b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\": ";
      if Float.is_nan v then Buffer.add_string b "null"
      else Printf.bprintf b "%.6g" v)
    fields;
  Buffer.add_char b '}'

let write_json ~label ~bechamel ~experiments ~wire =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"rsmr-bench/1\",\n  \"label\": \"";
  json_escape b label;
  Buffer.add_string b "\",\n  \"bechamel_ns_per_run\": ";
  json_assoc b bechamel;
  Buffer.add_string b ",\n  \"experiments_wall_s\": ";
  json_assoc b experiments;
  Buffer.add_string b ",\n  \"wire_cost\": ";
  json_assoc b wire;
  Buffer.add_string b "\n}\n";
  let path = "BENCH_" ^ label ^ ".json" in
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path

let () =
  let argv = Array.to_list Sys.argv |> List.tl in
  let json_label = ref None in
  let rec strip = function
    | [] -> []
    | "--json" :: label :: rest
      when String.length label > 0 && label.[0] <> '-' ->
      json_label := Some label;
      strip rest
    | "--json" :: rest ->
      json_label := Some "run";
      strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip argv in
  let quick = List.mem "--quick" args in
  let bechamel_only = List.mem "--bechamel" args in
  let tables_only = List.mem "--tables" args in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let experiments = ref [] in
  let bechamel = ref [] in
  if bechamel_only then bechamel := run_bechamel ~quick ()
  else begin
    experiments := run_experiments ~quick ids;
    if not tables_only then bechamel := run_bechamel ~quick ()
  end;
  match !json_label with
  | Some label ->
    (* The schema promises experiment wall times; if only the bechamel
       section ran (e.g. CI's `--bechamel --quick --json ci`), take them
       from a quick pass instead of emitting an empty object. *)
    if !experiments = [] then experiments := run_experiments ~quick:true ids;
    let wire, obs = wire_cost () in
    let wire = wire @ shard_wire_cost () @ reconfig_cost () in
    write_json ~label ~bechamel:!bechamel ~experiments:!experiments ~wire;
    Rsmr_obs.Registry.set_meta obs "label" label;
    let mpath = "METRICS_" ^ label ^ ".json" in
    Rsmr_obs.Registry.save obs ~path:mpath;
    Printf.printf "wrote %s\n%!" mpath
  | None -> ()
