(* Wire-cost regression gate.

     dune exec bench/bench_gate.exe -- BASELINE.json CANDIDATE.json

   Compares the deterministic wire-cost fields of two rsmr-bench/1
   documents (BENCH_*.json) and exits non-zero if the candidate regresses
   more than [tolerance] over the committed baseline.  Only the
   simulator-exact fields are gated — messages_per_command and
   bytes_per_command come from virtual-time network counters, so they are
   bit-stable across hosts; the bechamel timings are NOT gated (CI
   runners are too noisy for wall-clock thresholds).

   The parser is a deliberate micro-scanner for the flat one-line-per-
   section JSON that bench/main.ml emits — no JSON dependency, and a
   malformed or field-free document fails loudly rather than passing. *)

let tolerance = 0.15

let fields =
  [
    "messages_per_command";
    "bytes_per_command";
    "shard2_messages_per_command";
    "shard2_bytes_per_command";
    "composed_wedged_window_ms";
    "composed_transfer_bytes";
    "matchmaker_wedged_window_ms";
    "matchmaker_transfer_bytes";
    "stopworld_wedged_window_ms";
    "stopworld_transfer_bytes";
  ]

let read_file path =
  let ic = try open_in path with Sys_error e -> failwith e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Find ["<field>": <number>] in [doc]; numbers are %.6g-printed by the
   writer, so scan the usual float alphabet. *)
let extract doc field =
  let needle = "\"" ^ field ^ "\": " in
  let nl = String.length needle in
  let rec search from =
    match String.index_from_opt doc from '"' with
    | None -> None
    | Some i ->
      if i + nl <= String.length doc && String.sub doc i nl = needle then begin
        let start = i + nl in
        let j = ref start in
        let len = String.length doc in
        while
          !j < len
          && (match doc.[!j] with
              | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
              | _ -> false)
        do
          incr j
        done;
        if !j > start then float_of_string_opt (String.sub doc start (!j - start))
        else None
      end
      else search (i + 1)
  in
  search 0

let () =
  let baseline_path, candidate_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline "usage: bench_gate BASELINE.json CANDIDATE.json";
      exit 2
  in
  let baseline = read_file baseline_path in
  let candidate = read_file candidate_path in
  let failed = ref false in
  List.iter
    (fun field ->
      match (extract baseline field, extract candidate field) with
      | Some b, Some c ->
        let ratio = if b > 0.0 then c /. b else infinity in
        let verdict =
          if ratio > 1.0 +. tolerance then begin
            failed := true;
            "REGRESSION"
          end
          else "ok"
        in
        Printf.printf "%-24s baseline=%-10.4g candidate=%-10.4g %+6.1f%%  %s\n"
          field b c
          ((ratio -. 1.0) *. 100.0)
          verdict
      | b, c ->
        failed := true;
        Printf.printf "%-24s MISSING (baseline %s, candidate %s)\n" field
          (if b = None then "absent" else "present")
          (if c = None then "absent" else "present"))
    fields;
  if !failed then begin
    Printf.eprintf
      "bench gate: wire-cost regression beyond %.0f%% tolerance (or missing \
       field) vs %s\n"
      (tolerance *. 100.0) baseline_path;
    exit 1
  end
  else Printf.printf "bench gate: within %.0f%% of %s\n" (tolerance *. 100.0)
      baseline_path
