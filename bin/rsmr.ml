(* rsmr — command-line front end.

     rsmr experiments [--quick] [ID...]   regenerate evaluation tables
     rsmr run [options]                   ad-hoc scenario, prints stats
     rsmr check [options]                 linearizability check of a run
     rsmr list                            list experiment ids *)

open Cmdliner

module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Common = Rsmr_experiments.Common
module Registry = Rsmr_experiments.Registry
module Table = Rsmr_experiments.Table
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen

let proto_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "core" -> Ok Common.Core
    | "matchmaker" -> Ok Common.Matchmaker
    | "core-nospec" -> Ok Common.Core_nospec
    | "core-noresid" -> Ok Common.Core_noresidual
    | "stopworld" -> Ok Common.Stopworld
    | "raft" -> Ok Common.Raft
    | other -> Error (`Msg (Printf.sprintf "unknown protocol %S" other))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Common.proto_name p))

let members_conv =
  let parse s =
    try Ok (String.split_on_char ',' s |> List.map int_of_string)
    with Failure _ -> Error (`Msg "expected comma-separated node ids")
  in
  Arg.conv
    ( parse,
      fun ppf ms ->
        Format.pp_print_string ppf (String.concat "," (List.map string_of_int ms)) )

(* --- experiments --- *)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scaled-down parameter sweeps.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let run quick ids =
    let entries =
      match ids with
      | [] -> Registry.all
      | ids ->
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
              Printf.eprintf "unknown experiment: %s\n" id;
              None)
          ids
    in
    List.iter
      (fun (e : Registry.entry) -> Table.print (e.Registry.run ~quick ()))
      entries
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the evaluation tables/figures")
    Term.(const run $ quick $ ids)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Printf.printf "%-4s %s\n" e.Registry.id e.Registry.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const run $ const ())

(* --- ad-hoc run --- *)

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let proto_t =
  Arg.(value & opt proto_conv Common.Core & info [ "proto" ] ~doc:"Protocol: core, matchmaker, core-nospec, core-noresid, stopworld, raft.")

let replicas_t =
  Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Initial replica count.")

let clients_t = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Closed-loop clients.")
let duration_t = Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Load duration (sim s).")
let drop_t = Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"Message drop probability.")
let keys_t = Arg.(value & opt int 1000 & info [ "keys" ] ~doc:"Preloaded key count.")
let read_ratio_t = Arg.(value & opt float 0.5 & info [ "read-ratio" ] ~doc:"Fraction of Gets.")

let reconfig_at_t =
  Arg.(value & opt (some float) None & info [ "reconfigure-at" ] ~doc:"Reconfigure at this time.")

let target_t =
  Arg.(value & opt (some members_conv) None & info [ "target" ] ~doc:"Target members, e.g. 3,4,5.")

let crash_at_t =
  Arg.(value & opt (some float) None & info [ "crash-leader-at" ] ~doc:"Crash the leader at this time.")

let run_scenario seed proto replicas clients duration drop keys read_ratio
    reconfig_at target crash_at =
  let members = List.init replicas Fun.id in
  let universe = List.init (replicas + 3) Fun.id in
  let setup = Common.make ~seed ~drop proto ~members ~universe in
  Printf.printf "protocol=%s replicas=%d clients=%d duration=%gs drop=%g seed=%d\n"
    (Common.proto_name proto) replicas clients duration drop seed;
  Driver.preload ~cluster:setup.Common.cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:keys ~value_size:100)
    ~deadline:600.0 ();
  let t0 = Engine.now setup.Common.engine in
  let rng = Rsmr_sim.Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:keys) ~read_ratio () in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:clients
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration ()
  in
  (match (reconfig_at, target) with
   | Some at, Some members' ->
     Schedule.reconfigure_at setup.Common.cluster ~time:(t0 +. at) members'
   | Some at, None ->
     let shifted = List.map (fun m -> m + 3) members in
     Schedule.reconfigure_at setup.Common.cluster ~time:(t0 +. at) shifted
   | None, _ -> ());
  (match crash_at with
   | Some at ->
     Schedule.at setup.Common.cluster ~time:(t0 +. at) (fun () ->
         match setup.Common.leader () with
         | Some l ->
           Printf.printf "t=+%g crashing leader n%d\n" at l;
           setup.Common.cluster.Rsmr_iface.Cluster.crash l
         | None -> print_endline "no leader to crash")
   | None -> ());
  Common.run_to setup (t0 +. duration +. 10.0);
  Printf.printf "\ncompleted %d of %d submitted\nlatency: %s\n"
    stats.Driver.completed stats.Driver.submitted
    (Format.asprintf "%a" Histogram.pp_summary stats.Driver.latency);
  Printf.printf "members now {%s}\n"
    (String.concat ","
       (List.map string_of_int (setup.Common.cluster.Rsmr_iface.Cluster.members ())));
  let obs = setup.Common.cluster.Rsmr_iface.Cluster.obs in
  Printf.printf "protocol counters: %s\n"
    (Format.asprintf "%a" Rsmr_sim.Counters.pp
       (Rsmr_obs.Registry.counters obs "svc"));
  Printf.printf "network: %s\n"
    (Format.asprintf "%a" Rsmr_sim.Counters.pp
       (Rsmr_obs.Registry.counters obs "net"))

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run an ad-hoc scenario and print statistics")
    Term.(
      const run_scenario $ seed_t $ proto_t $ replicas_t $ clients_t
      $ duration_t $ drop_t $ keys_t $ read_ratio_t $ reconfig_at_t $ target_t
      $ crash_at_t)

(* --- linearizability check --- *)

module RegCore = Rsmr_core.Service.Make (Rsmr_app.Register)
module RegRaft = Rsmr_baselines.Raft.Make (Rsmr_app.Register)
module Lin = Rsmr_checker.Linearizability.Make (Rsmr_app.Register)
module History = Rsmr_checker.History

let check_scenario seed proto clients duration drop =
  let engine = Engine.create ~seed () in
  let members = [ 0; 1; 2 ] and universe = List.init 6 Fun.id in
  let cluster =
    match proto with
    | Common.Raft -> RegRaft.cluster (RegRaft.create ~engine ~drop ~members ~universe ())
    | _ -> RegCore.cluster (RegCore.create ~engine ~drop ~members ~universe ())
  in
  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  let gen ~client:_ ~seq:_ =
    match Rsmr_sim.Rng.int rng 3 with
    | 0 -> Rsmr_app.Register.encode_command Rsmr_app.Register.Read
    | 1 ->
      Rsmr_app.Register.encode_command
        (Rsmr_app.Register.Write (Rsmr_sim.Rng.int rng 100))
    | _ ->
      let e = Rsmr_sim.Rng.int rng 100 in
      Rsmr_app.Register.encode_command
        (Rsmr_app.Register.Cas (e, Rsmr_sim.Rng.int rng 100))
  in
  let h = History.create () in
  let on_event (e : Driver.event) =
    History.add h
      {
        History.client = e.Driver.ev_client;
        cmd = e.Driver.ev_cmd;
        rsp = e.Driver.ev_rsp;
        invoked = e.Driver.ev_invoked;
        replied = e.Driver.ev_replied;
      }
  in
  ignore
    (Driver.run_closed ~cluster ~n_clients:clients ~first_client_id:100 ~gen
       ~on_event ~start:0.5 ~duration ());
  Schedule.reconfigure_at cluster ~time:(duration /. 2.0) [ 3; 4; 5 ];
  Engine.run ~until:(duration +. 30.0) engine;
  Printf.printf "history: %d operations, peak concurrency %d\n"
    (History.length h) (History.concurrency h);
  match Lin.check h with
  | Lin.Linearizable ->
    print_endline "result: LINEARIZABLE";
    exit 0
  | Lin.Not_linearizable ->
    print_endline "result: NOT LINEARIZABLE — protocol bug!";
    exit 1
  | Lin.Inconclusive ->
    print_endline "result: inconclusive (checker budget)";
    exit 2

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Drive a register workload across a reconfiguration and verify the \
          recorded history is linearizable")
    Term.(
      const check_scenario $ seed_t $ proto_t
      $ Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
      $ Arg.(value & opt float 6.0 & info [ "duration" ] ~doc:"Load duration.")
      $ drop_t)

let () =
  let doc = "Reconfigurable SMR from non-reconfigurable building blocks" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "rsmr" ~doc)
          [ experiments_cmd; list_cmd; run_cmd; check_cmd ]))
