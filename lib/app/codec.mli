(** Hand-rolled binary codec.

    All wire messages, command envelopes and snapshots go through this
    module, so byte counts reported by the benchmarks reflect a realistic
    serialization rather than [Marshal] internals.  Integers use LEB128
    varints; strings are length-prefixed.

    The writer is abstract over an output {e sink}: a buffer sink that
    accumulates real bytes, or a counting sink that only tallies how many
    bytes {e would} be written.  Codecs define their format once as a
    [write : Writer.t -> t -> unit] body; [encode] runs it against a
    buffer and [size] against a counter, so sizing is a single
    zero-allocation pass that cannot drift from the encoding. *)

exception Truncated
(** Raised by readers on malformed or short input. *)

module Writer : sig
  type t

  val create : ?size_hint:int -> unit -> t
  (** A writer backed by a real byte buffer; drain with {!contents}. *)

  val counter : unit -> t
  (** A counting sink: accepts the same write calls but only accumulates
      {!written}, allocating nothing and copying no payload bytes. *)

  val written : t -> int
  (** Bytes written (or counted) so far.  Valid for both sinks. *)

  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  (** Non-negative varint. *)

  val zigzag : t -> int -> unit
  (** Signed varint. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit

  val nested : t -> (t -> 'a -> unit) -> 'a -> unit
  (** [nested w write_sub v] emits [v] as a length-prefixed sub-message
      directly into [w]'s sink: the body is measured with a counting pass
      for the prefix, then written in place.  Replaces the
      [string w (Sub.encode v)] idiom without the intermediate string. *)

  val contents : t -> string
  (** The accumulated bytes.  Raises [Invalid_argument] on a counting
      sink, which has none. *)

  val length : t -> int
  (** Alias of {!written}. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val bool : t -> bool
  val float : t -> float
  val string : t -> string

  val view : t -> t
  (** Zero-copy counterpart of {!string}: reads a length prefix and
      returns a sub-reader over that window of the {e same} backing
      string (no [String.sub] copy), advancing the parent past it. *)

  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
end
