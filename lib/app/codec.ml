exception Truncated

module Writer = struct
  (* A writer is an output sink: either a real byte buffer or a pure
     byte counter.  Every codec expresses its wire format once as a
     [write] function over this type; [encode] runs it against a buffer
     sink and [size] against a counting sink, so the two can never
     drift and sizing allocates nothing. *)
  type sink = Buf of Buffer.t | Count

  type t = { sink : sink; mutable written : int }

  let create ?(size_hint = 64) () =
    { sink = Buf (Buffer.create size_hint); written = 0 }

  let counter () = { sink = Count; written = 0 }
  let written t = t.written

  (* Buffer.add_uint8 truncates to the low byte rather than raising, so
     the writer stays total (rsmr-flow) — the mask keeps that visible. *)
  let u8 t v =
    t.written <- t.written + 1;
    match t.sink with
    | Buf b -> Buffer.add_uint8 b (v land 0xFF)
    | Count -> ()

  let varint t v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec go v =
      if v < 0x80 then u8 t v
      else begin
        u8 t (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  (* Zigzag over Int64 so the full native-int range roundtrips, including
     min_int, where the shift-based trick overflows. *)
  let zigzag t v =
    let z =
      Int64.logxor
        (Int64.shift_left (Int64.of_int v) 1)
        (Int64.shift_right (Int64.of_int v) 63)
    in
    let rec go z =
      let low = Int64.to_int (Int64.logand z 0x7FL) in
      let rest = Int64.shift_right_logical z 7 in
      if Int64.equal rest 0L then u8 t low
      else begin
        u8 t (0x80 lor low);
        go rest
      end
    in
    go z
  let bool t b = u8 t (if b then 1 else 0)

  let float t f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
    done

  let string t s =
    varint t (String.length s);
    t.written <- t.written + String.length s;
    match t.sink with
    | Buf b -> Buffer.add_string b s
    | Count -> ()

  let option t f = function
    | None -> bool t false
    | Some v ->
      bool t true;
      f t v

  let list t f l =
    varint t (List.length l);
    List.iter (f t) l

  (* Length-prefixed sub-message, written straight into the parent sink.
     The prefix needs the body length up front, so the body is measured
     with a counting pass first; against a buffer sink the body then runs
     a second time for real, against a counting sink the measurement is
     the whole job.  Either way no intermediate string is built, unlike
     the old [string w (Sub.encode v)] idiom which serialized the
     sub-message into a fresh buffer and copied it. *)
  let nested t f v =
    let c = { sink = Count; written = 0 } in
    f c v;
    varint t c.written;
    match t.sink with
    | Buf _ ->
      let before = t.written in
      f t v;
      if t.written - before <> c.written then
        invalid_arg "Codec.Writer.nested: non-deterministic sub-writer"
    | Count -> t.written <- t.written + c.written

  let contents t =
    match t.sink with
    | Buf b -> Buffer.contents b
    | Count -> invalid_arg "Codec.Writer.contents: counting sink"

  let length t = t.written
end

module Reader = struct
  (* [limit] bounds the readable window so a nested [view] shares the
     parent's backing string instead of copying it out with String.sub. *)
  type t = { data : string; mutable pos : int; limit : int }

  let of_string data = { data; pos = 0; limit = String.length data }

  let u8 t =
    if t.pos >= t.limit then raise Truncated;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise Truncated;
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let rec go shift acc =
      if shift > 70 then raise Truncated;
      let b = u8 t in
      let acc =
        Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift)
      in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let z = go 0 0L in
    Int64.to_int
      (Int64.logxor
         (Int64.shift_right_logical z 1)
         (Int64.neg (Int64.logand z 1L)))

  let bool t = u8 t <> 0

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let n = varint t in
    if n < 0 || t.pos + n > t.limit then raise Truncated;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  (* Zero-copy counterpart of [string]: a length-prefixed sub-reader over
     the same backing bytes.  The parent's position skips the window, so
     parent and view never race over the same bytes. *)
  let view t =
    let n = varint t in
    if n < 0 || t.pos + n > t.limit then raise Truncated;
    let v = { data = t.data; pos = t.pos; limit = t.pos + n } in
    t.pos <- t.pos + n;
    v

  let option t f = if bool t then Some (f t) else None

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)

  let at_end t = t.pos >= t.limit
end
