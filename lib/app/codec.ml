exception Truncated

module Writer = struct
  type t = Buffer.t

  let create ?(size_hint = 64) () = Buffer.create size_hint
  (* Buffer.add_uint8 truncates to the low byte rather than raising, so
     the writer stays total (rsmr-flow) — the mask keeps that visible. *)
  let u8 t v = Buffer.add_uint8 t (v land 0xFF)

  let varint t v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec go v =
      if v < 0x80 then u8 t v
      else begin
        u8 t (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  (* Zigzag over Int64 so the full native-int range roundtrips, including
     min_int, where the shift-based trick overflows. *)
  let zigzag t v =
    let z =
      Int64.logxor
        (Int64.shift_left (Int64.of_int v) 1)
        (Int64.shift_right (Int64.of_int v) 63)
    in
    let rec go z =
      let low = Int64.to_int (Int64.logand z 0x7FL) in
      let rest = Int64.shift_right_logical z 7 in
      if Int64.equal rest 0L then u8 t low
      else begin
        u8 t (0x80 lor low);
        go rest
      end
    in
    go z
  let bool t b = u8 t (if b then 1 else 0)

  let float t f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let option t f = function
    | None -> bool t false
    | Some v ->
      bool t true;
      f t v

  let list t f l =
    varint t (List.length l);
    List.iter (f t) l

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.data then raise Truncated;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise Truncated;
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let rec go shift acc =
      if shift > 70 then raise Truncated;
      let b = u8 t in
      let acc =
        Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift)
      in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let z = go 0 0L in
    Int64.to_int
      (Int64.logxor
         (Int64.shift_right_logical z 1)
         (Int64.neg (Int64.logand z 1L)))

  let bool t = u8 t <> 0

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let n = varint t in
    if t.pos + n > String.length t.data then raise Truncated;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let option t f = if bool t then Some (f t) else None

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)

  let at_end t = t.pos >= String.length t.data
end
