type command = Read | Write of int | Cas of int * int
type response = Value of int | Written | Cas_result of bool
type t = int

let name = "register"
let init () = 0

let apply t = function
  | Read -> (t, Value t)
  | Write v -> (v, Written)
  | Cas (expected, v) ->
    if t = expected then (v, Cas_result true) else (t, Cas_result false)

let encode_command c =
  let w = Codec.Writer.create () in
  (match c with
   | Read -> Codec.Writer.u8 w 0
   | Write v ->
     Codec.Writer.u8 w 1;
     Codec.Writer.zigzag w v
   | Cas (e, v) ->
     Codec.Writer.u8 w 2;
     Codec.Writer.zigzag w e;
     Codec.Writer.zigzag w v);
  Codec.Writer.contents w

let decode_command s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Read
  | 1 -> Write (Codec.Reader.zigzag r)
  | 2 ->
    let e = Codec.Reader.zigzag r in
    Cas (e, Codec.Reader.zigzag r)
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let encode_response resp =
  let w = Codec.Writer.create () in
  (match resp with
   | Value v ->
     Codec.Writer.u8 w 0;
     Codec.Writer.zigzag w v
   | Written -> Codec.Writer.u8 w 1
   | Cas_result b ->
     Codec.Writer.u8 w 2;
     Codec.Writer.bool w b);
  Codec.Writer.contents w

let decode_response s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Value (Codec.Reader.zigzag r)
  | 1 -> Written
  | 2 -> Cas_result (Codec.Reader.bool r)
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let snapshot t =
  let w = Codec.Writer.create () in
  Codec.Writer.zigzag w t;
  Codec.Writer.contents w

let restore s = Codec.Reader.zigzag (Codec.Reader.of_string s)
let equal_response (a : response) b = a = b

let pp_command ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write v -> Format.fprintf ppf "write(%d)" v
  | Cas (e, v) -> Format.fprintf ppf "cas(%d,%d)" e v

let pp_response ppf = function
  | Value v -> Format.fprintf ppf "value(%d)" v
  | Written -> Format.pp_print_string ppf "written"
  | Cas_result b -> Format.fprintf ppf "cas(%b)" b
