(** The configuration directory as a replicated application.

    Same monotone-epoch semantics as the single-node oracle
    ({!Rsmr_core.Directory} in prose): per service name, a strictly newer
    epoch replaces the entry, a same-epoch update may refresh the leader
    hint, and stale updates are ignored — so redelivered or reordered
    [Update]s are harmless.  Hosting this on a composed RSMR instance is
    the paper's own recursion: the directory replicated "with the same
    machinery".

    Node ids are plain ints ([rsmr_app] does not depend on [rsmr_net]);
    the hosting layer converts. *)

type entry = { epoch : int; members : int list; leader : int option }

type command =
  | Lookup of string
  | Update of { name : string; epoch : int; members : int list;
                leader : int option }

type response = Info of entry option | Acked

include State_machine.S
  with type command := command
   and type response := response

val cardinal : t -> int
val find : t -> string -> entry option
