type command = Incr of int | Read
type response = Current of int
type t = int

let name = "counter"
let init () = 0

let apply t = function
  | Incr n -> (t + n, Current (t + n))
  | Read -> (t, Current t)

let encode_command c =
  let w = Codec.Writer.create () in
  (match c with
   | Incr n ->
     Codec.Writer.u8 w 0;
     Codec.Writer.zigzag w n
   | Read -> Codec.Writer.u8 w 1);
  Codec.Writer.contents w

let decode_command s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Incr (Codec.Reader.zigzag r)
  | 1 -> Read
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let encode_response (Current n) =
  let w = Codec.Writer.create () in
  Codec.Writer.zigzag w n;
  Codec.Writer.contents w

let decode_response s =
  Current (Codec.Reader.zigzag (Codec.Reader.of_string s))
[@@rsmr.deterministic] [@@rsmr.total]

let snapshot t = encode_response (Current t)
let restore s = match decode_response s with Current n -> n
let equal_response (Current a) (Current b) = a = b
let pp_command ppf = function
  | Incr n -> Format.fprintf ppf "incr(%d)" n
  | Read -> Format.pp_print_string ppf "read"

let pp_response ppf (Current n) = Format.fprintf ppf "current(%d)" n
let value t = t
