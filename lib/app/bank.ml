module Smap = Map.Make (String)

type command =
  | Open of string * int
  | Transfer of string * string * int
  | Balance of string
  | Total

type response = Ok | Insufficient | No_account | Amount of int
type t = int Smap.t

let name = "bank"
let init () = Smap.empty

let apply t = function
  | Open (acct, amount) -> (Smap.add acct amount t, Ok)
  | Transfer (src, dst, amount) -> (
    match (Smap.find_opt src t, Smap.find_opt dst t) with
    | Some s, Some _ when String.equal src dst ->
      (* Self-transfer: legal but a no-op. *)
      if s >= amount then (t, Ok) else (t, Insufficient)
    | Some s, Some d ->
      if s >= amount then
        (Smap.add src (s - amount) (Smap.add dst (d + amount) t), Ok)
      else (t, Insufficient)
    | _ -> (t, No_account))
  | Balance acct -> (
    match Smap.find_opt acct t with
    | Some b -> (t, Amount b)
    | None -> (t, No_account))
  | Total -> (t, Amount (Smap.fold (fun _ b acc -> acc + b) t 0))

let encode_command c =
  let w = Codec.Writer.create () in
  (match c with
   | Open (a, n) ->
     Codec.Writer.u8 w 0;
     Codec.Writer.string w a;
     Codec.Writer.zigzag w n
   | Transfer (s, d, n) ->
     Codec.Writer.u8 w 1;
     Codec.Writer.string w s;
     Codec.Writer.string w d;
     Codec.Writer.zigzag w n
   | Balance a ->
     Codec.Writer.u8 w 2;
     Codec.Writer.string w a
   | Total -> Codec.Writer.u8 w 3);
  Codec.Writer.contents w

let decode_command s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 ->
    let a = Codec.Reader.string r in
    Open (a, Codec.Reader.zigzag r)
  | 1 ->
    let src = Codec.Reader.string r in
    let dst = Codec.Reader.string r in
    Transfer (src, dst, Codec.Reader.zigzag r)
  | 2 -> Balance (Codec.Reader.string r)
  | 3 -> Total
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let encode_response resp =
  let w = Codec.Writer.create () in
  (match resp with
   | Ok -> Codec.Writer.u8 w 0
   | Insufficient -> Codec.Writer.u8 w 1
   | No_account -> Codec.Writer.u8 w 2
   | Amount n ->
     Codec.Writer.u8 w 3;
     Codec.Writer.zigzag w n);
  Codec.Writer.contents w

let decode_response s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Ok
  | 1 -> Insufficient
  | 2 -> No_account
  | 3 -> Amount (Codec.Reader.zigzag r)
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let snapshot t =
  let w = Codec.Writer.create ~size_hint:1024 () in
  Codec.Writer.varint w (Smap.cardinal t);
  Smap.iter
    (fun k v ->
      Codec.Writer.string w k;
      Codec.Writer.zigzag w v)
    t;
  Codec.Writer.contents w

let restore s =
  let r = Codec.Reader.of_string s in
  let n = Codec.Reader.varint r in
  let rec go acc i =
    if i = n then acc
    else
      let k = Codec.Reader.string r in
      let v = Codec.Reader.zigzag r in
      go (Smap.add k v acc) (i + 1)
  in
  go Smap.empty 0

let equal_response (a : response) b = a = b

let pp_command ppf = function
  | Open (a, n) -> Format.fprintf ppf "open(%s,%d)" a n
  | Transfer (s, d, n) -> Format.fprintf ppf "transfer(%s->%s,%d)" s d n
  | Balance a -> Format.fprintf ppf "balance(%s)" a
  | Total -> Format.pp_print_string ppf "total"

let pp_response ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Insufficient -> Format.pp_print_string ppf "insufficient"
  | No_account -> Format.pp_print_string ppf "no-account"
  | Amount n -> Format.fprintf ppf "amount(%d)" n

let total t = Smap.fold (fun _ b acc -> acc + b) t 0
