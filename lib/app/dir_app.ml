(* The directory as an application: the same monotone-epoch semantics as
   the in-process oracle (lib/core/directory.ml), expressed as a pure
   state machine so it can be hosted on its own composed RSMR instance —
   the paper's recursion.  Node ids are plain ints here: rsmr_app does
   not depend on rsmr_net, and the composition layer owns the mapping. *)

module Smap = Map.Make (String)

type entry = { epoch : int; members : int list; leader : int option }

type command =
  | Lookup of string
  | Update of { name : string; epoch : int; members : int list;
                leader : int option }

type response = Info of entry option | Acked
type t = entry Smap.t

let name = "dir"
let init () = Smap.empty

(* Exactly Directory.update: strictly newer epochs replace the entry;
   a same-epoch update may refresh the leader hint; stale epochs are
   ignored (idempotence under replay). *)
let merge prev ~epoch ~members ~leader =
  match prev with
  | None -> Some { epoch; members; leader }
  | Some e when epoch > e.epoch -> Some { epoch; members; leader }
  | Some e when epoch = e.epoch ->
    (match leader with Some _ -> Some { e with leader } | None -> Some e)
  | Some _ -> prev

let apply t = function
  | Lookup n -> (t, Info (Smap.find_opt n t))
  | Update { name = n; epoch; members; leader } ->
    let merged = merge (Smap.find_opt n t) ~epoch ~members ~leader in
    let t =
      match merged with None -> t | Some e -> Smap.add n e t
    in
    (t, Acked)

let write_entry w (e : entry) =
  Codec.Writer.varint w e.epoch;
  Codec.Writer.list w Codec.Writer.varint e.members;
  Codec.Writer.option w Codec.Writer.varint e.leader

let read_entry r =
  let epoch = Codec.Reader.varint r in
  let members = Codec.Reader.list r Codec.Reader.varint in
  let leader = Codec.Reader.option r Codec.Reader.varint in
  { epoch; members; leader }
[@@rsmr.deterministic] [@@rsmr.total]

let encode_command c =
  let w = Codec.Writer.create () in
  (match c with
   | Lookup n ->
     Codec.Writer.u8 w 0;
     Codec.Writer.string w n
   | Update { name = n; epoch; members; leader } ->
     Codec.Writer.u8 w 1;
     Codec.Writer.string w n;
     Codec.Writer.varint w epoch;
     Codec.Writer.list w Codec.Writer.varint members;
     Codec.Writer.option w Codec.Writer.varint leader);
  Codec.Writer.contents w

let decode_command s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Lookup (Codec.Reader.string r)
  | 1 ->
    let n = Codec.Reader.string r in
    let epoch = Codec.Reader.varint r in
    let members = Codec.Reader.list r Codec.Reader.varint in
    let leader = Codec.Reader.option r Codec.Reader.varint in
    Update { name = n; epoch; members; leader }
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let encode_response resp =
  let w = Codec.Writer.create () in
  (match resp with
   | Info e ->
     Codec.Writer.u8 w 0;
     Codec.Writer.option w write_entry e
   | Acked -> Codec.Writer.u8 w 1);
  Codec.Writer.contents w

let decode_response s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Info (Codec.Reader.option r read_entry)
  | 1 -> Acked
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let snapshot t =
  let w = Codec.Writer.create ~size_hint:1024 () in
  Codec.Writer.varint w (Smap.cardinal t);
  Smap.iter
    (fun n e ->
      Codec.Writer.string w n;
      write_entry w e)
    t;
  Codec.Writer.contents w

let restore s =
  let r = Codec.Reader.of_string s in
  let n = Codec.Reader.varint r in
  let rec go acc i =
    if i = n then acc
    else
      let k = Codec.Reader.string r in
      let e = read_entry r in
      go (Smap.add k e acc) (i + 1)
  in
  go Smap.empty 0

let equal_response (a : response) b = a = b

let pp_ids ppf ids =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    ids

let pp_entry ppf (e : entry) =
  Format.fprintf ppf "e%d:%a:%a" e.epoch pp_ids e.members
    (Format.pp_print_option Format.pp_print_int)
    e.leader

let pp_command ppf = function
  | Lookup n -> Format.fprintf ppf "lookup(%s)" n
  | Update { name = n; epoch; members; leader } ->
    Format.fprintf ppf "update(%s,%a)" n pp_entry { epoch; members; leader }

let pp_response ppf = function
  | Info e ->
    Format.fprintf ppf "info(%a)" (Format.pp_print_option pp_entry) e
  | Acked -> Format.pp_print_string ppf "acked"

let cardinal = Smap.cardinal
let find t n = Smap.find_opt n t
