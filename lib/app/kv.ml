module Smap = Map.Make (String)

type command =
  | Get of string
  | Put of string * string
  | Delete of string
  | Cas of string * string option * string
  | Append of string * string

type response = Value of string option | Ok | Cas_result of bool
type t = string Smap.t

let name = "kv"
let init () = Smap.empty

let apply t = function
  | Get k -> (t, Value (Smap.find_opt k t))
  | Put (k, v) -> (Smap.add k v t, Ok)
  | Delete k -> (Smap.remove k t, Ok)
  | Cas (k, expected, v) ->
    if Smap.find_opt k t = expected then (Smap.add k v t, Cas_result true)
    else (t, Cas_result false)
  | Append (k, v) ->
    let current = Option.value (Smap.find_opt k t) ~default:"" in
    (Smap.add k (current ^ v) t, Ok)

let encode_command c =
  let w = Codec.Writer.create () in
  (match c with
   | Get k ->
     Codec.Writer.u8 w 0;
     Codec.Writer.string w k
   | Put (k, v) ->
     Codec.Writer.u8 w 1;
     Codec.Writer.string w k;
     Codec.Writer.string w v
   | Delete k ->
     Codec.Writer.u8 w 2;
     Codec.Writer.string w k
   | Cas (k, e, v) ->
     Codec.Writer.u8 w 3;
     Codec.Writer.string w k;
     Codec.Writer.option w Codec.Writer.string e;
     Codec.Writer.string w v
   | Append (k, v) ->
     Codec.Writer.u8 w 4;
     Codec.Writer.string w k;
     Codec.Writer.string w v);
  Codec.Writer.contents w

let decode_command s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Get (Codec.Reader.string r)
  | 1 ->
    let k = Codec.Reader.string r in
    Put (k, Codec.Reader.string r)
  | 2 -> Delete (Codec.Reader.string r)
  | 3 ->
    let k = Codec.Reader.string r in
    let e = Codec.Reader.option r Codec.Reader.string in
    Cas (k, e, Codec.Reader.string r)
  | 4 ->
    let k = Codec.Reader.string r in
    Append (k, Codec.Reader.string r)
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let encode_response resp =
  let w = Codec.Writer.create () in
  (match resp with
   | Value v ->
     Codec.Writer.u8 w 0;
     Codec.Writer.option w Codec.Writer.string v
   | Ok -> Codec.Writer.u8 w 1
   | Cas_result b ->
     Codec.Writer.u8 w 2;
     Codec.Writer.bool w b);
  Codec.Writer.contents w

let decode_response s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Value (Codec.Reader.option r Codec.Reader.string)
  | 1 -> Ok
  | 2 -> Cas_result (Codec.Reader.bool r)
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let snapshot t =
  let w = Codec.Writer.create ~size_hint:4096 () in
  Codec.Writer.varint w (Smap.cardinal t);
  Smap.iter
    (fun k v ->
      Codec.Writer.string w k;
      Codec.Writer.string w v)
    t;
  Codec.Writer.contents w

let restore s =
  let r = Codec.Reader.of_string s in
  let n = Codec.Reader.varint r in
  let rec go acc i =
    if i = n then acc
    else
      let k = Codec.Reader.string r in
      let v = Codec.Reader.string r in
      go (Smap.add k v acc) (i + 1)
  in
  go Smap.empty 0

let equal_response (a : response) b = a = b

let pp_command ppf = function
  | Get k -> Format.fprintf ppf "get(%s)" k
  | Put (k, v) -> Format.fprintf ppf "put(%s,%s)" k v
  | Delete k -> Format.fprintf ppf "del(%s)" k
  | Cas (k, e, v) ->
    Format.fprintf ppf "cas(%s,%a,%s)" k
      (Format.pp_print_option Format.pp_print_string)
      e v
  | Append (k, v) -> Format.fprintf ppf "append(%s,%s)" k v

let pp_response ppf = function
  | Value v ->
    Format.fprintf ppf "value(%a)"
      (Format.pp_print_option Format.pp_print_string)
      v
  | Ok -> Format.pp_print_string ppf "ok"
  | Cas_result b -> Format.fprintf ppf "cas(%b)" b

let cardinal = Smap.cardinal
let find t k = Smap.find_opt k t
