module Codec = Rsmr_app.Codec
module Register = Rsmr_app.Register
module Kv = Rsmr_app.Kv
module Counter = Rsmr_app.Counter

type command =
  | Reg of Register.command
  | Kv of Kv.command
  | Cnt of Counter.command

type response =
  | Reg_r of Register.response
  | Kv_r of Kv.response
  | Cnt_r of Counter.response

type t = { reg : Register.t; kv : Kv.t; cnt : Counter.t }

let name = "mixed"
let init () = { reg = Register.init (); kv = Kv.init (); cnt = Counter.init () }

let apply t = function
  | Reg c ->
    let reg, r = Register.apply t.reg c in
    ({ t with reg }, Reg_r r)
  | Kv c ->
    let kv, r = Kv.apply t.kv c in
    ({ t with kv }, Kv_r r)
  | Cnt c ->
    let cnt, r = Counter.apply t.cnt c in
    ({ t with cnt }, Cnt_r r)

let encode_command c =
  let w = Codec.Writer.create () in
  (match c with
   | Reg c ->
     Codec.Writer.u8 w 0;
     Codec.Writer.string w (Register.encode_command c)
   | Kv c ->
     Codec.Writer.u8 w 1;
     Codec.Writer.string w (Kv.encode_command c)
   | Cnt c ->
     Codec.Writer.u8 w 2;
     Codec.Writer.string w (Counter.encode_command c));
  Codec.Writer.contents w

let decode_command s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Reg (Register.decode_command (Codec.Reader.string r))
  | 1 -> Kv (Kv.decode_command (Codec.Reader.string r))
  | 2 -> Cnt (Counter.decode_command (Codec.Reader.string r))
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let encode_response rsp =
  let w = Codec.Writer.create () in
  (match rsp with
   | Reg_r r ->
     Codec.Writer.u8 w 0;
     Codec.Writer.string w (Register.encode_response r)
   | Kv_r r ->
     Codec.Writer.u8 w 1;
     Codec.Writer.string w (Kv.encode_response r)
   | Cnt_r r ->
     Codec.Writer.u8 w 2;
     Codec.Writer.string w (Counter.encode_response r));
  Codec.Writer.contents w

let decode_response s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.u8 r with
  | 0 -> Reg_r (Register.decode_response (Codec.Reader.string r))
  | 1 -> Kv_r (Kv.decode_response (Codec.Reader.string r))
  | 2 -> Cnt_r (Counter.decode_response (Codec.Reader.string r))
  | _ -> raise Codec.Truncated
[@@rsmr.deterministic] [@@rsmr.total]

let snapshot t =
  let w = Codec.Writer.create () in
  Codec.Writer.string w (Register.snapshot t.reg);
  Codec.Writer.string w (Kv.snapshot t.kv);
  Codec.Writer.string w (Counter.snapshot t.cnt);
  Codec.Writer.contents w

let restore s =
  let r = Codec.Reader.of_string s in
  let reg = Register.restore (Codec.Reader.string r) in
  let kv = Kv.restore (Codec.Reader.string r) in
  let cnt = Counter.restore (Codec.Reader.string r) in
  { reg; kv; cnt }

let equal_response a b =
  match (a, b) with
  | Reg_r x, Reg_r y -> Register.equal_response x y
  | Kv_r x, Kv_r y -> Kv.equal_response x y
  | Cnt_r x, Cnt_r y -> Counter.equal_response x y
  | (Reg_r _ | Kv_r _ | Cnt_r _), _ -> false

let pp_command ppf = function
  | Reg c -> Format.fprintf ppf "reg:%a" Register.pp_command c
  | Kv c -> Format.fprintf ppf "kv:%a" Kv.pp_command c
  | Cnt c -> Format.fprintf ppf "cnt:%a" Counter.pp_command c

let pp_response ppf = function
  | Reg_r r -> Format.fprintf ppf "reg:%a" Register.pp_response r
  | Kv_r r -> Format.fprintf ppf "kv:%a" Kv.pp_response r
  | Cnt_r r -> Format.fprintf ppf "cnt:%a" Counter.pp_response r

let counter_value t = Counter.value t.cnt

let incr_amount = function Cnt (Counter.Incr n) -> Some n | _ -> None

let incr_of_encoded cmd =
  match decode_command cmd with
  | c -> incr_amount c
  | exception Codec.Truncated -> None
