(** Fault-injection scenarios: a cluster shape, a client workload window
    and a time-ordered fault script, with a compact single-argument text
    form for replay.

    A scenario is pure data — {!Generate} derives one from an integer
    seed, {!Runner} executes it, {!Shrink} edits it.  The text form
    ([to_string]/[of_string]) round-trips exactly, so the one-line
    reproducer the harness prints on failure replays bit-for-bit. *)

type fault =
  | Crash of int  (** node stops sending/receiving (state kept) *)
  | Recover of int
  | Partition of int list list
      (** replica-side groups; the runner attaches clients, directory and
          admin to every group so only replica↔replica links split *)
  | Heal
  | Link_fault of { src : int; dst : int; drop : float }
      (** extra drop probability on one directed link *)
  | Clear_links
  | Duplicate of float  (** duplicate storm: per-message duplication rate *)
  | Drop of float  (** global loss weather *)
  | Reconfigure of int list  (** submit a membership change *)

type event = { at : float; fault : fault }

type t = {
  seed : int;  (** drives every random choice of the run *)
  members : int list;  (** epoch-0 configuration *)
  universe : int list;  (** every node that may ever host a replica *)
  n_clients : int;
  duration : float;  (** client issue window, seconds of virtual time *)
  events : event list;  (** sorted by [at] *)
}

val sort_events : event list -> event list
(** Stable sort by time — ties keep list order, which is also the order
    the runner applies them in. *)

val to_string : t -> string
(** Compact form, e.g.
    [s=7;m=0,1,2;u=0,1,2,3,4;c=3;d=2.5;ev=0.41 crash 1|0.9 recover 1]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] describes the first malformed
    field.  Never raises. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
