module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Counters = Rsmr_sim.Counters
module Network = Rsmr_net.Network
module Driver = Rsmr_workload.Driver
module History = Rsmr_checker.History
module Cluster = Rsmr_iface.Cluster
module Service = Rsmr_core.Service
module Options = Rsmr_core.Options
module Register = Rsmr_app.Register
module Registry = Rsmr_obs.Registry
module Span = Rsmr_obs.Span
module Kv = Rsmr_app.Kv
module Counter = Rsmr_app.Counter

module MixedCore = Service.Make (Mixed)
module MixedRaft = Rsmr_baselines.Raft.Make (Mixed)

(* A crucible protocol IS a reconfiguration strategy: every registered
   strategy value runs through the soak, the composition-driver ones as
   Service option sets and the native ones as their own stacks. *)
module Strategy = Rsmr_iface.Reconfig_strategy

type proto = Strategy.t

let proto_name (p : proto) = p.Strategy.name
let proto_of_string = Strategy.find
let all_protos = Strategy.all

(* Value aliases so call sites read (almost) as before. *)
let core : proto = Strategy.composed
let matchmaker : proto = Strategy.matchmaker
let stopworld : proto = Strategy.stopworld
let raft : proto = Strategy.raft

type report = {
  proto : proto;
  scenario : Scenario.t;
  history : History.t;
  submitted : int;
  completed : int;
  acked_incr : int;
  quiesced : bool;
  converged : bool;
  final_members : int list;
  final_states : (int * string) list;
  final_counter : int option;
  epoch_stats : (int * Service.epoch_stat list) list;
  counters : (string * int) list;
  spans : Span.summary;
  obs : Registry.t;
  events_executed : int;
  end_time : float;
}

let first_client_id = 1000
let workload_start = 0.2
let quiesce_grace = 30.0
let settle_grace = 10.0

(* Uniform face over the three stacks: the cluster interface carries
   submit/reconfigure/crash/recover, everything else (partitions, link
   faults, storm dials, state introspection) goes through these hooks. *)
type stack = {
  cluster : Cluster.t;
  partition : int list list -> unit;
  net_heal : unit -> unit;
  set_link : src:int -> dst:int -> drop:float -> unit;
  clear_links : unit -> unit;
  set_duplicate : float -> unit;
  set_drop : float -> unit;
  snapshot_of : int -> string option;
  stats_of : int -> Service.epoch_stat list;
  svc_counters : Counters.t;
  service_ids : int list;  (* directory + admin client *)
}

let make_stack engine (proto : proto) (sc : Scenario.t) =
  match proto.Strategy.driver with
  | `Composition ->
    let options = { Options.default with Options.strategy = proto } in
    let svc =
      MixedCore.create ~engine ~options ~universe:sc.Scenario.universe
        ~members:sc.Scenario.members ()
    in
    let net = MixedCore.net svc in
    let dir = MixedCore.directory_id svc in
    {
      cluster =
        { (MixedCore.cluster svc) with Cluster.name = proto_name proto };
      partition = (fun groups -> Network.partition net groups);
      net_heal = (fun () -> Network.heal net);
      set_link =
        (fun ~src ~dst ~drop -> Network.set_link_fault net ~src ~dst ~drop);
      clear_links = (fun () -> Network.clear_link_faults net);
      set_duplicate = (fun p -> Network.set_duplicate net p);
      set_drop = (fun p -> Network.set_drop net p);
      snapshot_of =
        (fun n -> Option.map Mixed.snapshot (MixedCore.app_state svc n));
      stats_of = (fun n -> MixedCore.epoch_stats svc n);
      svc_counters = MixedCore.counters svc;
      (* The admin client id is allocated right above the directory id
         (Service.create's documented convention, shared by Raft). *)
      service_ids = [ dir; dir + 1 ];
    }
  | `Native ->
    let svc =
      MixedRaft.create ~engine ~universe:sc.Scenario.universe
        ~members:sc.Scenario.members ()
    in
    let net = MixedRaft.net svc in
    let dir = MixedRaft.directory_id svc in
    {
      cluster = MixedRaft.cluster svc;
      partition = (fun groups -> Network.partition net groups);
      net_heal = (fun () -> Network.heal net);
      set_link =
        (fun ~src ~dst ~drop -> Network.set_link_fault net ~src ~dst ~drop);
      clear_links = (fun () -> Network.clear_link_faults net);
      set_duplicate = (fun p -> Network.set_duplicate net p);
      set_drop = (fun p -> Network.set_drop net p);
      snapshot_of =
        (fun n -> Option.map Mixed.snapshot (MixedRaft.app_state svc n));
      stats_of = (fun _ -> []);
      svc_counters = MixedRaft.counters svc;
      service_ids = [ dir; dir + 1 ];
    }

(* Scenario partitions name replica-side groups only; clients, directory
   and admin ride along in every group so the workload keeps flowing to
   whichever side can serve it. *)
let apply_fault stack ~non_replica fault =
  let control = stack.cluster.Cluster.control in
  match (fault : Scenario.fault) with
  | Scenario.Crash n -> Rsmr_iface.Overlay.crash control n
  | Scenario.Recover n -> Rsmr_iface.Overlay.recover control n
  | Scenario.Partition groups ->
    stack.partition (List.map (fun g -> g @ non_replica) groups)
  | Scenario.Heal -> stack.net_heal ()
  | Scenario.Link_fault { src; dst; drop } -> stack.set_link ~src ~dst ~drop
  | Scenario.Clear_links -> stack.clear_links ()
  | Scenario.Duplicate p -> stack.set_duplicate p
  | Scenario.Drop p -> stack.set_drop p
  | Scenario.Reconfigure target -> Rsmr_iface.Overlay.reconfigure control target

(* Small value domains keep the linearizability search cheap: 8 register
   values, 3 keys × 8 values, increments of 1–3. *)
let gen_of rng =
  let keys = [| "a"; "b"; "c" |] in
  let key () = keys.(Rng.int rng (Array.length keys)) in
  let value () = Printf.sprintf "v%d" (Rng.int rng 8) in
  fun ~client:_ ~seq:_ ->
    let cmd =
      match Rng.int rng 8 with
      | 0 -> Mixed.Reg Register.Read
      | 1 -> Mixed.Reg (Register.Write (Rng.int rng 8))
      | 2 -> Mixed.Reg (Register.Cas (Rng.int rng 8, Rng.int rng 8))
      | 3 -> Mixed.Kv (Kv.Get (key ()))
      | 4 -> Mixed.Kv (Kv.Put (key (), value ()))
      | 5 -> Mixed.Kv (Kv.Append (key (), value ()))
      | 6 -> Mixed.Cnt (Counter.Incr (1 + Rng.int rng 3))
      | _ -> Mixed.Cnt Counter.Read
    in
    Mixed.encode_command cmd

let run proto (sc : Scenario.t) =
  let engine = Engine.create ~seed:sc.Scenario.seed () in
  let stack = make_stack engine proto sc in
  let obs = stack.cluster.Cluster.obs in
  Registry.set_meta obs "seed" (string_of_int sc.Scenario.seed);
  (* Subscribe before the workload starts so every submit is observed. *)
  let coll = Span.collect (Registry.bus obs) in
  let client_ids =
    List.init sc.Scenario.n_clients (fun i -> first_client_id + i)
  in
  let non_replica = stack.service_ids @ client_ids in
  let t_end = workload_start +. sc.Scenario.duration +. 0.05 in
  (* The fault script, offsets relative to workload start. *)
  List.iter
    (fun { Scenario.at; fault } ->
      ignore
        (Engine.at engine ~time:(workload_start +. at) (fun () ->
             apply_fault stack ~non_replica fault)))
    sc.Scenario.events;
  (* Endgame: whatever the script left broken is repaired once the issue
     window closes, so every scenario eventually quiesces and the safety
     oracles judge a settled system. *)
  ignore
    (Engine.at engine ~time:t_end (fun () ->
         stack.net_heal ();
         stack.clear_links ();
         stack.set_duplicate 0.0;
         stack.set_drop 0.0;
         List.iter
           (fun n -> Rsmr_iface.Overlay.recover stack.cluster.Cluster.control n)
           sc.Scenario.universe));
  let history = History.create () in
  let acked_incr = ref 0 in
  let on_event (e : Driver.event) =
    History.add history
      {
        History.client = e.Driver.ev_client;
        cmd = e.Driver.ev_cmd;
        rsp = e.Driver.ev_rsp;
        invoked = e.Driver.ev_invoked;
        replied = e.Driver.ev_replied;
      };
    match Mixed.incr_of_encoded e.Driver.ev_cmd with
    | Some n -> acked_incr := !acked_incr + n
    | None -> ()
  in
  let rng = Rng.split (Engine.rng engine) in
  let stats =
    (* window=4 keeps each client's coalescing buffer fed, so the soak
       exercises Request_batch / multi-slot proposals under every fault
       the script throws, not just the single-command path. *)
    Driver.run_closed ~cluster:stack.cluster
      ~n_clients:sc.Scenario.n_clients ~first_client_id ~gen:(gen_of rng)
      ~think:0.02 ~window:4 ~on_event ~start:workload_start
      ~duration:sc.Scenario.duration ()
  in
  (* Quiescence: past the endgame repair, every submitted command has a
     reply (clients retry forever, so a lost command shows up here). *)
  let quiesced =
    Engine.run_until engine
      ~pred:(fun () ->
        Engine.now engine > t_end
        && stats.Driver.completed >= stats.Driver.submitted)
      ~deadline:(t_end +. quiesce_grace)
    <> None
  in
  (* Convergence: all advertised members expose byte-identical application
     state, and keep doing so for half a virtual second (so a membership
     change still in flight cannot fake a settled cluster). *)
  let members_sorted () =
    List.sort_uniq Int.compare (stack.cluster.Cluster.members ())
  in
  let snapshots () =
    List.map (fun n -> (n, stack.snapshot_of n)) (members_sorted ())
  in
  let converged_now () =
    match snapshots () with
    | [] -> false
    | (_, first) :: rest -> (
      match first with
      | None -> false
      | Some s ->
        List.for_all
          (fun (_, o) -> match o with Some s' -> String.equal s s' | None -> false)
          rest)
  in
  let rec settle deadline =
    if Engine.now engine >= deadline then false
    else
      match Engine.run_until engine ~pred:converged_now ~deadline with
      | None -> false
      | Some t ->
        Engine.run ~until:(t +. 0.5) engine;
        if converged_now () then true else settle deadline
  in
  let converged = quiesced && settle (Engine.now engine +. settle_grace) in
  let final_members = members_sorted () in
  let final_states =
    List.filter_map
      (fun (n, o) -> Option.map (fun s -> (n, s)) o)
      (snapshots ())
  in
  let final_counter =
    match final_states with
    | (_, s) :: _ -> Some (Mixed.counter_value (Mixed.restore s))
    | [] -> None
  in
  let span_list = Span.finalize coll in
  Span.record obs span_list;
  {
    proto;
    scenario = sc;
    history;
    submitted = stats.Driver.submitted;
    completed = stats.Driver.completed;
    acked_incr = !acked_incr;
    quiesced;
    converged;
    final_members;
    final_states;
    final_counter;
    epoch_stats =
      List.map (fun n -> (n, stack.stats_of n)) sc.Scenario.universe;
    counters = Counters.to_list stack.svc_counters;
    spans = Span.summarize span_list;
    obs;
    events_executed = Engine.events_executed engine;
    end_time = Engine.now engine;
  }
