(** The five invariant oracles, judged over a completed {!Runner.report}.

    - {b linearizability}: the client-observed history admits a legal
      total order (Wing–Gong over {!Mixed}, budgeted — a blown budget is
      [Inconclusive], never a verdict).
    - {b exactly-once}: the replicated counter equals the sum of
      acknowledged increments — any retry or residual resubmission that
      double-applied, or any acknowledged-then-lost command, breaks the
      arithmetic.
    - {b epoch-prefix}: no composed-service instance applied a command
      past its wedge index, and every replica that wedged an epoch agrees
      on the wedge index ([Skip] under Raft, which has no wedge).
    - {b residual conservation}: every submitted command eventually
      completed (a residual that was neither resubmitted nor recoverable
      by client retry shows up as a hung client), and the service never
      claims more resubmissions than residuals.
    - {b convergence}: after quiescence all advertised members expose
      byte-identical application state. *)

type verdict =
  | Pass
  | Fail of string
  | Inconclusive of string  (** budget or settledness prevented a verdict *)
  | Skip of string  (** oracle does not apply to this protocol *)

type outcome = {
  lin : verdict;
  exactly_once : verdict;
  epoch_prefix : verdict;
  residual : verdict;
  convergence : verdict;
}

val default_lin_budget : int

val check : ?lin_budget:int -> Runner.report -> outcome

val named : outcome -> (string * verdict) list
(** The five verdicts with their oracle names, fixed order. *)

val failures : outcome -> (string * string) list
val inconclusives : outcome -> (string * string) list

val ok : outcome -> bool
(** No [Fail] verdict ([Inconclusive] and [Skip] are tolerated). *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp : Format.formatter -> outcome -> unit
