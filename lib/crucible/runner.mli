(** Execute one scenario against one protocol stack and collect everything
    the invariant oracles need.

    A run is: build the cluster (over {!Mixed}), schedule the fault script
    (event offsets are relative to the workload start), drive a closed-loop
    client workload for the scenario's duration, repair all faults at the
    end of the issue window, then wait for {e quiescence} (every submitted
    command answered) and {e convergence} (all advertised members expose
    byte-identical application state, stable for half a virtual second).
    Both waits are bounded; missing a bound is recorded in the report
    rather than raised.  For a fixed scenario the entire run is
    bit-for-bit deterministic. *)

type proto = Rsmr_iface.Reconfig_strategy.t
(** A crucible protocol {e is} a reconfiguration strategy: every
    registered strategy runs through the soak — composition-driver ones
    as {!Rsmr_core.Options} strategy selections, native ones as their own
    stacks. *)

val proto_name : proto -> string
val proto_of_string : string -> proto option
val all_protos : proto list

val core : proto
(** The default [composed] strategy (historical name kept for tests). *)

val matchmaker : proto
val stopworld : proto
val raft : proto

type report = {
  proto : proto;
  scenario : Scenario.t;
  history : Rsmr_checker.History.t;
      (** client-observed completed operations *)
  submitted : int;
  completed : int;
  acked_incr : int;
      (** sum of the increments whose replies the clients saw *)
  quiesced : bool;
  converged : bool;
  final_members : int list;
  final_states : (int * string) list;
      (** member → {!Mixed} snapshot at the end of the settle phase *)
  final_counter : int option;
      (** counter component of the first final state *)
  epoch_stats : (int * Rsmr_core.Service.epoch_stat list) list;
      (** per-universe-node instance audits; empty lists under Raft *)
  counters : (string * int) list;  (** protocol-level counters, sorted *)
  spans : Rsmr_obs.Span.summary;
      (** command-lifecycle spans stitched from the run's trace bus *)
  obs : Rsmr_obs.Registry.t;
      (** the run's Observatory registry, span aggregates already
          {!Rsmr_obs.Span.record}ed — export with
          [Rsmr_obs.Registry.save] for an [rsmr-metrics/1] artifact *)
  events_executed : int;  (** engine callbacks — the determinism probe *)
  end_time : float;
}

val run : proto -> Scenario.t -> report

val first_client_id : int
(** Client ids start here — far above any replica universe the generator
    produces, so fault scripts can never name a client. *)
