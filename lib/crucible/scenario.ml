type fault =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal
  | Link_fault of { src : int; dst : int; drop : float }
  | Clear_links
  | Duplicate of float
  | Drop of float
  | Reconfigure of int list

type event = { at : float; fault : fault }

type t = {
  seed : int;
  members : int list;
  universe : int list;
  n_clients : int;
  duration : float;
  events : event list;
}

let sort_events events =
  List.stable_sort (fun a b -> Float.compare a.at b.at) events

(* --- compact wire form ---

   One field per ';', events joined by '|'.  Everything is printable
   ASCII with no quotes, so a whole scenario fits one shell argument:

     s=7;m=0,1,2;u=0,1,2,3,4;c=3;d=2.5;ev=0.41 crash 1|0.9 recover 1

   Floats are printed with up to 12 significant digits; the generator
   quantizes times to milliseconds and probabilities to hundredths, so
   the round trip is exact. *)

let float_to_string f = Printf.sprintf "%.12g" f

let ids_to_string ids = String.concat "," (List.map string_of_int ids)

let fault_to_string = function
  | Crash n -> Printf.sprintf "crash %d" n
  | Recover n -> Printf.sprintf "recover %d" n
  | Partition groups ->
    Printf.sprintf "part %s" (String.concat "/" (List.map ids_to_string groups))
  | Heal -> "heal"
  | Link_fault { src; dst; drop } ->
    Printf.sprintf "link %d>%d %s" src dst (float_to_string drop)
  | Clear_links -> "clearlinks"
  | Duplicate p -> Printf.sprintf "dup %s" (float_to_string p)
  | Drop p -> Printf.sprintf "drop %s" (float_to_string p)
  | Reconfigure ids -> Printf.sprintf "reconf %s" (ids_to_string ids)

let to_string t =
  let ev =
    String.concat "|"
      (List.map
         (fun e ->
           Printf.sprintf "%s %s" (float_to_string e.at)
             (fault_to_string e.fault))
         t.events)
  in
  Printf.sprintf "s=%d;m=%s;u=%s;c=%d;d=%s;ev=%s" t.seed
    (ids_to_string t.members) (ids_to_string t.universe) t.n_clients
    (float_to_string t.duration) ev

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = String.equal (to_string a) (to_string b)

(* --- parsing (total: every failure is an [Error]) --- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_of r s =
  match int_of_string_opt (String.trim s) with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: bad integer %S" r s)

let float_of r s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: bad float %S" r s)

let ids_of r s =
  let parts = String.split_on_char ',' s in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      let* n = int_of r part in
      Ok (n :: acc))
    (Ok []) parts
  |> function
  | Ok rev -> Ok (List.rev rev)
  | Error _ as e -> e

let fault_of_string s =
  let s = String.trim s in
  let word, rest =
    match String.index_opt s ' ' with
    | Some i ->
      ( String.sub s 0 i,
        String.sub s (i + 1) (String.length s - i - 1) |> String.trim )
    | None -> (s, "")
  in
  match word with
  | "crash" ->
    let* n = int_of "crash" rest in
    Ok (Crash n)
  | "recover" ->
    let* n = int_of "recover" rest in
    Ok (Recover n)
  | "part" ->
    let groups = String.split_on_char '/' rest in
    let* groups =
      List.fold_left
        (fun acc g ->
          let* acc = acc in
          let* ids = ids_of "part" g in
          Ok (ids :: acc))
        (Ok []) groups
    in
    Ok (Partition (List.rev groups))
  | "heal" -> Ok Heal
  | "link" -> (
    match String.split_on_char ' ' rest with
    | [ pair; p ] -> (
      match String.split_on_char '>' pair with
      | [ src; dst ] ->
        let* src = int_of "link" src in
        let* dst = int_of "link" dst in
        let* drop = float_of "link" p in
        Ok (Link_fault { src; dst; drop })
      | _ -> Error (Printf.sprintf "link: expected src>dst, got %S" pair))
    | _ -> Error (Printf.sprintf "link: expected 'src>dst p', got %S" rest))
  | "clearlinks" -> Ok Clear_links
  | "dup" ->
    let* p = float_of "dup" rest in
    Ok (Duplicate p)
  | "drop" ->
    let* p = float_of "drop" rest in
    Ok (Drop p)
  | "reconf" ->
    let* ids = ids_of "reconf" rest in
    Ok (Reconfigure ids)
  | other -> Error (Printf.sprintf "unknown fault %S" other)

let event_of_string s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> Error (Printf.sprintf "event %S: expected 'time fault'" s)
  | Some i ->
    let* at = float_of "event time" (String.sub s 0 i) in
    let* fault =
      fault_of_string (String.sub s (i + 1) (String.length s - i - 1))
    in
    Ok { at; fault }

let of_string s =
  let fields = String.split_on_char ';' (String.trim s) in
  let find key =
    let prefix = key ^ "=" in
    let plen = String.length prefix in
    List.find_map
      (fun f ->
        if String.length f >= plen && String.sub f 0 plen = prefix then
          Some (String.sub f plen (String.length f - plen))
        else None)
      fields
  in
  let req key =
    match find key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %s=" key)
  in
  let* seed = req "s" in
  let* seed = int_of "seed" seed in
  let* members = req "m" in
  let* members = ids_of "members" members in
  let* universe = req "u" in
  let* universe = ids_of "universe" universe in
  let* n_clients = req "c" in
  let* n_clients = int_of "clients" n_clients in
  let* duration = req "d" in
  let* duration = float_of "duration" duration in
  let* events =
    match find "ev" with
    | None | Some "" -> Ok []
    | Some ev ->
      let parts = String.split_on_char '|' ev in
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* e = event_of_string part in
          Ok (e :: acc))
        (Ok []) parts
      |> fun r ->
      let* rev = r in
      Ok (List.rev rev)
  in
  if members = [] then Error "empty member set"
  else if n_clients < 1 then Error "need at least one client"
  else if duration <= 0.0 then Error "non-positive duration"
  else
    Ok { seed; members; universe; n_clients; duration; events = sort_events events }
