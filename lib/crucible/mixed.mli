(** The crucible's composite state machine: one replicated object holding a
    register, a KV store and a monotone counter side by side.

    Running all three under a single service keeps one history per run
    while covering three oracle angles at once: the register and KV feed
    the linearizability checker with cheap-to-branch and realistic state
    respectively, and the counter turns any lost or doubly-applied command
    into an arithmetic discrepancy the exactly-once oracle can detect
    without searching. *)

type command =
  | Reg of Rsmr_app.Register.command
  | Kv of Rsmr_app.Kv.command
  | Cnt of Rsmr_app.Counter.command

type response =
  | Reg_r of Rsmr_app.Register.response
  | Kv_r of Rsmr_app.Kv.response
  | Cnt_r of Rsmr_app.Counter.response

include
  Rsmr_app.State_machine.S
    with type command := command
     and type response := response

val counter_value : t -> int
(** Current value of the counter component. *)

val incr_amount : command -> int option
(** [Some n] iff the command is a counter increment of [n]. *)

val incr_of_encoded : string -> int option
(** {!incr_amount} applied to an encoded command; [None] on garbage
    input. *)
