type failure = {
  f_proto : Runner.proto;
  f_seed : int;
  f_scenario : Scenario.t;
  f_failed : (string * string) list;
  f_shrunk : Scenario.t;
  f_shrunk_failed : (string * string) list;
  f_attempts : int;
}

type summary = {
  runs : int;
  passed : int;
  inconclusive : int;
  failures : failure list;
}

let replay_command proto scenario =
  Printf.sprintf "dune exec test/crucible_main.exe -- --proto %s --scenario '%s'"
    (Runner.proto_name proto) (Scenario.to_string scenario)

let run_scenario ?lin_budget proto scenario =
  let report = Runner.run proto scenario in
  (Oracle.check ?lin_budget report, report)

let check_scenario ?lin_budget ?(shrink = true) proto scenario =
  let outcome, _report = run_scenario ?lin_budget proto scenario in
  match Oracle.failures outcome with
  | [] -> Ok outcome
  | failed ->
    (* Shrink against "any oracle fails": chasing one specific oracle
       tends to dead-end when a smaller scenario trips an even earlier
       invariant, and any surviving failure is a valid reproducer. *)
    let still_fails sc =
      let o, _ = run_scenario ?lin_budget proto sc in
      Oracle.failures o <> []
    in
    let shrunk, attempts =
      if shrink then Shrink.minimize ~still_fails scenario else (scenario, 0)
    in
    let shrunk_outcome, _ = run_scenario ?lin_budget proto shrunk in
    Error
      {
        f_proto = proto;
        f_seed = scenario.Scenario.seed;
        f_scenario = scenario;
        f_failed = failed;
        f_shrunk = shrunk;
        f_shrunk_failed = Oracle.failures shrunk_outcome;
        f_attempts = attempts;
      }

let check_seed ?lin_budget ?shrink proto seed =
  check_scenario ?lin_budget ?shrink proto (Generate.scenario ~seed)

let soak ?lin_budget ?shrink ?on_run ~protos ~seeds () =
  let runs = ref 0 in
  let passed = ref 0 in
  let inconclusive = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      List.iter
        (fun proto ->
          incr runs;
          (match check_seed ?lin_budget ?shrink proto seed with
           | Ok outcome ->
             incr passed;
             if Oracle.inconclusives outcome <> [] then incr inconclusive;
             (match on_run with
              | Some f -> f proto seed (Some outcome)
              | None -> ())
           | Error failure ->
             failures := failure :: !failures;
             (match on_run with Some f -> f proto seed None | None -> ())))
        protos)
    seeds;
  {
    runs = !runs;
    passed = !passed;
    inconclusive = !inconclusive;
    failures = List.rev !failures;
  }

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>%s seed %d FAILED: %a@,  scenario: %a@,  shrunk (%d re-runs): %a@,\
    \  shrunk failure: %a@,  replay: %s@]"
    (Runner.proto_name f.f_proto) f.f_seed
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (name, msg) -> Format.fprintf ppf "%s (%s)" name msg))
    f.f_failed Scenario.pp f.f_scenario f.f_attempts Scenario.pp f.f_shrunk
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (name, msg) -> Format.fprintf ppf "%s (%s)" name msg))
    f.f_shrunk_failed
    (replay_command f.f_proto f.f_shrunk)
