(* Split [lst] into [n] contiguous chunks, sizes as even as possible. *)
let chunks n lst =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec take k lst acc =
    if k = 0 then (List.rev acc, lst)
    else
      match lst with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) rest (x :: acc)
  in
  let rec go i lst acc =
    if i >= n || lst = [] then List.rev acc
    else begin
      let size = base + (if i < extra then 1 else 0) in
      let chunk, rest = take size lst [] in
      go (i + 1) rest (if chunk = [] then acc else chunk :: acc)
    end
  in
  go 0 lst []

let quantize_ms f = Float.round (f *. 1000.) /. 1000.

let minimize ?(max_attempts = 200) ~still_fails sc0 =
  let attempts = ref 0 in
  let budget_left () = !attempts < max_attempts in
  let try_fails sc =
    if not (budget_left ()) then false
    else begin
      incr attempts;
      still_fails sc
    end
  in
  (* Delta-debugging over the fault script.  The first granularity (two
     chunks) is exactly the "bisect the fault window" step: drop the first
     half of the timeline, then the second; finer granularities remove
     individual events. *)
  let rec ddmin sc n =
    let events = sc.Scenario.events in
    let len = List.length events in
    if len = 0 || not (budget_left ()) then sc
    else begin
      let n = min n len in
      let cs = chunks n events in
      let rec try_remove i =
        if i >= List.length cs then None
        else begin
          let kept = List.concat (List.filteri (fun j _ -> j <> i) cs) in
          let cand = { sc with Scenario.events = kept } in
          if try_fails cand then Some cand else try_remove (i + 1)
        end
      in
      match try_remove 0 with
      | Some cand -> ddmin cand (max (n - 1) 2)
      | None -> if n >= len then sc else ddmin sc (min len (2 * n))
    end
  in
  (* Halve the workload window while the failure survives; events past the
     new window go with it. *)
  let rec shorten sc =
    let d = sc.Scenario.duration in
    if d <= 0.25 || not (budget_left ()) then sc
    else begin
      let d' = quantize_ms (d /. 2.) in
      let events =
        List.filter (fun e -> e.Scenario.at <= d') sc.Scenario.events
      in
      let cand = { sc with Scenario.duration = d'; events } in
      if try_fails cand then shorten cand else sc
    end
  in
  let rec fewer_clients sc =
    if sc.Scenario.n_clients <= 1 || not (budget_left ()) then sc
    else begin
      let cand = { sc with Scenario.n_clients = sc.Scenario.n_clients - 1 } in
      if try_fails cand then fewer_clients cand else sc
    end
  in
  let sc = ddmin sc0 2 in
  let sc = shorten sc in
  let sc = fewer_clients sc in
  (* The smaller workload may have freed more of the script. *)
  let sc = ddmin sc 2 in
  (sc, !attempts)
