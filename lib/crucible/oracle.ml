module Service = Rsmr_core.Service
module Lin = Rsmr_checker.Linearizability.Make (Mixed)

type verdict =
  | Pass
  | Fail of string
  | Inconclusive of string
  | Skip of string

type outcome = {
  lin : verdict;
  exactly_once : verdict;
  epoch_prefix : verdict;
  residual : verdict;
  convergence : verdict;
}

let default_lin_budget = 400_000

let check_lin ~budget (r : Runner.report) =
  match Lin.check ~max_states:budget r.Runner.history with
  | Lin.Linearizable -> Pass
  | Lin.Not_linearizable ->
    Fail
      (Printf.sprintf "history of %d ops is not linearizable"
         (Rsmr_checker.History.length r.Runner.history))
  | Lin.Inconclusive ->
    Inconclusive (Printf.sprintf "search budget (%d states) exhausted" budget)

let check_exactly_once (r : Runner.report) =
  if not r.Runner.quiesced then
    Inconclusive "commands still outstanding; increment count unsettled"
  else if not r.Runner.converged then
    Inconclusive "members not converged; counter reading unsettled"
  else
    match r.Runner.final_counter with
    | None -> Fail "no member exposes application state"
    | Some v when v = r.Runner.acked_incr -> Pass
    | Some v ->
      Fail
        (Printf.sprintf
           "counter is %d but clients saw %d acknowledged increment units \
            (%s)"
           v r.Runner.acked_incr
           (if v > r.Runner.acked_incr then "double application"
            else "lost application"))

let check_epoch_prefix (r : Runner.report) =
  match r.Runner.proto.Rsmr_iface.Reconfig_strategy.driver with
  | `Native -> Skip "native raft has no wedge"
  | `Composition ->
    let violations = ref [] in
    let agreed = Hashtbl.create 8 in
    List.iter
      (fun (node, stats) ->
        List.iter
          (fun (s : Service.epoch_stat) ->
            match s.Service.es_wedged_at with
            | None -> ()
            | Some w ->
              if s.Service.es_applied_hi > w then
                violations :=
                  Printf.sprintf
                    "node %d applied index %d past wedge %d in epoch %d" node
                    s.Service.es_applied_hi w s.Service.es_epoch
                  :: !violations;
              (match Hashtbl.find_opt agreed s.Service.es_epoch with
               | Some w' when w' <> w ->
                 violations :=
                   Printf.sprintf
                     "epoch %d wedged at %d on one node and %d on another"
                     s.Service.es_epoch w' w
                   :: !violations
               | Some _ -> ()
               | None -> Hashtbl.add agreed s.Service.es_epoch w))
          stats)
      r.Runner.epoch_stats;
    (match !violations with
     | [] -> Pass
     | vs -> Fail (String.concat "; " (List.rev vs)))

let counter_of (r : Runner.report) name =
  match List.assoc_opt name r.Runner.counters with Some n -> n | None -> 0

let check_residual (r : Runner.report) =
  if not r.Runner.quiesced then
    Fail
      (Printf.sprintf "%d of %d submitted commands never completed"
         (r.Runner.submitted - r.Runner.completed)
         r.Runner.submitted)
  else
    match r.Runner.proto.Rsmr_iface.Reconfig_strategy.driver with
    | `Native -> Pass (* reduces to the no-lost-command check above *)
    | `Composition ->
      let resid = counter_of r "residuals" in
      let resub = counter_of r "residuals_resubmitted" in
      if resub > resid then
        Fail
          (Printf.sprintf "%d residuals resubmitted but only %d observed"
             resub resid)
      else Pass

let check_convergence (r : Runner.report) =
  if r.Runner.converged then Pass
  else if not r.Runner.quiesced then
    Fail "never quiesced, so convergence was not reached"
  else
    let missing =
      List.filter
        (fun m -> not (List.mem_assoc m r.Runner.final_states))
        r.Runner.final_members
    in
    Fail
      (Printf.sprintf
         "members %s did not converge to one state (%d states collected%s)"
         (String.concat "," (List.map string_of_int r.Runner.final_members))
         (List.length r.Runner.final_states)
         (match missing with
          | [] -> ""
          | ms ->
            Printf.sprintf "; no state from %s"
              (String.concat "," (List.map string_of_int ms))))

let check ?(lin_budget = default_lin_budget) (r : Runner.report) =
  {
    lin = check_lin ~budget:lin_budget r;
    exactly_once = check_exactly_once r;
    epoch_prefix = check_epoch_prefix r;
    residual = check_residual r;
    convergence = check_convergence r;
  }

let named o =
  [
    ("linearizability", o.lin);
    ("exactly-once", o.exactly_once);
    ("epoch-prefix", o.epoch_prefix);
    ("residual-conservation", o.residual);
    ("convergence", o.convergence);
  ]

let failures o =
  List.filter_map
    (fun (name, v) -> match v with Fail msg -> Some (name, msg) | _ -> None)
    (named o)

let inconclusives o =
  List.filter_map
    (fun (name, v) ->
      match v with Inconclusive msg -> Some (name, msg) | _ -> None)
    (named o)

let ok o = failures o = []

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail msg -> Format.fprintf ppf "FAIL (%s)" msg
  | Inconclusive msg -> Format.fprintf ppf "inconclusive (%s)" msg
  | Skip msg -> Format.fprintf ppf "n/a (%s)" msg

let pp ppf o =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (name, v) ->
         Format.fprintf ppf "%-22s %a" name pp_verdict v))
    (named o)
