(** The soak driver: generate → run → judge → (on failure) shrink →
    print a one-line replay command.

    This is the loop behind [test/crucible_main.exe] and the CI soak
    step: a seed range crossed with the protocol stacks, each run judged
    by the five {!Oracle}s, failures minimized by {!Shrink} and reported
    with a [dune exec] one-liner that replays the shrunk scenario
    bit-for-bit. *)

type failure = {
  f_proto : Runner.proto;
  f_seed : int;
  f_scenario : Scenario.t;  (** the original generated scenario *)
  f_failed : (string * string) list;  (** oracle name → reason *)
  f_shrunk : Scenario.t;
  f_shrunk_failed : (string * string) list;
      (** what the shrunk scenario trips — possibly an earlier oracle than
          the original *)
  f_attempts : int;  (** re-runs the shrinker spent *)
}

type summary = {
  runs : int;
  passed : int;  (** runs with no failing oracle *)
  inconclusive : int;  (** passing runs with ≥1 inconclusive verdict *)
  failures : failure list;
}

val replay_command : Runner.proto -> Scenario.t -> string
(** The one-liner that replays a scenario against a protocol. *)

val run_scenario :
  ?lin_budget:int ->
  Runner.proto ->
  Scenario.t ->
  Oracle.outcome * Runner.report

val check_scenario :
  ?lin_budget:int ->
  ?shrink:bool ->
  Runner.proto ->
  Scenario.t ->
  (Oracle.outcome, failure) result
(** Run and judge; on failure, minimize (unless [shrink:false]) and
    re-judge the minimized scenario. *)

val check_seed :
  ?lin_budget:int ->
  ?shrink:bool ->
  Runner.proto ->
  int ->
  (Oracle.outcome, failure) result
(** [check_scenario] over [Generate.scenario ~seed]. *)

val soak :
  ?lin_budget:int ->
  ?shrink:bool ->
  ?on_run:(Runner.proto -> int -> Oracle.outcome option -> unit) ->
  protos:Runner.proto list ->
  seeds:int list ->
  unit ->
  summary
(** Cross product of seeds × protos, in order.  [on_run] fires after each
    run with [Some outcome] on pass and [None] on failure (the failure
    itself lands in the summary). *)

val pp_failure : Format.formatter -> failure -> unit
