(** Seed → scenario.

    Every structural choice — cluster size, universe, client count,
    workload window, and the fault script (crash/recover pairs,
    partitions and heals, directed-link faults, duplicate storms, loss
    weather, reconfiguration churn including back-to-back submissions) —
    is drawn from a {!Rsmr_sim.Rng} seeded by the scenario seed, so the
    same seed always yields the same scenario.

    Destructive events are paired with their cure inside the run
    (crash/recover, partition/heal, storm/calm) but nothing here
    guarantees a healthy endgame — the {!Runner} restores full service
    after the workload window regardless of what the script left broken,
    so every scenario eventually quiesces. *)

val scenario : seed:int -> Scenario.t

val reconf_churn_scenario : seed:int -> Scenario.t
(** Like {!scenario} but every event slot is a membership change (3–6 per
    run, roughly half with a back-to-back chaser inside the install
    window) plus at most one crash or loss spell — the family the
    per-strategy reconfiguration soak runs over. *)
