(** Scenario minimization: given a failing scenario and a predicate that
    re-runs it, produce a smaller scenario that still fails.

    Three deterministic passes, each applied to fixpoint within an attempt
    budget: delta-debugging over the fault script (whose coarsest step is
    bisecting the fault window, and whose finest removes single events),
    halving the workload window, and dropping clients.  Re-running the
    event pass last catches script events only needed by the longer
    workload.  The result is not guaranteed 1-minimal — the budget caps
    how many re-runs we spend — but in practice a one-event reproducer
    shrinks to exactly that event.

    Determinism: the pass order and candidate order are fixed, so for a
    deterministic [still_fails] the minimized scenario is a pure function
    of the input. *)

val minimize :
  ?max_attempts:int ->
  still_fails:(Scenario.t -> bool) ->
  Scenario.t ->
  Scenario.t * int
(** [minimize ~still_fails sc] returns the smallest still-failing scenario
    found and the number of re-runs spent.  [still_fails sc] itself is
    never called — only candidates are re-run; callers should have
    verified [sc] fails.  [max_attempts] defaults to 200. *)
