module Rng = Rsmr_sim.Rng

(* Times are quantized to milliseconds and probabilities to hundredths so
   the scenario's compact text form round-trips exactly. *)
let time_in rng lo hi =
  let lo = int_of_float (lo *. 1000.) and hi = int_of_float (hi *. 1000.) in
  float_of_int (Rng.int_in rng lo (max lo hi)) /. 1000.

let prob_in rng lo hi =
  let lo = int_of_float (lo *. 100.) and hi = int_of_float (hi *. 100.) in
  float_of_int (Rng.int_in rng lo (max lo hi)) /. 100.

let pick_config rng ~universe ~size =
  let arr = Array.of_list universe in
  Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min size (Array.length arr)))
  |> List.sort Int.compare

(* A two-way split of the universe with both sides non-empty. *)
let pick_partition rng universe =
  let left, right =
    List.partition_map
      (fun n -> if Rng.bool rng then Either.Left n else Either.Right n)
      universe
  in
  match (left, right) with
  | [], x :: rest | x :: rest, [] -> [ [ x ]; rest ]
  | left, right -> [ left; right ]

let scenario ~seed =
  let rng = Rng.create ((seed * 2) + 1) in
  let size = if Rng.int rng 4 < 3 then 3 else 5 in
  let universe_n = size + 2 + Rng.int rng 3 in
  let universe = List.init universe_n Fun.id in
  let members = List.init size Fun.id in
  let n_clients = 2 + Rng.int rng 2 in
  let duration = time_in rng 1.5 2.5 in
  let n_events = Rng.int rng 9 in
  let horizon rng at = min duration (at +. time_in rng 0.2 1.2) in
  let events = ref [] in
  let emit at fault = events := { Scenario.at; fault } :: !events in
  for _ = 1 to n_events do
    let at = time_in rng 0.3 duration in
    match Rng.int rng 6 with
    | 0 ->
      let node = Rng.pick rng universe in
      emit at (Scenario.Crash node);
      emit (horizon rng at) (Scenario.Recover node)
    | 1 ->
      emit at (Scenario.Partition (pick_partition rng universe));
      emit (horizon rng at) Scenario.Heal
    | 2 ->
      let src = Rng.pick rng universe in
      let dst = Rng.pick rng (List.filter (fun n -> n <> src) universe) in
      emit at
        (Scenario.Link_fault
           { src; dst; drop = (if Rng.bool rng then 1.0 else 0.5) });
      emit (horizon rng at) Scenario.Clear_links
    | 3 ->
      emit at (Scenario.Duplicate (prob_in rng 0.3 1.0));
      emit (horizon rng at) (Scenario.Duplicate 0.0)
    | 4 ->
      emit at (Scenario.Drop (prob_in rng 0.05 0.3));
      emit (horizon rng at) (Scenario.Drop 0.0)
    | _ ->
      let target = pick_config rng ~universe ~size in
      emit at (Scenario.Reconfigure target);
      (* Back-to-back churn: a second membership change lands while (or
         right after) the first is still being installed — including at
         the exact same instant, the concurrent-Reconfig case the
         first-wedge-wins guard exists for. *)
      if Rng.int rng 3 = 0 then begin
        let target' = pick_config rng ~universe ~size in
        emit (at +. time_in rng 0.0 0.2) (Scenario.Reconfigure target')
      end
  done;
  {
    Scenario.seed;
    members;
    universe;
    n_clients;
    duration;
    events = Scenario.sort_events (List.rev !events);
  }

(* Reconfiguration-heavy scenarios: every event slot is a membership
   change (often back-to-back), with a thin garnish of crashes and loss so
   the handoff machinery — not the fault model — is what's being soaked.
   This is the family the per-strategy churn soak runs over. *)
let reconf_churn_scenario ~seed =
  let rng = Rng.create ((seed * 2) + 1) in
  let size = if Rng.int rng 4 < 3 then 3 else 5 in
  let universe_n = size + 2 + Rng.int rng 3 in
  let universe = List.init universe_n Fun.id in
  let members = List.init size Fun.id in
  let n_clients = 2 + Rng.int rng 2 in
  let duration = time_in rng 1.5 2.5 in
  let n_reconfs = 3 + Rng.int rng 4 in
  let events = ref [] in
  let emit at fault = events := { Scenario.at; fault } :: !events in
  for _ = 1 to n_reconfs do
    let at = time_in rng 0.3 duration in
    let target = pick_config rng ~universe ~size in
    emit at (Scenario.Reconfigure target);
    (* Half the changes get a chaser inside the install window, so the
       first-wedge-wins path and provisional teardown both fire. *)
    if Rng.bool rng then begin
      let target' = pick_config rng ~universe ~size in
      emit (at +. time_in rng 0.0 0.2) (Scenario.Reconfigure target')
    end
  done;
  (match Rng.int rng 3 with
   | 0 ->
     let node = Rng.pick rng universe in
     let at = time_in rng 0.3 duration in
     emit at (Scenario.Crash node);
     emit (min duration (at +. time_in rng 0.2 0.8)) (Scenario.Recover node)
   | 1 ->
     let at = time_in rng 0.3 duration in
     emit at (Scenario.Drop (prob_in rng 0.05 0.2));
     emit (min duration (at +. time_in rng 0.2 0.8)) (Scenario.Drop 0.0)
   | _ -> ());
  {
    Scenario.seed;
    members;
    universe;
    n_clients;
    duration;
    events = Scenario.sort_events (List.rev !events);
  }
