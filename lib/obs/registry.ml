module Counters = Rsmr_sim.Counters
module Histogram = Rsmr_sim.Histogram
module Timeseries = Rsmr_sim.Timeseries
module Trace = Rsmr_sim.Trace
module Stable = Rsmr_sim.Stable

type labels = (string * string) list

let compare_label (ka, va) (kb, vb) =
  match String.compare ka kb with 0 -> String.compare va vb | c -> c

let canon labels = List.sort_uniq compare_label labels

let check_token what s =
  String.iter
    (fun c ->
      match c with
      | '{' | '}' | ',' | '=' ->
        invalid_arg
          (Printf.sprintf "Registry: %s %S contains reserved character %C"
             what s c)
      | _ -> ())
    s

(* Canonical cell key: name{k=v,...} with labels already sorted. *)
let encode_key name labels =
  check_token "metric name" name;
  let b = Buffer.create 32 in
  Buffer.add_string b name;
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      check_token "label key" k;
      check_token "label value" v;
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    labels;
  Buffer.add_char b '}';
  Buffer.contents b

type metric =
  | Counter of int ref
  | Hist of Histogram.t
  | Series of Timeseries.t

type cell = { c_name : string; c_labels : labels; c_metric : metric }

type t = {
  mutable md : labels;
  cells : (string, cell) Hashtbl.t;
  secs : (string, Counters.t) Hashtbl.t;
  bus : Trace.t;
}

let create ?(meta = []) () =
  {
    md = canon meta;
    cells = Hashtbl.create 64;
    secs = Hashtbl.create 8;
    bus = Trace.create ();
  }

let set_meta t k v = t.md <- canon ((k, v) :: List.remove_assoc k t.md)
let meta t = t.md
let bus t = t.bus

let kind_name = function
  | Counter _ -> "counter"
  | Hist _ -> "histogram"
  | Series _ -> "series"

let mismatch key m want =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, not a %s" key
       (kind_name m) want)

let new_cell t key name labels m =
  Hashtbl.add t.cells key { c_name = name; c_labels = labels; c_metric = m };
  m

let counter ?(labels = []) t name =
  let labels = canon labels in
  let key = encode_key name labels in
  match Hashtbl.find_opt t.cells key with
  | Some { c_metric = Counter r; _ } -> r
  | Some { c_metric = m; _ } -> mismatch key m "counter"
  | None -> (
    match new_cell t key name labels (Counter (ref 0)) with
    | Counter r -> r
    | m -> mismatch key m "counter")

let histogram ?(labels = []) t name =
  let labels = canon labels in
  let key = encode_key name labels in
  match Hashtbl.find_opt t.cells key with
  | Some { c_metric = Hist h; _ } -> h
  | Some { c_metric = m; _ } -> mismatch key m "histogram"
  | None -> (
    match new_cell t key name labels (Hist (Histogram.create ())) with
    | Hist h -> h
    | m -> mismatch key m "histogram")

let series ?(labels = []) t name =
  let labels = canon labels in
  let key = encode_key name labels in
  match Hashtbl.find_opt t.cells key with
  | Some { c_metric = Series s; _ } -> s
  | Some { c_metric = m; _ } -> mismatch key m "series"
  | None -> (
    match new_cell t key name labels (Series (Timeseries.create ())) with
    | Series s -> s
    | m -> mismatch key m "series")

(* --- scopes --- *)

type scope = { reg : t; sc : labels }

let scope ?node ?epoch ?(labels = []) t =
  let l = labels in
  let l =
    match epoch with Some e -> ("epoch", string_of_int e) :: l | None -> l
  in
  let l =
    match node with Some n -> ("node", string_of_int n) :: l | None -> l
  in
  { reg = t; sc = canon l }

let scope_labels s = s.sc
let scope_counter s name = counter ~labels:s.sc s.reg name
let scope_histogram s name = histogram ~labels:s.sc s.reg name
let scope_series s name = series ~labels:s.sc s.reg name

(* --- attached sections --- *)

let counters t name =
  match Hashtbl.find_opt t.secs name with
  | Some c -> c
  | None ->
    check_token "section name" name;
    let c = Counters.create () in
    Hashtbl.add t.secs name c;
    c

let attach t name c =
  check_token "section name" name;
  Hashtbl.replace t.secs name c

let sections t =
  Stable.fold_sorted ~compare:String.compare
    (fun name c acc -> (name, c) :: acc)
    t.secs []
  |> List.rev

(* --- merge --- *)

let merge_meta a b =
  let keys =
    List.sort_uniq String.compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun k ->
      match (List.assoc_opt k a, List.assoc_opt k b) with
      | Some va, Some vb -> (k, if String.compare va vb >= 0 then va else vb)
      | Some v, None | None, Some v -> (k, v)
      | None, None -> assert false)
    keys

let sorted_cells t =
  Stable.fold_sorted ~compare:String.compare (fun _ c acc -> c :: acc) t.cells
    []
  |> List.rev

let absorb dst src =
  List.iter
    (fun c ->
      match c.c_metric with
      | Counter r ->
        let d = counter ~labels:c.c_labels dst c.c_name in
        d := !d + !r
      | Hist h ->
        let key = encode_key c.c_name c.c_labels in
        let merged =
          match Hashtbl.find_opt dst.cells key with
          | Some { c_metric = Hist d; _ } -> Histogram.merge d h
          | Some _ ->
            invalid_arg ("Registry.merge: metric kind mismatch at " ^ key)
          | None -> Histogram.merge (Histogram.create ()) h
        in
        Hashtbl.replace dst.cells key
          { c_name = c.c_name; c_labels = c.c_labels; c_metric = Hist merged }
      | Series s ->
        let d = series ~labels:c.c_labels dst c.c_name in
        let pts =
          List.sort
            (fun (ta, va) (tb, vb) ->
              match Float.compare ta tb with
              | 0 -> Float.compare va vb
              | cmp -> cmp)
            (Timeseries.points d @ Timeseries.points s)
        in
        let fresh = Timeseries.create () in
        List.iter (fun (time, v) -> Timeseries.add fresh ~time v) pts;
        Hashtbl.replace dst.cells
          (encode_key c.c_name c.c_labels)
          { c_name = c.c_name; c_labels = c.c_labels; c_metric = Series fresh })
    (sorted_cells src)

let absorb_sections dst src =
  List.iter
    (fun (name, c) ->
      let d = counters dst name in
      List.iter (fun (k, v) -> Counters.add d k v) (Counters.to_list c))
    (sections src)

let merge a b =
  let t = create ~meta:(merge_meta a.md b.md) () in
  absorb t a;
  absorb t b;
  absorb_sections t a;
  absorb_sections t b;
  t

(* --- export --- *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
  else Buffer.add_string b "0.0"

let buf_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_json_string b k;
      Buffer.add_char b ':';
      buf_json_string b v)
    labels;
  Buffer.add_char b '}'

(* A section counter key "sent.accept" exports as name "sent" with an
   msg_type label "accept"; undotted keys export under their own name.
   Either way the section name rides along as a label. *)
let split_section_key section key =
  match String.index_opt key '.' with
  | Some i when i > 0 && i < String.length key - 1 ->
    ( String.sub key 0 i,
      canon
        [
          ("msg_type", String.sub key (i + 1) (String.length key - i - 1));
          ("section", section);
        ] )
  | _ -> (key, [ ("section", section) ])

type flat_counter = { f_name : string; f_labels : labels; f_value : int }

let flat_counters t =
  let of_cells =
    List.filter_map
      (fun c ->
        match c.c_metric with
        | Counter r -> Some { f_name = c.c_name; f_labels = c.c_labels; f_value = !r }
        | Hist _ | Series _ -> None)
      (sorted_cells t)
  in
  let of_sections =
    List.concat_map
      (fun (sname, cs) ->
        List.map
          (fun (key, v) ->
            let name, labels = split_section_key sname key in
            { f_name = name; f_labels = labels; f_value = v })
          (Counters.to_list cs))
      (sections t)
  in
  List.sort
    (fun a b ->
      match String.compare a.f_name b.f_name with
      | 0 ->
        String.compare
          (encode_key a.f_name a.f_labels)
          (encode_key b.f_name b.f_labels)
      | c -> c)
    (of_cells @ of_sections)

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"rsmr-metrics/1\",\n  \"meta\": ";
  buf_labels b t.md;
  Buffer.add_string b ",\n  \"counters\": [";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n    "
  in
  List.iter
    (fun f ->
      sep ();
      Buffer.add_string b "{\"name\":";
      buf_json_string b f.f_name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b f.f_labels;
      Buffer.add_string b (Printf.sprintf ",\"value\":%d}" f.f_value))
    (flat_counters t);
  Buffer.add_string b "\n  ],\n  \"histograms\": [";
  first := true;
  List.iter
    (fun c ->
      match c.c_metric with
      | Hist h ->
        sep ();
        Buffer.add_string b "{\"name\":";
        buf_json_string b c.c_name;
        Buffer.add_string b ",\"labels\":";
        buf_labels b c.c_labels;
        Buffer.add_string b (Printf.sprintf ",\"count\":%d" (Histogram.count h));
        List.iter
          (fun (k, v) ->
            Buffer.add_string b (Printf.sprintf ",\"%s\":" k);
            buf_float b v)
          [
            ("mean", Histogram.mean h);
            ("min", Histogram.min_value h);
            ("max", Histogram.max_value h);
            ("p50", Histogram.percentile h 50.0);
            ("p90", Histogram.percentile h 90.0);
            ("p99", Histogram.percentile h 99.0);
          ];
        Buffer.add_char b '}'
      | Counter _ | Series _ -> ())
    (sorted_cells t);
  Buffer.add_string b "\n  ],\n  \"series\": [";
  first := true;
  List.iter
    (fun c ->
      match c.c_metric with
      | Series s ->
        sep ();
        Buffer.add_string b "{\"name\":";
        buf_json_string b c.c_name;
        Buffer.add_string b ",\"labels\":";
        buf_labels b c.c_labels;
        Buffer.add_string b ",\"points\":[";
        List.iteri
          (fun i (time, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '[';
            buf_float b time;
            Buffer.add_char b ',';
            buf_float b v;
            Buffer.add_char b ']')
          (Timeseries.points s);
        Buffer.add_string b "]}"
      | Counter _ | Hist _ -> ())
    (sorted_cells t);
  Buffer.add_string b "\n  ]\n}";
  Buffer.contents b

let save t ~path =
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc
