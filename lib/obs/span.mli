(** Command-lifecycle spans, reconstructed from structured trace events.

    The paper's composition makes the interesting behaviour happen
    {e between} SMR instances: a command can be ordered in [S_e], caught
    behind the wedge index, carried over as a residual, re-submitted into
    [S_{e+1}], and only then applied and acknowledged.  No single
    instance sees that path.  A {!collector} subscribes to the registry's
    trace bus and stitches the per-command [`Lifecycle] events back into
    one span per (client, seq), so cross-epoch handoff latency and
    residual counts become first-class measurements.

    Lifecycle events are identified purely by their structured [attrs]
    ([ev], [client], [seq], [epoch], ...); the human-readable message is
    never parsed.  The emit sites are the client endpoint ([submit],
    [retry], [replied]) and the replication services ([ordered],
    [residual], [resubmit], [applied], leader-side only so each
    transition is observed once per epoch). *)

type state =
  | Submitted    (** seen only at the client; never ordered *)
  | Ordered      (** ordered in some [S_e], not yet applied *)
  | Residual     (** caught behind a wedge, not yet re-submitted *)
  | Resubmitted  (** re-injected into the next epoch, outcome unknown *)
  | Applied      (** applied to the state machine, reply not observed *)
  | Replied      (** acknowledged at the client — fully resolved *)

val state_name : state -> string

type t = {
  sp_client : int;
  sp_seq : int;
  sp_submitted : float;
  mutable sp_retries : int;
  mutable sp_ordered : (int * float) option;      (** (epoch, time) *)
  mutable sp_residual : (int * float) option;     (** (epoch, time) *)
  mutable sp_resubmitted : (int * int * float) option;
      (** (from_epoch, to_epoch, time) *)
  mutable sp_applied : (int * float) option;      (** (epoch, time) *)
  mutable sp_replied : float option;
}

val state : t -> state
(** The furthest lifecycle state the span reached. *)

type collector

val collect : Rsmr_sim.Trace.t -> collector
(** Subscribe a fresh collector to the bus.  Every [`Lifecycle] event
    from then on is folded into its span; the first observation of each
    transition wins, so replica-side duplicates (retries, leader
    failover re-orderings) do not distort timings. *)

val finalize : collector -> t list
(** All spans, sorted by (client, seq).  The collector keeps listening;
    calling [finalize] again reflects any later events. *)

val orphans : collector -> int
(** Lifecycle events whose span had to be created without a [submit]
    (e.g. a collector attached mid-run), plus events missing the
    [client]/[seq] attrs. *)

type summary = {
  sm_total : int;
  sm_replied : int;
  sm_applied_unreplied : int;  (** applied but ack not observed *)
  sm_unresolved : int;         (** no terminal state: still in flight *)
  sm_retries : int;
  sm_residuals : int;
  sm_resubmitted : int;
  sm_cross_epoch : int;
      (** applied in a later epoch than first ordered, or re-submitted *)
  sm_latency : Rsmr_sim.Histogram.t;  (** submit -> replied, seconds *)
  sm_handoff : Rsmr_sim.Histogram.t;
      (** wedge/residual -> applied-in-next-epoch, seconds *)
}

val summarize : t list -> summary

val resolved_fraction : summary -> float
(** Fraction of spans that reached a terminal state (replied or
    applied); 1.0 when there are no spans. *)

val record : Registry.t -> t list -> unit
(** Fold the spans into the registry as [span.*] counters (per-epoch
    where meaningful), histograms ([span.latency_s], [span.handoff_s])
    and a [span.reply_latency] time series, so one [rsmr-metrics/1]
    document carries both raw metrics and span aggregates. *)

val pp_summary : Format.formatter -> summary -> unit
