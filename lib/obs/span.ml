module Trace = Rsmr_sim.Trace
module Histogram = Rsmr_sim.Histogram
module Timeseries = Rsmr_sim.Timeseries
module Stable = Rsmr_sim.Stable

type state = Submitted | Ordered | Residual | Resubmitted | Applied | Replied

let state_name = function
  | Submitted -> "submitted"
  | Ordered -> "ordered"
  | Residual -> "residual"
  | Resubmitted -> "resubmitted"
  | Applied -> "applied"
  | Replied -> "replied"

type t = {
  sp_client : int;
  sp_seq : int;
  sp_submitted : float;
  mutable sp_retries : int;
  mutable sp_ordered : (int * float) option;
  mutable sp_residual : (int * float) option;
  mutable sp_resubmitted : (int * int * float) option;
  mutable sp_applied : (int * float) option;
  mutable sp_replied : float option;
}

let state sp =
  if sp.sp_replied <> None then Replied
  else if sp.sp_applied <> None then Applied
  else if sp.sp_resubmitted <> None then Resubmitted
  else if sp.sp_residual <> None then Residual
  else if sp.sp_ordered <> None then Ordered
  else Submitted

type collector = {
  spans : (string, t) Hashtbl.t;
      (* keyed by "client:seq" to keep Stable's string-friendly sorted
         iteration; the span itself carries the ints *)
  mutable orphan_events : int;
}

let key client seq = Printf.sprintf "%d:%d" client seq

let span c ~client ~seq ~time =
  let k = key client seq in
  match Hashtbl.find_opt c.spans k with
  | Some sp -> sp
  | None ->
    let sp =
      {
        sp_client = client;
        sp_seq = seq;
        sp_submitted = time;
        sp_retries = 0;
        sp_ordered = None;
        sp_residual = None;
        sp_resubmitted = None;
        sp_applied = None;
        sp_replied = None;
      }
    in
    Hashtbl.add c.spans k sp;
    sp

let int_attr ev k = Option.bind (Trace.attr ev k) int_of_string_opt

let on_event c (ev : Trace.event) =
  match ev.Trace.topic with
  | `Lifecycle -> begin
    match (Trace.attr ev "ev", int_attr ev "client", int_attr ev "seq") with
    | Some kind, Some client, Some seq -> begin
      let known = Hashtbl.mem c.spans (key client seq) in
      let sp = span c ~client ~seq ~time:ev.Trace.time in
      if (not known) && kind <> "submit" then
        c.orphan_events <- c.orphan_events + 1;
      match kind with
      | "submit" -> ()
      | "retry" -> sp.sp_retries <- sp.sp_retries + 1
      | "ordered" ->
        if sp.sp_ordered = None then
          sp.sp_ordered <-
            Some (Option.value ~default:(-1) (int_attr ev "epoch"), ev.Trace.time)
      | "residual" ->
        if sp.sp_residual = None then
          sp.sp_residual <-
            Some (Option.value ~default:(-1) (int_attr ev "epoch"), ev.Trace.time)
      | "resubmit" ->
        if sp.sp_resubmitted = None then
          sp.sp_resubmitted <-
            Some
              ( Option.value ~default:(-1) (int_attr ev "from"),
                Option.value ~default:(-1) (int_attr ev "to"),
                ev.Trace.time )
      | "applied" ->
        if sp.sp_applied = None then
          sp.sp_applied <-
            Some (Option.value ~default:(-1) (int_attr ev "epoch"), ev.Trace.time)
      | "replied" ->
        if sp.sp_replied = None then sp.sp_replied <- Some ev.Trace.time
      | _ -> c.orphan_events <- c.orphan_events + 1
    end
    | _ -> c.orphan_events <- c.orphan_events + 1
  end
  | `Paxos | `Vr | `Raft | `Reconfig | `Net | `Client | `Other _ -> ()

let collect bus =
  let c = { spans = Hashtbl.create 256; orphan_events = 0 } in
  Trace.subscribe bus (on_event c);
  c

let finalize c =
  Stable.fold_sorted ~compare:String.compare
    (fun _ sp acc -> sp :: acc)
    c.spans []
  |> List.sort (fun a b ->
         match Int.compare a.sp_client b.sp_client with
         | 0 -> Int.compare a.sp_seq b.sp_seq
         | cmp -> cmp)

let orphans c = c.orphan_events

type summary = {
  sm_total : int;
  sm_replied : int;
  sm_applied_unreplied : int;
  sm_unresolved : int;
  sm_retries : int;
  sm_residuals : int;
  sm_resubmitted : int;
  sm_cross_epoch : int;
  sm_latency : Histogram.t;
  sm_handoff : Histogram.t;
}

let cross_epoch sp =
  sp.sp_resubmitted <> None
  ||
  match (sp.sp_ordered, sp.sp_applied) with
  | Some (eo, _), Some (ea, _) -> ea > eo
  | _ -> false

let handoff_latency sp =
  match sp.sp_applied with
  | None -> None
  | Some (_, t_applied) -> (
    match (sp.sp_residual, sp.sp_resubmitted) with
    | Some (_, t0), _ -> Some (t_applied -. t0)
    | None, Some (_, _, t0) -> Some (t_applied -. t0)
    | None, None -> None)

let summarize spans =
  let s =
    {
      sm_total = 0;
      sm_replied = 0;
      sm_applied_unreplied = 0;
      sm_unresolved = 0;
      sm_retries = 0;
      sm_residuals = 0;
      sm_resubmitted = 0;
      sm_cross_epoch = 0;
      sm_latency = Histogram.create ();
      sm_handoff = Histogram.create ();
    }
  in
  List.fold_left
    (fun s sp ->
      let s = { s with sm_total = s.sm_total + 1 } in
      let s = { s with sm_retries = s.sm_retries + sp.sp_retries } in
      let s =
        if sp.sp_residual <> None then
          { s with sm_residuals = s.sm_residuals + 1 }
        else s
      in
      let s =
        if sp.sp_resubmitted <> None then
          { s with sm_resubmitted = s.sm_resubmitted + 1 }
        else s
      in
      let s =
        if cross_epoch sp then { s with sm_cross_epoch = s.sm_cross_epoch + 1 }
        else s
      in
      (match handoff_latency sp with
       | Some dt when dt >= 0.0 -> Histogram.record s.sm_handoff dt
       | Some _ | None -> ());
      match state sp with
      | Replied ->
        (match sp.sp_replied with
         | Some t -> Histogram.record s.sm_latency (t -. sp.sp_submitted)
         | None -> ());
        { s with sm_replied = s.sm_replied + 1 }
      | Applied -> { s with sm_applied_unreplied = s.sm_applied_unreplied + 1 }
      | Submitted | Ordered | Residual | Resubmitted ->
        { s with sm_unresolved = s.sm_unresolved + 1 })
    s spans

let resolved_fraction s =
  if s.sm_total = 0 then 1.0
  else
    float_of_int (s.sm_replied + s.sm_applied_unreplied)
    /. float_of_int s.sm_total

let record reg spans =
  let bump ?labels name n =
    let r = Registry.counter ?labels reg name in
    r := !r + n
  in
  let lat = Registry.histogram reg "span.latency_s" in
  let hand = Registry.histogram reg "span.handoff_s" in
  let replies = Registry.series reg "span.reply_latency" in
  List.iter
    (fun sp ->
      bump "span.total" 1;
      if sp.sp_retries > 0 then bump "span.retries" sp.sp_retries;
      (match sp.sp_ordered with
       | Some (e, _) when e >= 0 ->
         bump ~labels:[ ("epoch", string_of_int e) ] "span.ordered" 1
       | Some _ | None -> ());
      (match sp.sp_residual with
       | Some (e, _) when e >= 0 ->
         bump ~labels:[ ("epoch", string_of_int e) ] "span.residual" 1
       | Some _ | None -> ());
      (match sp.sp_resubmitted with
       | Some (_, e, _) when e >= 0 ->
         bump ~labels:[ ("epoch", string_of_int e) ] "span.resubmitted" 1
       | Some _ | None -> ());
      (match sp.sp_applied with
       | Some (e, _) when e >= 0 ->
         bump ~labels:[ ("epoch", string_of_int e) ] "span.applied" 1
       | Some _ | None -> ());
      (match handoff_latency sp with
       | Some dt when dt >= 0.0 -> Histogram.record hand dt
       | Some _ | None -> ());
      match state sp with
      | Replied ->
        bump "span.replied" 1;
        (match sp.sp_replied with
         | Some t ->
           let dt = t -. sp.sp_submitted in
           Histogram.record lat dt;
           Timeseries.add replies ~time:t dt
         | None -> ())
      | Applied -> bump "span.applied_unreplied" 1
      | Submitted | Ordered | Residual | Resubmitted -> bump "span.unresolved" 1)
    spans

let pp_summary ppf s =
  Format.fprintf ppf
    "spans: %d total, %d replied, %d applied-unreplied, %d unresolved \
     (resolved %.2f%%); %d retries, %d residuals, %d resubmitted, %d \
     cross-epoch"
    s.sm_total s.sm_replied s.sm_applied_unreplied s.sm_unresolved
    (100.0 *. resolved_fraction s)
    s.sm_retries s.sm_residuals s.sm_resubmitted s.sm_cross_epoch;
  if Histogram.count s.sm_latency > 0 then
    Format.fprintf ppf "@.  latency  %a" Histogram.pp_summary s.sm_latency;
  if Histogram.count s.sm_handoff > 0 then
    Format.fprintf ppf "@.  handoff  %a" Histogram.pp_summary s.sm_handoff
