(** Observatory: one labeled metrics registry for a whole run.

    The registry unifies the three raw instruments ([Counters],
    [Histogram], [Timeseries]) behind a single handle with structured
    labels, and owns the run's {!Rsmr_sim.Trace} bus so span collectors
    and other listeners have one place to subscribe.

    {2 Cells and labels}

    A cell is identified by a metric name plus a canonical (sorted,
    deduplicated) label set, e.g. [applied{epoch=1,node=2}].  Lookup
    functions are find-or-create and return the {e live} instrument, so
    hot paths resolve a cell once at setup and then mutate it directly —
    the same trick as [Counters.handle]:

    {[
      let c_applied = Registry.counter reg ~labels:[ ("node", "2") ] "applied" in
      ... incr c_applied (* per event; no hashing, no allocation *)
    ]}

    {2 Scopes}

    [scope reg ~node ~epoch] pre-binds a label set so per-node/per-epoch
    cells stop being name-mangled by hand ([Printf.sprintf "n%d.%s"]).

    {2 Attached sections}

    Existing subsystems that already keep a flat [Counters.t] (the
    network, the service) attach it as a named {e section}.  The registry
    exports section counters with a [section] label, splitting the
    legacy dotted per-message-type keys ([sent.accept]) into a base name
    plus an [msg_type] label — so per-message-type series come out
    labeled without touching the send hot path.

    {2 Export}

    [to_json] renders the whole registry as one deterministic
    machine-readable document (schema [rsmr-metrics/1]): keys sorted,
    cells sorted by (name, labels), stable float formatting.  Equal
    registries produce byte-identical documents regardless of insertion
    order. *)

type t

type labels = (string * string) list
(** Label sets are canonicalized on entry: sorted by key then value,
    exact duplicates removed.  Keys and values must not contain ['{'],
    ['}'], [','] or ['=']. *)

val create : ?meta:labels -> unit -> t
(** [meta] is run-level metadata exported under ["meta"] in the JSON
    document (e.g. [proto], [seed], [label]). *)

val set_meta : t -> string -> string -> unit
(** Add or replace one run-level metadata key. *)

val meta : t -> labels

val bus : t -> Rsmr_sim.Trace.t
(** The registry's trace bus.  Protocol code emits lifecycle events here;
    span collectors subscribe here. *)

(** {1 Cells} *)

val counter : ?labels:labels -> t -> string -> int ref
(** Find-or-create a counter cell; the returned ref is the live cell. *)

val histogram : ?labels:labels -> t -> string -> Rsmr_sim.Histogram.t

val series : ?labels:labels -> t -> string -> Rsmr_sim.Timeseries.t

(** {1 Scopes} *)

type scope
(** A registry handle with a pre-bound label set. *)

val scope : ?node:int -> ?epoch:int -> ?labels:labels -> t -> scope

val scope_labels : scope -> labels

val scope_counter : scope -> string -> int ref

val scope_histogram : scope -> string -> Rsmr_sim.Histogram.t

val scope_series : scope -> string -> Rsmr_sim.Timeseries.t

(** {1 Attached legacy counter sections} *)

val counters : t -> string -> Rsmr_sim.Counters.t
(** [counters t name] finds or creates the attached flat counter section
    [name].  The returned [Counters.t] is live: subsystems keep using the
    [Counters] API (including [Counters.handle]) and the registry picks
    the values up at export time. *)

val attach : t -> string -> Rsmr_sim.Counters.t -> unit
(** Attach an existing counter table as section [name], replacing any
    previous section of that name. *)

val sections : t -> (string * Rsmr_sim.Counters.t) list
(** Attached sections, sorted by name. *)

(** {1 Aggregation and export} *)

val merge : t -> t -> t
(** Commutative merge into a fresh registry: counters sum, histograms
    merge bucket-wise, series concatenate (re-sorted by time), sections
    sum per key, metadata unions (on a conflicting key the
    lexicographically larger value wins, for commutativity). *)

type flat_counter = { f_name : string; f_labels : labels; f_value : int }

val flat_counters : t -> flat_counter list
(** Every counter value the document will carry — labeled cells plus
    attached sections, the latter with a [section] label and their
    dotted per-message-type keys ([sent.accept]) split into base name
    plus [msg_type].  Sorted by (name, labels), exactly as exported. *)

val to_json : t -> string
(** The [rsmr-metrics/1] document.  Deterministic: equal registries
    render byte-identically. *)

val save : t -> path:string -> unit
(** Write [to_json] to [path] (trailing newline included). *)
