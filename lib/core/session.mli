(** Client session table: the deduplication state that makes command
    application exactly-once even though clients retry, pipeline several
    outstanding requests, and residual commands are re-submitted across
    configurations.

    Every applied (client, seq) is remembered with its response, so a
    duplicate ordering of any previously applied request re-replies instead
    of re-executing.  Part of the replicated state: applied
    deterministically on every replica and shipped inside snapshots during
    state transfer.  Responses below the client's acknowledged watermark
    are trimmed (see {!trim}), keeping the table bounded by in-flight
    windows rather than run length. *)

type t

val empty : t

val check :
  t -> client:Rsmr_net.Node_id.t -> seq:int -> [ `New | `Dup of string | `Stale ]
(** [`New]: never applied, execute it.  [`Dup rsp]: already applied —
    re-reply the cached response, do not re-execute.  [`Stale]: at or below
    the client's trimmed watermark — already applied {e and} acknowledged,
    so neither execute nor reply (duplicates can trail long after the ack,
    e.g. residual re-submissions across a reconfiguration). *)

val record : t -> client:Rsmr_net.Node_id.t -> seq:int -> rsp:string -> t

val trim : t -> client:Rsmr_net.Node_id.t -> below:int -> t
(** Forget cached responses for sequences < [below] — the client has
    acknowledged them (piggybacked watermark), so it will never ask for
    those replies again.  The watermark itself is retained (the {e floor}),
    so late duplicates of trimmed sequences are still recognized as
    [`Stale] rather than re-executed.  Keeps session tables (and therefore
    snapshots) bounded by the clients' in-flight windows rather than by run
    length. *)

val cardinal : t -> int
(** Total number of remembered (client, seq) pairs. *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
