(** Reconfigurable state machine replication composed from non-reconfigurable
    building blocks — the paper's contribution.

    One service instance manages, on every simulated node, a stack of
    static SMR instances (any {!Rsmr_smr.Block_intf.S}), one per
    configuration epoch:

    - Epoch [e]'s instance orders {!Envelope} commands.  The first decided
      [Reconfig] command {e wedges} the instance: the composed history for
      epoch [e] is exactly the log prefix up to that command.
    - Commands the black box happens to order after the wedge point are
      {e residuals}: never applied in [e], optionally re-submitted into
      [e+1] (deduplicated by client session).
    - Old members push [Bootstrap] to the new configuration's members; new
      members pull the wedge-point snapshot (application state + session
      table) in chunks, spreading their fetches across old members.
    - With speculative handoff on, epoch [e+1]'s instance boots and orders
      commands {e while} the snapshot is in flight; it executes and replies
      only once the snapshot is installed.
    - Superseded instances halt on [Retire]; the directory node tracks the
      freshest configuration for clients that lost the trail.

    {!Make_on} composes {e any} building block; {!Make} is the Multi-Paxos
    default.  {!Rsmr_smr.Vr} demonstrates that the layer really is
    block-agnostic. *)

type epoch_stat = {
  es_epoch : int;
  es_activated : bool;
  es_retired : bool;
  es_wedged_at : int option;
      (** log index of the first decided [Reconfig], once wedged *)
  es_applied_hi : int;
      (** highest log index whose command took effect in this instance
          ([-1] if none).  Epoch-prefix safety is
          [es_wedged_at = Some w -> es_applied_hi <= w]. *)
  es_digest : int64;
      (** FNV-1a chain over every (index, envelope) the instance
          processed, in order.  Committed-prefix agreement: two nodes
          with equal [es_applied_hi] in the same epoch must have equal
          digests — the model checker's cross-node witness. *)
}
(** Per-instance audit record, one per epoch a node hosts — the raw
    material for the crucible's epoch-prefix and wedge-agreement
    oracles. *)

(** Output signature of the service functors. *)
module type S = sig
  type t
  type app_state

  val create :
    engine:Rsmr_sim.Engine.t ->
    ?latency:Rsmr_net.Latency.t ->
    ?drop:float ->
    ?bandwidth:float ->
    ?smr_params:Rsmr_smr.Params.t ->
    ?options:Options.t ->
    ?universe:Rsmr_net.Node_id.t list ->
    ?obs:Rsmr_obs.Registry.t ->
    ?net_mode:Rsmr_net.Network.mode ->
    members:Rsmr_net.Node_id.t list ->
    unit ->
    t
  (** [net_mode] selects the transport mode (default [`Sim]); the model
      checker passes [`Enumerate] so message delivery becomes its
      choice rather than a scheduled event.  It must be fixed at
      creation — the service sends messages while it boots.

      [universe] is every node id that may ever host a replica (defaults to
      [members]); nodes outside it cannot be reconfigured in.  Two extra
      ids are allocated above the universe for the directory node and the
      administrative client.  Client ids must not collide with either.

      [obs] is the run's Observatory registry (a fresh one is created when
      omitted): the network accounts into its ["net"] section, the service
      into ["svc"], blocks and instances into [{node; epoch}]-scoped
      labeled cells, and per-command lifecycle events are emitted on its
      trace bus whenever the bus has a listener. *)

  val cluster : t -> Rsmr_iface.Cluster.t
  (** The protocol-agnostic face used by workloads and benchmarks. *)

  val set_on_dir_update :
    t ->
    (epoch:int ->
     members:Rsmr_net.Node_id.t list ->
     leader:Rsmr_net.Node_id.t option ->
     unit) ->
    unit
  (** Observer invoked whenever this service would inform its directory
      node of a configuration change: at wedge time (new epoch, no leader
      yet) and when the new epoch's leader announces itself (leader
      hint).  The sharded platform hooks this to republish each shard's
      freshest configuration into the {e replicated} directory service;
      the default is a no-op.  Called synchronously on the node that
      produced the update — treat it as a local tap, not a delivery
      guarantee. *)

  val canonical_state : t -> string
  (** Canonical encoding of the complete composed-system state — every
      host's instance stack (including block fingerprints, sessions and
      app snapshots), the directory, client endpoints, and all
      enumerate-mode message queues — with unordered collections in
      sorted order.  Two systems that will behave identically under
      identical future choices encode identically; virtual-clock
      readings and timer due-times are excluded (timer {e presence} is
      included).  The model checker hashes this for visited-state
      dedup.  Not a wire format: nothing decodes it. *)

  (** {1 Introspection (tests, invariant checks)} *)

  val engine : t -> Rsmr_sim.Engine.t
  val net : t -> Wire.t Rsmr_net.Network.t
  val directory_id : t -> Rsmr_net.Node_id.t
  val current_epoch : t -> int
  val current_members : t -> Rsmr_net.Node_id.t list

  val counters : t -> Rsmr_sim.Counters.t
  (** Keys include "applied", "wedges", "residuals",
      "residuals_resubmitted", "transfers", "local_activations",
      "chunks_sent", "replies", "redirects".  This is the live ["svc"]
      section of {!obs}. *)

  val obs : t -> Rsmr_obs.Registry.t
  (** The run's Observatory registry (same handle as
      [(cluster t).obs]). *)

  val app_state : t -> Rsmr_net.Node_id.t -> app_state option
  (** Application state of the newest activated instance hosted on a node. *)

  val host_epoch : t -> Rsmr_net.Node_id.t -> int option
  (** Newest epoch a node hosts (activated or not). *)

  val live_instances : t -> Rsmr_net.Node_id.t -> int
  (** Instances on the node whose replica has not been halted. *)

  val current_leader : t -> Rsmr_net.Node_id.t option
  (** The node leading the newest epoch's instance, if any (and not
      crashed). *)

  val epoch_stats : t -> Rsmr_net.Node_id.t -> epoch_stat list
  (** Audit records for every instance the node hosts, oldest epoch
      first; empty for nodes that host none. *)
end

module Make_on (_ : Rsmr_smr.Block_intf.S) (Sm : Rsmr_app.State_machine.S) :
  S with type app_state = Sm.t
(** Compose an arbitrary building block. *)

module Make (Sm : Rsmr_app.State_machine.S) : S with type app_state = Sm.t
(** The default composition over static Multi-Paxos
    ({!Rsmr_smr.Paxos_block}). *)
