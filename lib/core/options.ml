type mutation = No_first_wedge

type t = {
  speculative : bool;
  residual_resubmit : bool;
  chunk_size : int;
  fetch_timeout : float;
  mutation : mutation option;
}

let default =
  {
    speculative = true;
    residual_resubmit = true;
    chunk_size = 64 * 1024;
    fetch_timeout = 0.25;
    mutation = None;
  }

let pp ppf t =
  Format.fprintf ppf "spec=%b residual=%b chunk=%dB fetch_to=%.0fms%s"
    t.speculative t.residual_resubmit t.chunk_size (t.fetch_timeout *. 1e3)
    (match t.mutation with
     | None -> ""
     | Some No_first_wedge -> " MUTATION=no-first-wedge")
