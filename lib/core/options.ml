type mutation = No_first_wedge

type t = {
  speculative : bool;
  residual_resubmit : bool;
  chunk_size : int;
  fetch_timeout : float;
  client_batch_window : float;
  client_batch_max : int;
  mutation : mutation option;
}

let default =
  {
    speculative = true;
    residual_resubmit = true;
    chunk_size = 64 * 1024;
    fetch_timeout = 0.25;
    client_batch_window = 0.0005;
    client_batch_max = 16;
    mutation = None;
  }

let pp ppf t =
  Format.fprintf ppf
    "spec=%b residual=%b chunk=%dB fetch_to=%.0fms cbatch=%.1fms/%d%s"
    t.speculative t.residual_resubmit t.chunk_size (t.fetch_timeout *. 1e3)
    (t.client_batch_window *. 1e3) t.client_batch_max
    (match t.mutation with
     | None -> ""
     | Some No_first_wedge -> " MUTATION=no-first-wedge")
