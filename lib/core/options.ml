module Strategy = Rsmr_iface.Reconfig_strategy

type mutation = No_first_wedge

type t = {
  strategy : Strategy.t;
  chunk_size : int;
  fetch_timeout : float;
  prepare_ttl : float;
  client_batch_window : float;
  client_batch_max : int;
  mutation : mutation option;
}

let default =
  {
    strategy = Strategy.composed;
    chunk_size = 64 * 1024;
    fetch_timeout = 0.25;
    prepare_ttl = 1.0;
    client_batch_window = 0.0005;
    client_batch_max = 16;
    mutation = None;
  }

let speculative t = t.strategy.Strategy.handoff = `Speculative
let residual_resubmit t = t.strategy.Strategy.residuals = `Resubmit
let early_prepare t = t.strategy.Strategy.prepare = `Early

let pp ppf t =
  Format.fprintf ppf
    "strategy=%s spec=%b residual=%b chunk=%dB fetch_to=%.0fms cbatch=%.1fms/%d%s"
    t.strategy.Strategy.name (speculative t) (residual_resubmit t)
    t.chunk_size (t.fetch_timeout *. 1e3)
    (t.client_batch_window *. 1e3) t.client_batch_max
    (match t.mutation with
     | None -> ""
     | Some No_first_wedge -> " MUTATION=no-first-wedge")
