(** The composition layer's network message union.

    [Block] tunnels a static-instance message (already encoded by the
    building block — the composition layer treats it as bytes), tagged
    with its epoch so a host can run replicas of several configurations at
    once — the overlap that speculative handoff exploits.  The remaining constructors are the
    glue the paper adds around the black boxes: bootstrap of new members,
    pull-based chunked state transfer, retirement of superseded instances,
    and the client/directory protocols. *)

type prepare = {
  epoch : int;
  members : Rsmr_net.Node_id.t list;
  prev_epoch : int;
  prev_members : Rsmr_net.Node_id.t list;
}
(** Matchmaker-style early prepare: the old epoch's leader asks the next
    configuration to bootstrap {e before} the [Reconfig] commits, so the
    new instance's election overlaps the old epoch still committing.  A
    prepared instance stays provisional until a wedge-time {!t.Bootstrap}
    confirms (or replaces) it. *)

type t =
  | Block of { epoch : int; data : string }
  | Client of Rsmr_client.Client_msg.t
  | Bootstrap of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      prev_epoch : int;
      prev_members : Rsmr_net.Node_id.t list;
    }
  | Fetch_state of { epoch : int }
      (** "Send me the starting snapshot for [epoch]" — answered by a
          member of [epoch - 1] once it has wedged. *)
  | State_chunk of { epoch : int; index : int; total : int; data : string }
  | Retire of { epoch : int }
      (** "Configuration [epoch] is live — instances below it may halt." *)
  | Dir_update of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }
  | Dir_lookup
  | Dir_info of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }
  | Prepare of prepare

val write_prepare : Rsmr_app.Codec.Writer.t -> prepare -> unit
val read_prepare : Rsmr_app.Codec.Reader.t -> prepare
[@@rsmr.deterministic] [@@rsmr.total]

val size : t -> int
(** Wire size in bytes: a single counting pass over the same body as
    {!encode}, allocating nothing. *)

val write : Rsmr_app.Codec.Writer.t -> t -> unit
(** The wire-format body shared by {!encode} and {!size}; also lets a
    parent codec embed this message via [Writer.nested]. *)

val read : Rsmr_app.Codec.Reader.t -> t
(** Decode in place from a reader (e.g. a [Reader.view]). *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
val pp : Format.formatter -> t -> unit
val tag : t -> string
