(** State-transfer payload: the application snapshot taken at the wedge
    point plus the session table, chunked for shipping. *)

type t = { app : string; sessions : string }

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]

val chunk : string -> size:int -> string list
(** Split into pieces of at most [size] bytes (at least one piece, even for
    the empty string, so transfer completion is unambiguous). *)

val assemble : string list -> string
