(** The command envelope the composition layer feeds through the static SMR
    building block.

    The static instance orders opaque bytes; this module is the only codec
    that interprets them.  [App] carries a client command together with its
    session coordinates (for exactly-once application); [Reconfig] is the
    paper's reconfiguration command — deciding one wedges the instance. *)

type t =
  | App of {
      client : Rsmr_net.Node_id.t;
      seq : int;
      low_water : int;  (** client's session-GC watermark *)
      cmd : string;
    }
  | Reconfig of {
      client : Rsmr_net.Node_id.t;
      seq : int;
      members : Rsmr_net.Node_id.t list;
    }

val size : t -> int
(** Wire size in bytes: a single counting pass over the same body as
    {!encode}, allocating nothing. *)

val write : Rsmr_app.Codec.Writer.t -> t -> unit
(** The wire-format body shared by {!encode} and {!size}; also lets a
    parent codec embed an envelope via [Writer.nested]. *)

val read : Rsmr_app.Codec.Reader.t -> t
(** Decode in place from a reader (e.g. a [Reader.view]). *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
val pp : Format.formatter -> t -> unit
