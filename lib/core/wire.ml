module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type prepare = {
  epoch : int;
  members : Rsmr_net.Node_id.t list;
  prev_epoch : int;
  prev_members : Rsmr_net.Node_id.t list;
}

type t =
  | Block of { epoch : int; data : string }
  | Client of Rsmr_client.Client_msg.t
  | Bootstrap of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      prev_epoch : int;
      prev_members : Rsmr_net.Node_id.t list;
    }
  | Fetch_state of { epoch : int }
  | State_chunk of { epoch : int; index : int; total : int; data : string }
  | Retire of { epoch : int }
  | Dir_update of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }
  | Dir_lookup
  | Dir_info of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }
  | Prepare of prepare

(* [Prepare] bodies are their own named sub-codec so the shape checker
   proves the pair symmetric on its own. *)
let write_prepare w (p : prepare) =
  W.varint w p.epoch;
  W.list w W.zigzag p.members;
  W.varint w p.prev_epoch;
  W.list w W.zigzag p.prev_members

let read_prepare r =
  let epoch = R.varint r in
  let members = R.list r R.zigzag in
  let prev_epoch = R.varint r in
  let prev_members = R.list r R.zigzag in
  { epoch; members; prev_epoch; prev_members }
[@@rsmr.deterministic] [@@rsmr.total]

(* The one wire-format body: [encode] runs it against a buffer sink,
   [size] against a counting sink, so they cannot drift. *)
let write w t =
  match t with
  | Block { epoch; data } ->
    W.u8 w 0;
    W.varint w epoch;
    W.string w data
  | Client m ->
    W.u8 w 1;
    W.nested w Rsmr_client.Client_msg.write m
  | Bootstrap { epoch; members; prev_epoch; prev_members } ->
    W.u8 w 2;
    W.varint w epoch;
    W.list w W.zigzag members;
    W.varint w prev_epoch;
    W.list w W.zigzag prev_members
  | Fetch_state { epoch } ->
    W.u8 w 3;
    W.varint w epoch
  | State_chunk { epoch; index; total; data } ->
    W.u8 w 4;
    W.varint w epoch;
    W.varint w index;
    W.varint w total;
    W.string w data
  | Retire { epoch } ->
    W.u8 w 5;
    W.varint w epoch
  | Dir_update { epoch; members; leader } ->
    W.u8 w 6;
    W.varint w epoch;
    W.list w W.zigzag members;
    W.option w W.zigzag leader
  | Dir_lookup -> W.u8 w 7
  | Dir_info { epoch; members; leader } ->
    W.u8 w 8;
    W.varint w epoch;
    W.list w W.zigzag members;
    W.option w W.zigzag leader
  | Prepare p ->
    W.u8 w 9;
    write_prepare w p

let read r =
  match R.u8 r with
  | 0 ->
    let epoch = R.varint r in
    Block { epoch; data = R.string r }
  | 1 -> Client (Rsmr_client.Client_msg.read (R.view r))
  | 2 ->
    let epoch = R.varint r in
    let members = R.list r R.zigzag in
    let prev_epoch = R.varint r in
    let prev_members = R.list r R.zigzag in
    Bootstrap { epoch; members; prev_epoch; prev_members }
  | 3 -> Fetch_state { epoch = R.varint r }
  | 4 ->
    let epoch = R.varint r in
    let index = R.varint r in
    let total = R.varint r in
    State_chunk { epoch; index; total; data = R.string r }
  | 5 -> Retire { epoch = R.varint r }
  | 6 ->
    let epoch = R.varint r in
    let members = R.list r R.zigzag in
    Dir_update { epoch; members; leader = R.option r R.zigzag }
  | 7 -> Dir_lookup
  | 8 ->
    let epoch = R.varint r in
    let members = R.list r R.zigzag in
    Dir_info { epoch; members; leader = R.option r R.zigzag }
  | 9 -> Prepare (read_prepare r)
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c

let tag = function
  | Block _ -> "block"
  | Client _ -> "client"
  | Bootstrap _ -> "bootstrap"
  | Fetch_state _ -> "fetch_state"
  | State_chunk _ -> "state_chunk"
  | Retire _ -> "retire"
  | Dir_update _ -> "dir_update"
  | Dir_lookup -> "dir_lookup"
  | Dir_info _ -> "dir_info"
  | Prepare _ -> "prepare"

let pp_members ppf members =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Rsmr_net.Node_id.pp ppf members

let pp ppf = function
  | Block { epoch; data } ->
    Format.fprintf ppf "block#%d(%d bytes)" epoch (String.length data)
  | Client m -> Format.fprintf ppf "client(%a)" Rsmr_client.Client_msg.pp m
  | Bootstrap { epoch; members; prev_epoch; _ } ->
    Format.fprintf ppf "bootstrap(#%d {%a} prev=#%d)" epoch pp_members members
      prev_epoch
  | Fetch_state { epoch } -> Format.fprintf ppf "fetch_state(#%d)" epoch
  | State_chunk { epoch; index; total; data } ->
    Format.fprintf ppf "state_chunk(#%d %d/%d,%d bytes)" epoch (index + 1)
      total (String.length data)
  | Retire { epoch } -> Format.fprintf ppf "retire(#%d)" epoch
  | Dir_update { epoch; members; _ } ->
    Format.fprintf ppf "dir_update(#%d {%a})" epoch pp_members members
  | Dir_lookup -> Format.pp_print_string ppf "dir_lookup"
  | Dir_info { epoch; members; _ } ->
    Format.fprintf ppf "dir_info(#%d {%a})" epoch pp_members members
  | Prepare { epoch; members; prev_epoch; _ } ->
    Format.fprintf ppf "prepare(#%d {%a} prev=#%d)" epoch pp_members members
      prev_epoch
