(** The configuration directory: maps the (single, here) service to its
    freshest known configuration, so clients that lost track of the member
    set can recover.

    Runs on one dedicated simulated node.  The state is literally a
    one-entry {!Rsmr_app.Dir_app} map under a fixed service name, so the
    single-service oracle and the replicated directory share one
    implementation of the monotone-epoch merge rule — the paper notes the
    directory itself can be replicated with the same machinery, and the
    sharded platform does exactly that. *)

type t

val create : unit -> t

val update :
  t -> epoch:int -> members:Rsmr_net.Node_id.t list ->
  leader:Rsmr_net.Node_id.t option -> unit
(** Monotone in [epoch]: stale updates are ignored; a same-epoch update may
    refresh the leader hint. *)

val entry : t -> Rsmr_app.Dir_app.entry option
(** The directory's answer in the replicated directory's own entry shape;
    [None] until the first {!update}. *)

val epoch : t -> int
val members : t -> Rsmr_net.Node_id.t list
val leader : t -> Rsmr_net.Node_id.t option
