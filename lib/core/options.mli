(** Composition-layer knobs — each one is an ablation axis in the
    evaluation.

    The reconfiguration policy itself is no longer a pair of booleans:
    it is a {!Rsmr_iface.Reconfig_strategy.t} value, and
    {!Rsmr_core.Service.Make} drives whatever stage choices the value
    declares.  {!speculative}, {!residual_resubmit} and {!early_prepare}
    are the derived per-stage views the driver reads. *)

type mutation = No_first_wedge
      (** Deliberately re-breaks the first-wedge-wins dispatch guard:
          commands the block orders {e after} an instance's wedge point
          are applied instead of being diverted to residual handling.
          This reintroduces the epoch-prefix bug the guard fixed, and
          exists only as the model checker's teeth test — Scope must
          find a counterexample within a few dozen steps when it is
          enabled.  Never set it in a real configuration. *)

type t = {
  strategy : Rsmr_iface.Reconfig_strategy.t;
      (** Which stage policies drive an epoch change.  Must be a
          [`Composition]-driver strategy ({!Rsmr_iface.Reconfig_strategy});
          native strategies (raft) are whole other stacks, not Service
          configurations. *)
  chunk_size : int;  (** state-transfer chunk bytes *)
  fetch_timeout : float;  (** retry period for snapshot fetches *)
  prepare_ttl : float;
      (** Early-prepare hygiene: a provisionally-bootstrapped next epoch
          that is not confirmed by a committed [Reconfig] within this many
          seconds is torn down.  Only read under
          {!Rsmr_iface.Reconfig_strategy.t.prepare}[ = `Early]. *)
  client_batch_window : float;
      (** Client endpoint coalescing window (seconds): submissions
          accumulate for this long and ship as one
          {!Rsmr_client.Client_msg.Request_batch}.  [0.] sends each
          request immediately. *)
  client_batch_max : int;
      (** Coalescing buffer capacity: a full buffer flushes without
          waiting for the window. *)
  mutation : mutation option;
      (** [None] in every legitimate run; see {!mutation}. *)
}

val default : t
(** {!Rsmr_iface.Reconfig_strategy.composed} with the historical knob
    values. *)

val speculative : t -> bool
(** Paper's key optimization (strategy handoff = [`Speculative]): boot
    the next configuration's SMR instance (and let it order commands)
    concurrently with state transfer; execution/replies still wait for
    the snapshot.  Off = the instance only starts once the snapshot is
    installed. *)

val residual_resubmit : t -> bool
(** Strategy residuals = [`Resubmit]: re-submit commands the old
    instance ordered after its wedge point into the new instance
    (otherwise only client retries recover them). *)

val early_prepare : t -> bool
(** Strategy prepare = [`Early] (Matchmaker-style): bootstrap the next
    epoch's instance at [Reconfig] {e submission}, before it commits. *)

val pp : Format.formatter -> t -> unit
