(** Composition-layer knobs — each one is an ablation axis in the
    evaluation. *)

type mutation = No_first_wedge
      (** Deliberately re-breaks the first-wedge-wins dispatch guard:
          commands the block orders {e after} an instance's wedge point
          are applied instead of being diverted to residual handling.
          This reintroduces the epoch-prefix bug the guard fixed, and
          exists only as the model checker's teeth test — Scope must
          find a counterexample within a few dozen steps when it is
          enabled.  Never set it in a real configuration. *)

type t = {
  speculative : bool;
      (** Paper's key optimization: boot the next configuration's SMR
          instance (and let it order commands) concurrently with state
          transfer; execution/replies still wait for the snapshot.  Off =
          the instance only starts once the snapshot is installed. *)
  residual_resubmit : bool;
      (** Re-submit commands the old instance ordered after its wedge point
          into the new instance (otherwise only client retries recover
          them). *)
  chunk_size : int;  (** state-transfer chunk bytes *)
  fetch_timeout : float;  (** retry period for snapshot fetches *)
  client_batch_window : float;
      (** Client endpoint coalescing window (seconds): submissions
          accumulate for this long and ship as one
          {!Rsmr_client.Client_msg.Request_batch}.  [0.] sends each
          request immediately. *)
  client_batch_max : int;
      (** Coalescing buffer capacity: a full buffer flushes without
          waiting for the window. *)
  mutation : mutation option;
      (** [None] in every legitimate run; see {!mutation}. *)
}

val default : t
val pp : Format.formatter -> t -> unit
