module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Fnv = Rsmr_sim.Fnv
module Trace = Rsmr_sim.Trace
module Obs = Rsmr_obs.Registry
module Stable = Rsmr_sim.Stable
module Network = Rsmr_net.Network
module Node_id = Rsmr_net.Node_id
module Config = Rsmr_smr.Config
module Client_msg = Rsmr_client.Client_msg
module Endpoint = Rsmr_client.Endpoint

type epoch_stat = {
  es_epoch : int;
  es_activated : bool;
  es_retired : bool;
  es_wedged_at : int option;
  es_applied_hi : int;
  es_digest : int64;
}

module type S = sig
  type t
  type app_state

  val create :
    engine:Rsmr_sim.Engine.t ->
    ?latency:Rsmr_net.Latency.t ->
    ?drop:float ->
    ?bandwidth:float ->
    ?smr_params:Rsmr_smr.Params.t ->
    ?options:Options.t ->
    ?universe:Rsmr_net.Node_id.t list ->
    ?obs:Rsmr_obs.Registry.t ->
    ?net_mode:Rsmr_net.Network.mode ->
    members:Rsmr_net.Node_id.t list ->
    unit ->
    t

  val cluster : t -> Rsmr_iface.Cluster.t

  val set_on_dir_update :
    t ->
    (epoch:int ->
     members:Rsmr_net.Node_id.t list ->
     leader:Rsmr_net.Node_id.t option ->
     unit) ->
    unit

  val canonical_state : t -> string
  val engine : t -> Rsmr_sim.Engine.t
  val net : t -> Wire.t Rsmr_net.Network.t
  val directory_id : t -> Rsmr_net.Node_id.t
  val current_epoch : t -> int
  val current_members : t -> Rsmr_net.Node_id.t list
  val counters : t -> Rsmr_sim.Counters.t
  val obs : t -> Rsmr_obs.Registry.t
  val app_state : t -> Rsmr_net.Node_id.t -> app_state option
  val host_epoch : t -> Rsmr_net.Node_id.t -> int option
  val live_instances : t -> Rsmr_net.Node_id.t -> int
  val current_leader : t -> Rsmr_net.Node_id.t option
  val epoch_stats : t -> Rsmr_net.Node_id.t -> epoch_stat list
end

module Make_on (B : Rsmr_smr.Block_intf.S) (Sm : Rsmr_app.State_machine.S) =
struct
  module Replica = B

  (* The composition layer is a driver over
     [t.opts.Options.strategy] ({!Rsmr_iface.Reconfig_strategy}): the
     stage sequence wedge → prepare → state transfer → directory publish
     → handoff → residual re-submission is fixed, and the strategy value
     picks a policy per stage.  [Options.speculative],
     [Options.residual_resubmit] and [Options.early_prepare] are the
     derived stage views read below; [composed] (the paper's default)
     keeps every code path bit-for-bit identical to the historical
     hard-wired sequence. *)

  type app_state = Sm.t
  type instance = {
    epoch : int;
    cfg : Config.t;
    prev_members : Node_id.t list;
    mutable replica : Replica.t option;
    mutable app : Sm.t;
    mutable sessions : Session.t;
    mutable activated : bool;
    mutable wedged_at : int option;
    mutable applied_hi : int;
        (* highest log index whose command took effect in this instance
           (applied, deduplicated, or wedged) — the epoch-prefix-safety
           oracle asserts it never passes the wedge index *)
    mutable applied_digest : int64;
        (* FNV-1a chain over every (idx, envelope-bytes) this instance
           processed, in order.  Two nodes with equal [applied_hi] in the
           same epoch must have equal digests — the model checker's
           committed-prefix-agreement witness. *)
    mutable next_members : Node_id.t list;
    mutable final_snapshot : string option;
    mutable spec_buf : (int * string) list; (* raw envelopes, newest first *)
    mutable residual_buf : string list;
        (* wedge-time residual envelopes awaiting batched re-submission
           into the next epoch, newest first *)
    mutable residual_timer : Engine.timer option;
    mutable chunks : string option array;
    mutable chunks_got : int;
    mutable fetch_timer : Engine.timer option;
    mutable fetch_rr : int;
    mutable announced : bool;
    mutable retired : bool;
    mutable provisional : bool;
        (* Matchmaker-style early prepare: the instance was bootstrapped
           at [Reconfig] submission, before the command committed.  A
           provisional instance may order speculatively but never serves
           clients, announces, or installs a snapshot until a wedge-time
           [Bootstrap] confirms its membership (or replaces it). *)
    mutable prepare_timer : Engine.timer option;
        (* provisional-hygiene TTL: tears the instance down if no
           confirmation arrives (the prepared [Reconfig] lost the race
           or never committed) *)
    sc : Obs.scope;  (* {node; epoch}-scoped registry view *)
    (* hot-path cells of that scope, resolved once per instance *)
    sc_applied : int ref;
    sc_residuals : int ref;
  }

  type host = {
    me : Node_id.t;
    instances : (int, instance) Hashtbl.t;
    pending_fetches : (int, Node_id.t list ref) Hashtbl.t;
    mutable top_epoch : int;
    mutable latest_members : Node_id.t list;
  }

  type client_rec = {
    endpoint : Endpoint.t;
    mutable dir_k : (Rsmr_app.Dir_app.entry option -> unit) option;
  }

  type t = {
    engine : Engine.t;
    net : Wire.t Network.t;
    opts : Options.t;
    smr_params : Rsmr_smr.Params.t;
    hosts : (Node_id.t, host) Hashtbl.t;
    dir : Directory.t;
    dir_id : Node_id.t;
    admin_id : Node_id.t;
    mutable admin_seq : int;
    clients : (Node_id.t, client_rec) Hashtbl.t;
    mutable on_reply : Rsmr_iface.Cluster.reply_handler;
    mutable on_dir_update :
      epoch:int -> members:Node_id.t list -> leader:Node_id.t option -> unit;
    counters : Counters.t;
    obs : Obs.t;
    bus : Trace.t;  (* = Obs.bus obs, cached *)
    wedge_times : (int, float) Hashtbl.t;
        (* new epoch -> virtual time of the first wedge that opened it;
           consumed by the first announce to measure the wedged window *)
    wedged_window : Rsmr_sim.Histogram.t;
  }

  let engine t = t.engine
  let net t = t.net
  let set_on_dir_update t f = t.on_dir_update <- f
  let directory_id t = t.dir_id
  let counters t = t.counters
  let obs t = t.obs

  (* Per-command lifecycle events for span reconstruction.  Guarded on
     [Trace.active] so an unobserved run does not even build the attrs
     list; everything tooling needs travels in attrs, never the
     message. *)
  let lifecycle t ~node ev attrs =
    Trace.emit t.bus ~time:(Engine.now t.engine) ~node ~topic:`Lifecycle
      ~attrs:(("ev", ev) :: attrs) ev
  let current_epoch t = Directory.epoch t.dir
  let current_members t = Directory.members t.dir

  let newest_instance host ~pred =
    Stable.fold_sorted ~compare:Int.compare
      (fun _ inst acc ->
        if pred inst then
          match acc with
          | Some best when best.epoch >= inst.epoch -> acc
          | _ -> Some inst
        else acc)
      host.instances None

  let app_state t node =
    match Hashtbl.find_opt t.hosts node with
    | None -> None
    | Some host -> (
      match newest_instance host ~pred:(fun i -> i.activated) with
      | Some inst -> Some inst.app
      | None -> None)

  let host_epoch t node =
    match Hashtbl.find_opt t.hosts node with
    | None -> None
    | Some host -> (
      match newest_instance host ~pred:(fun _ -> true) with
      | Some inst -> Some inst.epoch
      | None -> None)

  let live_instances t node =
    match Hashtbl.find_opt t.hosts node with
    | None -> 0
    | Some host ->
      Stable.fold_sorted ~compare:Int.compare
        (fun _ inst acc ->
          match inst.replica with
          | Some r when not (Replica.is_halted r) -> acc + 1
          | Some _ | None -> acc)
        host.instances 0

  let epoch_stats t node =
    match Hashtbl.find_opt t.hosts node with
    | None -> []
    | Some host ->
      List.rev
        (Stable.fold_sorted ~compare:Int.compare
           (fun _ inst acc ->
             {
               es_epoch = inst.epoch;
               es_activated = inst.activated;
               es_retired = inst.retired;
               es_wedged_at = inst.wedged_at;
               es_applied_hi = inst.applied_hi;
               es_digest = inst.applied_digest;
             }
             :: acc)
           host.instances [])

  let current_leader t =
    Stable.fold_sorted ~compare:Node_id.compare
      (fun id host acc ->
        if Network.is_crashed t.net id then acc
        else
          match
            newest_instance host ~pred:(fun i ->
                (not i.retired)
                && i.activated (* leading AND able to execute/reply *)
                &&
                match i.replica with
                | Some r -> Replica.is_leader r
                | None -> false)
          with
          | Some inst -> (
            match acc with
            | Some (e, _) when e >= inst.epoch -> acc
            | _ -> Some (inst.epoch, id))
          | None -> acc)
      t.hosts None
    |> Option.map snd

  let send t ~src ~dst wire = Network.send t.net ~src ~dst wire

  let reply_client t host ~client ~seq ~rsp =
    Counters.incr t.counters "replies";
    send t ~src:host.me ~dst:client (Wire.Client (Client_msg.Reply { seq; rsp }))

  let is_inst_leader inst =
    match inst.replica with Some r -> Replica.is_leader r | None -> false

  (* Announce a freshly live configuration: retire the previous instance on
     its members and give the directory a leader hint.  Done by the
     instance's leader once it is both activated and elected. *)
  let announce t host inst =
    if
      inst.activated
      && (not inst.announced)
      && (not inst.provisional)
      && is_inst_leader inst
    then begin
      inst.announced <- true;
      (* Handoff complete: the wedged window for this epoch change closes
         with the directory publish below. *)
      (match Hashtbl.find_opt t.wedge_times inst.epoch with
       | Some t0 ->
         Hashtbl.remove t.wedge_times inst.epoch;
         Rsmr_sim.Histogram.record t.wedged_window (Engine.now t.engine -. t0)
       | None -> ());
      List.iter
        (fun m -> send t ~src:host.me ~dst:m (Wire.Retire { epoch = inst.epoch }))
        inst.prev_members;
      send t ~src:host.me ~dst:t.dir_id
        (Wire.Dir_update
           {
             epoch = inst.epoch;
             members = inst.cfg.Config.members;
             leader = Some host.me;
           });
      t.on_dir_update ~epoch:inst.epoch ~members:inst.cfg.Config.members
        ~leader:(Some host.me)
    end

  (* Poll for the announce condition until it fires: leadership is decided
     by the embedded replica asynchronously and exposes no callback. *)
  let rec announce_poll t host inst =
    if (not inst.announced) && not inst.retired then begin
      announce t host inst;
      if not inst.announced then
        ignore
          (Engine.schedule t.engine ~delay:0.05 (fun () ->
               announce_poll t host inst))
    end

  let retire_instance t inst =
    if not inst.retired then begin
      inst.retired <- true;
      (match inst.replica with Some r -> Replica.halt r | None -> ());
      (match inst.fetch_timer with
       | Some timer ->
         Engine.cancel t.engine timer;
         inst.fetch_timer <- None
       | None -> ());
      (match inst.prepare_timer with
       | Some timer ->
         Engine.cancel t.engine timer;
         inst.prepare_timer <- None
       | None -> ())
    end

  let submit_envelope inst env =
    match inst.replica with
    | Some r when not (Replica.is_halted r) ->
      Replica.submit r (Envelope.encode env)
    | Some _ | None -> ()

  (* Same, for envelopes we already hold in wire form: the whole list
     reaches the block as one proposal batch (one broadcast when the block
     leads), in list order. *)
  let submit_raw_many inst values =
    match inst.replica with
    | Some r when not (Replica.is_halted r) -> (
      match values with
      | [] -> ()
      | [ value ] -> Replica.submit r value
      | _ -> Replica.submit_many r values)
    | Some _ | None -> ()

  (* --- decided-command processing --- *)

  let env_client_seq (env : Envelope.t) =
    match env with
    | Envelope.App { client; seq; _ } | Envelope.Reconfig { client; seq; _ } ->
      (client, seq)

  (* [value] is the envelope's wire bytes (what the block ordered); it is
     decoded exactly once here and threaded alongside [env] so the
     applied-digest chain and residual re-submission reuse the bytes
     instead of re-encoding. *)
  let rec dispatch t host inst idx value =
    let env = Envelope.decode value in
    match inst.wedged_at with
    | Some w when idx > w -> (
      (* First-wedge-wins: the composed history for this epoch ends at
         the wedge index, so anything the block ordered later is a
         residual, never applied here.  [No_first_wedge] re-breaks this
         guard on purpose — the model checker's mutation self-test. *)
      match t.opts.Options.mutation with
      | Some Options.No_first_wedge -> process t host inst idx env value
      | None -> handle_residual t host inst idx env value)
    | Some _ | None -> process t host inst idx env value

  and handle_residual t host inst idx env value =
    Counters.incr t.counters "residuals";
    incr inst.sc_residuals;
    if Trace.active t.bus && is_inst_leader inst then begin
      let client, seq = env_client_seq env in
      lifecycle t ~node:host.me "residual"
        [
          ("client", string_of_int client);
          ("seq", string_of_int seq);
          ("epoch", string_of_int inst.epoch);
          ("idx", string_of_int idx);
        ]
    end;
    (* Only the old instance's leader re-submits, to avoid an n-fold
       duplicate storm; session dedup makes any duplicates harmless.  If the
       leader does not itself host the next instance (disjoint
       replacement), it forwards the command to a new member as a static
       Submit, which that member's replica routes to its leader. *)
    if Options.residual_resubmit t.opts && is_inst_leader inst then begin
      Counters.incr t.counters "residuals_resubmitted";
      if Trace.active t.bus then begin
        let client, seq = env_client_seq env in
        lifecycle t ~node:host.me "resubmit"
          [
            ("client", string_of_int client);
            ("seq", string_of_int seq);
            ("from", string_of_int inst.epoch);
            ("to", string_of_int (inst.epoch + 1));
          ]
      end;
      (* Buffer and flush on a zero-delay timer: every residual decided in
         the same engine step (the common case — one committed batch past
         the wedge point) crosses the epoch boundary as a single vector
         submission instead of a per-command storm. *)
      inst.residual_buf <- value :: inst.residual_buf;
      if inst.residual_timer = None then
        inst.residual_timer <-
          Some
            (Engine.schedule t.engine ~delay:0.0 (fun () ->
                 inst.residual_timer <- None;
                 flush_residuals t host inst))
    end

  and flush_residuals t host inst =
    let values = List.rev inst.residual_buf in
    inst.residual_buf <- [];
    if values <> [] then begin
      match Hashtbl.find_opt host.instances (inst.epoch + 1) with
      | Some next -> submit_raw_many next values
      | None -> (
        (* Disjoint replacement: forward the whole residual batch to a new
           member as one static message; its replica routes it onward. *)
        match inst.next_members with
        | dst :: _ ->
          let msg =
            match values with
            | [ value ] -> B.submit_msg value
            | _ -> B.submit_many_msg values
          in
          send t ~src:host.me ~dst
            (Wire.Block { epoch = inst.epoch + 1; data = B.Msg.encode msg })
        | [] -> ())
    end

  and process t host inst idx env value =
    if idx > inst.applied_hi then inst.applied_hi <- idx;
    inst.applied_digest <-
      Fnv.combine_framed
        (Fnv.combine inst.applied_digest (string_of_int idx))
        value;
    if Trace.active t.bus && is_inst_leader inst then begin
      let client, seq = env_client_seq env in
      lifecycle t ~node:host.me "ordered"
        [
          ("client", string_of_int client);
          ("seq", string_of_int seq);
          ("epoch", string_of_int inst.epoch);
          ("idx", string_of_int idx);
        ]
    end;
    match (env : Envelope.t) with
    | Envelope.App { client; seq; low_water; cmd } -> (
      match Session.check inst.sessions ~client ~seq with
      | `New ->
        let app', resp = Sm.apply inst.app (Sm.decode_command cmd) in
        let rsp = Sm.encode_response resp in
        inst.app <- app';
        inst.sessions <-
          Session.trim
            (Session.record inst.sessions ~client ~seq ~rsp)
            ~client ~below:low_water;
        Counters.incr t.counters "applied";
        incr inst.sc_applied;
        if is_inst_leader inst then begin
          if Trace.active t.bus then
            lifecycle t ~node:host.me "applied"
              [
                ("client", string_of_int client);
                ("seq", string_of_int seq);
                ("epoch", string_of_int inst.epoch);
                ("idx", string_of_int idx);
              ];
          reply_client t host ~client ~seq ~rsp
        end
      | `Dup rsp -> if is_inst_leader inst then reply_client t host ~client ~seq ~rsp
      | `Stale -> (* already applied and acknowledged: late duplicate *) ())
    | Envelope.Reconfig { client; seq; members } -> (
      match Session.check inst.sessions ~client ~seq with
      | `New ->
        let rsp = "ok" in
        inst.sessions <- Session.record inst.sessions ~client ~seq ~rsp;
        if is_inst_leader inst then reply_client t host ~client ~seq ~rsp;
        wedge t host inst idx members
      | `Dup rsp -> if is_inst_leader inst then reply_client t host ~client ~seq ~rsp
      | `Stale -> ())

  and on_decide t host inst idx value =
    if inst.activated then dispatch t host inst idx value
    else inst.spec_buf <- (idx, value) :: inst.spec_buf

  (* --- wedging and the next configuration --- *)

  and wedge t host inst widx members' =
    (* Reconfig commands from two different clients can both be decided in
       the same instance (session dedup is per-client); the first decided
       one wins the wedge and later ones are no-ops, so this stays total
       on any wire input. *)
    if inst.wedged_at = None then begin
      inst.wedged_at <- Some widx;
      inst.next_members <- members';
      Counters.incr t.counters "wedges";
      incr (Obs.scope_counter inst.sc "wedged");
      if Trace.active t.bus then
        Trace.emit t.bus ~time:(Engine.now t.engine) ~node:host.me
          ~topic:`Reconfig
          ~attrs:
            [
              ("epoch", string_of_int inst.epoch);
              ("widx", string_of_int widx);
              ("strategy", t.opts.Options.strategy.Rsmr_iface.Reconfig_strategy.name);
            ]
          "wedged";
      if not (Hashtbl.mem t.wedge_times (inst.epoch + 1)) then
        Hashtbl.add t.wedge_times (inst.epoch + 1) (Engine.now t.engine);
      let snapshot =
        Snapshot.encode
          { Snapshot.app = Sm.snapshot inst.app;
            sessions = Session.encode inst.sessions }
      in
      inst.final_snapshot <- Some snapshot;
      let new_epoch = inst.epoch + 1 in
      if new_epoch > host.top_epoch then begin
        host.top_epoch <- new_epoch;
        host.latest_members <- members'
      end;
      (* Anyone who asked for this snapshot before we wedged.  Only the
         committed configuration's members are served: an early-prepared
         instance whose membership lost the race may have fetched too, and
         it must starve (its TTL tears it down) rather than activate. *)
      (match Hashtbl.find_opt host.pending_fetches new_epoch with
       | Some waiting ->
         Hashtbl.remove host.pending_fetches new_epoch;
         List.iter
           (fun dst -> send_snapshot t host ~dst ~epoch:new_epoch snapshot)
           (List.filter
              (fun dst -> List.exists (Node_id.equal dst) members')
              !waiting)
       | None -> ());
      (* Tell the new configuration it exists. *)
      let bootstrap_members () =
        List.iter
          (fun m ->
            if not (Node_id.equal m host.me) then
              send t ~src:host.me ~dst:m
                (Wire.Bootstrap
                   {
                     epoch = new_epoch;
                     members = members';
                     prev_epoch = inst.epoch;
                     prev_members = inst.cfg.Config.members;
                   }))
          members'
      in
      bootstrap_members ();
      (* Bootstrap is fire-and-forget: a new member unreachable at wedge
         time would otherwise never learn its epoch exists and the
         configuration could run forever one replica short.  Re-send on a
         slow timer for a fixed window — retirement is no stop signal,
         since the new quorum retires the old epoch while a crashed
         newcomer is still in the dark; duplicates are ignored on
         receipt. *)
      let rec rebootstrap rounds =
        if rounds > 0 then begin
          bootstrap_members ();
          ignore
            (Engine.schedule t.engine ~delay:0.25 (fun () ->
                 rebootstrap (rounds - 1)))
        end
      in
      ignore (Engine.schedule t.engine ~delay:0.25 (fun () -> rebootstrap 40));
      send t ~src:host.me ~dst:t.dir_id
        (Wire.Dir_update { epoch = new_epoch; members = members'; leader = None });
      t.on_dir_update ~epoch:new_epoch ~members:members' ~leader:None;
      (* A host in both configurations transfers state locally: its own
         wedge-point state is exactly the new instance's initial state.
         An early-prepared instance is confirmed (or replaced, if its
         membership lost the race) by this same authoritative step. *)
      if List.exists (Node_id.equal host.me) members' then begin
        match Hashtbl.find_opt host.instances new_epoch with
        | Some next ->
          let next =
            confirm_or_replace t host next ~members:members'
              ~prev_members:inst.cfg.Config.members
          in
          activate t host next ~app:inst.app ~sessions:inst.sessions ~local:true
        | None ->
          let next =
            create_instance t host ~provisional:false ~epoch:new_epoch
              ~members:members' ~prev_members:inst.cfg.Config.members
              ~boot:`Await
          in
          activate t host next ~app:inst.app ~sessions:inst.sessions ~local:true
      end
    end

  (* --- Matchmaker-style early prepare --- *)

  and same_members a b =
    List.sort_uniq Node_id.compare a = List.sort_uniq Node_id.compare b

  and teardown_provisional t host inst =
    (* The prepared [Reconfig] lost the race (or never committed): halt
       and forget the instance so the authoritative configuration — if
       any — can take the epoch slot with a clean boot. *)
    if inst.provisional && not inst.retired then begin
      Counters.incr t.counters "prepare_teardowns";
      retire_instance t inst;
      (* Free the epoch slot only if it still holds this (now retired)
         provisional instance — an authoritative replacement that already
         took the slot is never provisional. *)
      (match Hashtbl.find_opt host.instances inst.epoch with
       | Some cur when cur.provisional && cur.retired ->
         Hashtbl.remove host.instances inst.epoch
       | Some _ | None -> ());
      (match inst.residual_timer with
       | Some timer ->
         Engine.cancel t.engine timer;
         inst.residual_timer <- None
       | None -> ())
    end

  and confirm_provisional t host inst =
    if inst.provisional then begin
      inst.provisional <- false;
      Counters.incr t.counters "prepare_confirms";
      (match inst.prepare_timer with
       | Some timer ->
         Engine.cancel t.engine timer;
         inst.prepare_timer <- None
       | None -> ());
      (* The configuration is authoritative now: advertise it for
         redirects, exactly as a wedge-time bootstrap would have. *)
      if inst.epoch > host.top_epoch then begin
        host.top_epoch <- inst.epoch;
        host.latest_members <- inst.cfg.Config.members
      end;
      (* A snapshot that finished transferring while we were provisional
         installs now. *)
      try_install t host inst
    end

  (* An authoritative bootstrap (wedge-time [Bootstrap], or the wedge's
     local-handoff path) meets an existing instance: a provisional one is
     confirmed if the committed membership matches what was prepared, and
     torn down and rebuilt otherwise.  Non-provisional instances are
     already authoritative — first bootstrap won. *)
  and confirm_or_replace t host inst ~members ~prev_members =
    if not inst.provisional then inst
    else if same_members inst.cfg.Config.members members then begin
      confirm_provisional t host inst;
      inst
    end
    else begin
      teardown_provisional t host inst;
      create_instance t host ~provisional:false ~epoch:inst.epoch ~members
        ~prev_members ~boot:`Await
    end

  and handle_prepare t host ~epoch ~members ~prev_members =
    (* Speculative bootstrap at [Reconfig] submission time: the new
       epoch's instance boots (and, under a speculative-handoff strategy,
       starts electing and ordering) while the old epoch is still
       committing the membership change — so at wedge time only state
       transfer remains inside the wedged window.  Garbage off the wire
       (empty member list) is ignored, exactly as in
       [handle_bootstrap]. *)
    if
      members <> []
      && Options.early_prepare t.opts
      && not (Hashtbl.mem host.instances epoch)
    then
      ignore
        (create_instance t host ~provisional:true ~epoch ~members
           ~prev_members ~boot:`Await)

  and maybe_prepare t host inst members' =
    if
      Options.early_prepare t.opts
      && members' <> []
      && inst.wedged_at = None
      && is_inst_leader inst
      && not (Hashtbl.mem host.instances (inst.epoch + 1))
    then begin
      Counters.incr t.counters "prepares";
      let epoch = inst.epoch + 1 in
      let prev_members = inst.cfg.Config.members in
      List.iter
        (fun m ->
          if not (Node_id.equal m host.me) then
            send t ~src:host.me ~dst:m
              (Wire.Prepare
                 { epoch; members = members'; prev_epoch = inst.epoch;
                   prev_members }))
        members';
      if List.exists (Node_id.equal host.me) members' then
        handle_prepare t host ~epoch ~members:members' ~prev_members
    end

  and create_instance t host ~provisional ~epoch ~members ~prev_members
      ~boot =
    let cfg = Config.make ~instance_id:epoch ~members in
    let sc = Obs.scope ~node:host.me ~epoch t.obs in
    let inst =
      {
        epoch;
        cfg;
        prev_members;
        replica = None;
        app = Sm.init ();
        sessions = Session.empty;
        activated = false;
        wedged_at = None;
        applied_hi = -1;
        applied_digest = Fnv.empty;
        next_members = [];
        final_snapshot = None;
        spec_buf = [];
        residual_buf = [];
        residual_timer = None;
        chunks = [||];
        chunks_got = 0;
        fetch_timer = None;
        fetch_rr = 0;
        announced = false;
        retired = false;
        provisional;
        prepare_timer = None;
        sc;
        sc_applied = Obs.scope_counter sc "applied";
        sc_residuals = Obs.scope_counter sc "residuals";
      }
    in
    Hashtbl.replace host.instances epoch inst;
    (* A provisional configuration is not advertised: redirects keep
       pointing clients at the last committed configuration until a
       wedge-time bootstrap confirms this one. *)
    if (not provisional) && epoch > host.top_epoch then begin
      host.top_epoch <- epoch;
      host.latest_members <- members
    end;
    if provisional then
      inst.prepare_timer <-
        Some
          (Engine.schedule t.engine ~delay:t.opts.Options.prepare_ttl
             (fun () ->
               inst.prepare_timer <- None;
               teardown_provisional t host inst));
    (match boot with
     | `Active (app, sessions) ->
       inst.app <- app;
       inst.sessions <- sessions;
       inst.activated <- true;
       inst.announced <- epoch = 0;
       start_replica t host inst
     | `Await ->
       (* Speculative handoff: the instance begins ordering immediately,
          concurrently with state transfer. *)
       if Options.speculative t.opts then start_replica t host inst;
       start_fetch t host inst);
    inst

  and start_replica t host inst =
    if inst.replica = None && not inst.retired then begin
      let others = Config.others inst.cfg host.me in
      let replica =
        Replica.create ~engine:t.engine ~params:t.smr_params ~config:inst.cfg
          ~me:host.me
          ~send:(fun ~dst msg ->
            send t ~src:host.me ~dst
              (Wire.Block { epoch = inst.epoch; data = B.Msg.encode msg }))
          ~broadcast:(fun msg ->
            (* One encode for the whole fan-out; the network also sizes
               and tags the shared wire value exactly once. *)
            Network.broadcast t.net ~src:host.me ~dsts:others
              (Wire.Block { epoch = inst.epoch; data = B.Msg.encode msg }))
          ~obs:t.obs
          ~on_decide:(fun idx value -> on_decide t host inst idx value)
          ()
      in
      inst.replica <- Some replica
    end

  and start_fetch t host inst =
    let targets =
      List.filter (fun m -> not (Node_id.equal m host.me)) inst.prev_members
    in
    if targets <> [] && not inst.activated then begin
      (* Stagger initial fetch targets by requester identity so concurrent
         joiners pull from different old members instead of all melting one
         uplink. *)
      if inst.fetch_rr = 0 then inst.fetch_rr <- host.me;
      match List.nth_opt targets (inst.fetch_rr mod List.length targets) with
      | None -> ()
      | Some dst ->
        inst.fetch_rr <- inst.fetch_rr + 1;
        send t ~src:host.me ~dst (Wire.Fetch_state { epoch = inst.epoch });
        inst.fetch_timer <-
          Some
            (Engine.schedule t.engine ~delay:t.opts.Options.fetch_timeout
               (fun () -> if not inst.activated then start_fetch t host inst))
    end

  and activate t host inst ~app ~sessions ~local =
    if (not inst.activated) && (not inst.retired) && not inst.provisional
    then begin
      inst.app <- app;
      inst.sessions <- sessions;
      inst.activated <- true;
      Counters.incr t.counters
        (if local then "local_activations" else "transfers");
      if Trace.active t.bus then
        Trace.emit t.bus ~time:(Engine.now t.engine) ~node:host.me
          ~topic:`Reconfig
          ~attrs:
            [
              ("epoch", string_of_int inst.epoch);
              ("local", if local then "1" else "0");
              ("strategy", t.opts.Options.strategy.Rsmr_iface.Reconfig_strategy.name);
            ]
          "activated";
      (match inst.fetch_timer with
       | Some timer ->
         Engine.cancel t.engine timer;
         inst.fetch_timer <- None
       | None -> ());
      if inst.replica = None then start_replica t host inst;
      (* Execute everything the speculative instance ordered while the
         snapshot was in flight, in log order.  Sort by slot index only:
         polymorphic compare on raw envelopes would order replay by
         payload bytes on (impossible, but cheap to exclude) duplicate
         indices. *)
      let buffered =
        List.sort
          (fun (i, _) (j, _) -> Int.compare i j)
          (List.rev inst.spec_buf)
      in
      inst.spec_buf <- [];
      List.iter (fun (idx, value) -> dispatch t host inst idx value) buffered;
      announce_poll t host inst
    end

  and send_snapshot t host ~dst ~epoch snapshot =
    let pieces = Snapshot.chunk snapshot ~size:t.opts.Options.chunk_size in
    let total = List.length pieces in
    List.iteri
      (fun index data ->
        Counters.incr t.counters "chunks_sent";
        Counters.add t.counters "transfer_bytes" (String.length data);
        send t ~src:host.me ~dst (Wire.State_chunk { epoch; index; total; data }))
      pieces

  (* Handoff: install the assembled snapshot once every chunk is here.
     A provisional instance holds its chunks until confirmation. *)
  and try_install t host inst =
    let total = Array.length inst.chunks in
    if
      total > 0
      && inst.chunks_got = total
      && (not inst.activated)
      && (not inst.retired)
      && not inst.provisional
    then begin
      (* chunks_got = total implies every cell is filled, so the
         filter_map drops nothing. *)
      let pieces = Array.to_list inst.chunks |> List.filter_map Fun.id in
      let snapshot = Snapshot.decode (Snapshot.assemble pieces) in
      activate t host inst ~app:(Sm.restore snapshot.Snapshot.app)
        ~sessions:(Session.decode snapshot.Snapshot.sessions) ~local:false
    end

  (* --- wire handlers --- *)

  let handle_bootstrap t host ~epoch ~members ~prev_epoch:_ ~prev_members =
    (* An empty member list off the wire would make Config.make blow up;
       such a bootstrap is garbage, not a configuration. *)
    if members <> [] then
      match Hashtbl.find_opt host.instances epoch with
      | None ->
        ignore
          (create_instance t host ~provisional:false ~epoch ~members
             ~prev_members ~boot:`Await)
      | Some inst ->
        (* Wedge-time bootstrap is authoritative: it confirms a matching
           early-prepared instance and replaces a mismatched one. *)
        ignore (confirm_or_replace t host inst ~members ~prev_members)

  let handle_fetch t host ~src ~epoch =
    match Hashtbl.find_opt host.instances (epoch - 1) with
    | Some prev
      when prev.final_snapshot <> None
           && List.exists (Node_id.equal src) prev.next_members -> (
      (* Post-wedge the committed next membership is known; only its
         members are served (a mismatched early-prepared fetcher must
         starve, never activate). *)
      match prev.final_snapshot with
      | Some snapshot -> send_snapshot t host ~dst:src ~epoch snapshot
      | None -> ())
    | Some _ | None ->
      (* Not wedged yet (or not hosted): remember the request and serve it
         at wedge time. *)
      let waiting =
        match Hashtbl.find_opt host.pending_fetches epoch with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace host.pending_fetches epoch r;
          r
      in
      if not (List.exists (Node_id.equal src) !waiting) then
        waiting := src :: !waiting

  let handle_chunk t host ~epoch ~index ~total ~data =
    match Hashtbl.find_opt host.instances epoch with
    | None -> ()
    | Some inst ->
      if (not inst.activated) && not inst.retired then begin
        if Array.length inst.chunks <> total then begin
          inst.chunks <- Array.make total None;
          inst.chunks_got <- 0
        end;
        if index < total && inst.chunks.(index) = None then begin
          inst.chunks.(index) <- Some data;
          inst.chunks_got <- inst.chunks_got + 1
        end;
        try_install t host inst
      end

  let handle_retire t host ~epoch =
    Stable.iter_sorted ~compare:Int.compare
      (fun e inst -> if e < epoch then retire_instance t inst)
      host.instances

  let handle_request t host ~src ~seq ~low_water ~payload =
    Counters.incr t.counters "requests";
    (* Provisional (early-prepared) instances never serve clients: until
       a wedge-time bootstrap confirms them they are not part of the
       committed configuration sequence. *)
    let current =
      newest_instance host ~pred:(fun i ->
          i.replica <> None && (not i.retired) && not i.provisional)
    in
    let redirect () =
      Counters.incr t.counters "redirects";
      let leader =
        match current with
        | Some inst when inst.wedged_at = None -> (
          match inst.replica with
          | Some r -> Replica.leader_hint r
          | None -> None)
        | Some _ | None -> None
      in
      send t ~src:host.me ~dst:src
        (Wire.Client
           (Client_msg.Redirect
              { seq; leader; members = host.latest_members; epoch = host.top_epoch }))
    in
    match current with
    | Some inst when is_inst_leader inst && inst.wedged_at = None -> (
      (* Fast-path dedup only once sessions are installed; ordering a
         duplicate before that is harmless. *)
      let dup =
        if inst.activated then
          match Session.check inst.sessions ~client:src ~seq with
          | `Dup rsp -> Some rsp
          | `New | `Stale -> None
        else None
      in
      match dup with
      | Some rsp -> reply_client t host ~client:src ~seq ~rsp
      | None ->
        let env =
          match (payload : Client_msg.payload) with
          | Client_msg.Cmd cmd ->
            Envelope.App { client = src; seq; low_water; cmd }
          | Client_msg.Change_membership members ->
            maybe_prepare t host inst members;
            Envelope.Reconfig { client = src; seq; members }
        in
        submit_envelope inst env)
    | Some _ | None -> redirect ()

  (* A coalesced client window: per-request dedup/reply semantics are those
     of [handle_request], but every non-duplicate command reaches the block
     as one vector submission (one proposal batch, one broadcast). *)
  let handle_request_batch t host ~src ~low_water ~reqs =
    let current =
      newest_instance host ~pred:(fun i ->
          i.replica <> None && (not i.retired) && not i.provisional)
    in
    let redirect seq =
      Counters.incr t.counters "redirects";
      let leader =
        match current with
        | Some inst when inst.wedged_at = None -> (
          match inst.replica with
          | Some r -> Replica.leader_hint r
          | None -> None)
        | Some _ | None -> None
      in
      send t ~src:host.me ~dst:src
        (Wire.Client
           (Client_msg.Redirect
              { seq; leader; members = host.latest_members; epoch = host.top_epoch }))
    in
    match current with
    | Some inst when is_inst_leader inst && inst.wedged_at = None ->
      let envs =
        List.filter_map
          (fun (seq, payload) ->
            Counters.incr t.counters "requests";
            let dup =
              if inst.activated then
                match Session.check inst.sessions ~client:src ~seq with
                | `Dup rsp -> Some rsp
                | `New | `Stale -> None
              else None
            in
            match dup with
            | Some rsp ->
              reply_client t host ~client:src ~seq ~rsp;
              None
            | None ->
              let env =
                match (payload : Client_msg.payload) with
                | Client_msg.Cmd cmd ->
                  Envelope.App { client = src; seq; low_water; cmd }
                | Client_msg.Change_membership members ->
                  maybe_prepare t host inst members;
                  Envelope.Reconfig { client = src; seq; members }
              in
              Some (Envelope.encode env))
          reqs
      in
      submit_raw_many inst envs
    | Some _ | None ->
      List.iter
        (fun (seq, _) ->
          Counters.incr t.counters "requests";
          redirect seq)
        reqs

  let host_handler t host (env : Wire.t Network.envelope) =
    let src = env.Network.src in
    match env.Network.payload with
    | Wire.Block { epoch; data } -> (
      match Hashtbl.find_opt host.instances epoch with
      | Some inst -> (
        match inst.replica with
        | Some r -> Replica.handle r ~src (B.Msg.decode data)
        | None -> ())
      | None -> ())
    | Wire.Client (Client_msg.Request { seq; low_water; payload }) ->
      handle_request t host ~src ~seq ~low_water ~payload
    | Wire.Client (Client_msg.Request_batch { low_water; reqs }) ->
      handle_request_batch t host ~src ~low_water ~reqs
    | Wire.Client (Client_msg.Reply _ | Client_msg.Redirect _) -> ()
    | Wire.Bootstrap { epoch; members; prev_epoch; prev_members } ->
      handle_bootstrap t host ~epoch ~members ~prev_epoch ~prev_members
    | Wire.Prepare { epoch; members; prev_epoch = _; prev_members } ->
      handle_prepare t host ~epoch ~members ~prev_members
    | Wire.Fetch_state { epoch } -> handle_fetch t host ~src ~epoch
    | Wire.State_chunk { epoch; index; total; data } ->
      handle_chunk t host ~epoch ~index ~total ~data
    | Wire.Retire { epoch } -> handle_retire t host ~epoch
    | Wire.Dir_update _ | Wire.Dir_lookup | Wire.Dir_info _ -> ()
  [@@rsmr.deterministic] [@@rsmr.total]

  let dir_handler t (env : Wire.t Network.envelope) =
    match env.Network.payload with
    | Wire.Dir_update { epoch; members; leader } ->
      Directory.update t.dir ~epoch ~members ~leader
    | Wire.Dir_lookup ->
      send t ~src:t.dir_id ~dst:env.Network.src
        (Wire.Dir_info
           {
             epoch = Directory.epoch t.dir;
             members = Directory.members t.dir;
             leader = Directory.leader t.dir;
           })
    | _ -> ()
  [@@rsmr.deterministic] [@@rsmr.total]

  let client_handler _t record (env : Wire.t Network.envelope) =
    match env.Network.payload with
    | Wire.Client msg -> Endpoint.handle record.endpoint msg
    | Wire.Dir_info { epoch; members; leader } -> (
      match record.dir_k with
      | Some k ->
        record.dir_k <- None;
        if members = [] then k None
        else k (Some { Rsmr_app.Dir_app.epoch; members; leader })
      | None -> ())
    | _ -> ()
  [@@rsmr.deterministic] [@@rsmr.total]

  let add_client t cid =
    if not (Hashtbl.mem t.clients cid) then begin
      let rec record =
        lazy
          {
            endpoint =
              Endpoint.create ~engine:t.engine ~me:cid ~bus:t.bus
                ~send:(fun ~dst msg ->
                  send t ~src:cid ~dst (Wire.Client msg))
                ~members:(Directory.members t.dir)
                ~batch_window:t.opts.Options.client_batch_window
                ~batch_max:t.opts.Options.client_batch_max
                ~lookup:(fun k ->
                  (Lazy.force record).dir_k <- Some k;
                  send t ~src:cid ~dst:t.dir_id Wire.Dir_lookup)
                ~on_reply:(fun ~seq ~rsp -> t.on_reply ~client:cid ~seq ~rsp)
                ();
            dir_k = None;
          }
      in
      let record = Lazy.force record in
      Hashtbl.replace t.clients cid record;
      Network.register t.net cid (client_handler t record)
    end

  let reconfigure t members =
    t.admin_seq <- t.admin_seq + 1;
    (match Hashtbl.find_opt t.clients t.admin_id with
     | Some record ->
       Endpoint.submit record.endpoint ~seq:t.admin_seq
         ~payload:(Client_msg.Change_membership members)
     | None -> (* admin client is created with the service *) ())

  (* Whole-system canonical snapshot: every behaviour-bearing field of
     every host, instance, client and queued message, serialized through
     the codec with all hash tables walked in sorted key order.  This is
     what the model checker fingerprints for visited-state dedup, so the
     exclusion rules match the block fingerprints: no virtual-clock
     reading, no timer due-times (presence only), no RNG, no metrics.
     Nothing ever decodes this — it is identity, not a wire format. *)
  let canonical_state t =
    let module W = Rsmr_app.Codec.Writer in
    let w = W.create ~size_hint:4096 () in
    let node w n = W.varint w (n : Node_id.t) in
    let pending_timer slot =
      match slot with Some tm -> Engine.is_pending tm | None -> false
    in
    let encode_instance inst =
      W.varint w inst.epoch;
      W.list w node inst.cfg.Config.members;
      W.list w node inst.prev_members;
      W.bool w inst.activated;
      W.option w (fun w v -> W.varint w v) inst.wedged_at;
      W.zigzag w inst.applied_hi;
      W.string w (Fnv.to_hex inst.applied_digest);
      W.list w node inst.next_members;
      W.option w W.string inst.final_snapshot;
      W.list w
        (fun w (i, v) ->
          W.varint w i;
          W.string w v)
        inst.spec_buf;
      W.list w W.string (List.rev inst.residual_buf);
      W.bool w (pending_timer inst.residual_timer);
      W.varint w (Array.length inst.chunks);
      Array.iter (fun c -> W.bool w (Option.is_some c)) inst.chunks;
      W.bool w (pending_timer inst.fetch_timer);
      W.varint w inst.fetch_rr;
      W.bool w inst.announced;
      W.bool w inst.retired;
      (* Early-prepare fields: constant (false, false) under the default
         [composed] strategy, so its reachable-state COUNT is untouched. *)
      W.bool w inst.provisional;
      W.bool w (pending_timer inst.prepare_timer);
      W.string w (Sm.snapshot inst.app);
      W.string w (Session.encode inst.sessions);
      W.option w W.string (Option.map Replica.fingerprint inst.replica)
    in
    Stable.iter_sorted ~compare:Node_id.compare
      (fun id host ->
        node w id;
        W.varint w host.top_epoch;
        W.list w node host.latest_members;
        Stable.iter_sorted ~compare:Int.compare
          (fun epoch waiting ->
            W.varint w epoch;
            W.list w node (List.sort Node_id.compare !waiting))
          host.pending_fetches;
        Stable.iter_sorted ~compare:Int.compare
          (fun _ inst -> encode_instance inst)
          host.instances)
      t.hosts;
    W.varint w (Directory.epoch t.dir);
    W.list w node (Directory.members t.dir);
    W.option w node (Directory.leader t.dir);
    W.varint w t.admin_seq;
    Stable.iter_sorted ~compare:Node_id.compare
      (fun id record ->
        node w id;
        W.string w (Endpoint.fingerprint record.endpoint);
        W.bool w (Option.is_some record.dir_k))
      t.clients;
    List.iter
      (fun (src, dst) ->
        node w src;
        node w dst;
        W.list w (fun w m -> W.nested w Wire.write m)
          (Network.queued t.net ~src ~dst))
      (Network.links t.net);
    List.iter (fun n -> W.bool w (Network.is_crashed t.net n))
      (List.sort Node_id.compare
         (Stable.fold_sorted ~compare:Node_id.compare
            (fun id _ acc -> id :: acc)
            t.hosts []));
    W.contents w
  [@@rsmr.deterministic] [@@rsmr.codec.oneway]

  let create ~engine ?latency ?drop ?bandwidth ?smr_params ?options ?universe
      ?obs ?net_mode ~members () =
    if members = [] then invalid_arg "Service.create: empty member set";
    let obs = match obs with Some o -> o | None -> Obs.create () in
    Obs.set_meta obs "block" B.block_name;
    if List.assoc_opt "proto" (Obs.meta obs) = None then
      Obs.set_meta obs "proto" "core";
    let opts = Option.value options ~default:Options.default in
    (match opts.Options.strategy.Rsmr_iface.Reconfig_strategy.driver with
     | `Composition -> ()
     | `Native ->
       invalid_arg
         ("Service.create: strategy "
         ^ opts.Options.strategy.Rsmr_iface.Reconfig_strategy.name
         ^ " has a native driver — it is a separate stack, not a Service \
            configuration"));
    (* The active strategy travels as registry metadata so every
       METRICS_*.json names it without out-of-band bookkeeping. *)
    Obs.set_meta obs "strategy"
      opts.Options.strategy.Rsmr_iface.Reconfig_strategy.name;
    let smr_params = Option.value smr_params ~default:Rsmr_smr.Params.default in
    let universe = Option.value universe ~default:members in
    let universe = List.sort_uniq Node_id.compare (universe @ members) in
    let top = List.fold_left max 0 universe in
    let dir_id = top + 1 in
    let admin_id = top + 2 in
    (* The tagger runs on every send, so classify tunnelled block payloads
       from their leading wire byte ([tag_of_encoded]) instead of a full
       decode, and intern the "block." ^ tag strings. *)
    let block_tags = Hashtbl.create 16 in
    let tagger = function
      | Wire.Block { data; _ } -> (
        let tag = B.Msg.tag_of_encoded data in
        match Hashtbl.find_opt block_tags tag with
        | Some interned -> interned
        | None ->
          let interned = "block." ^ tag in
          Hashtbl.add block_tags tag interned;
          interned)
      | other -> Wire.tag other
    in
    let net =
      Network.create engine ?mode:net_mode ?latency ?drop ?bandwidth ~tagger
        ~sizer:Wire.size ~obs ()
    in
    let t =
      {
        engine;
        net;
        opts;
        smr_params;
        hosts = Hashtbl.create 32;
        dir = Directory.create ();
        dir_id;
        admin_id;
        admin_seq = 0;
        clients = Hashtbl.create 16;
        on_reply = (fun ~client:_ ~seq:_ ~rsp:_ -> ());
        on_dir_update = (fun ~epoch:_ ~members:_ ~leader:_ -> ());
        (* the service's flat counter table IS the registry's "svc"
           section: same live cells, picked up at export time *)
        counters = Obs.counters obs "svc";
        obs;
        bus = Obs.bus obs;
        wedge_times = Hashtbl.create 4;
        wedged_window =
          Obs.histogram obs "wedged_window_s"
            ~labels:
              [
                ( "strategy",
                  opts.Options.strategy.Rsmr_iface.Reconfig_strategy.name );
              ];
      }
    in
    List.iter
      (fun node ->
        let host =
          {
            me = node;
            instances = Hashtbl.create 4;
            pending_fetches = Hashtbl.create 4;
            top_epoch = 0;
            latest_members = members;
          }
        in
        Hashtbl.replace t.hosts node host;
        Network.register t.net node (fun env -> host_handler t host env))
      universe;
    (* Epoch 0 starts live everywhere with fresh state. *)
    List.iter
      (fun node ->
        let host = Hashtbl.find t.hosts node in
        ignore
          (create_instance t host ~provisional:false ~epoch:0 ~members
             ~prev_members:[] ~boot:(`Active (Sm.init (), Session.empty))))
      members;
    Directory.update t.dir ~epoch:0 ~members ~leader:None;
    Network.register t.net dir_id (dir_handler t);
    add_client t admin_id;
    t

  let cluster t =
    {
      Rsmr_iface.Cluster.name = "core";
      engine = t.engine;
      add_client = (fun cid -> add_client t cid);
      submit =
        (fun ~client ~seq ~cmd ->
          match Hashtbl.find_opt t.clients client with
          | Some record ->
            Endpoint.submit record.endpoint ~seq
              ~payload:(Client_msg.Cmd cmd)
          | None -> invalid_arg "submit: unknown client (call add_client)");
      set_on_reply = (fun h -> t.on_reply <- h);
      reconfigure = (fun members -> reconfigure t members);
      members = (fun () -> Directory.members t.dir);
      crash = (fun node -> Network.crash t.net node);
      recover = (fun node -> Network.recover t.net node);
      control =
        {
          Rsmr_iface.Overlay.fault =
            (fun f ->
              match (f : Rsmr_iface.Overlay.fault) with
              | Rsmr_iface.Overlay.Crash n -> Network.crash t.net n
              | Rsmr_iface.Overlay.Recover n -> Network.recover t.net n
              | Rsmr_iface.Overlay.Partition groups ->
                Network.partition t.net groups
              | Rsmr_iface.Overlay.Heal -> Network.heal t.net);
          reconfigure = (fun members -> reconfigure t members);
        };
      obs = t.obs;
    }
end

module Make (Sm : Rsmr_app.State_machine.S) = Make_on (Rsmr_smr.Paxos_block) (Sm)
