module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t =
  | App of {
      client : Rsmr_net.Node_id.t;
      seq : int;
      low_water : int;
      cmd : string;
    }
  | Reconfig of {
      client : Rsmr_net.Node_id.t;
      seq : int;
      members : Rsmr_net.Node_id.t list;
    }

(* Single wire-format body shared by [encode] (buffer sink) and [size]
   (counting sink). *)
let write w t =
  match t with
  | App { client; seq; low_water; cmd } ->
    W.u8 w 0;
    W.zigzag w client;
    W.varint w seq;
    W.varint w low_water;
    W.string w cmd
  | Reconfig { client; seq; members } ->
    W.u8 w 1;
    W.zigzag w client;
    W.varint w seq;
    W.list w W.zigzag members

let read r =
  match R.u8 r with
  | 0 ->
    let client = R.zigzag r in
    let seq = R.varint r in
    let low_water = R.varint r in
    App { client; seq; low_water; cmd = R.string r }
  | 1 ->
    let client = R.zigzag r in
    let seq = R.varint r in
    Reconfig { client; seq; members = R.list r R.zigzag }
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c

let pp ppf = function
  | App { client; seq; cmd; _ } ->
    Format.fprintf ppf "app(%a,seq=%d,%d bytes)" Rsmr_net.Node_id.pp client seq
      (String.length cmd)
  | Reconfig { client; seq; members } ->
    Format.fprintf ppf "reconfig(%a,seq=%d,{%a})" Rsmr_net.Node_id.pp client
      seq
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Rsmr_net.Node_id.pp)
      members
