(* The single-service configuration oracle, held as a one-entry
   [Rsmr_app.Dir_app] state under a fixed name: the ad-hoc record this
   module used to keep and the replicated directory now share one
   implementation of the monotone-epoch merge rule, and lookups answer
   with the same [Dir_app.entry] shape the replicated path serves. *)

module Dir_app = Rsmr_app.Dir_app

let service_name = "service"

type t = { mutable state : Dir_app.t }

let create () = { state = Dir_app.init () }

let update t ~epoch ~members ~leader =
  let state, _ =
    Dir_app.apply t.state
      (Dir_app.Update { name = service_name; epoch; members; leader })
  in
  t.state <- state

let entry t = Dir_app.find t.state service_name

let epoch t = match entry t with Some e -> e.Dir_app.epoch | None -> -1
let members t = match entry t with Some e -> e.Dir_app.members | None -> []
let leader t = match entry t with Some e -> e.Dir_app.leader | None -> None
