(** A static configuration: the fixed member set one SMR instance runs
    over.  Instances are identified by [instance_id]; the reconfigurable
    composition allocates consecutive ids (epochs). *)

type t = { instance_id : int; members : Rsmr_net.Node_id.t list }

val make : instance_id:int -> members:Rsmr_net.Node_id.t list -> t
(** Deduplicates and sorts members. Raises [Invalid_argument] on []. *)

val size : t -> int
val quorum : t -> int
(** Majority: [size/2 + 1]. *)

val is_member : t -> Rsmr_net.Node_id.t -> bool
val others : t -> Rsmr_net.Node_id.t -> Rsmr_net.Node_id.t list
(** All members except the given one. *)

val pp : Format.formatter -> t -> unit
val encode : Rsmr_app.Codec.Writer.t -> t -> unit
val decode : Rsmr_app.Codec.Reader.t -> t
[@@rsmr.deterministic] [@@rsmr.total]
