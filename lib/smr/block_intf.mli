(** The contract a {e non-reconfigurable} SMR building block must satisfy to
    be composed into a reconfigurable service by {!Rsmr_core.Service}.

    This is the paper's interface boundary made explicit: anything that
    totally orders opaque byte commands over a fixed member set — with no
    notion of membership change — qualifies.  The repository provides two
    independent implementations: static Multi-Paxos
    ({!Rsmr_smr.Paxos_block}) and static Viewstamped Replication
    ({!Rsmr_smr.Vr}); the composition layer cannot tell them apart. *)

module type S = sig
  val block_name : string

  (** The block's wire messages, opaque to the composition layer (it
      tunnels them as bytes, tagged with the configuration epoch). *)
  module Msg : sig
    type t

    val encode : t -> string
    val decode : string -> t
    val size : t -> int
    val tag : t -> string

    val tag_of_encoded : string -> string
    (** [tag] recovered from an encoded payload's leading wire byte alone —
        no allocation, no payload decode — so per-message accounting can
        classify tunnelled bytes cheaply.  Total: unrecognised input maps
        to ["invalid"]. *)
  end

  type t
  (** One replica of one instance. *)

  val create :
    engine:Rsmr_sim.Engine.t ->
    params:Params.t ->
    config:Config.t ->
    me:Rsmr_net.Node_id.t ->
    send:(dst:Rsmr_net.Node_id.t -> Msg.t -> unit) ->
    ?broadcast:(Msg.t -> unit) ->
    ?obs:Rsmr_obs.Registry.t ->
    on_decide:(int -> string -> unit) ->
    unit ->
    t
  (** [on_decide] fires in strict slot order, exactly once per decided
      command on this replica.

      [obs], when provided, is the run's Observatory registry: the block
      accounts its internals (elections, proposals, commits, ...) into
      cells scoped by [{node = me; epoch = config.instance_id}], resolved
      once at creation so the per-event cost stays a ref bump.

      [broadcast msg], when provided, is used instead of per-destination
      [send] whenever the block addresses every other member of its
      configuration with the same message — letting the transport encode
      the payload exactly once for the whole fan-out.  It must be
      equivalent to calling [send ~dst msg] for every member except the
      block's own node. *)

  val handle : t -> src:Rsmr_net.Node_id.t -> Msg.t -> unit
  val submit : t -> string -> unit

  val submit_many : t -> string list -> unit
  (** Submit an ordered vector of commands as one batch: the block must
      preserve the vector's order and propose it with O(1) messages (one
      multi-command slot run) rather than one proposal per command.
      Equivalent to [List.iter (submit t)] w.r.t. ordering and delivery. *)

  val submit_msg : string -> Msg.t
  (** A message that, delivered to any replica of the instance, submits the
      command remotely (used to forward residual commands into an instance
      the sender does not host). *)

  val submit_many_msg : string list -> Msg.t
  (** Vector form of {!submit_msg}: one message that remotely submits the
      whole ordered batch (used to forward residuals across epochs without
      a per-command message storm). *)

  val is_leader : t -> bool
  val leader_hint : t -> Rsmr_net.Node_id.t option

  val halt : t -> unit
  val is_halted : t -> bool

  val commit_index : t -> int

  val fingerprint : t -> string
  (** Canonical encoding of the replica's complete protocol state —
      role, promises, log (values, ballots/views, commit marks),
      delivery watermarks, queued submissions — for model-checker
      visited-state dedup.  Two replicas with behaviourally identical
      state must produce identical bytes, so implementations serialize
      through the codec layer with all unordered collections emitted in
      sorted order; structural hashing ([Hashtbl.hash]) and wall-clock
      or timer due-times must not leak in.  Not a wire format: nothing
      ever decodes a fingerprint. *)
end
