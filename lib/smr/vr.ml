module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Node_id = Rsmr_net.Node_id
module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

let block_name = "vr"

module Msg = struct
  type t =
    | Request of { value : string }
    | Prepare of { view : int; op : int; value : string; commit : int }
    | Prepare_ok of { view : int; op : int }
    | Commit of { view : int; commit : int }
    | Start_view_change of { view : int }
    | Do_view_change of {
        view : int;
        log : string list;
        last_normal : int;
        commit : int;
      }
    | Start_view of { view : int; log : string list; commit : int }
    | Get_state of { view : int; from : int }
    | New_state of { view : int; from : int; ops : string list; commit : int }
    | Request_multi of { values : string list }
        (** forwarded vector submission, proposed as one batch *)
    | Prepare_multi of {
        view : int;
        from_op : int;
        values : string list;  (** consecutive ops from [from_op] *)
        commit : int;
      }
    | Prepare_ok_multi of { view : int; from_op : int; upto : int }

  (* Single wire-format body shared by [encode] (buffer sink) and
     [size] (counting sink). *)
  let write w t =
    match t with
    | Request { value } ->
      W.u8 w 0;
      W.string w value
    | Prepare { view; op; value; commit } ->
      W.u8 w 1;
      W.varint w view;
      W.varint w op;
      W.string w value;
      W.varint w commit
    | Prepare_ok { view; op } ->
      W.u8 w 2;
      W.varint w view;
      W.varint w op
    | Commit { view; commit } ->
      W.u8 w 3;
      W.varint w view;
      W.varint w commit
    | Start_view_change { view } ->
      W.u8 w 4;
      W.varint w view
    | Do_view_change { view; log; last_normal; commit } ->
      W.u8 w 5;
      W.varint w view;
      W.list w W.string log;
      W.varint w last_normal;
      W.varint w commit
    | Start_view { view; log; commit } ->
      W.u8 w 6;
      W.varint w view;
      W.list w W.string log;
      W.varint w commit
    | Get_state { view; from } ->
      W.u8 w 7;
      W.varint w view;
      W.varint w from
    | New_state { view; from; ops; commit } ->
      W.u8 w 8;
      W.varint w view;
      W.varint w from;
      W.list w W.string ops;
      W.varint w commit
    | Request_multi { values } ->
      W.u8 w 9;
      W.list w W.string values
    | Prepare_multi { view; from_op; values; commit } ->
      W.u8 w 10;
      W.varint w view;
      W.varint w from_op;
      W.list w W.string values;
      W.varint w commit
    | Prepare_ok_multi { view; from_op; upto } ->
      W.u8 w 11;
      W.varint w view;
      W.varint w from_op;
      W.varint w upto

  let read r =
    match R.u8 r with
    | 0 -> Request { value = R.string r }
    | 1 ->
      let view = R.varint r in
      let op = R.varint r in
      let value = R.string r in
      Prepare { view; op; value; commit = R.varint r }
    | 2 ->
      let view = R.varint r in
      Prepare_ok { view; op = R.varint r }
    | 3 ->
      let view = R.varint r in
      Commit { view; commit = R.varint r }
    | 4 -> Start_view_change { view = R.varint r }
    | 5 ->
      let view = R.varint r in
      let log = R.list r R.string in
      let last_normal = R.varint r in
      Do_view_change { view; log; last_normal; commit = R.varint r }
    | 6 ->
      let view = R.varint r in
      let log = R.list r R.string in
      Start_view { view; log; commit = R.varint r }
    | 7 ->
      let view = R.varint r in
      Get_state { view; from = R.varint r }
    | 8 ->
      let view = R.varint r in
      let from = R.varint r in
      let ops = R.list r R.string in
      New_state { view; from; ops; commit = R.varint r }
    | 9 -> Request_multi { values = R.list r R.string }
    | 10 ->
      let view = R.varint r in
      let from_op = R.varint r in
      let values = R.list r R.string in
      Prepare_multi { view; from_op; values; commit = R.varint r }
    | 11 ->
      let view = R.varint r in
      let from_op = R.varint r in
      Prepare_ok_multi { view; from_op; upto = R.varint r }
    | _ -> raise Rsmr_app.Codec.Truncated

  let encode t =
    let w = W.create () in
    write w t;
    W.contents w

  let decode s = read (R.of_string s)

  let size t =
    let c = W.counter () in
    write c t;
    W.written c

  let tag = function
    | Request _ -> "request"
    | Prepare _ -> "prepare"
    | Prepare_ok _ -> "prepare_ok"
    | Commit _ -> "commit"
    | Start_view_change _ -> "start_view_change"
    | Do_view_change _ -> "do_view_change"
    | Start_view _ -> "start_view"
    | Get_state _ -> "get_state"
    | New_state _ -> "new_state"
    | Request_multi _ -> "request_multi"
    | Prepare_multi _ -> "prepare_multi"
    | Prepare_ok_multi _ -> "prepare_ok_multi"

  (* Tag from the leading wire byte alone, so the network tagger can
     classify an encoded payload without a full decode.  Must agree with
     [tag] composed with [decode]; property-tested in test_wire.ml. *)
  let tag_of_encoded s =
    if String.length s = 0 then "invalid"
    else
      match Char.code s.[0] with
      | 0 -> "request"
      | 1 -> "prepare"
      | 2 -> "prepare_ok"
      | 3 -> "commit"
      | 4 -> "start_view_change"
      | 5 -> "do_view_change"
      | 6 -> "start_view"
      | 7 -> "get_state"
      | 8 -> "new_state"
      | 9 -> "request_multi"
      | 10 -> "prepare_multi"
      | 11 -> "prepare_ok_multi"
      | _ -> "invalid"
end

type dvc = { d_log : string list; d_last_normal : int; d_commit : int }

type status =
  | Normal
  | View_change of {
      mutable svc_from : Node_id.Set.t;
      mutable dvc : (Node_id.t * dvc) list;
    }

type t = {
  engine : Engine.t;
  params : Params.t;
  members : Node_id.t array;
  me : Node_id.t;
  send : dst:Node_id.t -> Msg.t -> unit;
  bcast : (Msg.t -> unit) option;
  on_decide : int -> string -> unit;
  rng : Rng.t;
  mutable view : int;
  mutable status : status;
  mutable last_normal : int;
  mutable log : string array;
  mutable len : int;
  mutable commit : int;  (* ops [0 .. commit-1] are committed *)
  mutable executed : int;
  acks : (int, Node_id.Set.t ref) Hashtbl.t;
  pending : string Queue.t;
  mutable batch_buf : string list; (* newest first; primary only *)
  mutable batch_len : int; (* List.length batch_buf, kept O(1) *)
  mutable batch_timer : Engine.timer option;
  mutable view_timer : Engine.timer option;
  mutable hb_timer : Engine.timer option;
  mutable resend_timer : Engine.timer option;
  mutable halted : bool;
  c_view_changes : int ref;
}

let n_members t = Array.length t.members

(* True majority, not the textbook f+1 with f = (n-1)/2: those coincide
   for odd n (the paper's n = 2f+1), but for even n the textbook form
   yields n/2 — two such quorums need not intersect.  Even memberships
   arise here whenever the composition layer reconfigures a block onto a
   2- or 4-node slice of the pool, so VR must use the same majority rule
   as the Paxos block (Config.quorum). *)
let quorum t = (n_members t / 2) + 1
let primary_of t view = t.members.(view mod n_members t)
let primary t = primary_of t t.view
let is_primary t = Node_id.equal (primary t) t.me

let is_leader t =
  (not t.halted) && t.status = Normal && is_primary t

let leader_hint t = if t.halted then None else Some (primary t)
let commit_index t = t.commit
let is_halted t = t.halted
let view t = t.view
let is_normal t = t.status = Normal
let log_length t = t.len

let submit_msg value = Msg.Request { value }
let submit_many_msg values = Msg.Request_multi { values }

let log_list t = Array.to_list (Array.sub t.log 0 t.len)

let append t value =
  if t.len = Array.length t.log then begin
    let ncap = max 64 (2 * Array.length t.log) in
    let nl = Array.make ncap "" in
    Array.blit t.log 0 nl 0 t.len;
    t.log <- nl
  end;
  t.log.(t.len) <- value;
  t.len <- t.len + 1

let set_log t ops commit =
  t.log <- Array.of_list ops;
  t.len <- Array.length t.log;
  if commit > t.commit then t.commit <- commit

let execute t =
  while t.executed < min t.commit t.len && not t.halted do
    t.on_decide t.executed t.log.(t.executed);
    t.executed <- t.executed + 1
  done

let cancel t slot =
  match slot with
  | Some timer ->
    Engine.cancel t.engine timer;
    None
  | None -> None

(* Same message to every other member: hand the whole fan-out to the
   transport when it gave us a broadcast hook (it then encodes the
   payload exactly once), else fall back to per-destination sends. *)
let broadcast t msg =
  match t.bcast with
  | Some f -> f msg
  | None ->
    Array.iter
      (fun dst -> if not (Node_id.equal dst t.me) then t.send ~dst msg)
      t.members

(* A primary losing its status (view change) returns unproposed batched
   values to pending so they get forwarded to whoever leads next. *)
let park_batch t =
  t.batch_timer <- cancel t t.batch_timer;
  List.iter (fun v -> Queue.push v t.pending) (List.rev t.batch_buf);
  t.batch_buf <- [];
  t.batch_len <- 0

(* --- timers --- *)

let rec reset_view_timer t =
  t.view_timer <- cancel t t.view_timer;
  if not t.halted then begin
    let delay =
      Rng.uniform_in t.rng t.params.Params.election_timeout_min
        t.params.Params.election_timeout_max
    in
    t.view_timer <-
      Some (Engine.schedule t.engine ~delay (fun () -> on_view_timeout t))
  end

and on_view_timeout t =
  if (not t.halted) && not (is_leader t) then start_view_change t (t.view + 1)
  else if not t.halted then reset_view_timer t

and start_view_change t new_view =
  if new_view > t.view || (new_view = t.view && t.status = Normal) then begin
    incr t.c_view_changes;
    park_batch t;
    t.view <- new_view;
    t.status <- View_change { svc_from = Node_id.Set.singleton t.me; dvc = [] };
    broadcast t (Msg.Start_view_change { view = new_view });
    reset_view_timer t;
    check_svc_quorum t
  end

and check_svc_quorum t =
  match t.status with
  | View_change vc ->
    if Node_id.Set.cardinal vc.svc_from >= quorum t then begin
      let msg =
        Msg.Do_view_change
          {
            view = t.view;
            log = log_list t;
            last_normal = t.last_normal;
            commit = t.commit;
          }
      in
      let p = primary t in
      if Node_id.equal p t.me then
        on_do_view_change t ~src:t.me ~view:t.view ~log:(log_list t)
          ~last_normal:t.last_normal ~commit:t.commit
      else t.send ~dst:p msg
    end
  | Normal -> ()

and on_do_view_change t ~src ~view ~log ~last_normal ~commit =
  if view = t.view && Node_id.equal (primary t) t.me then
    match t.status with
    | View_change vc ->
      if not (List.mem_assoc src vc.dvc) then
        vc.dvc <-
          (src, { d_log = log; d_last_normal = last_normal; d_commit = commit })
          :: vc.dvc;
      if List.length vc.dvc >= quorum t then begin
        (* Adopt the log of the DVC with the highest (last_normal, length). *)
        let best =
          List.fold_left
            (fun acc (_, d) ->
              match acc with
              | None -> Some d
              | Some cur ->
                if
                  (d.d_last_normal, List.length d.d_log)
                  > (cur.d_last_normal, List.length cur.d_log)
                then Some d
                else acc)
            None vc.dvc
        in
        (match best with
         | Some d ->
           let max_commit =
             List.fold_left (fun acc (_, d) -> max acc d.d_commit) 0 vc.dvc
           in
           set_log t d.d_log max_commit
         | None -> ());
        t.status <- Normal;
        t.last_normal <- t.view;
        Hashtbl.reset t.acks;
        (* Uncommitted suffix needs fresh quorums in this view. *)
        for op = t.commit to t.len - 1 do
          Hashtbl.replace t.acks op (ref (Node_id.Set.singleton t.me))
        done;
        broadcast t
          (Msg.Start_view { view = t.view; log = log_list t; commit = t.commit });
        execute t;
        maybe_commit_solo t;
        start_heartbeat t;
        start_resend t;
        drain_pending t
      end
    | Normal -> ()

and maybe_commit_solo t =
  if quorum t = 1 && is_leader t then begin
    t.commit <- t.len;
    Hashtbl.reset t.acks;
    execute t;
    pump t
  end

and advance_commit t =
  let continue = ref true in
  while !continue && t.commit < t.len do
    match Hashtbl.find_opt t.acks t.commit with
    | Some acked when Node_id.Set.cardinal !acked >= quorum t ->
      Hashtbl.remove t.acks t.commit;
      t.commit <- t.commit + 1
    | Some _ | None -> continue := false
  done;
  execute t

and propose t value =
  let op = t.len in
  append t value;
  Hashtbl.replace t.acks op (ref (Node_id.Set.singleton t.me));
  broadcast t (Msg.Prepare { view = t.view; op; value; commit = t.commit });
  maybe_commit_solo t

(* Primary-side batching + pipelining, mirroring {!Replica}: submissions
   accumulate for batch_delay (or batch_max commands) and are prepared as
   one multi-op run, with at most max_outstanding uncommitted ops in
   flight; the overflow stays buffered until commit progress pumps it. *)
and buffer_value t value =
  t.batch_buf <- value :: t.batch_buf;
  t.batch_len <- t.batch_len + 1

and enqueue_value t value =
  buffer_value t value;
  if
    t.params.Params.batch_delay <= 0.0
    || t.batch_len >= t.params.Params.batch_max
  then flush_batch t
  else if t.batch_timer = None then
    t.batch_timer <-
      Some
        (Engine.schedule t.engine ~delay:t.params.Params.batch_delay (fun () ->
             t.batch_timer <- None;
             flush_batch t))

and flush_batch t =
  if is_leader t && t.batch_buf <> [] then begin
    let cap = t.params.Params.max_outstanding - (t.len - t.commit) in
    if cap > 0 then begin
      let values = List.rev t.batch_buf in
      let rec split n acc rest =
        match rest with
        | _ when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: tl -> split (n - 1) (x :: acc) tl
      in
      let now_values, later = split (min cap t.batch_len) [] values in
      t.batch_buf <- List.rev later;
      t.batch_len <- List.length later;
      t.batch_timer <- cancel t t.batch_timer;
      match now_values with
      | [] -> ()
      | [ value ] -> propose t value
      | _ ->
        let from_op = t.len in
        List.iter
          (fun value ->
            let op = t.len in
            append t value;
            Hashtbl.replace t.acks op (ref (Node_id.Set.singleton t.me)))
          now_values;
        broadcast t
          (Msg.Prepare_multi
             { view = t.view; from_op; values = now_values; commit = t.commit });
        maybe_commit_solo t
    end
  end

and pump t = if t.batch_len > 0 && t.batch_timer = None then flush_batch t

and drain_pending t =
  let rec drain f =
    match Queue.take_opt t.pending with
    | Some value ->
      f value;
      drain f
    | None -> ()
  in
  if is_leader t then begin
    drain (fun value -> enqueue_value t value);
    flush_batch t
  end
  else if t.status = Normal then begin
    let p = primary t in
    if not (Node_id.equal p t.me) then begin
      (* Forward everything queued as one vector submission. *)
      let values = ref [] in
      drain (fun value -> values := value :: !values);
      match List.rev !values with
      | [] -> ()
      | [ value ] -> t.send ~dst:p (Msg.Request { value })
      | values -> t.send ~dst:p (Msg.Request_multi { values })
    end
  end

and start_heartbeat t =
  t.hb_timer <- cancel t t.hb_timer;
  let rec tick () =
    if is_leader t then begin
      broadcast t (Msg.Commit { view = t.view; commit = t.commit });
      t.hb_timer <-
        Some (Engine.schedule t.engine ~delay:t.params.Params.heartbeat_interval tick)
    end
  in
  t.hb_timer <-
    Some (Engine.schedule t.engine ~delay:t.params.Params.heartbeat_interval tick)

and start_resend t =
  t.resend_timer <- cancel t t.resend_timer;
  let rec tick () =
    if is_leader t then begin
      (* Re-prepare the uncommitted suffix (lost Prepares / PrepareOKs) as
         one multi-op run per follower, bounded by the pipeline window. *)
      let hi = min t.len (t.commit + t.params.Params.max_outstanding) in
      (if hi - t.commit = 1 then
         broadcast t
           (Msg.Prepare
              {
                view = t.view;
                op = t.commit;
                value = t.log.(t.commit);
                commit = t.commit;
              })
       else if hi > t.commit then
         broadcast t
           (Msg.Prepare_multi
              {
                view = t.view;
                from_op = t.commit;
                values =
                  Array.to_list (Array.sub t.log t.commit (hi - t.commit));
                commit = t.commit;
              }));
      t.resend_timer <-
        Some (Engine.schedule t.engine ~delay:t.params.Params.resend_interval tick)
    end
  in
  t.resend_timer <-
    Some (Engine.schedule t.engine ~delay:t.params.Params.resend_interval tick)

(* --- normal-protocol handlers --- *)

let behind t view = view > t.view

let catch_up t view =
  (* A view completed without us; fetch the authoritative state from its
     primary rather than guessing.  Request from our commit point, not
     our log end: only the committed prefix is stable across view
     changes — our uncommitted suffix may have been replaced by the view
     we missed, so it must be re-fetched, never trusted. *)
  t.send ~dst:(primary_of t view) (Msg.Get_state { view; from = t.commit })

let on_prepare t ~src ~view ~op ~value ~commit =
  if behind t view then catch_up t view
  else if view = t.view && t.status = Normal && not (is_primary t) then begin
    reset_view_timer t;
    if op = t.len then begin
      append t value;
      t.send ~dst:src (Msg.Prepare_ok { view; op })
    end
    else if op < t.len then
      (* Duplicate (retransmission): re-ack. *)
      t.send ~dst:src (Msg.Prepare_ok { view; op })
    else
      (* Gap: lost earlier prepares. *)
      t.send ~dst:src (Msg.Get_state { view; from = t.commit });
    if commit > t.commit then begin
      t.commit <- min commit t.len;
      execute t
    end
  end

(* Multi-op Prepare: consecutive values from [from_op].  Appends the
   portion past our log end, re-acks duplicates, and answers with a single
   Prepare_ok_multi covering the whole run. *)
let on_prepare_multi t ~src ~view ~from_op ~values ~commit =
  if behind t view then catch_up t view
  else if view = t.view && t.status = Normal && not (is_primary t) then begin
    reset_view_timer t;
    let n = List.length values in
    if from_op > t.len then
      (* Gap: lost earlier prepares. *)
      t.send ~dst:src (Msg.Get_state { view; from = t.commit })
    else begin
      List.iteri
        (fun offset value -> if from_op + offset = t.len then append t value)
        values;
      t.send ~dst:src
        (Msg.Prepare_ok_multi { view; from_op; upto = from_op + n - 1 })
    end;
    if commit > t.commit then begin
      t.commit <- min commit t.len;
      execute t
    end
  end

let on_prepare_ok t ~src ~view ~op =
  if view = t.view && is_leader t then begin
    (match Hashtbl.find_opt t.acks op with
     | Some acked -> acked := Node_id.Set.add src !acked
     | None -> () (* already committed *));
    advance_commit t;
    pump t
  end

let on_prepare_ok_multi t ~src ~view ~from_op ~upto =
  if view = t.view && is_leader t then begin
    for op = from_op to upto do
      match Hashtbl.find_opt t.acks op with
      | Some acked -> acked := Node_id.Set.add src !acked
      | None -> () (* already committed *)
    done;
    advance_commit t;
    pump t
  end

let on_commit t ~view ~commit =
  if behind t view then catch_up t view
  else if view = t.view && t.status = Normal && not (is_primary t) then begin
    reset_view_timer t;
    if commit > t.commit then begin
      if commit > t.len then
        t.send ~dst:(primary t) (Msg.Get_state { view; from = t.commit });
      t.commit <- min commit t.len;
      execute t
    end
  end

let on_start_view t ~view ~log ~commit =
  (* Never reprocess a Start_view for a view we are already Normal in: a
     delayed duplicate would wholesale-replace a log that has since grown
     (and been partially executed) in that very view. *)
  if view > t.view || (view = t.view && t.status <> Normal) then begin
    park_batch t;
    t.view <- view;
    t.status <- Normal;
    t.last_normal <- view;
    set_log t log commit;
    t.commit <- min commit t.len;
    Hashtbl.reset t.acks;
    execute t;
    reset_view_timer t;
    (* Ack the uncommitted suffix to the new primary in one message. *)
    let p = primary t in
    (if t.len - t.commit = 1 then
       t.send ~dst:p (Msg.Prepare_ok { view; op = t.commit })
     else if t.len > t.commit then
       t.send ~dst:p
         (Msg.Prepare_ok_multi { view; from_op = t.commit; upto = t.len - 1 }));
    drain_pending t
  end

let on_get_state t ~src ~view ~from =
  if view = t.view && t.status = Normal then begin
    let upto = t.len in
    if upto > from then begin
      let ops = Array.to_list (Array.sub t.log from (upto - from)) in
      t.send ~dst:src (Msg.New_state { view; from; ops; commit = t.commit })
    end
    else
      t.send ~dst:src (Msg.New_state { view; from; ops = []; commit = t.commit })
  end

let on_new_state t ~view ~from ~ops ~commit =
  if
    view > t.view
    || (view = t.view && not (t.status = Normal && is_primary t))
  then begin
    if view > t.view then begin
      park_batch t;
      t.view <- view;
      t.status <- Normal;
      t.last_normal <- view
    end;
    (* Splice, don't append: everything from [from] is replaced by the
       sender's authoritative suffix (our own copy of those slots may be
       a stale uncommitted run from a view we missed).  [from < commit]
       would be a stale response to an old request — ignore it, the
       committed prefix is already correct and must not be truncated. *)
    if from >= t.commit && from <= t.len then begin
      t.len <- from;
      List.iter (fun v -> append t v) ops
    end;
    if commit > t.commit then t.commit <- min commit t.len;
    execute t;
    reset_view_timer t
  end

let submit t value =
  if not t.halted then begin
    if is_leader t then enqueue_value t value
    else begin
      Queue.push value t.pending;
      drain_pending t
    end
  end
[@@rsmr.deterministic] [@@rsmr.total]

(* Vector submission: proposed (or forwarded) as one multi-op run
   regardless of the batching window, preserving order. *)
let submit_many t values =
  if (not t.halted) && values <> [] then begin
    if is_leader t then begin
      List.iter (fun value -> buffer_value t value) values;
      flush_batch t
    end
    else begin
      List.iter (fun value -> Queue.push value t.pending) values;
      drain_pending t
    end
  end
[@@rsmr.deterministic] [@@rsmr.total]

let handle t ~src msg =
  if not t.halted then
    match (msg : Msg.t) with
    | Msg.Request { value } -> submit t value
    | Msg.Request_multi { values } -> submit_many t values
    | Msg.Prepare { view; op; value; commit } ->
      on_prepare t ~src ~view ~op ~value ~commit
    | Msg.Prepare_multi { view; from_op; values; commit } ->
      on_prepare_multi t ~src ~view ~from_op ~values ~commit
    | Msg.Prepare_ok { view; op } -> on_prepare_ok t ~src ~view ~op
    | Msg.Prepare_ok_multi { view; from_op; upto } ->
      on_prepare_ok_multi t ~src ~view ~from_op ~upto
    | Msg.Commit { view; commit } -> on_commit t ~view ~commit
    | Msg.Start_view_change { view } ->
      if view > t.view then start_view_change t view;
      (* Count the sender's vote whether we just joined this view change or
         were already in it. *)
      if view = t.view then begin
        match t.status with
        | View_change vc ->
          vc.svc_from <- Node_id.Set.add src vc.svc_from;
          check_svc_quorum t
        | Normal -> ()
      end
    | Msg.Do_view_change { view; log; last_normal; commit } ->
      if view > t.view then start_view_change t view;
      on_do_view_change t ~src ~view ~log ~last_normal ~commit
    | Msg.Start_view { view; log; commit } -> on_start_view t ~view ~log ~commit
    | Msg.Get_state { view; from } -> on_get_state t ~src ~view ~from
    | Msg.New_state { view; from; ops; commit } ->
      on_new_state t ~view ~from ~ops ~commit
[@@rsmr.deterministic] [@@rsmr.total]

let halt t =
  if not t.halted then begin
    t.halted <- true;
    t.view_timer <- cancel t t.view_timer;
    t.hb_timer <- cancel t t.hb_timer;
    t.resend_timer <- cancel t t.resend_timer;
    t.batch_timer <- cancel t t.batch_timer
  end

let create ~engine ~params ~config ~me ~send ?broadcast ?obs ~on_decide () =
  if not (Config.is_member config me) then
    invalid_arg "Vr.create: not a member of the configuration";
  let c_view_changes =
    match obs with
    | Some reg ->
      Rsmr_obs.Registry.scope_counter
        (Rsmr_obs.Registry.scope ~node:me ~epoch:config.Config.instance_id reg)
        "view_changes"
    | None -> ref 0
  in
  let t =
    {
      engine;
      params;
      members = Array.of_list config.Config.members;
      me;
      send;
      bcast = broadcast;
      on_decide;
      rng = Rng.split (Engine.rng engine);
      view = 0;
      status = Normal;
      last_normal = 0;
      log = [||];
      len = 0;
      commit = 0;
      executed = 0;
      acks = Hashtbl.create 64;
      pending = Queue.create ();
      batch_buf = [];
      batch_len = 0;
      batch_timer = None;
      view_timer = None;
      hb_timer = None;
      resend_timer = None;
      halted = false;
      c_view_changes;
    }
  in
  (* View 0's primary is live from the start — no election needed. *)
  if is_primary t then begin
    start_heartbeat t;
    start_resend t
  end
  else reset_view_timer t;
  t

(* Canonical fingerprint (the Block_intf contract); same exclusion rules
   as {!Replica.fingerprint}: no timer due-times, RNG or metrics, but
   timer presence and every behaviour-bearing field, with unordered
   collections in sorted order. *)
let fingerprint t =
  let w = W.create ~size_hint:256 () in
  let node w n = W.varint w (n : Node_id.t) in
  let node_set w s = W.list w node (Node_id.Set.elements s) in
  let pending_timer slot =
    match slot with Some tm -> Engine.is_pending tm | None -> false
  in
  W.varint w t.view;
  (match t.status with
   | Normal -> W.u8 w 0
   | View_change { svc_from; dvc } ->
     W.u8 w 1;
     node_set w svc_from;
     W.list w
       (fun w (n, d) ->
         node w n;
         W.list w W.string d.d_log;
         W.varint w d.d_last_normal;
         W.varint w d.d_commit)
       (List.sort (fun (a, _) (b, _) -> Int.compare a b) dvc));
  W.varint w t.last_normal;
  W.list w W.string (log_list t);
  W.varint w t.commit;
  W.varint w t.executed;
  W.list w
    (fun w (op, s) ->
      W.varint w op;
      node_set w s)
    (List.rev
       (Rsmr_sim.Stable.fold_sorted ~compare:Int.compare
          (fun k v acc -> (k, !v) :: acc)
          t.acks []));
  W.list w W.string
    (List.rev (Queue.fold (fun acc v -> v :: acc) [] t.pending));
  W.list w W.string t.batch_buf;
  W.bool w (pending_timer t.batch_timer);
  W.bool w (pending_timer t.view_timer);
  W.bool w (pending_timer t.hb_timer);
  W.bool w (pending_timer t.resend_timer);
  W.bool w t.halted;
  W.contents w
[@@rsmr.codec.oneway]
