type t = {
  heartbeat_interval : float;
  election_timeout_min : float;
  election_timeout_max : float;
  resend_interval : float;
  learn_batch : int;
  batch_delay : float;
  batch_max : int;
  max_outstanding : int;
}

let default =
  {
    heartbeat_interval = 0.020;
    election_timeout_min = 0.100;
    election_timeout_max = 0.200;
    resend_interval = 0.050;
    learn_batch = 256;
    batch_delay = 0.0005;
    batch_max = 64;
    max_outstanding = 64;
  }

let unbatched = { default with batch_delay = 0.0 }
let with_batching delay = { default with batch_delay = delay }

let pp ppf t =
  Format.fprintf ppf
    "hb=%.0fms eto=[%.0f,%.0f]ms resend=%.0fms batch=%.1fms/%d pipe=%d"
    (t.heartbeat_interval *. 1e3)
    (t.election_timeout_min *. 1e3)
    (t.election_timeout_max *. 1e3)
    (t.resend_interval *. 1e3)
    (t.batch_delay *. 1e3)
    t.batch_max t.max_outstanding
