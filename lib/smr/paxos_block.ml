module M = Msg

let block_name = "multipaxos"

module Msg = struct
  type t = M.t

  let encode = M.encode
  let decode = M.decode
  let size = M.size
  let tag = M.tag
  let tag_of_encoded = M.tag_of_encoded
end

type t = Replica.t

let create ~engine ~params ~config ~me ~send ?broadcast ?obs ~on_decide () =
  Replica.create ~engine ~params ~config ~me ~send ?broadcast ?obs ~on_decide
    ()

let handle = Replica.handle
let submit = Replica.submit
let submit_many = Replica.submit_many
let submit_msg value = M.Submit { value }
let submit_many_msg values = M.Submit_multi { values }
let is_leader = Replica.is_leader
let leader_hint = Replica.leader_hint
let halt = Replica.halt
let is_halted = Replica.is_halted
let commit_index = Replica.commit_index
let fingerprint = Replica.fingerprint
