(** Timing parameters of the static SMR building block.  Defaults are tuned
    for the LAN latency model (sub-millisecond RTT) and have batching and
    pipelining ON: leaders coalesce submissions for [batch_delay] into
    multi-command slots and keep up to [max_outstanding] uncommitted slots
    in flight. *)

type t = {
  heartbeat_interval : float;  (** leader heartbeat period, seconds *)
  election_timeout_min : float;
  election_timeout_max : float;
      (** follower election timeout is drawn uniformly from this range,
          Raft-style, to break dueling-proposer livelock *)
  resend_interval : float;     (** leader re-broadcast period for stuck slots *)
  learn_batch : int;           (** max entries per Learn response *)
  batch_delay : float;
      (** leader-side batching window: submissions are accumulated for this
          long (seconds) and proposed with a single [Accept_multi] per
          follower.  0 disables the window (a lone submission is proposed
          immediately as a plain [Accept]; vector submissions via
          [submit_many] still travel as one batch). *)
  batch_max : int;  (** flush early at this many buffered commands *)
  max_outstanding : int;
      (** pipelining cap: the leader keeps at most this many uncommitted
          slots in flight; further submissions wait in the batch buffer
          until commit progress frees a slot.  Also bounds the resend
          window for stuck slots. *)
}

val with_batching : float -> t
(** [default] with the given batching window. *)

val unbatched : t
(** [default] with the batching window disabled (one [Accept] broadcast per
    command) — the pre-batching ablation baseline. *)

val default : t
val pp : Format.formatter -> t -> unit
