(** A replica's Paxos log: a growable array of slots.  Slot values are
    opaque strings (the building block knows nothing about the commands it
    orders) plus protocol no-ops used to fill holes during leader
    takeover. *)

type kind = Noop | Value of string

type entry = { ballot : Ballot.t; kind : kind }

type t

val create : unit -> t

val length : t -> int
(** One past the highest populated index. *)

val get : t -> int -> entry option
val set : t -> int -> entry -> unit
val is_committed : t -> int -> bool
val mark_committed : t -> int -> unit

val set_committed : t -> int -> kind -> unit
(** Install a known-chosen value (from a Learn response): stores it with
    whatever ballot and marks the slot committed. *)

val committed_prefix : t -> int
(** Largest [n] such that slots [0..n-1] are all committed. *)

val uncommitted_range : t -> lo:int -> (int * entry) list
(** Populated-but-uncommitted slots at index >= lo, ascending. *)

val entries_from : t -> int -> (int * entry) list
(** All populated slots at index >= the argument, ascending. *)

val committed_values : t -> lo:int -> hi:int -> (int * kind) list
(** Committed slots in [lo, hi], ascending; skips uncommitted ones. *)

val pp_kind : Format.formatter -> kind -> unit
val encode_kind : Rsmr_app.Codec.Writer.t -> kind -> unit
val decode_kind : Rsmr_app.Codec.Reader.t -> kind
[@@rsmr.deterministic] [@@rsmr.total]
