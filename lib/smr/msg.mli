(** Wire messages of the static Multi-Paxos building block.

    [Prepare]/[Promise] are phase 1 over the whole uncommitted log suffix;
    [Accept]/[Accepted] are per-slot phase 2; [Heartbeat] renews leadership
    and carries the commit watermark; [Learn_req]/[Learn_rsp] let a lagging
    replica fetch chosen values; [Submit]/[Submit_multi] forward commands
    to the leader. *)

type t =
  | Prepare of { ballot : Ballot.t; from_index : int }
  | Promise of {
      ballot : Ballot.t;
      from_index : int;
      entries : (int * Log.entry) list;
      commit_index : int;
    }
  | Reject of { ballot : Ballot.t; higher : Ballot.t }
  | Accept of { ballot : Ballot.t; index : int; kind : Log.kind; commit_index : int }
  | Accept_multi of {
      ballot : Ballot.t;
      from_index : int;
      kinds : Log.kind list;  (** consecutive slots from [from_index] *)
      commit_index : int;
    }
  | Accepted of { ballot : Ballot.t; index : int }
  | Accepted_multi of { ballot : Ballot.t; from_index : int; upto : int }
  | Heartbeat of { ballot : Ballot.t; commit_index : int }
  | Learn_req of { from_index : int }
  | Learn_rsp of { entries : (int * Log.kind) list; commit_index : int }
  | Submit of { value : string }
  | Submit_multi of { values : string list }
      (** forwarded vector submission: ordered client commands that should
          be proposed as one batch by whoever is leader *)

val size : t -> int
(** Wire size in bytes: a single counting pass over the same body as
    {!encode}, allocating nothing. *)

val write : Rsmr_app.Codec.Writer.t -> t -> unit
(** The wire-format body shared by {!encode} and {!size}; also lets a
    parent codec embed this message via [Writer.nested]. *)

val read : Rsmr_app.Codec.Reader.t -> t
(** Decode in place from a reader (e.g. a [Reader.view]). *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
val pp : Format.formatter -> t -> unit

val tag : t -> string
(** Short constructor name, for per-message-type counters. *)

val tag_of_encoded : string -> string
(** {!tag} recovered from an encoded payload's leading wire byte alone,
    without decoding the payload.  Unrecognised input maps to
    ["invalid"]. *)
