(** Static Viewstamped Replication — the second, independent
    non-reconfigurable building block (VR Revisited, Liskov & Cowling
    2012, without the recovery and reconfiguration sub-protocols: the whole
    point of the composition is that the block does not need them).

    Differences from the Multi-Paxos block that make it a genuine test of
    block-agnosticism: primaries rotate round-robin by view number (no
    ballots), backups accept operations only in sequence, and view changes
    ship the whole log in [DoViewChange]/[StartView] — VR's classic naive
    cost, faithfully metered by the network's byte accounting. *)

(** VR's wire protocol, exposed concretely for tests and documentation. *)
module Msg : sig
  type t =
    | Request of { value : string }
    | Prepare of { view : int; op : int; value : string; commit : int }
    | Prepare_ok of { view : int; op : int }
    | Commit of { view : int; commit : int }
    | Start_view_change of { view : int }
    | Do_view_change of {
        view : int;
        log : string list;
        last_normal : int;
        commit : int;
      }
    | Start_view of { view : int; log : string list; commit : int }
    | Get_state of { view : int; from : int }
    | New_state of { view : int; from : int; ops : string list; commit : int }
    | Request_multi of { values : string list }
        (** forwarded vector submission, proposed as one batch *)
    | Prepare_multi of {
        view : int;
        from_op : int;
        values : string list;  (** consecutive ops from [from_op] *)
        commit : int;
      }
    | Prepare_ok_multi of { view : int; from_op : int; upto : int }

  val size : t -> int
  (** Wire size in bytes: a single counting pass over the same body as
      {!encode}, allocating nothing. *)

  val write : Rsmr_app.Codec.Writer.t -> t -> unit
  (** The wire-format body shared by {!encode} and {!size}. *)

  val read : Rsmr_app.Codec.Reader.t -> t
  (** Decode in place from a reader (e.g. a [Reader.view]). *)

  val encode : t -> string
  val decode : string -> t
  [@@rsmr.deterministic] [@@rsmr.total]
  val tag : t -> string

  val tag_of_encoded : string -> string
  (** {!tag} recovered from an encoded payload's leading wire byte alone,
      without decoding the payload.  Unrecognised input maps to
      ["invalid"]. *)
end

include Block_intf.S with module Msg := Msg

(** {1 Introspection (tests)} *)

val view : t -> int
val is_normal : t -> bool
val log_length : t -> int
