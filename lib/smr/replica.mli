(** One replica of a {e non-reconfigurable} Multi-Paxos state machine
    replication instance.

    The instance totally orders opaque string commands over a fixed member
    set ({!Config.t}); it has no notion of membership change — that is the
    whole point of the paper, which composes these black boxes into a
    reconfigurable service ({!Rsmr_core}).

    A replica plays all three Paxos roles.  Leadership is established with
    phase 1 over the uncommitted log suffix and maintained with heartbeats;
    followers start elections after a randomized timeout.  Decided commands
    are delivered to [on_decide] in strict index order, exactly once per
    index on any given replica.

    The replica is transport-agnostic: it emits messages through the [send]
    callback given at creation and consumes them via {!handle}; the host is
    responsible for wiring those to a network. *)

type t

type status = Leader | Candidate | Follower

val create :
  engine:Rsmr_sim.Engine.t ->
  ?params:Params.t ->
  ?trace:Rsmr_sim.Trace.t ->
  config:Config.t ->
  me:Rsmr_net.Node_id.t ->
  send:(dst:Rsmr_net.Node_id.t -> Msg.t -> unit) ->
  ?broadcast:(Msg.t -> unit) ->
  ?obs:Rsmr_obs.Registry.t ->
  on_decide:(int -> string -> unit) ->
  unit ->
  t
(** [me] must be a member of [config].

    [broadcast msg], when provided, replaces per-destination [send] for
    any message addressed to every other member — the transport can then
    encode the payload exactly once for the whole fan-out.  It must be
    equivalent to [send ~dst msg] for each member of [config] except
    [me].

    [obs], when provided, receives the replica's accounting
    ("elections", "takeovers", "proposals", "commits") in cells scoped
    by [{node = me; epoch = config.instance_id}]; cells are resolved
    once here so the per-event cost is a ref bump. *)

val handle : t -> src:Rsmr_net.Node_id.t -> Msg.t -> unit
[@@rsmr.deterministic] [@@rsmr.total]
(** Feed an incoming message.  Ignored once {!halt}ed.  The flow
    annotations are enforced by rsmr-flow: everything reachable from
    [handle] must be deterministic and total. *)

val submit : t -> string -> unit
[@@rsmr.deterministic] [@@rsmr.total]
(** Offer a command for ordering.  If this replica is not the leader it
    forwards the command (best effort — the client layer owns retries). *)

val submit_many : t -> string list -> unit
[@@rsmr.deterministic] [@@rsmr.total]
(** Offer an ordered vector of commands.  On the leader the vector is
    proposed as one multi-command slot run (a single [Accept_multi]
    broadcast) regardless of the batching window; a follower forwards it
    as one [Submit_multi].  Equivalent to [List.iter (submit t)] w.r.t.
    ordering and delivery, but O(1) messages instead of O(n). *)

val status : t -> status
val is_leader : t -> bool
val leader_hint : t -> Rsmr_net.Node_id.t option

val halt : t -> unit
(** Retire the replica: cancel timers, drop all future input.  Used when
    its configuration is superseded. *)

val is_halted : t -> bool

val commit_index : t -> int
(** Length of the committed log prefix. *)

val decided_upto : t -> int
(** Number of slots already delivered to [on_decide] (counting no-ops). *)

val log_length : t -> int
val config : t -> Config.t
val me : t -> Rsmr_net.Node_id.t

val kick_election : t -> unit
(** Test hook: trigger an immediate election attempt. *)

val fingerprint : t -> string
[@@rsmr.deterministic]
(** Canonical encoding of the replica's complete protocol state — see
    {!Block_intf.S.fingerprint}.  Unordered collections are emitted in
    sorted order; timer due-times, RNG and metrics are excluded, timer
    presence is included. *)
