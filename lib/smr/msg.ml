module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t =
  | Prepare of { ballot : Ballot.t; from_index : int }
  | Promise of {
      ballot : Ballot.t;
      from_index : int;
      entries : (int * Log.entry) list;
      commit_index : int;
    }
  | Reject of { ballot : Ballot.t; higher : Ballot.t }
  | Accept of { ballot : Ballot.t; index : int; kind : Log.kind; commit_index : int }
  | Accept_multi of {
      ballot : Ballot.t;
      from_index : int;
      kinds : Log.kind list;  (** consecutive slots from [from_index] *)
      commit_index : int;
    }
  | Accepted of { ballot : Ballot.t; index : int }
  | Accepted_multi of { ballot : Ballot.t; from_index : int; upto : int }
  | Heartbeat of { ballot : Ballot.t; commit_index : int }
  | Learn_req of { from_index : int }
  | Learn_rsp of { entries : (int * Log.kind) list; commit_index : int }
  | Submit of { value : string }
  | Submit_multi of { values : string list }
      (** forwarded vector submission: ordered client commands that should
          be proposed as one batch by whoever is leader *)

let encode_entry w (i, (e : Log.entry)) =
  W.varint w i;
  Ballot.encode w e.ballot;
  Log.encode_kind w e.kind

let decode_entry r =
  let i = R.varint r in
  let ballot = Ballot.decode r in
  let kind = Log.decode_kind r in
  (i, { Log.ballot; kind })

let encode_learned w (i, kind) =
  W.varint w i;
  Log.encode_kind w kind

let decode_learned r =
  let i = R.varint r in
  (i, Log.decode_kind r)

(* Single wire-format body shared by [encode] (buffer sink) and [size]
   (counting sink). *)
let write w t =
  match t with
  | Prepare { ballot; from_index } ->
    W.u8 w 0;
    Ballot.encode w ballot;
    W.varint w from_index
  | Promise { ballot; from_index; entries; commit_index } ->
    W.u8 w 1;
    Ballot.encode w ballot;
    W.varint w from_index;
    W.list w encode_entry entries;
    W.varint w commit_index
  | Reject { ballot; higher } ->
    W.u8 w 2;
    Ballot.encode w ballot;
    Ballot.encode w higher
  | Accept { ballot; index; kind; commit_index } ->
    W.u8 w 3;
    Ballot.encode w ballot;
    W.varint w index;
    Log.encode_kind w kind;
    W.varint w commit_index
  | Accepted { ballot; index } ->
    W.u8 w 4;
    Ballot.encode w ballot;
    W.varint w index
  | Heartbeat { ballot; commit_index } ->
    W.u8 w 5;
    Ballot.encode w ballot;
    W.varint w commit_index
  | Learn_req { from_index } ->
    W.u8 w 6;
    W.varint w from_index
  | Learn_rsp { entries; commit_index } ->
    W.u8 w 7;
    W.list w encode_learned entries;
    W.varint w commit_index
  | Submit { value } ->
    W.u8 w 8;
    W.string w value
  | Accept_multi { ballot; from_index; kinds; commit_index } ->
    W.u8 w 9;
    Ballot.encode w ballot;
    W.varint w from_index;
    W.list w Log.encode_kind kinds;
    W.varint w commit_index
  | Accepted_multi { ballot; from_index; upto } ->
    W.u8 w 10;
    Ballot.encode w ballot;
    W.varint w from_index;
    W.varint w upto
  | Submit_multi { values } ->
    W.u8 w 11;
    W.list w W.string values

let read r =
  match R.u8 r with
  | 0 ->
    let ballot = Ballot.decode r in
    Prepare { ballot; from_index = R.varint r }
  | 1 ->
    let ballot = Ballot.decode r in
    let from_index = R.varint r in
    let entries = R.list r decode_entry in
    Promise { ballot; from_index; entries; commit_index = R.varint r }
  | 2 ->
    let ballot = Ballot.decode r in
    Reject { ballot; higher = Ballot.decode r }
  | 3 ->
    let ballot = Ballot.decode r in
    let index = R.varint r in
    let kind = Log.decode_kind r in
    Accept { ballot; index; kind; commit_index = R.varint r }
  | 4 ->
    let ballot = Ballot.decode r in
    Accepted { ballot; index = R.varint r }
  | 5 ->
    let ballot = Ballot.decode r in
    Heartbeat { ballot; commit_index = R.varint r }
  | 6 -> Learn_req { from_index = R.varint r }
  | 7 ->
    let entries = R.list r decode_learned in
    Learn_rsp { entries; commit_index = R.varint r }
  | 8 -> Submit { value = R.string r }
  | 9 ->
    let ballot = Ballot.decode r in
    let from_index = R.varint r in
    let kinds = R.list r Log.decode_kind in
    Accept_multi { ballot; from_index; kinds; commit_index = R.varint r }
  | 10 ->
    let ballot = Ballot.decode r in
    let from_index = R.varint r in
    Accepted_multi { ballot; from_index; upto = R.varint r }
  | 11 -> Submit_multi { values = R.list r R.string }
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c

let tag = function
  | Prepare _ -> "prepare"
  | Promise _ -> "promise"
  | Reject _ -> "reject"
  | Accept _ -> "accept"
  | Accept_multi _ -> "accept_multi"
  | Accepted _ -> "accepted"
  | Accepted_multi _ -> "accepted_multi"
  | Heartbeat _ -> "heartbeat"
  | Learn_req _ -> "learn_req"
  | Learn_rsp _ -> "learn_rsp"
  | Submit _ -> "submit"
  | Submit_multi _ -> "submit_multi"

(* Tag from the leading wire byte alone, so the network tagger can
   classify an encoded payload without a full decode.  Must agree with
   [tag] composed with [decode]; property-tested in test_wire.ml. *)
let tag_of_encoded s =
  if String.length s = 0 then "invalid"
  else
    match Char.code s.[0] with
    | 0 -> "prepare"
    | 1 -> "promise"
    | 2 -> "reject"
    | 3 -> "accept"
    | 4 -> "accepted"
    | 5 -> "heartbeat"
    | 6 -> "learn_req"
    | 7 -> "learn_rsp"
    | 8 -> "submit"
    | 9 -> "accept_multi"
    | 10 -> "accepted_multi"
    | 11 -> "submit_multi"
    | _ -> "invalid"

let pp ppf t =
  match t with
  | Prepare { ballot; from_index } ->
    Format.fprintf ppf "prepare(%a,from=%d)" Ballot.pp ballot from_index
  | Promise { ballot; entries; commit_index; _ } ->
    Format.fprintf ppf "promise(%a,%d entries,ci=%d)" Ballot.pp ballot
      (List.length entries) commit_index
  | Reject { ballot; higher } ->
    Format.fprintf ppf "reject(%a,higher=%a)" Ballot.pp ballot Ballot.pp higher
  | Accept { ballot; index; kind; commit_index } ->
    Format.fprintf ppf "accept(%a,i=%d,%a,ci=%d)" Ballot.pp ballot index
      Log.pp_kind kind commit_index
  | Accepted { ballot; index } ->
    Format.fprintf ppf "accepted(%a,i=%d)" Ballot.pp ballot index
  | Heartbeat { ballot; commit_index } ->
    Format.fprintf ppf "heartbeat(%a,ci=%d)" Ballot.pp ballot commit_index
  | Learn_req { from_index } -> Format.fprintf ppf "learn_req(from=%d)" from_index
  | Learn_rsp { entries; commit_index } ->
    Format.fprintf ppf "learn_rsp(%d entries,ci=%d)" (List.length entries)
      commit_index
  | Submit { value } -> Format.fprintf ppf "submit(%d bytes)" (String.length value)
  | Accept_multi { ballot; from_index; kinds; commit_index } ->
    Format.fprintf ppf "accept_multi(%a,from=%d,%d kinds,ci=%d)" Ballot.pp
      ballot from_index (List.length kinds) commit_index
  | Accepted_multi { ballot; from_index; upto } ->
    Format.fprintf ppf "accepted_multi(%a,%d..%d)" Ballot.pp ballot from_index
      upto
  | Submit_multi { values } ->
    Format.fprintf ppf "submit_multi(%d values)" (List.length values)
