type kind = Noop | Value of string
type entry = { ballot : Ballot.t; kind : kind }
type slot = { mutable entry : entry option; mutable committed : bool }

type t = {
  mutable slots : slot array;
  mutable len : int; (* one past highest populated index *)
  mutable committed_prefix : int;
}

let fresh_slot () = { entry = None; committed = false }
let create () = { slots = [||]; len = 0; committed_prefix = 0 }
let length t = t.len

let ensure t i =
  let cap = Array.length t.slots in
  if i >= cap then begin
    let ncap = max 64 (max (i + 1) (cap * 2)) in
    let ns = Array.init ncap (fun j -> if j < cap then t.slots.(j) else fresh_slot ()) in
    t.slots <- ns
  end;
  if i >= t.len then t.len <- i + 1

let get t i =
  if i < 0 || i >= t.len then None else t.slots.(i).entry

let set t i entry =
  if i < 0 then invalid_arg "Log.set: negative index";
  ensure t i;
  t.slots.(i).entry <- Some entry

let is_committed t i = i >= 0 && i < t.len && t.slots.(i).committed

let advance_prefix t =
  while
    t.committed_prefix < t.len && t.slots.(t.committed_prefix).committed
  do
    t.committed_prefix <- t.committed_prefix + 1
  done

let mark_committed t i =
  if i < 0 then invalid_arg "Log.mark_committed: negative index";
  ensure t i;
  t.slots.(i).committed <- true;
  advance_prefix t

let set_committed t i kind =
  if i < 0 then invalid_arg "Log.set_committed: negative index";
  ensure t i;
  (match t.slots.(i).entry with
   | Some _ when t.slots.(i).committed ->
     (* A committed slot never changes value: chosen is chosen.  A
        conflicting commit can only come from a faulty peer, so keep the
        first value rather than crash on hostile wire input. *)
     ()
   | _ -> t.slots.(i).entry <- Some { ballot = Ballot.zero; kind });
  t.slots.(i).committed <- true;
  advance_prefix t

let committed_prefix t = t.committed_prefix

let uncommitted_range t ~lo =
  let acc = ref [] in
  for i = t.len - 1 downto max lo 0 do
    if not t.slots.(i).committed then
      match t.slots.(i).entry with
      | Some e -> acc := (i, e) :: !acc
      | None -> ()
  done;
  !acc

let entries_from t lo =
  let acc = ref [] in
  for i = t.len - 1 downto max lo 0 do
    match t.slots.(i).entry with
    | Some e -> acc := (i, e) :: !acc
    | None -> ()
  done;
  !acc

let committed_values t ~lo ~hi =
  let acc = ref [] in
  for i = min hi (t.len - 1) downto max lo 0 do
    if t.slots.(i).committed then
      match t.slots.(i).entry with
      | Some e -> acc := (i, e.kind) :: !acc
      | None -> ()
  done;
  !acc

let pp_kind ppf = function
  | Noop -> Format.pp_print_string ppf "noop"
  | Value v -> Format.fprintf ppf "value(%d bytes)" (String.length v)

let encode_kind w = function
  | Noop -> Rsmr_app.Codec.Writer.u8 w 0
  | Value v ->
    Rsmr_app.Codec.Writer.u8 w 1;
    Rsmr_app.Codec.Writer.string w v

let decode_kind r =
  match Rsmr_app.Codec.Reader.u8 r with
  | 0 -> Noop
  | 1 -> Value (Rsmr_app.Codec.Reader.string r)
  | _ -> raise Rsmr_app.Codec.Truncated
