(** Paxos ballot numbers: a (round, proposer) pair ordered
    lexicographically, so concurrent proposers never collide. *)

type t = { round : int; node : Rsmr_net.Node_id.t }

val zero : t
(** Smaller than any ballot a proposer can own. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool

val next : t -> Rsmr_net.Node_id.t -> t
(** [next b me] is the smallest ballot owned by [me] greater than [b]. *)

val pp : Format.formatter -> t -> unit
val encode : Rsmr_app.Codec.Writer.t -> t -> unit
val decode : Rsmr_app.Codec.Reader.t -> t
[@@rsmr.deterministic] [@@rsmr.total]
