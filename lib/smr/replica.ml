module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Trace = Rsmr_sim.Trace
module Counters = Rsmr_sim.Counters
module Stable = Rsmr_sim.Stable
module Node_id = Rsmr_net.Node_id

type status = Leader | Candidate | Follower

type candidacy = {
  c_ballot : Ballot.t;
  mutable promised_from : Node_id.Set.t;
  merged : (int, Log.entry) Hashtbl.t; (* highest-ballot entry per slot *)
  from_index : int;
}

type leadership = {
  l_ballot : Ballot.t;
  mutable next_index : int;
  acks : (int, Node_id.Set.t ref) Hashtbl.t;
}

type role = R_follower | R_candidate of candidacy | R_leader of leadership

type t = {
  engine : Engine.t;
  params : Params.t;
  trace : Trace.t option;
  cfg : Config.t;
  me : Node_id.t;
  send : dst:Node_id.t -> Msg.t -> unit;
  bcast : (Msg.t -> unit) option;
  others : Node_id.t list; (* Config.others cfg me, computed once *)
  on_decide : int -> string -> unit;
  rng : Rng.t;
  log : Log.t;
  mutable promised : Ballot.t;
  mutable role : role;
  mutable hint : Node_id.t option;
  mutable deliver_index : int;
  (* Highest committed watermark heard from a leader, together with that
     leader's ballot: a follower may locally commit slot i <= watermark only
     if its accepted entry for i carries exactly that ballot; otherwise it
     must fetch the chosen value with Learn_req. *)
  mutable known_committed : int;
  mutable known_committed_ballot : Ballot.t;
  pending : string Queue.t;
  mutable batch_buf : string list; (* newest first; leader only *)
  mutable batch_len : int; (* List.length batch_buf, kept O(1) *)
  mutable batch_timer : Engine.timer option;
  mutable election_timer : Engine.timer option;
  mutable hb_timer : Engine.timer option;
  mutable resend_timer : Engine.timer option;
  mutable learn_inflight : bool;
  mutable halted : bool;
  (* Pre-resolved metric cells — scoped {node; epoch} registry cells when
     an Observatory is attached, otherwise cells of a private table — so
     accounting is a ref bump either way. *)
  c_elections : int ref;
  c_takeovers : int ref;
  c_proposals : int ref;
  c_commits : int ref;
}

let trace t fmt =
  Format.kasprintf
    (fun msg ->
      match t.trace with
      | Some tr ->
        Trace.emit tr ~time:(Engine.now t.engine) ~node:t.me ~topic:`Paxos
          ~attrs:[ ("instance", string_of_int t.cfg.Config.instance_id) ]
          msg
      | None -> ())
    fmt

let status t =
  match t.role with
  | R_leader _ -> Leader
  | R_candidate _ -> Candidate
  | R_follower -> Follower

let is_leader t = match t.role with R_leader _ -> true | _ -> false

let leader_hint t =
  match t.role with R_leader _ -> Some t.me | _ -> t.hint

let commit_index t = Log.committed_prefix t.log
let decided_upto t = t.deliver_index
let log_length t = Log.length t.log
let config t = t.cfg
let me t = t.me
let is_halted t = t.halted

let cancel_timer t slot =
  match slot with
  | Some timer ->
    Engine.cancel t.engine timer;
    None
  | None -> None

(* Same message to every other member: hand the whole fan-out to the
   transport when it gave us a broadcast hook (it then encodes the
   payload exactly once), else fall back to per-destination sends. *)
let broadcast t msg =
  match t.bcast with
  | Some f -> f msg
  | None -> List.iter (fun dst -> t.send ~dst msg) t.others

(* Deliver the committed prefix to the application, in order. *)
let deliver t =
  let stop = ref false in
  while (not !stop) && t.deliver_index < Log.committed_prefix t.log do
    (match Log.get t.log t.deliver_index with
     | Some { Log.kind = Log.Value v; _ } -> t.on_decide t.deliver_index v
     | Some { Log.kind = Log.Noop; _ } -> ()
     | None ->
       (* committed_prefix only advances over populated slots, so a gap
          here cannot happen; stop delivering rather than crash the
          replica if the invariant is ever violated. *)
       stop := true);
    if not !stop then begin
      t.deliver_index <- t.deliver_index + 1;
      if t.halted then stop := true
    end
  done

(* Try to locally commit slots covered by the leader's watermark. *)
let absorb_commit_watermark t =
  let hi = min (t.known_committed - 1) (Log.length t.log - 1) in
  let i = ref (Log.committed_prefix t.log) in
  let blocked = ref false in
  while (not !blocked) && !i <= hi do
    (match Log.get t.log !i with
     | Some e when Ballot.equal e.Log.ballot t.known_committed_ballot ->
       Log.mark_committed t.log !i
     | Some _ | None -> blocked := true);
    incr i
  done;
  deliver t

let rec request_learn t =
  if
    (not t.halted)
    && (not t.learn_inflight)
    && Log.committed_prefix t.log < t.known_committed
  then begin
    match leader_hint t with
    | Some dst when not (Node_id.equal dst t.me) ->
      t.learn_inflight <- true;
      t.send ~dst (Msg.Learn_req { from_index = Log.committed_prefix t.log });
      (* Clear the inflight latch even if the response is lost. *)
      ignore
        (Engine.schedule t.engine ~delay:t.params.Params.resend_interval
           (fun () ->
             t.learn_inflight <- false;
             request_learn t))
    | _ -> ()
  end

let sync_follower_commit t =
  absorb_commit_watermark t;
  if Log.committed_prefix t.log < t.known_committed then request_learn t

let note_commit_info t ~ballot ~commit_index =
  if
    commit_index > t.known_committed
    || Ballot.(t.known_committed_ballot < ballot)
  then begin
    if commit_index > t.known_committed then t.known_committed <- commit_index;
    if Ballot.(t.known_committed_ballot < ballot) then
      t.known_committed_ballot <- ballot
  end;
  sync_follower_commit t

(* --- timers --- *)

let rec reset_election_timer t =
  t.election_timer <- cancel_timer t t.election_timer;
  if not t.halted then begin
    let delay =
      Rng.uniform_in t.rng t.params.Params.election_timeout_min
        t.params.Params.election_timeout_max
    in
    t.election_timer <-
      Some (Engine.schedule t.engine ~delay (fun () -> on_election_timeout t))
  end

and on_election_timeout t =
  if not t.halted then
    match t.role with
    | R_leader _ -> () (* leaders do not self-depose *)
    | R_follower | R_candidate _ -> start_election t

and start_election t =
  incr t.c_elections;
  let ballot = Ballot.next t.promised t.me in
  t.promised <- ballot;
  let from_index = Log.committed_prefix t.log in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (i, e) -> Hashtbl.replace merged i e)
    (Log.entries_from t.log from_index);
  let cand =
    { c_ballot = ballot; promised_from = Node_id.Set.singleton t.me; merged; from_index }
  in
  t.role <- R_candidate cand;
  trace t "start election %a from=%d" Ballot.pp ballot from_index;
  broadcast t (Msg.Prepare { ballot; from_index });
  reset_election_timer t;
  maybe_win t cand

and maybe_win t cand =
  if Node_id.Set.cardinal cand.promised_from >= Config.quorum t.cfg then
    become_leader t cand

and become_leader t cand =
  incr t.c_takeovers;
  let ballot = cand.c_ballot in
  let max_index =
    List.fold_left max (cand.from_index - 1)
      (Stable.sorted_keys ~compare:Int.compare cand.merged)
  in
  let lead =
    { l_ballot = ballot; next_index = max_index + 1; acks = Hashtbl.create 64 }
  in
  t.role <- R_leader lead;
  t.hint <- Some t.me;
  trace t "became leader %a, re-proposing [%d,%d]" Ballot.pp ballot
    cand.from_index max_index;
  (* Adopt the highest-ballot entry for every slot in the takeover window,
     filling holes with no-ops, and re-propose everything at our ballot. *)
  for i = cand.from_index to max_index do
    let kind =
      match Hashtbl.find_opt cand.merged i with
      | Some e -> e.Log.kind
      | None -> Log.Noop
    in
    if not (Log.is_committed t.log i) then begin
      Log.set t.log i { Log.ballot; kind };
      Hashtbl.replace lead.acks i (ref (Node_id.Set.singleton t.me));
      broadcast t
        (Msg.Accept
           { ballot; index = i; kind; commit_index = Log.committed_prefix t.log })
    end
  done;
  t.election_timer <- cancel_timer t t.election_timer;
  start_heartbeat t;
  start_resend t;
  maybe_commit_solo t lead;
  drain_pending t

and maybe_commit_solo t lead =
  (* In a single-member configuration the leader's own acceptance is a
     quorum, so slots commit without any message exchange. *)
  if Config.quorum t.cfg = 1 then begin
    List.iter
      (fun i -> Log.mark_committed t.log i)
      (Stable.sorted_keys ~compare:Int.compare lead.acks);
    Hashtbl.reset lead.acks;
    deliver t;
    pump t
  end

and start_heartbeat t =
  t.hb_timer <- cancel_timer t t.hb_timer;
  let rec tick () =
    match t.role with
    | R_leader lead when not t.halted ->
      broadcast t
        (Msg.Heartbeat
           { ballot = lead.l_ballot; commit_index = Log.committed_prefix t.log });
      t.hb_timer <-
        Some (Engine.schedule t.engine ~delay:t.params.Params.heartbeat_interval tick)
    | _ -> ()
  in
  tick ()

and start_resend t =
  t.resend_timer <- cancel_timer t t.resend_timer;
  let rec tick () =
    match t.role with
    | R_leader lead when not t.halted ->
      let stuck =
        Log.uncommitted_range t.log ~lo:(Log.committed_prefix t.log)
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      (* Re-broadcast stuck slots at our ballot, coalescing consecutive
         runs into a single Accept_multi so a stalled pipeline window is
         one message per follower, not max_outstanding of them. *)
      let commit_index = Log.committed_prefix t.log in
      let flush_run run =
        match List.rev run with
        | [] -> ()
        | [ (index, (e : Log.entry)) ] ->
          broadcast t
            (Msg.Accept
               { ballot = lead.l_ballot; index; kind = e.Log.kind; commit_index })
        | (from_index, _) :: _ as entries ->
          broadcast t
            (Msg.Accept_multi
               {
                 ballot = lead.l_ballot;
                 from_index;
                 kinds = List.map (fun (_, (e : Log.entry)) -> e.Log.kind) entries;
                 commit_index;
               })
      in
      let rec walk run = function
        | [] -> flush_run run
        | (i, (e : Log.entry)) :: rest ->
          if Ballot.equal e.Log.ballot lead.l_ballot then (
            match run with
            | (j, _) :: _ when i = j + 1 -> walk ((i, e) :: run) rest
            | [] -> walk [ (i, e) ] rest
            | _ ->
              flush_run run;
              walk [ (i, e) ] rest)
          else begin
            flush_run run;
            walk [] rest
          end
      in
      walk [] (take t.params.Params.max_outstanding stuck);
      t.resend_timer <-
        Some (Engine.schedule t.engine ~delay:t.params.Params.resend_interval tick)
    | _ -> ()
  in
  t.resend_timer <-
    Some (Engine.schedule t.engine ~delay:t.params.Params.resend_interval tick)

and propose t kind =
  match t.role with
  | R_leader lead ->
    incr t.c_proposals;
    let index = lead.next_index in
    lead.next_index <- index + 1;
    Log.set t.log index { Log.ballot = lead.l_ballot; kind };
    Hashtbl.replace lead.acks index (ref (Node_id.Set.singleton t.me));
    broadcast t
      (Msg.Accept
         {
           ballot = lead.l_ballot;
           index;
           kind;
           commit_index = Log.committed_prefix t.log;
         });
    maybe_commit_solo t lead
  | R_candidate _ | R_follower -> invalid_arg "propose: not leader"

(* Leader-side batching + pipelining: accumulate submissions for
   batch_delay seconds (or batch_max commands) and propose them with a
   single Accept_multi broadcast, keeping at most max_outstanding
   uncommitted slots in flight.  batch_delay = 0 skips the window (a lone
   submission is proposed immediately as a plain Accept), but vector
   submissions still travel as one batch. *)
and buffer_value t value =
  t.batch_buf <- value :: t.batch_buf;
  t.batch_len <- t.batch_len + 1

and enqueue_value t value =
  buffer_value t value;
  if
    t.params.Params.batch_delay <= 0.0
    || t.batch_len >= t.params.Params.batch_max
  then flush_batch t
  else if t.batch_timer = None then
    t.batch_timer <-
      Some
        (Engine.schedule t.engine ~delay:t.params.Params.batch_delay (fun () ->
             t.batch_timer <- None;
             flush_batch t))

and flush_batch t =
  match t.role with
  | R_leader lead when t.batch_buf <> [] ->
    (* Pipelining cap: only as many slots as commit progress has freed.
       Whatever does not fit stays buffered and is re-flushed by [pump]
       when commits advance (the window has already elapsed by then). *)
    let cap =
      t.params.Params.max_outstanding
      - (lead.next_index - Log.committed_prefix t.log)
    in
    if cap > 0 then begin
      let values = List.rev t.batch_buf in
      let rec split n acc rest =
        match rest with
        | _ when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: tl -> split (n - 1) (x :: acc) tl
      in
      let now_values, later = split (min cap t.batch_len) [] values in
      t.batch_buf <- List.rev later;
      t.batch_len <- List.length later;
      t.batch_timer <- cancel_timer t t.batch_timer;
      match now_values with
      | [] -> ()
      | [ value ] -> propose t (Log.Value value)
      | _ ->
        let from_index = lead.next_index in
        let kinds =
          List.map
            (fun value ->
              let index = lead.next_index in
              lead.next_index <- index + 1;
              let kind = Log.Value value in
              incr t.c_proposals;
              Log.set t.log index { Log.ballot = lead.l_ballot; kind };
              Hashtbl.replace lead.acks index (ref (Node_id.Set.singleton t.me));
              kind)
            now_values
        in
        broadcast t
          (Msg.Accept_multi
             {
               ballot = lead.l_ballot;
               from_index;
               kinds;
               commit_index = Log.committed_prefix t.log;
             });
        maybe_commit_solo t lead
    end
  | _ -> ()

(* Commit progress freed pipeline slots: re-flush values that were parked
   waiting for capacity.  An armed batch timer means the window is still
   open — leave those to the timer. *)
and pump t = if t.batch_len > 0 && t.batch_timer = None then flush_batch t

and drain_pending t =
  let rec drain f =
    match Queue.take_opt t.pending with
    | Some value ->
      f value;
      drain f
    | None -> ()
  in
  match t.role with
  | R_leader _ ->
    drain (fun value -> enqueue_value t value);
    flush_batch t
  | R_candidate _ -> ()
  | R_follower -> (
    match t.hint with
    | Some dst when not (Node_id.equal dst t.me) ->
      (* Forward everything queued as one vector submission. *)
      let values = ref [] in
      drain (fun value -> values := value :: !values);
      (match List.rev !values with
       | [] -> ()
       | [ value ] -> t.send ~dst (Msg.Submit { value })
       | values -> t.send ~dst (Msg.Submit_multi { values }))
    | _ -> ())

let step_down t ~higher =
  (match t.role with
   | R_leader _ | R_candidate _ ->
     trace t "stepping down (higher ballot %a)" Ballot.pp higher;
     t.hb_timer <- cancel_timer t t.hb_timer;
     t.resend_timer <- cancel_timer t t.resend_timer;
     t.batch_timer <- cancel_timer t t.batch_timer;
     (* Unproposed batched values go back to pending so they get forwarded
        to whoever wins. *)
     List.iter (fun v -> Queue.push v t.pending) (List.rev t.batch_buf);
     t.batch_buf <- [];
     t.batch_len <- 0;
     t.role <- R_follower
   | R_follower -> ());
  if Ballot.(t.promised < higher) then t.promised <- higher;
  reset_election_timer t

(* --- message handlers --- *)

let on_prepare t ~src (ballot : Ballot.t) from_index =
  if Ballot.(t.promised <= ballot) then begin
    (match t.role with
     | R_leader _ | R_candidate _ ->
       if Ballot.(t.promised < ballot) then step_down t ~higher:ballot
     | R_follower -> ());
    t.promised <- ballot;
    t.hint <- Some src;
    reset_election_timer t;
    t.send ~dst:src
      (Msg.Promise
         {
           ballot;
           from_index;
           entries = Log.entries_from t.log from_index;
           commit_index = Log.committed_prefix t.log;
         })
  end
  else t.send ~dst:src (Msg.Reject { ballot; higher = t.promised })

let on_promise t ~src (ballot : Ballot.t) entries =
  match t.role with
  | R_candidate cand when Ballot.equal cand.c_ballot ballot ->
    cand.promised_from <- Node_id.Set.add src cand.promised_from;
    List.iter
      (fun (i, (e : Log.entry)) ->
        match Hashtbl.find_opt cand.merged i with
        | Some cur when Ballot.(e.Log.ballot <= cur.Log.ballot) -> ()
        | Some _ | None -> Hashtbl.replace cand.merged i e)
      entries;
    maybe_win t cand
  | _ -> ()

let on_reject t (ballot : Ballot.t) higher =
  let ours =
    match t.role with
    | R_candidate c -> Ballot.equal c.c_ballot ballot
    | R_leader l -> Ballot.equal l.l_ballot ballot
    | R_follower -> false
  in
  if ours then step_down t ~higher

let on_accept t ~src (ballot : Ballot.t) index kind commit_index =
  if Ballot.(t.promised <= ballot) then begin
    (match t.role with
     | R_leader l when not (Ballot.equal l.l_ballot ballot) ->
       step_down t ~higher:ballot
     | R_candidate c when not (Ballot.equal c.c_ballot ballot) ->
       step_down t ~higher:ballot
     | _ -> ());
    t.promised <- ballot;
    t.hint <- Some ballot.Ballot.node;
    if not (is_leader t) then reset_election_timer t;
    if not (Log.is_committed t.log index) then
      Log.set t.log index { Log.ballot; kind };
    t.send ~dst:src (Msg.Accepted { ballot; index });
    note_commit_info t ~ballot ~commit_index;
    drain_pending t
  end
  else t.send ~dst:src (Msg.Reject { ballot; higher = t.promised })

let on_accept_multi t ~src (ballot : Ballot.t) from_index kinds commit_index =
  if Ballot.(t.promised <= ballot) then begin
    (match t.role with
     | R_leader l when not (Ballot.equal l.l_ballot ballot) ->
       step_down t ~higher:ballot
     | R_candidate c when not (Ballot.equal c.c_ballot ballot) ->
       step_down t ~higher:ballot
     | _ -> ());
    t.promised <- ballot;
    t.hint <- Some ballot.Ballot.node;
    if not (is_leader t) then reset_election_timer t;
    List.iteri
      (fun offset kind ->
        let index = from_index + offset in
        if not (Log.is_committed t.log index) then
          Log.set t.log index { Log.ballot; kind })
      kinds;
    t.send ~dst:src
      (Msg.Accepted_multi
         { ballot; from_index; upto = from_index + List.length kinds - 1 });
    note_commit_info t ~ballot ~commit_index;
    drain_pending t
  end
  else t.send ~dst:src (Msg.Reject { ballot; higher = t.promised })

let on_accepted t ~src (ballot : Ballot.t) index =
  match t.role with
  | R_leader lead when Ballot.equal lead.l_ballot ballot ->
    if not (Log.is_committed t.log index) then begin
      let acks =
        match Hashtbl.find_opt lead.acks index with
        | Some r -> r
        | None ->
          let r = ref (Node_id.Set.singleton t.me) in
          Hashtbl.replace lead.acks index r;
          r
      in
      acks := Node_id.Set.add src !acks;
      if Node_id.Set.cardinal !acks >= Config.quorum t.cfg then begin
        Log.mark_committed t.log index;
        Hashtbl.remove lead.acks index;
        incr t.c_commits;
        deliver t;
        pump t
      end
    end
  | _ -> ()

let on_accepted_multi t ~src (ballot : Ballot.t) from_index upto =
  match t.role with
  | R_leader lead when Ballot.equal lead.l_ballot ballot ->
    let committed_any = ref false in
    for index = from_index to upto do
      if not (Log.is_committed t.log index) then begin
        let acks =
          match Hashtbl.find_opt lead.acks index with
          | Some r -> r
          | None ->
            let r = ref (Node_id.Set.singleton t.me) in
            Hashtbl.replace lead.acks index r;
            r
        in
        acks := Node_id.Set.add src !acks;
        if Node_id.Set.cardinal !acks >= Config.quorum t.cfg then begin
          Log.mark_committed t.log index;
          Hashtbl.remove lead.acks index;
          incr t.c_commits;
          committed_any := true
        end
      end
    done;
    if !committed_any then begin
      deliver t;
      pump t
    end
  | _ -> ()

let on_heartbeat t ~src (ballot : Ballot.t) commit_index =
  if Ballot.(t.promised <= ballot) then begin
    (match t.role with
     | R_leader l when not (Ballot.equal l.l_ballot ballot) ->
       step_down t ~higher:ballot
     | R_candidate _ -> step_down t ~higher:ballot
     | _ -> ());
    t.promised <- ballot;
    t.hint <- Some src;
    if not (is_leader t) then reset_election_timer t;
    note_commit_info t ~ballot ~commit_index;
    drain_pending t
  end
  else t.send ~dst:src (Msg.Reject { ballot; higher = t.promised })

let on_learn_req t ~src from_index =
  let upto = Log.committed_prefix t.log - 1 in
  let hi = min upto (from_index + t.params.Params.learn_batch - 1) in
  if hi >= from_index then
    t.send ~dst:src
      (Msg.Learn_rsp
         {
           entries = Log.committed_values t.log ~lo:from_index ~hi;
           commit_index = Log.committed_prefix t.log;
         })

let on_learn_rsp t entries commit_index =
  t.learn_inflight <- false;
  List.iter (fun (i, kind) -> Log.set_committed t.log i kind) entries;
  if commit_index > t.known_committed then t.known_committed <- commit_index;
  deliver t;
  if Log.committed_prefix t.log < t.known_committed then request_learn t

let submit t value =
  if not t.halted then begin
    match t.role with
    | R_leader _ -> enqueue_value t value
    | R_candidate _ -> Queue.push value t.pending
    | R_follower -> (
      match t.hint with
      | Some dst when not (Node_id.equal dst t.me) ->
        t.send ~dst (Msg.Submit { value })
      | _ -> Queue.push value t.pending)
  end

(* Vector submission: the values are already a batch, so they are proposed
   (or forwarded) as one multi-command slot run regardless of the batching
   window, preserving their order. *)
let submit_many t values =
  if (not t.halted) && values <> [] then begin
    match t.role with
    | R_leader _ ->
      List.iter (fun value -> buffer_value t value) values;
      flush_batch t
    | R_candidate _ -> List.iter (fun value -> Queue.push value t.pending) values
    | R_follower -> (
      match t.hint with
      | Some dst when not (Node_id.equal dst t.me) ->
        t.send ~dst (Msg.Submit_multi { values })
      | _ -> List.iter (fun value -> Queue.push value t.pending) values)
  end

let handle t ~src msg =
  if not t.halted then
    match (msg : Msg.t) with
    | Msg.Prepare { ballot; from_index } -> on_prepare t ~src ballot from_index
    | Msg.Promise { ballot; entries; _ } -> on_promise t ~src ballot entries
    | Msg.Reject { ballot; higher } -> on_reject t ballot higher
    | Msg.Accept { ballot; index; kind; commit_index } ->
      on_accept t ~src ballot index kind commit_index
    | Msg.Accept_multi { ballot; from_index; kinds; commit_index } ->
      on_accept_multi t ~src ballot from_index kinds commit_index
    | Msg.Accepted { ballot; index } -> on_accepted t ~src ballot index
    | Msg.Accepted_multi { ballot; from_index; upto } ->
      on_accepted_multi t ~src ballot from_index upto
    | Msg.Heartbeat { ballot; commit_index } ->
      on_heartbeat t ~src ballot commit_index
    | Msg.Learn_req { from_index } -> on_learn_req t ~src from_index
    | Msg.Learn_rsp { entries; commit_index } ->
      on_learn_rsp t entries commit_index
    | Msg.Submit { value } -> submit t value
    | Msg.Submit_multi { values } -> submit_many t values

let halt t =
  if not t.halted then begin
    t.halted <- true;
    t.election_timer <- cancel_timer t t.election_timer;
    t.hb_timer <- cancel_timer t t.hb_timer;
    t.resend_timer <- cancel_timer t t.resend_timer;
    t.batch_timer <- cancel_timer t t.batch_timer
  end

let kick_election t = if not t.halted then start_election t

let create ~engine ?(params = Params.default) ?trace ~config:cfg ~me ~send
    ?broadcast ?obs ~on_decide () =
  if not (Config.is_member cfg me) then
    invalid_arg "Replica.create: not a member of the configuration";
  let metric =
    match obs with
    | Some reg ->
      let sc =
        Rsmr_obs.Registry.scope ~node:me ~epoch:cfg.Config.instance_id reg
      in
      fun name -> Rsmr_obs.Registry.scope_counter sc name
    | None ->
      let local = Counters.create () in
      fun name -> Counters.handle local name
  in
  let t =
    {
      engine;
      params;
      trace;
      cfg;
      me;
      send;
      bcast = broadcast;
      others = Config.others cfg me;
      on_decide;
      rng = Rng.split (Engine.rng engine);
      log = Log.create ();
      promised = Ballot.zero;
      role = R_follower;
      hint = None;
      deliver_index = 0;
      known_committed = 0;
      known_committed_ballot = Ballot.zero;
      pending = Queue.create ();
      batch_buf = [];
      batch_len = 0;
      batch_timer = None;
      election_timer = None;
      hb_timer = None;
      resend_timer = None;
      learn_inflight = false;
      halted = false;
      c_elections = metric "elections";
      c_takeovers = metric "takeovers";
      c_proposals = metric "proposals";
      c_commits = metric "commits";
    }
  in
  reset_election_timer t;
  t

(* Canonical fingerprint (the Block_intf contract): every field that can
   influence future behaviour, serialized through the codec with
   unordered collections (promise sets, ack tables, merged entries)
   emitted in sorted key order.  Timer due-times, the RNG, the trace
   sink and metric counters are deliberately excluded — they are not
   protocol state — but timer *presence* is included, since "a flush is
   scheduled" and "no flush is scheduled" behave differently. *)
let fingerprint t =
  let module W = Rsmr_app.Codec.Writer in
  let w = W.create ~size_hint:256 () in
  let node w n = W.varint w (n : Node_id.t) in
  let node_set w s = W.list w node (Node_id.Set.elements s) in
  let entry w (e : Log.entry) =
    Ballot.encode w e.Log.ballot;
    Log.encode_kind w e.Log.kind
  in
  let pending_timer slot =
    match slot with Some tm -> Engine.is_pending tm | None -> false
  in
  Ballot.encode w t.promised;
  (match t.role with
   | R_follower -> W.u8 w 0
   | R_candidate c ->
     W.u8 w 1;
     Ballot.encode w c.c_ballot;
     node_set w c.promised_from;
     W.list w
       (fun w (slot, e) ->
         W.varint w slot;
         entry w e)
       (List.rev
          (Stable.fold_sorted ~compare:Int.compare
             (fun k v acc -> (k, v) :: acc)
             c.merged []));
     W.varint w c.from_index
   | R_leader l ->
     W.u8 w 2;
     Ballot.encode w l.l_ballot;
     W.varint w l.next_index;
     W.list w
       (fun w (slot, s) ->
         W.varint w slot;
         node_set w s)
       (List.rev
          (Stable.fold_sorted ~compare:Int.compare
             (fun k v acc -> (k, !v) :: acc)
             l.acks [])));
  W.option w node t.hint;
  W.varint w t.deliver_index;
  W.varint w t.known_committed;
  Ballot.encode w t.known_committed_ballot;
  W.list w W.string
    (List.rev (Queue.fold (fun acc v -> v :: acc) [] t.pending));
  W.list w W.string t.batch_buf;
  W.bool w (pending_timer t.batch_timer);
  W.bool w (pending_timer t.election_timer);
  W.bool w (pending_timer t.hb_timer);
  W.bool w (pending_timer t.resend_timer);
  W.bool w t.learn_inflight;
  W.bool w t.halted;
  W.varint w (Log.length t.log);
  List.iter
    (fun (slot, e) ->
      W.varint w slot;
      entry w e;
      W.bool w (Log.is_committed t.log slot))
    (Log.entries_from t.log 0);
  W.contents w
[@@rsmr.codec.oneway]
