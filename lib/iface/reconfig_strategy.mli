(** Reconfiguration as a first-class strategy.

    The composition layer executes an epoch change as a sequence of
    stages — {b wedge} (the old instance decides its last command),
    {b prepare} (the new epoch's instance is bootstrapped), {b state
    transfer} (chunked snapshot pull), {b directory publish}, {b handoff}
    (the new instance activates and takes client traffic) and {b residual
    re-submission} (commands decided after the wedge index are replayed
    into the new epoch).  A strategy value picks a policy for each stage;
    {!Rsmr_core.Service.Make} is a driver over the chosen value, and the
    baselines present through the same interface so harnesses select
    strategies uniformly by name.

    Strategy values are descriptive records, not behaviour: all stage
    logic lives with the driver that interprets them, which is what keeps
    the default {!composed} value replay-identical to the historical
    hard-wired sequence. *)

type driver =
  [ `Composition  (** one static SMR instance per epoch (the paper) *)
  | `Native  (** the block reconfigures inside its own log (raft) *) ]

type prepare =
  [ `At_wedge
    (** bootstrap the next epoch only once the [Reconfig] commits *)
  | `Early
    (** Matchmaker-style: bootstrap the next epoch's instance when the
        [Reconfig] is {e submitted}, so its election overlaps the old
        epoch still committing and only state transfer remains inside
        the wedged window *) ]

type handoff =
  [ `Speculative  (** new epoch starts its replica before the snapshot *)
  | `Blocking  (** new epoch waits for the full snapshot (stop-the-world) *)
  ]

type residuals =
  [ `Resubmit  (** leader replays post-wedge commands into the new epoch *)
  | `Client_retry  (** dropped; clients retry against the new epoch *) ]

type t = {
  name : string;  (** unique key used by CLIs, metrics and reports *)
  aliases : string list;  (** accepted alternative names ([find]) *)
  driver : driver;
  prepare : prepare;
  handoff : handoff;
  residuals : residuals;
}

val composed : t
(** The paper's default: prepare at wedge, speculative handoff, leader
    residual re-submission.  Alias ["core"]. *)

val matchmaker : t
(** Matchmaker-style early prepare; otherwise identical to {!composed}. *)

val stopworld : t
(** Blocking handoff, no residual replay.  Alias ["stop-the-world"]. *)

val raft : t
(** Native joint-consensus baseline; stage fields are nominal. *)

val all : t list
(** Every registered strategy, [composed] first. *)

val find : string -> t option
(** Lookup by [name] or alias. *)

val equal : t -> t -> bool
(** Keyed on [name]. *)

val pp : Format.formatter -> t -> unit
