type driver = [ `Composition | `Native ]
type prepare = [ `At_wedge | `Early ]
type handoff = [ `Speculative | `Blocking ]
type residuals = [ `Resubmit | `Client_retry ]

type t = {
  name : string;
  aliases : string list;
  driver : driver;
  prepare : prepare;
  handoff : handoff;
  residuals : residuals;
}

let composed =
  {
    name = "composed";
    aliases = [ "core" ];
    driver = `Composition;
    prepare = `At_wedge;
    handoff = `Speculative;
    residuals = `Resubmit;
  }

let matchmaker =
  {
    name = "matchmaker";
    aliases = [];
    driver = `Composition;
    prepare = `Early;
    handoff = `Speculative;
    residuals = `Resubmit;
  }

let stopworld =
  {
    name = "stopworld";
    aliases = [ "stop-the-world" ];
    driver = `Composition;
    prepare = `At_wedge;
    handoff = `Blocking;
    residuals = `Client_retry;
  }

let raft =
  {
    name = "raft";
    aliases = [];
    driver = `Native;
    (* Stage fields are nominal for a native driver: joint consensus
       reconfigures inside one log, so there is no wedge to stage. *)
    prepare = `At_wedge;
    handoff = `Blocking;
    residuals = `Client_retry;
  }

let all = [ composed; matchmaker; stopworld; raft ]

let find name =
  List.find_opt
    (fun s -> String.equal s.name name || List.mem name s.aliases)
    all

let equal a b = String.equal a.name b.name

let pp ppf s =
  let pv ppf = function
    | `Composition -> Format.pp_print_string ppf "composition"
    | `Native -> Format.pp_print_string ppf "native"
  in
  let pprep ppf = function
    | `At_wedge -> Format.pp_print_string ppf "at-wedge"
    | `Early -> Format.pp_print_string ppf "early"
  in
  let ph ppf = function
    | `Speculative -> Format.pp_print_string ppf "speculative"
    | `Blocking -> Format.pp_print_string ppf "blocking"
  in
  let pr ppf = function
    | `Resubmit -> Format.pp_print_string ppf "resubmit"
    | `Client_retry -> Format.pp_print_string ppf "client-retry"
  in
  Format.fprintf ppf
    "%s{driver=%a;prepare=%a;handoff=%a;residuals=%a}" s.name pv s.driver
    pprep s.prepare ph s.handoff pr s.residuals
