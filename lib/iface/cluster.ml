type reply_handler =
  client:Rsmr_net.Node_id.t -> seq:int -> rsp:string -> unit

type t = {
  name : string;
  engine : Rsmr_sim.Engine.t;
  add_client : Rsmr_net.Node_id.t -> unit;
  submit : client:Rsmr_net.Node_id.t -> seq:int -> cmd:string -> unit;
  set_on_reply : reply_handler -> unit;
  reconfigure : Rsmr_net.Node_id.t list -> unit;
  members : unit -> Rsmr_net.Node_id.t list;
  crash : Rsmr_net.Node_id.t -> unit;
  recover : Rsmr_net.Node_id.t -> unit;
  control : Overlay.control;
  obs : Rsmr_obs.Registry.t;
}
