(** The one fault-injection / control surface every overlay presents.

    Single-service clusters ({!Cluster.t}) and the sharded platform
    historically exposed differently-named crash/partition/reconfigure
    entry points; harnesses now drive both through a [control] value.
    What a fault {e means} is the overlay's business — e.g. [Partition]
    splits replica links on a single service but cuts only the
    directory overlay on the platform (machine-level crashes already
    cover the shards). *)

type fault =
  | Crash of Rsmr_net.Node_id.t  (** node stops sending/receiving *)
  | Recover of Rsmr_net.Node_id.t
  | Partition of Rsmr_net.Node_id.t list list  (** connectivity groups *)
  | Heal  (** undo [Partition] *)

type control = {
  fault : fault -> unit;
  reconfigure : Rsmr_net.Node_id.t list -> unit;
      (** submit a membership change (platform: directory membership) *)
}

(** Convenience wrappers over [control]. *)

val crash : control -> Rsmr_net.Node_id.t -> unit
val recover : control -> Rsmr_net.Node_id.t -> unit
val partition : control -> Rsmr_net.Node_id.t list list -> unit
val heal : control -> unit
val reconfigure : control -> Rsmr_net.Node_id.t list -> unit
