(** The uniform face every replication protocol in this repository exposes
    to workloads, benchmarks and correctness checkers.

    Protocols differ wildly inside (composed static Paxos instances, native
    Raft, stop-the-world restarts) but all of them can: accept a command
    from a client session, reply asynchronously, change membership, and
    suffer injected faults.  Expressing that as a record of closures keeps
    the experiment drivers protocol-agnostic without functor plumbing. *)

type reply_handler =
  client:Rsmr_net.Node_id.t -> seq:int -> rsp:string -> unit

type t = {
  name : string;
  engine : Rsmr_sim.Engine.t;
  add_client : Rsmr_net.Node_id.t -> unit;
      (** Register a client node (attaches its endpoint to the protocol's
          network).  Must be called before [submit] for that client. *)
  submit : client:Rsmr_net.Node_id.t -> seq:int -> cmd:string -> unit;
      (** Fire-and-forget: the protocol applies the encoded command
          at-most-once per (client, seq) and replies via [set_on_reply].
          Retries of the same (client, seq) are safe. *)
  set_on_reply : reply_handler -> unit;
  reconfigure : Rsmr_net.Node_id.t list -> unit;
      (** Ask the service to move to the given member set.
          @deprecated Use [control.reconfigure] ({!Overlay.control}) — the
          field remains so existing constructors keep compiling, but new
          call sites should go through [control]. *)
  members : unit -> Rsmr_net.Node_id.t list;
      (** Current (believed) member set. *)
  crash : Rsmr_net.Node_id.t -> unit;
      (** @deprecated Use [control.fault (Crash n)] ({!Overlay.control}). *)
  recover : Rsmr_net.Node_id.t -> unit;
      (** @deprecated Use [control.fault (Recover n)]
          ({!Overlay.control}). *)
  control : Overlay.control;
      (** The unified fault-injection / control surface ({!Overlay}),
          shared verbatim with {!Rsmr_shard}'s platform.  [Partition] and
          [Heal] here split and repair replica↔replica connectivity on
          the service's own network. *)
  obs : Rsmr_obs.Registry.t;
      (** The run's Observatory registry.  Network accounting lives in the
          attached ["net"] section and protocol-level accounting in
          ["svc"] ([Rsmr_obs.Registry.counters obs "net"] / ["svc"]);
          labeled per-node/per-epoch cells and the lifecycle trace bus
          hang off the same handle. *)
}
