type fault =
  | Crash of Rsmr_net.Node_id.t
  | Recover of Rsmr_net.Node_id.t
  | Partition of Rsmr_net.Node_id.t list list
  | Heal

type control = {
  fault : fault -> unit;
  reconfigure : Rsmr_net.Node_id.t list -> unit;
}

let crash c n = c.fault (Crash n)
let recover c n = c.fault (Recover n)
let partition c groups = c.fault (Partition groups)
let heal c = c.fault Heal
let reconfigure c members = c.reconfigure members
