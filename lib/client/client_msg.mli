(** Client-to-service protocol, shared by every replication protocol in the
    repository so client endpoints are reusable. *)

type payload =
  | Cmd of string
      (** An application-encoded command. *)
  | Change_membership of Rsmr_net.Node_id.t list
      (** An administrative request to move the service to this member
          set. *)

type t =
  | Request of { seq : int; low_water : int; payload : payload }
      (** The client identity is the network source.  [low_water] is the
          session-GC watermark: every sequence number below it has been
          acknowledged to this client, so replicas may forget those cached
          responses. *)
  | Request_batch of { low_water : int; reqs : (int * payload) list }
      (** A coalesced window of requests from one client, in sequence
          order.  Semantically identical to sending each [(seq, payload)]
          as its own [Request] with the same [low_water]: every inner
          request keeps its own sequence number and receives its own
          {!Reply} (or {!Redirect}). *)
  | Reply of { seq : int; rsp : string }
  | Redirect of {
      seq : int;
      leader : Rsmr_net.Node_id.t option;
      members : Rsmr_net.Node_id.t list;
      epoch : int;
    }
      (** "Not me — try there": carries the responder's freshest view of
          the configuration. *)

val size : t -> int
(** Wire size in bytes: a single counting pass over the same body as
    {!encode}, allocating nothing. *)

val write : Rsmr_app.Codec.Writer.t -> t -> unit
(** The wire-format body shared by {!encode} and {!size}; also lets a
    parent codec embed this message via [Writer.nested]. *)

val read : Rsmr_app.Codec.Reader.t -> t
(** Decode in place from a reader (e.g. a [Reader.view]). *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
val pp : Format.formatter -> t -> unit
