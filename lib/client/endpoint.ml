module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Trace = Rsmr_sim.Trace
module Counters = Rsmr_sim.Counters
module Stable = Rsmr_sim.Stable
module Node_id = Rsmr_net.Node_id

type outstanding = {
  payload : Client_msg.payload;
  mutable attempts : int;
  mutable redirects : int;
  mutable timer : Engine.timer option;
}

type t = {
  engine : Engine.t;
  me : Node_id.t;
  send : dst:Node_id.t -> Client_msg.t -> unit;
  mutable members : Node_id.t list;
  mutable leader : Node_id.t option;
  mutable epoch : int;
  lookup : ((Rsmr_app.Dir_app.entry option -> unit) -> unit) option;
  req_timeout : float;
  batch_window : float;
  batch_max : int;
  on_reply : seq:int -> rsp:string -> unit;
  pending : (int, outstanding) Hashtbl.t;
  mutable batch_buf : int list; (* buffered seqs, newest first *)
  mutable batch_timer : Engine.timer option;
  mutable rr : int;
  mutable max_seq : int;
  mutable last_target : Node_id.t option;
  rng : Rng.t;
  counters : Counters.t;
  mutable lookup_inflight : bool;
  bus : Trace.t option;
}

(* Client-side command lifecycle events ("submit", "retry", "replied") for
   span reconstruction.  Guarded on [Trace.active] so an unobserved run
   does not build the attrs list. *)
let lifecycle t ev ~seq =
  match t.bus with
  | Some bus when Trace.active bus ->
    Trace.emit bus ~time:(Engine.now t.engine) ~node:t.me ~topic:`Lifecycle
      ~attrs:
        [
          ("ev", ev);
          ("client", string_of_int t.me);
          ("seq", string_of_int seq);
        ]
      ev
  | Some _ | None -> ()

let create ~engine ~me ~send ~members ?lookup ?(req_timeout = 0.5)
    ?(batch_window = 0.0) ?(batch_max = 16) ?bus ~on_reply () =
  if members = [] then invalid_arg "Endpoint.create: empty member list";
  {
    engine;
    me;
    send;
    members;
    leader = None;
    epoch = 0;
    lookup;
    req_timeout;
    batch_window;
    batch_max;
    on_reply;
    pending = Hashtbl.create 8;
    batch_buf = [];
    batch_timer = None;
    rr = 0;
    max_seq = 0;
    last_target = None;
    rng = Rng.split (Engine.rng engine);
    counters = Counters.create ();
    lookup_inflight = false;
    bus;
  }

let target t =
  let chosen =
    match t.leader with
    | Some l -> l
    | None -> (
      let n = List.length t.members in
      if n = 0 then t.me (* request will time out and refresh the members *)
      else begin
        t.rr <- (t.rr + 1) mod n;
        match List.nth_opt t.members t.rr with Some m -> m | None -> t.me
      end)
  in
  t.last_target <- Some chosen;
  chosen

let cancel_timer t o =
  match o.timer with
  | Some timer ->
    Engine.cancel t.engine timer;
    o.timer <- None
  | None -> ()

let rec attempt t seq =
  match Hashtbl.find_opt t.pending seq with
  | None -> ()
  | Some o ->
    cancel_timer t o;
    o.attempts <- o.attempts + 1;
    Counters.incr t.counters "sent";
    let low_water =
      Stable.fold_sorted ~compare:Int.compare
        (fun s _ acc -> min s acc)
        t.pending (t.max_seq + 1)
    in
    t.send ~dst:(target t)
      (Client_msg.Request { seq; low_water; payload = o.payload });
    o.timer <-
      Some
        (Engine.schedule t.engine ~delay:t.req_timeout (fun () ->
             on_timeout t seq))

and on_timeout t seq =
  match Hashtbl.find_opt t.pending seq with
  | None -> ()
  | Some o ->
    Counters.incr t.counters "retries";
    lifecycle t "retry" ~seq;
    (* Distrust the cached leader and rotate; periodically consult the
       directory for a fresh configuration. *)
    t.leader <- None;
    if o.attempts mod 3 = 0 then refresh_members t;
    attempt t seq

and refresh_members t =
  match t.lookup with
  | Some lookup when not t.lookup_inflight ->
    t.lookup_inflight <- true;
    Counters.incr t.counters "lookups";
    lookup (fun entry ->
        t.lookup_inflight <- false;
        match entry with
        | Some e when e.Rsmr_app.Dir_app.members <> [] ->
          t.members <- e.Rsmr_app.Dir_app.members
        | Some _ | None -> ())
  | Some _ | None -> ()

let low_water t =
  Stable.fold_sorted ~compare:Int.compare
    (fun s _ acc -> min s acc)
    t.pending (t.max_seq + 1)

(* Ship the coalescing buffer as one framed multi-request message (or a
   plain [Request] when only one command accumulated).  Every inner
   request keeps its own retry timer; retries and redirects then flow
   through the ordinary single-request path, so batching only changes the
   first transmission. *)
let flush_batch t =
  (match t.batch_timer with
   | Some timer ->
     Engine.cancel t.engine timer;
     t.batch_timer <- None
   | None -> ());
  let seqs = List.rev t.batch_buf in
  t.batch_buf <- [];
  let live =
    List.filter_map
      (fun seq ->
        match Hashtbl.find_opt t.pending seq with
        | Some o -> Some (seq, o)
        | None -> None)
      seqs
  in
  match live with
  | [] -> ()
  | [ (seq, _) ] -> attempt t seq
  | _ ->
    Counters.incr t.counters "sent";
    let reqs = List.map (fun (seq, o) -> (seq, o.payload)) live in
    t.send ~dst:(target t)
      (Client_msg.Request_batch { low_water = low_water t; reqs });
    List.iter
      (fun (seq, o) ->
        o.attempts <- o.attempts + 1;
        cancel_timer t o;
        o.timer <-
          Some
            (Engine.schedule t.engine ~delay:t.req_timeout (fun () ->
                 on_timeout t seq)))
      live

let submit t ~seq ~payload =
  if seq > t.max_seq then t.max_seq <- seq;
  if not (Hashtbl.mem t.pending seq) then begin
    Hashtbl.replace t.pending seq
      { payload; attempts = 0; redirects = 0; timer = None };
    lifecycle t "submit" ~seq
  end;
  if t.batch_window <= 0.0 then attempt t seq
  else begin
    if not (List.mem seq t.batch_buf) then begin
      t.batch_buf <- seq :: t.batch_buf;
      if List.length t.batch_buf >= t.batch_max then flush_batch t
      else if t.batch_timer = None then
        t.batch_timer <-
          Some
            (Engine.schedule t.engine ~delay:t.batch_window (fun () ->
                 t.batch_timer <- None;
                 flush_batch t))
    end
  end

let handle t msg =
  match (msg : Client_msg.t) with
  | Client_msg.Reply { seq; rsp } -> (
    match Hashtbl.find_opt t.pending seq with
    | Some o ->
      cancel_timer t o;
      Hashtbl.remove t.pending seq;
      Counters.incr t.counters "replies";
      lifecycle t "replied" ~seq;
      t.on_reply ~seq ~rsp
    | None -> (* duplicate reply from a retry *) ())
  | Client_msg.Redirect { seq; leader; members; epoch } ->
    Counters.incr t.counters "redirects";
    if epoch >= t.epoch then begin
      t.epoch <- epoch;
      if members <> [] then t.members <- members;
      (* A node redirecting to itself (a deposed leader with a stale hint)
         would loop forever; rotate instead. *)
      t.leader <- (if leader = t.last_target then None else leader)
    end;
    (match Hashtbl.find_opt t.pending seq with
     | Some o ->
       o.redirects <- o.redirects + 1;
       (* Hints can cycle (two deposed nodes pointing at each other), and a
          redirect re-arms the request timer, so the timeout path alone
          never breaks the loop: periodically distrust the hint, rotate,
          and ask the directory. *)
       if o.redirects mod 6 = 0 then begin
         t.leader <- None;
         refresh_members t
       end;
       (* Back off so a redirect loop (e.g. during an election, when nobody
          is leader yet) does not turn into a message storm.  The retry
          takes over the request's single timer slot: a duplicated
          redirect re-arms it instead of scheduling a second attempt,
          otherwise each duplication round multiplies the request ×
          redirect ping-pong and the exchange goes supercritical. *)
       let jitter = 0.010 +. Rng.float t.rng 0.015 in
       cancel_timer t o;
       o.timer <-
         Some (Engine.schedule t.engine ~delay:jitter (fun () -> attempt t seq))
     | None -> ())
  | Client_msg.Request _ | Client_msg.Request_batch _ ->
    (* not addressed to clients *) ()

let me t = t.me
let outstanding t = Hashtbl.length t.pending
let counters t = t.counters
let believed_members t = t.members
let believed_leader t = t.leader

(* Canonical encoding of the endpoint's retry state for model-checker
   fingerprints: believed configuration, every outstanding request
   (sorted by sequence number) with its payload and retry counters, and
   the round-robin / watermark cursors.  Timer due-times are excluded;
   timer presence is included. *)
let fingerprint t =
  let module W = Rsmr_app.Codec.Writer in
  let w = W.create ~size_hint:128 () in
  let node w n = W.varint w (n : Node_id.t) in
  W.list w node t.members;
  W.option w node t.leader;
  W.varint w t.epoch;
  W.list w
    (fun w (seq, o) ->
      W.varint w seq;
      W.nested w Client_msg.write
        (Client_msg.Request { seq; low_water = 0; payload = o.payload });
      W.varint w o.attempts;
      W.varint w o.redirects;
      W.bool w
        (match o.timer with
         | Some tm -> Engine.is_pending tm
         | None -> false))
    (List.rev
       (Stable.fold_sorted ~compare:Int.compare
          (fun k v acc -> (k, v) :: acc)
          t.pending []));
  W.varint w t.rr;
  W.varint w t.max_seq;
  W.option w node t.last_target;
  W.bool w t.lookup_inflight;
  W.list w W.varint (List.rev t.batch_buf);
  W.bool w
    (match t.batch_timer with
     | Some tm -> Engine.is_pending tm
     | None -> false);
  W.contents w
[@@rsmr.codec.oneway]
