module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type payload = Cmd of string | Change_membership of Rsmr_net.Node_id.t list

type t =
  | Request of { seq : int; low_water : int; payload : payload }
  | Request_batch of { low_water : int; reqs : (int * payload) list }
  | Reply of { seq : int; rsp : string }
  | Redirect of {
      seq : int;
      leader : Rsmr_net.Node_id.t option;
      members : Rsmr_net.Node_id.t list;
      epoch : int;
    }

(* Payload sub-codec shared by [Request] and [Request_batch]. *)
let write_payload w payload =
  match payload with
  | Cmd cmd ->
    W.u8 w 0;
    W.string w cmd
  | Change_membership members ->
    W.u8 w 1;
    W.list w W.zigzag members

let read_payload r =
  match R.u8 r with
  | 0 -> Cmd (R.string r)
  | 1 -> Change_membership (R.list r R.zigzag)
  | _ -> raise Rsmr_app.Codec.Truncated

let write_req w (seq, payload) =
  W.varint w seq;
  write_payload w payload

let read_req r =
  let seq = R.varint r in
  let payload = read_payload r in
  (seq, payload)

(* Single wire-format body shared by [encode] (buffer sink) and [size]
   (counting sink). *)
let write w t =
  match t with
  | Request { seq; low_water; payload } ->
    W.u8 w 0;
    W.varint w seq;
    W.varint w low_water;
    write_payload w payload
  | Reply { seq; rsp } ->
    W.u8 w 1;
    W.varint w seq;
    W.string w rsp
  | Redirect { seq; leader; members; epoch } ->
    W.u8 w 2;
    W.varint w seq;
    W.option w W.zigzag leader;
    W.list w W.zigzag members;
    W.varint w epoch
  | Request_batch { low_water; reqs } ->
    W.u8 w 3;
    W.varint w low_water;
    W.list w write_req reqs

let read r =
  match R.u8 r with
  | 0 ->
    let seq = R.varint r in
    let low_water = R.varint r in
    let payload = read_payload r in
    Request { seq; low_water; payload }
  | 1 ->
    let seq = R.varint r in
    Reply { seq; rsp = R.string r }
  | 2 ->
    let seq = R.varint r in
    let leader = R.option r R.zigzag in
    let members = R.list r R.zigzag in
    Redirect { seq; leader; members; epoch = R.varint r }
  | 3 ->
    let low_water = R.varint r in
    Request_batch { low_water; reqs = R.list r read_req }
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c

let pp ppf = function
  | Request { seq; payload = Cmd cmd; _ } ->
    Format.fprintf ppf "request(seq=%d,%d bytes)" seq (String.length cmd)
  | Request_batch { reqs; _ } ->
    Format.fprintf ppf "request_batch(%d reqs,seq=[%a])" (List.length reqs)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf (seq, _) -> Format.pp_print_int ppf seq))
      reqs
  | Request { seq; payload = Change_membership members; _ } ->
    Format.fprintf ppf "request(seq=%d,members={%a})" seq
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Rsmr_net.Node_id.pp)
      members
  | Reply { seq; rsp } ->
    Format.fprintf ppf "reply(seq=%d,%d bytes)" seq (String.length rsp)
  | Redirect { seq; leader; members; epoch } ->
    Format.fprintf ppf "redirect(seq=%d,leader=%a,%d members,epoch=%d)" seq
      (Format.pp_print_option Rsmr_net.Node_id.pp)
      leader (List.length members) epoch
