(** Generic client endpoint: request/retry/redirect state machine.

    One endpoint represents one client session talking to a replicated
    service.  It tracks the believed configuration and leader, follows
    {!Client_msg.Redirect} hints, retries on timeout (rotating through
    members), and optionally refreshes its member list from a directory.
    At-most-once semantics are the server's job (session dedup); the
    endpoint just guarantees it keeps trying until a reply arrives.

    Transport-agnostic: wire it into a protocol's network with [send] and
    feed incoming messages to {!handle}. *)

type t

val create :
  engine:Rsmr_sim.Engine.t ->
  me:Rsmr_net.Node_id.t ->
  send:(dst:Rsmr_net.Node_id.t -> Client_msg.t -> unit) ->
  members:Rsmr_net.Node_id.t list ->
  ?lookup:((Rsmr_app.Dir_app.entry option -> unit) -> unit) ->
  ?req_timeout:float ->
  ?batch_window:float ->
  ?batch_max:int ->
  ?bus:Rsmr_sim.Trace.t ->
  on_reply:(seq:int -> rsp:string -> unit) ->
  unit ->
  t
(** [lookup k] asynchronously fetches the service's directory entry (from
    the single-service oracle or the replicated {!Rsmr_app.Dir_app}
    directory — both speak the same entry shape) and calls [k]; consulted
    after repeated timeouts.  The endpoint adopts the entry's member list
    when it is non-empty and ignores [None] / empty answers.
    [req_timeout] defaults to 0.5 s.

    [batch_window] > 0 turns on client-side coalescing: submissions
    accumulate for that long (or until [batch_max] of them, default 16)
    and ship as one {!Client_msg.Request_batch}.  Retries and redirects
    always travel as single requests, so at-most-once and ordering
    semantics are unchanged.  Default [0.]: every submission is sent
    immediately.

    [bus], when provided and listened to, receives per-command
    [`Lifecycle] events ("submit", "retry", "replied") with structured
    [client]/[seq] attrs — the client-side ends of command spans. *)

val submit : t -> seq:int -> payload:Client_msg.payload -> unit
(** Start (or restart) a request.  [seq] values must be unique per
    endpoint and increasing. *)

val handle : t -> Client_msg.t -> unit
[@@rsmr.deterministic] [@@rsmr.total]
(** Feed a message addressed to this client. *)

val me : t -> Rsmr_net.Node_id.t
(** The node id this endpoint sends from. *)

val outstanding : t -> int
(** Requests not yet answered. *)

val counters : t -> Rsmr_sim.Counters.t
(** Keys: "sent", "retries", "redirects", "replies", "lookups". *)

val believed_members : t -> Rsmr_net.Node_id.t list
val believed_leader : t -> Rsmr_net.Node_id.t option

val fingerprint : t -> string
[@@rsmr.deterministic]
(** Canonical encoding of the endpoint's complete retry state (believed
    configuration, outstanding requests in sorted order, cursors) for
    model-checker visited-state dedup.  Deterministic; excludes timer
    due-times but includes timer presence. *)
