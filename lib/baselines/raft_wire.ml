module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t =
  | Rpc of Raft_msg.t
  | Client of Rsmr_client.Client_msg.t
  | Dir_update of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }
  | Dir_lookup
  | Dir_info of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }

(* Single wire-format body shared by [encode] (buffer sink) and [size]
   (counting sink).  Sub-messages are written in place via
   [Writer.nested] rather than encoded to an intermediate string. *)
let write w t =
  match t with
  | Rpc m ->
    W.u8 w 0;
    W.nested w Raft_msg.write m
  | Client m ->
    W.u8 w 1;
    W.nested w Rsmr_client.Client_msg.write m
  | Dir_update { epoch; members; leader } ->
    W.u8 w 2;
    W.varint w epoch;
    W.list w W.zigzag members;
    W.option w W.zigzag leader
  | Dir_lookup -> W.u8 w 3
  | Dir_info { epoch; members; leader } ->
    W.u8 w 4;
    W.varint w epoch;
    W.list w W.zigzag members;
    W.option w W.zigzag leader

let read r =
  match R.u8 r with
  | 0 -> Rpc (Raft_msg.read (R.view r))
  | 1 -> Client (Rsmr_client.Client_msg.read (R.view r))
  | 2 ->
    let epoch = R.varint r in
    let members = R.list r R.zigzag in
    Dir_update { epoch; members; leader = R.option r R.zigzag }
  | 3 -> Dir_lookup
  | 4 ->
    let epoch = R.varint r in
    let members = R.list r R.zigzag in
    Dir_info { epoch; members; leader = R.option r R.zigzag }
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c

let tag = function
  | Rpc m -> "raft." ^ Raft_msg.tag m
  | Client _ -> "client"
  | Dir_update _ -> "dir_update"
  | Dir_lookup -> "dir_lookup"
  | Dir_info _ -> "dir_info"
