(** Raft RPCs (paper + dissertation §4 membership changes). *)

type t =
  | Request_vote of { term : int; last_index : int; last_term : int }
  | Vote of { term : int; granted : bool }
  | Append of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : (int * Raft_log.entry) list;
      commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }
  | Install_snapshot of {
      term : int;
      last_index : int;
      last_term : int;
      members : Rsmr_net.Node_id.t list;
      offset : int;
      data : string;  (** one chunk of application snapshot + session table *)
      is_last : bool;
    }
      (** Chunked as in the Raft paper (offset/done fields): a multi-MB
          snapshot sent as one message would monopolize the leader's uplink
          long enough to starve heartbeats and depose it. *)
  | Snapshot_chunk_ok of { term : int; offset : int }
      (** Follower ack for a non-final chunk; [offset] is the next byte
          expected. *)
  | Snapshot_reply of { term : int; last_index : int }

val size : t -> int
(** Wire size in bytes: a single counting pass over the same body as
    {!encode}, allocating nothing. *)

val write : Rsmr_app.Codec.Writer.t -> t -> unit
(** The wire-format body shared by {!encode} and {!size}; also lets a
    parent codec embed this message via [Writer.nested]. *)

val read : Rsmr_app.Codec.Reader.t -> t
(** Decode in place from a reader (e.g. a [Reader.view]). *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
val pp : Format.formatter -> t -> unit
val tag : t -> string
