(** The naive reconfiguration baseline: halt, transfer, restart.

    Same composition of static SMR instances as {!Rsmr_core.Service}, but
    with both of the paper's overlap optimizations disabled: the next
    configuration's instance is not allowed to boot (let alone order
    commands) until the snapshot is fully installed, and residual commands
    are never re-submitted (clients must retry).  The client-visible
    unavailability window is therefore election + full state transfer,
    which is what the speculative handoff experiment (T2/F5) quantifies. *)

module Make (_ : Rsmr_app.State_machine.S) : sig
  type t

  val create :
    engine:Rsmr_sim.Engine.t ->
    ?latency:Rsmr_net.Latency.t ->
    ?drop:float ->
    ?bandwidth:float ->
    ?smr_params:Rsmr_smr.Params.t ->
    ?chunk_size:int ->
    ?universe:Rsmr_net.Node_id.t list ->
    ?obs:Rsmr_obs.Registry.t ->
    members:Rsmr_net.Node_id.t list ->
    unit ->
    t

  val cluster : t -> Rsmr_iface.Cluster.t
  val current_epoch : t -> int
  val counters : t -> Rsmr_sim.Counters.t
  val obs : t -> Rsmr_obs.Registry.t
end
