module Make (Sm : Rsmr_app.State_machine.S) = struct
  module Core = Rsmr_core.Service.Make (Sm)

  type t = Core.t

  let options chunk_size =
    {
      Rsmr_core.Options.default with
      Rsmr_core.Options.strategy = Rsmr_iface.Reconfig_strategy.stopworld;
      chunk_size;
    }

  let create ~engine ?latency ?drop ?bandwidth ?smr_params
      ?(chunk_size = Rsmr_core.Options.default.Rsmr_core.Options.chunk_size)
      ?universe ?obs ~members () =
    (* claim the proto label before Core.create defaults it to "core" *)
    let obs =
      match obs with Some o -> o | None -> Rsmr_obs.Registry.create ()
    in
    if List.assoc_opt "proto" (Rsmr_obs.Registry.meta obs) = None then
      Rsmr_obs.Registry.set_meta obs "proto" "stopworld";
    Core.create ~engine ?latency ?drop ?bandwidth ?smr_params
      ~options:(options chunk_size) ?universe ~obs ~members ()

  let cluster t =
    let c = Core.cluster t in
    { c with Rsmr_iface.Cluster.name = "stopworld" }

  let current_epoch = Core.current_epoch
  let counters = Core.counters
  let obs = Core.obs
end
