(** Raft log with snapshot-based compaction.

    Indices are 1-based, as in the Raft paper.  The prefix [1..base_index]
    has been folded into a snapshot; entries above it live in memory.
    Configuration entries are part of the log (Raft's native approach to
    membership change — the design point the paper under reproduction
    argues against needing). *)

type payload =
  | Noop
  | App of {
      client : Rsmr_net.Node_id.t;
      seq : int;
      low_water : int;
      cmd : string;
    }
  | Config of Rsmr_net.Node_id.t list

type entry = { term : int; payload : payload }

type t

val create : unit -> t
(** Empty log: base 0, term 0. *)

val base_index : t -> int
val base_term : t -> int
val last_index : t -> int
val last_term : t -> int

val term_at : t -> int -> int option
(** [None] below the snapshot base or above the last index (the base itself
    reports the snapshot term). *)

val get : t -> int -> entry option
(** Entries strictly above the base. *)

val append : t -> entry -> int
(** Append at the tail; returns the new last index. *)

val truncate_from : t -> int -> unit
(** Drop entries at index >= the argument (conflict resolution). *)

val compact_to : t -> int -> unit
(** Fold [..index] into the (externally stored) snapshot: entries up to and
    including [index] are discarded and [base] moves there. *)

val reset_to : t -> base_index:int -> base_term:int -> unit
(** Discard everything; used after installing a snapshot. *)

val entries_from : t -> int -> max:int -> (int * entry) list
(** Up to [max] entries starting at the given index, ascending. *)

val latest_config : t -> Rsmr_net.Node_id.t list option
(** Member list of the newest [Config] entry still in the log (committed or
    not), if any. *)

val encode_payload : Rsmr_app.Codec.Writer.t -> payload -> unit
val decode_payload : Rsmr_app.Codec.Reader.t -> payload
[@@rsmr.deterministic] [@@rsmr.total]
