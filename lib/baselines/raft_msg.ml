module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t =
  | Request_vote of { term : int; last_index : int; last_term : int }
  | Vote of { term : int; granted : bool }
  | Append of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : (int * Raft_log.entry) list;
      commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }
  | Install_snapshot of {
      term : int;
      last_index : int;
      last_term : int;
      members : Rsmr_net.Node_id.t list;
      offset : int;
      data : string;
      is_last : bool;
    }
  | Snapshot_chunk_ok of { term : int; offset : int }
  | Snapshot_reply of { term : int; last_index : int }

let encode_entry w (i, (e : Raft_log.entry)) =
  W.varint w i;
  W.varint w e.Raft_log.term;
  Raft_log.encode_payload w e.Raft_log.payload

let decode_entry r =
  let i = R.varint r in
  let term = R.varint r in
  (i, { Raft_log.term; payload = Raft_log.decode_payload r })

(* Single wire-format body shared by [encode] (buffer sink) and [size]
   (counting sink). *)
let write w t =
  match t with
  | Request_vote { term; last_index; last_term } ->
    W.u8 w 0;
    W.varint w term;
    W.varint w last_index;
    W.varint w last_term
  | Vote { term; granted } ->
    W.u8 w 1;
    W.varint w term;
    W.bool w granted
  | Append { term; prev_index; prev_term; entries; commit } ->
    W.u8 w 2;
    W.varint w term;
    W.varint w prev_index;
    W.varint w prev_term;
    W.list w encode_entry entries;
    W.varint w commit
  | Append_reply { term; success; match_index } ->
    W.u8 w 3;
    W.varint w term;
    W.bool w success;
    W.varint w match_index
  | Install_snapshot { term; last_index; last_term; members; offset; data; is_last } ->
    W.u8 w 4;
    W.varint w term;
    W.varint w last_index;
    W.varint w last_term;
    W.list w W.zigzag members;
    W.varint w offset;
    W.string w data;
    W.bool w is_last
  | Snapshot_reply { term; last_index } ->
    W.u8 w 5;
    W.varint w term;
    W.varint w last_index
  | Snapshot_chunk_ok { term; offset } ->
    W.u8 w 6;
    W.varint w term;
    W.varint w offset

let read r =
  match R.u8 r with
  | 0 ->
    let term = R.varint r in
    let last_index = R.varint r in
    Request_vote { term; last_index; last_term = R.varint r }
  | 1 ->
    let term = R.varint r in
    Vote { term; granted = R.bool r }
  | 2 ->
    let term = R.varint r in
    let prev_index = R.varint r in
    let prev_term = R.varint r in
    let entries = R.list r decode_entry in
    Append { term; prev_index; prev_term; entries; commit = R.varint r }
  | 3 ->
    let term = R.varint r in
    let success = R.bool r in
    Append_reply { term; success; match_index = R.varint r }
  | 4 ->
    let term = R.varint r in
    let last_index = R.varint r in
    let last_term = R.varint r in
    let members = R.list r R.zigzag in
    let offset = R.varint r in
    let data = R.string r in
    Install_snapshot
      { term; last_index; last_term; members; offset; data; is_last = R.bool r }
  | 5 ->
    let term = R.varint r in
    Snapshot_reply { term; last_index = R.varint r }
  | 6 ->
    let term = R.varint r in
    Snapshot_chunk_ok { term; offset = R.varint r }
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c

let tag = function
  | Request_vote _ -> "request_vote"
  | Vote _ -> "vote"
  | Append _ -> "append"
  | Append_reply _ -> "append_reply"
  | Install_snapshot _ -> "install_snapshot"
  | Snapshot_chunk_ok _ -> "snapshot_chunk_ok"
  | Snapshot_reply _ -> "snapshot_reply"

let pp ppf t =
  match t with
  | Request_vote { term; last_index; last_term } ->
    Format.fprintf ppf "request_vote(t=%d,li=%d,lt=%d)" term last_index last_term
  | Vote { term; granted } -> Format.fprintf ppf "vote(t=%d,%b)" term granted
  | Append { term; prev_index; entries; commit; _ } ->
    Format.fprintf ppf "append(t=%d,prev=%d,%d entries,ci=%d)" term prev_index
      (List.length entries) commit
  | Append_reply { term; success; match_index } ->
    Format.fprintf ppf "append_reply(t=%d,%b,mi=%d)" term success match_index
  | Install_snapshot { term; last_index; offset; data; is_last; _ } ->
    Format.fprintf ppf "install_snapshot(t=%d,li=%d,off=%d,%d bytes%s)" term
      last_index offset (String.length data)
      (if is_last then ",last" else "")
  | Snapshot_chunk_ok { term; offset } ->
    Format.fprintf ppf "snapshot_chunk_ok(t=%d,off=%d)" term offset
  | Snapshot_reply { term; last_index } ->
    Format.fprintf ppf "snapshot_reply(t=%d,li=%d)" term last_index
