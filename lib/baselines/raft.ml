module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Counters = Rsmr_sim.Counters
module Trace = Rsmr_sim.Trace
module Obs = Rsmr_obs.Registry
module Stable = Rsmr_sim.Stable
module Network = Rsmr_net.Network
module Node_id = Rsmr_net.Node_id
module Params = Rsmr_smr.Params
module Session = Rsmr_core.Session
module Snapshot = Rsmr_core.Snapshot
module Directory = Rsmr_core.Directory
module Client_msg = Rsmr_client.Client_msg
module Endpoint = Rsmr_client.Endpoint

module Make (Sm : Rsmr_app.State_machine.S) = struct
  (* An in-progress chunked snapshot transfer to one follower.  The blob is
     pinned at start so compaction during the transfer cannot tear it. *)
  type snap_xfer = {
    sx_data : string;
    sx_last_index : int;
    sx_last_term : int;
    sx_members : Node_id.t list;
    mutable sx_offset : int;
  }

  type leader_state = {
    next : (Node_id.t, int) Hashtbl.t;
    matched : (Node_id.t, int) Hashtbl.t;
    snap_sending : (Node_id.t, snap_xfer) Hashtbl.t;
    snap_inflight : (Node_id.t, float) Hashtbl.t;
        (* send time of the unacknowledged chunk per follower, for retry *)
  }

  let snapshot_chunk = 64 * 1024

  type role = Follower | Candidate of Node_id.Set.t | Leader of leader_state

  type node = {
    me : Node_id.t;
    mutable term : int;
    mutable voted_for : Node_id.t option;
    log : Raft_log.t;
    mutable commit : int;
    mutable applied : int;
    mutable config : Node_id.t list; (* effective: latest appended Config *)
    mutable config_index : int; (* log index of latest applied Config *)
    mutable snap_members : Node_id.t list;
    mutable snapshot_data : string;
    mutable role : role;
    mutable leader_hint : Node_id.t option;
    mutable app : Sm.t;
    mutable sessions : Session.t;
    mutable pending_target :
      (Node_id.t list * Node_id.t * int) option; (* target, admin, seq *)
    snap_in : Buffer.t; (* partially received chunked snapshot *)
    mutable election_timer : Engine.timer option;
    mutable hb_timer : Engine.timer option;
    mutable batch_timer : Engine.timer option;
    mutable batch_n : int; (* entries appended since the last broadcast *)
    mutable halted : bool;
    rng : Rng.t;
    n_applied : int ref;  (* {node}-scoped registry cell, resolved once *)
  }

  type client_rec = {
    endpoint : Endpoint.t;
    mutable dir_k : (Rsmr_app.Dir_app.entry option -> unit) option;
  }

  type t = {
    engine : Engine.t;
    net : Raft_wire.t Network.t;
    params : Params.t;
    snapshot_threshold : int;
    nodes : (Node_id.t, node) Hashtbl.t;
    dir : Directory.t;
    dir_id : Node_id.t;
    admin_id : Node_id.t;
    mutable admin_seq : int;
    clients : (Node_id.t, client_rec) Hashtbl.t;
    mutable on_reply : Rsmr_iface.Cluster.reply_handler;
    counters : Counters.t;
    obs : Obs.t;
    bus : Trace.t;  (* = Obs.bus obs, cached *)
  }

  let engine t = t.engine
  let net t = t.net
  let directory_id t = t.dir_id
  let counters t = t.counters
  let obs t = t.obs

  (* Per-command lifecycle events for span reconstruction; guarded on
     [Trace.active] so an unobserved run does not build the attrs list. *)
  let lifecycle t ~node ev attrs =
    Trace.emit t.bus ~time:(Engine.now t.engine) ~node ~topic:`Lifecycle
      ~attrs:(("ev", ev) :: attrs) ev

  let node_opt t id = Hashtbl.find_opt t.nodes id
  let term_of t id = Option.map (fun n -> n.term) (node_opt t id)
  let config_of t id = Option.map (fun n -> n.config) (node_opt t id)
  let app_state t id = Option.map (fun n -> n.app) (node_opt t id)
  let commit_index_of t id = Option.map (fun n -> n.commit) (node_opt t id)
  let log_base_of t id = Option.map (fun n -> Raft_log.base_index n.log) (node_opt t id)

  let leader t =
    Stable.fold_sorted ~compare:Node_id.compare
      (fun id n acc ->
        match n.role with
        | Leader _ when (not n.halted) && not (Network.is_crashed t.net id) ->
          Some id
        | _ -> acc)
      t.nodes None

  let is_member node = List.exists (Node_id.equal node.me) node.config
  let quorum config = (List.length config / 2) + 1
  let peers node = List.filter (fun m -> not (Node_id.equal m node.me)) node.config

  let send t node ~dst msg =
    Network.send t.net ~src:node.me ~dst (Raft_wire.Rpc msg)

  let reply_client t node ~client ~seq ~rsp =
    Counters.incr t.counters "replies";
    Network.send t.net ~src:node.me ~dst:client
      (Raft_wire.Client (Client_msg.Reply { seq; rsp }))

  let dir_update t node =
    Network.send t.net ~src:node.me ~dst:t.dir_id
      (Raft_wire.Dir_update
         {
           epoch = node.config_index;
           members = node.config;
           leader =
             (match node.role with Leader _ -> Some node.me | _ -> None);
         })

  let refresh_config node =
    node.config <-
      (match Raft_log.latest_config node.log with
       | Some members -> members
       | None -> node.snap_members)

  let cancel t slot =
    match slot with
    | Some timer ->
      Engine.cancel t.engine timer;
      None
    | None -> None

  let sorted members = List.sort_uniq Node_id.compare members

  (* --- timers / elections --- *)

  let rec reset_election_timer t node =
    node.election_timer <- cancel t node.election_timer;
    if not node.halted then begin
      let delay =
        Rng.uniform_in node.rng t.params.Params.election_timeout_min
          t.params.Params.election_timeout_max
      in
      node.election_timer <-
        Some
          (Engine.schedule t.engine ~delay (fun () -> on_election_timeout t node))
    end

  and on_election_timeout t node =
    if (not node.halted) && is_member node then begin
      match node.role with
      | Leader _ -> ()
      | Follower | Candidate _ -> start_election t node
    end
    else if not node.halted then reset_election_timer t node

  and start_election t node =
    Counters.incr t.counters "elections";
    node.term <- node.term + 1;
    node.voted_for <- Some node.me;
    node.role <- Candidate (Node_id.Set.singleton node.me);
    node.leader_hint <- None;
    let msg =
      Raft_msg.Request_vote
        {
          term = node.term;
          last_index = Raft_log.last_index node.log;
          last_term = Raft_log.last_term node.log;
        }
    in
    (* One wire value for the whole fan-out: the network sizes and tags a
       broadcast payload once instead of once per peer. *)
    Network.broadcast t.net ~src:node.me ~dsts:(peers node)
      (Raft_wire.Rpc msg);
    reset_election_timer t node;
    maybe_win t node

  and maybe_win t node =
    match node.role with
    | Candidate votes ->
      let supporters =
        List.filter (fun m -> Node_id.Set.mem m votes) node.config
      in
      if List.length supporters >= quorum node.config then become_leader t node
    | Follower | Leader _ -> ()

  and become_leader t node =
    Counters.incr t.counters "takeovers";
    let ls =
      {
        next = Hashtbl.create 8;
        matched = Hashtbl.create 8;
        snap_sending = Hashtbl.create 8;
        snap_inflight = Hashtbl.create 8;
      }
    in
    let last = Raft_log.last_index node.log in
    List.iter
      (fun m ->
        Hashtbl.replace ls.next m (last + 1);
        Hashtbl.replace ls.matched m 0)
      (peers node);
    node.role <- Leader ls;
    node.leader_hint <- Some node.me;
    (* Standard: commit a no-op to pin down the commit index in this term. *)
    ignore (Raft_log.append node.log { Raft_log.term = node.term; payload = Raft_log.Noop });
    broadcast_appends t node;
    start_heartbeat t node;
    dir_update t node;
    try_next_step t node

  and start_heartbeat t node =
    node.hb_timer <- cancel t node.hb_timer;
    let rec tick () =
      match node.role with
      | Leader _ when not node.halted ->
        broadcast_appends t node;
        node.hb_timer <-
          Some
            (Engine.schedule t.engine ~delay:t.params.Params.heartbeat_interval
               tick)
      | _ -> ()
    in
    node.hb_timer <-
      Some (Engine.schedule t.engine ~delay:t.params.Params.heartbeat_interval tick)

  and step_down t node ~term =
    if term > node.term then begin
      node.term <- term;
      node.voted_for <- None
    end;
    (match node.role with
     | Leader _ | Candidate _ ->
       node.role <- Follower;
       node.hb_timer <- cancel t node.hb_timer;
       node.batch_timer <- cancel t node.batch_timer;
       node.batch_n <- 0
     | Follower -> ());
    reset_election_timer t node

  (* --- replication --- *)

  and broadcast_appends t node =
    match node.role with
    | Leader _ -> List.iter (fun f -> send_append_to t node f) (peers node)
    | Follower | Candidate _ -> ()

  (* Leader-side batching, matching the Paxos/VR blocks: client appends
     accumulate for batch_delay (or batch_max entries) and go out as one
     multi-entry Append per follower instead of one broadcast each. *)
  and schedule_appends t node =
    if t.params.Params.batch_delay <= 0.0 then begin
      broadcast_appends t node;
      advance_commit t node
    end
    else begin
      node.batch_n <- node.batch_n + 1;
      if node.batch_n >= t.params.Params.batch_max then flush_appends t node
      else if node.batch_timer = None then
        node.batch_timer <-
          Some
            (Engine.schedule t.engine ~delay:t.params.Params.batch_delay
               (fun () ->
                 node.batch_timer <- None;
                 flush_appends t node))
    end

  and flush_appends t node =
    node.batch_timer <- cancel t node.batch_timer;
    node.batch_n <- 0;
    match node.role with
    | Leader _ when not node.halted ->
      broadcast_appends t node;
      advance_commit t node
    | _ -> ()

  and send_append_to t node f =
    match node.role with
    | Leader ls ->
      let next =
        Option.value (Hashtbl.find_opt ls.next f)
          ~default:(Raft_log.last_index node.log + 1)
      in
      if next <= Raft_log.base_index node.log then begin
        let now = Engine.now t.engine in
        let in_flight =
          match Hashtbl.find_opt ls.snap_inflight f with
          | Some sent -> now -. sent < 1.0
          | None -> false
        in
        if not in_flight then begin
          (match Hashtbl.find_opt ls.snap_sending f with
           | Some _ -> () (* resume: retransmit the current chunk below *)
           | None ->
             Counters.incr t.counters "snapshots_sent";
             Hashtbl.replace ls.snap_sending f
               {
                 sx_data = node.snapshot_data;
                 sx_last_index = Raft_log.base_index node.log;
                 sx_last_term = Raft_log.base_term node.log;
                 sx_members = node.snap_members;
                 sx_offset = 0;
               });
          send_snapshot_chunk t node ls f
        end
      end
      else begin
        let prev_index = next - 1 in
        let prev_term =
          Option.value (Raft_log.term_at node.log prev_index) ~default:0
        in
        let entries =
          Raft_log.entries_from node.log next
            ~max:t.params.Params.max_outstanding
        in
        (* Optimistic pipelining: advance next as soon as entries are sent,
           so each log entry crosses the wire once in the common case
           (re-sending the whole unacked window on every heartbeat melts
           the leader's uplink under load).  A lost reply heals via the
           prev-mismatch probe, which resets next from the failure hint. *)
        (match List.rev entries with
         | (last_sent, _) :: _ -> Hashtbl.replace ls.next f (last_sent + 1)
         | [] -> ());
        send t node ~dst:f
          (Raft_msg.Append
             { term = node.term; prev_index; prev_term; entries; commit = node.commit })
      end
    | Follower | Candidate _ -> ()

  and send_snapshot_chunk t node ls f =
    match Hashtbl.find_opt ls.snap_sending f with
    | None -> ()
    | Some xfer ->
      let total = String.length xfer.sx_data in
      let len = min snapshot_chunk (total - xfer.sx_offset) in
      let data = String.sub xfer.sx_data xfer.sx_offset len in
      let is_last = xfer.sx_offset + len >= total in
      Hashtbl.replace ls.snap_inflight f (Engine.now t.engine);
      send t node ~dst:f
        (Raft_msg.Install_snapshot
           {
             term = node.term;
             last_index = xfer.sx_last_index;
             last_term = xfer.sx_last_term;
             members = xfer.sx_members;
             offset = xfer.sx_offset;
             data;
             is_last;
           })

  and advance_commit t node =
    match node.role with
    | Leader ls ->
      let last = Raft_log.last_index node.log in
      let changed = ref false in
      let n = ref (node.commit + 1) in
      let continue = ref true in
      while !continue && !n <= last do
        let count =
          List.fold_left
            (fun acc m ->
              if Node_id.equal m node.me then acc + 1
              else
                match Hashtbl.find_opt ls.matched m with
                | Some mi when mi >= !n -> acc + 1
                | _ -> acc)
            0 node.config
        in
        if count >= quorum node.config && Raft_log.term_at node.log !n = Some node.term
        then begin
          node.commit <- !n;
          changed := true;
          incr n
        end
        else if count >= quorum node.config then incr n (* older-term entry: only commit via later entry *)
        else continue := false
      done;
      if !changed then apply_loop t node
    | Follower | Candidate _ -> ()

  and apply_loop t node =
    let stuck = ref false in
    while (not !stuck) && node.applied < node.commit && not node.halted do
      match Raft_log.get node.log (node.applied + 1) with
      | None ->
        (* A gap below the commit index cannot happen (commit never moves
           past the log tail, compaction only discards applied entries);
           stop applying rather than crash if it ever does. *)
        stuck := true
      | Some { Raft_log.payload; _ } ->
        node.applied <- node.applied + 1;
        apply_payload t node node.applied payload
    done;
    maybe_compact t node

  and apply_payload t node index payload =
    match payload with
    | Raft_log.Noop -> ()
    | Raft_log.App { client; seq; low_water; cmd } -> (
      match Session.check node.sessions ~client ~seq with
      | `New ->
        let app', resp = Sm.apply node.app (Sm.decode_command cmd) in
        let rsp = Sm.encode_response resp in
        node.app <- app';
        node.sessions <-
          Session.trim
            (Session.record node.sessions ~client ~seq ~rsp)
            ~client ~below:low_water;
        Counters.incr t.counters "applied";
        incr node.n_applied;
        (match node.role with
         | Leader _ ->
           if Trace.active t.bus then
             lifecycle t ~node:node.me "applied"
               [
                 ("client", string_of_int client);
                 ("seq", string_of_int seq);
                 ("epoch", string_of_int node.config_index);
                 ("idx", string_of_int index);
               ];
           reply_client t node ~client ~seq ~rsp
         | Follower | Candidate _ -> ())
      | `Dup rsp -> (
        match node.role with
        | Leader _ -> reply_client t node ~client ~seq ~rsp
        | Follower | Candidate _ -> ())
      | `Stale -> ())
    | Raft_log.Config members ->
      node.config_index <- index;
      (match node.role with
       | Leader ls ->
         dir_update t node;
         (* Push this (now committed) entry to servers the change removed:
            they are out of [peers] and would otherwise never learn of
            their removal and keep campaigning. *)
         Stable.iter_sorted ~compare:Node_id.compare
           (fun f _ ->
             if not (List.exists (Node_id.equal f) node.config) then
               send_append_to t node f)
           ls.next;
         (match node.pending_target with
          | Some (target, admin, seq) when sorted members = sorted target ->
            node.pending_target <- None;
            reply_client t node ~client:admin ~seq ~rsp:"ok"
          | Some _ -> try_next_step t node
          | None -> ())
       | Follower | Candidate _ -> ());
      (* A server retires when the committed configuration excludes it AND
         no later (possibly uncommitted) configuration re-adds it.  The
         effective-config check also keeps a replaying newcomer from
         halting on historical entries that predate its own addition. *)
      if
        (not (List.exists (Node_id.equal node.me) members))
        && not (is_member node)
      then halt_node t node

  and maybe_compact t node =
    if node.applied - Raft_log.base_index node.log > t.snapshot_threshold then begin
      (* Configuration as of the compaction point. *)
      let rec config_at i =
        if i <= Raft_log.base_index node.log then node.snap_members
        else
          match Raft_log.get node.log i with
          | Some { Raft_log.payload = Raft_log.Config members; _ } -> members
          | Some _ -> config_at (i - 1)
          | None -> node.snap_members
      in
      node.snap_members <- config_at node.applied;
      node.snapshot_data <-
        Snapshot.encode
          { Snapshot.app = Sm.snapshot node.app;
            sessions = Session.encode node.sessions };
      Raft_log.compact_to node.log node.applied;
      Counters.incr t.counters "compactions"
    end

  and halt_node t node =
    if not node.halted then begin
      node.halted <- true;
      node.election_timer <- cancel t node.election_timer;
      node.hb_timer <- cancel t node.hb_timer;
      node.batch_timer <- cancel t node.batch_timer;
      node.batch_n <- 0;
      node.role <- Follower
    end

  (* --- single-server membership orchestration --- *)

  and has_uncommitted_config node =
    let rec scan i =
      if i <= node.commit then false
      else
        match Raft_log.get node.log i with
        | Some { Raft_log.payload = Raft_log.Config _; _ } -> true
        | Some _ | None -> scan (i - 1)
    in
    scan (Raft_log.last_index node.log)

  and try_next_step t node =
    match (node.role, node.pending_target) with
    | Leader _, Some (target, admin, seq) ->
      if sorted node.config = sorted target then begin
        node.pending_target <- None;
        reply_client t node ~client:admin ~seq ~rsp:"ok"
      end
      else if not (has_uncommitted_config node) then begin
        let cur = sorted node.config and tgt = sorted target in
        let adds = List.filter (fun m -> not (List.mem m cur)) tgt in
        (* Remove the leader itself last, so the change sequence costs at
           most one leader handoff. *)
        let removes =
          let r = List.filter (fun m -> not (List.mem m tgt)) cur in
          List.filter (fun m -> not (Node_id.equal m node.me)) r
          @ List.filter (fun m -> Node_id.equal m node.me) r
        in
        let next_members =
          match (adds, removes) with
          | a :: _, _ -> sorted (a :: cur)
          | [], r :: _ -> List.filter (fun m -> not (Node_id.equal m r)) cur
          | [], [] -> cur
        in
        if next_members <> cur then begin
          Counters.incr t.counters "config_steps";
          ignore
            (Raft_log.append node.log
               { Raft_log.term = node.term; payload = Raft_log.Config next_members });
          refresh_config node;
          broadcast_appends t node;
          advance_commit t node
        end
      end
    | _ -> ()

  (* --- RPC handlers --- *)

  let log_up_to_date node ~last_index ~last_term =
    last_term > Raft_log.last_term node.log
    || (last_term = Raft_log.last_term node.log
        && last_index >= Raft_log.last_index node.log)

  let on_request_vote t node ~src ~term ~last_index ~last_term =
    (* Disruption guard: ignore candidates outside our configuration. *)
    if node.config = [] || List.exists (Node_id.equal src) node.config then begin
      if term > node.term then step_down t node ~term;
      let granted =
        term = node.term
        && (match node.voted_for with None -> true | Some v -> Node_id.equal v src)
        && log_up_to_date node ~last_index ~last_term
      in
      if granted then begin
        node.voted_for <- Some src;
        reset_election_timer t node
      end;
      send t node ~dst:src (Raft_msg.Vote { term = node.term; granted })
    end

  let on_vote t node ~src ~term ~granted =
    if term > node.term then step_down t node ~term
    else
      match node.role with
      | Candidate votes when term = node.term && granted ->
        node.role <- Candidate (Node_id.Set.add src votes);
        maybe_win t node
      | _ -> ()

  let on_append t node ~src ~term ~prev_index ~prev_term ~entries ~commit =
    if term < node.term then
      send t node ~dst:src
        (Raft_msg.Append_reply { term = node.term; success = false; match_index = 0 })
    else begin
      if term > node.term then step_down t node ~term
      else begin
        (match node.role with
         | Candidate _ -> node.role <- Follower
         | Leader _ when not (Node_id.equal src node.me) ->
           (* Two leaders in one term is impossible; defensive. *)
           node.role <- Follower
         | _ -> ());
        reset_election_timer t node
      end;
      node.leader_hint <- Some src;
      match Raft_log.term_at node.log prev_index with
      | Some pt when pt = prev_term ->
        List.iter
          (fun (i, (e : Raft_log.entry)) ->
            match Raft_log.term_at node.log i with
            | Some existing when existing = e.Raft_log.term -> ()
            | Some _ ->
              Raft_log.truncate_from node.log i;
              ignore (Raft_log.append node.log e)
            | None ->
              if i = Raft_log.last_index node.log + 1 then
                ignore (Raft_log.append node.log e))
          entries;
        refresh_config node;
        let match_index =
          min (prev_index + List.length entries) (Raft_log.last_index node.log)
        in
        let new_commit = min commit (Raft_log.last_index node.log) in
        if new_commit > node.commit then begin
          node.commit <- new_commit;
          apply_loop t node
        end;
        if not node.halted then
          send t node ~dst:src
            (Raft_msg.Append_reply { term = node.term; success = true; match_index })
      | Some _ | None ->
        send t node ~dst:src
          (Raft_msg.Append_reply
             { term = node.term; success = false; match_index = node.commit })
    end

  let on_append_reply t node ~src ~term ~success ~match_index =
    if term > node.term then step_down t node ~term
    else
      match node.role with
      | Leader ls when term = node.term ->
        if success then begin
          let old = Option.value (Hashtbl.find_opt ls.matched src) ~default:0 in
          if match_index > old then Hashtbl.replace ls.matched src match_index;
          (* Never rewind the optimistic send cursor on an ack: entries
             between match and next are in flight, not lost. *)
          let cur =
            Option.value (Hashtbl.find_opt ls.next src) ~default:1
          in
          Hashtbl.replace ls.next src (max cur (match_index + 1));
          advance_commit t node;
          (* Keep a lagging follower streaming instead of one batch per
             heartbeat — but only when there is genuinely unsent log (the
             optimistic [next] is the send cursor; using [match] here would
             ping-pong empty appends at RTT speed). *)
          let next_cursor =
            Option.value (Hashtbl.find_opt ls.next src)
              ~default:(Raft_log.last_index node.log + 1)
          in
          if next_cursor <= Raft_log.last_index node.log then
            send_append_to t node src
        end
        else begin
          let old_next =
            Option.value (Hashtbl.find_opt ls.next src)
              ~default:(Raft_log.last_index node.log + 1)
          in
          let new_next = max 1 (match_index + 1) in
          if new_next < old_next then begin
            Hashtbl.replace ls.next src new_next;
            send_append_to t node src
          end
        end
      | _ -> ()

  let on_install_snapshot t node ~src ~term ~last_index ~last_term ~members
      ~offset ~data ~is_last =
    if term >= node.term then begin
      if term > node.term then step_down t node ~term;
      node.leader_hint <- Some src;
      reset_election_timer t node;
      let have = Buffer.length node.snap_in in
      if offset = 0 && have > 0 then Buffer.clear node.snap_in;
      let have = Buffer.length node.snap_in in
      if offset = have then Buffer.add_string node.snap_in data
      else if offset > have then
        (* A chunk was lost: re-ack what we have so the sender rewinds. *)
        ();
      if is_last && Buffer.length node.snap_in = offset + String.length data
      then begin
        let blob = Buffer.contents node.snap_in in
        Buffer.clear node.snap_in;
        if last_index > node.applied then begin
          let snapshot = Snapshot.decode blob in
          node.app <- Sm.restore snapshot.Snapshot.app;
          node.sessions <- Session.decode snapshot.Snapshot.sessions;
          Raft_log.reset_to node.log ~base_index:last_index
            ~base_term:last_term;
          node.snapshot_data <- blob;
          node.snap_members <- members;
          node.config <- members;
          node.config_index <- last_index;
          node.commit <- last_index;
          node.applied <- last_index;
          Counters.incr t.counters "snapshots_installed"
        end;
        send t node ~dst:src
          (Raft_msg.Snapshot_reply
             { term = node.term; last_index = node.applied })
      end
      else
        send t node ~dst:src
          (Raft_msg.Snapshot_chunk_ok
             { term = node.term; offset = Buffer.length node.snap_in })
    end

  let on_snapshot_chunk_ok t node ~src ~term ~offset =
    if term > node.term then step_down t node ~term
    else
      match node.role with
      | Leader ls when term = node.term -> (
        Hashtbl.remove ls.snap_inflight src;
        match Hashtbl.find_opt ls.snap_sending src with
        | Some xfer ->
          (* The ack carries the follower's buffer length: authoritative
             next offset (rewinds after a lost chunk). *)
          xfer.sx_offset <- min offset (String.length xfer.sx_data);
          send_snapshot_chunk t node ls src
        | None -> ())
      | _ -> ()

  let on_snapshot_reply t node ~src ~term ~last_index =
    if term > node.term then step_down t node ~term
    else
      match node.role with
      | Leader ls when term = node.term ->
        Hashtbl.remove ls.snap_inflight src;
        Hashtbl.remove ls.snap_sending src;
        let old = Option.value (Hashtbl.find_opt ls.matched src) ~default:0 in
        if last_index > old then Hashtbl.replace ls.matched src last_index;
        Hashtbl.replace ls.next src (last_index + 1);
        advance_commit t node;
        if last_index + 1 <= Raft_log.last_index node.log then
          send_append_to t node src (* stream the suffix the snapshot missed *)
      | _ -> ()

  (* --- client handling --- *)

  let handle_request t node ~src ~seq ~low_water ~payload =
    Counters.incr t.counters "requests";
    match node.role with
    | Leader _ when not node.halted -> (
      match (payload : Client_msg.payload) with
      | Client_msg.Cmd cmd -> (
        match Session.check node.sessions ~client:src ~seq with
        | `Dup rsp -> reply_client t node ~client:src ~seq ~rsp
        | `Stale -> ()
        | `New ->
          ignore
            (Raft_log.append node.log
               {
                 Raft_log.term = node.term;
                 payload = Raft_log.App { client = src; seq; low_water; cmd };
               });
          schedule_appends t node)
      | Client_msg.Change_membership target ->
        (match node.pending_target with
         | Some (cur_target, _, _) when sorted cur_target = sorted target -> ()
         | _ ->
           if sorted node.config = sorted target then
             reply_client t node ~client:src ~seq ~rsp:"ok"
           else node.pending_target <- Some (target, src, seq));
        try_next_step t node)
    | _ ->
      Counters.incr t.counters "redirects";
      Network.send t.net ~src:node.me ~dst:src
        (Raft_wire.Client
           (Client_msg.Redirect
              {
                seq;
                leader = node.leader_hint;
                members = node.config;
                epoch = node.config_index;
              }))

  (* A coalesced client window: per-request dedup/reply semantics are those
     of [handle_request], but all fresh commands append first and the
     leader broadcasts once for the whole window. *)
  let handle_request_batch t node ~src ~low_water ~reqs =
    match node.role with
    | Leader _ when not node.halted ->
      let appended = ref false in
      List.iter
        (fun (seq, payload) ->
          match (payload : Client_msg.payload) with
          | Client_msg.Cmd cmd ->
            Counters.incr t.counters "requests";
            (match Session.check node.sessions ~client:src ~seq with
             | `Dup rsp -> reply_client t node ~client:src ~seq ~rsp
             | `Stale -> ()
             | `New ->
               ignore
                 (Raft_log.append node.log
                    {
                      Raft_log.term = node.term;
                      payload =
                        Raft_log.App { client = src; seq; low_water; cmd };
                    });
               appended := true)
          | Client_msg.Change_membership _ ->
            handle_request t node ~src ~seq ~low_water ~payload)
        reqs;
      (* The window is already complete — no reason to sit out the batch
         timer; this also flushes any buffered singles along with it. *)
      if !appended then flush_appends t node
    | _ ->
      List.iter
        (fun (seq, _) ->
          Counters.incr t.counters "requests";
          Counters.incr t.counters "redirects";
          Network.send t.net ~src:node.me ~dst:src
            (Raft_wire.Client
               (Client_msg.Redirect
                  {
                    seq;
                    leader = node.leader_hint;
                    members = node.config;
                    epoch = node.config_index;
                  })))
        reqs

  let rec node_handler t node (env : Raft_wire.t Network.envelope) =
    let src = env.Network.src in
    if node.halted then begin
      (* A retired server keeps answering clients with its freshest view of
         the configuration — exactly what a decommissioned-but-reachable
         server does in practice. *)
      match env.Network.payload with
      | Raft_wire.Rpc
          ( Raft_msg.Append { term; _ }
          | Raft_msg.Install_snapshot { term; _ } )
        when term >= node.term ->
        (* Replication traffic from a current-term leader means a later
           configuration re-added this server: a removed node only halts,
           and the new leader only streams to its own members.  Rejoin as
           a follower and let the normal path bring the log and state
           machine back up to date. *)
        node.halted <- false;
        node.role <- Follower;
        reset_election_timer t node;
        node_handler t node env
      | Raft_wire.Client
          (Client_msg.Request _ | Client_msg.Request_batch _) ->
        let leader =
          match node.leader_hint with
          | Some l when Node_id.equal l node.me -> None (* stale self-hint *)
          | other -> other
        in
        let redirect seq =
          Counters.incr t.counters "redirects";
          Network.send t.net ~src:node.me ~dst:src
            (Raft_wire.Client
               (Client_msg.Redirect
                  { seq; leader; members = node.config; epoch = node.config_index }))
        in
        (match env.Network.payload with
         | Raft_wire.Client (Client_msg.Request { seq; _ }) -> redirect seq
         | Raft_wire.Client (Client_msg.Request_batch { reqs; _ }) ->
           List.iter (fun (seq, _) -> redirect seq) reqs
         | _ -> ())
      | _ -> ()
    end
    else
      match env.Network.payload with
      | Raft_wire.Rpc (Raft_msg.Request_vote { term; last_index; last_term }) ->
        on_request_vote t node ~src ~term ~last_index ~last_term
      | Raft_wire.Rpc (Raft_msg.Vote { term; granted }) ->
        on_vote t node ~src ~term ~granted
      | Raft_wire.Rpc (Raft_msg.Append { term; prev_index; prev_term; entries; commit })
        ->
        on_append t node ~src ~term ~prev_index ~prev_term ~entries ~commit
      | Raft_wire.Rpc (Raft_msg.Append_reply { term; success; match_index }) ->
        on_append_reply t node ~src ~term ~success ~match_index
      | Raft_wire.Rpc
          (Raft_msg.Install_snapshot
             { term; last_index; last_term; members; offset; data; is_last })
        ->
        on_install_snapshot t node ~src ~term ~last_index ~last_term ~members
          ~offset ~data ~is_last
      | Raft_wire.Rpc (Raft_msg.Snapshot_chunk_ok { term; offset }) ->
        on_snapshot_chunk_ok t node ~src ~term ~offset
      | Raft_wire.Rpc (Raft_msg.Snapshot_reply { term; last_index }) ->
        on_snapshot_reply t node ~src ~term ~last_index
      | Raft_wire.Client (Client_msg.Request { seq; low_water; payload }) ->
        handle_request t node ~src ~seq ~low_water ~payload
      | Raft_wire.Client (Client_msg.Request_batch { low_water; reqs }) ->
        handle_request_batch t node ~src ~low_water ~reqs
      | Raft_wire.Client (Client_msg.Reply _ | Client_msg.Redirect _) -> ()
      | Raft_wire.Dir_update _ | Raft_wire.Dir_lookup | Raft_wire.Dir_info _ ->
        ()
  [@@rsmr.deterministic] [@@rsmr.total]

  let dir_handler t (env : Raft_wire.t Network.envelope) =
    match env.Network.payload with
    | Raft_wire.Dir_update { epoch; members; leader } ->
      Directory.update t.dir ~epoch ~members ~leader
    | Raft_wire.Dir_lookup ->
      Network.send t.net ~src:t.dir_id ~dst:env.Network.src
        (Raft_wire.Dir_info
           {
             epoch = Directory.epoch t.dir;
             members = Directory.members t.dir;
             leader = Directory.leader t.dir;
           })
    | _ -> ()
  [@@rsmr.deterministic] [@@rsmr.total]

  let client_handler record (env : Raft_wire.t Network.envelope) =
    match env.Network.payload with
    | Raft_wire.Client msg -> Endpoint.handle record.endpoint msg
    | Raft_wire.Dir_info { epoch; members; leader } -> (
      match record.dir_k with
      | Some k ->
        record.dir_k <- None;
        if members = [] then k None
        else k (Some { Rsmr_app.Dir_app.epoch; members; leader })
      | None -> ())
    | _ -> ()
  [@@rsmr.deterministic] [@@rsmr.total]

  let add_client t cid =
    if not (Hashtbl.mem t.clients cid) then begin
      let record_ref = ref None in
      let endpoint =
        Endpoint.create ~engine:t.engine ~me:cid ~bus:t.bus
          ~send:(fun ~dst msg ->
            Network.send t.net ~src:cid ~dst (Raft_wire.Client msg))
          ~members:(Directory.members t.dir)
          ~batch_window:t.params.Params.batch_delay
          ~batch_max:t.params.Params.batch_max
          ~lookup:(fun k ->
            (match !record_ref with
             | Some record -> record.dir_k <- Some k
             | None -> ());
            Network.send t.net ~src:cid ~dst:t.dir_id Raft_wire.Dir_lookup)
          ~on_reply:(fun ~seq ~rsp -> t.on_reply ~client:cid ~seq ~rsp)
          ()
      in
      let record = { endpoint; dir_k = None } in
      record_ref := Some record;
      Hashtbl.replace t.clients cid record;
      Network.register t.net cid (client_handler record)
    end

  let reconfigure t members =
    t.admin_seq <- t.admin_seq + 1;
    match Hashtbl.find_opt t.clients t.admin_id with
    | Some record ->
      Endpoint.submit record.endpoint ~seq:t.admin_seq
        ~payload:(Client_msg.Change_membership members)
    | None -> (* admin client is created with the cluster *) ()

  let create ~engine ?latency ?drop ?bandwidth ?params
      ?(snapshot_threshold = 512) ?universe ?obs ~members () =
    if members = [] then invalid_arg "Raft.create: empty member set";
    let obs = match obs with Some o -> o | None -> Obs.create () in
    if List.assoc_opt "proto" (Obs.meta obs) = None then
      Obs.set_meta obs "proto" "raft";
    Obs.set_meta obs "strategy"
      Rsmr_iface.Reconfig_strategy.(raft.name);
    let params = Option.value params ~default:Params.default in
    let universe = Option.value universe ~default:members in
    let universe = List.sort_uniq Node_id.compare (universe @ members) in
    let top = List.fold_left max 0 universe in
    let dir_id = top + 1 in
    let admin_id = top + 2 in
    let net =
      Network.create engine ?latency ?drop ?bandwidth ~tagger:Raft_wire.tag
        ~sizer:Raft_wire.size ~obs ()
    in
    let t =
      {
        engine;
        net;
        params;
        snapshot_threshold;
        nodes = Hashtbl.create 16;
        dir = Directory.create ();
        dir_id;
        admin_id;
        admin_seq = 0;
        clients = Hashtbl.create 16;
        on_reply = (fun ~client:_ ~seq:_ ~rsp:_ -> ());
        (* the flat counter table IS the registry's "svc" section *)
        counters = Obs.counters obs "svc";
        obs;
        bus = Obs.bus obs;
      }
    in
    let initial_snapshot =
      Snapshot.encode
        { Snapshot.app = Sm.snapshot (Sm.init ());
          sessions = Session.encode Session.empty }
    in
    List.iter
      (fun id ->
        let initial_member = List.exists (Node_id.equal id) members in
        let node =
          {
            me = id;
            term = 0;
            voted_for = None;
            log = Raft_log.create ();
            commit = 0;
            applied = 0;
            config = (if initial_member then members else []);
            config_index = 0;
            snap_members = (if initial_member then members else []);
            snapshot_data = initial_snapshot;
            role = Follower;
            leader_hint = None;
            app = Sm.init ();
            sessions = Session.empty;
            pending_target = None;
            snap_in = Buffer.create 64;
            election_timer = None;
            hb_timer = None;
            batch_timer = None;
            batch_n = 0;
            halted = false;
            rng = Rng.split (Engine.rng engine);
            n_applied =
              Obs.scope_counter (Obs.scope ~node:id t.obs) "applied";
          }
        in
        Hashtbl.replace t.nodes id node;
        Network.register t.net id (fun env -> node_handler t node env);
        reset_election_timer t node)
      universe;
    Directory.update t.dir ~epoch:0 ~members ~leader:None;
    Network.register t.net dir_id (dir_handler t);
    add_client t admin_id;
    t

  let debug_dump t id =
    match Hashtbl.find_opt t.nodes id with
    | None -> "?"
    | Some n ->
      let role =
        match n.role with
        | Follower -> "F"
        | Candidate _ -> "C"
        | Leader ls ->
          "L{"
          ^ String.concat ","
              (List.rev
                 (Stable.fold_sorted ~compare:Node_id.compare
                    (fun m next acc ->
                      let mi =
                        Option.value (Hashtbl.find_opt ls.matched m) ~default:(-1)
                      in
                      Printf.sprintf "n%d:next=%d,match=%d" m next mi :: acc)
                    ls.next []))
          ^ "}"
      in
      Printf.sprintf
        "n%d %s term=%d last=%d commit=%d applied=%d base=%d halted=%b cfg=[%s] pending=%b"
        id role n.term (Raft_log.last_index n.log) n.commit n.applied
        (Raft_log.base_index n.log) n.halted
        (String.concat "," (List.map string_of_int n.config))
        (n.pending_target <> None)

  let cluster t =
    {
      Rsmr_iface.Cluster.name = "raft";
      engine = t.engine;
      add_client = (fun cid -> add_client t cid);
      submit =
        (fun ~client ~seq ~cmd ->
          match Hashtbl.find_opt t.clients client with
          | Some record ->
            Endpoint.submit record.endpoint ~seq ~payload:(Client_msg.Cmd cmd)
          | None -> invalid_arg "submit: unknown client (call add_client)");
      set_on_reply = (fun h -> t.on_reply <- h);
      reconfigure = (fun members -> reconfigure t members);
      members = (fun () -> Directory.members t.dir);
      crash = (fun node -> Network.crash t.net node);
      recover = (fun node -> Network.recover t.net node);
      control =
        {
          Rsmr_iface.Overlay.fault =
            (fun f ->
              match (f : Rsmr_iface.Overlay.fault) with
              | Rsmr_iface.Overlay.Crash n -> Network.crash t.net n
              | Rsmr_iface.Overlay.Recover n -> Network.recover t.net n
              | Rsmr_iface.Overlay.Partition groups ->
                Network.partition t.net groups
              | Rsmr_iface.Overlay.Heal -> Network.heal t.net);
          reconfigure = (fun members -> reconfigure t members);
        };
      obs = t.obs;
    }
end
