(** Natively reconfigurable Raft — the design point that dominates
    open-source SMR and the paper's implicit comparator.

    Full implementation: terms, randomized elections, log replication with
    conflict resolution, commit rules, snapshot-based log compaction with
    [InstallSnapshot] for lagging or freshly added servers, client sessions
    with exactly-once semantics, and single-server membership changes
    (Raft dissertation §4: one add/remove at a time, configuration entries
    effective when appended).  A [reconfigure] to an arbitrary target set
    is decomposed by the leader into a sequence of single-server steps,
    adds before removes.

    Timing parameters are shared with the static Multi-Paxos block
    ({!Rsmr_smr.Params}) so protocol comparisons are apples-to-apples. *)

module Make (Sm : Rsmr_app.State_machine.S) : sig
  type t

  val create :
    engine:Rsmr_sim.Engine.t ->
    ?latency:Rsmr_net.Latency.t ->
    ?drop:float ->
    ?bandwidth:float ->
    ?params:Rsmr_smr.Params.t ->
    ?snapshot_threshold:int ->
    ?universe:Rsmr_net.Node_id.t list ->
    ?obs:Rsmr_obs.Registry.t ->
    members:Rsmr_net.Node_id.t list ->
    unit ->
    t
  (** [snapshot_threshold] is the number of applied entries above the
      snapshot base that triggers compaction (default 512).  [obs] is the
      run's Observatory registry (fresh when omitted): network accounting
      lands in its ["net"] section, protocol accounting in ["svc"],
      per-node applied counts in [{node}]-scoped cells, and command
      lifecycle events on its trace bus. *)

  val cluster : t -> Rsmr_iface.Cluster.t

  (** {1 Introspection} *)

  val engine : t -> Rsmr_sim.Engine.t

  val net : t -> Raft_wire.t Rsmr_net.Network.t
  (** The underlying simulated network, for fault injection beyond what
      {!Rsmr_iface.Cluster.t} carries (partitions, link faults, duplicate
      storms) — the crucible runner drives it. *)

  val directory_id : t -> Rsmr_net.Node_id.t
  val counters : t -> Rsmr_sim.Counters.t
  val obs : t -> Rsmr_obs.Registry.t
  val leader : t -> Rsmr_net.Node_id.t option
  val term_of : t -> Rsmr_net.Node_id.t -> int option
  val config_of : t -> Rsmr_net.Node_id.t -> Rsmr_net.Node_id.t list option
  val app_state : t -> Rsmr_net.Node_id.t -> Sm.t option
  val commit_index_of : t -> Rsmr_net.Node_id.t -> int option
  val log_base_of : t -> Rsmr_net.Node_id.t -> int option

  val debug_dump : t -> Rsmr_net.Node_id.t -> string
  (** One-line internal state summary, for debugging and tests. *)
end
