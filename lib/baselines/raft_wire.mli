(** Network message union for the Raft baseline: RPCs, the shared client
    protocol, and the same directory messages the core service uses (so
    clients of both protocols recover from full fleet replacement the same
    way). *)

type t =
  | Rpc of Raft_msg.t
  | Client of Rsmr_client.Client_msg.t
  | Dir_update of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }
  | Dir_lookup
  | Dir_info of {
      epoch : int;
      members : Rsmr_net.Node_id.t list;
      leader : Rsmr_net.Node_id.t option;
    }

val size : t -> int
(** Wire size in bytes: a single counting pass over the same body as
    {!encode}, allocating nothing. *)

val write : Rsmr_app.Codec.Writer.t -> t -> unit
(** The wire-format body shared by {!encode} and {!size}. *)

val read : Rsmr_app.Codec.Reader.t -> t
(** Decode in place from a reader (e.g. a [Reader.view]). *)

val encode : t -> string
val decode : string -> t
[@@rsmr.deterministic] [@@rsmr.total]
val tag : t -> string
