(** Wing–Gong linearizability checker.

    Searches for a total order of the recorded operations that (a) respects
    real time — an operation may only be linearized before another if it
    was invoked before that other one completed — and (b) is legal for the
    sequential state machine.  Memoizes visited (pending-set, state) pairs,
    which makes realistic low-contention histories check in linear-ish
    time; a [max_states] budget guards against the exponential worst
    case. *)

module Make (_ : Rsmr_app.State_machine.S) : sig
  type result =
    | Linearizable
    | Not_linearizable
    | Inconclusive  (** search budget exhausted *)

  val check : ?max_states:int -> History.t -> result
  (** [max_states] defaults to 2_000_000 visited configurations. *)

  val pp_result : Format.formatter -> result -> unit
end
