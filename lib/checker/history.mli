(** Concurrent operation histories, recorded from live runs and fed to the
    linearizability checker. *)

type op = {
  client : Rsmr_net.Node_id.t;
  cmd : string;        (** encoded command *)
  rsp : string;        (** encoded response *)
  invoked : float;
  replied : float;
}

type t

val create : unit -> t
val add : t -> op -> unit
val ops : t -> op list
(** In invocation order. *)

val length : t -> int

(** {1 Extraction helpers}

    Used by the crucible harness to carve sub-histories out of a recorded
    run (per-client slices for shrinking, time-window slices for fault
    bisection) without re-recording. *)

val of_ops : op list -> t
(** A history holding exactly [ops] (in the order given). *)

val filter : t -> f:(op -> bool) -> t
(** The sub-history of operations satisfying [f], insertion order
    preserved. *)

val truncate_after : t -> time:float -> t
(** Operations fully contained in [[0, time]] — both invoked and replied
    by then. *)

val concurrency : t -> int
(** Maximum number of operations whose [invoked, replied] intervals
    overlap — a sanity probe that a "concurrent" test actually was. *)
