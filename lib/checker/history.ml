type op = {
  client : Rsmr_net.Node_id.t;
  cmd : string;
  rsp : string;
  invoked : float;
  replied : float;
}

type t = { mutable rev_ops : op list; mutable n : int }

let create () = { rev_ops = []; n = 0 }

let add t op =
  t.rev_ops <- op :: t.rev_ops;
  t.n <- t.n + 1

let ops t =
  List.sort (fun a b -> compare a.invoked b.invoked) (List.rev t.rev_ops)

let length t = t.n

let of_ops ops =
  let t = create () in
  List.iter (add t) ops;
  t

let filter t ~f = of_ops (List.filter f (List.rev t.rev_ops))

let truncate_after t ~time =
  filter t ~f:(fun o -> o.invoked <= time && o.replied <= time)

let concurrency t =
  let events =
    List.concat_map (fun o -> [ (o.invoked, 1); (o.replied, -1) ]) t.rev_ops
    |> List.sort compare
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, d) ->
        let cur = cur + d in
        (cur, max cur peak))
      (0, 0) events
  in
  peak
