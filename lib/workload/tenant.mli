(** Multi-tenant key traffic: a Zipfian choice of tenant, then a Zipfian
    choice within the tenant's private key slice.

    Tenant [i] owns the contiguous index slice
    [i * keys_per_tenant .. (i+1) * keys_per_tenant - 1], rendered with
    the canonical {!Keys.key_name} — so a {!Rsmr_shard.Keyspace} cut over
    [tenants * keys_per_tenant] keys assigns whole tenants to shards
    (modulo boundary tenants), and hot tenants concentrate load on
    whichever shard owns them.  This is the aggregate-throughput
    workload for the F6/F7 platform experiments: skew across tenants
    stresses routing imbalance, skew within a tenant stresses the owning
    shard's batch formation. *)

type t

val create :
  rng:Rsmr_sim.Rng.t ->
  tenants:int ->
  keys_per_tenant:int ->
  ?tenant_theta:float ->
  ?key_theta:float ->
  ?read_ratio:float ->
  ?value_size:int ->
  unit ->
  t
(** [tenant_theta] defaults to 0.8 (a few hot tenants), [key_theta] to
    0.99 (classic YCSB skew inside a tenant), [read_ratio] to 0.5,
    [value_size] to 64 bytes. *)

val n_keys : t -> int
(** [tenants * keys_per_tenant] — the total canonical key space, i.e.
    the [n_keys] to cut a keyspace over. *)

val next_index : t -> int
(** Sample one global key index. *)

val next_key : t -> string
(** [Keys.key_name (next_index t)]. *)

val next : t -> string
(** Next encoded KV command against a sampled key (Get with probability
    [read_ratio], else Put of a fresh [value_size]-byte value). *)
