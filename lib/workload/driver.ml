module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Timeseries = Rsmr_sim.Timeseries
module Node_id = Rsmr_net.Node_id
module Cluster = Rsmr_iface.Cluster

type stats = {
  latency : Histogram.t;
  completions : Timeseries.t;
  mutable submitted : int;
  mutable completed : int;
}

type event = {
  ev_client : Node_id.t;
  ev_seq : int;
  ev_cmd : string;
  ev_invoked : float;
  ev_replied : float;
  ev_rsp : string;
}

type inflight = { cmd : string; invoked : float }

let fresh_stats () =
  {
    latency = Histogram.create ();
    completions = Timeseries.create ();
    submitted = 0;
    completed = 0;
  }

(* Shared reply plumbing: track in-flight requests, record latency, then
   hand off to the per-driver continuation. *)
let setup ~(cluster : Cluster.t) ~n_clients ~first_client_id ?on_event
    ~on_complete () =
  let engine = cluster.Cluster.engine in
  let stats = fresh_stats () in
  let inflight : (Node_id.t * int, inflight) Hashtbl.t = Hashtbl.create 64 in
  let clients = List.init n_clients (fun i -> first_client_id + i) in
  List.iter cluster.Cluster.add_client clients;
  cluster.Cluster.set_on_reply (fun ~client ~seq ~rsp ->
      match Hashtbl.find_opt inflight (client, seq) with
      | None -> () (* admin or stale *)
      | Some { cmd; invoked } ->
        Hashtbl.remove inflight (client, seq);
        let now = Engine.now engine in
        let lat = now -. invoked in
        Histogram.record stats.latency lat;
        Timeseries.add stats.completions ~time:now lat;
        stats.completed <- stats.completed + 1;
        (match on_event with
         | Some f ->
           f
             {
               ev_client = client;
               ev_seq = seq;
               ev_cmd = cmd;
               ev_invoked = invoked;
               ev_replied = now;
               ev_rsp = rsp;
             }
         | None -> ());
        on_complete ~client);
  let submit ~client ~seq ~cmd =
    Hashtbl.replace inflight (client, seq)
      { cmd; invoked = Engine.now engine };
    stats.submitted <- stats.submitted + 1;
    cluster.Cluster.submit ~client ~seq ~cmd
  in
  (engine, stats, clients, submit)

let run_closed ~cluster ~n_clients ~first_client_id ~gen ?(think = 0.0)
    ?(window = 1) ?on_event ~start ~duration () =
  let seqs : (Node_id.t, int) Hashtbl.t = Hashtbl.create 16 in
  let next_seq client =
    let s = 1 + Option.value (Hashtbl.find_opt seqs client) ~default:0 in
    Hashtbl.replace seqs client s;
    s
  in
  let submit_ref = ref (fun ~client:_ ~seq:_ ~cmd:_ -> ()) in
  let engine_ref = ref None in
  let issue client =
    match !engine_ref with
    | Some engine when Engine.now engine < start +. duration ->
      let seq = next_seq client in
      let cmd = gen ~client ~seq in
      !submit_ref ~client ~seq ~cmd
    | _ -> ()
  in
  let on_complete ~client =
    match !engine_ref with
    | Some engine ->
      if think > 0.0 then
        ignore (Engine.schedule engine ~delay:think (fun () -> issue client))
      else issue client
    | None -> ()
  in
  let engine, stats, clients, submit =
    setup ~cluster ~n_clients ~first_client_id ?on_event ~on_complete ()
  in
  submit_ref := submit;
  engine_ref := Some engine;
  List.iter
    (fun client ->
      ignore
        (Engine.at engine ~time:start (fun () ->
             (* [window] requests in flight per client; completions keep the
                pipe full one-for-one from then on. *)
             for _ = 1 to max 1 window do
               issue client
             done)))
    clients;
  stats

let run_open ~cluster ~n_clients ~first_client_id ~gen ~rate ?on_event ~start
    ~duration () =
  if rate <= 0.0 then invalid_arg "Driver.run_open: rate must be positive";
  let engine, stats, clients, submit =
    setup ~cluster ~n_clients ~first_client_id ?on_event
      ~on_complete:(fun ~client:_ -> ())
      ()
  in
  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  let clients = Array.of_list clients in
  let seqs : (Node_id.t, int) Hashtbl.t = Hashtbl.create 16 in
  let rr = ref 0 in
  let rec arrival () =
    if Engine.now engine < start +. duration then begin
      let client = clients.(!rr mod Array.length clients) in
      incr rr;
      let seq = 1 + Option.value (Hashtbl.find_opt seqs client) ~default:0 in
      Hashtbl.replace seqs client seq;
      submit ~client ~seq ~cmd:(gen ~client ~seq);
      let gap = Rsmr_sim.Rng.exponential rng ~mean:(1.0 /. rate) in
      ignore (Engine.schedule engine ~delay:gap arrival)
    end
  in
  ignore (Engine.at engine ~time:start arrival);
  stats

let preload ~cluster ~client ~commands ?(window = 32) ~deadline () =
  let engine = cluster.Cluster.engine in
  cluster.Cluster.add_client client;
  let total = List.length commands in
  let remaining = ref commands in
  let next_seq = ref 0 in
  let acked = ref 0 in
  let submit_next () =
    match !remaining with
    | [] -> ()
    | cmd :: rest ->
      remaining := rest;
      incr next_seq;
      cluster.Cluster.submit ~client ~seq:!next_seq ~cmd
  in
  cluster.Cluster.set_on_reply (fun ~client:c ~seq:_ ~rsp:_ ->
      if Node_id.equal c client then begin
        incr acked;
        submit_next ()
      end);
  for _ = 1 to min window total do
    submit_next ()
  done;
  let rec pump horizon =
    Engine.run ~until:horizon engine;
    if !acked >= total then ()
    else if horizon >= deadline then
      failwith
        (Printf.sprintf "Driver.preload: %d/%d acked by deadline" !acked total)
    else pump (horizon +. 0.5)
  in
  if total > 0 then pump (Engine.now engine +. 0.5);
  (* Leave the reply slot free for the next driver. *)
  cluster.Cluster.set_on_reply (fun ~client:_ ~seq:_ ~rsp:_ -> ())
