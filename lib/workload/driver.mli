(** Load drivers over the protocol-agnostic {!Rsmr_iface.Cluster.t}.

    A driver schedules client work onto the cluster's engine; the caller
    then runs the engine.  Latencies are measured submit-to-reply as a
    client would see them, including retries, redirects and directory
    lookups. *)

type stats = {
  latency : Rsmr_sim.Histogram.t;
  completions : Rsmr_sim.Timeseries.t;
      (** one sample per reply: (reply_time, latency) — feeds both
          throughput-over-time and latency-timeline figures *)
  mutable submitted : int;
  mutable completed : int;
}

type event = {
  ev_client : Rsmr_net.Node_id.t;
  ev_seq : int;
  ev_cmd : string;
  ev_invoked : float;
  ev_replied : float;
  ev_rsp : string;
}

val run_closed :
  cluster:Rsmr_iface.Cluster.t ->
  n_clients:int ->
  first_client_id:Rsmr_net.Node_id.t ->
  gen:(client:Rsmr_net.Node_id.t -> seq:int -> string) ->
  ?think:float ->
  ?window:int ->
  ?on_event:(event -> unit) ->
  start:float ->
  duration:float ->
  unit ->
  stats
(** Closed loop: each of [n_clients] keeps [window] requests outstanding
    (default 1), issuing a replacement [think] seconds after each reply
    (default 0).  [window] > 1 is what feeds the client endpoints'
    coalescing buffers — a window of one can never form a batch.  Clients
    stop issuing at [start +. duration].  Installs the cluster's reply
    handler — one driver per cluster at a time. *)

val run_open :
  cluster:Rsmr_iface.Cluster.t ->
  n_clients:int ->
  first_client_id:Rsmr_net.Node_id.t ->
  gen:(client:Rsmr_net.Node_id.t -> seq:int -> string) ->
  rate:float ->
  ?on_event:(event -> unit) ->
  start:float ->
  duration:float ->
  unit ->
  stats
(** Open loop: submissions arrive as a Poisson process of [rate] requests
    per second, round-robin across clients, independent of completions —
    the right model for latency-vs-load curves. *)

val preload :
  cluster:Rsmr_iface.Cluster.t ->
  client:Rsmr_net.Node_id.t ->
  commands:string list ->
  ?window:int ->
  deadline:float ->
  unit ->
  unit
(** Synchronously pump [commands] through the cluster (pipelining up to
    [window], default 32) by running the engine until all are acknowledged.
    Raises [Failure] if the deadline passes first. *)
