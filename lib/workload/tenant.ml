module Rng = Rsmr_sim.Rng
module Kv = Rsmr_app.Kv

type t = {
  rng : Rng.t;
  tenants : Keys.t; (* Zipf over tenant ids *)
  keys : Keys.t; (* Zipf over each tenant's private key slots *)
  keys_per_tenant : int;
  read_ratio : float;
  value_size : int;
  mutable counter : int;
}

let create ~rng ~tenants ~keys_per_tenant ?(tenant_theta = 0.8)
    ?(key_theta = 0.99) ?(read_ratio = 0.5) ?(value_size = 64) () =
  if tenants <= 0 then invalid_arg "Tenant.create: tenants must be positive";
  if keys_per_tenant <= 0 then
    invalid_arg "Tenant.create: keys_per_tenant must be positive";
  {
    rng;
    tenants = Keys.zipf ~n:tenants ~theta:tenant_theta;
    keys = Keys.zipf ~n:keys_per_tenant ~theta:key_theta;
    keys_per_tenant;
    read_ratio;
    value_size;
    counter = 0;
  }

let n_keys t = Keys.cardinality t.tenants * t.keys_per_tenant

let next_index t =
  let tenant = Keys.sample t.tenants t.rng in
  let k = Keys.sample t.keys t.rng in
  (tenant * t.keys_per_tenant) + k

let next_key t = Keys.key_name (next_index t)

let next t =
  let key = next_key t in
  if Rng.bernoulli t.rng t.read_ratio then Kv.encode_command (Kv.Get key)
  else begin
    t.counter <- t.counter + 1;
    Kv.encode_command
      (Kv.Put (key, Kv_gen.value_of_size t.value_size ~seed:t.counter))
  end
