module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Counters = Rsmr_sim.Counters

type 'm envelope = { src : Node_id.t; dst : Node_id.t; payload : 'm }

type mode = [ `Sim | `Enumerate ]

type 'm t = {
  engine : Engine.t;
  mode : mode;
  (* Enumerate mode: per-directed-link FIFO queues of undelivered
     payloads.  Only the head of each queue is deliverable — the
     in-order clamp [fifo] enforces with arrival-time bumps in `Sim
     mode holds by construction here. *)
  queues : (Node_id.t * Node_id.t, 'm Queue.t) Hashtbl.t;
  latency : Latency.t;
  mutable drop : float;
  mutable duplicate : float;
  bandwidth : float;
  sizer : 'm -> int;
  rng : Rng.t;
  handlers : (Node_id.t, 'm envelope -> unit) Hashtbl.t;
  mutable crashed : Node_id.Set.t;
  mutable groups : Node_id.Set.t list; (* empty list = no partition *)
  link_drop : (Node_id.t * Node_id.t, float) Hashtbl.t;
  egress_free_at : (Node_id.t, float) Hashtbl.t;
  fifo : bool;
  tagger : ('m -> string) option;
  last_arrival : (Node_id.t * Node_id.t, float) Hashtbl.t;
  counters : Counters.t;
  (* Cached handles for the counters every send touches, so the hot path
     bumps refs instead of hashing counter names per message. *)
  c_sent : int ref;
  c_bytes_sent : int ref;
  c_delivered : int ref;
  c_dropped : int ref;
  c_duplicated : int ref;
  (* tag -> ("sent."^tag, "bytes."^tag) handles, so per-tag accounting
     neither re-concatenates the key strings nor re-hashes them. *)
  tag_handles : (string, int ref * int ref) Hashtbl.t;
}

let create engine ?(mode = `Sim) ?(latency = Latency.lan) ?(drop = 0.0)
    ?(duplicate = 0.0) ?(bandwidth = 1.25e8) ?(fifo = true) ?tagger
    ?(sizer = fun _ -> 64) ?obs () =
  (* With an Observatory registry the network's counter table IS the
     registry's "net" section: same live cells, no extra hot-path cost,
     and the registry exports per-message-type series by splitting the
     dotted tag keys at export time. *)
  let counters =
    match obs with
    | Some reg -> Rsmr_obs.Registry.counters reg "net"
    | None -> Counters.create ()
  in
  {
    engine;
    mode;
    queues = Hashtbl.create 16;
    latency;
    drop;
    duplicate;
    bandwidth;
    sizer;
    rng = Rng.split (Engine.rng engine);
    handlers = Hashtbl.create 64;
    crashed = Node_id.Set.empty;
    groups = [];
    link_drop = Hashtbl.create 8;
    egress_free_at = Hashtbl.create 32;
    fifo;
    tagger;
    last_arrival = Hashtbl.create 64;
    counters;
    c_sent = Counters.handle counters "sent";
    c_bytes_sent = Counters.handle counters "bytes_sent";
    c_delivered = Counters.handle counters "delivered";
    c_dropped = Counters.handle counters "dropped";
    c_duplicated = Counters.handle counters "duplicated";
    tag_handles = Hashtbl.create 16;
  }

let engine t = t.engine
let mode t = t.mode
let register t node f = Hashtbl.replace t.handlers node f
let unregister t node = Hashtbl.remove t.handlers node

let crash t node = t.crashed <- Node_id.Set.add node t.crashed
let recover t node = t.crashed <- Node_id.Set.remove node t.crashed
let is_crashed t node = Node_id.Set.mem node t.crashed

let partition t groups =
  t.groups <- List.map Node_id.Set.of_list groups

let heal t = t.groups <- []

let set_link_fault t ~src ~dst ~drop =
  Hashtbl.replace t.link_drop (src, dst) drop

let clear_link_faults t = Hashtbl.reset t.link_drop
let set_drop t p = t.drop <- p
let set_duplicate t p = t.duplicate <- p

let counters t = t.counters

let connected t src dst =
  match t.groups with
  | [] -> true
  | groups ->
    List.exists
      (fun g -> Node_id.Set.mem src g && Node_id.Set.mem dst g)
      groups

let link_drop_prob t src dst =
  match Hashtbl.find_opt t.link_drop (src, dst) with
  | Some p -> p
  | None -> 0.0

let deliver t env =
  if not (Node_id.Set.mem env.dst t.crashed) then
    match Hashtbl.find_opt t.handlers env.dst with
    | Some f ->
      t.c_delivered := !(t.c_delivered) + 1;
      f env
    | None -> t.c_dropped := !(t.c_dropped) + 1

(* Egress serialization: a message holds the sender's uplink for
   size/bandwidth seconds; later messages queue behind it.  Returns the
   added delay before the message even enters the wire. *)
let egress_delay t src size =
  if t.bandwidth = infinity then 0.0
  else begin
    let now = Engine.now t.engine in
    let free_at =
      match Hashtbl.find_opt t.egress_free_at src with
      | Some f when f > now -> f
      | Some _ | None -> now
    in
    let ser = float_of_int size /. t.bandwidth in
    Hashtbl.replace t.egress_free_at src (free_at +. ser);
    free_at +. ser -. now
  end

(* The ("sent."^tag, "bytes."^tag) handle pair for [tag], concatenating
   and hashing the key strings only the first time the tag appears. *)
let tag_handles t tag =
  match Hashtbl.find_opt t.tag_handles tag with
  | Some h -> h
  | None ->
    let h =
      ( Counters.handle t.counters ("sent." ^ tag),
        Counters.handle t.counters ("bytes." ^ tag) )
    in
    Hashtbl.add t.tag_handles tag h;
    h

(* Size and per-tag accounting for a payload, resolved once per logical
   send: [broadcast] shares one [prepare] across its whole fan-out, so a
   payload sent to n peers is sized and tagged once, not n times. *)
let prepare t payload =
  let size = t.sizer payload in
  let chan =
    match t.tagger with
    | Some tag -> Some (tag_handles t (tag payload))
    | None -> None
  in
  (size, chan)

(* Enumerate-mode send: no randomness, no latency, no engine event —
   the payload parks on its directed link until the model checker picks
   it (deliver_head) or loses it (drop_head).  Send-time crash and
   partition checks match `Sim mode exactly. *)
let enqueue t ~src ~dst payload =
  if Node_id.Set.mem src t.crashed then t.c_dropped := !(t.c_dropped) + 1
  else if not (connected t src dst) then t.c_dropped := !(t.c_dropped) + 1
  else begin
    let q =
      match Hashtbl.find_opt t.queues (src, dst) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.queues (src, dst) q;
        q
    in
    Queue.add payload q
  end

let transmit t ~src ~dst ~size ~chan payload =
  t.c_sent := !(t.c_sent) + 1;
  t.c_bytes_sent := !(t.c_bytes_sent) + size;
  (match chan with
   | Some (sent, bytes) ->
     sent := !sent + 1;
     bytes := !bytes + size
   | None -> ());
  if t.mode = `Enumerate then enqueue t ~src ~dst payload
  else begin
  let env = { src; dst; payload } in
  if Node_id.Set.mem src t.crashed then t.c_dropped := !(t.c_dropped) + 1
  else if not (connected t src dst) then t.c_dropped := !(t.c_dropped) + 1
  else begin
    let p_drop = t.drop +. link_drop_prob t src dst in
    if Rng.bernoulli t.rng p_drop then t.c_dropped := !(t.c_dropped) + 1
    else begin
      let copies =
        if t.duplicate > 0.0 && Rng.bernoulli t.rng t.duplicate then begin
          t.c_duplicated := !(t.c_duplicated) + 1;
          2
        end
        else 1
      in
      for _ = 1 to copies do
        let delay =
          if src = dst then 1e-6
          else egress_delay t src size +. Latency.sample t.latency t.rng
        in
        (* TCP-like per-link FIFO: a message never overtakes an earlier one
           on the same directed link.  Protocols built for stream
           transports (pipelined Raft appends) depend on this. *)
        let delay =
          if not t.fifo then delay
          else begin
            let now = Engine.now t.engine in
            let arrival = now +. delay in
            let arrival =
              match Hashtbl.find_opt t.last_arrival (src, dst) with
              | Some prev when prev >= arrival -> prev +. 1e-9
              | Some _ | None -> arrival
            in
            Hashtbl.replace t.last_arrival (src, dst) arrival;
            arrival -. now
          end
        in
        (* Partition / crash are re-checked at delivery time so that a
           partition installed while a message is in flight cuts it off,
           matching how long network convulsions behave. *)
        ignore
          (Engine.schedule t.engine ~delay (fun () ->
               if connected t src dst then deliver t env
               else t.c_dropped := !(t.c_dropped) + 1))
      done
    end
  end
  end

let send t ~src ~dst payload =
  let size, chan = prepare t payload in
  transmit t ~src ~dst ~size ~chan payload

let broadcast t ~src ~dsts payload =
  match dsts with
  | [] -> ()
  | dsts ->
    let size, chan = prepare t payload in
    List.iter
      (fun dst ->
        if not (Node_id.equal dst src) then
          transmit t ~src ~dst ~size ~chan payload)
      dsts

(* ------------------------------------------------------------------ *)
(* Enumerate-mode introspection.  All listing is in sorted link order so
   the checker's choice enumeration (and anything fingerprinting the
   in-flight set) is deterministic regardless of hash-table layout. *)

let compare_link (s1, d1) (s2, d2) =
  match Int.compare (s1 : Node_id.t) s2 with
  | 0 -> Int.compare (d1 : Node_id.t) d2
  | c -> c

let links t =
  List.rev
    (Rsmr_sim.Stable.fold_sorted ~compare:compare_link
       (fun link q acc -> if Queue.is_empty q then acc else link :: acc)
       t.queues [])

let queued t ~src ~dst =
  match Hashtbl.find_opt t.queues (src, dst) with
  | None -> []
  | Some q -> List.rev (Queue.fold (fun acc m -> m :: acc) [] q)

let pending_total t =
  Rsmr_sim.Stable.fold_sorted ~compare:compare_link
    (fun _ q acc -> acc + Queue.length q)
    t.queues 0

let take_head t ~src ~dst =
  match Hashtbl.find_opt t.queues (src, dst) with
  | None -> None
  | Some q ->
    if Queue.is_empty q then None
    else begin
      let payload = Queue.pop q in
      if Queue.is_empty q then Hashtbl.remove t.queues (src, dst);
      Some payload
    end

let deliver_head t ~src ~dst =
  match take_head t ~src ~dst with
  | None -> None
  | Some payload ->
    (* Same delivery-time re-checks as the `Sim delivery closure: a
       partition installed after the send cuts the message off, and
       [deliver] itself drops on a crashed destination. *)
    if connected t src dst then deliver t { src; dst; payload }
    else t.c_dropped := !(t.c_dropped) + 1;
    Some payload

let drop_head t ~src ~dst =
  match take_head t ~src ~dst with
  | None -> None
  | Some payload ->
    t.c_dropped := !(t.c_dropped) + 1;
    Some payload
