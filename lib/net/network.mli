(** Simulated message-passing network.

    Polymorphic in the payload type ['m]: each experiment instantiates it
    with the union wire type of the protocols under test.  Supports the
    fault model the experiments need: probabilistic loss and duplication,
    network partitions, node crash / recovery, and asymmetric delay.
    Delivery to a crashed or partitioned-away node is silently dropped, as
    over UDP; protocols must carry their own retransmission logic. *)

type 'm t

type 'm envelope = { src : Node_id.t; dst : Node_id.t; payload : 'm }

type mode = [ `Sim | `Enumerate ]
(** [`Sim] (the default) is the stochastic discrete-event network
    described above.  [`Enumerate] is the model checker's network: a
    send parks the payload on its directed link's FIFO queue instead of
    scheduling a delivery event, and the checker consumes queue heads
    explicitly via {!deliver_head} / {!drop_head} — loss and reordering
    become enumerated choices rather than coin flips.  The mode is fixed
    at {!create} time: components send messages during construction, so
    flipping modes mid-run would strand in-flight messages. *)

val create :
  Rsmr_sim.Engine.t ->
  ?mode:mode ->
  ?latency:Latency.t ->
  ?drop:float ->
  ?duplicate:float ->
  ?bandwidth:float ->
  ?fifo:bool ->
  ?tagger:('m -> string) ->
  ?sizer:('m -> int) ->
  ?obs:Rsmr_obs.Registry.t ->
  unit ->
  'm t
(** [sizer] estimates the wire size of a payload in bytes for the byte
    counters and the bandwidth model; defaults to a flat 64.

    [obs], when given, makes the network account into the registry's
    ["net"] counter section instead of a private table — the cells are
    shared, so there is no per-message overhead and [counters] still
    returns the live table.

    [bandwidth], in bytes/second, models per-node egress (NIC)
    serialization: a message occupies its sender's uplink for
    [size/bandwidth] seconds and messages queue behind each other, so bulk
    transfers (snapshots) take time proportional to their size.  Default
    1.25e8 (10 GbE); [infinity] disables the model.

    [fifo] (default true) prevents a message from overtaking an earlier
    one on the same directed link, as a TCP stream would — protocols that
    pipeline (Raft appends) depend on it.  Set false to model independent
    datagrams.

    [tagger] classifies payloads for per-message-type counters
    ("sent.<tag>", "bytes.<tag>"). *)

val engine : 'm t -> Rsmr_sim.Engine.t

val register : 'm t -> Node_id.t -> ('m envelope -> unit) -> unit
(** Attach a node's receive handler.  Re-registering replaces the handler
    (used when a node restarts with fresh state). *)

val unregister : 'm t -> Node_id.t -> unit

val send : 'm t -> src:Node_id.t -> dst:Node_id.t -> 'm -> unit
(** Fire-and-forget.  Self-sends are delivered through the queue too (with
    near-zero latency), preserving the no-reentrancy property handlers rely
    on. *)

val broadcast : 'm t -> src:Node_id.t -> dsts:Node_id.t list -> 'm -> unit
(** Send to every node in [dsts] except [src].  The payload is sized and
    tagged once for the whole fan-out (not once per destination), so this
    is the cheap way to deliver one message to n peers. *)

(** {1 Fault injection} *)

val crash : 'm t -> Node_id.t -> unit
(** The node stops sending and receiving until {!recover}.  Its handler
    stays registered; protocol state is untouched (a crashed replica whose
    host object is reused models a crash-recovery node with stable
    storage — to model amnesia, re-register a fresh node). *)

val recover : 'm t -> Node_id.t -> unit
val is_crashed : 'm t -> Node_id.t -> bool

val partition : 'm t -> Node_id.t list list -> unit
(** Install a partition: messages flow only within a group.  Nodes absent
    from every group can talk to nobody.  Replaces any previous
    partition. *)

val heal : 'm t -> unit
(** Remove any partition. *)

val set_link_fault : 'm t -> src:Node_id.t -> dst:Node_id.t -> drop:float -> unit
(** Per-directed-link extra drop probability (composed with the global
    one). *)

val clear_link_faults : 'm t -> unit

val set_drop : 'm t -> float -> unit
(** Reset the global loss probability mid-run.  Fault scripts (crucible)
    use this to open and close lossy weather windows; messages already in
    flight are unaffected. *)

val set_duplicate : 'm t -> float -> unit
(** Reset the duplication probability mid-run — a duplicate storm is
    [set_duplicate t 1.0] followed later by [set_duplicate t 0.0]. *)

(** {1 Accounting} *)

val counters : 'm t -> Rsmr_sim.Counters.t
(** Keys: "sent", "delivered", "dropped", "duplicated", "bytes_sent". *)

(** {1 Enumerate mode}

    Only meaningful when the network was created with
    [~mode:`Enumerate]; in [`Sim] mode the queues are always empty.
    Per directed link, messages are deliverable strictly in send order
    (the FIFO clamp): only the head is reachable, via {!deliver_head}
    (run the receive handler) or {!drop_head} (model message loss). *)

val mode : 'm t -> mode

val links : 'm t -> (Node_id.t * Node_id.t) list
(** Directed links with at least one queued message, sorted by
    [(src, dst)] — a deterministic enumeration order for choice
    generation. *)

val queued : 'm t -> src:Node_id.t -> dst:Node_id.t -> 'm list
(** The link's queue, head (oldest) first.  Used for state
    fingerprinting; does not consume anything. *)

val pending_total : 'm t -> int
(** Total queued messages across all links — the checker's in-flight
    bound. *)

val deliver_head : 'm t -> src:Node_id.t -> dst:Node_id.t -> 'm option
(** Consume the head of the link and deliver it, re-checking partition
    and crash at delivery time exactly like [`Sim] mode (the message is
    consumed either way).  [None] if the link has no queued message. *)

val drop_head : 'm t -> src:Node_id.t -> dst:Node_id.t -> 'm option
(** Consume the head of the link as a message-loss choice.  Returns the
    lost payload for trace rendering. *)
