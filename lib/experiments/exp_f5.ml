(* F5 — Ablation of the paper's two composition-layer mechanisms:
   speculative handoff and residual re-submission. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule
module Options = Rsmr_core.Options
module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv)

let id = "F5"
let title = "Ablation: speculative handoff x residual re-submission"

module Strategy = Rsmr_iface.Reconfig_strategy

(* Each ablation cell is an anonymous strategy: the composed stages with
   the speculation / residual dials set per-variant. *)
let run_one ~speculative ~residual ~n_keys =
  let engine = Engine.create ~seed:41 () in
  let strategy =
    {
      Strategy.composed with
      Strategy.name =
        Printf.sprintf "ablate-%c%c"
          (if speculative then 's' else '-')
          (if residual then 'r' else '-');
      aliases = [];
      handoff = (if speculative then `Speculative else `Blocking);
      residuals = (if residual then `Resubmit else `Client_retry);
    }
  in
  let options = { Options.default with Options.strategy } in
  let svc =
    KvCore.create ~engine ~bandwidth:5e6 ~options ~members:[ 0; 1; 2 ]
      ~universe:(Common.default_universe 6) ()
  in
  let cluster = KvCore.cluster svc in
  Driver.preload ~cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys ~value_size:100)
    ~deadline:200.0 ();
  let t0 = Engine.now engine in
  let rng = Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:n_keys) ~read_ratio:0.5 () in
  let stats =
    Driver.run_closed ~cluster ~n_clients:6 ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration:20.0 ()
  in
  let t_rc = t0 +. 2.0 in
  Schedule.reconfigure_at cluster ~time:t_rc [ 3; 4; 5 ];
  Engine.run ~until:(t_rc +. 30.0) engine;
  let outage = Common.downtime stats ~from_:t_rc ~window:25.0 in
  let thr = float_of_int stats.Driver.completed /. 20.0 in
  ( outage,
    thr,
    Counters.get (KvCore.counters svc) "residuals",
    Counters.get (KvCore.counters svc) "residuals_resubmitted" )

let run ?(quick = false) () =
  let n_keys = if quick then 1_000 else 5_000 in
  let variants =
    [ (true, true); (true, false); (false, true); (false, false) ]
  in
  let rows =
    List.map
      (fun (speculative, residual) ->
        let outage, thr, residuals, resubmitted =
          run_one ~speculative ~residual ~n_keys
        in
        [
          (if speculative then "on" else "off");
          (if residual then "on" else "off");
          Table.cell_ms outage;
          Table.cell_f thr;
          string_of_int residuals;
          string_of_int resubmitted;
        ])
      variants
  in
  Table.make ~id ~title
    ~headers:
      [ "speculation"; "residual"; "outage"; "txn/s"; "residuals"; "resubmitted" ]
    ~notes:
      [
        Printf.sprintf
          "%d keys x 100B; fleet replacement at t=2s under 6-client load" n_keys;
        "expected shape: speculation cuts the outage by ~ the transfer time; \
         residual re-submission converts residual commands' client-timeout \
         retries into immediate completions";
      ]
    rows
