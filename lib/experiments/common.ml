module Engine = Rsmr_sim.Engine
module Timeseries = Rsmr_sim.Timeseries
module Node_id = Rsmr_net.Node_id
module Options = Rsmr_core.Options
module Driver = Rsmr_workload.Driver
module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv)
module KvCoreVr = Rsmr_core.Service.Make_on (Rsmr_smr.Vr) (Rsmr_app.Kv)
module KvRaft = Rsmr_baselines.Raft.Make (Rsmr_app.Kv)

module Strategy = Rsmr_iface.Reconfig_strategy

type proto =
  | Core
  | Matchmaker
  | Core_vr
  | Core_nospec
  | Core_noresidual
  | Stopworld
  | Raft

let proto_name = function
  | Core -> "core"
  | Matchmaker -> "matchmaker"
  | Core_vr -> "core/vr"
  | Core_nospec -> "core-nospec"
  | Core_noresidual -> "core-noresid"
  | Stopworld -> "stopworld"
  | Raft -> "raft"

let all_protos =
  [ Core; Matchmaker; Core_vr; Core_nospec; Core_noresidual; Stopworld; Raft ]

(* Ablations are anonymous strategy records: the composed stages with one
   dial flipped — exactly what the strategy API is for. *)
let strategy_of = function
  | Core | Core_vr | Raft -> Strategy.composed
  | Matchmaker -> Strategy.matchmaker
  | Core_nospec ->
    { Strategy.composed with
      Strategy.name = "composed-nospec";
      aliases = [];
      handoff = `Blocking
    }
  | Core_noresidual ->
    { Strategy.composed with
      Strategy.name = "composed-noresid";
      aliases = [];
      residuals = `Client_retry
    }
  | Stopworld -> Strategy.stopworld

type setup = {
  engine : Engine.t;
  cluster : Rsmr_iface.Cluster.t;
  leader : unit -> Node_id.t option;
  kv_state : Node_id.t -> Rsmr_app.Kv.t option;
  debug : Node_id.t -> string;
}

let core_options proto chunk_size =
  { Options.default with Options.chunk_size; strategy = strategy_of proto }

let make ?(seed = 1) ?latency ?drop ?bandwidth ?(chunk_size = 64 * 1024) proto
    ~members ~universe =
  let engine = Engine.create ~seed () in
  match proto with
  | Core | Matchmaker | Core_nospec | Core_noresidual | Stopworld ->
    (* Stopworld is the core composition with both overlap optimizations
       disabled (same semantics as Rsmr_baselines.Stop_the_world, built
       directly so leader/state introspection stays available). *)
    let svc =
      KvCore.create ~engine ?latency ?drop ?bandwidth
        ~options:(core_options proto chunk_size) ~universe ~members ()
    in
    let cluster =
      { (KvCore.cluster svc) with Rsmr_iface.Cluster.name = proto_name proto }
    in
    {
      engine;
      cluster;
      leader = (fun () -> KvCore.current_leader svc);
      kv_state = (fun node -> KvCore.app_state svc node);
      debug = (fun _ -> "");
    }
  | Core_vr ->
    let svc =
      KvCoreVr.create ~engine ?latency ?drop ?bandwidth
        ~options:(core_options proto chunk_size) ~universe ~members ()
    in
    let cluster =
      { (KvCoreVr.cluster svc) with Rsmr_iface.Cluster.name = proto_name proto }
    in
    {
      engine;
      cluster;
      leader = (fun () -> KvCoreVr.current_leader svc);
      kv_state = (fun node -> KvCoreVr.app_state svc node);
      debug = (fun _ -> "");
    }
  | Raft ->
    let svc = KvRaft.create ~engine ?latency ?drop ?bandwidth ~universe ~members () in
    {
      engine;
      cluster = KvRaft.cluster svc;
      leader = (fun () -> KvRaft.leader svc);
      kv_state = (fun node -> KvRaft.app_state svc node);
      debug = (fun node -> KvRaft.debug_dump svc node);
    }

let run_to setup time = Engine.run ~until:time setup.engine

let wait_for_members setup ~target ~deadline =
  let target = List.sort_uniq Node_id.compare target in
  let rec loop horizon =
    Engine.run ~until:horizon setup.engine;
    if
      List.sort_uniq Node_id.compare (setup.cluster.Rsmr_iface.Cluster.members ())
      = target
    then Some (Engine.now setup.engine)
    else if horizon >= deadline then None
    else loop (horizon +. 0.02)
  in
  loop (Engine.now setup.engine +. 0.02)

let wait_for_live setup ~target ~deadline =
  let target = List.sort_uniq Node_id.compare target in
  let live () =
    List.sort_uniq Node_id.compare (setup.cluster.Rsmr_iface.Cluster.members ())
    = target
    && (match setup.leader () with
        | Some l -> List.exists (Node_id.equal l) target
        | None -> false)
  in
  let rec loop horizon =
    Engine.run ~until:horizon setup.engine;
    if live () then Some (Engine.now setup.engine)
    else if horizon >= deadline then None
    else loop (horizon +. 0.02)
  in
  loop (Engine.now setup.engine +. 0.02)

let downtime (stats : Driver.stats) ~from_ ~window =
  match
    Timeseries.max_in_window stats.Driver.completions ~lo:from_
      ~hi:(from_ +. window)
  with
  | Some v -> v
  | None -> Float.nan

let throughput_in (stats : Driver.stats) ~from_ ~until =
  let count =
    List.fold_left
      (fun acc (time, _) -> if time >= from_ && time < until then acc + 1 else acc)
      0
      (Timeseries.points stats.Driver.completions)
  in
  float_of_int count /. (until -. from_)

let default_universe n = List.init n Fun.id

let raft_debug setup node = setup.debug node
