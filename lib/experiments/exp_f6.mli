(** Aggregate throughput vs shard count over a shared pool. *)

val id : string
val title : string

val run : ?quick:bool -> unit -> Table.t
(** [quick] shrinks durations/sweeps for smoke runs (default [false]). *)
