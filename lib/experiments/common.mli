(** Shared scaffolding for the experiment suite: uniform construction of
    every protocol under test and the standard measurements. *)

type proto =
  | Core  (** the paper's protocol over Multi-Paxos, speculative handoff on *)
  | Matchmaker
      (** composed stages + Matchmaker-style early prepare: the next
          configuration bootstraps while the old epoch is still committing *)
  | Core_vr  (** the same composition layer over the VR building block *)
  | Core_nospec  (** ablation: ordering waits for state transfer *)
  | Core_noresidual  (** ablation: residuals recovered by client retry only *)
  | Stopworld  (** halt + transfer + restart *)
  | Raft  (** natively reconfigurable baseline *)

val proto_name : proto -> string
val all_protos : proto list

val strategy_of : proto -> Rsmr_iface.Reconfig_strategy.t
(** The {!Rsmr_iface.Reconfig_strategy} the proto selects.  Ablation
    protos map to anonymous strategy records (the composed stages with
    one dial flipped); [Raft] maps to the composed default — its native
    stack ignores strategy options. *)

type setup = {
  engine : Rsmr_sim.Engine.t;
  cluster : Rsmr_iface.Cluster.t;
  leader : unit -> Rsmr_net.Node_id.t option;
  kv_state : Rsmr_net.Node_id.t -> Rsmr_app.Kv.t option;
  debug : Rsmr_net.Node_id.t -> string;  (** protocol-internal dump, tests/debug *)
}

val make :
  ?seed:int ->
  ?latency:Rsmr_net.Latency.t ->
  ?drop:float ->
  ?bandwidth:float ->
  ?chunk_size:int ->
  proto ->
  members:Rsmr_net.Node_id.t list ->
  universe:Rsmr_net.Node_id.t list ->
  setup
(** Build a KV-backed cluster of the given protocol. *)

val run_to : setup -> float -> unit
(** Run the engine to an absolute simulation time. *)

val wait_for_members :
  setup -> target:Rsmr_net.Node_id.t list -> deadline:float -> float option
(** Run until the cluster's advertised membership equals [target]
    (sorted); returns the simulation time when it happened, or [None] at
    the deadline. *)

val wait_for_live :
  setup -> target:Rsmr_net.Node_id.t list -> deadline:float -> float option
(** Like {!wait_for_members}, but additionally requires an elected leader
    inside [target] — the point at which the new configuration is actually
    serving. *)

val downtime : Rsmr_workload.Driver.stats -> from_:float -> window:float -> float
(** Worst client-perceived latency among requests completing in
    [from_, from_+window] — the unavailability proxy used throughout the
    evaluation.  NaN when nothing completed in the window (total outage
    longer than the window). *)

val throughput_in : Rsmr_workload.Driver.stats -> from_:float -> until:float -> float
(** Completions per second inside the interval. *)

val default_universe : int -> Rsmr_net.Node_id.t list
(** [0 .. n-1]. *)

val raft_debug : setup -> Rsmr_net.Node_id.t -> string
