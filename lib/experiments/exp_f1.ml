(* F1 — Steady-state throughput and latency vs cluster size.
   Baseline characterization: the composed service's static instance should
   track natively-built Raft, both degrading with quorum size. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver

let id = "F1"
let title = "Throughput vs cluster size (no reconfiguration)"

let run_one proto ~n ~duration =
  let members = Common.default_universe n in
  let setup = Common.make ~seed:(7 + n) proto ~members ~universe:members in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:1000) ~read_ratio:0.5 () in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:8
      ~first_client_id:100 ~window:16
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:1.0 ~duration ()
  in
  Common.run_to setup (1.0 +. duration +. 2.0);
  let thr = float_of_int stats.Driver.completed /. duration in
  ( thr,
    Histogram.percentile stats.Driver.latency 50.0,
    Histogram.percentile stats.Driver.latency 99.0 )

let run ?(quick = false) () =
  let duration = if quick then 1.0 else 5.0 in
  let sizes = if quick then [ 3; 5 ] else [ 3; 5; 7; 9 ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun proto ->
            let thr, p50, p99 = run_one proto ~n ~duration in
            [
              string_of_int n;
              Common.proto_name proto;
              Table.cell_f thr;
              Table.cell_ms p50;
              Table.cell_ms p99;
            ])
          [ Common.Core; Common.Raft ])
      sizes
  in
  Table.make ~id ~title
    ~headers:[ "replicas"; "protocol"; "txn/s"; "p50"; "p99" ]
    ~notes:
      [
        "8 closed-loop clients x 16-deep windows, 50/50 read/write, LAN latency model";
        "expected shape: core ~ raft at every size; both fall as quorums grow";
      ]
    rows
