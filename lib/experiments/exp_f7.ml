(* F7 — Directory staleness x redirect pressure: what a directory
   blackout costs the data path.

   Both shards rebalance while the replicated directory is unreachable
   for a varied window, so every client's cached configuration goes
   stale mid-flight and lookups cannot help until the heal.  The
   endpoints must ride wedge redirect hints with bounded traffic (the
   PR-4 retry-storm regression, measured rather than asserted). *)

module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Driver = Rsmr_workload.Driver
module Tenant = Rsmr_workload.Tenant
module Keyspace = Rsmr_shard.Keyspace
module Platform = Rsmr_shard.Platform

let id = "F7"
let title = "Directory staleness vs redirect pressure"

let run_one ~staleness ~tenants ~keys_per_tenant ~duration =
  let engine = Engine.create ~seed:71 () in
  let pool = [ 0; 1; 2; 3; 4; 5 ] in
  let dir_members = [ 0; 2; 4 ] in
  let pf =
    Platform.Core.create ~engine ~latency:Rsmr_net.Latency.lan ~pool
      ~shards:[ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] ~dir_members
      ~keyspace:
        (Keyspace.ranges ~shards:2 ~n_keys:(tenants * keys_per_tenant))
      ()
  in
  let cluster = Platform.Core.cluster pf in
  let rng = Rng.split (Engine.rng engine) in
  let gen = Tenant.create ~rng ~tenants ~keys_per_tenant () in
  let reb_done = ref 0 in
  let rebalance_at t0 ~node ~from_ ~to_ =
    ignore
      (Engine.at engine ~time:t0 (fun () ->
           Platform.Core.rebalance pf ~node ~from_ ~to_
             ~on_done:(fun ok -> if ok then incr reb_done)
             ()))
  in
  let t_fault = 1.5 in
  if staleness > 0.0 then begin
    ignore
      (Engine.at engine ~time:t_fault (fun () ->
           Platform.Core.isolate_dir pf dir_members));
    ignore
      (Engine.at engine ~time:(t_fault +. staleness) (fun () ->
           Rsmr_iface.Overlay.heal (Platform.Core.control pf)))
  end;
  rebalance_at (t_fault +. 0.1) ~node:1 ~from_:0 ~to_:1;
  rebalance_at (t_fault +. 0.2) ~node:4 ~from_:1 ~to_:0;
  let stats =
    Driver.run_closed ~cluster ~n_clients:6
      ~first_client_id:(Platform.Core.first_client_id pf)
      ~gen:(fun ~client:_ ~seq:_ -> Tenant.next gen)
      ~window:2 ~start:0.2 ~duration ()
  in
  Engine.run engine ~until:(0.2 +. duration +. 10.0);
  let n = max 1 stats.Driver.completed in
  ( float_of_int stats.Driver.completed /. duration,
    float_of_int (Platform.Core.endpoint_counter_total pf "redirects")
    /. float_of_int n,
    Platform.Core.endpoint_counter_total pf "lookups",
    !reb_done )

let run ?(quick = false) () =
  let windows = if quick then [ 0.0; 1.0 ] else [ 0.0; 0.5; 1.0; 2.0 ] in
  let tenants = if quick then 20 else 50 in
  let keys_per_tenant = if quick then 50 else 100 in
  let duration = if quick then 3.0 else 6.0 in
  let rows =
    List.map
      (fun staleness ->
        let thr, rdr, lookups, reb =
          run_one ~staleness ~tenants ~keys_per_tenant ~duration
        in
        [
          (if staleness = 0.0 then "none"
           else Printf.sprintf "%.1fs" staleness);
          Table.cell_f thr;
          Table.cell_f rdr;
          string_of_int lookups;
          Printf.sprintf "%d/2" reb;
        ])
      windows
  in
  Table.make ~id ~title
    ~headers:[ "dir blackout"; "txn/s"; "redirects/cmd"; "lookups"; "rebalances" ]
    ~notes:
      [
        Printf.sprintf
          "2 shards x 3 nodes; both shards rebalance 0.1s into the blackout; \
           %d tenants x %d keys; 6 clients, window 2; %gs run" tenants
          keys_per_tenant duration;
        "expected shape: redirects/cmd stays O(1) regardless of the blackout \
         (wedge hints route around the stale directory); lookups grow with \
         the window as endpoints keep probing until the heal";
      ]
    rows
