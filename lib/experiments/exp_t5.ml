(* T5 — Strategy shoot-out under reconfiguration churn.
   Every registered reconfiguration strategy through the crucible's
   membership-change-heavy scenario family, judged by the full oracle
   battery and costed along the dimensions the strategy API dials:
   wedged window (client-visible handoff blackout), state-transfer
   bytes, and early-prepare traffic. *)

module Generate = Rsmr_crucible.Generate
module Runner = Rsmr_crucible.Runner
module Oracle = Rsmr_crucible.Oracle
module Obs = Rsmr_obs.Registry
module Histogram = Rsmr_sim.Histogram

let id = "T5"
let title = "Strategy comparison under reconfiguration churn"

let counter_of (r : Runner.report) name =
  match List.assoc_opt name r.Runner.counters with Some n -> n | None -> 0

let run_one proto ~seeds =
  let passed = ref 0 and completed = ref 0 in
  let transfer = ref 0 and prepares = ref 0 in
  let windows = ref [] in
  List.iter
    (fun seed ->
      let r = Runner.run proto (Generate.reconf_churn_scenario ~seed) in
      if Oracle.failures (Oracle.check r) = [] then incr passed;
      completed := !completed + r.Runner.completed;
      transfer := !transfer + counter_of r "transfer_bytes";
      prepares := !prepares + counter_of r "prepares";
      let h =
        Obs.histogram r.Runner.obs "wedged_window_s"
          ~labels:[ ("strategy", Runner.proto_name proto) ]
      in
      if Histogram.count h > 0 then windows := Histogram.mean h :: !windows)
    seeds;
  let window =
    match !windows with
    | [] -> Float.nan
    | ws -> List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws)
  in
  (!passed, !completed, window, !transfer, !prepares)

let run ?(quick = false) () =
  let seeds = if quick then [ 0; 1 ] else [ 0; 1; 2; 3; 4; 5 ] in
  let n = List.length seeds in
  let rows =
    List.map
      (fun proto ->
        let passed, completed, window, transfer, prepares =
          run_one proto ~seeds
        in
        [
          Runner.proto_name proto;
          Printf.sprintf "%d/%d" passed n;
          string_of_int completed;
          (if Float.is_nan window then "n/a" else Table.cell_ms window);
          string_of_int transfer;
          string_of_int prepares;
        ])
      Runner.all_protos
  in
  Table.make ~id ~title
    ~headers:
      [ "strategy"; "oracles"; "ops"; "mean wedge"; "transfer B"; "prepares" ]
    ~notes:
      [
        "crucible reconf_churn family: 3-6 membership changes per run, half \
         chased by a second change, plus one crash/recover or drop spell; \
         every run must pass the full oracle battery";
        "expected shape: matchmaker's early prepare shrinks the mean wedged \
         window below composed at the cost of prepare traffic; stopworld \
         pays the largest window (blocking handoff, client-retry \
         residuals); raft is native (no wedge, so no window to report)";
      ]
    rows
