(** Directory staleness vs redirect pressure on the sharded platform. *)

val id : string
val title : string

val run : ?quick:bool -> unit -> Table.t
(** [quick] shrinks durations/sweeps for smoke runs (default [false]). *)
