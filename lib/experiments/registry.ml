type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Table.t;
}

let all =
  [
    { id = Exp_f1.id; title = Exp_f1.title; run = Exp_f1.run };
    { id = Exp_f2.id; title = Exp_f2.title; run = Exp_f2.run };
    { id = Exp_f3.id; title = Exp_f3.title; run = Exp_f3.run };
    { id = Exp_f4.id; title = Exp_f4.title; run = Exp_f4.run };
    { id = Exp_f5.id; title = Exp_f5.title; run = Exp_f5.run };
    { id = Exp_f6.id; title = Exp_f6.title; run = Exp_f6.run };
    { id = Exp_f7.id; title = Exp_f7.title; run = Exp_f7.run };
    { id = Exp_t1.id; title = Exp_t1.title; run = Exp_t1.run };
    { id = Exp_t2.id; title = Exp_t2.title; run = Exp_t2.run };
    { id = Exp_t3.id; title = Exp_t3.title; run = Exp_t3.run };
    { id = Exp_t4.id; title = Exp_t4.title; run = Exp_t4.run };
    { id = Exp_t5.id; title = Exp_t5.title; run = Exp_t5.run };
    { id = Exp_b1.id; title = Exp_b1.title; run = Exp_b1.run };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = id) all
