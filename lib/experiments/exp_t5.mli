(** Strategy comparison under reconfiguration churn. *)

val id : string
val title : string

val run : ?quick:bool -> unit -> Table.t
(** [quick] shrinks the seed sweep for smoke runs (default [false]). *)
