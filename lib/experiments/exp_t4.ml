(* T4 — Block interchangeability: the composition layer over two completely
   different static SMR building blocks (Multi-Paxos vs Viewstamped
   Replication), same workload, same reconfiguration.  The paper's
   black-box claim, quantified: the composed service behaves equivalently;
   differences (VR's larger view-change messages, its election-free view-0
   start) belong to the block, not the layer. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Counters = Rsmr_sim.Counters
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule

let id = "T4"
let title = "Block interchangeability: composition over Multi-Paxos vs VR"

let run_one proto ~duration =
  let members = [ 0; 1; 2 ] and universe = Common.default_universe 6 in
  let setup = Common.make ~seed:43 proto ~members ~universe in
  Driver.preload ~cluster:setup.Common.cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:2_000 ~value_size:100)
    ~deadline:120.0 ();
  let t0 = Engine.now setup.Common.engine in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:2_000) ~read_ratio:0.5 () in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:6
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration ()
  in
  let t_rc = t0 +. (duration /. 2.0) in
  Schedule.reconfigure_at setup.Common.cluster ~time:t_rc [ 3; 4; 5 ];
  Common.run_to setup (t0 +. duration +. 10.0);
  let thr = float_of_int stats.Driver.completed /. duration in
  let outage = Common.downtime stats ~from_:t_rc ~window:10.0 in
  let net =
    Rsmr_obs.Registry.counters setup.Common.cluster.Rsmr_iface.Cluster.obs
      "net"
  in
  let bytes_per_cmd =
    float_of_int (Counters.get net "bytes_sent")
    /. float_of_int (max 1 stats.Driver.completed)
  in
  ( thr,
    Histogram.percentile stats.Driver.latency 50.0,
    outage,
    bytes_per_cmd,
    Counters.get
      (Rsmr_obs.Registry.counters setup.Common.cluster.Rsmr_iface.Cluster.obs
         "svc")
      "wedges" )

let run ?(quick = false) () =
  let duration = if quick then 4.0 else 12.0 in
  let rows =
    List.map
      (fun proto ->
        let thr, p50, outage, bpc, wedges = run_one proto ~duration in
        [
          Common.proto_name proto;
          Table.cell_f thr;
          Table.cell_ms p50;
          Table.cell_ms outage;
          Table.cell_f bpc;
          string_of_int wedges;
        ])
      [ Common.Core; Common.Core_vr ]
  in
  Table.make ~id ~title
    ~headers:[ "block"; "txn/s"; "p50"; "reconf outage"; "bytes/txn"; "wedges" ]
    ~notes:
      [
        "identical workload and fleet replacement, only the building block \
         differs; 2k keys preloaded";
        "expected shape: near-identical service behaviour — the composition \
         layer cannot tell the blocks apart; small cost differences belong \
         to the blocks themselves";
      ]
    rows
