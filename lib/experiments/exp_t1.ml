(* T1 — Message and byte cost, per committed command and per
   reconfiguration.  The composition's command cost should equal the static
   block's (the layer adds nothing on the fast path); its reconfiguration
   cost is bootstrap + phase-1 of the new instance + snapshot chunks. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Keys = Rsmr_workload.Keys
module Driver = Rsmr_workload.Driver

let id = "T1"
let title = "Messages / bytes per command and per reconfiguration"

let snapshot cluster =
  let net =
    Rsmr_obs.Registry.counters cluster.Rsmr_iface.Cluster.obs "net"
  in
  (Counters.get net "sent", Counters.get net "bytes_sent")

let run_one proto ~n_cmds =
  let members = [ 0; 1; 2; 3; 4 ] and universe = Common.default_universe 8 in
  let setup = Common.make ~seed:17 proto ~members ~universe in
  let cluster = setup.Common.cluster in
  (* Let elections and heartbeats settle, then take an idle baseline so the
     steady heartbeat cost can be subtracted. *)
  Common.run_to setup 2.0;
  let idle0_m, idle0_b = snapshot cluster in
  Common.run_to setup 4.0;
  let idle1_m, idle1_b = snapshot cluster in
  let idle_m_per_s = float_of_int (idle1_m - idle0_m) /. 2.0 in
  let idle_b_per_s = float_of_int (idle1_b - idle0_b) /. 2.0 in
  (* Command phase. *)
  let t_load0 = Engine.now setup.Common.engine in
  let load0_m, load0_b = snapshot cluster in
  Driver.preload ~cluster ~client:99
    ~commands:
      (List.init n_cmds (fun i ->
           Rsmr_app.Kv.encode_command
             (Rsmr_app.Kv.Put (Keys.key_name (i mod 512), "v"))))
    ~window:8 ~deadline:(t_load0 +. 200.0) ();
  let load1_m, load1_b = snapshot cluster in
  let dt = Engine.now setup.Common.engine -. t_load0 in
  let per_cmd_m =
    (float_of_int (load1_m - load0_m) -. (idle_m_per_s *. dt))
    /. float_of_int n_cmds
  in
  let per_cmd_b =
    (float_of_int (load1_b - load0_b) -. (idle_b_per_s *. dt))
    /. float_of_int n_cmds
  in
  (* Reconfiguration phase: one membership rotation under no load. *)
  let rc0_m, rc0_b = snapshot cluster in
  let t_rc0 = Engine.now setup.Common.engine in
  cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5; 6; 7 ];
  (match
     Common.wait_for_live setup ~target:[ 3; 4; 5; 6; 7 ]
       ~deadline:(t_rc0 +. 60.0)
   with
   | Some _ -> ()
   | None -> ());
  (* Quiesce so retirement / final acks are included. *)
  let t_done = Engine.now setup.Common.engine in
  Common.run_to setup (t_done +. 1.0);
  let rc1_m, rc1_b = snapshot cluster in
  let dt_rc = Engine.now setup.Common.engine -. t_rc0 in
  let rc_m = float_of_int (rc1_m - rc0_m) -. (idle_m_per_s *. dt_rc) in
  let rc_b = float_of_int (rc1_b - rc0_b) -. (idle_b_per_s *. dt_rc) in
  (per_cmd_m, per_cmd_b, rc_m, rc_b, dt_rc -. 1.0)

let run ?(quick = false) () =
  let n_cmds = if quick then 200 else 1000 in
  let rows =
    List.map
      (fun proto ->
        let cmd_m, cmd_b, rc_m, rc_b, rc_t = run_one proto ~n_cmds in
        [
          Common.proto_name proto;
          Table.cell_f cmd_m;
          Table.cell_f cmd_b;
          Table.cell_f rc_m;
          Table.cell_f (rc_b /. 1024.0);
          Table.cell_f rc_t;
        ])
      [ Common.Core; Common.Stopworld; Common.Raft ]
  in
  Table.make ~id ~title
    ~headers:
      [ "protocol"; "msgs/cmd"; "bytes/cmd"; "msgs/reconf"; "KiB/reconf"; "reconf s" ]
    ~notes:
      [
        "5 replicas; 512-key state; full 5-node replacement; idle heartbeat \
         traffic subtracted";
        "expected shape: identical command cost for core/stopworld (same \
         static block); reconf cost dominated by snapshot chunks; raft pays \
         per-step config entries + snapshot catch-up";
      ]
    rows
