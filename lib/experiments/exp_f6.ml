(* F6 — Aggregate throughput vs shard count: the elasticity headline.

   Same machine pool, same multi-tenant workload, same batched client
   defaults (PR-8); only the number of composed shards varies.  Each
   shard is an independent epoch chain, so ordering work parallelises
   across shards while the replicated directory stays a single (cold
   path) service. *)

module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Counters = Rsmr_sim.Counters
module Registry_obs = Rsmr_obs.Registry
module Driver = Rsmr_workload.Driver
module Tenant = Rsmr_workload.Tenant
module Keyspace = Rsmr_shard.Keyspace
module Platform = Rsmr_shard.Platform

let id = "F6"
let title = "Aggregate throughput vs shard count (shared pool)"

(* Disjoint 3-node member sets over one pool: shard i starts on machines
   3i .. 3i+2. *)
let member_sets ~shards = List.init shards (fun i -> [ 3 * i; (3 * i) + 1; (3 * i) + 2 ])

(* Per-node NIC model (bytes/s): tight enough that a single leader's
   egress — command fan-out to its followers — is the bottleneck, which
   is exactly the resource sharding multiplies. *)
let nic = 2e6

let run_one ~shards ~tenants ~keys_per_tenant ~duration =
  let engine = Engine.create ~seed:61 () in
  let pool = List.init (3 * max 2 shards) (fun i -> i) in
  let pf =
    Platform.Core.create ~engine ~latency:Rsmr_net.Latency.lan ~bandwidth:nic
      ~pool
      ~shards:(member_sets ~shards)
      ~keyspace:
        (Keyspace.ranges ~shards ~n_keys:(tenants * keys_per_tenant))
      ()
  in
  let cluster = Platform.Core.cluster pf in
  let rng = Rng.split (Engine.rng engine) in
  (* Mild cross-tenant skew: enough heterogeneity to exercise routing,
     not enough to pin the aggregate to whichever shard owns the hottest
     tenants (F7 and dir_churn stress the skewed/imbalanced regimes). *)
  let gen =
    Tenant.create ~rng ~tenants ~keys_per_tenant ~tenant_theta:0.3
      ~value_size:256 ()
  in
  let net = Registry_obs.counters (Platform.Core.obs pf) "net" in
  (* Warmup: elect every shard's leader and settle the endpoints, so the
     measured window sees steady state, not startup redirect churn. *)
  let warm =
    Driver.run_closed ~cluster ~n_clients:4
      ~first_client_id:(Platform.Core.first_client_id pf)
      ~gen:(fun ~client:_ ~seq:_ -> Tenant.next gen)
      ~window:2 ~start:0.1 ~duration:1.0 ()
  in
  Engine.run engine ~until:1.5;
  ignore warm;
  let sent0 = Counters.get net "sent" in
  let bytes0 = Counters.get net "bytes_sent" in
  let t0 = Engine.now engine in
  let stats =
    Driver.run_closed ~cluster ~n_clients:16
      ~first_client_id:(Platform.Core.first_client_id pf + 8)
      ~gen:(fun ~client:_ ~seq:_ -> Tenant.next gen)
      ~window:8 ~start:(t0 +. 0.1) ~duration ()
  in
  Engine.run engine ~until:(t0 +. 0.1 +. duration +. 2.0);
  let sent = Counters.get net "sent" - sent0 in
  let bytes = Counters.get net "bytes_sent" - bytes0 in
  let n = max 1 stats.Driver.completed in
  ( float_of_int stats.Driver.completed /. duration,
    float_of_int sent /. float_of_int n,
    float_of_int bytes /. float_of_int n )

let run ?(quick = false) () =
  let counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let tenants = if quick then 20 else 50 in
  let keys_per_tenant = if quick then 50 else 100 in
  let duration = if quick then 3.0 else 8.0 in
  let results =
    List.map
      (fun shards ->
        (shards, run_one ~shards ~tenants ~keys_per_tenant ~duration))
      counts
  in
  let base =
    match results with (_, (thr, _, _)) :: _ -> thr | [] -> 1.0
  in
  let rows =
    List.map
      (fun (shards, (thr, mpc, bpc)) ->
        [
          string_of_int shards;
          Table.cell_f thr;
          Printf.sprintf "%.2fx" (thr /. base);
          Table.cell_f mpc;
          Table.cell_f bpc;
        ])
      results
  in
  Table.make ~id ~title
    ~headers:[ "shards"; "txn/s"; "speedup"; "msgs/cmd"; "bytes/cmd" ]
    ~notes:
      [
        Printf.sprintf
          "%d tenants x %d keys, Zipf(0.3) over tenants, Zipf(0.99) within; \
           16 clients, window 8, batched client defaults, %gMB/s NICs; %gs \
           measured window"
          tenants keys_per_tenant (nic /. 1e6) duration;
        "expected shape: near-linear txn/s growth 1->4 shards (independent \
         epoch chains); msgs/cmd roughly flat — the directory adds no \
         per-command traffic on the data path";
      ]
    rows
