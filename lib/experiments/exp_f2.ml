(* F2 — Client-perceived latency timeline across one full-fleet
   reconfiguration {0,1,2} -> {3,4,5}.
   The paper's availability claim in one picture: with speculative handoff
   the blip is about one leader election; stop-the-world also eats the
   state transfer; Raft performs three add + three remove steps. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Timeseries = Rsmr_sim.Timeseries
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule

let id = "F2"
let title = "Latency timeline across one fleet replacement"
let reconfig_at = 5.0

let run_one proto ~n_keys ~bandwidth =
  let members = [ 0; 1; 2 ] and universe = Common.default_universe 6 in
  let setup = Common.make ~seed:11 ~bandwidth proto ~members ~universe in
  Driver.preload ~cluster:setup.Common.cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys ~value_size:100)
    ~deadline:120.0 ();
  let t0 = Engine.now setup.Common.engine in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen =
    Kv_gen.create ~rng ~keys:(Keys.uniform ~n:n_keys) ~read_ratio:0.8 ()
  in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:6
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5)
      ~duration:(reconfig_at +. 5.0)
      ()
  in
  Schedule.reconfigure_at setup.Common.cluster ~time:(t0 +. reconfig_at)
    [ 3; 4; 5 ];
  Common.run_to setup (t0 +. reconfig_at +. 40.0);
  (t0, stats)

let run ?(quick = false) () =
  let n_keys = if quick then 1_000 else 10_000 in
  let bandwidth = 2.5e7 (* 200 Mb/s: makes the transfer cost visible *) in
  let protos = [ Common.Core; Common.Matchmaker; Common.Stopworld; Common.Raft ] in
  let results =
    List.map (fun p -> (p, run_one p ~n_keys ~bandwidth)) protos
  in
  (* Timeline rows: max latency per 0.5 s bucket, relative to reconfig. *)
  let buckets = [ -1.0; -0.5; 0.0; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ] in
  let timeline_rows =
    List.map
      (fun lo ->
        let cells =
          List.map
            (fun (_, (t0, stats)) ->
              let abs_lo = t0 +. reconfig_at +. lo in
              let width = if lo >= 2.0 then 1.0 else 0.5 in
              match
                Timeseries.max_in_window stats.Driver.completions ~lo:abs_lo
                  ~hi:(abs_lo +. width)
              with
              | Some v -> Table.cell_ms v
              | None -> "outage")
            results
        in
        Printf.sprintf "%+.1fs" lo :: cells)
      buckets
  in
  let summary =
    "max-over-run"
    :: List.map
         (fun (_, (t0, stats)) ->
           Table.cell_ms (Common.downtime stats ~from_:(t0 +. reconfig_at) ~window:30.0))
         results
  in
  Table.make ~id ~title
    ~headers:("t-reconfig" :: List.map Common.proto_name protos)
    ~notes:
      [
        Printf.sprintf
          "max client latency per bucket; %d keys x 100B preloaded; 200Mb/s uplinks"
          n_keys;
        "expected shape: core blip ~ election; matchmaker ~ core at these \
         LAN RTTs (the prepare head start is one commit round, sub-ms here \
         — the WAN reconfig probe in the bench JSON is where it shows); \
         stopworld ~ election+transfer; raft small blips per membership \
         step";
      ]
    (timeline_rows @ [ summary ])
