(* F3 — Throughput under continuous reconfiguration churn.
   Rolling membership rotations at increasing rates; the protocol that
   overlaps ordering with transfer should degrade most gently. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule

let id = "F3"
let title = "Throughput vs reconfiguration churn rate"

let run_one proto ~period ~duration =
  let universe = Common.default_universe 8 in
  let members = [ 0; 1; 2 ] in
  let setup = Common.make ~seed:13 proto ~members ~universe in
  Driver.preload ~cluster:setup.Common.cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:2_000 ~value_size:100)
    ~deadline:60.0 ();
  let t0 = Engine.now setup.Common.engine in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:2_000) ~read_ratio:0.8 () in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:6
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration ()
  in
  (match period with
   | Some p ->
     let count = int_of_float (duration /. p) in
     Schedule.periodic_reconfigure setup.Common.cluster ~universe ~size:3
       ~start:(t0 +. 1.0) ~period:p ~count
   | None -> ());
  Common.run_to setup (t0 +. duration +. 30.0);
  float_of_int stats.Driver.completed /. duration

let run ?(quick = false) () =
  let duration = if quick then 6.0 else 20.0 in
  let periods =
    if quick then [ None; Some 3.0 ]
    else [ None; Some 10.0; Some 5.0; Some 2.0; Some 1.0 ]
  in
  let protos = [ Common.Core; Common.Matchmaker; Common.Stopworld; Common.Raft ] in
  let baseline = Hashtbl.create 4 in
  let rows =
    List.map
      (fun period ->
        let rate =
          match period with
          | None -> "0"
          | Some p -> Table.cell_f (60.0 /. p)
        in
        let cells =
          List.concat_map
            (fun proto ->
              let thr = run_one proto ~period ~duration in
              (match period with
               | None -> Hashtbl.replace baseline proto thr
               | Some _ -> ());
              let rel =
                match Hashtbl.find_opt baseline proto with
                | Some b when b > 0.0 -> Table.cell_f (100.0 *. thr /. b) ^ "%"
                | _ -> "-"
              in
              [ Table.cell_f thr; rel ])
            protos
        in
        rate :: cells)
      periods
  in
  Table.make ~id ~title
    ~headers:
      ("reconfigs/min"
       :: List.concat_map
            (fun p -> [ Common.proto_name p ^ " txn/s"; "rel" ])
            protos)
    ~notes:
      [
        "rolling replacement of one membership slot per reconfiguration";
        "expected shape: core and matchmaker degrade gently; stopworld \
         collapses at high churn";
      ]
    rows
