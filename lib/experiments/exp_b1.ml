(* B1 — Leader-side batching ablation in the static building block.
   One Accept_multi per flush window instead of one Accept broadcast per
   command: messages per command drop with the window; median latency pays
   about half the window.  Exercises the knob composed services inherit
   through ?smr_params. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Counters = Rsmr_sim.Counters
module Params = Rsmr_smr.Params
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv)

let id = "B1"
let title = "Batching ablation: window vs messages/command vs latency"

let run_one ~batch_delay ~rate ~duration =
  let engine = Engine.create ~seed:51 () in
  let params = { Params.default with Params.batch_delay } in
  let svc =
    KvCore.create ~engine ~smr_params:params ~members:[ 0; 1; 2 ] ()
  in
  let cluster = KvCore.cluster svc in
  let rng = Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:1_000) ~read_ratio:0.5 () in
  (* Warm up the leader, then snapshot counters around the loaded window. *)
  Engine.run ~until:1.0 engine;
  let net = Rsmr_obs.Registry.counters cluster.Rsmr_iface.Cluster.obs "net" in
  let m0 = Counters.get net "sent" in
  let stats =
    Driver.run_open ~cluster ~n_clients:16 ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~rate ~start:1.0 ~duration ()
  in
  Engine.run ~until:(1.0 +. duration +. 3.0) engine;
  let m1 = Counters.get net "sent" in
  let msgs_per_cmd =
    float_of_int (m1 - m0) /. float_of_int (max 1 stats.Driver.completed)
  in
  ( float_of_int stats.Driver.completed /. duration,
    msgs_per_cmd,
    Histogram.percentile stats.Driver.latency 50.0,
    Histogram.percentile stats.Driver.latency 99.0 )

let run ?(quick = false) () =
  let duration = if quick then 2.0 else 5.0 in
  let rate = 2000.0 in
  let windows = [ 0.0; 0.001; 0.002; 0.005 ] in
  let rows =
    List.map
      (fun batch_delay ->
        let thr, mpc, p50, p99 = run_one ~batch_delay ~rate ~duration in
        [
          (if batch_delay = 0.0 then "off"
           else Printf.sprintf "%.0fms" (batch_delay *. 1e3));
          Table.cell_f thr;
          Table.cell_f mpc;
          Table.cell_ms p50;
          Table.cell_ms p99;
        ])
      windows
  in
  Table.make ~id ~title
    ~headers:[ "window"; "goodput/s"; "msgs/cmd"; "p50"; "p99" ]
    ~notes:
      [
        "core service over batched Multi-Paxos; open loop 2000 req/s, 3 \
         replicas (message count includes client and heartbeat traffic)";
        "expected shape: msgs/cmd falls toward the floor as the window \
         grows; p50 rises by ~ half the window";
      ]
    rows
