(** Block interchangeability: composition over Multi-Paxos vs VR. *)

val id : string
val title : string

val run : ?quick:bool -> unit -> Table.t
(** [quick] shrinks durations/sweeps for smoke runs (default [false]). *)
