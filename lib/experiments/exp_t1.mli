(** Messages / bytes per command and per reconfiguration. *)

val id : string
val title : string

val run : ?quick:bool -> unit -> Table.t
(** [quick] shrinks durations/sweeps for smoke runs (default [false]). *)
