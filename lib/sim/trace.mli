(** Structured trace bus.

    Protocol code publishes events; tests, invariant checkers, the span
    collector and the history recorder subscribe.  Keeping the bus inside
    the simulator (as opposed to printing) lets checkers see exactly what
    happened in a run without parsing text.

    Events carry a {e typed} topic and structured [attrs] key/value
    fields; [message] is for humans only.  Anything downstream tooling
    consumes (span reconstruction, per-epoch accounting) must travel in
    [attrs], never be parsed back out of [message]. *)

type level = Debug | Info | Warn

type topic =
  [ `Paxos       (** consensus-block internals (elections, proposals) *)
  | `Vr          (** viewstamped-replication block internals *)
  | `Raft        (** baseline Raft internals *)
  | `Reconfig    (** epoch lifecycle: wedge, bootstrap, activation *)
  | `Net         (** network-level events *)
  | `Client      (** client endpoint events *)
  | `Lifecycle   (** per-command lifecycle events consumed by spans *)
  | `Other of string ]

val topic_name : topic -> string
(** Stable lowercase name ("paxos", "lifecycle", ...); [`Other s] maps to
    [s]. *)

type event = {
  time : float;
  node : int;          (** -1 when not attributable to a node *)
  topic : topic;
  level : level;
  message : string;    (** human-readable; never parsed by tooling *)
  attrs : (string * string) list;  (** structured fields, for tooling *)
}

type t

val create : unit -> t

val active : t -> bool
(** True when someone is listening (a subscriber is attached or retention
    is on).  Emit sites that would allocate to build [attrs] should guard
    on this so an unobserved run pays nothing. *)

val emit :
  t ->
  time:float ->
  node:int ->
  topic:topic ->
  ?level:level ->
  ?attrs:(string * string) list ->
  string ->
  unit

val subscribe : t -> (event -> unit) -> unit
(** Subscribers are invoked synchronously, in subscription order. *)

val keep : t -> bool -> unit
(** [keep t true] retains events in memory for later inspection (off by
    default, to keep long benchmark runs cheap). *)

val events : t -> event list
(** Retained events, oldest first. *)

val count : t -> topic:topic -> int
(** Number of emitted events on [topic] (counted even when retention is
    off). *)

val attr : event -> string -> string option
(** [attr ev k] looks up a structured field. *)

val pp_event : Format.formatter -> event -> unit
