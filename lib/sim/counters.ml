type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let handle t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let add t name n =
  let r = handle t name in
  r := !r + n

let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Zero the cells in place rather than clearing the table, so handles
   obtained before the reset keep counting into the same set. *)
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v)
    ppf (to_list t)
