(* FNV-1a, 64-bit.  The repository's one sanctioned content hash for
   protocol state: unlike [Hashtbl.hash] it has a pinned published
   definition (offset basis 0xcbf29ce484222325, prime 0x100000001b3),
   hashes every byte it is given (no depth/size truncation), and is
   independent of the OCaml heap representation — so a fingerprint
   computed from a canonical encoding is stable across runs, word
   sizes and compiler versions. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L
let empty = offset_basis

let combine h s =
  let h = ref h in
  for i = 0 to String.length s - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) prime
  done;
  !h

(* Fold the length in first so concatenation cannot alias:
   ["ab"] ++ ["c"] and ["a"] ++ ["bc"] chain to different digests. *)
let combine_framed h s =
  let h = combine h (string_of_int (String.length s)) in
  combine (combine h "\x00") s

let hash s = combine offset_basis s

let of_parts parts =
  List.fold_left (fun h part -> combine_framed h part) offset_basis parts

let to_hex h = Printf.sprintf "%016Lx" h

let of_hex s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v -> Some v
  | None -> None
