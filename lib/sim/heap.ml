(* Parallel-array layout: [times] is an unboxed float array and [seqs] a
   plain int array, so key comparisons during sifts touch no boxed
   records; [payloads] holds the scheduled closures.  Payload slots are
   ['a option] so a vacated slot can be cleared to [None] on pop — the
   previous record-array layout left the popped entry reachable at
   [data.(len)], pinning an arbitrary closure (and everything it
   captured) until the slot happened to be overwritten. *)
type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a option array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; payloads = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let payload = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- payload

let resize t ncap =
  let times = Array.make ncap 0.0 in
  let seqs = Array.make ncap 0 in
  let payloads = Array.make ncap None in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let push t ~time ~seq payload =
  if t.len = Array.length t.times then
    resize t (max 16 (2 * Array.length t.times));
  t.times.(t.len) <- time;
  t.seqs.(t.len) <- seq;
  t.payloads.(t.len) <- Some payload;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while !i > 0 && less t !i ((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    swap t !i p;
    i := p
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t l !smallest then smallest := l;
    if r < t.len && less t r !smallest then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap t !i !smallest;
      i := !smallest
    end
  done

(* Hand storage back after bursts: when occupancy falls below a quarter
   of capacity, halve the arrays (with a floor so steady-state queues
   never thrash). *)
let maybe_shrink t =
  let cap = Array.length t.times in
  if cap > 64 && t.len * 4 < cap then resize t (cap / 2)

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let payload = t.payloads.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.times.(0) <- t.times.(t.len);
      t.seqs.(0) <- t.seqs.(t.len);
      t.payloads.(0) <- t.payloads.(t.len);
      sift_down t
    end;
    (* Clear the vacated slot so the payload is collectable immediately. *)
    t.payloads.(t.len) <- None;
    maybe_shrink t;
    match payload with
    | Some p -> Some (time, seq, p)
    | None -> None (* live slots are always [Some]; defensive only *)
  end

let peek t =
  if t.len = 0 then None
  else
    match t.payloads.(0) with
    | Some p -> Some (t.times.(0), t.seqs.(0), p)
    | None -> None

let iter t f =
  for i = 0 to t.len - 1 do
    match t.payloads.(i) with
    | Some p -> f t.times.(i) t.seqs.(i) p
    | None -> ()
  done

let to_sorted_list t =
  let acc = ref [] in
  iter t (fun time seq p -> acc := (time, seq, p) :: !acc);
  List.sort
    (fun (t1, s1, _) (t2, s2, _) ->
      match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
    !acc
