(** Deterministic discrete-event simulation engine.

    The engine owns virtual time (in seconds), an event queue, and the root
    random generator.  All protocol code runs inside event callbacks; a
    callback may schedule further events, send messages (via {!Rsmr_net}),
    and so on.  Execution is single-threaded and, for a fixed seed and
    program, bit-for-bit reproducible. *)

type t

type timer
(** Handle for a scheduled event, usable with {!cancel}. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh engine.  Default seed is 1. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator.  Components should [Rng.split] it at
    construction time rather than drawing from it during the run. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. *)

val at : t -> time:float -> (unit -> unit) -> timer
(** [at t ~time f] runs [f] at absolute virtual time [time] (clamped to
    be no earlier than [now t]). *)

val cancel : t -> timer -> unit
(** Cancel a pending event; cancelling a fired or cancelled timer is a
    no-op. *)

val is_pending : timer -> bool

val step : t -> bool
(** Execute the next event.  Returns [false] if the queue was empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue, stopping when it empties, when virtual time
    would exceed [until], or after [max_events] callbacks.  Events beyond
    [until] remain queued. *)

val events_executed : t -> int
(** Number of callbacks executed so far — a cheap determinism probe. *)

val next_event_time : t -> float option
(** Virtual time of the next event that will actually run, discarding any
    cancelled timers found at the head of the queue.  [None] when the
    queue holds no live event. *)

val run_until : t -> pred:(unit -> bool) -> deadline:float -> float option
(** Step the engine until [pred ()] holds, checking before every event.
    Returns the virtual time at which the predicate first held, or [None]
    when the queue drained or the next event would pass [deadline] (the
    clock is advanced to [deadline] in that case, pending events stay
    queued).  This is the quiescence probe used by the crucible runner:
    unlike polling with a fixed horizon, it observes the predicate at
    event granularity and never overshoots. *)
