(** Deterministic discrete-event simulation engine.

    The engine owns virtual time (in seconds), an event queue, and the root
    random generator.  All protocol code runs inside event callbacks; a
    callback may schedule further events, send messages (via {!Rsmr_net}),
    and so on.  Execution is single-threaded and, for a fixed seed and
    program, bit-for-bit reproducible.

    {2 Timer lifecycle}

    Every timer is in exactly one of three states — pending, fired, or
    cancelled — and the transitions are one-way: a pending timer either
    fires (its callback runs) or is cancelled, and nothing ever leaves
    the two terminal states.  Concretely:

    - {!cancel} on an already-fired timer is a no-op that does {e not}
      reclassify it: the timer stays [`Fired] and still counts in
      {!events_executed}.  Callers cancelling defensively (e.g. a
      heartbeat being torn down from inside its own callback) get the
      obvious behaviour.
    - Two events scheduled for the same virtual instant run in
      scheduling order (FIFO by sequence number).  In particular
      [schedule ~delay:0.0] runs {e after} every event already queued
      for the current instant, never before — a zero-delay hand-off
      cannot jump the queue.

    These semantics are what the model checker's enabled-set relies on
    (a choice is either still available or definitively consumed), and
    they are pinned by regression tests in [test/test_sim.ml]. *)

type t

type timer
(** Handle for a scheduled event, usable with {!cancel}. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh engine.  Default seed is 1. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator.  Components should [Rng.split] it at
    construction time rather than drawing from it during the run. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. *)

val at : t -> time:float -> (unit -> unit) -> timer
(** [at t ~time f] runs [f] at absolute virtual time [time] (clamped to
    be no earlier than [now t]). *)

val cancel : t -> timer -> unit
(** Cancel a pending event.  Cancelling a fired or already-cancelled
    timer is a no-op — the timer keeps its terminal state. *)

val is_pending : timer -> bool

val timer_state : timer -> [ `Pending | `Fired | `Cancelled ]
(** Observable lifecycle state, mainly for tests and the checker's
    enabled-set bookkeeping. *)

val timer_id : timer -> int
(** The engine-unique sequence number identifying this timer — the same
    id {!enabled} reports and {!fire} consumes. *)

val step : t -> bool
(** Execute the next event.  Returns [false] if the queue was empty.
    Popping a dead (fired or cancelled) entry returns [true] without
    running anything and without advancing the clock — dead entries
    have no meaningful priority. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue, stopping when it holds no live event, when
    virtual time would exceed [until], or after [max_events] executed
    callbacks (dead entries do not consume budget).  Events beyond
    [until] remain queued. *)

val events_executed : t -> int
(** Number of callbacks executed so far — a cheap determinism probe. *)

val pending_count : t -> int
(** Number of live pending timers, in O(1).  Part of the model
    checker's state fingerprint (the {e count} of outstanding timers is
    state; their absolute due-times are not, see DESIGN.md §11). *)

val next_event_time : t -> float option
(** Virtual time of the next event that will actually run, discarding any
    dead timers found at the head of the queue.  [None] when the
    queue holds no live event. *)

val run_until : t -> pred:(unit -> bool) -> deadline:float -> float option
(** Step the engine until [pred ()] holds, checking before every event.
    Returns the virtual time at which the predicate first held, or [None]
    when the queue drained or the next event would pass [deadline] (the
    clock is advanced to [deadline] in that case, pending events stay
    queued).  This is the quiescence probe used by the crucible runner:
    unlike polling with a fixed horizon, it observes the predicate at
    event granularity and never overshoots. *)

(** {2 Choice-point mode}

    The model checker does not pop events by virtual time; it reads the
    set of enabled events and decides which fires next.  The engine
    stays in whatever mode its caller uses — these functions compose
    with the normal API (a test can [run] to quiescence and then start
    choosing). *)

val enabled : t -> (int * float) list
(** All pending timers as [(id, due_time)] pairs, sorted by
    [(due_time, id)] — the order {!run} would execute them.  Fired and
    cancelled timers never appear. *)

val fire : t -> seq:int -> bool
(** [fire t ~seq] runs the pending timer with id [seq] now, advancing
    virtual time to [max (now t) due] (time never rewinds, even when
    the checker fires events out of due-time order).  Returns [false]
    if no pending timer has that id — a stale choice replayed against a
    diverged state, which callers should treat as a hard error. *)
