type timer = { mutable live : bool; cb : unit -> unit }

type t = {
  mutable time : float;
  mutable seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
  mutable executed : int;
}

let create ?(seed = 1) () =
  { time = 0.0; seq = 0; queue = Heap.create (); root_rng = Rng.create seed; executed = 0 }

let now t = t.time
let rng t = t.root_rng

let at t ~time f =
  let time = if time < t.time then t.time else time in
  let timer = { live = true; cb = f } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~time ~seq:t.seq timer;
  timer

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(t.time +. delay) f

let cancel _t timer = timer.live <- false
let is_pending timer = timer.live

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, timer) ->
    t.time <- time;
    if timer.live then begin
      timer.live <- false;
      t.executed <- t.executed + 1;
      timer.cb ()
    end;
    true

let rec next_event_time t =
  match Heap.peek t.queue with
  | None -> None
  | Some (time, _, timer) ->
    if timer.live then Some time
    else begin
      (* Cancelled timers are inert; discard them so the answer is the
         time of the next event that will actually run. *)
      ignore (Heap.pop t.queue);
      next_event_time t
    end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _, _) ->
      (match until with
       | Some u when time > u ->
         (* Advance the clock to the horizon so repeated bounded runs
            observe monotonic time, but leave the event queued. *)
         t.time <- u;
         continue := false
       | _ ->
         ignore (step t);
         decr budget)
  done

let events_executed t = t.executed

let run_until t ~pred ~deadline =
  let rec loop () =
    if pred () then Some t.time
    else
      match next_event_time t with
      | None -> None
      | Some time when time > deadline ->
        t.time <- deadline;
        None
      | Some _ ->
        ignore (step t);
        loop ()
  in
  loop ()
