(* Timer lifecycle is a one-way tri-state machine:

     Pending --cancel--> Cancelled
     Pending --fire----> Fired

   [Fired] and [Cancelled] are terminal and distinct: cancelling a timer
   that has already run is a no-op that does NOT reclassify it, so
   callers (and the model checker's enabled-set) can always tell "this
   event happened" from "this event was suppressed".  Heap entries for
   non-pending timers are inert and discarded lazily. *)

type timer_state = Pending | Fired | Cancelled

type timer = {
  mutable state : timer_state;
  cb : unit -> unit;
  id : int;
  due : float; (* absolute virtual time, already clamped to >= now *)
}

type t = {
  mutable time : float;
  mutable seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
  mutable executed : int;
  mutable pending : int;
      (* live [Pending] timers in [queue]; drives lazy compaction so
         choice-mode runs (which never pop) do not accrete dead
         entries without bound *)
}

let create ?(seed = 1) () =
  {
    time = 0.0;
    seq = 0;
    queue = Heap.create ();
    root_rng = Rng.create seed;
    executed = 0;
    pending = 0;
  }

let now t = t.time
let rng t = t.root_rng

let at t ~time f =
  let time = if time < t.time then t.time else time in
  t.seq <- t.seq + 1;
  let timer = { state = Pending; cb = f; id = t.seq; due = time } in
  Heap.push t.queue ~time ~seq:t.seq timer;
  t.pending <- t.pending + 1;
  timer

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(t.time +. delay) f

let cancel t timer =
  if timer.state = Pending then begin
    timer.state <- Cancelled;
    t.pending <- t.pending - 1
  end

let is_pending timer = timer.state = Pending

let timer_state timer =
  match timer.state with
  | Pending -> `Pending
  | Fired -> `Fired
  | Cancelled -> `Cancelled

let timer_id timer = timer.id

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, timer) ->
    if timer.state = Pending then begin
      t.time <- time;
      timer.state <- Fired;
      t.pending <- t.pending - 1;
      t.executed <- t.executed + 1;
      timer.cb ()
    end;
    (* A non-pending head is inert: popping it must not advance the
       clock (its priority no longer means anything), only reclaim the
       slot.  Either way an entry left the queue, so report progress. *)
    true

let rec next_event_time t =
  match Heap.peek t.queue with
  | None -> None
  | Some (time, _, timer) ->
    if timer.state = Pending then Some time
    else begin
      (* Dead timers are inert; discard them so the answer is the time
         of the next event that will actually run. *)
      ignore (Heap.pop t.queue);
      next_event_time t
    end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match next_event_time t with
    | None -> continue := false
    | Some time ->
      (match until with
       | Some u when time > u ->
         (* Advance the clock to the horizon so repeated bounded runs
            observe monotonic time, but leave the event queued. *)
         t.time <- u;
         continue := false
       | _ ->
         ignore (step t);
         decr budget)
  done

let events_executed t = t.executed
let pending_count t = t.pending

let run_until t ~pred ~deadline =
  let rec loop () =
    if pred () then Some t.time
    else
      match next_event_time t with
      | None -> None
      | Some time when time > deadline ->
        t.time <- deadline;
        None
      | Some _ ->
        ignore (step t);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Choice-point mode: instead of popping by virtual time, a model
   checker reads the enabled set and picks which pending timer fires
   next.  Entries for fired/cancelled timers stay in the heap until a
   compaction pass; they are filtered here and never observable. *)

(* Rebuild the heap from its pending entries once dead ones dominate.
   Without this, a long choice-mode exploration (which never calls
   [step], hence never pops) would scan an ever-growing array in every
   [enabled] call. *)
let compact t =
  if Heap.size t.queue > 64 && Heap.size t.queue > 2 * t.pending then begin
    let live = ref [] in
    let rec drain () =
      match Heap.pop t.queue with
      | None -> ()
      | Some (time, seq, timer) ->
        if timer.state = Pending then live := (time, seq, timer) :: !live;
        drain ()
    in
    drain ();
    List.iter
      (fun (time, seq, timer) -> Heap.push t.queue ~time ~seq timer)
      !live
  end

let enabled t =
  compact t;
  List.filter_map
    (fun (_, seq, timer) ->
      if timer.state = Pending then Some (seq, timer.due) else None)
    (Heap.to_sorted_list t.queue)

let fire t ~seq =
  let found = ref None in
  Heap.iter t.queue (fun _ s timer ->
      if s = seq && timer.state = Pending then found := Some timer);
  match !found with
  | None -> false
  | Some timer ->
    (* Time is monotonic even under out-of-order firing: jumping to an
       event scheduled before the current instant would make [now]
       rewind, so clamp.  Firing in enabled-set order never clamps. *)
    if timer.due > t.time then t.time <- timer.due;
    timer.state <- Fired;
    t.pending <- t.pending - 1;
    t.executed <- t.executed + 1;
    timer.cb ();
    true
