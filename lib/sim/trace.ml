type level = Debug | Info | Warn

type topic =
  [ `Paxos
  | `Vr
  | `Raft
  | `Reconfig
  | `Net
  | `Client
  | `Lifecycle
  | `Other of string ]

let topic_name = function
  | `Paxos -> "paxos"
  | `Vr -> "vr"
  | `Raft -> "raft"
  | `Reconfig -> "reconfig"
  | `Net -> "net"
  | `Client -> "client"
  | `Lifecycle -> "lifecycle"
  | `Other s -> s

type event = {
  time : float;
  node : int;
  topic : topic;
  level : level;
  message : string;
  attrs : (string * string) list;
}

type t = {
  mutable subscribers : (event -> unit) list;
  mutable retained : event list;  (* newest first *)
  mutable retain : bool;
  counts : (string, int ref) Hashtbl.t;
}

let create () =
  { subscribers = []; retained = []; retain = false; counts = Hashtbl.create 16 }

let active t = t.retain || t.subscribers <> []

let emit t ~time ~node ~topic ?(level = Info) ?(attrs = []) message =
  let ev = { time; node; topic; level; message; attrs } in
  let name = topic_name topic in
  (match Hashtbl.find_opt t.counts name with
   | Some r -> incr r
   | None -> Hashtbl.add t.counts name (ref 1));
  if t.retain then t.retained <- ev :: t.retained;
  List.iter (fun f -> f ev) (List.rev t.subscribers)

let subscribe t f = t.subscribers <- f :: t.subscribers
let keep t b = t.retain <- b
let events t = List.rev t.retained

let count t ~topic =
  match Hashtbl.find_opt t.counts (topic_name topic) with
  | Some r -> !r
  | None -> 0

let attr ev key = List.assoc_opt key ev.attrs

let pp_level ppf = function
  | Debug -> Format.pp_print_string ppf "debug"
  | Info -> Format.pp_print_string ppf "info"
  | Warn -> Format.pp_print_string ppf "warn"

let pp_event ppf ev =
  Format.fprintf ppf "[%.6f] n%d %s/%a: %s" ev.time ev.node
    (topic_name ev.topic) pp_level ev.level ev.message;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) ev.attrs
