(** Binary min-heap keyed by (time, sequence) pairs, used as the engine's
    event queue.  Entries carry an integer id so they can be cancelled
    lazily. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert a payload at the given priority.  Ties on [time] break on
    [seq], so FIFO order among simultaneous events is preserved. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum entry, or [None] if empty.  The popped
    payload is unreachable from the heap afterwards (the vacated slot is
    cleared), and capacity shrinks once occupancy drops below a quarter
    of it — a burst of scheduled events does not pin memory for the rest
    of the run. *)

val peek : 'a t -> (float * int * 'a) option

val iter : 'a t -> (float -> int -> 'a -> unit) -> unit
(** Visit every live entry in unspecified (array) order.  The callback
    must not push to or pop from the heap. *)

val to_sorted_list : 'a t -> (float * int * 'a) list
(** Non-destructive snapshot of all entries sorted by [(time, seq)] —
    the exact order {!pop} would yield them.  Used by the model
    checker's enabled-set enumeration, where the queue must be observed
    without being drained. *)
