(* Deterministic iteration over hash tables.  Protocol code must not let
   Hashtbl's bucket order leak into message order, commit order or log
   output (rsmr-lint rule R1 "hashtbl-iteration"); these helpers snapshot
   the key set, sort it, and visit bindings in that order. *)

(* lint: order-insensitive — collects keys only; the sort fixes the order *)
let sorted_keys ~compare tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let iter_sorted ~compare f tbl =
  List.iter
    (fun k -> match Hashtbl.find_opt tbl k with Some v -> f k v | None -> ())
    (sorted_keys ~compare tbl)

let fold_sorted ~compare f tbl init =
  List.fold_left
    (fun acc k ->
      match Hashtbl.find_opt tbl k with Some v -> f k v acc | None -> acc)
    init
    (sorted_keys ~compare tbl)
