(** FNV-1a 64-bit content hashing — the sanctioned digest for protocol
    state.

    Fingerprinting and applied-prefix digests must hash {e canonical
    encodings} (bytes produced by the codec layer), never OCaml values
    via [Hashtbl.hash]: the structural hash truncates deep/large values,
    conflates distinct closures, and its result depends on the heap
    representation.  rsmr-lint's [state-hash] rule bans structural
    hashing in protocol scope; this module is what to use instead. *)

val empty : int64
(** The offset basis — the digest of zero bytes, and the seed every
    chain starts from. *)

val hash : string -> int64
(** [hash s] is the FNV-1a digest of the bytes of [s]. *)

val combine : int64 -> string -> int64
(** [combine h s] continues an FNV-1a chain: feeds the bytes of [s]
    into running digest [h]. *)

val combine_framed : int64 -> string -> int64
(** Like {!combine} but folds the length of [s] in first, so adjacent
    parts cannot alias across their boundary ("ab"+"c" vs "a"+"bc").
    Use this when chaining variable-length fields. *)

val of_parts : string list -> int64
(** Framed digest of a part list: [of_parts ps] folds each part with
    {!combine_framed} from the offset basis. *)

val to_hex : int64 -> string
(** 16-digit lowercase hex, zero-padded — the external fingerprint
    form used in frontier files and counterexample traces. *)

val of_hex : string -> int64 option
(** Inverse of {!to_hex}; [None] on malformed input. *)
