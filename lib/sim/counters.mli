(** Named integer counters for run-level accounting (messages sent, bytes
    transferred, commands committed, ...). *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int

val handle : t -> string -> int ref
(** The cell behind [name], created at zero if absent.  Hot paths can
    resolve a counter once and bump the ref directly, skipping the hash
    lookup that {!incr}/{!add} pay on every call.  The cell stays live
    across {!reset} (which zeroes it in place). *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit
(** Zero every counter in place; handles remain valid. *)

val pp : Format.formatter -> t -> unit
