type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod bound in
    if v - r + (bound - 1) >= 0 then r else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = p > 0.0 && float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let uniform_in t lo hi = lo +. float t (hi -. lo)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | x :: _ as l -> (
    match List.nth_opt l (int t (List.length l)) with
    | Some y -> y
    | None -> x (* unreachable: int t n < n *))
