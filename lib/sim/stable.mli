(** Deterministic (sorted-key) iteration over [Hashtbl.t].

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in bucket order, which
    depends on insertion history and the hash function — replaying a run
    bit-for-bit forbids that order from reaching anything observable.
    Protocol libraries use these wrappers instead (rsmr-lint rule R1). *)

val sorted_keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys of the table, sorted by [compare]. *)

val iter_sorted :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~compare f tbl] applies [f] to the current bindings in
    ascending key order.  Keys added by [f] itself are not visited. *)

val fold_sorted :
  compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** Fold over the current bindings in ascending key order. *)
