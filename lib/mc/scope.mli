(** A bounded scope: the finite box of behaviours Scope exhausts.

    Explicit-state checking of a live implementation cannot enumerate
    an unbounded system, so every dimension of nondeterminism carries a
    budget.  Within those budgets the explorer visits {e every}
    reachable state — the claim "0 violations" means "no reachable
    violation within this scope", in the small-scope-hypothesis sense
    the TLA+ specs of comparable protocols rely on. *)

type t = {
  nodes : int;  (** initial member count (ids [1..nodes]) *)
  spare : int;  (** extra universe nodes reconfigurations can pull in *)
  reconfigs : int;  (** membership changes the admin may submit *)
  commands : int;  (** client commands that may be submitted *)
  crashes : int;  (** crash choices along one path *)
  drops : int;  (** message-loss choices along one path *)
  max_inflight : int;
      (** timer choices are suppressed while this many messages are
          queued — the in-flight bound that keeps heartbeat/resend
          traffic from growing queues without end *)
  timer_width : int;
      (** how many of the earliest pending timers are offered as
          choices at each state (1 = fire timers in due order only).
          Must be wide enough that a useful timer behind stale ones —
          e.g. a client retry behind two never-fired follower election
          timeouts — is still reachable. *)
  timer_fires : int;
      (** total timer choices along one path.  This is the budget that
          makes the state space finite: every message chain is either
          seeded by a scripted submission or by a timer fire, and
          without it repeated elections would grow ballot numbers (and
          so fingerprints) without bound. *)
  depth : int;
      (** maximum choices along one path — a termination backstop, not
          the primary bound; sized so budget-limited paths run out of
          enabled choices before they run out of depth *)
  batch : int;
      (** batching width under check: 0 (the presets) runs the stack
          with batching and client coalescing off — the historical
          checked configuration; [batch] ≥ 2 turns on the proposal
          window with [batch_max = batch] and client coalescing, so the
          multi-command slot path itself is inside the scope *)
}

val minimal : t
(** 3 nodes + 1 spare, 2 epochs (1 reconfiguration), 2 commands, one
    message loss, no crashes — the acceptance scope, exhaustible in CI. *)

val small : t
(** Adds a second reconfiguration, a crash budget and a deeper timer
    budget (enough for heartbeats and full epoch-1 activation);
    for longer soaks. *)

val initial_members : t -> int list
val universe : t -> int list

val reconfig_members : t -> int -> int list
(** Member set the [r]-th scripted reconfiguration moves to: the
    membership window rotated [r+1] places along the universe, so each
    change retires one member and bootstraps one new one. *)

val parse : string -> (t, string) result
(** ["minimal"], ["small"], or either followed by comma-separated
    [key=value] overrides (e.g. ["minimal,commands=1,depth=20"]; a bare
    override list starts from [minimal]). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
