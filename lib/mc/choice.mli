(** The model checker's choice alphabet.

    A state's outgoing transitions are the enabled choices the harness
    reports; a {e path} is the choice sequence from the initial state.
    Since the whole system is deterministic given the choices (seeded
    RNG, virtual time), a path IS a state — counterexamples are stored
    and replayed as choice sequences, bit-for-bit. *)

type t =
  | Deliver of { src : int; dst : int }
      (** Deliver the head of the directed link's FIFO queue. *)
  | Drop of { src : int; dst : int }
      (** Lose the head of the directed link's FIFO queue. *)
  | Timer of { seq : int }
      (** Fire the pending engine timer with this id. *)
  | Crash of int
  | Recover of int
  | Client_op of { op : int }  (** Submit the [op]-th scripted command. *)
  | Reconfig of { r : int }
      (** Submit the [r]-th scripted membership change. *)

val equal : t -> t -> bool

val to_token : t -> string
(** Compact shell-safe token, e.g. ["d1-2"], ["t17"]. *)

val of_token : string -> t option

val seq_to_string : t list -> string
(** [";"]-joined tokens — the trace format of counterexample files,
    frontier entries and [--replay]. *)

val seq_of_string : string -> t list option
[@@rsmr.deterministic]
(** Inverse of {!seq_to_string}; [None] on any malformed token. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering for counterexample traces. *)
