module Fnv = Rsmr_sim.Fnv

type t = int64

let of_string = Fnv.hash

(* Canonical key/value digest: bindings are sorted by key (then value,
   so duplicate keys are canonical too) before hashing, so a
   fingerprint assembled from independently-collected parts does not
   depend on the order the parts were gathered in.  Keys and values are
   length-framed, so neither ("ab","c")/("a","bc") nor key/value
   boundary shifts can alias. *)
let of_kv kvs =
  let sorted =
    List.sort
      (fun (k1, v1) (k2, v2) ->
        match String.compare k1 k2 with
        | 0 -> String.compare v1 v2
        | c -> c)
      kvs
  in
  List.fold_left
    (fun h (k, v) -> Fnv.combine_framed (Fnv.combine_framed h k) v)
    Fnv.empty sorted

let to_hex = Fnv.to_hex
let of_hex = Fnv.of_hex
let equal = Int64.equal
let compare = Int64.compare
