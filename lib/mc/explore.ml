type strategy = Bfs | Dfs

let strategy_of_string = function
  | "bfs" -> Some Bfs
  | "dfs" -> Some Dfs
  | _ -> None

type stats = {
  visited : int;
  transitions : int;
  max_depth : int;
  exhausted : bool;
  violation : (string * Choice.t list) option;
  coverage : Harness.coverage;
}

type progress = visited:int -> transitions:int -> depth:int -> unit

let run ~proto ~scope ~mutate ~strategy ?max_states ?frontier_dir
    ?(on_progress : progress = fun ~visited:_ ~transitions:_ ~depth:_ -> ())
    () =
  let visited : (int64, unit) Hashtbl.t = Hashtbl.create 4096 in
  let n_visited = ref 0 in
  let n_trans = ref 0 in
  let max_depth = ref 0 in
  let violation = ref None in
  let coverage = ref Harness.coverage_empty in
  let capped = ref false in
  let depth_pruned = ref false in
  let replay trace = Harness.replay ~proto ~scope ~mutate trace in
  let note_state fp depth =
    if Hashtbl.mem visited fp then false
    else begin
      Hashtbl.replace visited fp ();
      incr n_visited;
      if depth > !max_depth then max_depth := depth;
      if !n_visited mod 500 = 0 then
        on_progress ~visited:!n_visited ~transitions:!n_trans ~depth;
      true
    end
  in
  let cap_reached () =
    match max_states with
    | Some m when !n_visited >= m ->
      capped := true;
      true
    | _ -> false
  in
  (* Expand one frontier state, identified by (and rebuilt from) its
     choice trace.  Returns the traces of newly-discovered children. *)
  let expand trace =
    let depth = List.length trace in
    if depth >= scope.Scope.depth then begin
      depth_pruned := true;
      []
    end
    else begin
      let h = replay trace in
      let choices = Harness.enabled h in
      let fresh = ref [] in
      List.iteri
        (fun i c ->
          if !violation = None && not (cap_reached ()) then begin
            (* the first child may reuse the harness we already replayed;
               every later child needs a fresh replay of the prefix *)
            let hc = if i = 0 then h else replay trace in
            Harness.apply hc c;
            incr n_trans;
            coverage := Harness.coverage_union !coverage (Harness.coverage hc);
            let ct = trace @ [ c ] in
            match Harness.violation hc with
            | Some v -> violation := Some (v, ct)
            | None ->
              if note_state (Harness.fingerprint hc) (depth + 1) then
                fresh := ct :: !fresh
          end)
        choices;
      List.rev !fresh
    end
  in
  let stop () = !violation <> None || !capped in
  (* seed *)
  let h0 = replay [] in
  ignore (note_state (Harness.fingerprint h0) 0);
  (match Harness.violation h0 with
   | Some v -> violation := Some (v, [])
   | None -> ());
  if not (stop ()) then begin
    match (strategy, frontier_dir) with
    | Dfs, _ ->
      (* depth-first: in-memory trace stack; good at driving deep
         counterexamples (the mutation check) out fast *)
      let stack = ref [ [] ] in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | trace :: rest ->
          stack := rest;
          if stop () then continue := false
          else stack := expand trace @ !stack
      done
    | Bfs, None ->
      let q = Queue.create () in
      Queue.add [] q;
      while (not (Queue.is_empty q)) && not (stop ()) do
        List.iter (fun ct -> Queue.add ct q) (expand (Queue.take q))
      done
    | Bfs, Some dir ->
      (* breadth-first with a disk-backed frontier: each depth layer is
         a line file, read back while the next layer streams out, so a
         CI soak's memory stays O(visited fingerprints), not O(frontier
         traces).  The layer files double as uploadable artifacts. *)
      let rec mkdir_p d =
        if not (Sys.file_exists d) then begin
          mkdir_p (Filename.dirname d);
          (try Sys.mkdir d 0o755 with Sys_error _ -> ())
        end
      in
      mkdir_p dir;
      let layer_file d = Filename.concat dir (Printf.sprintf "layer_%03d.frontier" d) in
      let write_layer d traces =
        let oc = open_out (layer_file d) in
        List.iter
          (fun ct ->
            output_string oc (Choice.seq_to_string ct);
            output_char oc '\n')
          traces;
        close_out oc
      in
      write_layer 0 [ [] ];
      let d = ref 0 in
      let continue = ref true in
      while !continue do
        let ic = open_in (layer_file !d) in
        let next = ref [] in
        let eof = ref false in
        while (not !eof) && not (stop ()) do
          match input_line ic with
          | exception End_of_file -> eof := true
          | line -> (
            match Choice.seq_of_string line with
            | None -> failwith (Printf.sprintf "corrupt frontier line %S" line)
            | Some trace -> next := List.rev_append (expand trace) !next)
        done;
        close_in ic;
        let next = List.rev !next in
        write_layer (!d + 1) next;
        incr d;
        if next = [] || stop () then continue := false
      done
  end;
  {
    visited = !n_visited;
    transitions = !n_trans;
    max_depth = !max_depth;
    (* exhausted means "every reachable state in scope was expanded":
       never true once the state cap cut exploration short.  Pruning at
       the depth bound is part of the scope's definition, so it does
       not negate exhaustion. *)
    exhausted = (not !capped) && !violation = None;
    violation = !violation;
    coverage = !coverage;
  }

let render_counterexample ~proto ~scope ~mutate trace =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "counterexample: %d step(s), proto=%s, scope=[%s]%s\n"
       (List.length trace)
       (Harness.proto_to_string proto)
       (Scope.to_string scope)
       (if mutate then ", mutation=no-first-wedge" else ""));
  let h = Harness.create ~proto ~scope ~mutate () in
  let indent s = "    " ^ String.concat "\n    " (String.split_on_char '\n' s) in
  Buffer.add_string b ("  initial state:\n" ^ indent (Harness.summary h) ^ "\n");
  (try
     List.iteri
       (fun i c ->
         Harness.apply h c;
         Buffer.add_string b (Format.asprintf "  step %d: %a\n" (i + 1) Choice.pp c);
         Buffer.add_string b (indent (Harness.summary h) ^ "\n"))
       trace
   with Harness.Divergent c ->
     Buffer.add_string b
       (Format.asprintf "  REPLAY DIVERGED at %a — trace does not match this \
                         proto/scope/mutation\n"
          Choice.pp c));
  (match Harness.violation h with
   | Some v -> Buffer.add_string b ("violated: " ^ v ^ "\n")
   | None -> Buffer.add_string b "no violation at end of trace\n");
  Buffer.add_string b
    (Printf.sprintf
       "reproduce: mc_main.exe --proto %s --scope %s%s --replay '%s'\n"
       (Harness.proto_to_string proto)
       (Scope.to_string scope)
       (if mutate then " --mutate" else "")
       (Choice.seq_to_string trace));
  Buffer.contents b
