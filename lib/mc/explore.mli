(** The exhaustive explorer: enumerate every state the composition can
    reach inside a {!Scope}, checking every safety property at every
    state.

    States are identified by {!Harness.fingerprint} and reached by
    replaying their choice trace from scratch (see {!Harness}); the
    visited set is an in-memory fingerprint table, and BFS can keep its
    frontier on disk as per-depth layer files so CI soaks stay in
    bounded memory and the frontier itself becomes an artifact. *)

type strategy =
  | Bfs  (** layer by layer — finds the {e shortest} counterexample *)
  | Dfs  (** dives deep first — usually finds {e a} counterexample faster *)

val strategy_of_string : string -> strategy option

type stats = {
  visited : int;  (** distinct states (fingerprints) discovered *)
  transitions : int;  (** choices executed across all expansions *)
  max_depth : int;  (** longest trace of any discovered state *)
  exhausted : bool;
      (** true iff exploration ran out of new states with no violation
          and without hitting [max_states]; pruning at the scope's depth
          bound does not negate exhaustion (depth is part of the scope) *)
  violation : (string * Choice.t list) option;
      (** first property failure and the choice trace that reaches it *)
  coverage : Harness.coverage;
      (** union of milestone coverage over every explored transition *)
}

type progress = visited:int -> transitions:int -> depth:int -> unit

val run :
  proto:Harness.proto ->
  scope:Scope.t ->
  mutate:bool ->
  strategy:strategy ->
  ?max_states:int ->
  ?frontier_dir:string ->
  ?on_progress:progress ->
  unit ->
  stats
(** Explore until the scope is exhausted, a violation is found, or
    [max_states] distinct states have been visited.  [frontier_dir]
    (BFS only) switches the frontier to disk-backed layer files
    [layer_NNN.frontier], one ';'-joined choice trace per line.
    [on_progress] is invoked every 500 new states. *)

val render_counterexample :
  proto:Harness.proto ->
  scope:Scope.t ->
  mutate:bool ->
  Choice.t list ->
  string
(** Replay a violating trace step by step into a human-readable report:
    each choice, the state summary after it, the violated property, and
    a copy-pasteable [mc_main] reproducer line. *)
