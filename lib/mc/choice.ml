type t =
  | Deliver of { src : int; dst : int }
  | Drop of { src : int; dst : int }
  | Timer of { seq : int }
  | Crash of int
  | Recover of int
  | Client_op of { op : int }
  | Reconfig of { r : int }

let equal a b =
  match (a, b) with
  | Deliver x, Deliver y -> x.src = y.src && x.dst = y.dst
  | Drop x, Drop y -> x.src = y.src && x.dst = y.dst
  | Timer x, Timer y -> x.seq = y.seq
  | Crash x, Crash y -> x = y
  | Recover x, Recover y -> x = y
  | Client_op x, Client_op y -> x.op = y.op
  | Reconfig x, Reconfig y -> x.r = y.r
  | _ -> false

(* Compact one-token text form, the unit of counterexample traces and
   frontier files.  Chosen to survive shells and greps: no spaces, no
   quoting, ';' joins a sequence. *)
let to_token = function
  | Deliver { src; dst } -> Printf.sprintf "d%d-%d" src dst
  | Drop { src; dst } -> Printf.sprintf "x%d-%d" src dst
  | Timer { seq } -> Printf.sprintf "t%d" seq
  | Crash n -> Printf.sprintf "c%d" n
  | Recover n -> Printf.sprintf "u%d" n
  | Client_op { op } -> Printf.sprintf "s%d" op
  | Reconfig { r } -> Printf.sprintf "g%d" r

let of_token tok =
  let num s = int_of_string_opt s in
  let pair s =
    match String.index_opt s '-' with
    | None -> None
    | Some i -> (
      match
        ( num (String.sub s 0 i),
          num (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some a, Some b -> Some (a, b)
      | _ -> None)
  in
  if String.length tok < 2 then None
  else
    let rest = String.sub tok 1 (String.length tok - 1) in
    match tok.[0] with
    | 'd' -> Option.map (fun (src, dst) -> Deliver { src; dst }) (pair rest)
    | 'x' -> Option.map (fun (src, dst) -> Drop { src; dst }) (pair rest)
    | 't' -> Option.map (fun seq -> Timer { seq }) (num rest)
    | 'c' -> Option.map (fun n -> Crash n) (num rest)
    | 'u' -> Option.map (fun n -> Recover n) (num rest)
    | 's' -> Option.map (fun op -> Client_op { op }) (num rest)
    | 'g' -> Option.map (fun r -> Reconfig { r }) (num rest)
    | _ -> None

let seq_to_string cs = String.concat ";" (List.map to_token cs)

let seq_of_string s =
  if String.trim s = "" then Some []
  else
    let toks = String.split_on_char ';' (String.trim s) in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | tok :: rest -> (
        match of_token tok with
        | Some c -> go (c :: acc) rest
        | None -> None)
    in
    go [] toks

let pp ppf = function
  | Deliver { src; dst } ->
    Format.fprintf ppf "deliver head of link %d->%d" src dst
  | Drop { src; dst } -> Format.fprintf ppf "lose head of link %d->%d" src dst
  | Timer { seq } -> Format.fprintf ppf "fire timer #%d" seq
  | Crash n -> Format.fprintf ppf "crash node %d" n
  | Recover n -> Format.fprintf ppf "recover node %d" n
  | Client_op { op } -> Format.fprintf ppf "client submits command %d" op
  | Reconfig { r } -> Format.fprintf ppf "admin submits reconfiguration %d" r
