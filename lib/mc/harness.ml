module Engine = Rsmr_sim.Engine
module Fnv = Rsmr_sim.Fnv
module Stable = Rsmr_sim.Stable
module Network = Rsmr_net.Network
module Options = Rsmr_core.Options
module Service = Rsmr_core.Service
module Counter = Rsmr_app.Counter
module Svc = Rsmr_core.Service.Make (Rsmr_app.Counter)

module Strategy = Rsmr_iface.Reconfig_strategy

(* The harness explores composition-driver strategies only: a native
   stack has no wedge/instance structure for the properties to inspect. *)
type proto = Strategy.t

let core : proto = Strategy.composed
let stopworld : proto = Strategy.stopworld

let proto_of_string s =
  match Strategy.find s with
  | Some p when p.Strategy.driver = `Composition -> Some p
  | Some _ | None -> None

let proto_to_string (p : proto) = p.Strategy.name

exception Divergent of Choice.t
(** A stored choice did not apply — the replayed path diverged from the
    state it was recorded against.  Determinism makes this unreachable
    for faithfully stored traces; reaching it is a bug. *)

let client_id = 1000

type t = {
  scope : Scope.t;
  proto : proto;
  svc : Svc.t;
  cluster : Rsmr_iface.Cluster.t;
  engine : Engine.t;
  (* budget cursors — exploration state, fingerprinted alongside the
     system state because they gate which choices are enabled *)
  mutable commands_used : int;
  mutable reconfigs_used : int;
  mutable crashes_used : int;
  mutable drops_used : int;
  mutable timers_used : int;
  mutable crashed : int list; (* sorted *)
  (* oracle accumulators *)
  replies : (int, string) Hashtbl.t; (* client seq -> response bytes *)
  witness : (int * int, int64) Hashtbl.t;
      (* (epoch, applied_hi) -> applied digest, first seen on this path;
         committed-prefix agreement says it never changes *)
  mutable violation : string option;
}

let violation t = t.violation
let scope t = t.scope
let proto t = t.proto
let engine t = t.engine

let options ~proto ~scope ~mutate =
  let base = { Options.default with Options.strategy = proto } in
  (* Client coalescing follows the scope's batch key: the presets check
     the immediate-send configuration; batch >= 2 pulls the coalescing
     window (flush forced by a full buffer, not by wall-clock) into the
     explored space. *)
  let base =
    if scope.Scope.batch >= 2 then
      {
        base with
        Options.client_batch_window = 0.0005;
        client_batch_max = scope.Scope.batch;
      }
    else { base with Options.client_batch_window = 0.0 }
  in
  if mutate then { base with Options.mutation = Some Options.No_first_wedge }
  else base

(* Virtual-time parameters tuned for exploration, not for realism: the
   election timer must be the earliest-due timer so a leader exists
   within a few choices of the initial state (with the default 100ms
   timeout the interesting behaviour sits under dozens of client-retry
   timer fires and out of reach of any exhaustible depth).  Periodic
   timers are slowed so they widen the state space only where the
   in-flight bound allows. *)
let mc_params ~scope =
  let base =
    {
      Rsmr_smr.Params.default with
      Rsmr_smr.Params.election_timeout_min = 0.001;
      election_timeout_max = 0.001;
      heartbeat_interval = 0.05;
      resend_interval = 0.05;
    }
  in
  (* The presets check the historical unbatched block configuration;
     batch >= 2 bounds the proposal window at the scope's width instead. *)
  if scope.Scope.batch >= 2 then
    { base with Rsmr_smr.Params.batch_max = scope.Scope.batch }
  else { base with Rsmr_smr.Params.batch_delay = 0.0 }

let create ~proto ~scope ~mutate () =
  let engine = Engine.create ~seed:7 () in
  let svc =
    Svc.create ~engine ~smr_params:(mc_params ~scope)
      ~options:(options ~proto ~scope ~mutate)
      ~universe:(Scope.universe scope) ~net_mode:`Enumerate
      ~members:(Scope.initial_members scope) ()
  in
  let cluster = Svc.cluster svc in
  cluster.Rsmr_iface.Cluster.add_client client_id;
  let t =
    {
      scope;
      proto;
      svc;
      cluster;
      engine;
      commands_used = 0;
      reconfigs_used = 0;
      crashes_used = 0;
      drops_used = 0;
      timers_used = 0;
      crashed = [];
      replies = Hashtbl.create 8;
      witness = Hashtbl.create 32;
      violation = None;
    }
  in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client ~seq ~rsp ->
      if client = client_id then
        match Hashtbl.find_opt t.replies seq with
        | None -> Hashtbl.add t.replies seq rsp
        | Some prev ->
          if not (String.equal prev rsp) then
            t.violation <-
              Some
                (Printf.sprintf
                   "exactly-once: client saw two different responses for \
                    seq %d (%S then %S)"
                   seq prev rsp));
  t

(* --- per-state safety properties (the crucible Oracle invariants,
   re-phrased as predicates on a single reachable state) --- *)

let check_properties t =
  let nodes = Scope.universe t.scope in
  let stats = List.map (fun n -> (n, Svc.epoch_stats t.svc n)) nodes in
  (* epoch-prefix: nothing past the wedge index ever takes effect *)
  let epoch_prefix =
    List.find_map
      (fun (n, es) ->
        List.find_map
          (fun (s : Service.epoch_stat) ->
            match s.Service.es_wedged_at with
            | Some w when s.Service.es_applied_hi > w ->
              Some
                (Printf.sprintf
                   "epoch-prefix: node %d epoch %d applied index %d past \
                    wedge %d"
                   n s.Service.es_epoch s.Service.es_applied_hi w)
            | _ -> None)
          es)
      stats
  in
  (* wedge agreement: every node that saw epoch e wedge saw the same
     wedge index *)
  let wedge_agreement () =
    let seen : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
    List.find_map
      (fun (n, es) ->
        List.find_map
          (fun (s : Service.epoch_stat) ->
            match s.Service.es_wedged_at with
            | None -> None
            | Some w -> (
              match Hashtbl.find_opt seen s.Service.es_epoch with
              | None ->
                Hashtbl.add seen s.Service.es_epoch (n, w);
                None
              | Some (n0, w0) when w0 <> w ->
                Some
                  (Printf.sprintf
                     "wedge-agreement: epoch %d wedged at %d on node %d \
                      but at %d on node %d"
                     s.Service.es_epoch w0 n0 w n)
              | Some _ -> None))
          es)
      stats
  in
  (* committed-prefix agreement: the (epoch, applied_hi) -> digest map is
     a function — across nodes in this state, and across every state of
     this path (the digest of a given prefix never rewrites) *)
  let committed_prefix () =
    List.find_map
      (fun (n, es) ->
        List.find_map
          (fun (s : Service.epoch_stat) ->
            if s.Service.es_applied_hi < 0 then None
            else
              let key = (s.Service.es_epoch, s.Service.es_applied_hi) in
              match Hashtbl.find_opt t.witness key with
              | None ->
                Hashtbl.add t.witness key s.Service.es_digest;
                None
              | Some d0 when not (Int64.equal d0 s.Service.es_digest) ->
                Some
                  (Printf.sprintf
                     "committed-prefix: node %d epoch %d disagrees on the \
                      prefix up to index %d (digest %s, witnessed %s)"
                     n s.Service.es_epoch s.Service.es_applied_hi
                     (Fnv.to_hex s.Service.es_digest)
                     (Fnv.to_hex d0))
              | Some _ -> None)
          es)
      stats
  in
  (* exactly-once arithmetic: every command is Incr 1, so no replica's
     counter may exceed the number of distinct commands submitted *)
  let exactly_once () =
    List.find_map
      (fun n ->
        match Svc.app_state t.svc n with
        | None -> None
        | Some app ->
          let v = Counter.value app in
          if v > t.commands_used then
            Some
              (Printf.sprintf
                 "exactly-once: node %d counter reached %d with only %d \
                  commands submitted"
                 n v t.commands_used)
          else None)
      nodes
  in
  match epoch_prefix with
  | Some v -> Some v
  | None -> (
    match wedge_agreement () with
    | Some v -> Some v
    | None -> (
      match committed_prefix () with
      | Some v -> Some v
      | None -> exactly_once ()))

let observe t =
  if t.violation = None then t.violation <- check_properties t

(* --- choices --- *)

let net t = Svc.net t.svc

(* Timer choices are semantically enabled only while the in-flight
   bound holds (periodic traffic must not grow queues without end) and
   the fire budget lasts.  This is part of the scope's definition, so
   the reduction below may key off it. *)
let timers_on t =
  t.timers_used < t.scope.Scope.timer_fires
  && Network.pending_total (net t) < t.scope.Scope.max_inflight

(* Partial-order reduction.  Deliveries to distinct destination nodes
   are independent: each pops its own per-link FIFO, mutates only the
   destination's components, and appends to the destination's outgoing
   queues — so both orders of two such deliveries reach the same state,
   and every safety property checked here latches monotonically under
   further deliveries to OTHER nodes (wedge points and applied indices
   never retreat, counters never shrink, witnesses never un-conflict).
   It is therefore sound to expand only the deliveries into ONE such
   destination and defer the rest, as long as no enabled choice could
   interfere with that node: crash/recover choices (they race with
   delivery into the crashed node) and timer fires (their owning node is
   opaque) disable the reduction, and client/admin endpoints are never
   chosen because scripted submissions touch them.  The reduction
   therefore bites exactly at the delivery-storm states where timers are
   already out of play — which is where the interleaving explosion
   lives. *)
let por_target t =
  if timers_on t || t.crashed <> [] || t.crashes_used < t.scope.Scope.crashes
  then None
  else begin
    let top = t.scope.Scope.nodes + t.scope.Scope.spare in
    (* universe nodes and the directory (top + 1) host only
       message-driven protocol components *)
    let protocol_dst d = d <= top + 1 in
    List.fold_left
      (fun acc (_, dst) ->
        if protocol_dst dst then
          match acc with
          | Some m when m <= dst -> acc
          | _ -> Some dst
        else acc)
      None
      (Network.links (net t))
  end

let enabled t =
  if t.violation <> None then []
  else begin
    let acc = ref [] in
    let push c = acc := c :: !acc in
    let links = Network.links (net t) in
    let link_choices ls =
      List.iter
        (fun (src, dst) ->
          if t.drops_used < t.scope.Scope.drops then
            push (Choice.Drop { src; dst });
          push (Choice.Deliver { src; dst }))
        (List.rev ls)
    in
    (match por_target t with
    | Some target ->
      link_choices (List.filter (fun (_, dst) -> dst = target) links)
    | None ->
      (* full expansion *)
      (* timers: the [timer_width] earliest-due pending timers *)
      if timers_on t then begin
        let rec take k = function
          | (seq, _) :: rest when k > 0 ->
            push (Choice.Timer { seq });
            take (k - 1) rest
          | _ -> ()
        in
        take t.scope.Scope.timer_width (Engine.enabled t.engine)
      end;
      (* per-link message choices, sorted link order *)
      link_choices links;
      (* fault choices *)
      List.iter
        (fun n ->
          if List.mem n t.crashed then push (Choice.Recover n)
          else if t.crashes_used < t.scope.Scope.crashes then
            push (Choice.Crash n))
        (List.rev (Scope.universe t.scope));
      (* workload choices, submitted strictly in script order *)
      if t.reconfigs_used < t.scope.Scope.reconfigs then
        push (Choice.Reconfig { r = t.reconfigs_used });
      if t.commands_used < t.scope.Scope.commands then
        push (Choice.Client_op { op = t.commands_used }));
    !acc
  end

let incr_cmd = Counter.encode_command (Counter.Incr 1)

let apply t choice =
  (match choice with
   | Choice.Timer { seq } ->
     if not (Engine.fire t.engine ~seq) then raise (Divergent choice);
     t.timers_used <- t.timers_used + 1
   | Choice.Deliver { src; dst } -> (
     match Network.deliver_head (net t) ~src ~dst with
     | Some _ -> ()
     | None -> raise (Divergent choice))
   | Choice.Drop { src; dst } -> (
     match Network.drop_head (net t) ~src ~dst with
     | Some _ -> t.drops_used <- t.drops_used + 1
     | None -> raise (Divergent choice))
   | Choice.Crash n ->
     if List.mem n t.crashed then raise (Divergent choice);
     t.cluster.Rsmr_iface.Cluster.crash n;
     t.crashed <- List.sort Int.compare (n :: t.crashed);
     t.crashes_used <- t.crashes_used + 1
   | Choice.Recover n ->
     if not (List.mem n t.crashed) then raise (Divergent choice);
     t.cluster.Rsmr_iface.Cluster.recover n;
     t.crashed <- List.filter (fun m -> m <> n) t.crashed
   | Choice.Client_op { op } ->
     if op <> t.commands_used then raise (Divergent choice);
     t.commands_used <- t.commands_used + 1;
     t.cluster.Rsmr_iface.Cluster.submit ~client:client_id ~seq:(op + 1)
       ~cmd:incr_cmd
   | Choice.Reconfig { r } ->
     if r <> t.reconfigs_used then raise (Divergent choice);
     t.reconfigs_used <- t.reconfigs_used + 1;
     t.cluster.Rsmr_iface.Cluster.reconfigure (Scope.reconfig_members t.scope r));
  observe t

let replay ~proto ~scope ~mutate choices =
  let t = create ~proto ~scope ~mutate () in
  observe t;
  List.iter (fun c -> if t.violation = None then apply t c) choices;
  t

(* --- coverage --- *)

type coverage = {
  cov_wedged : bool;  (* some instance wedged (reconfig decided) *)
  cov_activated : bool;  (* some epoch >= 1 instance activated *)
  cov_retired : bool;  (* some instance retired *)
  cov_replies : int;  (* client replies received *)
  cov_max_counter : int;  (* highest counter value on any replica *)
}

let coverage_empty =
  {
    cov_wedged = false;
    cov_activated = false;
    cov_retired = false;
    cov_replies = 0;
    cov_max_counter = 0;
  }

let coverage_union a b =
  {
    cov_wedged = a.cov_wedged || b.cov_wedged;
    cov_activated = a.cov_activated || b.cov_activated;
    cov_retired = a.cov_retired || b.cov_retired;
    cov_replies = max a.cov_replies b.cov_replies;
    cov_max_counter = max a.cov_max_counter b.cov_max_counter;
  }

let coverage t =
  let c = ref { coverage_empty with cov_replies = Hashtbl.length t.replies } in
  List.iter
    (fun n ->
      List.iter
        (fun (s : Service.epoch_stat) ->
          c :=
            {
              !c with
              cov_wedged = !c.cov_wedged || s.Service.es_wedged_at <> None;
              cov_activated =
                !c.cov_activated
                || (s.Service.es_epoch >= 1 && s.Service.es_activated);
              cov_retired = !c.cov_retired || s.Service.es_retired;
            })
        (Svc.epoch_stats t.svc n);
      match Svc.app_state t.svc n with
      | Some app ->
        c := { !c with cov_max_counter = max !c.cov_max_counter (Counter.value app) }
      | None -> ())
    (Scope.universe t.scope);
  !c

(* --- fingerprinting --- *)

let fingerprint t =
  let replies =
    String.concat ";"
      (List.rev
         (Stable.fold_sorted ~compare:Int.compare
            (fun seq rsp acc ->
              (string_of_int seq ^ "=" ^ Fnv.to_hex (Fnv.hash rsp)) :: acc)
            t.replies []))
  in
  Fingerprint.of_kv
    [
      ("svc", Svc.canonical_state t.svc);
      ("timers", string_of_int (Engine.pending_count t.engine));
      ( "budgets",
        Printf.sprintf "%d,%d,%d,%d,%d" t.commands_used t.reconfigs_used
          t.crashes_used t.drops_used t.timers_used );
      ("crashed", String.concat "," (List.map string_of_int t.crashed));
      ("replies", replies);
      ("violation", Option.value t.violation ~default:"");
    ]

(* --- trace rendering --- *)

let summary t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "t=%.4fs inflight=%d timers=%d" (Engine.now t.engine)
       (Network.pending_total (net t))
       (Engine.pending_count t.engine));
  List.iter
    (fun n ->
      let es = Svc.epoch_stats t.svc n in
      if es <> [] then begin
        Buffer.add_string b (Printf.sprintf "\n  node %d:" n);
        List.iter
          (fun (s : Service.epoch_stat) ->
            Buffer.add_string b
              (Printf.sprintf " e%d[%s%s hi=%d%s]" s.Service.es_epoch
                 (if s.Service.es_activated then "act" else "spec")
                 (if s.Service.es_retired then ",ret" else "")
                 s.Service.es_applied_hi
                 (match s.Service.es_wedged_at with
                  | Some w -> Printf.sprintf " w=%d" w
                  | None -> "")))
          es;
        match Svc.app_state t.svc n with
        | Some app ->
          Buffer.add_string b (Printf.sprintf " counter=%d" (Counter.value app))
        | None -> ()
      end)
    (Scope.universe t.scope);
  Buffer.contents b
