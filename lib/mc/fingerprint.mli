(** State fingerprints: 64-bit FNV-1a digests of canonical encodings.

    A fingerprint identifies a visited state in the explorer's dedup
    set.  It is always computed from canonical bytes (block/service
    [canonical_state] encodings), never from OCaml values — rsmr-lint's
    [state-hash] rule bans [Hashtbl.hash] on protocol state precisely
    because structural hashing truncates and depends on representation.

    With 64-bit digests over the |S| ≲ 10^6 states a bounded scope
    visits, the birthday collision probability is below 10^-7 — and a
    collision only merges two states, it cannot fabricate a violation
    (counterexamples are replayed concretely before being reported). *)

type t = int64

val of_string : string -> t
(** Digest of one canonical encoding. *)

val of_kv : (string * string) list -> t
[@@rsmr.deterministic]
(** Digest of labeled parts, {e insertion-order independent}: bindings
    are sorted by key before hashing, and keys/values are length-framed
    so no two distinct binding sets alias.  This is how composite
    fingerprints (service state + timer counts + budget cursors) are
    assembled from independently-gathered pieces. *)

val to_hex : t -> string
val of_hex : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
