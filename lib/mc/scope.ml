type t = {
  nodes : int;
  spare : int;
  reconfigs : int;
  commands : int;
  crashes : int;
  drops : int;
  max_inflight : int;
  timer_width : int;
  timer_fires : int;
  depth : int;
  batch : int;
}

let minimal =
  {
    nodes = 3;
    spare = 1;
    reconfigs = 1;
    commands = 2;
    crashes = 0;
    drops = 1;
    max_inflight = 2;
    timer_width = 4;
    timer_fires = 2;
    depth = 60;
    batch = 0;
  }

let small =
  {
    nodes = 3;
    spare = 1;
    reconfigs = 2;
    commands = 2;
    crashes = 1;
    drops = 2;
    max_inflight = 2;
    timer_width = 4;
    timer_fires = 6;
    depth = 100;
    batch = 0;
  }

(* Node ids: protocol nodes are 1..nodes+spare so that id 0 stays free
   and the service's derived ids (directory = top+1, admin = top+2)
   stay predictable. *)
let initial_members t = List.init t.nodes (fun i -> i + 1)
let universe t = List.init (t.nodes + t.spare) (fun i -> i + 1)

(* The [r]-th scripted membership change rotates the window one node
   further along the universe: with nodes=3, spare=1 the first reconfig
   moves {1,2,3} to {2,3,4} — dropping one old member and fetching
   state into one genuinely new one. *)
let reconfig_members t r =
  let u = Array.of_list (universe t) in
  let n = Array.length u in
  List.init t.nodes (fun i -> u.((r + 1 + i) mod n))

let set t key value =
  match int_of_string_opt value with
  | None -> Error (Printf.sprintf "scope: %s=%s is not an integer" key value)
  | Some v -> (
    match key with
    | "nodes" -> Ok { t with nodes = v }
    | "spare" -> Ok { t with spare = v }
    | "reconfigs" -> Ok { t with reconfigs = v }
    | "commands" -> Ok { t with commands = v }
    | "crashes" -> Ok { t with crashes = v }
    | "drops" -> Ok { t with drops = v }
    | "max_inflight" -> Ok { t with max_inflight = v }
    | "timer_width" -> Ok { t with timer_width = v }
    | "timer_fires" -> Ok { t with timer_fires = v }
    | "depth" -> Ok { t with depth = v }
    | "batch" -> Ok { t with batch = v }
    | _ -> Error (Printf.sprintf "scope: unknown key %S" key))

let parse s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  let base, rest =
    match parts with
    | "minimal" :: rest -> (Ok minimal, rest)
    | "small" :: rest -> (Ok small, rest)
    | rest -> (Ok minimal, rest)
  in
  List.fold_left
    (fun acc part ->
      match acc with
      | Error _ -> acc
      | Ok t -> (
        match String.index_opt part '=' with
        | None ->
          Error (Printf.sprintf "scope: expected key=value, got %S" part)
        | Some i ->
          set t
            (String.sub part 0 i)
            (String.sub part (i + 1) (String.length part - i - 1))))
    base rest

let to_string t =
  Printf.sprintf
    "nodes=%d,spare=%d,reconfigs=%d,commands=%d,crashes=%d,drops=%d,max_inflight=%d,timer_width=%d,timer_fires=%d,depth=%d,batch=%d"
    t.nodes t.spare t.reconfigs t.commands t.crashes t.drops t.max_inflight
    t.timer_width t.timer_fires t.depth t.batch

let pp ppf t = Format.pp_print_string ppf (to_string t)
