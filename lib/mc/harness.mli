(** The bridge between the explorer and the real protocol stack.

    A harness owns one live composed service (over {!Rsmr_app.Counter})
    in enumerate-mode networking plus the exploration bookkeeping: which
    scripted workload steps have been taken, which nodes are down, what
    the client has been told, and the committed-prefix witness table.

    States are never snapshotted — they cannot be, the protocol state is
    a web of closures and mutable records.  Instead a state is reached
    by replaying its choice sequence from {!create}: the engine seed and
    virtual clock make that bit-for-bit deterministic, which
    {!fingerprint} (and a dedicated test) relies on. *)

module Svc : Rsmr_core.Service.S with type app_state = Rsmr_app.Counter.t

type proto = Rsmr_iface.Reconfig_strategy.t
(** A composition-driver reconfiguration strategy (native stacks have no
    wedge/instance structure for the explored properties to inspect). *)

val core : proto
val stopworld : proto
(** [Core] is the paper's composition with default options (speculative
    handoff, residual resubmission); [Stopworld] the conservative
    baseline configuration of the same composition. *)

val proto_of_string : string -> proto option
(** Registered strategy names and aliases; [None] for unknown names and
    [`Native]-driver strategies. *)

val proto_to_string : proto -> string

exception Divergent of Choice.t
(** Raised by {!apply} when a stored choice is not applicable — a
    replayed path diverged from the run it was recorded on.  Indicates
    a determinism bug (or a trace for a different scope/proto). *)

type t

val create : proto:proto -> scope:Scope.t -> mutate:bool -> unit -> t
(** Fresh initial state.  [mutate] re-introduces the first-wedge-wins
    bug ({!Rsmr_core.Options.mutation}) so the checker's teeth can be
    tested: exploration must then find an epoch-prefix violation. *)

val enabled : t -> Choice.t list
(** Outgoing transitions of the current state, deterministically
    ordered, already filtered by the scope's budgets.  Empty once
    {!violation} is set. *)

val apply : t -> Choice.t -> unit
(** Execute one choice against the live system, then run every safety
    property on the resulting state (first failure latches into
    {!violation}).  @raise Divergent if the choice is not enabled. *)

val replay : proto:proto -> scope:Scope.t -> mutate:bool -> Choice.t list -> t
(** [create] + [apply] each choice in order (stopping early if a
    violation latches) — how the explorer materialises a frontier state
    and how counterexamples are reproduced. *)

val fingerprint : t -> Fingerprint.t
[@@rsmr.deterministic]
(** Content hash of the canonical service state plus the exploration
    bookkeeping that gates enabledness.  Equal fingerprints mean the
    states are interchangeable for exploration purposes. *)

val violation : t -> string option
(** First safety-property failure observed on this path, if any. *)

val scope : t -> Scope.t
val proto : t -> proto
val engine : t -> Rsmr_sim.Engine.t

val summary : t -> string
(** Human-readable one-state digest (virtual time, per-node epoch
    stats, counter values) for counterexample traces. *)

val client_id : int
(** Node id of the single scripted client (1000 — far above any
    universe the scope parser will produce). *)

(** {2 Coverage}

    Which protocol milestones exploration actually reached — the
    "did the scope exercise anything interesting" sanity signal that a
    bare 0-violations claim lacks. *)

type coverage = {
  cov_wedged : bool;  (** some instance wedged (a reconfig was decided) *)
  cov_activated : bool;  (** some epoch [>= 1] instance activated *)
  cov_retired : bool;  (** some superseded instance retired *)
  cov_replies : int;  (** client replies received *)
  cov_max_counter : int;  (** highest counter value on any replica *)
}

val coverage_empty : coverage
val coverage_union : coverage -> coverage -> coverage
val coverage : t -> coverage
