module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Obs = Rsmr_obs.Registry
module Network = Rsmr_net.Network
module Node_id = Rsmr_net.Node_id
module Endpoint = Rsmr_client.Endpoint
module Client_msg = Rsmr_client.Client_msg
module Wire = Rsmr_core.Wire
module Options = Rsmr_core.Options
module Kv = Rsmr_app.Kv
module Dir_app = Rsmr_app.Dir_app

let shard_name i = "shard-" ^ string_of_int i

let key_of_command cmd =
  match Kv.decode_command cmd with
  | Kv.Get k | Kv.Delete k | Kv.Put (k, _) | Kv.Append (k, _) | Kv.Cas (k, _, _)
    -> k

module type S = sig
  module Dir_svc : Rsmr_core.Service.S with type app_state = Dir_app.t
  module Shard_svc : Rsmr_core.Service.S with type app_state = Kv.t

  type t

  val create :
    engine:Engine.t ->
    ?latency:Rsmr_net.Latency.t ->
    ?drop:float ->
    ?bandwidth:float ->
    ?smr_params:Rsmr_smr.Params.t ->
    ?options:Options.t ->
    ?obs:Obs.t ->
    ?dir_members:Node_id.t list ->
    ?keyspace:Keyspace.t ->
    pool:Node_id.t list ->
    shards:Node_id.t list list ->
    unit ->
    t

  val cluster : t -> Rsmr_iface.Cluster.t
  val engine : t -> Engine.t
  val obs : t -> Obs.t
  val counters : t -> Counters.t
  val keyspace : t -> Keyspace.t
  val n_shards : t -> int
  val shard : t -> int -> Shard_svc.t
  val shard_members : t -> int -> Node_id.t list
  val shard_of_key : t -> string -> int
  val dir : t -> Dir_svc.t
  val dir_client : t -> Dir_client.t
  val dir_epoch_regressions : t -> int
  val first_client_id : t -> Node_id.t
  val control : t -> Rsmr_iface.Overlay.control

  val crash : t -> Node_id.t -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.crash"]

  val recover : t -> Node_id.t -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.recover"]

  val partition_dir : t -> Node_id.t list list -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.partition"]

  val isolate_dir : t -> Node_id.t list -> unit

  val heal_dir : t -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.heal"]

  val reconfigure_dir : t -> Node_id.t list -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.reconfigure"]

  val rebalance :
    t ->
    node:Node_id.t ->
    from_:int ->
    to_:int ->
    ?on_done:(bool -> unit) ->
    unit ->
    unit

  val endpoint_counter_total : t -> string -> int
end

module Make_on (B : Rsmr_smr.Block_intf.S) = struct
  module Dir_svc = Rsmr_core.Service.Make_on (B) (Dir_app)
  module Shard_svc = Rsmr_core.Service.Make_on (B) (Kv)

  type shard = {
    index : int;
    svc : Shard_svc.t;
    ctl : Rsmr_iface.Cluster.t;
    mutable cached_epoch : int;
    mutable cached_members : Node_id.t list;
  }

  type client_rec = { eps : Endpoint.t array }

  type t = {
    engine : Engine.t;
    obs : Obs.t;
    opts : Options.t;
    pool : Node_id.t list;
    keyspace : Keyspace.t;
    shards : shard array;
    dir_svc : Dir_svc.t;
    dirc : Dir_client.t;
    clients : (Node_id.t, client_rec) Hashtbl.t;
    mutable on_reply : Rsmr_iface.Cluster.reply_handler;
    counters : Counters.t;
    top : Node_id.t;  (* highest pool id; overlay service ids sit above *)
  }

  let engine t = t.engine
  let obs t = t.obs
  let counters t = t.counters
  let keyspace t = t.keyspace
  let n_shards t = Array.length t.shards
  let shard t i = t.shards.(i).svc
  let shard_members t i = Shard_svc.current_members t.shards.(i).svc
  let shard_of_key t key = Keyspace.shard_of t.keyspace key
  let dir t = t.dir_svc
  let dir_client t = t.dirc
  let dir_epoch_regressions t = Dir_client.regressions t.dirc
  let first_client_id t = t.top + 10

  let client_handler ep (env : Wire.t Network.envelope) =
    match env.Network.payload with
    | Wire.Client msg -> Endpoint.handle ep msg
    | _ -> ()
  [@@rsmr.deterministic] [@@rsmr.total]

  (* One endpoint per (client, shard): the client's session with that
     shard's replica group.  The endpoint's directory hook resolves the
     shard's name through the replicated directory — stale answers,
     redirects and directory leader changes are all absorbed by the
     ordinary retry machinery. *)
  let make_endpoint t sh cid =
    let net = Shard_svc.net sh.svc in
    let ep =
      Endpoint.create ~engine:t.engine ~me:cid
        ~send:(fun ~dst msg -> Network.send net ~src:cid ~dst (Wire.Client msg))
        ~members:sh.cached_members
        ~batch_window:t.opts.Options.client_batch_window
        ~batch_max:t.opts.Options.client_batch_max
        ~bus:(Obs.bus t.obs)
        ~lookup:(fun k ->
          Counters.incr t.counters "dir_lookups";
          Dir_client.lookup t.dirc ~name:(shard_name sh.index) (fun entry ->
              match entry with
              | Some e when e.Dir_app.members <> [] -> k entry
              | Some _ | None ->
                (* Directory has no entry yet (initial publish still in
                   flight): fall back to the freshest locally cached
                   configuration so the endpoint keeps probing. *)
                k
                  (Some
                     {
                       Dir_app.epoch = sh.cached_epoch;
                       members = sh.cached_members;
                       leader = None;
                     })))
        ~on_reply:(fun ~seq ~rsp -> t.on_reply ~client:cid ~seq ~rsp)
        ()
    in
    Network.register net cid (client_handler ep);
    ep

  let add_client t cid =
    if not (Hashtbl.mem t.clients cid) then begin
      if cid < first_client_id t then
        invalid_arg "Platform.add_client: id below first_client_id";
      let eps = Array.map (fun sh -> make_endpoint t sh cid) t.shards in
      Hashtbl.replace t.clients cid { eps }
    end

  let submit t ~client ~seq ~cmd =
    match Hashtbl.find_opt t.clients client with
    | None -> invalid_arg "Platform.submit: unknown client (call add_client)"
    | Some r ->
      let s = Keyspace.shard_of t.keyspace (key_of_command cmd) in
      Endpoint.submit r.eps.(s) ~seq ~payload:(Client_msg.Cmd cmd)

  let crash t node =
    Array.iter (fun sh -> Network.crash (Shard_svc.net sh.svc) node) t.shards;
    Network.crash (Dir_svc.net t.dir_svc) node

  let recover t node =
    Array.iter (fun sh -> Network.recover (Shard_svc.net sh.svc) node) t.shards;
    Network.recover (Dir_svc.net t.dir_svc) node

  let partition_dir t groups = Network.partition (Dir_svc.net t.dir_svc) groups

  (* Cut [ns] away from the rest of the directory overlay.  The overlay's
     auxiliary ids (oracle node, admin session, the platform's directory
     session) ride with the majority side — a node absent from every
     group could talk to nobody, which is not what "isolate these" means. *)
  let isolate_dir t ns =
    let d = Dir_svc.directory_id t.dir_svc in
    let aux = [ d; d + 1; t.top + 3 ] in
    let out id = List.exists (Node_id.equal id) ns in
    let rest = List.filter (fun id -> not (out id)) (t.pool @ aux) in
    partition_dir t [ ns; rest ]

  let heal_dir t = Network.heal (Dir_svc.net t.dir_svc)

  let reconfigure_dir t members =
    (Dir_svc.cluster t.dir_svc).Rsmr_iface.Cluster.reconfigure members

  (* The platform's control surface: crashes are machine-level (every
     overlay at once), partition/heal act on the directory overlay (the
     shard overlays are exercised through rebalance + machine faults),
     and reconfigure moves the directory service itself. *)
  let control t =
    {
      Rsmr_iface.Overlay.fault =
        (function
          | Rsmr_iface.Overlay.Crash n -> crash t n
          | Rsmr_iface.Overlay.Recover n -> recover t n
          | Rsmr_iface.Overlay.Partition groups -> partition_dir t groups
          | Rsmr_iface.Overlay.Heal -> heal_dir t);
      reconfigure = (fun ms -> reconfigure_dir t ms);
    }

  let cluster t =
    {
      Rsmr_iface.Cluster.name = "platform";
      engine = t.engine;
      add_client = (fun cid -> add_client t cid);
      submit = (fun ~client ~seq ~cmd -> submit t ~client ~seq ~cmd);
      set_on_reply = (fun h -> t.on_reply <- h);
      reconfigure =
        (fun _ -> invalid_arg "Platform: use rebalance, not reconfigure");
      members = (fun () -> t.pool);
      crash = (fun node -> crash t node);
      recover = (fun node -> recover t node);
      control = control t;
      obs = t.obs;
    }

  (* Rolling cross-shard rebalance: wedge the donor shard down to
     [members \ node], wait for its new epoch to activate, then grow the
     recipient — so the node is never a voting member of both shards'
     newest configurations at once.  Non-blocking: polls on the engine
     clock; [on_done false] fires if either phase fails to activate
     within the polling budget (e.g. a quorum stays crashed). *)
  let rebalance t ~node ~from_ ~to_ ?(on_done = fun _ -> ()) () =
    let fs = t.shards.(from_) and ts = t.shards.(to_) in
    let from_members = Shard_svc.current_members fs.svc in
    if
      (not (List.exists (Node_id.equal node) from_members))
      || List.exists (Node_id.equal node)
           (Shard_svc.current_members ts.svc)
      || List.length from_members <= 1
    then on_done false
    else begin
      Counters.incr t.counters "rebalances";
      let rec wait_past sh e0 rounds k =
        if Shard_svc.current_epoch sh.svc > e0 then k true
        else if rounds <= 0 then k false
        else
          ignore
            (Engine.schedule t.engine ~delay:0.05 (fun () ->
                 wait_past sh e0 (rounds - 1) k))
      in
      let e_from = Shard_svc.current_epoch fs.svc in
      fs.ctl.Rsmr_iface.Cluster.reconfigure
        (List.filter (fun m -> not (Node_id.equal m node)) from_members);
      wait_past fs e_from 400 (fun ok ->
          if not ok then begin
            Counters.incr t.counters "rebalance_stalled";
            on_done false
          end
          else begin
            let to_members = Shard_svc.current_members ts.svc in
            if List.exists (Node_id.equal node) to_members then on_done false
            else begin
              let e_to = Shard_svc.current_epoch ts.svc in
              ts.ctl.Rsmr_iface.Cluster.reconfigure (to_members @ [ node ]);
              wait_past ts e_to 400 (fun ok ->
                  if not ok then Counters.incr t.counters "rebalance_stalled"
                  else Counters.incr t.counters "rebalances_done";
                  on_done ok)
            end
          end)
    end

  let endpoint_counter_total t key =
    Hashtbl.fold
      (fun _ r acc ->
        Array.fold_left
          (fun acc ep -> acc + Counters.get (Endpoint.counters ep) key)
          acc r.eps)
      t.clients 0

  let rec take n = function
    | [] -> []
    | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

  let create ~engine ?latency ?drop ?bandwidth ?smr_params ?options ?obs
      ?dir_members ?keyspace ~pool ~shards:initial_members () =
    if initial_members = [] then invalid_arg "Platform.create: no shards";
    let pool = List.sort_uniq Node_id.compare pool in
    List.iter
      (fun ms ->
        if ms = [] then invalid_arg "Platform.create: empty shard";
        List.iter
          (fun m ->
            if not (List.exists (Node_id.equal m) pool) then
              invalid_arg "Platform.create: shard member outside pool")
          ms)
      initial_members;
    let n = List.length initial_members in
    let keyspace =
      match keyspace with
      | Some k ->
        if Keyspace.shards k <> n then
          invalid_arg "Platform.create: keyspace/shard count mismatch";
        k
      | None -> Keyspace.ranges ~shards:n ~n_keys:100_000
    in
    let obs = match obs with Some o -> o | None -> Obs.create () in
    let opts = Option.value options ~default:Options.default in
    let dir_members =
      match dir_members with
      | Some ms ->
        if ms = [] then invalid_arg "Platform.create: empty dir_members";
        ms
      | None -> take (min 3 (List.length pool)) pool
    in
    let top = List.fold_left max 0 pool in
    let dir_svc =
      Dir_svc.create ~engine ?latency ?drop ?smr_params ~options:opts
        ~universe:pool ~obs ~members:dir_members ()
      (* The directory overlay stays unconstrained: its traffic is a
         trickle, and a shared NIC model across overlays would double-
         count each machine's budget anyway. *)
    in
    let dirc =
      Dir_client.attach ~cluster:(Dir_svc.cluster dir_svc) ~client:(top + 3) ()
    in
    let shards =
      Array.of_list
        (List.mapi
           (fun i members ->
             let svc =
               Shard_svc.create ~engine ?latency ?drop ?bandwidth ?smr_params
                 ~options:opts ~universe:pool ~obs ~members ()
             in
             {
               index = i;
               svc;
               ctl = Shard_svc.cluster svc;
               cached_epoch = 0;
               cached_members = members;
             })
           initial_members)
    in
    let t =
      {
        engine;
        obs;
        opts;
        pool;
        keyspace;
        shards;
        dir_svc;
        dirc;
        clients = Hashtbl.create 16;
        on_reply = (fun ~client:_ ~seq:_ ~rsp:_ -> ());
        counters = Obs.counters obs "shard";
        top;
      }
    in
    (* Every configuration change a shard would report to its private
       oracle node is republished into the replicated directory; the
       newest one is also cached locally as the lookup fallback. *)
    Array.iter
      (fun sh ->
        Shard_svc.set_on_dir_update sh.svc (fun ~epoch ~members ~leader ->
            if epoch > sh.cached_epoch then begin
              sh.cached_epoch <- epoch;
              sh.cached_members <- members
            end;
            Dir_client.publish t.dirc ~name:(shard_name sh.index) ~epoch
              ~members ~leader);
        Dir_client.publish t.dirc ~name:(shard_name sh.index) ~epoch:0
          ~members:sh.cached_members ~leader:None)
      shards;
    t
end

module Core = Make_on (Rsmr_smr.Paxos_block)
module Vr = Make_on (Rsmr_smr.Vr)
