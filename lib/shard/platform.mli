(** The sharded elastic platform: N composed RSMR shards plus a
    replicated directory, all over one shared node pool.

    Each shard is an independent {!Rsmr_core.Service} epoch chain hosting
    the KV application on its own network overlay (the same physical
    node ids appear in every overlay — one machine, many replica roles).
    The directory is {e itself} a composed service hosting
    {!Rsmr_app.Dir_app} — the paper's recursion: reconfigurable
    directory from the same non-reconfigurable building blocks.  Client
    endpoints route commands to shards by key range ({!Keyspace}) and,
    when they lose track of a shard's configuration, resolve it through
    the replicated directory ({!Dir_client}) rather than a private
    oracle.

    Why the directory's own reconfigurations can never deadlock the
    shards it serves: a shard's data path (submit → order → apply →
    reply) touches the directory only on the endpoint's slow path, and
    every directory interaction is an ordinary retried client request —
    if the directory is wedged mid-handoff, lookups are simply late, and
    the endpoint keeps probing its cached configuration meanwhile.  The
    directory never calls into the shards at all. *)

module type S = sig
  module Dir_svc :
    Rsmr_core.Service.S with type app_state = Rsmr_app.Dir_app.t

  module Shard_svc : Rsmr_core.Service.S with type app_state = Rsmr_app.Kv.t

  type t

  val create :
    engine:Rsmr_sim.Engine.t ->
    ?latency:Rsmr_net.Latency.t ->
    ?drop:float ->
    ?bandwidth:float ->
    ?smr_params:Rsmr_smr.Params.t ->
    ?options:Rsmr_core.Options.t ->
    ?obs:Rsmr_obs.Registry.t ->
    ?dir_members:Rsmr_net.Node_id.t list ->
    ?keyspace:Keyspace.t ->
    pool:Rsmr_net.Node_id.t list ->
    shards:Rsmr_net.Node_id.t list list ->
    unit ->
    t
  (** [pool] is the shared machine pool; every shard (and the directory)
      may be reconfigured onto any pool node.  [shards] gives each
      shard's initial member set (subsets of [pool]).  [dir_members]
      defaults to the first three pool nodes.  [keyspace] defaults to an
      even cut of the canonical 100k-key space and must have exactly one
      range per shard.  [bandwidth] (bytes/s) models each node's NIC on
      the shard overlays — the directory overlay stays unconstrained,
      its traffic is a trickle.  All overlays share [obs], so the
      registry's ["net"]/["svc"] sections account the {e aggregate}
      platform. *)

  val cluster : t -> Rsmr_iface.Cluster.t
  (** Workload facade: [submit] decodes the command's key and routes to
      the owning shard's endpoint.  [reconfigure] is not meaningful for
      the whole platform and raises — use {!rebalance}. *)

  val engine : t -> Rsmr_sim.Engine.t
  val obs : t -> Rsmr_obs.Registry.t

  val counters : t -> Rsmr_sim.Counters.t
  (** Platform-level section ["shard"]: "dir_lookups", "rebalances",
      "rebalances_done", "rebalance_stalled". *)

  val keyspace : t -> Keyspace.t
  val n_shards : t -> int
  val shard : t -> int -> Shard_svc.t
  val shard_members : t -> int -> Rsmr_net.Node_id.t list
  val shard_of_key : t -> string -> int
  val dir : t -> Dir_svc.t
  val dir_client : t -> Dir_client.t

  val dir_epoch_regressions : t -> int
  (** Directory-epoch monotonicity witness (see
      {!Dir_client.regressions}); the [dir_churn] oracle requires 0. *)

  val first_client_id : t -> Rsmr_net.Node_id.t
  (** Lowest safe workload-client id (above every overlay's service,
      directory and admin ids). *)

  val control : t -> Rsmr_iface.Overlay.control
  (** The platform's {!Rsmr_iface.Overlay} fault surface — the same
      signature single-service clusters carry, so harnesses drive both
      uniformly.  [Crash]/[Recover] are {e machine}-level (the node goes
      down in every overlay at once); [Partition]/[Heal] act on the
      directory overlay only; [reconfigure] moves the directory service
      itself onto new pool nodes. *)

  val crash : t -> Rsmr_net.Node_id.t -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.crash"]
  (** Crash the {e machine}: the node goes down in every overlay it
      appears in (all shards and the directory) at once. *)

  val recover : t -> Rsmr_net.Node_id.t -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.recover"]

  val partition_dir : t -> Rsmr_net.Node_id.t list list -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.partition"]
  (** Partition the directory overlay only — shard data paths keep
      flowing; lookups stall until {!heal_dir}.  Raw form: the caller
      must place the overlay's auxiliary ids (oracle node, sessions)
      into groups itself; prefer {!isolate_dir}. *)

  val isolate_dir : t -> Rsmr_net.Node_id.t list -> unit
  (** Cut the given pool nodes away from the rest of the directory
      overlay (auxiliary ids stay with the majority side).  Isolating
      every current directory member blacks the directory out for
      clients while keeping its replicas mutually connected. *)

  val heal_dir : t -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.heal"]

  val reconfigure_dir : t -> Rsmr_net.Node_id.t list -> unit
  [@@ocaml.deprecated "use control / Rsmr_iface.Overlay.reconfigure"]
  (** Reconfigure the directory service itself onto new pool nodes. *)

  val rebalance :
    t ->
    node:Rsmr_net.Node_id.t ->
    from_:int ->
    to_:int ->
    ?on_done:(bool -> unit) ->
    unit ->
    unit
  (** Rolling move of [node] from shard [from_] to shard [to_]:
      reconfigure the donor down, wait (on the engine clock) for its new
      epoch to take, then reconfigure the recipient up.  [on_done false]
      if the move was ineligible (node not in donor / already in
      recipient / donor would empty) or a phase failed to activate
      within the polling budget. *)

  val endpoint_counter_total : t -> string -> int
  (** Sum of one counter ("retries", "redirects", "lookups", ...) over
      every workload client endpoint on every shard. *)
end

module Make_on (_ : Rsmr_smr.Block_intf.S) : S

module Core : S
(** Platform over static Multi-Paxos blocks. *)

module Vr : S
(** Platform over static Viewstamped Replication blocks — the
    block-interchangeability witness at platform scale. *)
