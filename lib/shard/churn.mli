(** [dir_churn]: seeded fault scenarios against the sharded platform.

    Each seed derives a schedule of machine crashes, directory-overlay
    partitions (single-replica cuts and full blackouts) and rolling
    cross-shard rebalances, all under closed-loop client load on every
    shard; after an endgame repair the run must drain and pass the
    platform oracles:

    - [dir_epoch_monotone] — no lookup reply carries an older directory
      epoch than a previous reply for the same shard (zero
      {!Platform.S.dir_epoch_regressions});
    - [exactly_once] — no duplicate client replies;
    - [liveness] — every submitted command answered within 40 s of the
      repair;
    - [redirect_bound] — redirect traffic stays within a linear bound of
      the command count (the PR-4 retry-storm regression check);
    - [convergence] — each shard's caught-up members hold identical
      application state, and a majority is caught up;
    - [rebalance_progress] — at least one attempted rebalance completed.

    Runs over both composition blocks ({!Platform.Core},
    {!Platform.Vr}).  The Raft {e baseline} cannot appear here: it is
    not a {!Rsmr_smr.Block_intf.S}, and the replicated directory is
    built by composing blocks — VR is the second protocol, exactly as in
    experiment T4. *)

type proto = Core | Vr

val proto_name : proto -> string
val proto_of_name : string -> proto option

type report = {
  r_proto : proto;
  r_seed : int;
  r_commands : int;
  r_replies : int;
  r_rebalances : int;  (** completed (of attempted) rolling moves *)
  r_redirects : int;
  r_regressions : int;
  r_failures : (string * string) list;  (** (oracle, detail), empty = pass *)
}

val failures : report -> (string * string) list
val pp_report : Format.formatter -> report -> unit

val replay_command : proto -> int -> string
(** Shell line that reruns one seed. *)

val run : ?quick:bool -> ?storm:bool -> proto -> seed:int -> report
(** One scenario.  [storm] replaces the seeded fault schedule with the
    deterministic redirect-storm shape (directory blackout + concurrent
    rebalances of both shards). *)

val storm_seed : int

val redirect_storm : ?quick:bool -> proto -> report
(** The PR-4 redirect-storm regression scenario against the replicated
    directory. *)
