type t = { boundaries : string array }

let of_boundaries boundaries =
  let arr = Array.of_list boundaries in
  let sorted = Array.copy arr in
  Array.sort String.compare sorted;
  if arr <> sorted then invalid_arg "Keyspace.of_boundaries: not sorted";
  { boundaries = arr }

let ranges ~shards ~n_keys =
  if shards < 1 then invalid_arg "Keyspace.ranges: shards < 1";
  let boundary i = Rsmr_workload.Keys.key_name (i * n_keys / shards) in
  of_boundaries (List.init (shards - 1) (fun i -> boundary (i + 1)))

let shards t = Array.length t.boundaries + 1

(* Index of the range containing [key]: the number of boundaries <= key,
   found by binary search over the sorted boundary array. *)
let shard_of t key =
  let b = t.boundaries in
  let lo = ref 0 and hi = ref (Array.length b) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare b.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '|')
       Format.pp_print_string)
    (Array.to_list t.boundaries)
