(** Client of the {e replicated} directory service.

    One session (one client node id) multiplexes all directory traffic
    for a platform: shard-configuration lookups on behalf of stale
    endpoints, and publishes that mirror each shard's configuration
    changes into the directory state machine ({!Rsmr_app.Dir_app}).

    Protocol-agnostic: talks to the directory through its
    {!Rsmr_iface.Cluster.t} facade, so the directory can be hosted on any
    composed service.  Installs itself as the cluster's reply handler —
    the directory cluster must not be driven by anything else.

    Lookups for the same name are single-flight and sequential (later
    callers queue), which makes the observed-epoch stream per name
    monotone whenever the directory service is linearizable — the
    [dir_churn] oracle asserts {!regressions} stays zero. *)

type t

val attach :
  cluster:Rsmr_iface.Cluster.t -> client:Rsmr_net.Node_id.t -> unit -> t
(** [client] must not collide with any node or client id already
    registered on the directory service's network. *)

val lookup : t -> name:string -> (Rsmr_app.Dir_app.entry option -> unit) -> unit
(** Resolve [name]; the continuation fires when the directory replies
    (after however many retries the endpoint needs).  [None] means the
    directory has no entry yet. *)

val publish :
  t -> name:string -> epoch:int -> members:int list -> leader:int option ->
  unit
(** Mirror a configuration change into the directory.  Stale publishes
    (epoch older than the newest already published, or a same-epoch
    publish carrying no new leader hint) are dropped locally; the
    directory state machine would ignore them anyway. *)

val last_epoch : t -> name:string -> int
(** Newest epoch a lookup reply has carried for [name]; [-1] before the
    first reply. *)

val regressions : t -> int
(** Lookup replies that carried an older epoch than a previous reply for
    the same name — must stay 0 over a linearizable directory. *)

val counters : t -> Rsmr_sim.Counters.t
(** Keys: "lookups", "lookup_replies", "publishes", "publish_acks". *)

val outstanding : t -> int
