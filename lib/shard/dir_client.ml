module Dir_app = Rsmr_app.Dir_app
module Counters = Rsmr_sim.Counters

type pending =
  | P_lookup of string * (Dir_app.entry option -> unit)
  | P_publish

type t = {
  cluster : Rsmr_iface.Cluster.t;
  client : Rsmr_net.Node_id.t;
  mutable seq : int;
  pending : (int, pending) Hashtbl.t;
  (* Per-name single-flight: at most one Lookup for a name is in flight;
     later callers queue behind it.  Sequential per-name lookups are what
     makes the epoch-monotonicity observation sound — with concurrent
     lookups, network reordering could legally deliver an older snapshot
     after a newer one and a "regression" would mean nothing. *)
  queues : (string, (Dir_app.entry option -> unit) Queue.t) Hashtbl.t;
  last_seen : (string, int) Hashtbl.t;
  last_pub : (string, int * int option) Hashtbl.t;
  counters : Counters.t;
  mutable regressions : int;
}

let rec attach ~cluster ~client () =
  let t =
    {
      cluster;
      client;
      seq = 0;
      pending = Hashtbl.create 16;
      queues = Hashtbl.create 8;
      last_seen = Hashtbl.create 8;
      last_pub = Hashtbl.create 8;
      counters = Counters.create ();
      regressions = 0;
    }
  in
  cluster.Rsmr_iface.Cluster.add_client client;
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:c ~seq ~rsp ->
      if Rsmr_net.Node_id.equal c t.client then begin
        match Hashtbl.find_opt t.pending seq with
        | None -> ()
        | Some p ->
          Hashtbl.remove t.pending seq;
          (match p with
           | P_publish -> Counters.incr t.counters "publish_acks"
           | P_lookup (name, k) ->
             Counters.incr t.counters "lookup_replies";
             let entry =
               match Dir_app.decode_response rsp with
               | Dir_app.Info e -> e
               | Dir_app.Acked -> None
             in
             let last =
               Option.value (Hashtbl.find_opt t.last_seen name) ~default:(-1)
             in
             let seen =
               match entry with Some e -> e.Dir_app.epoch | None -> -1
             in
             if seen < last then t.regressions <- t.regressions + 1
             else Hashtbl.replace t.last_seen name seen;
             k entry;
             next_lookup t name)
      end);
  t

and submit t payload =
  t.seq <- t.seq + 1;
  t.cluster.Rsmr_iface.Cluster.submit ~client:t.client ~seq:t.seq ~cmd:payload;
  t.seq

and next_lookup t name =
  match Hashtbl.find_opt t.queues name with
  | None -> ()
  | Some q ->
    if Queue.is_empty q then Hashtbl.remove t.queues name
    else begin
      let k = Queue.pop q in
      Counters.incr t.counters "lookups";
      let seq = submit t (Dir_app.encode_command (Dir_app.Lookup name)) in
      Hashtbl.replace t.pending seq (P_lookup (name, k))
    end

let lookup t ~name k =
  let q =
    match Hashtbl.find_opt t.queues name with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues name q;
      q
  in
  let idle =
    Queue.is_empty q
    && not
         (Hashtbl.fold
            (fun _ p acc ->
              acc
              ||
              match p with
              | P_lookup (n, _) -> String.equal n name
              | P_publish -> false)
            t.pending false)
  in
  Queue.push k q;
  if idle then next_lookup t name

let publish t ~name ~epoch ~members ~leader =
  let fresh =
    match Hashtbl.find_opt t.last_pub name with
    | None -> true
    | Some (e, l) -> epoch > e || (epoch = e && leader <> None && leader <> l)
  in
  if fresh then begin
    Hashtbl.replace t.last_pub name (epoch, leader);
    Counters.incr t.counters "publishes";
    let seq =
      submit t
        (Dir_app.encode_command (Dir_app.Update { name; epoch; members; leader }))
    in
    Hashtbl.replace t.pending seq P_publish
  end

let last_epoch t ~name =
  Option.value (Hashtbl.find_opt t.last_seen name) ~default:(-1)

let regressions t = t.regressions
let counters t = t.counters
let outstanding t = Hashtbl.length t.pending
