(* dir_churn: seeded fault scenarios against the *platform* — crash and
   partition the replicated directory's own replicas while cross-shard
   rebalances are in flight, under client load on every shard.

   The oracles are platform-level: directory-epoch monotonicity as
   observed by clients (the replicated directory is linearizable, so a
   lookup must never report an older configuration than a previous
   lookup), exactly-once replies, bounded redirect traffic (the PR-4
   retry-storm shape), eventual completion after the endgame repair, and
   per-shard replica convergence. *)

module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Node_id = Rsmr_net.Node_id
module Keys = Rsmr_workload.Keys
module Kv = Rsmr_app.Kv

type proto = Core | Vr

let proto_name = function Core -> "core" | Vr -> "vr"

let proto_of_name = function
  | "core" -> Some Core
  | "vr" -> Some Vr
  | _ -> None

type report = {
  r_proto : proto;
  r_seed : int;
  r_commands : int;
  r_replies : int;
  r_rebalances : int;
  r_redirects : int;
  r_regressions : int;
  r_failures : (string * string) list;
}

let failures r = r.r_failures

let pp_report ppf r =
  Format.fprintf ppf "dir_churn %s seed=%d cmds=%d replies=%d reb=%d rdr=%d %s"
    (proto_name r.r_proto) r.r_seed r.r_commands r.r_replies r.r_rebalances
    r.r_redirects
    (if r.r_failures = [] then "PASS"
     else
       String.concat "; "
         (List.map (fun (n, d) -> n ^ ": " ^ d) r.r_failures))

let replay_command proto seed =
  Printf.sprintf
    "dune exec test/crucible_main.exe -- --family dir_churn --proto %s --seed \
     %d"
    (proto_name proto) seed

(* The harness is the same for both blocks; only the platform functor
   instantiation differs. *)
module Run (P : Platform.S) = struct
  type ctl = {
    n_keys : int;
    mutable submitted : int;
    mutable replied : int;
    mutable duplicates : int;
    mutable stopped : bool;
    pending : (Node_id.t * int, unit) Hashtbl.t;
    seen : (Node_id.t * int, unit) Hashtbl.t;
    seqs : (Node_id.t, int ref) Hashtbl.t;
  }

  let gen_command ctl rng =
    let keys = Keys.zipf ~n:ctl.n_keys ~theta:0.8 in
    let key () = Keys.key_name (Keys.sample keys rng) in
    fun () ->
      if Rng.float rng 1.0 < 0.5 then Kv.encode_command (Kv.Get (key ()))
      else
        Kv.encode_command
          (Kv.Put (key (), Printf.sprintf "v%d" (Rng.int rng 1_000_000)))

  let issue ctl cluster next_cmd client =
    let seqr = Hashtbl.find ctl.seqs client in
    incr seqr;
    let seq = !seqr in
    ctl.submitted <- ctl.submitted + 1;
    Hashtbl.replace ctl.pending (client, seq) ();
    cluster.Rsmr_iface.Cluster.submit ~client ~seq ~cmd:(next_cmd ())

  let go ?(quick = false) ?(storm = false) ~seed () =
    let engine = Engine.create ~seed () in
    let rng = Rng.split (Engine.rng engine) in
    let t_end = if quick then 3.0 else 6.0 in
    let pool = [ 0; 1; 2; 3; 4; 5 ] in
    let shards = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
    let dir_members = [ 0; 2; 4 ] in
    let n_keys = 1000 in
    let pf =
      P.create ~engine ~latency:Rsmr_net.Latency.lan ~pool ~shards
        ~dir_members
        ~keyspace:(Keyspace.ranges ~shards:2 ~n_keys)
        ()
    in
    let cluster = P.cluster pf in
    let ctl =
      {
        n_keys;
        submitted = 0;
        replied = 0;
        duplicates = 0;
        stopped = false;
        pending = Hashtbl.create 256;
        seen = Hashtbl.create 256;
        seqs = Hashtbl.create 8;
      }
    in
    let next_cmd = gen_command ctl rng in
    let n_clients = 4 and window = 2 in
    let first = P.first_client_id pf in
    let clients = List.init n_clients (fun i -> first + i) in
    List.iter
      (fun c ->
        cluster.Rsmr_iface.Cluster.add_client c;
        Hashtbl.replace ctl.seqs c (ref 0))
      clients;
    cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client ~seq ~rsp:_ ->
        if Hashtbl.mem ctl.seen (client, seq) then
          ctl.duplicates <- ctl.duplicates + 1
        else begin
          Hashtbl.replace ctl.seen (client, seq) ();
          Hashtbl.remove ctl.pending (client, seq);
          ctl.replied <- ctl.replied + 1;
          if not ctl.stopped then issue ctl cluster next_cmd client
        end);
    (* Load starts at 0.2 s, [window] outstanding per client. *)
    ignore
      (Engine.at engine ~time:0.2 (fun () ->
           List.iter
             (fun c ->
               for _ = 1 to window do
                 issue ctl cluster next_cmd c
               done)
             clients));
    ignore (Engine.at engine ~time:t_end (fun () -> ctl.stopped <- true));
    let reb_done = ref 0 and reb_tried = ref 0 in
    let rebalance_at t0 from_ =
      let to_ = 1 - from_ in
      ignore
        (Engine.at engine ~time:t0 (fun () ->
             let donors = P.shard_members pf from_ in
             let takers = P.shard_members pf to_ in
             let eligible =
               List.filter
                 (fun n -> not (List.exists (Node_id.equal n) takers))
                 donors
             in
             match eligible with
             | [] -> ()
             | _ ->
               let node =
                 List.nth eligible (Rng.int rng (List.length eligible))
               in
               incr reb_tried;
               P.rebalance pf ~node ~from_ ~to_
                 ~on_done:(fun ok -> if ok then incr reb_done)
                 ()))
    in
    if storm then begin
      (* The PR-4 redirect-storm shape, against the replicated directory:
         black the directory out, then rebalance both shards under it so
         every client's cached configuration goes stale mid-flight.  The
         endpoints must ride redirect hints with bounded traffic and
         drain once the directory heals. *)
      let t0 = if quick then 0.8 else 1.0 in
      let dur = if quick then 1.2 else 2.0 in
      ignore
        (Engine.at engine ~time:t0 (fun () -> P.isolate_dir pf dir_members));
      ignore (Engine.at engine ~time:(t0 +. dur) (fun () -> Rsmr_iface.Overlay.heal (P.control pf)));
      rebalance_at (t0 +. 0.2) 0;
      rebalance_at (t0 +. 0.4) 1
    end
    else begin
      (* Crash windows: one machine down at a time, each healed before the
         next begins, so every shard and the directory keep a live quorum
         throughout (tolerance testing, not availability testing). *)
      let t = ref 0.6 in
      while !t < t_end -. 1.2 do
        let node = List.nth pool (Rng.int rng (List.length pool)) in
        let dur = 0.3 +. Rng.float rng 0.7 in
        let t0 = !t in
        ignore (Engine.at engine ~time:t0 (fun () -> Rsmr_iface.Overlay.crash (P.control pf) node));
        ignore
          (Engine.at engine ~time:(t0 +. dur) (fun () -> Rsmr_iface.Overlay.recover (P.control pf) node));
        t := t0 +. dur +. 0.2 +. Rng.float rng 0.8
      done;
      (* Directory-overlay partitions, overlapping freely with the crash
         schedule: either one directory replica is cut off, or the whole
         directory is blacked out from its clients (replicas stay mutually
         connected — consistent but unreachable, maximal staleness). *)
      let n_parts = 1 + Rng.int rng 2 in
      for _ = 1 to n_parts do
        let t0 = 0.8 +. Rng.float rng (Float.max 0.5 (t_end -. 2.0)) in
        let dur = 0.5 +. Rng.float rng 1.0 in
        let blackout = Rng.float rng 1.0 < 0.5 in
        ignore
          (Engine.at engine ~time:t0 (fun () ->
               if blackout then P.isolate_dir pf dir_members
               else
                 P.isolate_dir pf
                   [
                     List.nth dir_members
                       (Rng.int rng (List.length dir_members));
                   ]));
        ignore (Engine.at engine ~time:(t0 +. dur) (fun () -> Rsmr_iface.Overlay.heal (P.control pf)))
      done;
      (* Rolling rebalances while the above is in flight. *)
      let n_reb = 1 + Rng.int rng 2 in
      for i = 0 to n_reb - 1 do
        let t0 = 0.9 +. Rng.float rng (Float.max 0.5 (t_end -. 2.4)) in
        rebalance_at t0 ((i + Rng.int rng 2) mod 2)
      done
    end;
    (* Endgame repair, then run to completion. *)
    ignore
      (Engine.at engine ~time:(t_end +. 0.1) (fun () ->
           List.iter (fun n -> Rsmr_iface.Overlay.recover (P.control pf) n) pool;
           Rsmr_iface.Overlay.heal (P.control pf)));
    Engine.run engine ~until:(t_end +. 0.2);
    let settled =
      Engine.run_until engine
        ~pred:(fun () -> Hashtbl.length ctl.pending = 0)
        ~deadline:(t_end +. 40.0)
    in
    (* Convergence settle: like the crucible runner, keep the engine
       running (heartbeats propagate commit indexes to quiet followers)
       until every shard's members expose byte-identical state and stay
       that way for half a virtual second. *)
    let shard_converged s =
      let members = P.shard_members pf s in
      let snaps =
        List.map
          (fun m ->
            Option.map Kv.snapshot (P.Shard_svc.app_state (P.shard pf s) m))
          members
      in
      match snaps with
      | [] -> false
      | first :: rest -> (
        match first with
        | None -> false
        | Some x ->
          List.for_all
            (function Some y -> String.equal x y | None -> false)
            rest)
    in
    let converged_now () =
      let ok = ref true in
      for s = 0 to P.n_shards pf - 1 do
        if not (shard_converged s) then ok := false
      done;
      !ok
    in
    let rec settle deadline =
      if Engine.now engine >= deadline then false
      else
        match Engine.run_until engine ~pred:converged_now ~deadline with
        | None -> false
        | Some t ->
          Engine.run engine ~until:(t +. 0.5);
          if converged_now () then true else settle deadline
    in
    let converged = settle (Engine.now engine +. 10.0) in
    let failures = ref [] in
    let fail name detail = failures := (name, detail) :: !failures in
    if P.dir_epoch_regressions pf > 0 then
      fail "dir_epoch_monotone"
        (Printf.sprintf "%d lookup replies went backwards"
           (P.dir_epoch_regressions pf));
    if ctl.duplicates > 0 then
      fail "exactly_once"
        (Printf.sprintf "%d duplicate replies" ctl.duplicates);
    if settled = None then
      fail "liveness"
        (Printf.sprintf "%d commands unanswered 40 s after repair"
           (Hashtbl.length ctl.pending));
    let redirects = P.endpoint_counter_total pf "redirects" in
    let bound = (50 * ctl.submitted) + 500 in
    if redirects > bound then
      fail "redirect_bound"
        (Printf.sprintf "%d redirects for %d commands (bound %d)" redirects
           ctl.submitted bound);
    if not converged then
      for s = 0 to P.n_shards pf - 1 do
        if not (shard_converged s) then
          (* One compact line per member: host epoch, current-instance
             applied-hi and digest, application snapshot size — enough to
             tell a settle-time straggler (unequal hi) from a committed-
             prefix disagreement (equal hi, unequal digest). *)
          fail "convergence"
            (Printf.sprintf
               "shard %d: members %s do not expose identical state" s
               (String.concat ","
                  (List.map
                     (fun m ->
                       let cur =
                         match
                           List.rev (P.Shard_svc.epoch_stats (P.shard pf s) m)
                         with
                         | (es : Rsmr_core.Service.epoch_stat) :: _ ->
                           Printf.sprintf "hi=%d,d=%Lx" es.es_applied_hi
                             es.es_digest
                         | [] -> "no-instance"
                       in
                       Printf.sprintf "%d(e=%s,%s,app=%s)" m
                         (match P.Shard_svc.host_epoch (P.shard pf s) m with
                          | Some e -> string_of_int e
                          | None -> "-")
                         cur
                         (match P.Shard_svc.app_state (P.shard pf s) m with
                          | Some app ->
                            string_of_int (String.length (Kv.snapshot app))
                          | None -> "-"))
                     (P.shard_members pf s))))
      done;
    if !reb_tried > 0 && !reb_done = 0 then
      fail "rebalance_progress"
        (Printf.sprintf "0 of %d attempted rebalances completed" !reb_tried);
    {
      r_proto = Core (* caller overwrites: the functor is proto-blind *);
      r_seed = seed;
      r_commands = ctl.submitted;
      r_replies = ctl.replied;
      r_rebalances = !reb_done;
      r_redirects = redirects;
      r_regressions = P.dir_epoch_regressions pf;
      r_failures = List.rev !failures;
    }
end

module Run_core = Run (Platform.Core)
module Run_vr = Run (Platform.Vr)

let run ?quick ?storm proto ~seed =
  let r =
    match proto with
    | Core -> Run_core.go ?quick ?storm ~seed ()
    | Vr -> Run_vr.go ?quick ?storm ~seed ()
  in
  { r with r_proto = proto }

let storm_seed = 424

let redirect_storm ?quick proto = run ?quick ~storm:true proto ~seed:storm_seed
