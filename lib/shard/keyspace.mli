(** Static key-range routing: the total (lexicographic) key order cut
    into contiguous ranges, one per shard.

    Range boundaries are plain strings compared lexicographically; shard
    [i] owns keys in [[b_i, b_{i+1})] with implicit sentinels at both
    ends.  Routing is a binary search — O(log shards) per command. *)

type t

val of_boundaries : string list -> t
(** [of_boundaries [b1; ...; b_{n-1}]] makes an [n]-shard keyspace; the
    boundaries must be sorted ascending.  Raises [Invalid_argument]
    otherwise. *)

val ranges : shards:int -> n_keys:int -> t
(** Even cut of the canonical workload keyspace
    ([Rsmr_workload.Keys.key_name 0 .. n_keys-1]) into [shards]
    contiguous index ranges. *)

val shards : t -> int
val shard_of : t -> string -> int
val pp : Format.formatter -> t -> unit
