(* Scope CLI: exhaustive explicit-state checking of the composition
   layer within a bounded scope.

     dune exec test/mc_main.exe -- --scope minimal --proto core
     dune exec test/mc_main.exe -- --scope minimal,commands=1 --proto both \
       --frontier-dir _frontier --max-states 200000
     dune exec test/mc_main.exe -- --proto core --mutate --strategy dfs
     dune exec test/mc_main.exe -- --proto core --replay 's0;t1;d1-2;...'

   Exit status: 0 if every requested exploration finished with no
   violation (whether or not it exhausted the scope — a --max-states
   cap prints "NOT exhausted" but is not an error); 1 if a violation
   was found (the counterexample is printed and, with --out, written to
   a file); 2 on usage errors or a diverging --replay trace. *)

module Scope = Rsmr_mc.Scope
module Choice = Rsmr_mc.Choice
module Harness = Rsmr_mc.Harness
module Explore = Rsmr_mc.Explore

let usage () =
  prerr_endline
    "usage: mc_main [--scope SPEC] [--proto core|matchmaker|stopworld|both]\n\
    \       [--strategy bfs|dfs] [--max-states N] [--frontier-dir DIR]\n\
    \       [--mutate] [--out FILE] [--replay TRACE] [-v]\n\
     SPEC is 'minimal', 'small', or either plus key=value overrides,\n\
     e.g. 'minimal,commands=1,depth=20' (see Rsmr_mc.Scope).";
  exit 2

type opts = {
  mutable scope : Scope.t;
  mutable protos : Harness.proto list;
  mutable strategy : Explore.strategy;
  mutable max_states : int option;
  mutable frontier_dir : string option;
  mutable mutate : bool;
  mutable out : string option;
  mutable replay : Choice.t list option;
  mutable verbose : bool;
}

let parse_args () =
  let o =
    {
      scope = Scope.minimal;
      protos = [ Harness.core ];
      strategy = Explore.Bfs;
      max_states = None;
      frontier_dir = None;
      mutate = false;
      out = None;
      replay = None;
      verbose = false;
    }
  in
  let rec go = function
    | [] -> o
    | "--scope" :: v :: rest ->
      (match Scope.parse v with
       | Ok s -> o.scope <- s
       | Error e ->
         prerr_endline e;
         usage ());
      go rest
    | "--proto" :: v :: rest ->
      (match v with
       | "both" -> o.protos <- [ Harness.core; Harness.stopworld ]
       | v -> (
         match Harness.proto_of_string v with
         | Some p -> o.protos <- [ p ]
         | None ->
           Printf.eprintf "bad proto %S\n" v;
           usage ()));
      go rest
    | "--strategy" :: v :: rest ->
      (match Explore.strategy_of_string v with
       | Some s -> o.strategy <- s
       | None ->
         Printf.eprintf "bad strategy %S\n" v;
         usage ());
      go rest
    | "--max-states" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n > 0 -> o.max_states <- Some n
       | _ ->
         Printf.eprintf "bad --max-states %S\n" v;
         usage ());
      go rest
    | "--frontier-dir" :: v :: rest ->
      o.frontier_dir <- Some v;
      go rest
    | "--mutate" :: rest ->
      o.mutate <- true;
      go rest
    | "--out" :: v :: rest ->
      o.out <- Some v;
      go rest
    | ("--replay" | "--trace") :: v :: rest ->
      (match Choice.seq_of_string v with
       | Some cs -> o.replay <- Some cs
       | None ->
         Printf.eprintf "bad trace %S\n" v;
         usage ());
      go rest
    | "-v" :: rest ->
      o.verbose <- true;
      go rest
    | a :: _ ->
      Printf.eprintf "unknown argument %S\n" a;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let run_replay o proto trace =
  print_string
    (Explore.render_counterexample ~proto ~scope:o.scope ~mutate:o.mutate
       trace)

let run_explore o proto =
  let label =
    Printf.sprintf "%s%s"
      (Harness.proto_to_string proto)
      (if o.mutate then "+mutation" else "")
  in
  let frontier_dir =
    Option.map
      (fun d -> Filename.concat d (Harness.proto_to_string proto))
      o.frontier_dir
  in
  let on_progress ~visited ~transitions ~depth =
    if o.verbose then
      Printf.eprintf "[%s] visited=%d transitions=%d depth=%d\n%!" label
        visited transitions depth
  in
  Printf.printf "exploring %s: scope=[%s] strategy=%s%s\n%!" label
    (Scope.to_string o.scope)
    (match o.strategy with Explore.Bfs -> "bfs" | Explore.Dfs -> "dfs")
    (match o.max_states with
     | Some n -> Printf.sprintf " max_states=%d" n
     | None -> "");
  let stats =
    Explore.run ~proto ~scope:o.scope ~mutate:o.mutate ~strategy:o.strategy
      ?max_states:o.max_states ?frontier_dir ~on_progress ()
  in
  Printf.printf
    "[%s] visited=%d transitions=%d max_depth=%d exhausted=%b\n%!" label
    stats.Explore.visited stats.Explore.transitions stats.Explore.max_depth
    stats.Explore.exhausted;
  let cov = stats.Explore.coverage in
  Printf.printf
    "[%s] coverage: wedged=%b activated=%b retired=%b replies=%d \
     max_counter=%d\n%!"
    label cov.Harness.cov_wedged cov.Harness.cov_activated
    cov.Harness.cov_retired cov.Harness.cov_replies
    cov.Harness.cov_max_counter;
  (match stats.Explore.violation with
   | None ->
     if stats.Explore.exhausted then
       Printf.printf "[%s] scope exhausted: 0 violations\n%!" label
     else
       Printf.printf "[%s] NOT exhausted (state cap hit): 0 violations so far\n%!"
         label
   | Some (prop, trace) ->
     let report =
       Explore.render_counterexample ~proto ~scope:o.scope ~mutate:o.mutate
         trace
     in
     Printf.printf "[%s] VIOLATION: %s\n%s%!" label prop report;
     Option.iter
       (fun f ->
         let oc = open_out f in
         output_string oc report;
         close_out oc;
         Printf.printf "[%s] counterexample written to %s\n%!" label f)
       o.out);
  stats.Explore.violation = None

let () =
  let o = parse_args () in
  match o.replay with
  | Some trace ->
    run_replay o (List.hd o.protos) trace;
    exit 0
  | None ->
    let ok = List.for_all (fun p -> run_explore o p) o.protos in
    exit (if ok then 0 else 1)
