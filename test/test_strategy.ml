(* Strategy-API tests.

   1. Equivalence: the refactored driver running the default [composed]
      strategy must replay the historically load-bearing crucible traces
      (and the platform churn corpus) bit-for-bit against digests frozen
      BEFORE the refactor (test/data/strategy_equivalence.expected,
      written by record_equiv).  If this fails, the strategy extraction
      changed observable behavior — that is a bug, not a baseline drift
      to re-record.

   2. Registry sanity: names, aliases and stage dials of the registered
      strategies.

   3. Reconfig-churn soak: a runtest-sized slice of the CI soak — every
      registered strategy through membership-change-heavy scenarios,
      judged by the full oracle battery.

   4. Matchmaker behavior: early prepare actually fires (prepares /
      prepare_confirms counters), the wedged-window histogram is
      recorded under the strategy label, and the windows are no worse
      than the composed baseline's on the same scenarios. *)

module Strategy = Rsmr_iface.Reconfig_strategy
module Scenario = Rsmr_crucible.Scenario
module Generate = Rsmr_crucible.Generate
module Runner = Rsmr_crucible.Runner
module Oracle = Rsmr_crucible.Oracle
module Obs = Rsmr_obs.Registry
module Histogram = Rsmr_sim.Histogram

(* --- 1. golden-digest equivalence --- *)

let read_expected path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      if String.length line = 0 || line.[0] = '#' then go acc
      else (
        match String.index_opt line ' ' with
        | Some i ->
          go
            ((String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1))
             :: acc)
        | None -> go acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* dune runtest runs with cwd = the stanza's build dir; dune exec from
   the workspace root.  Accept either. *)
let expected_path () =
  List.find Sys.file_exists
    [
      "data/strategy_equivalence.expected";
      "test/data/strategy_equivalence.expected";
    ]

let test_composed_replays_golden () =
  let expected = read_expected (expected_path ()) in
  Alcotest.(check bool) "expected file is non-empty" true (expected <> []);
  let actual = Equiv_scenarios.all_lines () in
  Alcotest.(check int)
    "corpus size matches recording"
    (List.length expected) (List.length actual);
  List.iter2
    (fun (k_exp, d_exp) (k_act, d_act) ->
      Alcotest.(check string) "corpus key order" k_exp k_act;
      Alcotest.(check string)
        (Printf.sprintf "digest for %s (pre-refactor vs now)" k_exp)
        d_exp d_act)
    expected actual

(* --- 2. registry --- *)

let test_registry () =
  Alcotest.(check (list string))
    "registered strategy names"
    [ "composed"; "matchmaker"; "stopworld"; "raft" ]
    (List.map (fun s -> s.Strategy.name) Strategy.all);
  (* aliases resolve, and resolve to the same value as the canonical name *)
  List.iter
    (fun (alias, name) ->
      match (Strategy.find alias, Strategy.find name) with
      | Some a, Some b ->
        Alcotest.(check string)
          (Printf.sprintf "alias %s -> %s" alias name)
          b.Strategy.name a.Strategy.name
      | _ -> Alcotest.failf "alias %s or name %s did not resolve" alias name)
    [ ("core", "composed"); ("stop-the-world", "stopworld") ];
  Alcotest.(check bool) "unknown name rejected" true (Strategy.find "zab" = None);
  (* the stage dials the drivers key off *)
  let dials s = (s.Strategy.driver, s.Strategy.prepare, s.Strategy.handoff, s.Strategy.residuals) in
  Alcotest.(check bool) "composed dials" true
    (dials Strategy.composed = (`Composition, `At_wedge, `Speculative, `Resubmit));
  Alcotest.(check bool) "matchmaker dials" true
    (dials Strategy.matchmaker = (`Composition, `Early, `Speculative, `Resubmit));
  Alcotest.(check bool) "stopworld dials" true
    (dials Strategy.stopworld = (`Composition, `At_wedge, `Blocking, `Client_retry));
  Alcotest.(check bool) "raft is native" true
    (Strategy.raft.Strategy.driver = `Native)

(* --- 3. reconfig-churn soak (runtest slice of the CI soak) --- *)

let soak_seeds = [ 0; 1; 2 ]

let test_reconf_churn_all_strategies () =
  List.iter
    (fun seed ->
      let sc = Generate.reconf_churn_scenario ~seed in
      List.iter
        (fun proto ->
          let r = Runner.run proto sc in
          let o = Oracle.check r in
          match Oracle.failures o with
          | [] -> ()
          | fs ->
            Alcotest.failf "seed %d %s: %s" seed (Runner.proto_name proto)
              (String.concat "; "
                 (List.map (fun (n, m) -> n ^ ": " ^ m) fs)))
        Runner.all_protos)
    soak_seeds

(* --- 4. matchmaker early prepare --- *)

let counter_of (r : Runner.report) name =
  match List.assoc_opt name r.Runner.counters with Some n -> n | None -> 0

let wedged_window (r : Runner.report) name =
  Obs.histogram r.Runner.obs "wedged_window_s" ~labels:[ ("strategy", name) ]

(* A reconfiguration-heavy scenario without message loss, so prepares
   deterministically reach the next configuration. *)
let prepare_scenario =
  {
    Scenario.seed = 1717;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3; 4; 5 ];
    n_clients = 2;
    duration = 2.0;
    events =
      [
        { Scenario.at = 0.4; fault = Scenario.Reconfigure [ 1; 2; 3 ] };
        { Scenario.at = 1.0; fault = Scenario.Reconfigure [ 2; 3; 4 ] };
        { Scenario.at = 1.5; fault = Scenario.Reconfigure [ 3; 4; 5 ] };
      ];
  }

let test_matchmaker_prepares () =
  let r = Runner.run Runner.matchmaker prepare_scenario in
  let o = Oracle.check r in
  (match Oracle.failures o with
   | [] -> ()
   | fs ->
     Alcotest.failf "oracles failed: %s"
       (String.concat "; " (List.map (fun (n, m) -> n ^ ": " ^ m) fs)));
  Alcotest.(check bool) "prepares were sent" true (counter_of r "prepares" > 0);
  Alcotest.(check bool)
    "some prepared instance was confirmed at wedge time" true
    (counter_of r "prepare_confirms" > 0);
  let h = wedged_window r "matchmaker" in
  Alcotest.(check bool) "wedged-window histogram recorded" true
    (Histogram.count h > 0)

let test_matchmaker_window_no_worse () =
  let rc = Runner.run Runner.core prepare_scenario in
  let rm = Runner.run Runner.matchmaker prepare_scenario in
  let hc = wedged_window rc "composed" in
  let hm = wedged_window rm "matchmaker" in
  Alcotest.(check bool) "composed window recorded" true (Histogram.count hc > 0);
  Alcotest.(check bool) "matchmaker window recorded" true (Histogram.count hm > 0);
  (* The early-prepared instance has already booted (and usually elected)
     by the time the wedge commits, so its wedge->announce window can only
     shrink.  Equality would mean prepare never helped on this scenario —
     tolerated per-epoch, but not on the mean. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean wedged window: matchmaker %.6fs <= composed %.6fs"
       (Histogram.mean hm) (Histogram.mean hc))
    true
    (Histogram.mean hm <= Histogram.mean hc)

(* Composed must not send prepares at all (it is the no-early-prepare
   strategy), and must not leak provisional instances. *)
let test_composed_sends_no_prepares () =
  let r = Runner.run Runner.core prepare_scenario in
  Alcotest.(check int) "no prepares under composed" 0 (counter_of r "prepares");
  Alcotest.(check int) "no teardowns under composed" 0
    (counter_of r "prepare_teardowns")

let () =
  Alcotest.run "strategy"
    [
      ( "equivalence",
        [
          Alcotest.test_case "composed replays pre-refactor golden digests"
            `Slow test_composed_replays_golden;
        ] );
      ( "registry",
        [ Alcotest.test_case "names, aliases, dials" `Quick test_registry ] );
      ( "reconf-churn",
        [
          Alcotest.test_case "soak: every strategy, churn-heavy seeds" `Slow
            test_reconf_churn_all_strategies;
        ] );
      ( "matchmaker",
        [
          Alcotest.test_case "early prepare fires and confirms" `Quick
            test_matchmaker_prepares;
          Alcotest.test_case "wedged window no worse than composed" `Quick
            test_matchmaker_window_no_worse;
          Alcotest.test_case "composed sends no prepares" `Quick
            test_composed_sends_no_prepares;
        ] );
    ]
