(* Shared corpus for the strategy-equivalence check.

   These are the historically load-bearing crucible traces — the PR-4
   first-wedge-wins reconfiguration race and the PR-8/PR-9 batched churn
   shape — plus a few generated seeds, each reduced to a stable digest of
   the runner's deterministic outputs.  [Record_equiv] runs them against
   the tree and freezes the digests in
   [test/data/strategy_equivalence.expected]; [Test_strategy] replays the
   same corpus through the (refactored) default strategy and demands
   bit-for-bit equality.

   The digest deliberately covers only fields that define the observable
   schedule and the replicated state: event count, end time, workload
   totals, final membership, final application snapshots and the
   per-instance epoch audit records.  Counters, spans and Observatory
   output are excluded — those are telemetry and are allowed to grow. *)

module Scenario = Rsmr_crucible.Scenario
module Generate = Rsmr_crucible.Generate
module Runner = Rsmr_crucible.Runner
module Service = Rsmr_core.Service
module Churn = Rsmr_shard.Churn

(* PR-4: two Reconfigure submissions race in the same epoch. *)
let concurrent_reconf =
  {
    Scenario.seed = 4242;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3; 4 ];
    n_clients = 2;
    duration = 1.5;
    events =
      [
        { Scenario.at = 0.3; fault = Scenario.Reconfigure [ 0; 1; 3 ] };
        { Scenario.at = 0.3; fault = Scenario.Reconfigure [ 1; 2; 4 ] };
        { Scenario.at = 0.8; fault = Scenario.Reconfigure [ 0; 1; 2 ] };
      ];
  }

(* PR-8/PR-9: multi-command slots through reconfiguration churn, a
   duplicate storm and background loss. *)
let batched_churn =
  {
    Scenario.seed = 808;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3; 4 ];
    n_clients = 4;
    duration = 2.0;
    events =
      Scenario.sort_events
        [
          { Scenario.at = 0.2; fault = Scenario.Duplicate 0.3 };
          { Scenario.at = 0.3; fault = Scenario.Drop 0.05 };
          { Scenario.at = 0.4; fault = Scenario.Reconfigure [ 1; 2; 3 ] };
          { Scenario.at = 0.9; fault = Scenario.Reconfigure [ 2; 3; 4 ] };
          { Scenario.at = 1.2; fault = Scenario.Duplicate 0.0 };
          { Scenario.at = 1.4; fault = Scenario.Reconfigure [ 0; 1; 2 ] };
          { Scenario.at = 1.6; fault = Scenario.Drop 0.0 };
        ];
  }

let generated_seeds = [ 3; 11; 42 ]

(* (label, scenario) pairs, run under core and stopworld. *)
let corpus =
  [
    ("concurrent_reconf", concurrent_reconf);
    ("batched_churn", batched_churn);
  ]
  @ List.map
      (fun s -> (Printf.sprintf "gen_seed_%d" s, Generate.scenario ~seed:s))
      generated_seeds

(* Platform-level dir_churn seeds kept in the corpus: the storm
   regression plus a couple of seeded schedules, over both blocks. *)
let churn_seeds = [ 0; 7 ]

(* --- canonical rendering + digest --- *)

let fnv1a (s : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let render_ints b ns =
  Buffer.add_char b '[';
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int n))
    ns;
  Buffer.add_char b ']'

let render_report proto_name (r : Runner.report) =
  let b = Buffer.create 512 in
  Buffer.add_string b proto_name;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "events=%d\n" r.Runner.events_executed);
  Buffer.add_string b (Printf.sprintf "end=%.9f\n" r.Runner.end_time);
  Buffer.add_string b
    (Printf.sprintf "submitted=%d completed=%d acked_incr=%d\n"
       r.Runner.submitted r.Runner.completed r.Runner.acked_incr);
  Buffer.add_string b
    (Printf.sprintf "quiesced=%b converged=%b\n" r.Runner.quiesced
       r.Runner.converged);
  Buffer.add_string b "members=";
  render_ints b r.Runner.final_members;
  Buffer.add_char b '\n';
  List.iter
    (fun (n, s) ->
      Buffer.add_string b (Printf.sprintf "state %d %s\n" n (fnv1a s)))
    r.Runner.final_states;
  (match r.Runner.final_counter with
  | Some c -> Buffer.add_string b (Printf.sprintf "counter=%d\n" c)
  | None -> Buffer.add_string b "counter=-\n");
  List.iter
    (fun (node, stats) ->
      List.iter
        (fun (s : Service.epoch_stat) ->
          Buffer.add_string b
            (Printf.sprintf "epoch %d %d act=%b ret=%b wedge=%s hi=%d\n" node
               s.Service.es_epoch s.Service.es_activated s.Service.es_retired
               (match s.Service.es_wedged_at with
               | None -> "-"
               | Some w -> string_of_int w)
               s.Service.es_applied_hi))
        stats)
    r.Runner.epoch_stats;
  Buffer.contents b

let run_digest proto proto_name sc =
  let r = Runner.run proto sc in
  fnv1a (render_report proto_name r)

let churn_digest proto seed ~storm =
  let r =
    if storm then Churn.redirect_storm proto
    else Churn.run proto ~seed
  in
  fnv1a
    (Printf.sprintf "%s seed=%d cmds=%d replies=%d reb=%d redir=%d regr=%d ok=%b"
       (Churn.proto_name proto) seed r.Churn.r_commands r.Churn.r_replies
       r.Churn.r_rebalances r.Churn.r_redirects r.Churn.r_regressions
       (Churn.failures r = []))

(* Every (key, digest) line the expected file must contain, in order.
   [protos] names runner protocols by string so this module stays valid
   across the strategy refactor: the recorder and the test both resolve
   names through [Runner.proto_of_string]. *)
let service_protos = [ "core"; "stopworld" ]

let all_lines () =
  let service =
    List.concat_map
      (fun (label, sc) ->
        List.filter_map
          (fun pname ->
            match Runner.proto_of_string pname with
            | None -> None
            | Some proto ->
              Some
                ( Printf.sprintf "svc/%s/%s" pname label,
                  run_digest proto pname sc ))
          service_protos)
      corpus
  in
  let churn =
    List.concat_map
      (fun proto ->
        let pname = Churn.proto_name proto in
        (Printf.sprintf "churn/%s/storm" pname,
         churn_digest proto Churn.storm_seed ~storm:true)
        :: List.map
             (fun seed ->
               ( Printf.sprintf "churn/%s/seed_%d" pname seed,
                 churn_digest proto seed ~storm:false ))
             churn_seeds)
      [ Churn.Core; Churn.Vr ]
  in
  service @ churn
