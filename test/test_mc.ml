(* Scope (the explicit-state model checker) end-to-end: a tiny scope
   must exhaust with zero violations while still reaching the protocol's
   milestones (a wedge and an epoch-1 activation), re-breaking the
   first-wedge-wins guard must produce a short replayable counterexample
   (the checker's teeth), replays must be bit-for-bit deterministic
   (fingerprint sequence identical across independent replays of the
   same trace), and composite fingerprints must not depend on the order
   their parts were gathered in. *)

module Scope = Rsmr_mc.Scope
module Choice = Rsmr_mc.Choice
module Harness = Rsmr_mc.Harness
module Explore = Rsmr_mc.Explore
module Fingerprint = Rsmr_mc.Fingerprint

let tiny_scope =
  match Scope.parse "minimal,commands=1,timer_fires=1" with
  | Ok s -> s
  | Error e -> failwith e

(* --- exhaustion: tiny scope, both protocol configurations --- *)

let test_exhaust proto () =
  let stats =
    Explore.run ~proto ~scope:tiny_scope ~mutate:false ~strategy:Explore.Bfs ()
  in
  Alcotest.(check bool) "exhausted" true stats.Explore.exhausted;
  Alcotest.(check bool) "no violation" true (stats.Explore.violation = None);
  Alcotest.(check bool) "nontrivial" true (stats.Explore.visited > 1000);
  let cov = stats.Explore.coverage in
  Alcotest.(check bool) "reached a wedge" true cov.Harness.cov_wedged;
  Alcotest.(check bool) "activated epoch 1" true cov.Harness.cov_activated;
  Alcotest.(check bool) "client got a reply" true (cov.Harness.cov_replies >= 1)

(* --- teeth: the mutation must yield a short counterexample --- *)

let find_counterexample () =
  let stats =
    Explore.run ~proto:Harness.core ~scope:Scope.minimal ~mutate:true
      ~strategy:Explore.Bfs ()
  in
  match stats.Explore.violation with
  | None -> Alcotest.fail "mutated exploration found no violation"
  | Some (prop, trace) -> (prop, trace)

let test_mutation_counterexample () =
  let prop, trace = find_counterexample () in
  Alcotest.(check bool)
    "epoch-prefix property violated" true
    (String.length prop >= 12 && String.sub prop 0 12 = "epoch-prefix");
  Alcotest.(check bool)
    "counterexample is short (a few dozen steps)" true
    (List.length trace <= 36);
  (* the trace must reproduce the violation when replayed from scratch *)
  let h =
    Harness.replay ~proto:Harness.core ~scope:Scope.minimal ~mutate:true trace
  in
  (match Harness.violation h with
   | Some p -> Alcotest.(check string) "replayed violation" prop p
   | None -> Alcotest.fail "replaying the counterexample showed no violation");
  (* and it must round-trip through the trace string format *)
  let s = Choice.seq_to_string trace in
  match Choice.seq_of_string s with
  | Some trace' ->
    Alcotest.(check bool) "trace round-trips" true
      (List.for_all2 Choice.equal trace trace')
  | None -> Alcotest.fail "trace failed to parse back"

(* --- bit-for-bit determinism: independent replays agree stepwise --- *)

let fingerprint_film trace =
  let h =
    Harness.create ~proto:Harness.core ~scope:Scope.minimal ~mutate:true ()
  in
  let film = ref [ Harness.fingerprint h ] in
  List.iter
    (fun c ->
      Harness.apply h c;
      film := Harness.fingerprint h :: !film)
    trace;
  List.rev !film

let test_replay_determinism () =
  let _, trace = find_counterexample () in
  let a = fingerprint_film trace in
  let b = fingerprint_film trace in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      if not (Fingerprint.equal x y) then
        Alcotest.failf "fingerprint diverged at step %d: %s vs %s" i
          (Fingerprint.to_hex x) (Fingerprint.to_hex y))
    (List.combine a b)

(* --- fingerprints are insertion-order independent --- *)

let kv_gen =
  QCheck.Gen.(
    list_size (int_range 1 8)
      (pair (string_size (int_bound 12)) (string_size (int_bound 24))))

(* deterministic pseudo-shuffle: sort by a keyed digest of each binding *)
let shuffle salt kvs =
  List.map snd
    (List.sort compare
       (List.map
          (fun (k, v) ->
            (Fingerprint.of_string (Printf.sprintf "%d|%s|%s" salt k v), (k, v)))
          kvs))

let prop_of_kv_order_independent =
  QCheck.Test.make ~name:"of_kv is insertion-order independent" ~count:500
    (QCheck.make QCheck.Gen.(pair small_int kv_gen))
    (fun (salt, kvs) ->
      Fingerprint.equal (Fingerprint.of_kv kvs)
        (Fingerprint.of_kv (shuffle salt kvs))
      && Fingerprint.equal (Fingerprint.of_kv kvs)
           (Fingerprint.of_kv (List.rev kvs)))

let prop_of_kv_framed =
  QCheck.Test.make ~name:"of_kv distinguishes rebracketed bindings" ~count:500
    (QCheck.make (QCheck.Gen.pair QCheck.Gen.string QCheck.Gen.string))
    (fun (a, b) ->
      (* moving a character across the k/v boundary must change the
         digest: length framing prevents ("ab","c") ~ ("a","bc") *)
      String.length a = 0
      || Fingerprint.equal
           (Fingerprint.of_kv [ (a, b) ])
           (Fingerprint.of_kv
              [ (String.sub a 0 (String.length a - 1),
                 String.make 1 a.[String.length a - 1] ^ b) ])
         = false)

let () =
  Alcotest.run "mc"
    [
      ( "exhaustion",
        [
          Alcotest.test_case "core tiny scope" `Slow (test_exhaust Harness.core);
          Alcotest.test_case "stopworld tiny scope" `Slow
            (test_exhaust Harness.stopworld);
        ] );
      ( "teeth",
        [
          Alcotest.test_case "mutation yields counterexample" `Slow
            test_mutation_counterexample;
          Alcotest.test_case "replay is bit-for-bit deterministic" `Slow
            test_replay_determinism;
        ] );
      ( "fingerprint",
        [
          QCheck_alcotest.to_alcotest prop_of_kv_order_independent;
          QCheck_alcotest.to_alcotest prop_of_kv_framed;
        ] );
    ]
