(* Crucible self-tests: scenario codec, shrinker behavior, run
   determinism, a cross-protocol smoke soak, and the first-wedge-wins
   regression for concurrent reconfiguration submissions. *)

module Scenario = Rsmr_crucible.Scenario
module Generate = Rsmr_crucible.Generate
module Runner = Rsmr_crucible.Runner
module Oracle = Rsmr_crucible.Oracle
module Shrink = Rsmr_crucible.Shrink
module Soak = Rsmr_crucible.Soak
module Service = Rsmr_core.Service

let scenario = Alcotest.testable Scenario.pp Scenario.equal

(* One of everything, for the codec. *)
let kitchen_sink =
  {
    Scenario.seed = 99;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3; 4 ];
    n_clients = 2;
    duration = 1.75;
    events =
      Scenario.sort_events
        [
          { at = 0.1; fault = Crash 2 };
          { at = 0.25; fault = Partition [ [ 0; 1 ]; [ 2; 3; 4 ] ] };
          { at = 0.4; fault = Link_fault { src = 0; dst = 1; drop = 0.5 } };
          { at = 0.5; fault = Duplicate 0.8 };
          { at = 0.55; fault = Drop 0.25 };
          { at = 0.6; fault = Recover 2 };
          { at = 0.7; fault = Heal };
          { at = 0.75; fault = Clear_links };
          { at = 0.8; fault = Reconfigure [ 0; 1; 3 ] };
          { at = 0.9; fault = Duplicate 0.0 };
          { at = 0.95; fault = Drop 0.0 };
        ];
  }

let round_trip sc =
  match Scenario.of_string (Scenario.to_string sc) with
  | Ok sc' -> Alcotest.check scenario "round trip" sc sc'
  | Error e ->
    Alcotest.failf "parse error on %s: %s" (Scenario.to_string sc) e

let test_codec_round_trip () =
  round_trip kitchen_sink;
  for seed = 0 to 24 do
    round_trip (Generate.scenario ~seed)
  done

let test_codec_rejects_garbage () =
  List.iter
    (fun s ->
      match Scenario.of_string s with
      | Ok _ -> Alcotest.failf "accepted garbage %S" s
      | Error _ -> ())
    [
      "";
      "nonsense";
      "s=1;m=0,1,2;u=0,1,2;c=1";
      "s=1;m=0,1,2;u=0,1,2;c=0;d=1;ev=";
      "s=1;m=;u=0;c=1;d=1;ev=";
      "s=1;m=0,1,2;u=0,1,2;c=1;d=1;ev=0.5 explode 1";
      "s=1;m=0,1,2;u=0,1,2;c=1;d=1;ev=0.5 link 0-1 0.5";
      "s=1;m=0,1,2;u=0,1,2;c=1;d=-2;ev=";
    ]

let test_generator_deterministic () =
  for seed = 0 to 24 do
    Alcotest.check scenario "same seed, same scenario"
      (Generate.scenario ~seed) (Generate.scenario ~seed)
  done

(* --- shrinker --- *)

(* A synthetic failure predicate lets us pin the shrinker's contract
   without paying for cluster runs: the scenario "fails" iff it still
   contains the fatal event. *)
let fatal = { Scenario.at = 0.7; fault = Scenario.Crash 2 }

let noisy_scenario =
  {
    Scenario.seed = 7;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3 ];
    n_clients = 3;
    duration = 2.0;
    events =
      Scenario.sort_events
        [
          { at = 0.1; fault = Scenario.Drop 0.1 };
          { at = 0.2; fault = Scenario.Partition [ [ 0 ]; [ 1; 2 ] ] };
          { at = 0.5; fault = Scenario.Heal };
          fatal;
          { at = 0.9; fault = Scenario.Recover 2 };
          { at = 1.2; fault = Scenario.Duplicate 0.5 };
          { at = 1.4; fault = Scenario.Duplicate 0.0 };
        ];
  }

let contains_fatal sc =
  List.exists
    (fun e -> Scenario.equal { sc with Scenario.events = [ e ] }
                { sc with Scenario.events = [ fatal ] })
    sc.Scenario.events

let test_shrink_to_fatal_event () =
  let shrunk, attempts =
    Shrink.minimize ~still_fails:contains_fatal noisy_scenario
  in
  (match shrunk.Scenario.events with
   | [ e ] ->
     Alcotest.(check (float 0.0)) "fatal time kept" fatal.Scenario.at
       e.Scenario.at
   | evs -> Alcotest.failf "expected exactly the fatal event, got %d" (List.length evs));
  Alcotest.(check bool) "still fails" true (contains_fatal shrunk);
  Alcotest.(check int) "one client left" 1 shrunk.Scenario.n_clients;
  Alcotest.(check bool) "spent attempts" true (attempts > 0);
  Alcotest.(check bool) "bounded attempts" true (attempts <= 200)

let test_shrink_deterministic () =
  let a, na = Shrink.minimize ~still_fails:contains_fatal noisy_scenario in
  let b, nb = Shrink.minimize ~still_fails:contains_fatal noisy_scenario in
  Alcotest.check scenario "same minimum" a b;
  Alcotest.(check int) "same attempt count" na nb

let test_shrink_always_failing () =
  (* If everything fails the shrinker must bottom out: no events, one
     client, short window — and still within its budget. *)
  let shrunk, attempts =
    Shrink.minimize ~still_fails:(fun _ -> true) noisy_scenario
  in
  Alcotest.(check int) "no events" 0 (List.length shrunk.Scenario.events);
  Alcotest.(check int) "one client" 1 shrunk.Scenario.n_clients;
  Alcotest.(check bool) "short window" true (shrunk.Scenario.duration <= 0.25);
  Alcotest.(check bool) "bounded" true (attempts <= 200)

(* --- full runs --- *)

let run_twice proto sc =
  (Runner.run proto sc, Runner.run proto sc)

let fingerprint (r : Runner.report) =
  ( r.Runner.events_executed,
    r.Runner.end_time,
    r.Runner.submitted,
    r.Runner.completed,
    r.Runner.acked_incr,
    r.Runner.final_states )

let test_run_deterministic () =
  List.iter
    (fun proto ->
      let sc = Generate.scenario ~seed:3 in
      let a, b = run_twice proto sc in
      Alcotest.(check bool)
        (Printf.sprintf "%s run is bit-for-bit repeatable"
           (Runner.proto_name proto))
        true
        (fingerprint a = fingerprint b))
    Runner.all_protos

let test_smoke_all_protos () =
  (* A handful of seeds across every stack; any oracle failure is a real
     protocol or harness bug and must fail the suite loudly. *)
  let summary =
    Soak.soak ~protos:Runner.all_protos ~seeds:[ 0; 1; 2; 3; 4 ] ()
  in
  List.iter
    (fun f -> Format.printf "%a@." Soak.pp_failure f)
    summary.Soak.failures;
  Alcotest.(check int) "runs" 20 summary.Soak.runs;
  Alcotest.(check int) "no failures" 0 (List.length summary.Soak.failures)

let test_replay_matches_soak () =
  (* The printed reproducer must denote the same scenario: text → parse →
     run gives the same fingerprint as running the original. *)
  let sc = Generate.scenario ~seed:11 in
  match Scenario.of_string (Scenario.to_string sc) with
  | Error e -> Alcotest.failf "reproducer does not parse: %s" e
  | Ok sc' ->
    let a = Runner.run Runner.core sc in
    let b = Runner.run Runner.core sc' in
    Alcotest.(check bool) "replay is bit-for-bit" true
      (fingerprint a = fingerprint b)

(* --- first-wedge-wins regression ---

   Two Reconfigure submissions land in the same epoch at the same
   instant.  The composed service must let exactly one wedge the epoch:
   every replica that wedges epoch e agrees on the wedge index, the
   losing submission is reduced to a residual (applied or superseded in
   e+1), and no instance applies anything past its wedge. *)

let concurrent_reconf =
  {
    Scenario.seed = 4242;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3; 4 ];
    n_clients = 2;
    duration = 1.5;
    events =
      [
        { Scenario.at = 0.3; fault = Scenario.Reconfigure [ 0; 1; 3 ] };
        { Scenario.at = 0.3; fault = Scenario.Reconfigure [ 1; 2; 4 ] };
        { Scenario.at = 0.8; fault = Scenario.Reconfigure [ 0; 1; 2 ] };
      ];
  }

let test_first_wedge_wins () =
  let report = Runner.run Runner.core concurrent_reconf in
  let outcome = Oracle.check report in
  if not (Oracle.ok outcome) then
    Alcotest.failf "oracles failed: %s" (Format.asprintf "%a" Oracle.pp outcome);
  (* Collect every (epoch, wedge index) the replicas report. *)
  let wedges = Hashtbl.create 8 in
  let wedged_epochs = ref [] in
  List.iter
    (fun (_node, stats) ->
      List.iter
        (fun (s : Service.epoch_stat) ->
          match s.Service.es_wedged_at with
          | None -> ()
          | Some w -> (
            match Hashtbl.find_opt wedges s.Service.es_epoch with
            | None ->
              Hashtbl.add wedges s.Service.es_epoch w;
              wedged_epochs := s.Service.es_epoch :: !wedged_epochs
            | Some w' ->
              Alcotest.(check int)
                (Printf.sprintf "epoch %d wedge agreement" s.Service.es_epoch)
                w' w))
        stats)
    report.Runner.epoch_stats;
  (* The concurrent submissions really did reconfigure: epoch 0 wedged,
     and with three submissions at least two epochs wedged overall. *)
  Alcotest.(check bool) "epoch 0 wedged" true (Hashtbl.mem wedges 0);
  Alcotest.(check bool) "reconfiguration chain advanced" true
    (List.length !wedged_epochs >= 2);
  (* No replica applied past its epoch's wedge index. *)
  List.iter
    (fun (node, stats) ->
      List.iter
        (fun (s : Service.epoch_stat) ->
          match s.Service.es_wedged_at with
          | Some w when s.Service.es_applied_hi > w ->
            Alcotest.failf "node %d epoch %d applied %d past wedge %d" node
              s.Service.es_epoch s.Service.es_applied_hi w
          | _ -> ())
        stats)
    report.Runner.epoch_stats;
  Alcotest.(check bool) "run quiesced" true report.Runner.quiesced;
  Alcotest.(check bool) "run converged" true report.Runner.converged

(* --- batched fast path under churn ---

   Batching, pipelining and client coalescing are default-on, and the
   runner drives 4-deep client windows, so this scenario pushes
   multi-command slots through reconfiguration churn, a duplicate storm
   and background loss on every stack.  The exactly-once and epoch-prefix
   oracles must hold: a batch is never applied twice, split, or carried
   past a wedge. *)

let batched_churn =
  {
    Scenario.seed = 808;
    members = [ 0; 1; 2 ];
    universe = [ 0; 1; 2; 3; 4 ];
    n_clients = 4;
    duration = 2.0;
    events =
      Scenario.sort_events
        [
          { Scenario.at = 0.2; fault = Scenario.Duplicate 0.3 };
          { Scenario.at = 0.3; fault = Scenario.Drop 0.05 };
          { Scenario.at = 0.4; fault = Scenario.Reconfigure [ 1; 2; 3 ] };
          { Scenario.at = 0.9; fault = Scenario.Reconfigure [ 2; 3; 4 ] };
          { Scenario.at = 1.2; fault = Scenario.Duplicate 0.0 };
          { Scenario.at = 1.4; fault = Scenario.Reconfigure [ 0; 1; 2 ] };
          { Scenario.at = 1.6; fault = Scenario.Drop 0.0 };
        ];
  }

let test_batched_fast_path_under_churn () =
  List.iter
    (fun proto ->
      let report = Runner.run proto batched_churn in
      let outcome = Oracle.check report in
      if not (Oracle.ok outcome) then
        Alcotest.failf "%s oracles failed: %s" (Runner.proto_name proto)
          (Format.asprintf "%a" Oracle.pp outcome);
      Alcotest.(check bool)
        (Runner.proto_name proto ^ " quiesced")
        true report.Runner.quiesced)
    Runner.all_protos

(* --- dir_churn: platform-level churn family --- *)

module Churn = Rsmr_shard.Churn

let test_dir_churn_smoke () =
  (* A few quick seeds of the platform churn family, both composition
     blocks — the full soak runs in CI; this guards the harness itself
     (a platform wiring regression should fail here, not only in CI). *)
  List.iter
    (fun proto ->
      List.iter
        (fun seed ->
          let r = Churn.run ~quick:true proto ~seed in
          if Churn.failures r <> [] then
            Alcotest.failf "%a@.replay: %s" Churn.pp_report r
              (Churn.replay_command proto seed))
        [ 0; 1 ])
    [ Churn.Core; Churn.Vr ]

let test_dir_churn_redirect_storm () =
  (* The PR-4 redirect-storm regression, now against the replicated
     directory: blackout + concurrent rebalances of both shards must
     drain with bounded redirect traffic. *)
  List.iter
    (fun proto ->
      let r = Churn.redirect_storm ~quick:true proto in
      if Churn.failures r <> [] then
        Alcotest.failf "%a" Churn.pp_report r)
    [ Churn.Core; Churn.Vr ]

let () =
  Alcotest.run "crucible"
    [
      ( "scenario",
        [
          Alcotest.test_case "codec round trip" `Quick test_codec_round_trip;
          Alcotest.test_case "codec rejects garbage" `Quick
            test_codec_rejects_garbage;
          Alcotest.test_case "generator deterministic" `Quick
            test_generator_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "known-fatal event isolated" `Quick
            test_shrink_to_fatal_event;
          Alcotest.test_case "deterministic" `Quick test_shrink_deterministic;
          Alcotest.test_case "always-failing bottoms out" `Quick
            test_shrink_always_failing;
        ] );
      ( "runs",
        [
          Alcotest.test_case "bit-for-bit determinism" `Quick
            test_run_deterministic;
          Alcotest.test_case "replay equals original" `Quick
            test_replay_matches_soak;
          Alcotest.test_case "smoke soak, all protocols" `Slow
            test_smoke_all_protos;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "first wedge wins" `Quick test_first_wedge_wins;
          Alcotest.test_case "batched fast path under churn" `Quick
            test_batched_fast_path_under_churn;
        ] );
      ( "dir_churn",
        [
          Alcotest.test_case "platform churn smoke" `Quick
            test_dir_churn_smoke;
          Alcotest.test_case "redirect storm regression" `Quick
            test_dir_churn_redirect_storm;
        ] );
    ]
