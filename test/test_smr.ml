(* Tests for the static Multi-Paxos building block: elections, ordered
   delivery, agreement under crashes / loss / partitions. *)

module Engine = Rsmr_sim.Engine
module Network = Rsmr_net.Network
module Latency = Rsmr_net.Latency
module Ballot = Rsmr_smr.Ballot
module Config = Rsmr_smr.Config
module Log = Rsmr_smr.Log
module Msg = Rsmr_smr.Msg
module Replica = Rsmr_smr.Replica

(* --- unit tests for sub-modules --- *)

let test_ballot_order () =
  let b1 = { Ballot.round = 1; node = 2 } in
  let b2 = { Ballot.round = 1; node = 3 } in
  let b3 = { Ballot.round = 2; node = 0 } in
  Alcotest.(check bool) "zero smallest" true Ballot.(zero < b1);
  Alcotest.(check bool) "node breaks ties" true Ballot.(b1 < b2);
  Alcotest.(check bool) "round dominates" true Ballot.(b2 < b3);
  let n = Ballot.next b2 7 in
  Alcotest.(check bool) "next is larger" true Ballot.(b2 < n);
  Alcotest.(check int) "next owned by me" 7 n.Ballot.node

let test_config_quorum () =
  let c = Config.make ~instance_id:0 ~members:[ 3; 1; 2; 1 ] in
  Alcotest.(check int) "dedup" 3 (Config.size c);
  Alcotest.(check int) "quorum of 3" 2 (Config.quorum c);
  Alcotest.(check bool) "member" true (Config.is_member c 2);
  Alcotest.(check bool) "non member" false (Config.is_member c 9);
  Alcotest.(check (list int)) "others" [ 1; 3 ] (Config.others c 2);
  let c5 = Config.make ~instance_id:1 ~members:[ 0; 1; 2; 3; 4 ] in
  Alcotest.(check int) "quorum of 5" 3 (Config.quorum c5)

let test_log_basics () =
  let l = Log.create () in
  Alcotest.(check int) "empty length" 0 (Log.length l);
  Log.set l 2 { Log.ballot = Ballot.zero; kind = Log.Value "x" };
  Alcotest.(check int) "length tracks highest" 3 (Log.length l);
  Alcotest.(check bool) "hole is None" true (Log.get l 0 = None);
  Log.set l 0 { Log.ballot = Ballot.zero; kind = Log.Value "a" };
  Log.mark_committed l 0;
  Alcotest.(check int) "prefix after 0" 1 (Log.committed_prefix l);
  Log.mark_committed l 2;
  Alcotest.(check int) "gap blocks prefix" 1 (Log.committed_prefix l);
  Log.set_committed l 1 Log.Noop;
  Alcotest.(check int) "prefix jumps over filled gap" 3 (Log.committed_prefix l)

let test_log_uncommitted_range () =
  let l = Log.create () in
  for i = 0 to 4 do
    Log.set l i { Log.ballot = Ballot.zero; kind = Log.Value (string_of_int i) }
  done;
  Log.mark_committed l 0;
  Log.mark_committed l 1;
  let unc = Log.uncommitted_range l ~lo:(Log.committed_prefix l) in
  Alcotest.(check (list int)) "uncommitted indices" [ 2; 3; 4 ]
    (List.map fst unc)

let msg_roundtrip_cases =
  [
    Msg.Prepare { ballot = { Ballot.round = 3; node = 1 }; from_index = 7 };
    Msg.Promise
      {
        ballot = { Ballot.round = 3; node = 1 };
        from_index = 7;
        entries =
          [
            (7, { Log.ballot = { Ballot.round = 2; node = 0 }; kind = Log.Noop });
            (9, { Log.ballot = { Ballot.round = 1; node = 2 }; kind = Log.Value "cmd" });
          ];
        commit_index = 6;
      };
    Msg.Reject
      { ballot = { Ballot.round = 1; node = 1 }; higher = { Ballot.round = 5; node = 0 } };
    Msg.Accept
      {
        ballot = { Ballot.round = 2; node = 2 };
        index = 4;
        kind = Log.Value "v";
        commit_index = 3;
      };
    Msg.Accepted { ballot = { Ballot.round = 2; node = 2 }; index = 4 };
    Msg.Heartbeat { ballot = { Ballot.round = 2; node = 2 }; commit_index = 10 };
    Msg.Learn_req { from_index = 3 };
    Msg.Learn_rsp
      { entries = [ (3, Log.Value "a"); (4, Log.Noop) ]; commit_index = 5 };
    Msg.Submit { value = "payload" };
    Msg.Submit_multi { values = [ "first"; "second"; "third" ] };
    Msg.Accept_multi
      {
        ballot = { Ballot.round = 4; node = 1 };
        from_index = 12;
        kinds = [ Log.Value "a"; Log.Noop; Log.Value "b" ];
        commit_index = 11;
      };
    Msg.Accepted_multi
      { ballot = { Ballot.round = 4; node = 1 }; from_index = 12; upto = 14 };
  ]

let test_msg_roundtrip () =
  List.iter
    (fun m ->
      let m' = Msg.decode (Msg.encode m) in
      if m' <> m then
        Alcotest.failf "roundtrip failed for %a" Msg.pp m)
    msg_roundtrip_cases

let test_msg_size_positive () =
  List.iter
    (fun m ->
      if Msg.size m <= 0 then Alcotest.failf "non-positive size for %a" Msg.pp m)
    msg_roundtrip_cases

(* --- cluster harness --- *)

module Cluster = struct
  type t = {
    engine : Engine.t;
    net : Msg.t Network.t;
    replicas : Replica.t array;
    decided : (int * string) list ref array; (* newest first *)
  }

  let create ?(seed = 1) ?(drop = 0.0) ?(latency = Latency.lan) ?params n =
    let engine = Engine.create ~seed () in
    let net =
      Network.create engine ~latency ~drop ~tagger:Msg.tag ~sizer:Msg.size ()
    in
    let cfg = Config.make ~instance_id:0 ~members:(List.init n Fun.id) in
    let decided = Array.init n (fun _ -> ref []) in
    let replicas =
      Array.init n (fun i ->
          Replica.create ~engine ?params ~config:cfg ~me:i
            ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
            ~on_decide:(fun idx v -> decided.(i) := (idx, v) :: !(decided.(i)))
            ())
    in
    Array.iteri
      (fun i r ->
        Network.register net i (fun env ->
            Replica.handle r ~src:env.Network.src env.Network.payload))
      replicas;
    { engine; net; replicas; decided }

  let run t ~until = Engine.run ~until t.engine

  let leader t =
    let rec find i =
      if i >= Array.length t.replicas then None
      else if Replica.is_leader t.replicas.(i) && not (Network.is_crashed t.net i)
      then Some i
      else find (i + 1)
    in
    find 0

  let decided_values t i = List.rev_map snd !(t.decided.(i))

  (* Submit via the current leader if any, else via replica 0. *)
  let submit t v =
    let target = Option.value (leader t) ~default:0 in
    Replica.submit t.replicas.(target) v
end

let run_until_leader cluster ~deadline =
  let rec loop horizon =
    Cluster.run cluster ~until:horizon;
    match Cluster.leader cluster with
    | Some l -> l
    | None ->
      if horizon >= deadline then Alcotest.fail "no leader elected in time"
      else loop (horizon +. 0.05)
  in
  loop 0.05

let test_election () =
  let c = Cluster.create 3 in
  let leader = run_until_leader c ~deadline:2.0 in
  Alcotest.(check bool) "leader exists" true (leader >= 0 && leader < 3);
  (* Exactly one leader in steady state. *)
  Cluster.run c ~until:3.0;
  let leaders =
    Array.to_list c.Cluster.replicas
    |> List.filter Replica.is_leader |> List.length
  in
  Alcotest.(check int) "exactly one leader" 1 leaders

let test_single_command () =
  let c = Cluster.create 3 in
  let _ = run_until_leader c ~deadline:2.0 in
  Cluster.submit c "hello";
  Cluster.run c ~until:5.0;
  for i = 0 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d decided" i)
      [ "hello" ]
      (Cluster.decided_values c i)
  done

let test_many_commands_agree () =
  let c = Cluster.create 5 in
  let _ = run_until_leader c ~deadline:2.0 in
  for i = 1 to 50 do
    Cluster.submit c (Printf.sprintf "cmd%02d" i)
  done;
  Cluster.run c ~until:10.0;
  let reference = Cluster.decided_values c 0 in
  Alcotest.(check int) "all 50 decided" 50 (List.length reference);
  for i = 1 to 4 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d agrees" i)
      reference
      (Cluster.decided_values c i)
  done

let test_commands_in_submission_order () =
  (* With a single stable leader and no loss, decided order must equal
     submission order. *)
  let c = Cluster.create 3 in
  let _ = run_until_leader c ~deadline:2.0 in
  let cmds = List.init 20 (Printf.sprintf "c%d") in
  List.iter (Cluster.submit c) cmds;
  Cluster.run c ~until:5.0;
  Alcotest.(check (list string)) "order preserved" cmds
    (Cluster.decided_values c 0)

let test_leader_crash_failover () =
  let c = Cluster.create 3 in
  let leader = run_until_leader c ~deadline:2.0 in
  Cluster.submit c "before-crash";
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 1.0);
  Network.crash c.Cluster.net leader;
  (* A new leader must emerge among the remaining two. *)
  let rec wait_new horizon =
    Cluster.run c ~until:horizon;
    match Cluster.leader c with
    | Some l when l <> leader -> l
    | _ ->
      if horizon > 20.0 then Alcotest.fail "no failover" else wait_new (horizon +. 0.1)
  in
  let new_leader = wait_new (Engine.now c.Cluster.engine +. 0.1) in
  Replica.submit c.Cluster.replicas.(new_leader) "after-crash";
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 2.0);
  let survivor = List.nth (List.filter (fun i -> i <> leader) [ 0; 1; 2 ]) 0 in
  Alcotest.(check (list string)) "history preserved across failover"
    [ "before-crash"; "after-crash" ]
    (Cluster.decided_values c survivor)

let test_commit_under_message_loss () =
  let c = Cluster.create ~seed:3 ~drop:0.10 3 in
  let _ = run_until_leader c ~deadline:5.0 in
  for i = 1 to 20 do
    Cluster.submit c (Printf.sprintf "lossy%02d" i)
  done;
  Cluster.run c ~until:30.0;
  (* All submitted commands eventually decided on every live replica, in
     identical order (submissions go through one leader; drops only delay). *)
  let d0 = Cluster.decided_values c 0 in
  Alcotest.(check int) "all decided despite loss" 20 (List.length d0);
  for i = 1 to 2 do
    Alcotest.(check (list string)) "replica agrees" d0 (Cluster.decided_values c i)
  done

let test_minority_partition_blocks_commit () =
  let c = Cluster.create 5 in
  let leader = run_until_leader c ~deadline:2.0 in
  (* Partition the leader together with exactly one other node: a minority. *)
  let other = if leader = 0 then 1 else 0 in
  let rest = List.filter (fun i -> i <> leader && i <> other) [ 0; 1; 2; 3; 4 ] in
  Network.partition c.Cluster.net [ [ leader; other ]; rest ];
  Replica.submit c.Cluster.replicas.(leader) "minority-cmd";
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 2.0);
  Alcotest.(check (list string)) "minority cannot commit" []
    (Cluster.decided_values c leader);
  (* Majority side elects its own leader and can commit. *)
  let majority_leader =
    match List.find_opt (fun i -> Replica.is_leader c.Cluster.replicas.(i)) rest with
    | Some l -> l
    | None -> Alcotest.fail "majority side has no leader"
  in
  Replica.submit c.Cluster.replicas.(majority_leader) "majority-cmd";
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 2.0);
  Alcotest.(check (list string)) "majority commits"
    [ "majority-cmd" ]
    (Cluster.decided_values c majority_leader);
  (* Heal: the old leader must abandon its uncommitted command and adopt
     the majority history. *)
  Network.heal c.Cluster.net;
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 5.0);
  let d = Cluster.decided_values c leader in
  Alcotest.(check bool) "healed node catches up with majority history" true
    (List.mem "majority-cmd" d);
  (* Prefix agreement across all replicas. *)
  let dvals = List.init 5 (Cluster.decided_values c) in
  List.iter
    (fun d' ->
      let rec prefix a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: xs, y :: ys -> x = y && prefix xs ys
      in
      Alcotest.(check bool) "pairwise prefix agreement" true
        (prefix d' (List.nth dvals 0) || prefix (List.nth dvals 0) d'))
    dvals

let test_single_member_cluster () =
  let c = Cluster.create 1 in
  let _ = run_until_leader c ~deadline:2.0 in
  Cluster.submit c "solo";
  Cluster.run c ~until:3.0;
  Alcotest.(check (list string)) "solo commit" [ "solo" ]
    (Cluster.decided_values c 0)

let test_halt_stops_participation () =
  let c = Cluster.create 3 in
  let leader = run_until_leader c ~deadline:2.0 in
  Replica.halt c.Cluster.replicas.(leader);
  Alcotest.(check bool) "halted" true (Replica.is_halted c.Cluster.replicas.(leader));
  (* Remaining replicas elect a replacement and still commit. *)
  let rec wait horizon =
    Cluster.run c ~until:horizon;
    match Cluster.leader c with
    | Some l when l <> leader -> l
    | _ -> if horizon > 20.0 then Alcotest.fail "no new leader" else wait (horizon +. 0.1)
  in
  let nl = wait (Engine.now c.Cluster.engine +. 0.1) in
  Replica.submit c.Cluster.replicas.(nl) "post-halt";
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 2.0);
  Alcotest.(check (list string)) "commit after halt" [ "post-halt" ]
    (Cluster.decided_values c nl);
  Alcotest.(check (list string)) "halted replica delivered nothing new" []
    (Cluster.decided_values c leader)

let test_follower_submit_forwards () =
  let c = Cluster.create 3 in
  let leader = run_until_leader c ~deadline:2.0 in
  let follower = if leader = 0 then 1 else 0 in
  Replica.submit c.Cluster.replicas.(follower) "via-follower";
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 2.0);
  Alcotest.(check (list string)) "forwarded and decided" [ "via-follower" ]
    (Cluster.decided_values c follower)

let test_duplicated_messages_agree () =
  (* Message duplication must not double-apply or break agreement. *)
  let engine = Engine.create ~seed:17 () in
  let net =
    Rsmr_net.Network.create engine ~duplicate:0.3 ~sizer:Msg.size ()
  in
  let cfg = Config.make ~instance_id:0 ~members:[ 0; 1; 2 ] in
  let decided = Array.init 3 (fun _ -> ref []) in
  let replicas =
    Array.init 3 (fun i ->
        Replica.create ~engine ~config:cfg ~me:i
          ~send:(fun ~dst msg -> Rsmr_net.Network.send net ~src:i ~dst msg)
          ~on_decide:(fun idx v -> decided.(i) := (idx, v) :: !(decided.(i)))
          ())
  in
  Array.iteri
    (fun i r ->
      Rsmr_net.Network.register net i (fun env ->
          Replica.handle r ~src:env.Rsmr_net.Network.src
            env.Rsmr_net.Network.payload))
    replicas;
  Engine.run ~until:2.0 engine;
  for i = 1 to 10 do
    (match
       Array.to_list replicas |> List.find_opt Replica.is_leader
     with
     | Some leader -> Replica.submit leader (Printf.sprintf "dup%d" i)
     | None -> Alcotest.fail "no leader");
    Engine.run ~until:(Engine.now engine +. 0.2) engine
  done;
  Engine.run ~until:(Engine.now engine +. 2.0) engine;
  let d0 = List.rev_map snd !(decided.(0)) in
  Alcotest.(check int) "exactly 10 decided despite duplicates" 10
    (List.length d0);
  for i = 1 to 2 do
    Alcotest.(check (list string)) "replicas agree" d0
      (List.rev_map snd !(decided.(i)))
  done

let test_lagging_follower_catches_up_via_learn () =
  (* Cut one follower off, commit traffic, reconnect: it must recover the
     missed decisions through the Learn protocol. *)
  let c = Cluster.create 3 in
  let leader = run_until_leader c ~deadline:2.0 in
  let laggard = if leader = 0 then 1 else 0 in
  (* Block everything to the laggard. *)
  List.iter
    (fun src ->
      if src <> laggard then
        Network.set_link_fault c.Cluster.net ~src ~dst:laggard ~drop:1.0)
    [ 0; 1; 2 ];
  for i = 1 to 15 do
    Cluster.submit c (Printf.sprintf "gap%02d" i)
  done;
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 3.0);
  Alcotest.(check int) "laggard saw nothing" 0
    (List.length (Cluster.decided_values c laggard));
  Network.clear_link_faults c.Cluster.net;
  Cluster.run c ~until:(Engine.now c.Cluster.engine +. 5.0);
  Alcotest.(check int) "laggard caught up" 15
    (List.length (Cluster.decided_values c laggard));
  Alcotest.(check (list string)) "identical order"
    (Cluster.decided_values c leader)
    (Cluster.decided_values c laggard)

let test_submit_during_election_eventually_decides () =
  (* Commands submitted before any leader exists are queued/forwarded and
     decided once the election completes. *)
  let c = Cluster.create ~seed:9 3 in
  Replica.submit c.Cluster.replicas.(0) "early-bird";
  Cluster.run c ~until:5.0;
  Alcotest.(check (list string)) "queued command decided" [ "early-bird" ]
    (Cluster.decided_values c 0)

let test_batching_reduces_messages () =
  (* Same 60 commands, with and without the 2ms batching window: batching
     must deliver identical results with far fewer accept messages. *)
  let run params =
    let c = Cluster.create ?params 3 in
    let _ = run_until_leader c ~deadline:2.0 in
    for i = 1 to 60 do
      Cluster.submit c (Printf.sprintf "b%02d" i)
    done;
    Cluster.run c ~until:10.0;
    let counters = Network.counters c.Cluster.net in
    ( Cluster.decided_values c 0,
      Cluster.decided_values c 1,
      Rsmr_sim.Counters.get counters "sent.accept",
      Rsmr_sim.Counters.get counters "sent.accept_multi" )
  in
  let d0, d1, accepts, multi = run (Some Rsmr_smr.Params.unbatched) in
  Alcotest.(check int) "unbatched: all decided" 60 (List.length d0);
  Alcotest.(check (list string)) "unbatched: agreement" d0 d1;
  Alcotest.(check int) "unbatched: no multi messages" 0 multi;
  let d0', d1', accepts', multi' =
    run (Some (Rsmr_smr.Params.with_batching 0.002))
  in
  Alcotest.(check int) "batched: all decided" 60 (List.length d0');
  Alcotest.(check (list string)) "batched: agreement" d0' d1';
  Alcotest.(check bool) "batched: multi messages used" true (multi' > 0);
  Alcotest.(check bool) "batched: fewer accepts" true
    (accepts' + (multi' * 2) < accepts)

let test_batching_preserves_order () =
  let c = Cluster.create ~params:(Rsmr_smr.Params.with_batching 0.005) 3 in
  let _ = run_until_leader c ~deadline:2.0 in
  let cmds = List.init 30 (Printf.sprintf "o%02d") in
  List.iter (Cluster.submit c) cmds;
  Cluster.run c ~until:5.0;
  Alcotest.(check (list string)) "submission order preserved through batches"
    cmds (Cluster.decided_values c 0)

(* Batch split/merge FIFO property: commands arrive as vector submissions
   of random widths, under tight pipelining caps (so flush_batch must
   split batches at capacity and park the rest) and a randomized window.
   Whatever the split/merge boundaries, the decided sequence must equal
   the concatenated submission order. *)
let prop_batch_split_merge_fifo =
  QCheck.Test.make ~name:"vector submissions decide in FIFO order" ~count:30
    QCheck.(
      triple (int_range 1 5) (int_range 1 8)
        (list_of_size (Gen.int_range 1 12) (int_range 1 7)))
    (fun (max_outstanding, batch_max, widths) ->
      let params =
        {
          Rsmr_smr.Params.default with
          Rsmr_smr.Params.batch_max;
          max_outstanding;
          batch_delay = (if batch_max mod 2 = 0 then 0.0005 else 0.0);
        }
      in
      let c = Cluster.create ~seed:(max_outstanding + batch_max) ~params 3 in
      let leader = run_until_leader c ~deadline:2.0 in
      let counter = ref 0 in
      let submitted =
        List.concat_map
          (fun width ->
            let chunk =
              List.init width (fun _ ->
                  incr counter;
                  Printf.sprintf "f%03d" !counter)
            in
            Replica.submit_many c.Cluster.replicas.(leader) chunk;
            chunk)
          widths
      in
      Cluster.run c ~until:15.0;
      Cluster.decided_values c 0 = submitted
      && Cluster.decided_values c 1 = submitted)

(* Agreement property under randomized seeds, loss, and a mid-run crash. *)
let prop_agreement_under_faults =
  QCheck.Test.make ~name:"prefix agreement under loss and one crash" ~count:25
    QCheck.(pair small_int (float_range 0.0 0.15))
    (fun (seed, drop) ->
      let c = Cluster.create ~seed:(seed + 1) ~drop 5 in
      (* Submit commands periodically from varying replicas. *)
      for i = 0 to 29 do
        ignore
          (Engine.schedule c.Cluster.engine
             ~delay:(0.5 +. (float_of_int i *. 0.05))
             (fun () ->
               Replica.submit c.Cluster.replicas.(i mod 5)
                 (Printf.sprintf "p%02d" i)))
      done;
      (* Crash one replica mid-run. *)
      ignore
        (Engine.schedule c.Cluster.engine ~delay:1.2 (fun () ->
             Network.crash c.Cluster.net (seed mod 5)));
      Cluster.run c ~until:30.0;
      (* Every pair of replicas must agree on the common decided prefix. *)
      let decided = List.init 5 (fun i -> Cluster.decided_values c i) in
      let rec common_prefix a b =
        match (a, b) with
        | x :: xs, y :: ys -> x = y && common_prefix xs ys
        | _, [] | [], _ -> true
      in
      List.for_all
        (fun a -> List.for_all (fun b -> common_prefix a b) decided)
        decided)

let () =
  Alcotest.run "smr"
    [
      ( "units",
        [
          Alcotest.test_case "ballot order" `Quick test_ballot_order;
          Alcotest.test_case "config quorum" `Quick test_config_quorum;
          Alcotest.test_case "log basics" `Quick test_log_basics;
          Alcotest.test_case "log uncommitted range" `Quick
            test_log_uncommitted_range;
          Alcotest.test_case "msg roundtrip" `Quick test_msg_roundtrip;
          Alcotest.test_case "msg sizes" `Quick test_msg_size_positive;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "election" `Quick test_election;
          Alcotest.test_case "single command" `Quick test_single_command;
          Alcotest.test_case "many commands agree" `Quick
            test_many_commands_agree;
          Alcotest.test_case "submission order" `Quick
            test_commands_in_submission_order;
          Alcotest.test_case "leader crash failover" `Quick
            test_leader_crash_failover;
          Alcotest.test_case "commit under loss" `Quick
            test_commit_under_message_loss;
          Alcotest.test_case "minority partition" `Quick
            test_minority_partition_blocks_commit;
          Alcotest.test_case "single-member cluster" `Quick
            test_single_member_cluster;
          Alcotest.test_case "halt" `Quick test_halt_stops_participation;
          Alcotest.test_case "follower forwards" `Quick
            test_follower_submit_forwards;
          Alcotest.test_case "duplicated messages" `Quick
            test_duplicated_messages_agree;
          Alcotest.test_case "laggard catches up via learn" `Quick
            test_lagging_follower_catches_up_via_learn;
          Alcotest.test_case "submit during election" `Quick
            test_submit_during_election_eventually_decides;
          Alcotest.test_case "batching reduces messages" `Quick
            test_batching_reduces_messages;
          Alcotest.test_case "batching preserves order" `Quick
            test_batching_preserves_order;
          QCheck_alcotest.to_alcotest prop_batch_split_merge_fifo;
          QCheck_alcotest.to_alcotest prop_agreement_under_faults;
        ] );
    ]
