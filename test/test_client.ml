(* Unit tests for the client protocol and the retry/redirect endpoint,
   driven against a scripted fake transport. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Client_msg = Rsmr_client.Client_msg
module Endpoint = Rsmr_client.Endpoint

let test_msg_roundtrip () =
  let cases =
    [
      Client_msg.Request { seq = 3; low_water = 2; payload = Client_msg.Cmd "do" };
      Client_msg.Request
        { seq = 4; low_water = 0; payload = Client_msg.Change_membership [ 1; 2; 9 ] };
      Client_msg.Reply { seq = 3; rsp = "done" };
      Client_msg.Redirect
        { seq = 3; leader = Some 2; members = [ 0; 1; 2 ]; epoch = 7 };
      Client_msg.Redirect { seq = 3; leader = None; members = []; epoch = 0 };
      Client_msg.Request_batch
        {
          low_water = 1;
          reqs =
            [
              (5, Client_msg.Cmd "a");
              (6, Client_msg.Change_membership [ 2; 3 ]);
              (7, Client_msg.Cmd "b");
            ];
        };
      Client_msg.Request_batch { low_water = 0; reqs = [] };
    ]
  in
  List.iter
    (fun m ->
      if Client_msg.decode (Client_msg.encode m) <> m then
        Alcotest.failf "roundtrip failed for %a" Client_msg.pp m)
    cases

(* Scripted harness: records sends; test injects responses. *)
type harness = {
  engine : Engine.t;
  endpoint : Endpoint.t;
  sent : (Rsmr_net.Node_id.t * Client_msg.t) list ref; (* newest first *)
  replies : (int * string) list ref;
  lookups : int ref;
  mutable lookup_k : (Rsmr_app.Dir_app.entry option -> unit) option;
}

let make_harness ?(members = [ 0; 1; 2 ]) ?req_timeout ?batch_window ?batch_max
    () =
  let engine = Engine.create ~seed:3 () in
  let sent = ref [] and replies = ref [] and lookups = ref 0 in
  let h_ref = ref None in
  let endpoint =
    Endpoint.create ~engine ~me:100
      ~send:(fun ~dst msg -> sent := (dst, msg) :: !sent)
      ~members
      ~lookup:(fun k ->
        incr lookups;
        match !h_ref with Some h -> h.lookup_k <- Some k | None -> ())
      ?req_timeout ?batch_window ?batch_max
      ~on_reply:(fun ~seq ~rsp -> replies := (seq, rsp) :: !replies)
      ()
  in
  let h = { engine; endpoint; sent; replies; lookups; lookup_k = None } in
  h_ref := Some h;
  h

let last_send h = match !(h.sent) with [] -> None | x :: _ -> Some x

let test_submit_sends_request () =
  let h = make_harness () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  match last_send h with
  | Some (_, Client_msg.Request { seq = 1; payload = Client_msg.Cmd "x"; _ }) -> ()
  | _ -> Alcotest.fail "expected a Request to be sent"

let test_reply_completes () =
  let h = make_harness () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Endpoint.handle h.endpoint (Client_msg.Reply { seq = 1; rsp = "ok" });
  Alcotest.(check (list (pair int string))) "callback fired" [ (1, "ok") ]
    !(h.replies);
  Alcotest.(check int) "no longer outstanding" 0 (Endpoint.outstanding h.endpoint);
  (* A duplicate reply (from a retried request) is ignored. *)
  Endpoint.handle h.endpoint (Client_msg.Reply { seq = 1; rsp = "ok" });
  Alcotest.(check int) "duplicate ignored" 1 (List.length !(h.replies))

let test_timeout_retries_and_rotates () =
  let h = make_harness ~req_timeout:0.1 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Engine.run ~until:0.55 h.engine;
  let attempts = List.length !(h.sent) in
  Alcotest.(check bool) "several retries happened" true (attempts >= 4);
  let dsts = List.map fst !(h.sent) |> List.sort_uniq compare in
  Alcotest.(check bool) "retries rotate across members" true
    (List.length dsts >= 2);
  Alcotest.(check int) "retry counter" (attempts - 1)
    (Counters.get (Endpoint.counters h.endpoint) "retries")

let test_redirect_follows_leader () =
  let h = make_harness () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Endpoint.handle h.endpoint
    (Client_msg.Redirect { seq = 1; leader = Some 2; members = [ 0; 1; 2 ]; epoch = 1 });
  Alcotest.(check (option int)) "leader cached" (Some 2)
    (Endpoint.believed_leader h.endpoint);
  (* Run just past the redirect jitter but short of the request timeout. *)
  Engine.run ~until:0.05 h.engine;
  match last_send h with
  | Some (2, Client_msg.Request { seq = 1; _ }) -> ()
  | Some (dst, _) -> Alcotest.failf "resent to n%d, expected leader n2" dst
  | None -> Alcotest.fail "nothing sent"

let test_redirect_updates_members () =
  let h = make_harness () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Endpoint.handle h.endpoint
    (Client_msg.Redirect { seq = 1; leader = None; members = [ 7; 8; 9 ]; epoch = 2 });
  Alcotest.(check (list int)) "members replaced" [ 7; 8; 9 ]
    (Endpoint.believed_members h.endpoint);
  (* Stale (lower-epoch) redirects must not clobber the fresher view. *)
  Endpoint.handle h.endpoint
    (Client_msg.Redirect { seq = 1; leader = None; members = [ 0; 1 ]; epoch = 1 });
  Alcotest.(check (list int)) "stale redirect ignored" [ 7; 8; 9 ]
    (Endpoint.believed_members h.endpoint)

let test_self_redirect_loop_broken () =
  (* A deposed leader that redirects to itself must not capture the client
     forever: the hint pointing back at the node just tried is dropped. *)
  let h = make_harness () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  let first_target =
    match last_send h with Some (d, _) -> d | None -> Alcotest.fail "no send"
  in
  Endpoint.handle h.endpoint
    (Client_msg.Redirect
       { seq = 1; leader = Some first_target; members = [ 0; 1; 2 ]; epoch = 1 });
  Alcotest.(check (option int)) "self-hint dropped" None
    (Endpoint.believed_leader h.endpoint);
  Engine.run ~until:1.0 h.engine;
  match last_send h with
  | Some (dst, _) ->
    Alcotest.(check bool) "rotated away from the looping node" true
      (dst <> first_target)
  | None -> Alcotest.fail "nothing resent"

let test_lookup_after_repeated_timeouts () =
  let h = make_harness ~req_timeout:0.1 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Engine.run ~until:1.0 h.engine;
  Alcotest.(check bool) "directory consulted" true (!(h.lookups) >= 1);
  (* Deliver the lookup result; future attempts use the fresh members. *)
  (match h.lookup_k with
   | Some k ->
     k (Some { Rsmr_app.Dir_app.epoch = 1; members = [ 5; 6; 7 ]; leader = None })
   | None -> Alcotest.fail "no pending lookup");
  Alcotest.(check (list int)) "members refreshed" [ 5; 6; 7 ]
    (Endpoint.believed_members h.endpoint)

(* --- directory refresh (deterministic, scripted directory) --- *)

let test_lookup_single_flight () =
  (* While one directory lookup is unanswered, further retry rounds must
     not pile up more — the replicated directory may be wedged
     mid-reconfiguration, and N outstanding requests x retry storm must
     not translate into a lookup storm. *)
  let h = make_harness ~req_timeout:0.1 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Endpoint.submit h.endpoint ~seq:2 ~payload:(Client_msg.Cmd "y");
  Engine.run ~until:3.0 h.engine;
  Alcotest.(check int) "exactly one lookup in flight" 1 !(h.lookups);
  Alcotest.(check bool) "retries kept probing meanwhile" true
    (Counters.get (Endpoint.counters h.endpoint) "retries" > 5);
  (* Answering it re-arms the slow path: the next retry rounds may ask
     again. *)
  (match h.lookup_k with
   | Some k ->
     k (Some { Rsmr_app.Dir_app.epoch = 1; members = [ 5; 6; 7 ]; leader = None })
   | None -> Alcotest.fail "no pending lookup");
  Engine.run ~until:6.0 h.engine;
  Alcotest.(check bool) "lookup re-armed after the answer" true
    (!(h.lookups) >= 2)

let test_empty_lookup_keeps_cached_members () =
  (* A directory with no entry yet (or one scrubbed by a wedge) answers
     "nobody"; the endpoint must keep probing its cached configuration
     rather than adopt an empty member set and go mute. *)
  let h = make_harness ~req_timeout:0.1 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Engine.run ~until:1.0 h.engine;
  Alcotest.(check bool) "directory consulted" true (!(h.lookups) >= 1);
  (match h.lookup_k with
   | Some k -> k None
   | None -> Alcotest.fail "no pending lookup");
  Alcotest.(check (list int)) "cached members kept" [ 0; 1; 2 ]
    (Endpoint.believed_members h.endpoint);
  h.sent := [];
  Engine.run ~until:2.0 h.engine;
  Alcotest.(check bool) "still probing the cached members" true
    (List.for_all (fun (d, _) -> List.mem d [ 0; 1; 2 ]) !(h.sent)
    && !(h.sent) <> [])

let test_lookup_result_routes_retries () =
  (* Once the directory answers with the post-reconfiguration members,
     every subsequent retry must target the new replica group only — the
     old machines may now host a different shard. *)
  let h = make_harness ~req_timeout:0.1 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Engine.run ~until:1.0 h.engine;
  (match h.lookup_k with
   | Some k ->
     k (Some { Rsmr_app.Dir_app.epoch = 1; members = [ 5; 6; 7 ]; leader = None })
   | None -> Alcotest.fail "no pending lookup");
  h.sent := [];
  Engine.run ~until:2.0 h.engine;
  Alcotest.(check bool) "all retries target the fresh members" true
    (List.for_all (fun (d, _) -> List.mem d [ 5; 6; 7 ]) !(h.sent)
    && !(h.sent) <> []);
  (* A redirect from the new group then pins the leader as usual. *)
  Endpoint.handle h.endpoint
    (Client_msg.Redirect { seq = 1; leader = Some 6; members = [ 5; 6; 7 ]; epoch = 3 });
  Alcotest.(check (option int)) "leader adopted from redirect" (Some 6)
    (Endpoint.believed_leader h.endpoint)

let test_resubmit_same_seq_is_retry () =
  let h = make_harness () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "x");
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "ignored");
  Alcotest.(check int) "still one outstanding" 1 (Endpoint.outstanding h.endpoint);
  Endpoint.handle h.endpoint (Client_msg.Reply { seq = 1; rsp = "ok" });
  Alcotest.(check int) "one reply" 1 (List.length !(h.replies))

let test_coalescing_forms_batch () =
  let h = make_harness ~batch_window:0.001 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "a");
  Endpoint.submit h.endpoint ~seq:2 ~payload:(Client_msg.Cmd "b");
  Endpoint.submit h.endpoint ~seq:3 ~payload:(Client_msg.Cmd "c");
  Alcotest.(check int) "nothing sent inside the window" 0
    (List.length !(h.sent));
  Engine.run ~until:0.002 h.engine;
  (match !(h.sent) with
   | [ (_, Client_msg.Request_batch { reqs; _ }) ] ->
     Alcotest.(check (list int)) "submission order preserved" [ 1; 2; 3 ]
       (List.map fst reqs)
   | sent ->
     Alcotest.failf "expected exactly one Request_batch, got %d sends"
       (List.length sent));
  Alcotest.(check int) "all three outstanding" 3
    (Endpoint.outstanding h.endpoint)

let test_batch_max_flushes_immediately () =
  let h = make_harness ~batch_window:1.0 ~batch_max:2 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "a");
  Alcotest.(check int) "first submit buffered" 0 (List.length !(h.sent));
  Endpoint.submit h.endpoint ~seq:2 ~payload:(Client_msg.Cmd "b");
  (* Buffer hit batch_max: flushed without the engine advancing at all. *)
  match last_send h with
  | Some (_, Client_msg.Request_batch { reqs; _ }) ->
    Alcotest.(check (list int)) "full buffer shipped" [ 1; 2 ]
      (List.map fst reqs)
  | _ -> Alcotest.fail "expected an immediate Request_batch"

let test_batch_retry_is_single_request () =
  let h = make_harness ~batch_window:0.001 ~req_timeout:0.2 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "a");
  Endpoint.submit h.endpoint ~seq:2 ~payload:(Client_msg.Cmd "b");
  Engine.run ~until:0.002 h.engine;
  Alcotest.(check int) "one batched send" 1 (List.length !(h.sent));
  (* One of the two gets a reply; the other times out and is retried. *)
  Endpoint.handle h.endpoint (Client_msg.Reply { seq = 1; rsp = "ok" });
  Engine.run ~until:0.5 h.engine;
  let retries =
    List.filter_map
      (function
        | _, Client_msg.Request { seq; _ } -> Some seq
        | _ -> None)
      !(h.sent)
  in
  Alcotest.(check bool) "timed-out request retried singly" true
    (List.length retries >= 1 && List.for_all (fun s -> s = 2) retries);
  Endpoint.handle h.endpoint (Client_msg.Reply { seq = 2; rsp = "ok" });
  Alcotest.(check int) "both complete" 0 (Endpoint.outstanding h.endpoint)

let test_single_submit_skips_batch_framing () =
  (* A lone request in the buffer goes out as a plain Request at flush
     time: no batch framing overhead for a window that caught nothing. *)
  let h = make_harness ~batch_window:0.001 () in
  Endpoint.submit h.endpoint ~seq:1 ~payload:(Client_msg.Cmd "a");
  Engine.run ~until:0.002 h.engine;
  match last_send h with
  | Some (_, Client_msg.Request { seq = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected a plain Request for a singleton flush"

let () =
  Alcotest.run "client"
    [
      ("msg", [ Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip ]);
      ( "endpoint",
        [
          Alcotest.test_case "submit sends" `Quick test_submit_sends_request;
          Alcotest.test_case "reply completes" `Quick test_reply_completes;
          Alcotest.test_case "timeout retries+rotates" `Quick
            test_timeout_retries_and_rotates;
          Alcotest.test_case "redirect follows leader" `Quick
            test_redirect_follows_leader;
          Alcotest.test_case "redirect updates members" `Quick
            test_redirect_updates_members;
          Alcotest.test_case "self-redirect loop broken" `Quick
            test_self_redirect_loop_broken;
          Alcotest.test_case "lookup after timeouts" `Quick
            test_lookup_after_repeated_timeouts;
          Alcotest.test_case "re-submit same seq" `Quick
            test_resubmit_same_seq_is_retry;
        ] );
      ( "directory refresh",
        [
          Alcotest.test_case "lookups are single-flight" `Quick
            test_lookup_single_flight;
          Alcotest.test_case "empty answer keeps cache" `Quick
            test_empty_lookup_keeps_cached_members;
          Alcotest.test_case "answer routes retries" `Quick
            test_lookup_result_routes_retries;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "window forms one batch" `Quick
            test_coalescing_forms_batch;
          Alcotest.test_case "batch_max flushes immediately" `Quick
            test_batch_max_flushes_immediately;
          Alcotest.test_case "retry is a single request" `Quick
            test_batch_retry_is_single_request;
          Alcotest.test_case "singleton skips batch framing" `Quick
            test_single_submit_skips_batch_framing;
        ] );
    ]
