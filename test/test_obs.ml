(* The Observatory layer, observed from outside:

   - the rsmr-metrics/1 JSON document has a pinned, byte-exact shape;
   - rendering is insertion-order independent and merge is commutative
     (QCheck, because the cell orderings are where the bugs hide);
   - scopes, attached sections and the dotted-key split behave;
   - the span collector stitches lifecycle events into full spans,
     first observation winning;
   - a real crucible run resolves a terminal state for >= 99% of
     submitted commands and exports per-node / per-epoch /
     per-message-type series. *)

module Counters = Rsmr_sim.Counters
module Histogram = Rsmr_sim.Histogram
module Timeseries = Rsmr_sim.Timeseries
module Trace = Rsmr_sim.Trace
module Registry = Rsmr_obs.Registry
module Span = Rsmr_obs.Span
module Scenario = Rsmr_crucible.Scenario
module Generate = Rsmr_crucible.Generate
module Runner = Rsmr_crucible.Runner

(* {1 Registry} *)

let test_cells_are_live () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~labels:[ ("node", "3") ] "applied" in
  incr c;
  incr c;
  let c' = Registry.counter reg ~labels:[ ("node", "3") ] "applied" in
  Alcotest.(check bool) "same cell" true (c == c');
  Alcotest.(check int) "live value" 2 !c';
  (* Label canonicalization: order and duplicates don't split cells. *)
  let a = Registry.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "x" in
  let b =
    Registry.counter reg ~labels:[ ("a", "1"); ("b", "2"); ("a", "1") ] "x"
  in
  Alcotest.(check bool) "canonical labels" true (a == b)

let test_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "m");
  Alcotest.check_raises "counter vs histogram"
    (Invalid_argument
       "Registry: m{} already registered as a counter, not a histogram")
    (fun () -> ignore (Registry.histogram reg "m"))

let test_scope () =
  let reg = Registry.create () in
  let sc = Registry.scope ~node:2 ~epoch:5 reg in
  let c = Registry.scope_counter sc "wedged" in
  incr c;
  let direct =
    Registry.counter reg ~labels:[ ("epoch", "5"); ("node", "2") ] "wedged"
  in
  Alcotest.(check bool) "scope resolves the same cell" true (c == direct);
  Alcotest.(check int) "value" 1 !direct

let test_sections_split () =
  let reg = Registry.create () in
  let net = Registry.counters reg "net" in
  Counters.add net "sent" 7;
  Counters.add net "sent.accept" 5;
  Counters.add net "sent.block.prepare" 2;
  let flat =
    List.filter_map
      (fun c ->
        match c.Registry.f_labels with
        | l when List.mem_assoc "section" l ->
          Some (c.Registry.f_name, l, c.Registry.f_value)
        | _ -> None)
      (Registry.flat_counters reg)
  in
  let plain =
    List.find_opt
      (fun (n, l, _) ->
        String.equal n "sent" && not (List.mem_assoc "msg_type" l))
      flat
  in
  (match plain with
   | Some (_, _, v) -> Alcotest.(check int) "plain key kept" 7 v
   | None -> Alcotest.fail "plain sent cell missing");
  (* Dotted keys split at the first dot only. *)
  let all_sent =
    List.filter (fun (n, _, _) -> String.equal n "sent") flat
  in
  Alcotest.(check int) "three sent cells" 3 (List.length all_sent);
  Alcotest.(check bool) "block.prepare survives as one msg_type" true
    (List.exists
       (fun (_, l, _) ->
         List.assoc_opt "msg_type" l = Some "block.prepare")
       all_sent)

(* {1 The pinned rsmr-metrics/1 document} *)

(* One registry exercising every feature: meta, plain and labeled
   counters, an attached section with a dotted key, a histogram and a
   series.  The expected string is the contract pinned by the schema
   version — changing it means bumping rsmr-metrics/1. *)
let golden_registry () =
  let reg = Registry.create ~meta:[ ("proto", "test"); ("seed", "7") ] () in
  let c = Registry.counter reg ~labels:[ ("epoch", "0"); ("node", "1") ] "applied" in
  c := 4;
  let w = Registry.counter reg "wedges" in
  w := 1;
  let net = Registry.counters reg "net" in
  Counters.add net "sent" 3;
  Counters.add net "sent.accept" 2;
  let h = Registry.histogram reg ~labels:[ ("kind", "latency") ] "span.latency_s" in
  Histogram.record h 1.0;
  let s = Registry.series reg "tput" in
  Timeseries.add s ~time:0.5 10.0;
  Timeseries.add s ~time:1.5 12.5;
  reg

let golden_expected =
  "{\n\
  \  \"schema\": \"rsmr-metrics/1\",\n\
  \  \"meta\": {\"proto\":\"test\",\"seed\":\"7\"},\n\
  \  \"counters\": [\n\
  \    {\"name\":\"applied\",\"labels\":{\"epoch\":\"0\",\"node\":\"1\"},\"value\":4},\n\
  \    {\"name\":\"sent\",\"labels\":{\"msg_type\":\"accept\",\"section\":\"net\"},\"value\":2},\n\
  \    {\"name\":\"sent\",\"labels\":{\"section\":\"net\"},\"value\":3},\n\
  \    {\"name\":\"wedges\",\"labels\":{},\"value\":1}\n\
  \  ],\n\
  \  \"histograms\": [\n\
  \    {\"name\":\"span.latency_s\",\"labels\":{\"kind\":\"latency\"},\"count\":1,\"mean\":1.0,\"min\":1.0,\"max\":1.0,\"p50\":0.99137903,\"p90\":0.99137903,\"p99\":0.99137903}\n\
  \  ],\n\
  \  \"series\": [\n\
  \    {\"name\":\"tput\",\"labels\":{},\"points\":[[0.5,10.0],[1.5,12.5]]}\n\
  \  ]\n\
  }"

let test_golden_json () =
  Alcotest.(check string)
    "rsmr-metrics/1 shape" golden_expected
    (Registry.to_json (golden_registry ()))

(* {1 Order independence and merge commutativity (QCheck)} *)

(* A small op language over a registry; permuting the ops must not change
   the rendered document (counters commute; series re-sort is only
   guaranteed by merge, so series ops here keep a fixed time per key). *)
type op =
  | Bump of string * (string * string) list * int
  | Section of string * string * int
  | Meta of string * string

let apply_op reg = function
  | Bump (name, labels, n) ->
    let c = Registry.counter reg ~labels name in
    c := !c + n
  | Section (sec, key, n) -> Counters.add (Registry.counters reg sec) key n
  | Meta (k, v) -> Registry.set_meta reg k v

let op_gen =
  QCheck.Gen.(
    let name = oneofl [ "applied"; "wedges"; "sent"; "elections" ] in
    let label =
      oneofl [ []; [ ("node", "1") ]; [ ("node", "2"); ("epoch", "1") ] ]
    in
    frequency
      [
        (4, map3 (fun n l v -> Bump (n, l, v)) name label (int_range 1 50));
        ( 2,
          map3
            (fun s k v -> Section (s, k, v))
            (oneofl [ "net"; "svc" ])
            (oneofl [ "sent"; "sent.accept"; "bytes.heartbeat"; "replies" ])
            (int_range 1 50) );
        (1, map (fun v -> Meta ("run", Printf.sprintf "r%d" v)) (int_range 0 3));
      ])

let build ops =
  let reg = Registry.create () in
  List.iter (apply_op reg) ops;
  reg

let prop_order_independent =
  QCheck.Test.make ~name:"to_json independent of insertion order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (QCheck.make op_gen))
    (fun ops ->
      (* Reversal permutes cell creation order; a Meta conflict is the
         one non-commutative op, so keep last-write-wins pairs ordered
         by filtering metas down to at most one. *)
      let seen = ref false in
      let ops =
        List.filter
          (function
            | Meta _ ->
              if !seen then false
              else (
                seen := true;
                true)
            | Bump _ | Section _ -> true)
          ops
      in
      String.equal
        (Registry.to_json (build ops))
        (Registry.to_json (build (List.rev ops))))

let prop_merge_commutes =
  QCheck.Test.make ~name:"merge commutes" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 25) (QCheck.make op_gen))
        (list_of_size (Gen.int_range 0 25) (QCheck.make op_gen)))
    (fun (xs, ys) ->
      let a () = build xs and b () = build ys in
      String.equal
        (Registry.to_json (Registry.merge (a ()) (b ())))
        (Registry.to_json (Registry.merge (b ()) (a ()))))

(* {1 Spans} *)

let emit bus ~time ev attrs =
  Trace.emit bus ~time ~node:0 ~topic:`Lifecycle
    ~attrs:(("ev", ev) :: attrs)
    ev

let cs client seq =
  [ ("client", string_of_int client); ("seq", string_of_int seq) ]

let test_span_lifecycle () =
  let reg = Registry.create () in
  let bus = Registry.bus reg in
  let coll = Span.collect bus in
  (* Command (1000, 0): the full cross-epoch path. *)
  emit bus ~time:0.10 "submit" (cs 1000 0);
  emit bus ~time:0.20 "ordered" (cs 1000 0 @ [ ("epoch", "0"); ("idx", "5") ]);
  emit bus ~time:0.25 "residual" (cs 1000 0 @ [ ("epoch", "0"); ("idx", "5") ]);
  emit bus ~time:0.30 "resubmit" (cs 1000 0 @ [ ("from", "0"); ("to", "1") ]);
  emit bus ~time:0.40 "applied" (cs 1000 0 @ [ ("epoch", "1"); ("idx", "2") ]);
  emit bus ~time:0.45 "replied" (cs 1000 0);
  (* Duplicate transition: first observation must win. *)
  emit bus ~time:0.90 "applied" (cs 1000 0 @ [ ("epoch", "9"); ("idx", "9") ]);
  (* Command (1000, 1): submitted, retried, never resolved. *)
  emit bus ~time:0.50 "submit" (cs 1000 1);
  emit bus ~time:0.70 "retry" (cs 1000 1);
  match Span.finalize coll with
  | [ a; b ] ->
    Alcotest.(check int) "sorted by seq" 0 a.Span.sp_seq;
    Alcotest.(check string) "full path resolved" "replied"
      (Span.state_name (Span.state a));
    (match a.Span.sp_applied with
     | Some (epoch, time) ->
       Alcotest.(check int) "first applied wins (epoch)" 1 epoch;
       Alcotest.(check (float 1e-9)) "first applied wins (time)" 0.40 time
     | None -> Alcotest.fail "applied transition lost");
    (match a.Span.sp_resubmitted with
     | Some (f, t, _) ->
       Alcotest.(check (pair int int)) "resubmit epochs" (0, 1) (f, t)
     | None -> Alcotest.fail "resubmit transition lost");
    Alcotest.(check string) "in-flight span" "submitted"
      (Span.state_name (Span.state b));
    Alcotest.(check int) "retry counted" 1 b.Span.sp_retries;
    let s = Span.summarize [ a; b ] in
    Alcotest.(check int) "one resolved" 1 s.Span.sm_replied;
    Alcotest.(check int) "one unresolved" 1 s.Span.sm_unresolved;
    Alcotest.(check int) "cross-epoch detected" 1 s.Span.sm_cross_epoch;
    Alcotest.(check (float 1e-9)) "half resolved" 0.5
      (Span.resolved_fraction s);
    Alcotest.(check int) "handoff latency measured" 1
      (Histogram.count s.Span.sm_handoff);
    Alcotest.(check int) "no orphans" 0 (Span.orphans coll)
  | spans ->
    Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_orphans () =
  let reg = Registry.create () in
  let coll = Span.collect (Registry.bus reg) in
  emit (Registry.bus reg) ~time:0.1 "replied" (cs 7 3);
  emit (Registry.bus reg) ~time:0.2 "ordered" [ ("epoch", "0") ];
  Alcotest.(check int) "late attach + missing attrs counted" 2
    (Span.orphans coll);
  Alcotest.(check int) "late span still built" 1
    (List.length (Span.finalize coll))

(* {1 A real run end to end} *)

let test_crucible_run_resolves () =
  (* Seed 6 reconfigures three times, so the export must carry multiple
     epochs and the spans must cross them. *)
  let r = Runner.run Runner.core (Generate.scenario ~seed:6) in
  let frac = Span.resolved_fraction r.Runner.spans in
  if frac < 0.99 then
    Alcotest.failf "only %.2f%% of spans resolved" (100.0 *. frac);
  Alcotest.(check bool) "every span observed" true
    (r.Runner.spans.Span.sm_total >= r.Runner.submitted);
  (* Per-node, per-epoch and per-message-type labels all present. *)
  let flat = Registry.flat_counters r.Runner.obs in
  let has key =
    List.exists (fun c -> List.mem_assoc key c.Registry.f_labels) flat
  in
  Alcotest.(check bool) "per-node series" true (has "node");
  Alcotest.(check bool) "per-epoch series" true (has "epoch");
  Alcotest.(check bool) "per-message-type series" true (has "msg_type");
  let epochs =
    List.sort_uniq String.compare
      (List.filter_map
         (fun c -> List.assoc_opt "epoch" c.Registry.f_labels)
         flat)
  in
  Alcotest.(check bool) "spans crossed epochs" true (List.length epochs > 1)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "cells are live" `Quick test_cells_are_live;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "scopes" `Quick test_scope;
          Alcotest.test_case "section split" `Quick test_sections_split;
          Alcotest.test_case "golden rsmr-metrics/1" `Quick test_golden_json;
          QCheck_alcotest.to_alcotest prop_order_independent;
          QCheck_alcotest.to_alcotest prop_merge_commutes;
        ] );
      ( "spans",
        [
          Alcotest.test_case "lifecycle stitching" `Quick test_span_lifecycle;
          Alcotest.test_case "orphans" `Quick test_span_orphans;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "crucible run resolves" `Quick
            test_crucible_run_resolves;
        ] );
    ]
