(* The zero-copy wire fast path, observed from outside:

   - Network.broadcast sizes and tags its payload exactly once for the
     whole fan-out (send still pays once per message);
   - a Replica given a [broadcast] hook routes full fan-outs through it
     instead of per-destination [send] (so the service layer can encode
     the payload once);
   - Counters handles stay attached across [reset];
   - the event-queue heap drops popped payloads and shrinks after bursts. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Heap = Rsmr_sim.Heap
module Network = Rsmr_net.Network
module Replica = Rsmr_smr.Replica
module Config = Rsmr_smr.Config
module Params = Rsmr_smr.Params

let test_broadcast_sizes_once () =
  let engine = Engine.create ~seed:7 () in
  let sizer_calls = ref 0 in
  let tagger_calls = ref 0 in
  let net =
    Network.create engine
      ~tagger:(fun (_ : string) ->
        incr tagger_calls;
        "msg")
      ~sizer:(fun s ->
        incr sizer_calls;
        String.length s)
      ()
  in
  Network.broadcast net ~src:0 ~dsts:[ 0; 1; 2; 3; 4; 5 ] "payload!";
  Alcotest.(check int) "sizer ran once for 5-way broadcast" 1 !sizer_calls;
  Alcotest.(check int) "tagger ran once for 5-way broadcast" 1 !tagger_calls;
  let c = Network.counters net in
  Alcotest.(check int) "five messages sent (src excluded)" 5
    (Counters.get c "sent");
  Alcotest.(check int) "five sent.msg" 5 (Counters.get c "sent.msg");
  Alcotest.(check int) "bytes counted per copy" 40
    (Counters.get c "bytes_sent");
  (* Per-destination sends pay the sizer each time — the broadcast saving
     is real, not an accounting change. *)
  List.iter
    (fun dst -> Network.send net ~src:0 ~dst "payload!")
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "send sizes per message" 6 !sizer_calls;
  Alcotest.(check int) "ten messages total" 10 (Counters.get c "sent")

let test_replica_uses_broadcast_hook () =
  let engine = Engine.create ~seed:11 () in
  let cfg = Config.make ~instance_id:0 ~members:[ 0; 1; 2; 3; 4; 5 ] in
  let sends = ref 0 in
  let broadcasts = ref 0 in
  let r =
    Replica.create ~engine ~params:Params.default ~config:cfg ~me:0
      ~send:(fun ~dst:_ _ -> incr sends)
      ~broadcast:(fun _ -> incr broadcasts)
      ~on_decide:(fun _ _ -> ())
      ()
  in
  Replica.kick_election r;
  (* The Prepare fan-out goes through the hook exactly once; nothing went
     out per-destination. *)
  Alcotest.(check int) "election used one broadcast" 1 !broadcasts;
  Alcotest.(check int) "no per-destination sends" 0 !sends

let test_counter_handles_survive_reset () =
  let c = Counters.create () in
  let h = Counters.handle c "hits" in
  h := !h + 3;
  Alcotest.(check int) "handle feeds get" 3 (Counters.get c "hits");
  Counters.reset c;
  Alcotest.(check int) "reset zeroes in place" 0 (Counters.get c "hits");
  h := !h + 2;
  Alcotest.(check int) "handle still attached after reset" 2
    (Counters.get c "hits")

let test_heap_releases_and_shrinks () =
  let h = Heap.create () in
  (* Track liveness of a popped payload via a weak pointer. *)
  let w = Weak.create 1 in
  let payload = ref (String.make 1024 'x') in
  Weak.set w 0 (Some !payload);
  Heap.push h ~time:1.0 ~seq:0 !payload;
  for i = 1 to 4096 do
    Heap.push h ~time:(2.0 +. float_of_int i) ~seq:i "filler"
  done;
  (match Heap.pop h with
   | Some (_, _, p) -> Alcotest.(check string) "min first" !payload p
   | None -> Alcotest.fail "heap empty");
  payload := "";
  Gc.full_major ();
  Alcotest.(check bool) "popped payload is collectable" true
    (Weak.get w 0 = None);
  (* Drain the burst: occupancy tracks len and the pop path stays sane. *)
  let rec drain n = match Heap.pop h with Some _ -> drain (n + 1) | None -> n in
  Alcotest.(check int) "all filler drained" 4096 (drain 0);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h);
  (* FIFO among simultaneous events still holds after the rewrite. *)
  List.iter (fun seq -> Heap.push h ~time:9.0 ~seq (string_of_int seq)) [ 2; 0; 1 ];
  let order =
    List.filter_map
      (fun _ -> match Heap.pop h with Some (_, _, p) -> Some p | None -> None)
      [ (); (); () ]
  in
  Alcotest.(check (list string)) "seq breaks ties FIFO" [ "0"; "1"; "2" ] order

let () =
  Alcotest.run "fastpath"
    [
      ( "network",
        [
          Alcotest.test_case "broadcast sizes+tags once" `Quick
            test_broadcast_sizes_once;
        ] );
      ( "replica",
        [
          Alcotest.test_case "broadcast hook used for fan-out" `Quick
            test_replica_uses_broadcast_hook;
        ] );
      ( "counters",
        [
          Alcotest.test_case "handles survive reset" `Quick
            test_counter_handles_survive_reset;
        ] );
      ( "heap",
        [
          Alcotest.test_case "pop releases payload, shrinks" `Quick
            test_heap_releases_and_shrinks;
        ] );
    ]
