(* Unit and property tests for the discrete-event substrate. *)

module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Heap = Rsmr_sim.Heap
module Histogram = Rsmr_sim.Histogram
module Timeseries = Rsmr_sim.Timeseries
module Counters = Rsmr_sim.Counters
module Trace = Rsmr_sim.Trace
module Stable = Rsmr_sim.Stable

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let push tag () = order := tag :: !order in
  ignore (Engine.schedule e ~delay:0.3 (push "c"));
  ignore (Engine.schedule e ~delay:0.1 (push "a"));
  ignore (Engine.schedule e ~delay:0.2 (push "b"));
  Engine.run e;
  Alcotest.(check (list string)) "events in time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule e ~delay:1.0 (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "simultaneous events keep FIFO order"
    [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule e ~delay:0.1 (fun () -> fired := true) in
  Engine.cancel e timer;
  Engine.run e;
  Alcotest.(check bool) "cancelled timer does not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "only events before horizon run" 5 !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "remaining events run later" 10 !fired

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         hits := ("outer", Engine.now e) :: !hits;
         ignore
           (Engine.schedule e ~delay:0.5 (fun () ->
                hits := ("inner", Engine.now e) :: !hits))));
  Engine.run e;
  match List.rev !hits with
  | [ ("outer", t1); ("inner", t2) ] ->
    Alcotest.(check (float 1e-9)) "outer at 1.0" 1.0 t1;
    Alcotest.(check (float 1e-9)) "inner at 1.5" 1.5 t2
  | _ -> Alcotest.fail "unexpected event sequence"

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let t = ref (-1.0) in
  ignore (Engine.schedule e ~delay:5.0 (fun () ->
      ignore (Engine.schedule e ~delay:(-3.0) (fun () -> t := Engine.now e))));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "negative delay runs now" 5.0 !t

let test_engine_determinism () =
  let run () =
    let e = Engine.create ~seed:42 () in
    let rng = Rng.split (Engine.rng e) in
    let acc = ref [] in
    let rec step n =
      if n > 0 then
        ignore
          (Engine.schedule e ~delay:(Rng.float rng 1.0) (fun () ->
               acc := Engine.now e :: !acc;
               step (n - 1)))
    in
    step 50;
    Engine.run e;
    !acc
  in
  Alcotest.(check (list (float 0.0))) "same seed, same trajectory" (run ()) (run ())

(* Cancelling a timer from inside (or after) its own firing must be a
   no-op that leaves the timer [`Fired]: a heartbeat torn down from its
   own callback must not be reclassified as cancelled, or the model
   checker's enabled-set bookkeeping would see a choice both consumed
   and revoked. *)
let test_engine_cancel_after_fire () =
  let e = Engine.create () in
  let fired = ref 0 in
  let handle = ref None in
  let t =
    Engine.schedule e ~delay:0.1 (fun () ->
        incr fired;
        Option.iter (Engine.cancel e) !handle)
  in
  handle := Some t;
  Engine.run e;
  Alcotest.(check int) "fired exactly once" 1 !fired;
  Alcotest.(check bool) "state is `Fired after self-cancel" true
    (Engine.timer_state t = `Fired);
  Engine.cancel e t;
  Alcotest.(check bool) "state stays `Fired after late cancel" true
    (Engine.timer_state t = `Fired);
  Alcotest.(check int) "fired event still counted" 1 (Engine.events_executed e)

(* A zero-delay hand-off scheduled while the current instant's queue is
   non-empty must run after everything already queued for that instant,
   and two zero-delay hand-offs must run in scheduling order. *)
let test_engine_zero_delay_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  let push tag () = order := tag :: !order in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         push "first" ();
         ignore (Engine.schedule e ~delay:0.0 (push "handoff-a"));
         ignore (Engine.schedule e ~delay:0.0 (push "handoff-b"))));
  ignore (Engine.schedule e ~delay:1.0 (push "second"));
  Engine.run e;
  Alcotest.(check (list string))
    "zero-delay hand-off cannot jump the same-instant queue"
    [ "first"; "second"; "handoff-a"; "handoff-b" ]
    (List.rev !order)

(* Choice-point mode: [enabled] lists pending timers in run order,
   [fire] consumes exactly the chosen one (advancing time monotonically
   even when fired out of due order), and a consumed id is a stale
   choice thereafter. *)
let test_engine_enabled_fire () =
  let e = Engine.create () in
  let hits = ref [] in
  let ta = Engine.schedule e ~delay:0.3 (fun () -> hits := "a" :: !hits) in
  let tb = Engine.schedule e ~delay:0.1 (fun () -> hits := "b" :: !hits) in
  let tc = Engine.schedule e ~delay:0.2 (fun () -> hits := "c" :: !hits) in
  Engine.cancel e tc;
  Alcotest.(check (list int))
    "enabled = pending timers in (due, id) order"
    [ Engine.timer_id tb; Engine.timer_id ta ]
    (List.map fst (Engine.enabled e));
  Alcotest.(check int) "pending_count ignores the cancelled" 2
    (Engine.pending_count e);
  (* fire the LATER timer first: time jumps to 0.3 and never rewinds *)
  Alcotest.(check bool) "fire a" true (Engine.fire e ~seq:(Engine.timer_id ta));
  Alcotest.(check (float 1e-9)) "time at a's due" 0.3 (Engine.now e);
  Alcotest.(check bool) "fire b (past due)" true
    (Engine.fire e ~seq:(Engine.timer_id tb));
  Alcotest.(check (float 1e-9)) "time did not rewind" 0.3 (Engine.now e);
  Alcotest.(check (list string)) "callbacks ran in chosen order" [ "a"; "b" ]
    (List.rev !hits);
  Alcotest.(check bool) "consumed id is stale" false
    (Engine.fire e ~seq:(Engine.timer_id tb));
  Alcotest.(check bool) "cancelled id is stale" false
    (Engine.fire e ~seq:(Engine.timer_id tc));
  Alcotest.(check int) "nothing pending" 0 (Engine.pending_count e)

(* --- rng --- *)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds";
    let i = Rng.int_in rng 3 7 in
    if i < 3 || i > 7 then Alcotest.fail "int_in out of bounds"
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_rng_deterministic () =
  let draws seed = List.init 100 (fun _ -> Rng.int (Rng.create seed) 1000) in
  Alcotest.(check (list int)) "same seed same draws" (draws 5) (draws 5)

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  if mean < 2.8 || mean > 3.2 then
    Alcotest.failf "exponential mean off: %f" mean

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 50 Fun.id) sorted

(* --- heap --- *)

let test_heap_sorts () =
  let h = Heap.create () in
  let rng = Rng.create 9 in
  for i = 0 to 199 do
    Heap.push h ~time:(Rng.float rng 100.0) ~seq:i i
  done;
  let rec drain last acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (time, _, v) ->
      if time < last then Alcotest.fail "heap pop not monotone";
      drain time (v :: acc)
  in
  let drained = drain neg_infinity [] in
  Alcotest.(check int) "all elements drained" 200 (List.length drained)

let prop_heap_pop_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iteri (fun i (time, v) -> Heap.push h ~time ~seq:i v) items;
      let rec check last =
        match Heap.pop h with
        | None -> true
        | Some (time, _, _) -> time >= last && check time
      in
      check neg_infinity)

(* [to_sorted_list] must observe the queue without draining it, in the
   exact order [pop] would, and [iter] must visit every live entry —
   the model checker's enabled-set enumeration depends on both. *)
let test_heap_observation () =
  let h = Heap.create () in
  let rng = Rng.create 11 in
  for i = 0 to 49 do
    Heap.push h ~time:(Rng.float rng 10.0) ~seq:i i
  done;
  let snapshot = Heap.to_sorted_list h in
  Alcotest.(check int) "snapshot is complete" 50 (List.length snapshot);
  Alcotest.(check int) "snapshot did not drain" 50 (Heap.size h);
  let seen = ref 0 in
  Heap.iter h (fun _ _ _ -> incr seen);
  Alcotest.(check int) "iter visits every live entry" 50 !seen;
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some e -> drain (e :: acc)
  in
  let popped = drain [] in
  Alcotest.(check bool) "snapshot order = pop order" true (snapshot = popped)

(* --- histogram --- *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record h (float_of_int i /. 1000.0)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p99 = Histogram.percentile h 99.0 in
  if abs_float (p50 -. 0.5) > 0.03 then Alcotest.failf "p50 off: %f" p50;
  if abs_float (p99 -. 0.99) > 0.05 then Alcotest.failf "p99 off: %f" p99;
  Alcotest.(check int) "count" 1000 (Histogram.count h)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p99 is 0" 0.0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 0.0)) "empty mean is 0" 0.0 (Histogram.mean h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 0.001;
  Histogram.record b 0.1;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Histogram.count m);
  if Histogram.max_value m < 0.09 then Alcotest.fail "merge lost max"

let prop_histogram_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within [min,max] envelope" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_exclusive 10.0))
    (fun values ->
      let h = Histogram.create () in
      List.iter (fun v -> Histogram.record h v) values;
      let p v = Histogram.percentile h v in
      (* allow 3% bucket slack *)
      p 50.0 <= Histogram.max_value h +. 1e-9
      && p 100.0 <= Histogram.max_value h +. 1e-9
      && p 1.0 >= Histogram.min_value h *. 0.95)

(* --- timeseries --- *)

let test_timeseries_buckets () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0.1 1.0;
  Timeseries.add ts ~time:0.2 3.0;
  Timeseries.add ts ~time:1.5 10.0;
  (match Timeseries.bucketize ts ~width:1.0 with
   | [ (s0, c0, m0); (s1, c1, m1) ] ->
     Alcotest.(check (float 1e-9)) "bucket 0 start" 0.0 s0;
     Alcotest.(check int) "bucket 0 count" 2 c0;
     Alcotest.(check (float 1e-9)) "bucket 0 mean" 2.0 m0;
     Alcotest.(check (float 1e-9)) "bucket 1 start" 1.0 s1;
     Alcotest.(check int) "bucket 1 count" 1 c1;
     Alcotest.(check (float 1e-9)) "bucket 1 mean" 10.0 m1
   | l -> Alcotest.failf "expected 2 buckets, got %d" (List.length l));
  match Timeseries.max_in_window ts ~lo:0.0 ~hi:1.0 with
  | Some m -> Alcotest.(check (float 1e-9)) "window max" 3.0 m
  | None -> Alcotest.fail "expected a max"

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.add c "a" 4;
  Counters.incr c "b";
  Alcotest.(check int) "a" 5 (Counters.get c "a");
  Alcotest.(check int) "b" 1 (Counters.get c "b");
  Alcotest.(check int) "missing" 0 (Counters.get c "zzz");
  Alcotest.(check (list (pair string int))) "to_list sorted"
    [ ("a", 5); ("b", 1) ] (Counters.to_list c)

let test_trace_counts_and_retention () =
  let tr = Trace.create () in
  let seen = ref 0 in
  Trace.subscribe tr (fun _ -> incr seen);
  Trace.emit tr ~time:1.0 ~node:0 ~topic:(`Other "x") "one";
  Trace.keep tr true;
  Trace.emit tr ~time:2.0 ~node:1 ~topic:(`Other "x")
    ~attrs:[ ("k", "v") ] "two";
  Trace.emit tr ~time:3.0 ~node:1 ~topic:`Lifecycle "three";
  Alcotest.(check int) "subscriber saw all" 3 !seen;
  Alcotest.(check int) "topic x count" 2 (Trace.count tr ~topic:(`Other "x"));
  Alcotest.(check int) "lifecycle count" 1 (Trace.count tr ~topic:`Lifecycle);
  Alcotest.(check int) "retained only after keep" 2
    (List.length (Trace.events tr));
  (match Trace.events tr with
   | ev :: _ ->
     Alcotest.(check (option string)) "attr lookup" (Some "v")
       (Trace.attr ev "k")
   | [] -> Alcotest.fail "expected retained events");
  Alcotest.(check bool) "active with subscriber" true (Trace.active tr);
  Alcotest.(check bool) "fresh bus inactive" false
    (Trace.active (Trace.create ()))

(* --- stable (sorted hash-table iteration) --- *)

let table_of bindings =
  let t = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings;
  t

let test_stable_sorted_order () =
  (* Iteration order must be the sorted key order regardless of the
     insertion history that shaped the buckets. *)
  let bindings = List.map (fun k -> (k, 10 * k)) [ 42; 7; 19; 3; 100; 56 ] in
  let forwards = table_of bindings and backwards = table_of (List.rev bindings) in
  let visit t =
    let acc = ref [] in
    Stable.iter_sorted ~compare:Int.compare
      (fun k v -> acc := (k, v) :: !acc)
      t;
    List.rev !acc
  in
  let expected = List.sort (fun (a, _) (b, _) -> Int.compare a b) bindings in
  Alcotest.(check (list (pair int int))) "sorted ascending" expected
    (visit forwards);
  Alcotest.(check (list (pair int int)))
    "independent of insertion order" (visit forwards) (visit backwards);
  Alcotest.(check (list int))
    "sorted_keys agrees" (List.map fst expected)
    (Stable.sorted_keys ~compare:Int.compare forwards)

let test_stable_fold_order () =
  (* fold_sorted must present keys ascending: a fold that appends sees the
     sorted sequence, and a non-commutative fold is reproducible. *)
  let t = table_of [ (3, "c"); (1, "a"); (2, "b") ] in
  Alcotest.(check (list int)) "fold visits ascending" [ 1; 2; 3 ]
    (List.rev (Stable.fold_sorted ~compare:Int.compare (fun k _ acc -> k :: acc) t []));
  Alcotest.(check string) "non-commutative fold reproducible" "abc"
    (Stable.fold_sorted ~compare:Int.compare (fun _ v acc -> acc ^ v) t "")

let test_stable_no_revisit_of_added_keys () =
  (* Keys added during iteration are not visited (the key list is
     snapshotted first), so iteration cannot diverge. *)
  let t = table_of [ (1, "a"); (2, "b") ] in
  let visited = ref [] in
  Stable.iter_sorted ~compare:Int.compare
    (fun k _ ->
      visited := k :: !visited;
      if k = 1 then Hashtbl.replace t 99 "late")
    t;
  Alcotest.(check (list int)) "snapshot semantics" [ 1; 2 ]
    (List.rev !visited);
  Alcotest.(check bool) "late key present afterwards" true
    (Hashtbl.mem t 99)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "negative delay" `Quick
            test_engine_negative_delay_clamped;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "cancel after fire is a no-op" `Quick
            test_engine_cancel_after_fire;
          Alcotest.test_case "zero-delay hand-off keeps FIFO" `Quick
            test_engine_zero_delay_fifo;
          Alcotest.test_case "enabled/fire choice-point mode" `Quick
            test_engine_enabled_fire;
        ] );
      ( "rng",
        [
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "determinism" `Quick test_rng_deterministic;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "observation without draining" `Quick
            test_heap_observation;
          QCheck_alcotest.to_alcotest prop_heap_pop_sorted;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          QCheck_alcotest.to_alcotest prop_histogram_percentile_bounds;
        ] );
      ( "timeseries",
        [ Alcotest.test_case "buckets" `Quick test_timeseries_buckets ] );
      ( "stable",
        [
          Alcotest.test_case "sorted order" `Quick test_stable_sorted_order;
          Alcotest.test_case "fold order" `Quick test_stable_fold_order;
          Alcotest.test_case "snapshot semantics" `Quick
            test_stable_no_revisit_of_added_keys;
        ] );
      ("counters", [ Alcotest.test_case "basic" `Quick test_counters ]);
      ( "trace",
        [ Alcotest.test_case "counts+retention" `Quick test_trace_counts_and_retention ]
      );
    ]
