(* Round-trip properties for the top-level wire codecs: decode (encode m)
   must be the identity for every constructor of Rsmr_core.Wire.t and
   Rsmr_baselines.Raft_wire.t (including the nested Client_msg and
   Raft_msg payloads), and malformed input must raise Codec.Truncated.
   Complements the rsmr-lint codec-exhaustive rule: lint proves every
   constructor appears in encode/decode, these tests prove the two sides
   agree byte-for-byte. *)

module Wire = Rsmr_core.Wire
module Raft_wire = Rsmr_baselines.Raft_wire
module Raft_msg = Rsmr_baselines.Raft_msg
module Raft_log = Rsmr_baselines.Raft_log
module Client_msg = Rsmr_client.Client_msg

(* ------------------------------------------------------------ generators *)

let num = QCheck.Gen.int_bound 1_000_000
let nid = QCheck.Gen.int_range (-8) 32 (* node ids travel as zigzag *)
let nids = QCheck.Gen.(list_size (int_bound 6) nid)
let opt_nid = QCheck.Gen.option nid
let short_string = QCheck.Gen.(string_size (int_bound 32))

let client_payload_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> Client_msg.Cmd c) short_string;
        map (fun ms -> Client_msg.Change_membership ms) nids;
      ])

let client_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun seq low_water payload ->
            Client_msg.Request { seq; low_water; payload })
          num num client_payload_gen;
        map2 (fun seq rsp -> Client_msg.Reply { seq; rsp }) num short_string;
        map3
          (fun seq (leader, members) epoch ->
            Client_msg.Redirect { seq; leader; members; epoch })
          num (pair opt_nid nids) num;
      ])

let raft_payload_gen =
  QCheck.Gen.(
    oneof
      [
        return Raft_log.Noop;
        map3
          (fun client (seq, low_water) cmd ->
            Raft_log.App { client; seq; low_water; cmd })
          nid (pair num num) short_string;
        map (fun ms -> Raft_log.Config ms) nids;
      ])

let raft_entries_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (map3
         (fun i term payload -> (i, { Raft_log.term; payload }))
         num num raft_payload_gen))

let raft_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun term last_index last_term ->
            Raft_msg.Request_vote { term; last_index; last_term })
          num num num;
        map2 (fun term granted -> Raft_msg.Vote { term; granted }) num bool;
        map3
          (fun term (prev_index, prev_term) (entries, commit) ->
            Raft_msg.Append { term; prev_index; prev_term; entries; commit })
          num (pair num num)
          (pair raft_entries_gen num);
        map3
          (fun term success match_index ->
            Raft_msg.Append_reply { term; success; match_index })
          num bool num;
        map3
          (fun (term, last_index, last_term) (members, offset) (data, is_last) ->
            Raft_msg.Install_snapshot
              { term; last_index; last_term; members; offset; data; is_last })
          (triple num num num) (pair nids num)
          (pair short_string bool);
        map2
          (fun term offset -> Raft_msg.Snapshot_chunk_ok { term; offset })
          num num;
        map2
          (fun term last_index -> Raft_msg.Snapshot_reply { term; last_index })
          num num;
      ])

let wire_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun epoch data -> Wire.Block { epoch; data }) num short_string;
        map (fun m -> Wire.Client m) client_msg_gen;
        map3
          (fun epoch members (prev_epoch, prev_members) ->
            Wire.Bootstrap { epoch; members; prev_epoch; prev_members })
          num nids (pair num nids);
        map (fun epoch -> Wire.Fetch_state { epoch }) num;
        map3
          (fun epoch (index, total) data ->
            Wire.State_chunk { epoch; index; total; data })
          num (pair num num) short_string;
        map (fun epoch -> Wire.Retire { epoch }) num;
        map3
          (fun epoch members leader -> Wire.Dir_update { epoch; members; leader })
          num nids opt_nid;
        return Wire.Dir_lookup;
        map3
          (fun epoch members leader -> Wire.Dir_info { epoch; members; leader })
          num nids opt_nid;
      ])

let raft_wire_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun m -> Raft_wire.Rpc m) raft_msg_gen;
        map (fun m -> Raft_wire.Client m) client_msg_gen;
        map3
          (fun epoch members leader ->
            Raft_wire.Dir_update { epoch; members; leader })
          num nids opt_nid;
        return Raft_wire.Dir_lookup;
        map3
          (fun epoch members leader ->
            Raft_wire.Dir_info { epoch; members; leader })
          num nids opt_nid;
      ])

(* --------------------------------------- one handcrafted case per tag *)

let wire_samples =
  [
    Wire.Block { epoch = 3; data = "abc" };
    Wire.Client
      (Client_msg.Request
         { seq = 1; low_water = 0; payload = Client_msg.Cmd "set k v" });
    Wire.Client
      (Client_msg.Request
         {
           seq = 2;
           low_water = 1;
           payload = Client_msg.Change_membership [ 0; 1; 2 ];
         });
    Wire.Client (Client_msg.Reply { seq = 7; rsp = "" });
    Wire.Client
      (Client_msg.Redirect
         { seq = 9; leader = Some 4; members = [ 4; 5; 6 ]; epoch = 2 });
    Wire.Bootstrap
      { epoch = 2; members = [ 3; 4; 5 ]; prev_epoch = 1; prev_members = [ 0 ] };
    Wire.Fetch_state { epoch = 0 };
    Wire.State_chunk { epoch = 5; index = 1; total = 3; data = "\x00\xffbin" };
    Wire.Retire { epoch = 4 };
    Wire.Dir_update { epoch = 6; members = [ 1; 2 ]; leader = Some 2 };
    Wire.Dir_lookup;
    Wire.Dir_info { epoch = 6; members = [ 1; 2 ]; leader = None };
  ]

let raft_msg_samples =
  [
    Raft_msg.Request_vote { term = 4; last_index = 10; last_term = 3 };
    Raft_msg.Vote { term = 4; granted = true };
    Raft_msg.Append
      {
        term = 5;
        prev_index = 9;
        prev_term = 4;
        entries =
          [
            (10, { Raft_log.term = 5; payload = Raft_log.Noop });
            ( 11,
              {
                Raft_log.term = 5;
                payload =
                  Raft_log.App
                    { client = -2; seq = 3; low_water = 1; cmd = "incr" };
              } );
            (12, { Raft_log.term = 5; payload = Raft_log.Config [ 0; 1; 2 ] });
          ];
        commit = 9;
      };
    Raft_msg.Append_reply { term = 5; success = false; match_index = 8 };
    Raft_msg.Install_snapshot
      {
        term = 6;
        last_index = 20;
        last_term = 5;
        members = [ 0; 1; 2; 3 ];
        offset = 512;
        data = String.make 64 '\x7f';
        is_last = false;
      };
    Raft_msg.Snapshot_chunk_ok { term = 6; offset = 512 };
    Raft_msg.Snapshot_reply { term = 6; last_index = 20 };
  ]

let raft_wire_samples =
  List.map (fun m -> Raft_wire.Rpc m) raft_msg_samples
  @ [
      Raft_wire.Client (Client_msg.Reply { seq = 3; rsp = "ok" });
      Raft_wire.Dir_update { epoch = 1; members = [ 0; 1 ]; leader = Some 0 };
      Raft_wire.Dir_lookup;
      Raft_wire.Dir_info { epoch = 1; members = [ 0; 1 ]; leader = None };
    ]

(* ----------------------------------------------------------------- tests *)

let test_wire_samples () =
  (* every Wire tag is represented... *)
  Alcotest.(check int)
    "all 9 Wire tags covered" 9
    (List.length (List.sort_uniq compare (List.map Wire.tag wire_samples)));
  (* ...and each sample round-trips *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Format.asprintf "roundtrip %a" Wire.pp m)
        true
        (Wire.decode (Wire.encode m) = m))
    wire_samples

let test_raft_wire_samples () =
  Alcotest.(check int)
    "all 5 Raft_wire tags + 7 Raft_msg tags covered" 11
    (List.length
       (List.sort_uniq compare (List.map Raft_wire.tag raft_wire_samples)));
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("roundtrip " ^ Raft_wire.tag m)
        true
        (Raft_wire.decode (Raft_wire.encode m) = m))
    raft_wire_samples

let test_bad_input () =
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name Rsmr_app.Codec.Truncated (fun () ->
          ignore (f ())))
    [
      ("wire bad tag", fun () -> ignore (Wire.decode "\xff"));
      ("wire empty", fun () -> ignore (Wire.decode ""));
      ("raft_wire bad tag", fun () -> ignore (Raft_wire.decode "\xff"));
      ("raft_msg bad tag", fun () -> ignore (Raft_msg.decode "\x09"));
      ("client_msg bad tag", fun () -> ignore (Client_msg.decode "\x03"));
      ( "wire truncated block",
        fun () ->
          let s = Wire.encode (Wire.Block { epoch = 1; data = "abcdef" }) in
          ignore (Wire.decode (String.sub s 0 (String.length s - 3))) );
    ]

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"Wire decode∘encode = id" ~count:1000
    (QCheck.make wire_gen) (fun m -> Wire.decode (Wire.encode m) = m)

let prop_raft_wire_roundtrip =
  QCheck.Test.make ~name:"Raft_wire decode∘encode = id" ~count:1000
    (QCheck.make raft_wire_gen) (fun m ->
      Raft_wire.decode (Raft_wire.encode m) = m)

let prop_client_msg_roundtrip =
  QCheck.Test.make ~name:"Client_msg decode∘encode = id" ~count:1000
    (QCheck.make client_msg_gen) (fun m ->
      Client_msg.decode (Client_msg.encode m) = m)

let prop_raft_msg_roundtrip =
  QCheck.Test.make ~name:"Raft_msg decode∘encode = id" ~count:1000
    (QCheck.make raft_msg_gen) (fun m ->
      Raft_msg.decode (Raft_msg.encode m) = m)

let () =
  Alcotest.run "wire"
    [
      ( "core-wire",
        [
          Alcotest.test_case "per-constructor samples" `Quick test_wire_samples;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_client_msg_roundtrip;
        ] );
      ( "raft-wire",
        [
          Alcotest.test_case "per-constructor samples" `Quick
            test_raft_wire_samples;
          QCheck_alcotest.to_alcotest prop_raft_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_raft_msg_roundtrip;
        ] );
      ("malformed", [ Alcotest.test_case "tagged errors" `Quick test_bad_input ]);
    ]
