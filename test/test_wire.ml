(* Round-trip properties for the top-level wire codecs: decode (encode m)
   must be the identity for every constructor of Rsmr_core.Wire.t and
   Rsmr_baselines.Raft_wire.t (including the nested Client_msg and
   Raft_msg payloads), and malformed input must raise Codec.Truncated.
   Since every codec now derives [size] from a counting pass over the
   same write body as [encode], size honesty — size m = |encode m| — is
   property-checked here too, as is the [tag_of_encoded] shortcut the
   network tagger uses.  Complements the rsmr-lint codec-exhaustive
   rule: lint proves every constructor appears in encode/decode, these
   tests prove the two sides agree byte-for-byte. *)

module Wire = Rsmr_core.Wire
module Envelope = Rsmr_core.Envelope
module Raft_wire = Rsmr_baselines.Raft_wire
module Raft_msg = Rsmr_baselines.Raft_msg
module Raft_log = Rsmr_baselines.Raft_log
module Client_msg = Rsmr_client.Client_msg
module Paxos_msg = Rsmr_smr.Msg
module Ballot = Rsmr_smr.Ballot
module Log = Rsmr_smr.Log
module Vr_msg = Rsmr_smr.Vr.Msg
module Session = Rsmr_core.Session
module Snapshot = Rsmr_core.Snapshot

(* ------------------------------------------------------------ generators *)

let num = QCheck.Gen.int_bound 1_000_000
let nid = QCheck.Gen.int_range (-8) 32 (* node ids travel as zigzag *)
let nids = QCheck.Gen.(list_size (int_bound 6) nid)
let opt_nid = QCheck.Gen.option nid
let short_string = QCheck.Gen.(string_size (int_bound 32))

let client_payload_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> Client_msg.Cmd c) short_string;
        map (fun ms -> Client_msg.Change_membership ms) nids;
      ])

let client_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun seq low_water payload ->
            Client_msg.Request { seq; low_water; payload })
          num num client_payload_gen;
        map2 (fun seq rsp -> Client_msg.Reply { seq; rsp }) num short_string;
        map3
          (fun seq (leader, members) epoch ->
            Client_msg.Redirect { seq; leader; members; epoch })
          num (pair opt_nid nids) num;
        map2
          (fun low_water reqs -> Client_msg.Request_batch { low_water; reqs })
          num
          (list_size (int_bound 5) (pair num client_payload_gen));
      ])

let raft_payload_gen =
  QCheck.Gen.(
    oneof
      [
        return Raft_log.Noop;
        map3
          (fun client (seq, low_water) cmd ->
            Raft_log.App { client; seq; low_water; cmd })
          nid (pair num num) short_string;
        map (fun ms -> Raft_log.Config ms) nids;
      ])

let raft_entries_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (map3
         (fun i term payload -> (i, { Raft_log.term; payload }))
         num num raft_payload_gen))

let raft_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun term last_index last_term ->
            Raft_msg.Request_vote { term; last_index; last_term })
          num num num;
        map2 (fun term granted -> Raft_msg.Vote { term; granted }) num bool;
        map3
          (fun term (prev_index, prev_term) (entries, commit) ->
            Raft_msg.Append { term; prev_index; prev_term; entries; commit })
          num (pair num num)
          (pair raft_entries_gen num);
        map3
          (fun term success match_index ->
            Raft_msg.Append_reply { term; success; match_index })
          num bool num;
        map3
          (fun (term, last_index, last_term) (members, offset) (data, is_last) ->
            Raft_msg.Install_snapshot
              { term; last_index; last_term; members; offset; data; is_last })
          (triple num num num) (pair nids num)
          (pair short_string bool);
        map2
          (fun term offset -> Raft_msg.Snapshot_chunk_ok { term; offset })
          num num;
        map2
          (fun term last_index -> Raft_msg.Snapshot_reply { term; last_index })
          num num;
      ])

let wire_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun epoch data -> Wire.Block { epoch; data }) num short_string;
        map (fun m -> Wire.Client m) client_msg_gen;
        map3
          (fun epoch members (prev_epoch, prev_members) ->
            Wire.Bootstrap { epoch; members; prev_epoch; prev_members })
          num nids (pair num nids);
        map (fun epoch -> Wire.Fetch_state { epoch }) num;
        map3
          (fun epoch (index, total) data ->
            Wire.State_chunk { epoch; index; total; data })
          num (pair num num) short_string;
        map (fun epoch -> Wire.Retire { epoch }) num;
        map3
          (fun epoch members leader -> Wire.Dir_update { epoch; members; leader })
          num nids opt_nid;
        return Wire.Dir_lookup;
        map3
          (fun epoch members leader -> Wire.Dir_info { epoch; members; leader })
          num nids opt_nid;
      ])

let raft_wire_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun m -> Raft_wire.Rpc m) raft_msg_gen;
        map (fun m -> Raft_wire.Client m) client_msg_gen;
        map3
          (fun epoch members leader ->
            Raft_wire.Dir_update { epoch; members; leader })
          num nids opt_nid;
        return Raft_wire.Dir_lookup;
        map3
          (fun epoch members leader ->
            Raft_wire.Dir_info { epoch; members; leader })
          num nids opt_nid;
      ])

let ballot_gen =
  QCheck.Gen.(map2 (fun round node -> { Ballot.round; node }) num nid)

let kind_gen =
  QCheck.Gen.(
    oneof [ return Log.Noop; map (fun v -> Log.Value v) short_string ])

let paxos_entries_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (map3
         (fun i ballot kind -> (i, { Log.ballot; kind }))
         num ballot_gen kind_gen))

let paxos_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun ballot from_index -> Paxos_msg.Prepare { ballot; from_index })
          ballot_gen num;
        map3
          (fun ballot (from_index, commit_index) entries ->
            Paxos_msg.Promise { ballot; from_index; entries; commit_index })
          ballot_gen (pair num num) paxos_entries_gen;
        map2
          (fun ballot higher -> Paxos_msg.Reject { ballot; higher })
          ballot_gen ballot_gen;
        map3
          (fun ballot (index, commit_index) kind ->
            Paxos_msg.Accept { ballot; index; kind; commit_index })
          ballot_gen (pair num num) kind_gen;
        map3
          (fun ballot (from_index, commit_index) kinds ->
            Paxos_msg.Accept_multi { ballot; from_index; kinds; commit_index })
          ballot_gen (pair num num)
          (list_size (int_bound 5) kind_gen);
        map2
          (fun ballot index -> Paxos_msg.Accepted { ballot; index })
          ballot_gen num;
        map3
          (fun ballot from_index upto ->
            Paxos_msg.Accepted_multi { ballot; from_index; upto })
          ballot_gen num num;
        map2
          (fun ballot commit_index ->
            Paxos_msg.Heartbeat { ballot; commit_index })
          ballot_gen num;
        map (fun from_index -> Paxos_msg.Learn_req { from_index }) num;
        map2
          (fun entries commit_index ->
            Paxos_msg.Learn_rsp { entries; commit_index })
          (list_size (int_bound 4) (pair num kind_gen))
          num;
        map (fun value -> Paxos_msg.Submit { value }) short_string;
        map
          (fun values -> Paxos_msg.Submit_multi { values })
          (list_size (int_bound 5) short_string);
      ])

let vr_msg_gen =
  QCheck.Gen.(
    let ops = list_size (int_bound 4) short_string in
    oneof
      [
        map (fun value -> Vr_msg.Request { value }) short_string;
        map3
          (fun view (op, commit) value ->
            Vr_msg.Prepare { view; op; value; commit })
          num (pair num num) short_string;
        map2 (fun view op -> Vr_msg.Prepare_ok { view; op }) num num;
        map2 (fun view commit -> Vr_msg.Commit { view; commit }) num num;
        map (fun view -> Vr_msg.Start_view_change { view }) num;
        map3
          (fun view (last_normal, commit) log ->
            Vr_msg.Do_view_change { view; log; last_normal; commit })
          num (pair num num) ops;
        map3
          (fun view commit log -> Vr_msg.Start_view { view; log; commit })
          num num ops;
        map2 (fun view from -> Vr_msg.Get_state { view; from }) num num;
        map3
          (fun view (from, commit) ops ->
            Vr_msg.New_state { view; from; ops; commit })
          num (pair num num) ops;
        map (fun values -> Vr_msg.Request_multi { values }) ops;
        map3
          (fun view (from_op, commit) values ->
            Vr_msg.Prepare_multi { view; from_op; values; commit })
          num (pair num num) ops;
        map3
          (fun view from_op upto ->
            Vr_msg.Prepare_ok_multi { view; from_op; upto })
          num num num;
      ])

let snapshot_gen =
  QCheck.Gen.(
    map2
      (fun app sessions -> { Snapshot.app; sessions })
      short_string short_string)

(* Session.t is abstract: generate one by replaying a random trace of the
   operations that can actually produce a table, so trimmed floors and
   cached responses both appear. *)
let session_gen =
  QCheck.Gen.(
    let op =
      oneof
        [
          map3
            (fun client seq rsp -> `Record (client, seq, rsp))
            nid num short_string;
          map2 (fun client below -> `Trim (client, below)) nid num;
        ]
    in
    map
      (List.fold_left
         (fun t -> function
           | `Record (client, seq, rsp) -> Session.record t ~client ~seq ~rsp
           | `Trim (client, below) -> Session.trim t ~client ~below)
         Session.empty)
      (list_size (int_bound 12) op))

let envelope_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun client (seq, low_water) cmd ->
            Envelope.App { client; seq; low_water; cmd })
          nid (pair num num) short_string;
        map3
          (fun client seq members ->
            Envelope.Reconfig { client; seq; members })
          nid num nids;
      ])

(* --------------------------------------- one handcrafted case per tag *)

let wire_samples =
  [
    Wire.Block { epoch = 3; data = "abc" };
    Wire.Client
      (Client_msg.Request
         { seq = 1; low_water = 0; payload = Client_msg.Cmd "set k v" });
    Wire.Client
      (Client_msg.Request
         {
           seq = 2;
           low_water = 1;
           payload = Client_msg.Change_membership [ 0; 1; 2 ];
         });
    Wire.Client
      (Client_msg.Request_batch
         {
           low_water = 1;
           reqs =
             [
               (3, Client_msg.Cmd "set a 1");
               (4, Client_msg.Cmd "set b 2");
               (5, Client_msg.Change_membership [ 1; 2; 3 ]);
             ];
         });
    Wire.Client (Client_msg.Reply { seq = 7; rsp = "" });
    Wire.Client
      (Client_msg.Redirect
         { seq = 9; leader = Some 4; members = [ 4; 5; 6 ]; epoch = 2 });
    Wire.Bootstrap
      { epoch = 2; members = [ 3; 4; 5 ]; prev_epoch = 1; prev_members = [ 0 ] };
    Wire.Fetch_state { epoch = 0 };
    Wire.State_chunk { epoch = 5; index = 1; total = 3; data = "\x00\xffbin" };
    Wire.Retire { epoch = 4 };
    Wire.Dir_update { epoch = 6; members = [ 1; 2 ]; leader = Some 2 };
    Wire.Dir_lookup;
    Wire.Dir_info { epoch = 6; members = [ 1; 2 ]; leader = None };
  ]

let raft_msg_samples =
  [
    Raft_msg.Request_vote { term = 4; last_index = 10; last_term = 3 };
    Raft_msg.Vote { term = 4; granted = true };
    Raft_msg.Append
      {
        term = 5;
        prev_index = 9;
        prev_term = 4;
        entries =
          [
            (10, { Raft_log.term = 5; payload = Raft_log.Noop });
            ( 11,
              {
                Raft_log.term = 5;
                payload =
                  Raft_log.App
                    { client = -2; seq = 3; low_water = 1; cmd = "incr" };
              } );
            (12, { Raft_log.term = 5; payload = Raft_log.Config [ 0; 1; 2 ] });
          ];
        commit = 9;
      };
    Raft_msg.Append_reply { term = 5; success = false; match_index = 8 };
    Raft_msg.Install_snapshot
      {
        term = 6;
        last_index = 20;
        last_term = 5;
        members = [ 0; 1; 2; 3 ];
        offset = 512;
        data = String.make 64 '\x7f';
        is_last = false;
      };
    Raft_msg.Snapshot_chunk_ok { term = 6; offset = 512 };
    Raft_msg.Snapshot_reply { term = 6; last_index = 20 };
  ]

let raft_wire_samples =
  List.map (fun m -> Raft_wire.Rpc m) raft_msg_samples
  @ [
      Raft_wire.Client (Client_msg.Reply { seq = 3; rsp = "ok" });
      Raft_wire.Dir_update { epoch = 1; members = [ 0; 1 ]; leader = Some 0 };
      Raft_wire.Dir_lookup;
      Raft_wire.Dir_info { epoch = 1; members = [ 0; 1 ]; leader = None };
    ]

(* ----------------------------------------------------------------- tests *)

let test_wire_samples () =
  (* every Wire tag is represented... *)
  Alcotest.(check int)
    "all 9 Wire tags covered" 9
    (List.length (List.sort_uniq compare (List.map Wire.tag wire_samples)));
  (* ...and each sample round-trips *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Format.asprintf "roundtrip %a" Wire.pp m)
        true
        (Wire.decode (Wire.encode m) = m))
    wire_samples

let test_raft_wire_samples () =
  Alcotest.(check int)
    "all 5 Raft_wire tags + 7 Raft_msg tags covered" 11
    (List.length
       (List.sort_uniq compare (List.map Raft_wire.tag raft_wire_samples)));
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("roundtrip " ^ Raft_wire.tag m)
        true
        (Raft_wire.decode (Raft_wire.encode m) = m))
    raft_wire_samples

let test_bad_input () =
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name Rsmr_app.Codec.Truncated (fun () ->
          ignore (f ())))
    [
      ("wire bad tag", fun () -> ignore (Wire.decode "\xff"));
      ("wire empty", fun () -> ignore (Wire.decode ""));
      ("raft_wire bad tag", fun () -> ignore (Raft_wire.decode "\xff"));
      ("raft_msg bad tag", fun () -> ignore (Raft_msg.decode "\x09"));
      ("client_msg bad tag", fun () -> ignore (Client_msg.decode "\x04"));
      ( "client_msg truncated batch",
        fun () ->
          let s =
            Client_msg.encode
              (Client_msg.Request_batch
                 { low_water = 0; reqs = [ (1, Client_msg.Cmd "payload") ] })
          in
          ignore (Client_msg.decode (String.sub s 0 (String.length s - 2))) );
      ( "wire truncated block",
        fun () ->
          let s = Wire.encode (Wire.Block { epoch = 1; data = "abcdef" }) in
          ignore (Wire.decode (String.sub s 0 (String.length s - 3))) );
    ]

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"Wire decode∘encode = id" ~count:1000
    (QCheck.make wire_gen) (fun m -> Wire.decode (Wire.encode m) = m)

let prop_raft_wire_roundtrip =
  QCheck.Test.make ~name:"Raft_wire decode∘encode = id" ~count:1000
    (QCheck.make raft_wire_gen) (fun m ->
      Raft_wire.decode (Raft_wire.encode m) = m)

let prop_client_msg_roundtrip =
  QCheck.Test.make ~name:"Client_msg decode∘encode = id" ~count:1000
    (QCheck.make client_msg_gen) (fun m ->
      Client_msg.decode (Client_msg.encode m) = m)

let prop_raft_msg_roundtrip =
  QCheck.Test.make ~name:"Raft_msg decode∘encode = id" ~count:1000
    (QCheck.make raft_msg_gen) (fun m ->
      Raft_msg.decode (Raft_msg.encode m) = m)

(* --- size honesty: the counting sink must agree with the buffer sink --- *)

let prop_wire_size =
  QCheck.Test.make ~name:"Wire size = |encode|" ~count:1000
    (QCheck.make wire_gen) (fun m ->
      Wire.size m = String.length (Wire.encode m))

let prop_paxos_msg_size =
  QCheck.Test.make ~name:"Paxos Msg size = |encode|" ~count:1000
    (QCheck.make paxos_msg_gen) (fun m ->
      Paxos_msg.size m = String.length (Paxos_msg.encode m)
      && Paxos_msg.decode (Paxos_msg.encode m) = m)

let prop_vr_msg_size =
  QCheck.Test.make ~name:"Vr Msg size = |encode|" ~count:1000
    (QCheck.make vr_msg_gen) (fun m ->
      Vr_msg.size m = String.length (Vr_msg.encode m))

let prop_raft_wire_size =
  QCheck.Test.make ~name:"Raft_wire size = |encode|" ~count:1000
    (QCheck.make raft_wire_gen) (fun m ->
      Raft_wire.size m = String.length (Raft_wire.encode m))

let prop_envelope_size =
  QCheck.Test.make ~name:"Envelope size = |encode|" ~count:1000
    (QCheck.make envelope_gen) (fun m ->
      Envelope.size m = String.length (Envelope.encode m)
      && Envelope.decode (Envelope.encode m) = m)

(* --- state-transfer codecs: snapshot payloads and session tables --- *)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"Snapshot decode∘encode = id" ~count:1000
    (QCheck.make snapshot_gen) (fun s ->
      Snapshot.decode (Snapshot.encode s) = s)

(* Session.t is abstract, so round-tripping is checked on the canonical
   form: decoding and re-encoding must reproduce the bytes, and the
   table size must survive the trip. *)
let prop_session_roundtrip =
  QCheck.Test.make ~name:"Session encode∘decode∘encode = encode" ~count:1000
    (QCheck.make session_gen) (fun t ->
      let s = Session.encode t in
      let t' = Session.decode s in
      Session.encode t' = s && Session.cardinal t' = Session.cardinal t)

(* --- truncation fuzz: every strict prefix of a valid encoding must be
   rejected with Codec.Truncated — never Invalid_argument, Failure, a
   Match_failure from a tag dispatch, or a silently wrong value.  The
   prefix length is drawn from the generated integer so shrinking finds
   the shortest failing cut. *)

let prefix_prop name gen encode decode =
  QCheck.Test.make ~name:(name ^ " strict prefix raises Truncated")
    ~count:1000
    (QCheck.make QCheck.Gen.(pair gen (int_bound 1_000_000)))
    (fun (m, k) ->
      let s = encode m in
      String.length s = 0
      ||
      let cut = k mod String.length s in
      match decode (String.sub s 0 cut) with
      | _ -> false
      | exception Rsmr_app.Codec.Truncated -> true)

let truncation_fuzz =
  [
    prefix_prop "Wire" wire_gen Wire.encode Wire.decode;
    prefix_prop "Raft_wire" raft_wire_gen Raft_wire.encode Raft_wire.decode;
    prefix_prop "Raft_msg" raft_msg_gen Raft_msg.encode Raft_msg.decode;
    prefix_prop "Client_msg" client_msg_gen Client_msg.encode Client_msg.decode;
    prefix_prop "Paxos Msg" paxos_msg_gen Paxos_msg.encode Paxos_msg.decode;
    prefix_prop "Vr Msg" vr_msg_gen Vr_msg.encode Vr_msg.decode;
    prefix_prop "Envelope" envelope_gen Envelope.encode Envelope.decode;
    prefix_prop "Snapshot" snapshot_gen Snapshot.encode Snapshot.decode;
    prefix_prop "Session" session_gen Session.encode Session.decode;
  ]

(* --- tag_of_encoded: first-byte classification agrees with tag --- *)

let prop_paxos_tag_of_encoded =
  QCheck.Test.make ~name:"Paxos Msg tag_of_encoded∘encode = tag" ~count:500
    (QCheck.make paxos_msg_gen) (fun m ->
      Paxos_msg.tag_of_encoded (Paxos_msg.encode m) = Paxos_msg.tag m)

let prop_vr_tag_of_encoded =
  QCheck.Test.make ~name:"Vr Msg tag_of_encoded∘encode = tag" ~count:500
    (QCheck.make vr_msg_gen) (fun m ->
      Vr_msg.tag_of_encoded (Vr_msg.encode m) = Vr_msg.tag m)

(* The semantic closure of the two properties above: classifying the raw
   bytes must agree with decoding them and classifying the result, i.e.
   the tag_of_encoded shortcut can never disagree with the full decoder
   about which constructor a message is. *)
let prop_paxos_tag_semantic =
  QCheck.Test.make ~name:"Paxos Msg tag∘decode = tag_of_encoded" ~count:500
    (QCheck.make paxos_msg_gen) (fun m ->
      let s = Paxos_msg.encode m in
      Paxos_msg.tag (Paxos_msg.decode s) = Paxos_msg.tag_of_encoded s)

let prop_vr_tag_semantic =
  QCheck.Test.make ~name:"Vr Msg tag∘decode = tag_of_encoded" ~count:500
    (QCheck.make vr_msg_gen) (fun m ->
      let s = Vr_msg.encode m in
      Vr_msg.tag (Vr_msg.decode s) = Vr_msg.tag_of_encoded s)

let () =
  Alcotest.run "wire"
    [
      ( "core-wire",
        [
          Alcotest.test_case "per-constructor samples" `Quick test_wire_samples;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_client_msg_roundtrip;
        ] );
      ( "raft-wire",
        [
          Alcotest.test_case "per-constructor samples" `Quick
            test_raft_wire_samples;
          QCheck_alcotest.to_alcotest prop_raft_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_raft_msg_roundtrip;
        ] );
      ( "size-honesty",
        [
          QCheck_alcotest.to_alcotest prop_wire_size;
          QCheck_alcotest.to_alcotest prop_paxos_msg_size;
          QCheck_alcotest.to_alcotest prop_vr_msg_size;
          QCheck_alcotest.to_alcotest prop_raft_wire_size;
          QCheck_alcotest.to_alcotest prop_envelope_size;
        ] );
      ( "state-transfer",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_session_roundtrip;
        ] );
      ( "truncation-fuzz",
        List.map QCheck_alcotest.to_alcotest truncation_fuzz );
      ( "tag-of-encoded",
        [
          QCheck_alcotest.to_alcotest prop_paxos_tag_of_encoded;
          QCheck_alcotest.to_alcotest prop_vr_tag_of_encoded;
          QCheck_alcotest.to_alcotest prop_paxos_tag_semantic;
          QCheck_alcotest.to_alcotest prop_vr_tag_semantic;
        ] );
      ("malformed", [ Alcotest.test_case "tagged errors" `Quick test_bad_input ]);
    ]
