(* Regenerate test/data/strategy_equivalence.expected.

   Run from the repo root BEFORE touching the reconfiguration machinery:

     dune exec test/record_equiv.exe -- test/data/strategy_equivalence.expected

   The file freezes digests of the PR-4/PR-9 traces (and a few generated
   seeds) under the pre-refactor composition layer; [Test_strategy]
   replays them through the default [composed] strategy and demands
   equality.  Do not regenerate casually — a diff here means the default
   strategy is no longer replay-identical. *)

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> "test/data/strategy_equivalence.expected"
  in
  let lines = Equiv_scenarios.all_lines () in
  let oc = open_out path in
  output_string oc "# strategy_equivalence/1 — pre-refactor golden digests\n";
  List.iter (fun (k, d) -> Printf.fprintf oc "%s %s\n" k d) lines;
  close_out oc;
  Printf.printf "recorded %d digests to %s\n" (List.length lines) path
