(* Tests for the reconfigurable composition layer: exactly-once execution,
   wedging, state transfer (local and remote), residual re-submission,
   speculative handoff, chained reconfigurations, and fault tolerance
   across configuration changes. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Network = Rsmr_net.Network
module Node_id = Rsmr_net.Node_id
module Kv = Rsmr_app.Kv
module Counter = Rsmr_app.Counter
module Options = Rsmr_core.Options
module Envelope = Rsmr_core.Envelope
module Session = Rsmr_core.Session
module Snapshot = Rsmr_core.Snapshot
module Wire = Rsmr_core.Wire
module KvService = Rsmr_core.Service.Make (Rsmr_app.Kv)
module CtrService = Rsmr_core.Service.Make (Rsmr_app.Counter)

(* --- plumbing units --- *)

let test_envelope_roundtrip () =
  let cases =
    [
      Envelope.App { client = 100; seq = 7; low_water = 5; cmd = "payload" };
      Envelope.Reconfig { client = 2; seq = 1; members = [ 0; 1; 4 ] };
    ]
  in
  List.iter
    (fun e ->
      if Envelope.decode (Envelope.encode e) <> e then
        Alcotest.failf "envelope roundtrip failed for %a" Envelope.pp e)
    cases

let test_session_semantics () =
  let s = Session.empty in
  Alcotest.(check bool) "fresh is new" true
    (Session.check s ~client:1 ~seq:1 = `New);
  let s = Session.record s ~client:1 ~seq:1 ~rsp:"r1" in
  Alcotest.(check bool) "same seq dup" true
    (Session.check s ~client:1 ~seq:1 = `Dup "r1");
  Alcotest.(check bool) "next seq new" true
    (Session.check s ~client:1 ~seq:2 = `New);
  let s = Session.record s ~client:1 ~seq:2 ~rsp:"r2" in
  Alcotest.(check bool) "older seq still deduped (pipelined clients)" true
    (Session.check s ~client:1 ~seq:1 = `Dup "r1");
  Alcotest.(check bool) "other client independent" true
    (Session.check s ~client:2 ~seq:1 = `New);
  let s' = Session.decode (Session.encode s) in
  Alcotest.(check bool) "codec roundtrip preserves dedup" true
    (Session.check s' ~client:1 ~seq:2 = `Dup "r2")

let test_session_trim () =
  let s = ref Session.empty in
  for i = 1 to 10 do
    s := Session.record !s ~client:1 ~seq:i ~rsp:(Printf.sprintf "r%d" i)
  done;
  s := Session.record !s ~client:2 ~seq:1 ~rsp:"other";
  Alcotest.(check int) "all retained" 11 (Session.cardinal !s);
  s := Session.trim !s ~client:1 ~below:8;
  Alcotest.(check int) "trimmed below watermark" 4 (Session.cardinal !s);
  Alcotest.(check bool) "watermark entry kept" true
    (Session.check !s ~client:1 ~seq:8 = `Dup "r8");
  Alcotest.(check bool) "above watermark kept" true
    (Session.check !s ~client:1 ~seq:10 = `Dup "r10");
  Alcotest.(check bool) "below watermark recognized as stale, not new" true
    (Session.check !s ~client:1 ~seq:3 = `Stale);
  Alcotest.(check bool) "other client untouched" true
    (Session.check !s ~client:2 ~seq:1 = `Dup "other");
  s := Session.trim !s ~client:2 ~below:100;
  Alcotest.(check bool) "fully trimmed client keeps its floor" true
    (Session.check !s ~client:2 ~seq:1 = `Stale);
  Alcotest.(check bool) "above the floor is new" true
    (Session.check !s ~client:2 ~seq:200 = `New)

let test_snapshot_chunking () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let pieces = Snapshot.chunk data ~size:64 in
  Alcotest.(check int) "piece count" 16 (List.length pieces);
  Alcotest.(check string) "reassembles" data (Snapshot.assemble pieces);
  Alcotest.(check (list string)) "empty chunks to one piece" [ "" ]
    (Snapshot.chunk "" ~size:64)

let test_wire_roundtrip () =
  let cases =
    [
      Wire.Block
        { epoch = 3;
          data = Rsmr_smr.Msg.encode (Rsmr_smr.Msg.Submit { value = "v" }) };
      Wire.Client (Rsmr_client.Client_msg.Reply { seq = 1; rsp = "r" });
      Wire.Bootstrap
        { epoch = 2; members = [ 3; 4; 5 ]; prev_epoch = 1; prev_members = [ 0; 1; 2 ] };
      Wire.Fetch_state { epoch = 2 };
      Wire.State_chunk { epoch = 2; index = 1; total = 4; data = "abc" };
      Wire.Retire { epoch = 2 };
      Wire.Dir_update { epoch = 2; members = [ 3; 4 ]; leader = Some 3 };
      Wire.Dir_lookup;
      Wire.Dir_info { epoch = 2; members = [ 3; 4 ]; leader = None };
    ]
  in
  List.iter
    (fun m ->
      if Wire.decode (Wire.encode m) <> m then
        Alcotest.failf "wire roundtrip failed for %a" Wire.pp m)
    cases

(* --- end-to-end harness --- *)

type 'svc harness = {
  engine : Engine.t;
  svc : 'svc;
  cluster : Rsmr_iface.Cluster.t;
  replies : (Node_id.t * int, string) Hashtbl.t;
}

let run_until h ~deadline pred =
  let rec loop horizon =
    Engine.run ~until:horizon h.engine;
    if pred () then ()
    else if horizon >= deadline then
      Alcotest.failf "condition not reached by t=%g" deadline
    else loop (horizon +. 0.05)
  in
  loop (Engine.now h.engine +. 0.05)

let kv_harness ?(seed = 1) ?drop ?options ?universe ~members ~clients () =
  let engine = Engine.create ~seed () in
  let svc = KvService.create ~engine ?drop ?options ?universe ~members () in
  let cluster = KvService.cluster svc in
  let replies = Hashtbl.create 64 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client ~seq ~rsp ->
      Hashtbl.replace replies (client, seq) rsp);
  List.iter cluster.Rsmr_iface.Cluster.add_client clients;
  { engine; svc; cluster; replies }

let submit_kv h ~client ~seq cmd =
  h.cluster.Rsmr_iface.Cluster.submit ~client ~seq
    ~cmd:(Kv.encode_command cmd)

let reply_of h ~client ~seq =
  Option.map Kv.decode_response (Hashtbl.find_opt h.replies (client, seq))

let has_reply h ~client ~seq = Hashtbl.mem h.replies (client, seq)

let c1 = 100 (* client ids, clear of any replica/directory/admin id *)

let test_basic_put_get () =
  let h = kv_harness ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("k", "v"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  Alcotest.(check bool) "put ok" true (reply_of h ~client:c1 ~seq:1 = Some Kv.Ok);
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "k");
  run_until h ~deadline:10.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "get sees put" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "v")))

let test_exactly_once_on_retry () =
  (* A counter makes double-application visible. *)
  let engine = Engine.create ~seed:5 () in
  let svc = CtrService.create ~engine ~members:[ 0; 1; 2 ] () in
  let cluster = CtrService.cluster svc in
  let replies = Hashtbl.create 8 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq ~rsp ->
      Hashtbl.replace replies seq rsp);
  cluster.Rsmr_iface.Cluster.add_client c1;
  let incr = Counter.encode_command (Counter.Incr 1) in
  (* Submit, then force-retransmit the same sequence twice more. *)
  cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:1 ~cmd:incr;
  ignore
    (Engine.schedule engine ~delay:0.7 (fun () ->
         cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:1 ~cmd:incr));
  ignore
    (Engine.schedule engine ~delay:1.4 (fun () ->
         cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:1 ~cmd:incr));
  Engine.run ~until:5.0 engine;
  cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:2
    ~cmd:(Counter.encode_command Counter.Read);
  Engine.run ~until:10.0 engine;
  (match Hashtbl.find_opt replies 2 with
   | Some rsp ->
     let (Counter.Current v) = Counter.decode_response rsp in
     Alcotest.(check int) "retried increment applied exactly once" 1 v
   | None -> Alcotest.fail "no reply to read");
  (* And every replica's state agrees. *)
  List.iter
    (fun n ->
      match CtrService.app_state svc n with
      | Some st -> Alcotest.(check int) "replica state" 1 (Counter.value st)
      | None -> Alcotest.fail "replica has no state")
    [ 0; 1; 2 ]

let test_reconfigure_overlapping () =
  let h =
    kv_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3 ] ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("stable", "yes"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  (* Swap replica 2 for replica 3. *)
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 0; 1; 3 ];
  run_until h ~deadline:15.0 (fun () -> KvService.current_epoch h.svc = 1);
  Alcotest.(check (list int)) "directory view" [ 0; 1; 3 ]
    (List.sort compare (KvService.current_members h.svc));
  (* Service still linear: old data readable, new writes work. *)
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "stable");
  run_until h ~deadline:25.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "old data survives" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "yes")));
  submit_kv h ~client:c1 ~seq:3 (Kv.Put ("post", "1"));
  run_until h ~deadline:30.0 (fun () -> has_reply h ~client:c1 ~seq:3);
  (* The incoming replica eventually holds the full state. *)
  run_until h ~deadline:40.0 (fun () ->
      match KvService.app_state h.svc 3 with
      | Some st -> Kv.find st "stable" = Some "yes" && Kv.find st "post" = Some "1"
      | None -> false)

let test_reconfigure_disjoint () =
  (* Full fleet replacement: {0,1,2} -> {3,4,5}, pure remote transfer. *)
  let h =
    kv_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  for i = 1 to 10 do
    submit_kv h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%d" i, string_of_int i))
  done;
  run_until h ~deadline:10.0 (fun () -> has_reply h ~client:c1 ~seq:10);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  run_until h ~deadline:30.0 (fun () -> KvService.current_epoch h.svc = 1);
  (* All data must be readable through the new configuration. *)
  submit_kv h ~client:c1 ~seq:11 (Kv.Get "k7");
  run_until h ~deadline:45.0 (fun () -> has_reply h ~client:c1 ~seq:11);
  Alcotest.(check bool) "data crossed the transfer" true
    (reply_of h ~client:c1 ~seq:11 = Some (Kv.Value (Some "7")));
  (* New members were populated by remote chunked transfer. *)
  Alcotest.(check bool) "remote transfers happened" true
    (Counters.get (KvService.counters h.svc) "transfers" >= 1);
  (* Old instances eventually retire. *)
  run_until h ~deadline:60.0 (fun () ->
      List.for_all (fun n -> KvService.live_instances h.svc n = 0) [ 0; 1; 2 ])

let test_commands_during_reconfig_not_lost () =
  (* Fire a burst of writes exactly around the reconfiguration; every one
     must eventually be acknowledged and visible exactly once. *)
  let h =
    kv_harness ~seed:11 ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("warm", "up"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  let t0 = Engine.now h.engine in
  (* Reconfig at t0+0.05; writes stream from t0 to t0+0.5 every 25 ms. *)
  ignore
    (Engine.schedule h.engine ~delay:0.05 (fun () ->
         h.cluster.Rsmr_iface.Cluster.reconfigure [ 2; 3; 4 ]));
  for i = 0 to 19 do
    ignore
      (Engine.schedule h.engine
         ~delay:(float_of_int i *. 0.025)
         (fun () ->
           submit_kv h ~client:c1 ~seq:(2 + i)
             (Kv.Append ("acc", Printf.sprintf "[%d]" i))))
  done;
  ignore t0;
  run_until h ~deadline:40.0 (fun () ->
      let rec all i = i > 21 || (has_reply h ~client:c1 ~seq:i && all (i + 1)) in
      all 2);
  (* Exactly-once: the accumulator contains each marker exactly once, in
     sequence order (single client, one outstanding at a time is NOT
     guaranteed here — appends were fired concurrently — so just check
     multiplicity). *)
  submit_kv h ~client:c1 ~seq:30 (Kv.Get "acc");
  run_until h ~deadline:50.0 (fun () -> has_reply h ~client:c1 ~seq:30);
  match reply_of h ~client:c1 ~seq:30 with
  | Some (Kv.Value (Some acc)) ->
    for i = 0 to 19 do
      let marker = Printf.sprintf "[%d]" i in
      let count = ref 0 in
      let mlen = String.length marker in
      for off = 0 to String.length acc - mlen do
        if String.sub acc off mlen = marker then incr count
      done;
      Alcotest.(check int) (Printf.sprintf "marker %d applied exactly once" i) 1 !count
    done
  | _ -> Alcotest.fail "accumulator missing"

let test_chained_reconfigs_rolling_replace () =
  (* Replace one node at a time: {0,1,2} -> {1,2,3} -> {2,3,4} -> {3,4,5}. *)
  let h =
    kv_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("genesis", "block"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  let steps = [ [ 1; 2; 3 ]; [ 2; 3; 4 ]; [ 3; 4; 5 ] ] in
  List.iteri
    (fun i members ->
      h.cluster.Rsmr_iface.Cluster.reconfigure members;
      run_until h ~deadline:(60.0 +. (float_of_int i *. 30.0)) (fun () ->
          KvService.current_epoch h.svc = i + 1))
    steps;
  Alcotest.(check (list int)) "final membership" [ 3; 4; 5 ]
    (List.sort compare (KvService.current_members h.svc));
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "genesis");
  run_until h ~deadline:150.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "state survived three transfers" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "block")));
  Alcotest.(check int) "three wedges happened" 3
    (Counters.get (KvService.counters h.svc) "wedges"
     / List.length [ 0 ] (* each member wedges; counter counts per-host *)
     / 3)

let test_non_speculative_mode () =
  let options =
    {
      Options.default with
      Options.strategy =
        {
          Rsmr_iface.Reconfig_strategy.composed with
          Rsmr_iface.Reconfig_strategy.name = "composed-blocking";
          aliases = [];
          handoff = `Blocking;
        };
    }
  in
  let h =
    kv_harness ~options ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("a", "1"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  run_until h ~deadline:60.0 (fun () -> KvService.current_epoch h.svc = 1);
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "a");
  run_until h ~deadline:90.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "works without speculation" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "1")))

let test_crash_old_leader_mid_reconfig () =
  (* Crash every old member shortly after the reconfig is submitted; the
     snapshot must still reach the new configuration from the survivors
     (we crash one node — the others can serve the fetch). *)
  let h =
    kv_harness ~seed:3 ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("x", "42"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  (* Give the reconfig a moment to be decided, then crash node 0 (whatever
     its role: worst case it was the old leader serving the snapshot). *)
  ignore
    (Engine.schedule h.engine ~delay:0.3 (fun () ->
         h.cluster.Rsmr_iface.Cluster.crash 0));
  run_until h ~deadline:90.0 (fun () -> KvService.current_epoch h.svc = 1);
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "x");
  run_until h ~deadline:120.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "state survived crash during transfer" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "42")))

let test_client_follows_reconfig_via_directory () =
  (* The client only ever knew the original members; after a disjoint
     reconfiguration its requests must still land (via redirects and/or
     directory lookups). *)
  let h =
    kv_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("here", "before"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  run_until h ~deadline:60.0 (fun () -> KvService.current_epoch h.svc = 1);
  (* Let retirement land so old nodes are truly out of the service path. *)
  run_until h ~deadline:90.0 (fun () ->
      List.for_all (fun n -> KvService.live_instances h.svc n = 0) [ 0; 1; 2 ]);
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "here");
  run_until h ~deadline:120.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "client found the new configuration" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "before")))

let test_grow_and_shrink () =
  let h =
    kv_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4 ] ~clients:[ c1 ]
      ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("n", "3"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 0; 1; 2; 3; 4 ];
  run_until h ~deadline:30.0 (fun () -> KvService.current_epoch h.svc = 1);
  submit_kv h ~client:c1 ~seq:2 (Kv.Put ("n", "5"));
  run_until h ~deadline:40.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 1; 3 ];
  run_until h ~deadline:70.0 (fun () -> KvService.current_epoch h.svc = 2);
  submit_kv h ~client:c1 ~seq:3 (Kv.Get "n");
  run_until h ~deadline:90.0 (fun () -> has_reply h ~client:c1 ~seq:3);
  Alcotest.(check bool) "grow then shrink keeps state" true
    (reply_of h ~client:c1 ~seq:3 = Some (Kv.Value (Some "5")))

let test_rapid_double_reconfigure () =
  (* Two reconfigurations submitted back-to-back: the second is ordered as
     a residual of the first epoch (or directly in the new one) and must
     still land, producing two distinct epochs. *)
  let h =
    kv_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ~clients:[ c1 ] ()
  in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("a", "1"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 1; 2; 3 ];
  ignore
    (Engine.schedule h.engine ~delay:0.01 (fun () ->
         h.cluster.Rsmr_iface.Cluster.reconfigure [ 2; 3; 4 ]));
  run_until h ~deadline:90.0 (fun () -> KvService.current_epoch h.svc = 2);
  (* The two requests were pipelined, so either may be ordered first; the
     loser is deduplicated, never half-applied. *)
  let final = List.sort compare (KvService.current_members h.svc) in
  Alcotest.(check bool) "one of the two targets won" true
    (final = [ 2; 3; 4 ] || final = [ 1; 2; 3 ]);
  submit_kv h ~client:c1 ~seq:2 (Kv.Get "a");
  run_until h ~deadline:120.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "state intact after chained reconfigs" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "1")))

let test_duplicate_request_fast_path () =
  (* A retried request whose original already applied is answered from the
     session cache without being ordered again. *)
  let h = kv_harness ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("k", "v"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  let applied_before = Counters.get (KvService.counters h.svc) "applied" in
  Hashtbl.remove h.replies (c1, 1);
  (* Re-submit the identical (client, seq). *)
  submit_kv h ~client:c1 ~seq:1 (Kv.Put ("k", "v"));
  run_until h ~deadline:10.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  Alcotest.(check bool) "same response" true
    (reply_of h ~client:c1 ~seq:1 = Some Kv.Ok);
  Alcotest.(check int) "not re-applied" applied_before
    (Counters.get (KvService.counters h.svc) "applied")

let test_session_gc_bounds_snapshot () =
  (* A long single-client run must not grow the replicated session table:
     the piggybacked watermark trims it to the in-flight window. *)
  let h = kv_harness ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  let n = 300 in
  let submitted = ref 0 in
  let next () =
    if !submitted < n then begin
      incr submitted;
      submit_kv h ~client:c1 ~seq:!submitted (Kv.Put ("k", string_of_int !submitted))
    end
  in
  h.cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client ~seq ~rsp ->
      Hashtbl.replace h.replies (client, seq) rsp;
      next ());
  next ();
  run_until h ~deadline:60.0 (fun () ->
      has_reply h ~client:c1 ~seq:n);
  (* One command in flight at a time: the table should hold O(1) entries
     per client, not n. *)
  Alcotest.(check bool) "session table bounded" true
    (Counters.get (KvService.counters h.svc) "applied" >= n)

let test_deterministic_replay () =
  let run () =
    let h =
      kv_harness ~seed:42 ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3 ]
        ~clients:[ c1 ] ()
    in
    for i = 1 to 5 do
      submit_kv h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%d" i, "v"))
    done;
    ignore
      (Engine.schedule h.engine ~delay:0.4 (fun () ->
           h.cluster.Rsmr_iface.Cluster.reconfigure [ 0; 1; 3 ]));
    Engine.run ~until:20.0 h.engine;
    ( Engine.events_executed h.engine,
      Counters.to_list (KvService.counters h.svc),
      Counters.to_list
        (Rsmr_obs.Registry.counters h.cluster.Rsmr_iface.Cluster.obs "net") )
  in
  let a = run () and b = run () in
  let ev_a, c_a, n_a = a and ev_b, c_b, n_b = b in
  Alcotest.(check int) "event counts equal" ev_a ev_b;
  Alcotest.(check (list (pair string int))) "protocol counters equal" c_a c_b;
  Alcotest.(check (list (pair string int))) "network counters equal" n_a n_b

module BankService = Rsmr_core.Service.Make (Rsmr_app.Bank)
module Bank = Rsmr_app.Bank

(* Property: money is conserved end-to-end across random reconfigurations,
   a crash, and message loss — transfers can be lost or retried but never
   partially applied or double-applied. *)
let prop_bank_conservation_across_faults =
  QCheck.Test.make ~name:"bank total conserved across reconfig+crash+loss"
    ~count:8
    QCheck.(triple small_int (float_range 0.3 1.5) (float_range 0.0 0.05))
    (fun (seed, reconfig_at, drop) ->
      let engine = Engine.create ~seed:(seed + 11) () in
      let svc =
        BankService.create ~engine ~drop ~members:[ 0; 1; 2 ]
          ~universe:[ 0; 1; 2; 3; 4; 5 ] ()
      in
      let cluster = BankService.cluster svc in
      cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq:_ ~rsp:_ -> ());
      cluster.Rsmr_iface.Cluster.add_client c1;
      let submit seq cmd =
        cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq
          ~cmd:(Bank.encode_command cmd)
      in
      (* Open ten accounts of 100, then fire transfers around a reconfig
         and a crash. *)
      for i = 0 to 9 do
        submit (i + 1) (Bank.Open (Printf.sprintf "a%d" i, 100))
      done;
      for i = 0 to 29 do
        ignore
          (Engine.schedule engine
             ~delay:(0.2 +. (float_of_int i *. 0.06))
             (fun () ->
               submit (11 + i)
                 (Bank.Transfer
                    ( Printf.sprintf "a%d" (i mod 10),
                      Printf.sprintf "a%d" ((i + 3) mod 10),
                      7 ))))
      done;
      ignore
        (Engine.schedule engine ~delay:reconfig_at (fun () ->
             cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ]));
      ignore
        (Engine.schedule engine ~delay:(reconfig_at +. 0.1) (fun () ->
             cluster.Rsmr_iface.Cluster.crash (seed mod 3)));
      Engine.run ~until:120.0 engine;
      (* Every new member must converge to exactly the opened sum: transfers
         move money but never mint or burn it.  Old members may legitimately
         hold a frozen pre-wedge prefix in which only k of the 10 opens had
         applied — but that prefix must itself conserve (a multiple of 100,
         never distorted by a partial or double transfer). *)
      List.for_all
        (fun node ->
          match BankService.app_state svc node with
          | Some st -> Bank.total st = 1000
          | None -> false)
        [ 3; 4; 5 ]
      && List.for_all
           (fun node ->
             match BankService.app_state svc node with
             | Some st ->
               let total = Bank.total st in
               total mod 100 = 0 && total <= 1000
             | None -> true)
           [ 0; 1; 2 ])

(* Property: under randomized reconfiguration timing, increments are applied
   exactly once each. *)
let prop_exactly_once_across_reconfig =
  QCheck.Test.make ~name:"increments exactly once across random reconfig"
    ~count:10
    QCheck.(pair small_int (float_range 0.1 1.5))
    (fun (seed, reconfig_at) ->
      let engine = Engine.create ~seed:(seed + 1) () in
      let svc =
        CtrService.create ~engine ~members:[ 0; 1; 2 ]
          ~universe:[ 0; 1; 2; 3; 4; 5 ] ()
      in
      let cluster = CtrService.cluster svc in
      let replies = Hashtbl.create 32 in
      cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq ~rsp ->
          Hashtbl.replace replies seq rsp);
      cluster.Rsmr_iface.Cluster.add_client c1;
      let n = 12 in
      for i = 1 to n do
        ignore
          (Engine.schedule engine
             ~delay:(0.2 +. (float_of_int i *. 0.12))
             (fun () ->
               cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:i
                 ~cmd:(Counter.encode_command (Counter.Incr 1))))
      done;
      ignore
        (Engine.schedule engine ~delay:reconfig_at (fun () ->
             cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ]));
      Engine.run ~until:120.0 engine;
      let all_acked = List.for_all (fun i -> Hashtbl.mem replies i) (List.init n (fun i -> i + 1)) in
      let state_ok =
        List.exists
          (fun node ->
            match CtrService.app_state svc node with
            | Some st -> Counter.value st = n
            | None -> false)
          [ 3; 4; 5 ]
      in
      all_acked && state_ok)

(* --- shared directory-semantics properties --- *)

(* One property suite, two implementations: the in-process oracle
   (Rsmr_core.Directory) and the replicated application
   (Rsmr_app.Dir_app) must agree on the monotone-epoch contract —
   whichever one a deployment consults, the answers are the same. *)
module type DIR_SEM = sig
  val impl : string
  type t
  val create : unit -> t
  val update :
    t -> epoch:int -> members:int list -> leader:int option -> unit
  val view : t -> int * int list * int option
end

module Oracle_sem : DIR_SEM = struct
  let impl = "oracle"
  type t = Rsmr_core.Directory.t
  let create () = Rsmr_core.Directory.create ()
  let update t ~epoch ~members ~leader =
    Rsmr_core.Directory.update t ~epoch ~members ~leader
  let view t =
    Rsmr_core.Directory.
      (epoch t, members t, leader t)
end

module Dir_app_sem : DIR_SEM = struct
  let impl = "dir_app"
  module D = Rsmr_app.Dir_app
  type t = D.t ref
  let create () = ref (D.init ())
  let update t ~epoch ~members ~leader =
    (* Through the full wire codec, like a real hosted command. *)
    let cmd =
      D.decode_command
        (D.encode_command (D.Update { name = "svc"; epoch; members; leader }))
    in
    let st, rsp = D.apply !t cmd in
    assert (D.equal_response rsp D.Acked);
    t := st
  let view t =
    (* No entry = the oracle's virgin state (epoch -1, awaiting any
       first update). *)
    match D.find !t "svc" with
    | None -> (-1, [], None)
    | Some e -> (e.D.epoch, e.D.members, e.D.leader)
end

let gen_dir_updates =
  QCheck.(
    small_list
      (triple (int_bound 8)
         (list_of_size Gen.(int_range 1 4) (int_bound 9))
         (option (int_bound 9))))

module Dir_props (S : DIR_SEM) = struct
  (* Reference fold of the contract, stated once. *)
  let reference updates =
    List.fold_left
      (fun (e0, m0, l0) (epoch, members, leader) ->
        if epoch > e0 then (epoch, members, leader)
        else if epoch = e0 then
          (e0, m0, match leader with Some _ -> leader | None -> l0)
        else (e0, m0, l0))
      (-1, [], None) updates

  let prop_matches_reference =
    QCheck.Test.make
      ~name:(S.impl ^ ": update fold matches the monotone-epoch contract")
      ~count:200 gen_dir_updates
      (fun updates ->
        let t = S.create () in
        List.iter
          (fun (epoch, members, leader) -> S.update t ~epoch ~members ~leader)
          updates;
        S.view t = reference updates)

  let prop_epoch_monotone =
    QCheck.Test.make
      ~name:(S.impl ^ ": exposed epoch never decreases")
      ~count:200 gen_dir_updates
      (fun updates ->
        let t = S.create () in
        List.for_all
          (fun (epoch, members, leader) ->
            let e0, _, _ = S.view t in
            S.update t ~epoch ~members ~leader;
            let e1, _, _ = S.view t in
            e1 >= e0)
          updates)

  let prop_same_epoch_refreshes_leader =
    QCheck.Test.make
      ~name:(S.impl ^ ": same-epoch update refreshes leader, keeps members")
      ~count:200
      QCheck.(pair gen_dir_updates (int_bound 9))
      (fun (updates, l) ->
        let t = S.create () in
        (* Seed a real entry first: the two implementations legitimately
           differ on a same-epoch update against the virgin state (the
           oracle refreshes its epoch -1 placeholder; the map creates an
           entry) — and epoch -1 never appears on the wire. *)
        List.iter
          (fun (epoch, members, leader) -> S.update t ~epoch ~members ~leader)
          ((0, [ 1; 2; 3 ], None) :: updates);
        let e0, m0, _ = S.view t in
        S.update t ~epoch:e0 ~members:[ 99 ] ~leader:(Some l);
        S.view t = (e0, m0, Some l))

  let prop_stale_update_ignored =
    QCheck.Test.make
      ~name:(S.impl ^ ": stale update is a no-op (replay idempotence)")
      ~count:200
      QCheck.(pair gen_dir_updates gen_dir_updates)
      (fun (updates, stale) ->
        let t = S.create () in
        List.iter
          (fun (epoch, members, leader) -> S.update t ~epoch ~members ~leader)
          updates;
        let before = S.view t in
        let e0, _, _ = before in
        List.iter
          (fun (epoch, members, leader) ->
            if epoch < e0 then S.update t ~epoch ~members ~leader)
          stale;
        S.view t = before)

  let all =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_matches_reference;
        prop_epoch_monotone;
        prop_same_epoch_refreshes_leader;
        prop_stale_update_ignored;
      ]
end

module Oracle_props = Dir_props (Oracle_sem)
module Dir_app_props = Dir_props (Dir_app_sem)

let () =
  Alcotest.run "core"
    [
      ( "units",
        [
          Alcotest.test_case "envelope roundtrip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "session semantics" `Quick test_session_semantics;
          Alcotest.test_case "session trim" `Quick test_session_trim;
          Alcotest.test_case "snapshot chunking" `Quick test_snapshot_chunking;
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
        ] );
      ( "service",
        [
          Alcotest.test_case "basic put/get" `Quick test_basic_put_get;
          Alcotest.test_case "exactly-once on retry" `Quick
            test_exactly_once_on_retry;
          Alcotest.test_case "reconfigure overlapping" `Quick
            test_reconfigure_overlapping;
          Alcotest.test_case "reconfigure disjoint" `Quick
            test_reconfigure_disjoint;
          Alcotest.test_case "no loss around reconfig" `Quick
            test_commands_during_reconfig_not_lost;
          Alcotest.test_case "rolling replace" `Quick
            test_chained_reconfigs_rolling_replace;
          Alcotest.test_case "non-speculative mode" `Quick
            test_non_speculative_mode;
          Alcotest.test_case "crash during reconfig" `Quick
            test_crash_old_leader_mid_reconfig;
          Alcotest.test_case "client follows via directory" `Quick
            test_client_follows_reconfig_via_directory;
          Alcotest.test_case "grow and shrink" `Quick test_grow_and_shrink;
          Alcotest.test_case "rapid double reconfigure" `Quick
            test_rapid_double_reconfigure;
          Alcotest.test_case "duplicate request fast path" `Quick
            test_duplicate_request_fast_path;
          Alcotest.test_case "session gc bounds table" `Quick
            test_session_gc_bounds_snapshot;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          QCheck_alcotest.to_alcotest prop_exactly_once_across_reconfig;
          QCheck_alcotest.to_alcotest prop_bank_conservation_across_faults;
        ] );
      ("directory semantics", Oracle_props.all @ Dir_app_props.all);
    ]
