(* Unit tests for the sharded platform: key-range routing, the
   replicated-directory client, platform submit/reply plumbing, and the
   rolling cross-shard rebalance. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Keys = Rsmr_workload.Keys
module Kv = Rsmr_app.Kv
module Dir_app = Rsmr_app.Dir_app
module Keyspace = Rsmr_shard.Keyspace
module Dir_client = Rsmr_shard.Dir_client
module Platform = Rsmr_shard.Platform
module DirService = Rsmr_core.Service.Make (Rsmr_app.Dir_app)

(* --- keyspace --- *)

let test_keyspace_routing () =
  let ks = Keyspace.ranges ~shards:4 ~n_keys:1000 in
  Alcotest.(check int) "shard count" 4 (Keyspace.shards ks);
  (* Binary search agrees with the definition: shard i owns the i-th
     contiguous quarter of the canonical index space. *)
  for i = 0 to 999 do
    let expect = min 3 (i * 4 / 1000) in
    Alcotest.(check int)
      (Printf.sprintf "key %d" i)
      expect
      (Keyspace.shard_of ks (Keys.key_name i))
  done;
  (* Keys outside the canonical space still land somewhere sane. *)
  Alcotest.(check int) "below all boundaries" 0 (Keyspace.shard_of ks "");
  Alcotest.(check int) "above all boundaries" 3
    (Keyspace.shard_of ks "zzz")

let test_keyspace_validation () =
  (match Keyspace.of_boundaries [ "m"; "c" ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unsorted boundaries accepted");
  let ks = Keyspace.of_boundaries [] in
  Alcotest.(check int) "no boundaries = one shard" 1 (Keyspace.shards ks);
  Alcotest.(check int) "everything routes to it" 0
    (Keyspace.shard_of ks "anything")

(* --- directory client over a real replicated directory --- *)

let make_dir () =
  let engine = Engine.create ~seed:7 () in
  let svc =
    DirService.create ~engine ~members:[ 0; 1; 2 ]
      ~universe:[ 0; 1; 2; 3; 4; 5 ] ()
  in
  let dirc = Dir_client.attach ~cluster:(DirService.cluster svc) ~client:50 () in
  (engine, svc, dirc)

let test_dir_client_publish_lookup () =
  let engine, _svc, dirc = make_dir () in
  Dir_client.publish dirc ~name:"shard-0" ~epoch:3 ~members:[ 1; 2; 3 ]
    ~leader:(Some 2);
  (* Let the publish commit before looking up — publish and lookup are
     independent client commands and would otherwise race. *)
  Engine.run ~until:15.0 engine;
  let got = ref None in
  Dir_client.lookup dirc ~name:"shard-0" (fun e -> got := Some e);
  Engine.run ~until:30.0 engine;
  (match !got with
   | Some (Some e) ->
     Alcotest.(check int) "epoch" 3 e.Dir_app.epoch;
     Alcotest.(check (list int)) "members" [ 1; 2; 3 ] e.Dir_app.members;
     Alcotest.(check (option int)) "leader" (Some 2) e.Dir_app.leader
   | Some None -> Alcotest.fail "directory had no entry"
   | None -> Alcotest.fail "lookup never completed");
  Alcotest.(check int) "reply epoch cached" 3
    (Dir_client.last_epoch dirc ~name:"shard-0");
  Alcotest.(check int) "no regressions" 0 (Dir_client.regressions dirc)

let test_dir_client_stale_publish_dropped () =
  let engine, _svc, dirc = make_dir () in
  Dir_client.publish dirc ~name:"s" ~epoch:5 ~members:[ 1 ] ~leader:None;
  (* Older epoch, and a same-epoch republish with no new leader: both
     dropped locally without touching the wire. *)
  Dir_client.publish dirc ~name:"s" ~epoch:4 ~members:[ 9 ] ~leader:None;
  Dir_client.publish dirc ~name:"s" ~epoch:5 ~members:[ 1 ] ~leader:None;
  Alcotest.(check int) "one publish on the wire" 1
    (Counters.get (Dir_client.counters dirc) "publishes");
  (* A same-epoch publish with a fresh leader hint does go out. *)
  Dir_client.publish dirc ~name:"s" ~epoch:5 ~members:[ 1 ] ~leader:(Some 1);
  Alcotest.(check int) "leader refresh published" 2
    (Counters.get (Dir_client.counters dirc) "publishes");
  Engine.run ~until:30.0 engine;
  let got = ref None in
  Dir_client.lookup dirc ~name:"s" (fun e -> got := Some e);
  Engine.run ~until:60.0 engine;
  match !got with
  | Some (Some e) ->
    Alcotest.(check int) "directory kept the newest" 5 e.Dir_app.epoch;
    Alcotest.(check (option int)) "with the refreshed leader" (Some 1)
      e.Dir_app.leader
  | _ -> Alcotest.fail "lookup failed"

(* --- platform --- *)

let make_platform () =
  let engine = Engine.create ~seed:11 () in
  let pf =
    Platform.Core.create ~engine ~pool:[ 0; 1; 2; 3; 4; 5 ]
      ~shards:[ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]
      ~keyspace:(Keyspace.ranges ~shards:2 ~n_keys:100)
      ()
  in
  (engine, pf)

let test_platform_routes_and_replies () =
  let engine, pf = make_platform () in
  let cluster = Platform.Core.cluster pf in
  let client = Platform.Core.first_client_id pf in
  let replies = Hashtbl.create 8 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq ~rsp ->
      Hashtbl.replace replies seq rsp);
  cluster.Rsmr_iface.Cluster.add_client client;
  (* key 10 lives on shard 0, key 90 on shard 1. *)
  cluster.Rsmr_iface.Cluster.submit ~client ~seq:1
    ~cmd:(Kv.encode_command (Kv.Put (Keys.key_name 10, "a")));
  cluster.Rsmr_iface.Cluster.submit ~client ~seq:2
    ~cmd:(Kv.encode_command (Kv.Put (Keys.key_name 90, "b")));
  Engine.run ~until:30.0 engine;
  Alcotest.(check bool) "both replied" true
    (Hashtbl.mem replies 1 && Hashtbl.mem replies 2);
  let has_key s key =
    List.exists
      (fun m ->
        match Platform.Core.Shard_svc.app_state (Platform.Core.shard pf s) m with
        | Some st -> Kv.find st key <> None
        | None -> false)
      (Platform.Core.shard_members pf s)
  in
  Alcotest.(check bool) "key 10 on shard 0 only" true
    (has_key 0 (Keys.key_name 10) && not (has_key 1 (Keys.key_name 10)));
  Alcotest.(check bool) "key 90 on shard 1 only" true
    (has_key 1 (Keys.key_name 90) && not (has_key 0 (Keys.key_name 90)))

let test_platform_client_id_guard () =
  let _, pf = make_platform () in
  let cluster = Platform.Core.cluster pf in
  match cluster.Rsmr_iface.Cluster.add_client 3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "client id colliding with the pool accepted"

let test_rebalance_moves_node () =
  let engine, pf = make_platform () in
  let cluster = Platform.Core.cluster pf in
  let client = Platform.Core.first_client_id pf in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq:_ ~rsp:_ -> ());
  cluster.Rsmr_iface.Cluster.add_client client;
  let outcome = ref None in
  ignore
    (Engine.at engine ~time:0.5 (fun () ->
         Platform.Core.rebalance pf ~node:2 ~from_:0 ~to_:1
           ~on_done:(fun ok -> outcome := Some ok)
           ()));
  Engine.run ~until:60.0 engine;
  Alcotest.(check (option bool)) "rebalance completed" (Some true) !outcome;
  Alcotest.(check (list int)) "donor shrank" [ 0; 1 ]
    (List.sort compare (Platform.Core.shard_members pf 0));
  Alcotest.(check (list int)) "recipient grew" [ 2; 3; 4; 5 ]
    (List.sort compare (Platform.Core.shard_members pf 1));
  Alcotest.(check int) "counted done" 1
    (Counters.get (Platform.Core.counters pf) "rebalances_done");
  (* Ineligible move: node not in the donor. *)
  let bad = ref None in
  Platform.Core.rebalance pf ~node:9 ~from_:0 ~to_:1
    ~on_done:(fun ok -> bad := Some ok)
    ();
  Alcotest.(check (option bool)) "ineligible refused" (Some false) !bad

let test_rebalance_updates_directory () =
  let engine, pf = make_platform () in
  let cluster = Platform.Core.cluster pf in
  let client = Platform.Core.first_client_id pf in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq:_ ~rsp:_ -> ());
  cluster.Rsmr_iface.Cluster.add_client client;
  ignore
    (Engine.at engine ~time:0.5 (fun () ->
         Platform.Core.rebalance pf ~node:2 ~from_:0 ~to_:1 ()));
  Engine.run ~until:60.0 engine;
  let dirc = Platform.Core.dir_client pf in
  let entries = Hashtbl.create 4 in
  Dir_client.lookup dirc ~name:"shard-0" (fun e ->
      Hashtbl.replace entries 0 e);
  Dir_client.lookup dirc ~name:"shard-1" (fun e ->
      Hashtbl.replace entries 1 e);
  Engine.run ~until:120.0 engine;
  (match Hashtbl.find_opt entries 0 with
   | Some (Some e) ->
     Alcotest.(check (list int)) "directory has donor's new members" [ 0; 1 ]
       (List.sort compare e.Dir_app.members)
   | _ -> Alcotest.fail "no directory entry for shard-0");
  match Hashtbl.find_opt entries 1 with
  | Some (Some e) ->
    Alcotest.(check (list int)) "directory has recipient's new members"
      [ 2; 3; 4; 5 ]
      (List.sort compare e.Dir_app.members)
  | _ -> Alcotest.fail "no directory entry for shard-1"

let () =
  Alcotest.run "shard"
    [
      ( "keyspace",
        [
          Alcotest.test_case "routing" `Quick test_keyspace_routing;
          Alcotest.test_case "validation" `Quick test_keyspace_validation;
        ] );
      ( "dir_client",
        [
          Alcotest.test_case "publish then lookup" `Quick
            test_dir_client_publish_lookup;
          Alcotest.test_case "stale publish dropped" `Quick
            test_dir_client_stale_publish_dropped;
        ] );
      ( "platform",
        [
          Alcotest.test_case "routes and replies" `Quick
            test_platform_routes_and_replies;
          Alcotest.test_case "client id guard" `Quick
            test_platform_client_id_guard;
          Alcotest.test_case "rebalance moves node" `Quick
            test_rebalance_moves_node;
          Alcotest.test_case "rebalance updates directory" `Quick
            test_rebalance_updates_directory;
        ] );
    ]
