(* Tests for the linearizability checker, including live cross-protocol
   checks: every protocol is driven with concurrent clients across a
   reconfiguration and the recorded history must be linearizable. *)

module Engine = Rsmr_sim.Engine
module Register = Rsmr_app.Register
module History = Rsmr_checker.History
module Lin = Rsmr_checker.Linearizability.Make (Rsmr_app.Register)
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule
module RegCore = Rsmr_core.Service.Make (Rsmr_app.Register)
module RegCoreVr = Rsmr_core.Service.Make_on (Rsmr_smr.Vr) (Rsmr_app.Register)
module RegStopworld = Rsmr_baselines.Stop_the_world.Make (Rsmr_app.Register)
module RegRaft = Rsmr_baselines.Raft.Make (Rsmr_app.Register)

let op ~client ~cmd ~rsp ~invoked ~replied =
  {
    History.client;
    cmd = Register.encode_command cmd;
    rsp = Register.encode_response rsp;
    invoked;
    replied;
  }

let check_ops ops =
  let h = History.create () in
  List.iter (History.add h) ops;
  Lin.check h

let test_empty_history () =
  Alcotest.(check bool) "empty is linearizable" true
    (check_ops [] = Lin.Linearizable)

let test_sequential_ok () =
  let ops =
    [
      op ~client:1 ~cmd:(Register.Write 5) ~rsp:Register.Written ~invoked:0.0
        ~replied:1.0;
      op ~client:1 ~cmd:Register.Read ~rsp:(Register.Value 5) ~invoked:2.0
        ~replied:3.0;
    ]
  in
  Alcotest.(check bool) "sequential history ok" true
    (check_ops ops = Lin.Linearizable)

let test_stale_read_rejected () =
  (* Write 5 completes before the read starts, yet the read sees 0. *)
  let ops =
    [
      op ~client:1 ~cmd:(Register.Write 5) ~rsp:Register.Written ~invoked:0.0
        ~replied:1.0;
      op ~client:2 ~cmd:Register.Read ~rsp:(Register.Value 0) ~invoked:2.0
        ~replied:3.0;
    ]
  in
  Alcotest.(check bool) "stale read rejected" true
    (check_ops ops = Lin.Not_linearizable)

let test_concurrent_flexibility () =
  (* A read overlapping a write may see either value. *)
  let base w_rsp r_rsp =
    [
      op ~client:1 ~cmd:(Register.Write 7) ~rsp:w_rsp ~invoked:0.0 ~replied:2.0;
      op ~client:2 ~cmd:Register.Read ~rsp:r_rsp ~invoked:1.0 ~replied:3.0;
    ]
  in
  Alcotest.(check bool) "overlapping read sees new" true
    (check_ops (base Register.Written (Register.Value 7)) = Lin.Linearizable);
  Alcotest.(check bool) "overlapping read sees old" true
    (check_ops (base Register.Written (Register.Value 0)) = Lin.Linearizable)

let test_cas_ordering () =
  (* Two successful CAS(0 -> x) cannot both succeed. *)
  let ops =
    [
      op ~client:1 ~cmd:(Register.Cas (0, 1)) ~rsp:(Register.Cas_result true)
        ~invoked:0.0 ~replied:1.0;
      op ~client:2 ~cmd:(Register.Cas (0, 2)) ~rsp:(Register.Cas_result true)
        ~invoked:0.5 ~replied:1.5;
    ]
  in
  Alcotest.(check bool) "double CAS rejected" true
    (check_ops ops = Lin.Not_linearizable);
  (* But success + failure is fine. *)
  let ops_ok =
    [
      op ~client:1 ~cmd:(Register.Cas (0, 1)) ~rsp:(Register.Cas_result true)
        ~invoked:0.0 ~replied:1.0;
      op ~client:2 ~cmd:(Register.Cas (0, 2)) ~rsp:(Register.Cas_result false)
        ~invoked:0.5 ~replied:1.5;
    ]
  in
  Alcotest.(check bool) "cas success+failure ok" true
    (check_ops ops_ok = Lin.Linearizable)

let test_real_time_order_enforced () =
  (* Client 1 writes 1 then 2 (sequentially); a later read must not see 1. *)
  let ops =
    [
      op ~client:1 ~cmd:(Register.Write 1) ~rsp:Register.Written ~invoked:0.0
        ~replied:1.0;
      op ~client:1 ~cmd:(Register.Write 2) ~rsp:Register.Written ~invoked:2.0
        ~replied:3.0;
      op ~client:2 ~cmd:Register.Read ~rsp:(Register.Value 1) ~invoked:4.0
        ~replied:5.0;
    ]
  in
  Alcotest.(check bool) "old value after overwrite rejected" true
    (check_ops ops = Lin.Not_linearizable)

let test_budget_inconclusive () =
  (* Enough overlapping operations that one visited configuration cannot
     settle the question: a starved budget must answer Inconclusive, never
     a false verdict in either direction. *)
  let ops =
    List.concat_map
      (fun c ->
        [
          op ~client:c ~cmd:(Register.Write c) ~rsp:Register.Written
            ~invoked:0.0 ~replied:10.0;
        ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "starved budget is inconclusive" true
    (let h = History.create () in
     List.iter (History.add h) ops;
     Lin.check ~max_states:1 h = Lin.Inconclusive)

module LinCounter = Rsmr_checker.Linearizability.Make (Rsmr_app.Counter)
module Counter = Rsmr_app.Counter

let counter_op ~client ~cmd ~rsp ~invoked ~replied =
  {
    History.client;
    cmd = Counter.encode_command cmd;
    rsp = Counter.encode_response rsp;
    invoked;
    replied;
  }

let test_counter_exactly_once () =
  (* The checker is generic in the state machine: over Counter, a reply
     that could only arise from a doubly-applied increment is rejected,
     while the single-application reply is accepted. *)
  let history final_rsp =
    let h = History.create () in
    List.iter (History.add h)
      [
        counter_op ~client:1 ~cmd:(Counter.Incr 1)
          ~rsp:(Counter.Current 1) ~invoked:0.0 ~replied:1.0;
        counter_op ~client:2 ~cmd:(Counter.Incr 1) ~rsp:final_rsp
          ~invoked:2.0 ~replied:3.0;
      ];
    h
  in
  Alcotest.(check bool) "single application ok" true
    (LinCounter.check (history (Counter.Current 2)) = LinCounter.Linearizable);
  Alcotest.(check bool) "double application rejected" true
    (LinCounter.check (history (Counter.Current 3))
    = LinCounter.Not_linearizable)

let test_history_concurrency_probe () =
  let h = History.create () in
  History.add h
    (op ~client:1 ~cmd:Register.Read ~rsp:(Register.Value 0) ~invoked:0.0
       ~replied:10.0);
  History.add h
    (op ~client:2 ~cmd:Register.Read ~rsp:(Register.Value 0) ~invoked:1.0
       ~replied:2.0);
  History.add h
    (op ~client:3 ~cmd:Register.Read ~rsp:(Register.Value 0) ~invoked:1.5
       ~replied:2.5);
  Alcotest.(check int) "peak concurrency" 3 (History.concurrency h)

(* --- live protocol checks --- *)

let record_history stats_gen =
  let h = History.create () in
  let on_event (e : Driver.event) =
    History.add h
      {
        History.client = e.Driver.ev_client;
        cmd = e.Driver.ev_cmd;
        rsp = e.Driver.ev_rsp;
        invoked = e.Driver.ev_invoked;
        replied = e.Driver.ev_replied;
      }
  in
  stats_gen on_event;
  h

let register_gen engine =
  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  fun ~client:_ ~seq:_ ->
    match Rsmr_sim.Rng.int rng 3 with
    | 0 -> Register.encode_command Register.Read
    | 1 -> Register.encode_command (Register.Write (Rsmr_sim.Rng.int rng 100))
    | _ ->
      let e = Rsmr_sim.Rng.int rng 100 in
      Register.encode_command (Register.Cas (e, Rsmr_sim.Rng.int rng 100))

let live_check ~name ~make_cluster =
  let engine = Engine.create ~seed:21 () in
  let cluster = make_cluster engine in
  let gen = register_gen engine in
  let h =
    record_history (fun on_event ->
        ignore
          (Driver.run_closed ~cluster ~n_clients:4 ~first_client_id:100 ~gen
             ~on_event ~start:0.5 ~duration:6.0 ()))
  in
  (* Reconfigure twice while the load runs. *)
  Schedule.reconfigure_at cluster ~time:2.0 [ 2; 3; 4 ];
  Schedule.reconfigure_at cluster ~time:4.0 [ 4; 5; 0 ];
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool)
    (name ^ ": enough operations recorded")
    true
    (History.length h > 50);
  Alcotest.(check bool)
    (name ^ ": genuinely concurrent")
    true
    (History.concurrency h >= 2);
  match Lin.check h with
  | Lin.Linearizable -> ()
  | Lin.Not_linearizable -> Alcotest.failf "%s: history NOT linearizable" name
  | Lin.Inconclusive -> Alcotest.failf "%s: checker budget exhausted" name

let test_core_linearizable () =
  live_check ~name:"core" ~make_cluster:(fun engine ->
      RegCore.cluster
        (RegCore.create ~engine ~members:[ 0; 1; 2 ]
           ~universe:[ 0; 1; 2; 3; 4; 5 ] ()))

let test_stopworld_linearizable () =
  live_check ~name:"stopworld" ~make_cluster:(fun engine ->
      RegStopworld.cluster
        (RegStopworld.create ~engine ~members:[ 0; 1; 2 ]
           ~universe:[ 0; 1; 2; 3; 4; 5 ] ()))

let test_raft_linearizable () =
  live_check ~name:"raft" ~make_cluster:(fun engine ->
      RegRaft.cluster
        (RegRaft.create ~engine ~members:[ 0; 1; 2 ]
           ~universe:[ 0; 1; 2; 3; 4; 5 ] ()))

let test_core_over_vr_linearizable () =
  live_check ~name:"core/vr" ~make_cluster:(fun engine ->
      RegCoreVr.cluster
        (RegCoreVr.create ~engine ~members:[ 0; 1; 2 ]
           ~universe:[ 0; 1; 2; 3; 4; 5 ] ()))

let test_core_linearizable_lossy () =
  let engine = Engine.create ~seed:33 () in
  let cluster =
    RegCore.cluster
      (RegCore.create ~engine ~drop:0.05 ~members:[ 0; 1; 2 ]
         ~universe:[ 0; 1; 2; 3; 4 ] ())
  in
  let gen = register_gen engine in
  let h =
    record_history (fun on_event ->
        ignore
          (Driver.run_closed ~cluster ~n_clients:3 ~first_client_id:100 ~gen
             ~on_event ~start:0.5 ~duration:5.0 ()))
  in
  Schedule.reconfigure_at cluster ~time:2.5 [ 2; 3; 4 ];
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "ops recorded" true (History.length h > 20);
  match Lin.check h with
  | Lin.Linearizable -> ()
  | Lin.Not_linearizable -> Alcotest.fail "lossy core history NOT linearizable"
  | Lin.Inconclusive -> Alcotest.fail "checker budget exhausted"

let () =
  Alcotest.run "checker"
    [
      ( "units",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential ok" `Quick test_sequential_ok;
          Alcotest.test_case "stale read rejected" `Quick
            test_stale_read_rejected;
          Alcotest.test_case "concurrent flexibility" `Quick
            test_concurrent_flexibility;
          Alcotest.test_case "cas ordering" `Quick test_cas_ordering;
          Alcotest.test_case "real-time order" `Quick
            test_real_time_order_enforced;
          Alcotest.test_case "budget inconclusive" `Quick
            test_budget_inconclusive;
          Alcotest.test_case "counter exactly-once" `Quick
            test_counter_exactly_once;
          Alcotest.test_case "concurrency probe" `Quick
            test_history_concurrency_probe;
        ] );
      ( "live",
        [
          Alcotest.test_case "core linearizable across reconfigs" `Slow
            test_core_linearizable;
          Alcotest.test_case "stopworld linearizable across reconfigs" `Slow
            test_stopworld_linearizable;
          Alcotest.test_case "raft linearizable across reconfigs" `Slow
            test_raft_linearizable;
          Alcotest.test_case "core-over-VR linearizable across reconfigs" `Slow
            test_core_over_vr_linearizable;
          Alcotest.test_case "core linearizable under loss" `Slow
            test_core_linearizable_lossy;
        ] );
    ]
