(* Crucible CLI: seed-driven randomized fault-injection soak over every
   protocol stack, with scenario replay.

     dune exec test/crucible_main.exe -- --seeds 0..199          # soak
     dune exec test/crucible_main.exe -- --seed 42 --proto core  # one run
     dune exec test/crucible_main.exe -- --seed 42 --print       # show scenario
     dune exec test/crucible_main.exe -- --proto core \
       --scenario 's=42;m=0,1,2;u=0,1,2,3,4;c=2;d=1.5;ev=0.5 crash 1'

   Exit status is 0 iff no invariant oracle failed.  On failure the
   shrunk reproducer and its replay one-liner are printed (and written to
   --out FILE for CI artifact upload). *)

module Scenario = Rsmr_crucible.Scenario
module Generate = Rsmr_crucible.Generate
module Runner = Rsmr_crucible.Runner
module Oracle = Rsmr_crucible.Oracle
module Soak = Rsmr_crucible.Soak
module Churn = Rsmr_shard.Churn

let usage () =
  prerr_endline
    "usage: crucible_main [--seed N | --seeds A..B] [--proto \
     composed|matchmaker|stopworld|raft|all]\n\
    \       [--family default|reconf_churn|dir_churn] [--scenario STR] \
     [--lin-budget N]\n\
    \       [--no-shrink] [--storm] [--quick] [--print]\n\
    \       [--out FILE] [--metrics FILE] [-v]\n\
     reconf_churn family: membership-change-heavy scenarios soaking every\n\
     registered reconfiguration strategy.\n\
     dir_churn family: seeded platform-level churn (protos core|vr|all; \
     --storm runs\n\
     the deterministic redirect-storm regression scenario).";
  exit 2

type opts = {
  mutable seeds : int list;
  mutable protos : Runner.proto list;
  mutable protos_raw : string option;
  mutable family : string;
  mutable storm : bool;
  mutable quick : bool;
  mutable scenario : Scenario.t option;
  mutable lin_budget : int;
  mutable shrink : bool;
  mutable print_only : bool;
  mutable out : string option;
  mutable metrics : string option;
  mutable verbose : bool;
}

let parse_seeds s =
  match String.index_opt s '.' with
  | None -> (
    match int_of_string_opt s with
    | Some n -> Some [ n ]
    | None -> None)
  | Some _ -> (
    match String.split_on_char '.' s with
    | [ a; ""; b ] | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when b >= a -> Some (List.init (b - a + 1) (fun i -> a + i))
      | _ -> None)
    | _ -> None)

let parse_protos s =
  match s with
  | "all" -> Some Runner.all_protos
  | s -> Option.map (fun p -> [ p ]) (Runner.proto_of_string s)

let parse_args () =
  let o =
    {
      seeds = [];
      protos = Runner.all_protos;
      protos_raw = None;
      family = "default";
      storm = false;
      quick = false;
      scenario = None;
      lin_budget = Oracle.default_lin_budget;
      shrink = true;
      print_only = false;
      out = None;
      metrics = None;
      verbose = false;
    }
  in
  let rec go = function
    | [] -> o
    | "--seed" :: v :: rest | "--seeds" :: v :: rest ->
      (match parse_seeds v with
       | Some seeds -> o.seeds <- o.seeds @ seeds
       | None ->
         Printf.eprintf "bad seed range %S\n" v;
         usage ());
      go rest
    | "--proto" :: v :: rest ->
      o.protos_raw <- Some v;
      go rest
    | "--family" :: v :: rest ->
      (match v with
       | "default" | "dir_churn" | "reconf_churn" -> o.family <- v
       | _ ->
         Printf.eprintf "unknown family %S\n" v;
         usage ());
      go rest
    | "--storm" :: rest ->
      o.storm <- true;
      go rest
    | "--quick" :: rest ->
      o.quick <- true;
      go rest
    | "--scenario" :: v :: rest ->
      (match Scenario.of_string v with
       | Ok sc -> o.scenario <- Some sc
       | Error msg ->
         Printf.eprintf "bad scenario: %s\n" msg;
         usage ());
      go rest
    | "--lin-budget" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n > 0 -> o.lin_budget <- n
       | _ ->
         Printf.eprintf "bad budget %S\n" v;
         usage ());
      go rest
    | "--no-shrink" :: rest ->
      o.shrink <- false;
      go rest
    | "--print" :: rest ->
      o.print_only <- true;
      go rest
    | "--out" :: v :: rest ->
      o.out <- Some v;
      go rest
    | "--metrics" :: v :: rest ->
      o.metrics <- Some v;
      go rest
    | "-v" :: rest | "--verbose" :: rest ->
      o.verbose <- true;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let write_failures path failures =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  List.iter (fun f -> Format.fprintf ppf "%a@." Soak.pp_failure f) failures;
  Format.pp_print_flush ppf ();
  close_out oc

(* Platform-level churn: scenarios are fully determined by (proto, seed),
   so there is no shrink pass — the artifact for a failure is the replay
   one-liner plus the report. *)
let run_dir_churn o =
  let protos =
    match o.protos_raw with
    | None | Some "all" -> [ Churn.Core; Churn.Vr ]
    | Some s -> (
      match Churn.proto_of_name s with
      | Some p -> [ p ]
      | None ->
        Printf.eprintf "unknown dir_churn protocol %S (core|vr|all)\n" s;
        usage ())
  in
  let seeds =
    if o.storm then [ Churn.storm_seed ]
    else if o.seeds = [] then begin
      prerr_endline "dir_churn: need --seed/--seeds or --storm";
      usage ()
    end
    else o.seeds
  in
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 and passed = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      List.iter
        (fun proto ->
          incr runs;
          let r = Churn.run ~quick:o.quick ~storm:o.storm proto ~seed in
          if Churn.failures r = [] then begin
            incr passed;
            if o.verbose then Format.printf "%a@." Churn.pp_report r
          end
          else begin
            failures := r :: !failures;
            Format.printf "%a@.  replay: %s@." Churn.pp_report r
              (Churn.replay_command proto seed)
          end)
        protos)
    seeds;
  let failures = List.rev !failures in
  Format.printf
    "dir_churn: %d runs (%d seeds x %d protos), %d passed, %d failed, %.1fs \
     wall@."
    !runs (List.length seeds) (List.length protos) !passed
    (List.length failures)
    (Unix.gettimeofday () -. t0);
  (match o.out with
   | Some path when failures <> [] ->
     let oc = open_out path in
     let ppf = Format.formatter_of_out_channel oc in
     List.iter
       (fun r ->
         Format.fprintf ppf "%a@.replay: %s@." Churn.pp_report r
           (Churn.replay_command r.Churn.r_proto r.Churn.r_seed))
       failures;
     Format.pp_print_flush ppf ();
     close_out oc;
     Format.printf "failure traces written to %s@." path
   | Some _ | None -> ());
  exit (if failures = [] then 0 else 1)

let () =
  let o = parse_args () in
  if o.family = "dir_churn" then run_dir_churn o;
  (match o.protos_raw with
   | None -> ()
   | Some v -> (
     match parse_protos v with
     | Some ps -> o.protos <- ps
     | None ->
       Printf.eprintf "unknown protocol %S\n" v;
       usage ()));
  if o.seeds = [] && o.scenario = None then begin
    prerr_endline "need --seed/--seeds or --scenario";
    usage ()
  end;
  let generate =
    if o.family = "reconf_churn" then Generate.reconf_churn_scenario
    else Generate.scenario
  in
  let scenarios =
    match o.scenario with
    | Some sc -> [ sc ]
    | None -> List.map (fun seed -> generate ~seed) o.seeds
  in
  if o.print_only then begin
    List.iter (fun sc -> print_endline (Scenario.to_string sc)) scenarios;
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 and passed = ref 0 and inconclusive = ref 0 in
  let failures = ref [] in
  List.iter
    (fun sc ->
      List.iter
        (fun proto ->
          incr runs;
          match
            Soak.check_scenario ~lin_budget:o.lin_budget ~shrink:o.shrink
              proto sc
          with
          | Ok outcome ->
            incr passed;
            if Oracle.inconclusives outcome <> [] then incr inconclusive;
            if o.verbose then begin
              let r = Runner.run proto sc in
              Format.printf
                "seed %d %-9s ok (%d/%d ops, %d sim events, vt %.2fs)@.%a@."
                sc.Scenario.seed (Runner.proto_name proto) r.Runner.completed
                r.Runner.submitted r.Runner.events_executed r.Runner.end_time
                Oracle.pp outcome;
              Format.printf "  %a@." Rsmr_obs.Span.pp_summary r.Runner.spans;
              List.iter
                (fun (k, v) ->
                  if v > 1000 then Format.printf "  %s = %d@." k v)
                r.Runner.counters
            end
          | Error f ->
            failures := f :: !failures;
            Format.printf "%a@." Soak.pp_failure f)
        o.protos)
    scenarios;
  let failures = List.rev !failures in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf
    "crucible: %d runs (%d seeds x %d protos), %d passed, %d failed, %d \
     with inconclusive verdicts (%.1f%%), %.1fs wall@."
    !runs (List.length scenarios) (List.length o.protos) !passed
    (List.length failures) !inconclusive
    (100.0 *. float_of_int !inconclusive /. float_of_int (max 1 !runs))
    wall;
  (match o.out with
   | Some path when failures <> [] ->
     write_failures path failures;
     Format.printf "failure traces written to %s@." path
   | Some _ | None -> ());
  (* One rsmr-metrics/1 artifact for the first (scenario, proto) pair:
     counters, histograms, series and span aggregates of a full replay. *)
  (match (o.metrics, scenarios, o.protos) with
   | Some path, sc :: _, proto :: _ ->
     let r = Runner.run proto sc in
     Rsmr_obs.Registry.save r.Runner.obs ~path;
     Format.printf "metrics written to %s (spans: %a)@." path
       Rsmr_obs.Span.pp_summary r.Runner.spans
   | Some _, _, _ | None, _, _ -> ());
  exit (if failures = [] then 0 else 1)
