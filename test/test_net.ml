(* Tests for the simulated network: delivery, faults, partitions,
   accounting. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Network = Rsmr_net.Network
module Latency = Rsmr_net.Latency
module Node_id = Rsmr_net.Node_id

let setup ?latency ?drop ?duplicate n =
  let engine = Engine.create ~seed:7 () in
  let net = Network.create engine ?latency ?drop ?duplicate () in
  let inboxes = Array.make n [] in
  for i = 0 to n - 1 do
    Network.register net i (fun env ->
        inboxes.(i) <- (env.Network.src, env.Network.payload) :: inboxes.(i))
  done;
  (engine, net, inboxes)

let test_basic_delivery () =
  let engine, net, inboxes = setup 3 in
  Network.send net ~src:0 ~dst:1 "hello";
  Network.send net ~src:0 ~dst:2 "world";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "node 1 got hello" [ (0, "hello") ]
    inboxes.(1);
  Alcotest.(check (list (pair int string))) "node 2 got world" [ (0, "world") ]
    inboxes.(2);
  Alcotest.(check (list (pair int string))) "node 0 got nothing" [] inboxes.(0)

let test_latency_applied () =
  let engine, net, _ = setup ~latency:(Latency.Constant 0.05) 2 in
  let arrival = ref 0.0 in
  Network.register net 1 (fun _ -> arrival := Engine.now engine);
  Network.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  (* Allow for the default bandwidth model's sub-microsecond egress delay. *)
  Alcotest.(check (float 1e-5)) "constant latency" 0.05 !arrival

let test_bandwidth_serialization () =
  let engine = Engine.create () in
  (* 1 MB/s uplink, zero propagation latency. *)
  let net =
    Network.create engine ~latency:(Latency.Constant 0.0) ~bandwidth:1e6
      ~sizer:String.length ()
  in
  let arrivals = ref [] in
  Network.register net 1 (fun _ -> arrivals := Engine.now engine :: !arrivals);
  (* Two 100 KB messages: the second queues behind the first. *)
  Network.send net ~src:0 ~dst:1 (String.make 100_000 'x');
  Network.send net ~src:0 ~dst:1 (String.make 100_000 'y');
  Engine.run engine;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-6)) "first after 0.1s" 0.1 t1;
    Alcotest.(check (float 1e-6)) "second queues to 0.2s" 0.2 t2
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_drop_all () =
  let engine, net, inboxes = setup ~drop:1.0 2 in
  for _ = 1 to 20 do
    Network.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "all dropped" [] inboxes.(1);
  Alcotest.(check int) "drop counter" 20
    (Counters.get (Network.counters net) "dropped")

let test_duplication () =
  let engine, net, inboxes = setup ~duplicate:1.0 2 in
  Network.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  Alcotest.(check int) "two copies" 2 (List.length inboxes.(1))

let test_crash_blocks_delivery () =
  let engine, net, inboxes = setup 2 in
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 "lost";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "crashed node receives nothing" []
    inboxes.(1);
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 "after";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "delivery resumes" [ (0, "after") ]
    inboxes.(1)

let test_crashed_node_cannot_send () =
  let engine, net, inboxes = setup 2 in
  Network.crash net 0;
  Network.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "nothing delivered" [] inboxes.(1)

let test_partition () =
  let engine, net, inboxes = setup 4 in
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Network.send net ~src:0 ~dst:1 "same-side";
  Network.send net ~src:0 ~dst:2 "cross";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "same side flows"
    [ (0, "same-side") ] inboxes.(1);
  Alcotest.(check (list (pair int string))) "cross side blocked" [] inboxes.(2);
  Network.heal net;
  Network.send net ~src:0 ~dst:2 "healed";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "healed flows" [ (0, "healed") ]
    inboxes.(2)

let test_partition_cuts_inflight () =
  let engine, net, inboxes = setup ~latency:(Latency.Constant 0.1) 2 in
  Network.send net ~src:0 ~dst:1 "inflight";
  (* Partition lands while the message is still in the air. *)
  ignore
    (Engine.schedule engine ~delay:0.05 (fun () ->
         Network.partition net [ [ 0 ]; [ 1 ] ]));
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "inflight message cut" []
    inboxes.(1)

let test_broadcast_excludes_self () =
  let engine, net, inboxes = setup 3 in
  Network.broadcast net ~src:0 ~dsts:[ 0; 1; 2 ] "b";
  Engine.run engine;
  Alcotest.(check int) "self excluded" 0 (List.length inboxes.(0));
  Alcotest.(check int) "others get it" 1 (List.length inboxes.(1));
  Alcotest.(check int) "others get it (2)" 1 (List.length inboxes.(2))

let test_byte_accounting () =
  let engine = Engine.create () in
  let net =
    Network.create engine ~sizer:String.length ()
  in
  Network.register net 1 (fun _ -> ());
  Network.send net ~src:0 ~dst:1 "12345";
  Network.send net ~src:0 ~dst:1 "123";
  Engine.run engine;
  Alcotest.(check int) "bytes counted" 8
    (Counters.get (Network.counters net) "bytes_sent")

let test_link_fault () =
  let engine, net, inboxes = setup 3 in
  Network.set_link_fault net ~src:0 ~dst:1 ~drop:1.0;
  Network.send net ~src:0 ~dst:1 "x";
  Network.send net ~src:0 ~dst:2 "y";
  Network.send net ~src:1 ~dst:0 "z";
  Engine.run engine;
  Alcotest.(check int) "faulted direction drops" 0 (List.length inboxes.(1));
  Alcotest.(check int) "other destination fine" 1 (List.length inboxes.(2));
  Alcotest.(check int) "reverse direction fine" 1 (List.length inboxes.(0));
  Network.clear_link_faults net;
  Network.send net ~src:0 ~dst:1 "x2";
  Engine.run engine;
  Alcotest.(check int) "cleared fault flows" 1 (List.length inboxes.(1))

let test_unregistered_dropped () =
  let engine = Engine.create () in
  let net = Network.create engine () in
  Network.send net ~src:0 ~dst:9 "x";
  Engine.run engine;
  Alcotest.(check int) "dropped for missing handler" 1
    (Counters.get (Network.counters net) "dropped")

(* Fault-model properties backing the crucible harness: the scripted
   fault timeline assumes these semantics hold for arbitrary topologies
   and probabilities, not just the hand-picked cases above. *)

let all_pairs n =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j -> if i <> j then Some (i, j) else None)
        (List.init n Fun.id))
    (List.init n Fun.id)

let prop_partition_heal =
  QCheck.Test.make
    ~name:"partition blocks exactly cross-group pairs; heal restores all pairs"
    ~count:40
    QCheck.(pair (int_range 2 6) small_int)
    (fun (n, mask) ->
      let engine = Engine.create ~seed:(mask + 1) () in
      let net = Network.create engine () in
      let got = Hashtbl.create 32 in
      for i = 0 to n - 1 do
        Network.register net i (fun env ->
            Hashtbl.replace got (env.Network.src, i) ())
      done;
      (* A random two-way split from the mask bits; nodes 0 and 1 are
         pinned to opposite sides so neither group is empty. *)
      let group i =
        if i = 0 then 0 else if i = 1 then 1 else (mask lsr i) land 1
      in
      let side g =
        List.filter (fun i -> group i = g) (List.init n Fun.id)
      in
      let pairs = all_pairs n in
      Network.partition net [ side 0; side 1 ];
      List.iter (fun (i, j) -> Network.send net ~src:i ~dst:j ()) pairs;
      Engine.run engine;
      let split_ok =
        List.for_all
          (fun (i, j) -> Hashtbl.mem got (i, j) = (group i = group j))
          pairs
      in
      Hashtbl.reset got;
      Network.heal net;
      List.iter (fun (i, j) -> Network.send net ~src:i ~dst:j ()) pairs;
      Engine.run engine;
      split_ok && List.for_all (fun p -> Hashtbl.mem got p) pairs)

let prop_link_fault_exact =
  QCheck.Test.make
    ~name:"link fault at drop 1.0 kills exactly that directed link"
    ~count:40
    QCheck.(triple (int_bound 4) (int_bound 4) small_int)
    (fun (src, dst, seed) ->
      QCheck.assume (src <> dst);
      let n = 5 in
      let engine = Engine.create ~seed:(seed + 1) () in
      let net = Network.create engine () in
      let got = Hashtbl.create 32 in
      for i = 0 to n - 1 do
        Network.register net i (fun env ->
            Hashtbl.replace got (env.Network.src, i) ())
      done;
      Network.set_link_fault net ~src ~dst ~drop:1.0;
      let pairs = all_pairs n in
      List.iter (fun (i, j) -> Network.send net ~src:i ~dst:j ()) pairs;
      Engine.run engine;
      List.for_all
        (fun (i, j) -> Hashtbl.mem got (i, j) = not (i = src && j = dst))
        pairs)

let prop_crash_cuts_inflight =
  QCheck.Test.make
    ~name:"messages in flight to a node crashed before delivery are dropped"
    ~count:40
    QCheck.(pair (float_range 0.001 0.099) small_int)
    (fun (crash_at, seed) ->
      let engine = Engine.create ~seed:(seed + 1) () in
      let net = Network.create engine ~latency:(Latency.Constant 0.1) () in
      let got = ref 0 in
      Network.register net 1 (fun _ -> incr got);
      Network.send net ~src:0 ~dst:1 ();
      (* The crash always lands while the message is still in the air. *)
      ignore
        (Engine.schedule engine ~delay:crash_at (fun () ->
             Network.crash net 1));
      Engine.run engine;
      !got = 0)

let prop_fifo_under_duplication =
  QCheck.Test.make
    ~name:"per-link FIFO order survives any duplication rate"
    ~count:40
    QCheck.(pair (float_range 0.0 1.0) small_int)
    (fun (dup, seed) ->
      let engine = Engine.create ~seed:(seed + 1) () in
      (* Wide jittery latency so reordering would happen without the FIFO
         clamp — duplicates get their own sampled delay too. *)
      let net =
        Network.create engine ~duplicate:dup
          ~latency:(Latency.Uniform (0.001, 0.2)) ()
      in
      let seen = ref [] in
      Network.register net 1 (fun env ->
          seen := env.Network.payload :: !seen);
      let n = 30 in
      for k = 1 to n do
        Network.send net ~src:0 ~dst:1 k
      done;
      Engine.run engine;
      let delivered = List.rev !seen in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      (* No drop configured: every sequence number arrives at least once,
         and the delivery order (duplicates included) never regresses. *)
      sorted delivered
      && List.for_all (fun k -> List.mem k delivered) (List.init n (fun i -> i + 1)))

let prop_loss_rate =
  QCheck.Test.make ~name:"empirical loss rate tracks drop probability"
    ~count:20
    QCheck.(float_range 0.0 0.9)
    (fun p ->
      let engine = Engine.create ~seed:13 () in
      let net = Network.create engine ~drop:p () in
      let got = ref 0 in
      Network.register net 1 (fun _ -> incr got);
      let n = 2000 in
      for _ = 1 to n do
        Network.send net ~src:0 ~dst:1 ()
      done;
      Engine.run engine;
      let observed = 1.0 -. (float_of_int !got /. float_of_int n) in
      abs_float (observed -. p) < 0.05)

let () =
  Alcotest.run "net"
    [
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_basic_delivery;
          Alcotest.test_case "latency" `Quick test_latency_applied;
          Alcotest.test_case "bandwidth serialization" `Quick
            test_bandwidth_serialization;
          Alcotest.test_case "broadcast excludes self" `Quick
            test_broadcast_excludes_self;
          Alcotest.test_case "unregistered dropped" `Quick
            test_unregistered_dropped;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "crash blocks delivery" `Quick
            test_crash_blocks_delivery;
          Alcotest.test_case "crashed cannot send" `Quick
            test_crashed_node_cannot_send;
          Alcotest.test_case "link fault" `Quick test_link_fault;
          QCheck_alcotest.to_alcotest prop_loss_rate;
          QCheck_alcotest.to_alcotest prop_link_fault_exact;
          QCheck_alcotest.to_alcotest prop_crash_cuts_inflight;
          QCheck_alcotest.to_alcotest prop_fifo_under_duplication;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "cuts inflight" `Quick test_partition_cuts_inflight;
          QCheck_alcotest.to_alcotest prop_partition_heal;
        ] );
      ( "accounting",
        [ Alcotest.test_case "bytes" `Quick test_byte_accounting ] );
    ]
