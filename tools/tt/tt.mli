(** Typedtree machinery shared by the repo's interprocedural analyzers
    (rsmr-flow, rsmr-mirror): .cmt/.cmti discovery, dune library-wrapper
    unmangling, and per-compilation-unit path resolution so that
    cross-module references surface under one canonical display name
    ("Replica.handle", "Codec.Writer.u8") regardless of aliases, opens
    and wrapper modules. *)

val ends_with_component : suffix:string -> string -> bool
(** [s] equals [suffix], or ends with it at a ['.'] or ['_'] component
    boundary — so ["Codec.Writer.u8"] matches both the wrapped-library
    spelling ["Codec.Writer.u8"] and the external one
    ["Rsmr_app.Codec.Writer.u8"] (or mangled ["Rsmr_app__Codec..."]). *)

val unit_display : string -> string
(** ["Rsmr_smr__Replica"] → ["Replica"]; ["Stdlib__List"] → ["List"]. *)

val register_wrapper_of_filename : string -> unit
(** Learn a dune library-wrapper module name from a mangled unit
    filename (["rsmr_smr__Replica.cmt"] registers ["Rsmr_smr"]).  Call
    on every discovered file before any typedtree is resolved; the
    wrapper component is then dropped from resolved paths.  ["Stdlib"]
    is pre-registered. *)

val is_wrapper : string -> bool

(** Per-compilation-unit resolution environment.  Ident stamps are only
    unique within one typechecking run, so make a fresh one per cmt. *)
type env = {
  values : (string, string) Hashtbl.t;  (** Ident.unique_name → node key *)
  modules : (string, string) Hashtbl.t;  (** local module/alias → display *)
  opaque : (string, unit) Hashtbl.t;  (** functor parameters etc. *)
}

val fresh_env : unit -> env

val resolve_module : env -> Path.t -> string option
(** Canonical display name of a module path, seeing through local
    aliases and library wrappers; [None] for opaque modules (functor
    parameters, functor applications). *)

val resolve_value : env -> Path.t -> string option
(** Canonical key of a value path ("Codec.Writer.u8", "Replica.handle"),
    or [None] when it cannot be resolved (locals not registered,
    members of opaque modules). *)

val register_letmodule : env -> Ident.t option -> Typedtree.module_expr -> unit
(** Register a [let module M = ...] binding encountered mid-expression:
    aliases resolve to their target display name, structures and
    anything else become opaque. *)

val attr_name : Parsetree.attribute -> string
val has_attr : string -> Parsetree.attribute list -> bool

val attr_string_payload : Parsetree.attribute -> string option
(** The payload of [[@@attr "text"]], if it is a single string
    constant. *)

val loc_pos : Location.t -> string * int * int
(** file, 1-based line, 0-based column of the location's start. *)

val vb_name : Typedtree.value_binding -> (Ident.t * string) option
val unwrap_module_expr : Typedtree.module_expr -> Typedtree.module_expr

val register_structure : env -> string -> Typedtree.structure -> unit
(** Bind every module-level name (values, submodules, aliases,
    exceptions, functor bodies) under the given display prefix, so
    within-module and let-rec references resolve before bodies are
    analyzed. *)

val walk : string -> string list -> string list
(** [walk path acc] prepends every .cmt/.cmti under [path] (depth-first,
    sorted directory order) to [acc]. *)
