let all_rules =
  [
    (* rsmr-lint (per-expression, parsetree) *)
    "hashtbl-iteration";
    "wall-clock";
    "ambient-random";
    "poly-compare";
    "codec-exhaustive";
    "missing-mli";
    "decode-failwith";
    "print-noise";
    "parse-error";
    "stale-exemption";
    (* rsmr-flow (interprocedural, typedtree) *)
    "flow-nondet";
    "flow-raise";
    (* rsmr-mirror (codec write/read shape analysis, typedtree) *)
    "mirror-shape";
    "mirror-tag";
    "mirror-default";
    "mirror-unpaired";
    "mirror-eval-order";
    "mirror-opaque";
  ]

let alias = function "order-insensitive" -> "hashtbl-iteration" | t -> t

type t = {
  severities : (string, Diag.severity) Hashtbl.t;
  mutable exempts : (string * string * int) list;
  mutable allow_raise : string list;
}

let default () =
  { severities = Hashtbl.create 8; exempts = []; allow_raise = [] }

let parse path =
  let cfg = default () in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "lint config: cannot open: %s\n" msg;
      exit 2
  in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       match
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.filter (fun s -> s <> "")
       with
       | [] -> ()
       | [ "severity"; rule; sev ] when List.mem rule all_rules ->
         let sev =
           match sev with
           | "error" -> Diag.Error
           | "warn" -> Diag.Warn
           | "off" -> Diag.Off
           | s ->
             Printf.eprintf "%s:%d: unknown severity %S\n" path !lineno s;
             exit 2
         in
         Hashtbl.replace cfg.severities rule sev
       | [ "exempt"; rule; prefix ] when List.mem rule all_rules ->
         cfg.exempts <- (rule, prefix, !lineno) :: cfg.exempts
       | [ "allow-raise"; exn ] -> cfg.allow_raise <- exn :: cfg.allow_raise
       | _ ->
         Printf.eprintf "%s:%d: cannot parse config line\n" path !lineno;
         exit 2
     done
   with End_of_file -> ());
  close_in ic;
  cfg

let severity cfg rule =
  match Hashtbl.find_opt cfg.severities rule with
  | Some s -> s
  | None -> (
    match rule with
    (* mirror-opaque marks soundness gaps in the shape abstraction, not
       codec bugs; advisory by default *)
    | "stale-exemption" | "mirror-opaque" -> Diag.Warn
    | _ -> Diag.Error)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let exempt cfg rule relpath =
  List.exists
    (fun (r, prefix, _) -> r = rule && starts_with prefix relpath)
    cfg.exempts

(* A prefix is live if it names an existing file/directory, or is a proper
   prefix of a sibling entry's name (e.g. [lib/smr/repl] covering
   replica.ml); anything else is a dead suppression. *)
let prefix_live ~root prefix =
  let abs = Filename.concat root prefix in
  Sys.file_exists abs
  ||
  let dir = Filename.dirname abs and base = Filename.basename abs in
  Sys.file_exists dir && Sys.is_directory dir
  && Array.exists (starts_with base) (Sys.readdir dir)

let stale_exempts cfg ~root =
  List.filter (fun (_, prefix, _) -> not (prefix_live ~root prefix)) cfg.exempts
