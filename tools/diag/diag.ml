type severity = Error | Warn | Off

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  sev : severity;
  msg : string;
  chain : string list;
}

type format = Text | Json

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | _ -> None

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Stdlib.compare (a.line, a.col) (b.line, b.col) with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.msg b.msg
      | c -> c)
    | c -> c)
  | c -> c

let errors ds = List.length (List.filter (fun d -> d.sev = Error) ds)
let warnings ds = List.length (List.filter (fun d -> d.sev = Warn) ds)

let sev_name = function Error -> "error" | Warn -> "warn" | Off -> "off"

let render_msg d =
  match d.chain with
  | [] -> d.msg
  | chain -> d.msg ^ ": " ^ String.concat " \xe2\x86\x92 " chain

let print_text ds ~summary =
  List.iter
    (fun d ->
      Printf.printf "%s:%d:%d: [%s/%s] %s\n" d.file d.line d.col
        (sev_name d.sev) d.rule (render_msg d))
    ds;
  print_string summary;
  print_newline ()

(* Minimal JSON string escaping: control characters, quote, backslash. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json ~tool ds ~summary =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"tool\":\"%s\",\n" (json_escape tool));
  Buffer.add_string b "\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\
            \"severity\":\"%s\",\"message\":\"%s\""
           (json_escape d.file) d.line d.col (json_escape d.rule)
           (sev_name d.sev) (json_escape d.msg));
      (match d.chain with
       | [] -> ()
       | chain ->
         Buffer.add_string b ",\"chain\":[";
         List.iteri
           (fun j hop ->
             if j > 0 then Buffer.add_string b ",";
             Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape hop)))
           chain;
         Buffer.add_string b "]");
      Buffer.add_string b "}")
    ds;
  Buffer.add_string b "],\n";
  Buffer.add_string b
    (Printf.sprintf "\"errors\":%d,\"warnings\":%d,\"summary\":\"%s\"}\n"
       (errors ds) (warnings ds) (json_escape summary));
  print_string (Buffer.contents b)

let print ~format ~tool ds ~summary =
  match format with
  | Text -> print_text ds ~summary
  | Json -> print_json ~tool ds ~summary
