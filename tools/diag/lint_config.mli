(** The shared configuration file (repo-root [lint.conf]) read by both
    rsmr-lint and rsmr-flow.

    Syntax, one directive per line ('#' starts a comment):
    {v
      severity <rule> <error|warn|off>
      exempt <rule> <path-prefix>     # repo-root-relative prefix
      allow-raise <Module.Exception>  # tagged error, permitted under
                                      # [@@rsmr.total] (rsmr-flow only)
    v} *)

val all_rules : string list
(** Every rule either tool understands; [severity]/[exempt] lines naming
    anything else are rejected. *)

val alias : string -> string
(** Suppression-token aliases ([order-insensitive] → [hashtbl-iteration]). *)

type t = {
  severities : (string, Diag.severity) Hashtbl.t;
  mutable exempts : (string * string * int) list;
      (** rule, path prefix, config line *)
  mutable allow_raise : string list;
      (** normalized exception constructor paths, e.g. ["Codec.Truncated"] *)
}

val default : unit -> t
val parse : string -> t
(** [parse path] reads a config file; prints to stderr and exits 2 on a
    malformed line. *)

val severity : t -> string -> Diag.severity
(** Configured severity, falling back to the rule's default ([warn] for
    [stale-exemption], [error] for everything else). *)

val exempt : t -> string -> string -> bool
(** [exempt cfg rule relpath]: is [relpath] covered by an [exempt] line? *)

val stale_exempts : t -> root:string -> (string * string * int) list
(** [exempt] entries whose path prefix matches nothing under [root] — the
    file moved or was deleted, leaving a dead suppression. *)
