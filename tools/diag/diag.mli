(** Diagnostics shared by the repo's static-analysis tools (rsmr-lint,
    rsmr-flow): one record per finding, stable sorting, and the two output
    formats — the human [Text] form both tools have always printed, and a
    machine-readable [Json] form for CI annotation. *)

type severity = Error | Warn | Off

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  sev : severity;
  msg : string;
  chain : string list;
      (** Interprocedural call chain, root first, effect last.  Empty for
          per-expression findings (rsmr-lint). *)
}

type format = Text | Json

val format_of_string : string -> format option

val compare : t -> t -> int
(** Order by file, then position, then rule, then message — the order both
    tools print in, so self-test fixtures diff deterministically. *)

val errors : t list -> int
val warnings : t list -> int

val print_text : t list -> summary:string -> unit
(** One [file:line:col: [sev/rule] msg] line per finding (the chain, when
    present, is appended to the message), then the summary line. *)

val print_json : tool:string -> t list -> summary:string -> unit
(** A single JSON object: [{"tool":…,"diagnostics":[…],"errors":n,
    "warnings":n,"summary":…}].  Each diagnostic carries file, line, col,
    rule, severity, message and (when non-empty) the call chain. *)

val print : format:format -> tool:string -> t list -> summary:string -> unit
