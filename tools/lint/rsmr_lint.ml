(* rsmr-lint — determinism & protocol-safety static analysis for this repo.

   Parses every .ml under the given directories with compiler-libs and
   enforces repo-specific rules that the type checker cannot:

   R1 determinism
     [hashtbl-iteration]  no [Hashtbl.iter]/[Hashtbl.fold] in protocol
                          libraries (lib/smr, lib/baselines, lib/core,
                          lib/client): bucket order is a function of
                          insertion history and must not reach message,
                          commit or log order.  Use
                          [Rsmr_sim.Stable.iter_sorted]/[fold_sorted], or
                          annotate a genuinely commutative use with
                          [(* lint: order-insensitive *)].
     [wall-clock]         no [Unix.gettimeofday]/[Unix.time]/[Sys.time]:
                          simulated time comes from [Engine.now].
     [ambient-random]     no [Random.*] (the stdlib global PRNG) anywhere:
                          all randomness flows from the seeded
                          [Rsmr_sim.Rng].
   R2 protocol safety
     [poly-compare]       no bare polymorphic [compare]/[Stdlib.compare] in
                          protocol libraries, and no [=]/[<>] whose operand
                          syntactically involves a wire-codec type's
                          constructors or module: use the dedicated
                          [equal_*]/[compare_*] functions or a keyed sort.
     [codec-exhaustive]   in every wire-codec module (a module defining
                          top-level [encode] and [decode]), each
                          constructor of each variant type declared there
                          must appear in BOTH the encode and the decode
                          body — catching silently-dropped message tags.
     [state-hash]         no structural hashing ([Hashtbl.hash],
                          [Hashtbl.seeded_hash], [Hashtbl.hash_param]) in
                          protocol libraries or the model checker
                          (lib/mc): structural hashing truncates deep
                          values (hash_param's meaningful-node budget)
                          and depends on in-memory representation, so two
                          runs of the checker could fingerprint equal
                          protocol states differently.  Fingerprints come
                          from canonical encodings via [Rsmr_sim.Fnv] /
                          [Rsmr_mc.Fingerprint].
   R3 hygiene
     [missing-mli]        every module under lib/ has an .mli.
     [decode-failwith]    no [failwith]/[assert false] inside [decode*]
                          functions: decode paths raise a tagged error
                          (e.g. [Codec.Truncated]) so callers can reject
                          malformed input deterministically.
     [print-noise]        no [Printf.printf]/[Format.eprintf]/
                          [print_endline]-family calls in protocol
                          libraries: observability flows through the
                          Observatory registry and the trace bus
                          ([Rsmr_obs]), never stdout — ad-hoc prints are
                          invisible to tooling and pollute CLI output.

   Suppression: a comment [(* lint: <rule-id> ... *)] on the violating line
   or the line directly above disables that rule for that line
   ([order-insensitive] is an alias for [hashtbl-iteration]).  Severities
   and path exemptions come from a config file shared with rsmr-flow (see
   --config and tools/diag/lint_config.mli); an [exempt] line whose path
   prefix no longer matches anything on disk is itself reported as
   [stale-exemption], so suppressions cannot silently outlive the files
   they covered. *)

module P = Parsetree
module Diag = Rsmr_diag.Diag
module Lint_config = Rsmr_diag.Lint_config

let alias = Lint_config.alias

let protocol_dirs = [ "lib/smr"; "lib/baselines"; "lib/core"; "lib/client" ]

(* state-hash additionally covers the model checker itself: its
   fingerprints are the dedup identity of visited states, exactly where
   structural hashing would be most tempting and most wrong. *)
let state_hash_dirs = protocol_dirs @ [ "lib/mc" ]

type config = Lint_config.t

let severity = Lint_config.severity
let exempt = Lint_config.exempt

(* ----------------------------------------------------------- diagnostics *)

type report = {
  mutable violations : Diag.t list;
  mutable suppressed : int;
  mutable files : int;
}

let report = { violations = []; suppressed = 0; files = 0 }

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (max 1 p.Lexing.pos_lnum, max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol))

(* -------------------------------------------------- per-file scan context *)

type ctx = {
  relpath : string;
  protocol : bool; (* protocol-library scope: R1/R2 expression rules *)
  state_scope : bool; (* protocol scope plus lib/mc: state-hash rule *)
  cfg : config;
  suppressions : (int, string list) Hashtbl.t; (* line -> tokens *)
  toplevel : (string, unit) Hashtbl.t; (* top-level value names *)
}

let suppressed ctx rule line =
  let tokens l =
    Option.value (Hashtbl.find_opt ctx.suppressions l) ~default:[]
  in
  List.exists (fun t -> alias t = rule) (tokens line @ tokens (line - 1))

let flag ctx ~loc rule msg =
  let line, col = loc_pos loc in
  if severity ctx.cfg rule = Diag.Off then ()
  else if exempt ctx.cfg rule ctx.relpath then ()
  else if suppressed ctx rule line then
    report.suppressed <- report.suppressed + 1
  else
    report.violations <-
      {
        Diag.file = ctx.relpath;
        line;
        col;
        rule;
        msg;
        sev = severity ctx.cfg rule;
        chain = [];
      }
      :: report.violations

(* Scan for single-line "(* lint: ... *)" suppression comments. *)
let scan_suppressions src =
  let tbl = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let marker = "(* lint:" in
      match
        let rec find from =
          if from + String.length marker > String.length line then None
          else if String.sub line from (String.length marker) = marker then
            Some from
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some at ->
        let rest = String.sub line (at + String.length marker)
            (String.length line - at - String.length marker)
        in
        let rest =
          match
            let rec find from =
              if from + 2 > String.length rest then None
              else if String.sub rest from 2 = "*)" then Some from
              else find (from + 1)
            in
            find 0
          with
          | Some e -> String.sub rest 0 e
          | None -> rest
        in
        let tokens =
          String.split_on_char ' ' rest
          |> List.concat_map (String.split_on_char ',')
          |> List.filter (fun s -> s <> "")
        in
        Hashtbl.replace tbl (i + 1) tokens)
    lines;
  tbl

(* --------------------------------------------------------- codec registry *)

(* Wire-codec modules (top-level [encode] + [decode]) feed two things:
   the codec-exhaustive check, and the constructor/module registry that
   poly-compare uses to spot equality on message values. *)

type codec = {
  c_relpath : string;
  c_variants : (string * (string * Location.t) list * Location.t) list;
      (* type name, (constructor, loc) list, type loc *)
  c_encode : P.expression list;
      (* [encode] plus every sibling top-level binding it reaches *)
  c_decode : P.expression list;
      (* [decode] plus every sibling top-level binding it reaches *)
}

let registry_constructors : (string, unit) Hashtbl.t = Hashtbl.create 64
let registry_modules : (string, unit) Hashtbl.t = Hashtbl.create 16

let module_name_of relpath =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename relpath))

let toplevel_values structure =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (si : P.structure_item) ->
      match si.pstr_desc with
      | P.Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : P.value_binding) ->
            match vb.pvb_pat.P.ppat_desc with
            | P.Ppat_var { txt; _ } -> Hashtbl.replace tbl txt vb.pvb_expr
            | _ -> ())
          vbs
      | _ -> ())
    structure;
  tbl

(* The wire-format body may be factored into sibling top-level bindings:
   the single-pass codec style defines [write]/[read] bodies (shared by
   [encode], [size] and nested embedding) plus per-field helpers, and
   [encode]/[decode] are thin wrappers over them.  Follow unqualified
   identifier references from a root binding through its siblings (to a
   fixpoint) so the exhaustiveness check sees constructors wherever the
   shared body actually lives. *)
let delegation_closure tops root =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt tops name with
      | None -> ()
      | Some expr ->
        acc := expr :: !acc;
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match e.P.pexp_desc with
                 | P.Pexp_ident { txt = Longident.Lident id; _ } -> visit id
                 | _ -> ());
                Ast_iterator.default_iterator.expr self e);
          }
        in
        it.expr it expr
    end
  in
  visit root;
  !acc

let codec_of_structure relpath structure =
  let tops = toplevel_values structure in
  match (Hashtbl.find_opt tops "encode", Hashtbl.find_opt tops "decode") with
  | Some _, Some _ ->
    let variants =
      List.filter_map
        (fun (si : P.structure_item) ->
          match si.pstr_desc with
          | P.Pstr_type (_, decls) ->
            Some
              (List.filter_map
                 (fun (d : P.type_declaration) ->
                   match d.ptype_kind with
                   | P.Ptype_variant cds ->
                     Some
                       ( d.ptype_name.txt,
                         List.map
                           (fun (cd : P.constructor_declaration) ->
                             (cd.pcd_name.txt, cd.pcd_loc))
                           cds,
                         d.ptype_loc )
                   | _ -> None)
                 decls)
          | _ -> None)
        structure
      |> List.concat
    in
    Some { c_relpath = relpath; c_variants = variants;
           c_encode = delegation_closure tops "encode";
           c_decode = delegation_closure tops "decode" }
  | _ -> None

let register_codec codec =
  Hashtbl.replace registry_modules (module_name_of codec.c_relpath) ();
  List.iter
    (fun (_, ctors, _) ->
      List.iter (fun (c, _) -> Hashtbl.replace registry_constructors c ()) ctors)
    codec.c_variants

(* Constructor names mentioned (as pattern or expression) in a subtree. *)
let mentioned_constructors expr =
  let acc = Hashtbl.create 16 in
  let last lid =
    match List.rev (Longident.flatten lid) with c :: _ -> Some c | [] -> None
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.P.pexp_desc with
           | P.Pexp_construct ({ txt; _ }, _) -> (
             match last txt with
             | Some c -> Hashtbl.replace acc c ()
             | None -> ())
           | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      pat =
        (fun self p ->
          (match p.P.ppat_desc with
           | P.Ppat_construct ({ txt; _ }, _) -> (
             match last txt with
             | Some c -> Hashtbl.replace acc c ()
             | None -> ())
           | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.expr it expr;
  acc

(* Does an expression syntactically involve a registered wire-codec value:
   a registered constructor, or an identifier/constructor qualified with a
   registered codec module? *)
let mentions_registry expr =
  let hit = ref false in
  let check_lid lid =
    (match Longident.flatten lid with
     | [ c ] when Hashtbl.mem registry_constructors c -> hit := true
     | m :: _ :: _ when Hashtbl.mem registry_modules m -> hit := true
     | _ -> ())
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.P.pexp_desc with
          | P.Pexp_ident { txt; _ } -> check_lid txt
          | P.Pexp_construct ({ txt; _ }, _) ->
            check_lid txt;
            Ast_iterator.default_iterator.expr self e
          | P.Pexp_apply (_, args) ->
            (* A codec-module *function* in head position (e.g.
               [Config.quorum cfg = 1]) does not make the result a codec
               value; only walk the arguments. *)
            List.iter (fun (_, a) -> self.expr self a) args
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  !hit

(* ------------------------------------------------------ expression rules *)

let hashtbl_iterators = [ "iter"; "fold" ]
let structural_hashers = [ "hash"; "seeded_hash"; "hash_param" ]
let equality_ops = [ "="; "<>"; "=="; "!=" ]

let wall_clock_idents =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

let print_noise_idents =
  [
    "print_endline"; "print_string"; "print_newline"; "print_int";
    "print_char"; "print_float"; "prerr_endline"; "prerr_string";
    "prerr_newline";
  ]

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let check_expression ctx (e : P.expression) =
  let loc = e.pexp_loc in
  match e.pexp_desc with
  | P.Pexp_ident { txt; _ } -> (
    let raw = Longident.flatten txt in
    let path = strip_stdlib raw in
    match path with
    | [ "Hashtbl"; f ] when ctx.protocol && List.mem f hashtbl_iterators ->
      flag ctx ~loc "hashtbl-iteration"
        (Printf.sprintf
           "Hashtbl.%s in a protocol library: bucket order is \
            nondeterministic; use Rsmr_sim.Stable.%s_sorted or annotate \
            with (* lint: order-insensitive *)"
           f
           (if f = "iter" then "iter" else "fold"))
    | [ "Hashtbl"; f ] when ctx.state_scope && List.mem f structural_hashers ->
      flag ctx ~loc "state-hash"
        (Printf.sprintf
           "Hashtbl.%s on protocol state: structural hashing truncates \
            deep values and depends on representation; fingerprint the \
            canonical encoding with Rsmr_sim.Fnv / Rsmr_mc.Fingerprint \
            instead"
           f)
    | _ when List.mem path wall_clock_idents ->
      flag ctx ~loc "wall-clock"
        (Printf.sprintf
           "%s reads the host wall clock; simulated time comes from \
            Engine.now"
           (String.concat "." path))
    | "Random" :: _ :: _ ->
      flag ctx ~loc "ambient-random"
        (Printf.sprintf
           "%s uses the ambient stdlib PRNG; all randomness must flow from \
            the seeded Rsmr_sim.Rng"
           (String.concat "." path))
    | [ ("Printf" | "Format"); (("printf" | "eprintf") as f) ]
      when ctx.protocol ->
      flag ctx ~loc "print-noise"
        (Printf.sprintf
           "%s.%s in a protocol library; account through the Observatory \
            registry or emit on the trace bus (Rsmr_obs) instead of \
            printing"
           (List.hd path) f)
    | [ f ] when ctx.protocol && List.mem f print_noise_idents ->
      flag ctx ~loc "print-noise"
        (Printf.sprintf
           "%s in a protocol library; account through the Observatory \
            registry or emit on the trace bus (Rsmr_obs) instead of \
            printing"
           f)
    | [ "compare" ]
      when ctx.protocol
           && (raw = [ "Stdlib"; "compare" ]
              || not (Hashtbl.mem ctx.toplevel "compare")) ->
      flag ctx ~loc "poly-compare"
        "polymorphic compare in a protocol library; use the dedicated \
         compare_* function or a keyed comparison"
    | _ -> ())
  | P.Pexp_apply
      ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident op; _ }; _ },
       [ (_, a); (_, b) ])
    when ctx.protocol && List.mem op equality_ops ->
    if mentions_registry a || mentions_registry b then
      flag ctx ~loc "poly-compare"
        (Printf.sprintf
           "polymorphic %s applied to a wire-codec value; use the \
            dedicated equal_*/compare_* function"
           op)
  | _ -> ()

let check_decode_body ctx (body : P.expression) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.P.pexp_desc with
           | P.Pexp_ident { txt = Longident.Lident "failwith"; _ }
           | P.Pexp_ident
               { txt = Longident.Ldot (Longident.Lident "Stdlib",
                                       "failwith"); _ } ->
             flag ctx ~loc:e.pexp_loc "decode-failwith"
               "failwith in a decode path; raise a tagged error (e.g. \
                Codec.Truncated) so malformed input is rejected \
                deterministically"
           | P.Pexp_assert
               { pexp_desc =
                   P.Pexp_construct
                     ({ txt = Longident.Lident "false"; _ }, None);
                 _ } ->
             flag ctx ~loc:e.pexp_loc "decode-failwith"
               "assert false in a decode path; raise a tagged error (e.g. \
                Codec.Truncated) instead"
           | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body

let check_codec ctx codec =
  let union exprs =
    let acc = Hashtbl.create 32 in
    List.iter
      (fun e ->
        Hashtbl.iter (fun c () -> Hashtbl.replace acc c ())
          (mentioned_constructors e))
      exprs;
    acc
  in
  let in_encode = union codec.c_encode in
  let in_decode = union codec.c_decode in
  List.iter
    (fun (tname, ctors, _tloc) ->
      List.iter
        (fun (c, cloc) ->
          if not (Hashtbl.mem in_encode c) then
            flag ctx ~loc:cloc "codec-exhaustive"
              (Printf.sprintf
                 "constructor %s of type %s never appears in this \
                  module's encode: the tag would be silently \
                  unencodable" c tname);
          if not (Hashtbl.mem in_decode c) then
            flag ctx ~loc:cloc "codec-exhaustive"
              (Printf.sprintf
                 "constructor %s of type %s never appears in this \
                  module's decode: the tag would be silently dropped on \
                  the wire" c tname))
        ctors)
    codec.c_variants

(* ------------------------------------------------------------- file scan *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let scan_ml ~cfg ~scope_all ~root relpath =
  report.files <- report.files + 1;
  let src = read_file (Filename.concat root relpath) in
  let protocol =
    scope_all || List.exists (fun d -> starts_with d relpath) protocol_dirs
  in
  let state_scope =
    scope_all || List.exists (fun d -> starts_with d relpath) state_hash_dirs
  in
  let ctx =
    {
      relpath;
      protocol;
      state_scope;
      cfg;
      suppressions = scan_suppressions src;
      toplevel = Hashtbl.create 32;
    }
  in
  match
    let lexbuf = Lexing.from_string src in
    Location.init lexbuf relpath;
    Parse.implementation lexbuf
  with
  | exception _ ->
    flag ctx
      ~loc:Location.(in_file relpath)
      "parse-error" "file does not parse; rsmr-lint cannot analyze it"
  | structure ->
    (* hygiene: every lib/ module carries an interface *)
    if
      (scope_all || starts_with "lib/" relpath)
      && not (Sys.file_exists (Filename.concat root (relpath ^ "i")))
    then
      flag ctx
        ~loc:Location.(in_file relpath)
        "missing-mli" "module has no .mli interface";
    Hashtbl.iter
      (fun name _ -> Hashtbl.replace ctx.toplevel name ())
      (toplevel_values structure);
    (* codec cross-check *)
    (match codec_of_structure relpath structure with
     | Some codec -> check_codec ctx codec
     | None -> ());
    (* expression-level rules *)
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            check_expression ctx e;
            Ast_iterator.default_iterator.expr self e);
        value_binding =
          (fun self vb ->
            (match vb.P.pvb_pat.P.ppat_desc with
             | P.Ppat_var { txt; _ } when starts_with "decode" txt ->
               check_decode_body ctx vb.pvb_expr
             | _ -> ());
            Ast_iterator.default_iterator.value_binding self vb);
      }
    in
    it.structure it structure

(* Pre-pass: register codec modules so poly-compare knows the wire types,
   wherever they are referenced from. *)
let prescan_ml ~root relpath =
  let src = read_file (Filename.concat root relpath) in
  match
    let lexbuf = Lexing.from_string src in
    Location.init lexbuf relpath;
    Parse.implementation lexbuf
  with
  | exception _ -> ()
  | structure -> (
    match codec_of_structure relpath structure with
    | Some codec -> register_codec codec
    | None -> ())

let rec walk ~root rel acc =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else walk ~root (Filename.concat rel entry) acc)
      acc
      (let entries = Sys.readdir abs in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix rel ".ml" then rel :: acc
  else acc

(* ------------------------------------------------------------------ main *)

(* exempt lines whose path prefix matches nothing on disk: the file moved
   or was deleted, leaving a suppression that covers nothing. *)
let check_stale_exempts cfg ~root ~config_file =
  if severity cfg "stale-exemption" <> Diag.Off then
    List.iter
      (fun (rule, prefix, lineno) ->
        report.violations <-
          {
            Diag.file = config_file;
            line = lineno;
            col = 0;
            rule = "stale-exemption";
            msg =
              Printf.sprintf
                "exempt %s %s matches no file under the root: dead \
                 suppression (file moved or deleted?)"
                rule prefix;
            sev = severity cfg "stale-exemption";
            chain = [];
          }
          :: report.violations)
      (Lint_config.stale_exempts cfg ~root)

let usage =
  "usage: rsmr_lint [--root DIR] [--config FILE] [--format text|json] \
   [--scope-all] DIR..."

let () =
  let root = ref "." in
  let config_file = ref None in
  let scope_all = ref false in
  let format = ref Diag.Text in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: d :: rest ->
      root := d;
      parse_args rest
    | "--config" :: f :: rest ->
      config_file := Some f;
      parse_args rest
    | "--scope-all" :: rest ->
      scope_all := true;
      parse_args rest
    | "--format" :: f :: rest -> (
      match Diag.format_of_string f with
      | Some f ->
        format := f;
        parse_args rest
      | None ->
        Printf.eprintf "rsmr_lint: unknown format %S\n%s\n" f usage;
        exit 2)
    | d :: rest when not (starts_with "--" d) ->
      dirs := d :: !dirs;
      parse_args rest
    | arg :: _ ->
      Printf.eprintf "rsmr_lint: unknown argument %S\n%s\n" arg usage;
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !dirs = [] then begin
    Printf.eprintf "%s\n" usage;
    exit 2
  end;
  let cfg =
    match !config_file with
    | Some f ->
      let cfg = Lint_config.parse f in
      check_stale_exempts cfg ~root:!root ~config_file:f;
      cfg
    | None -> Lint_config.default ()
  in
  let files =
    List.concat_map (fun d -> List.rev (walk ~root:!root d [])) (List.rev !dirs)
  in
  List.iter (prescan_ml ~root:!root) files;
  List.iter (scan_ml ~cfg ~scope_all:!scope_all ~root:!root) files;
  let violations = List.sort Diag.compare report.violations in
  let errors = Diag.errors violations in
  let warns = Diag.warnings violations in
  let summary =
    Printf.sprintf
      "rsmr-lint: %d file(s) scanned, %d error(s), %d warning(s), %d \
       suppression(s) honoured"
      report.files errors warns report.suppressed
  in
  Diag.print ~format:!format ~tool:"rsmr-lint" violations ~summary;
  exit (if errors > 0 then 1 else 0)
