type t = Ping of int | Pong

exception Bad_tag

val write : Buffer.t -> t -> unit
val read : string -> t
val encode : t -> string
val decode : string -> t
val size : t -> int
