val add : int -> int -> int
val total : (string, int) Hashtbl.t -> int
