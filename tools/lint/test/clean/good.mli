val add : int -> int -> int
val total : (string, int) Hashtbl.t -> int
val render : Format.formatter -> string -> unit
val banner : unit -> unit
