(* A codec in the single-pass style: the wire-format body lives in
   [write]/[read] (shared by encode, size, and nested embedding) and the
   top-level [encode]/[decode] only delegate to them.  codec-exhaustive
   must follow that delegation and still see every constructor. *)

type t = Ping of int | Pong

let write buf t =
  match t with
  | Ping n ->
    Buffer.add_char buf '\000';
    Buffer.add_string buf (string_of_int n)
  | Pong -> Buffer.add_char buf '\001'

exception Bad_tag

let read s =
  if String.length s = 0 then raise Bad_tag
  else
    match s.[0] with
    | '\000' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n -> Ping n
      | None -> raise Bad_tag)
    | '\001' -> Pong
    | _ -> raise Bad_tag

let encode t =
  let buf = Buffer.create 16 in
  write buf t;
  Buffer.contents buf

let decode s = read s

let size t = String.length (encode t)
