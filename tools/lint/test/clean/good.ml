(* A well-behaved module: has an .mli, and its one Hashtbl.fold carries a
   documented order-insensitivity annotation.  Exercises the suppression
   path of the lint self-test. *)

let add x y = x + y

let total tbl =
  (* lint: order-insensitive — addition commutes *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
