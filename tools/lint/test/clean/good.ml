(* A well-behaved module: has an .mli, and its one Hashtbl.fold carries a
   documented order-insensitivity annotation.  Exercises the suppression
   path of the lint self-test. *)

let add x y = x + y

let total tbl =
  (* lint: order-insensitive — addition commutes *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

(* Formatter plumbing is not print noise: only the stdout/stderr printing
   family is flagged, pp_* combinators over a caller's formatter are how
   diagnostics are supposed to be rendered. *)
let render ppf s = Format.pp_print_string ppf s

let banner () =
  (* lint: print-noise — fixture stand-in for a CLI entry point *)
  print_endline "ok"

(* Fingerprinting the canonical encoding is the sanctioned way to hash
   state — [state-hash] only bans the structural Hashtbl.hash family. *)
let fingerprint s = Rsmr_sim.Fnv.hash s

let bucket_key s =
  (* lint: state-hash — keying a scratch table, not fingerprinting state *)
  Hashtbl.hash s land 0xff
