(* Seeded R1/R3 violations — rsmr-lint must exit non-zero on this tree.
   Never compiled, only parsed by the lint self-test. *)

let tally tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let now () = Unix.gettimeofday ()
let jitter () = Random.float 1.0
let same a b = compare a b = 0
let shout v = Printf.printf "decided %d\n" v
let trace = print_endline
let fp state = Hashtbl.hash state
