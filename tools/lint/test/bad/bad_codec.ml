(* Seeded R2/R3 violations: constructor [C] is encodable but silently
   dropped by decode, a message value is compared with polymorphic [=],
   and a decode path uses failwith.  Never compiled, only parsed. *)

type t = A | B of int | C

let encode = function A -> 0 | B _ -> 1 | C -> 2
let decode tag = if tag = 0 then A else B tag
let is_default v = v = A
let decode_strict tag = if tag > 2 then failwith "bad tag" else decode tag
