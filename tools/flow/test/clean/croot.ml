let handle s =
  let tag = Proto.decode s in
  (* int_of_string is partial, but the try/with masks it. *)
  let guarded = try int_of_string s with Failure _ -> 0 in
  (tag + guarded, Clock.now ())
