exception Bad_tag of int

(* Raising the allow-listed tagged error is permitted under
   [@@rsmr.total] (flow.conf: allow-raise Proto.Bad_tag). *)
let decode s = if String.length s = 0 then raise (Bad_tag 0) else Char.code s.[0]
