(* The sanctioned shape: simulated time advanced explicitly by the
   caller, no ambient host clock anywhere. *)
let current = ref 0.0
let advance dt = current := !current +. dt
let now () = !current
