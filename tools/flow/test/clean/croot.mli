val handle : string -> int * float
[@@rsmr.deterministic] [@@rsmr.total]
