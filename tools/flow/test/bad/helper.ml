(* One level of indirection is enough to launder a wall-clock read past a
   per-expression lint: no rule fires at the call sites of [now]. *)
let now () = Sys.time ()
