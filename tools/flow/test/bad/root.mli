val handle : int list -> int * float
[@@rsmr.deterministic] [@@rsmr.total]
