let first l = List.hd l
