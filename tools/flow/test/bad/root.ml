let handle l =
  let stamp = Helper.now () in
  (Mid.pick l, stamp)
