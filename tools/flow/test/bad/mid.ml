(* The partial call sits two hops below the annotated root. *)
let pick l = Util.first l
