(* rsmr-flow — interprocedural determinism & exception-flow analysis.

   rsmr-lint (tools/lint) checks determinism rules per expression, so a
   one-line wrapper module launders any violation past it:

     let now () = Sys.time ()        (* helper.ml: no rule fires here...  *)
     ... Helper.now () ...           (* ...and the call site looks pure   *)

   This tool closes that hole.  It loads the .cmt/.cmti typedtrees dune
   already produces for every library module, builds a cross-module call
   graph over fully resolved paths (so module aliases, opens and library
   wrappers are all seen through), and computes two transitive effect sets
   per top-level function:

     nondeterminism  reaches the host wall clock (Unix.gettimeofday,
                     Unix.time, Sys.time), the ambient stdlib PRNG
                     (the Random module outside Random.State), unordered
                     hash-table iteration (Hashtbl.iter/fold/to_seq), host
                     environment reads (Sys.getenv), physical equality
                     (==/!=) or Marshal.
     may-raise       reaches failwith, a raise of an exception not
                     allow-listed in lint.conf ([allow-raise]), assert, or
                     a partial stdlib function (List.hd/tl/nth/find/assoc,
                     Option.get, Hashtbl.find, Queue.pop/take/peek,
                     Stack.pop/top, int_of_string, ...).  invalid_arg is
                     deliberately NOT in this set: it is the repo's
                     sanctioned fail-fast precondition guard, whereas the
                     sources above crash on reachable protocol input.

   Enforcement is annotation-driven.  Protocol entry points are marked in
   their .mli (or, for functor internals, on the .ml let-binding):

     val handle : t -> src:Node_id.t -> Msg.t -> unit
     [@@rsmr.deterministic] [@@rsmr.total]

   and the tool errors with the full offending call chain
   (Replica.handle -> Log.truncate -> List.hd) when an annotated root can
   reach a forbidden effect.  [@@rsmr.assume_deterministic] /
   [@@rsmr.assume_total] cut the analysis at a function that is trusted by
   construction (use sparingly; every use is greppable).  Severities and
   path exemptions extend the shared lint.conf: rules [flow-nondet] and
   [flow-raise], with [exempt] matching the file that *defines* the
   offending function (or the root's own file).

   Known over/under-approximations, documented in DESIGN.md s7:
   - effects anywhere in a function body count, even inside a lambda that
     is never called (over);
   - calls through closures stored in records/refs and through functor
     parameters are invisible (under) — annotate both sides' entry points;
   - a try/with masks may-raise effects arising anywhere under its body,
     whatever it actually catches (under); nondeterminism is never masked;
   - Map/Set functor instances are opaque (under): their partial [find]
     is not tracked. *)

module T = Typedtree
module Diag = Rsmr_diag.Diag
module Lint_config = Rsmr_diag.Lint_config
open Rsmr_tt.Tt
(* unit_display, wrapper registration, env/resolve_*, attrs, loc_pos,
   register_structure, walk — shared with rsmr-mirror. *)

(* ------------------------------------------------------------- effects *)

type dim = Nondet | Raise

let rule_of_dim = function Nondet -> "flow-nondet" | Raise -> "flow-raise"

let nondet_exact =
  [
    "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime";
    "Unix.getpid"; "Sys.time"; "Sys.getenv"; "Sys.getenv_opt";
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values"; "Random.self_init"; "Random.State.make_self_init";
    "=="; "!=";
  ]

let raise_exact =
  [
    "failwith"; "raise"; "raise_notrace";
    "List.hd"; "List.tl"; "List.nth"; "List.find"; "List.assoc";
    "Option.get"; "Hashtbl.find"; "Queue.pop"; "Queue.take"; "Queue.peek";
    "Queue.top"; "Stack.pop"; "Stack.top"; "int_of_string"; "float_of_string";
    "bool_of_string"; "Char.chr"; "String.index"; "String.rindex";
  ]

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let nondet_source key =
  List.mem key nondet_exact
  || starts_with "Marshal." key
  || (starts_with "Random." key && not (starts_with "Random.State." key))

let raise_source key = List.mem key raise_exact

(* ------------------------------------------------------------ the graph *)

type effect_ = {
  e_dim : dim;
  e_source : string; (* "Sys.time", "List.hd", "raise Foo", "assert" *)
  e_loc : Location.t;
  e_in_try : bool;
}

type node = {
  n_key : string; (* "Replica.handle", "Codec.Writer.varint" *)
  n_file : string;
  n_line : int;
  n_col : int;
  mutable n_effects : effect_ list;
  mutable n_calls : (string * bool (* in_try *)) list;
  mutable n_root_det : bool;
  mutable n_root_total : bool;
  mutable n_assume_det : bool;
  mutable n_assume_total : bool;
}

let nodes : (string, node) Hashtbl.t = Hashtbl.create 512

(* Annotations found in .cmti interfaces, applied once all nodes exist. *)
let pending_roots : (string * string) list ref = ref []

let diagnostics : Diag.t list ref = ref []
let modules_loaded = ref 0

let get_node key ~loc =
  match Hashtbl.find_opt nodes key with
  | Some n -> n
  | None ->
    let file, line, col = loc_pos loc in
    let n =
      {
        n_key = key;
        n_file = file;
        n_line = line;
        n_col = col;
        n_effects = [];
        n_calls = [];
        n_root_det = false;
        n_root_total = false;
        n_assume_det = false;
        n_assume_total = false;
      }
    in
    Hashtbl.replace nodes key n;
    n

(* ------------------------------------------------------- cmt traversal *)

let apply_attrs node attrs =
  if has_attr "rsmr.deterministic" attrs then node.n_root_det <- true;
  if has_attr "rsmr.total" attrs then node.n_root_total <- true;
  if has_attr "rsmr.assume_deterministic" attrs then node.n_assume_det <- true;
  if has_attr "rsmr.assume_total" attrs then node.n_assume_total <- true

let allow_raise_set : (string, unit) Hashtbl.t = Hashtbl.create 8

(* The exception constructor's normalized name, e.g. "Codec.Truncated";
   locally declared exceptions resolve through env.values (registered at
   declaration), predefined ones (Not_found, Exit, ...) by their name. *)
let exn_name env (cd : Types.constructor_description) =
  match cd.Types.cstr_tag with
  | Types.Cstr_extension (path, _) -> (
    match resolve_value env path with
    | Some key -> Some key
    | None -> (
      match path with
      | Path.Pident id -> Some (Ident.name id)
      | _ -> None))
  | _ -> None

let analyze_body env node (body : T.expression) =
  let try_depth = ref 0 in
  let note_effect dim source loc =
    node.n_effects <-
      {
        e_dim = dim;
        e_source = source;
        e_loc = loc;
        e_in_try = !try_depth > 0;
      }
      :: node.n_effects
  in
  let note_ref path loc =
    match resolve_value env path with
    | None -> ()
    | Some key ->
      if nondet_source key then note_effect Nondet key loc
      else if raise_source key then note_effect Raise key loc
      else node.n_calls <- (key, !try_depth > 0) :: node.n_calls
  in
  let is_raise path =
    match resolve_value env path with
    | Some ("raise" | "raise_notrace") -> true
    | _ -> false
  in
  let rec iter =
    {
      Tast_iterator.default_iterator with
      expr = (fun self e -> expr self e);
    }
  and expr self (e : T.expression) =
    match e.T.exp_desc with
    | T.Texp_ident (path, _, _) -> note_ref path e.T.exp_loc
    | T.Texp_apply
        ({ T.exp_desc = T.Texp_ident (path, _, _); _ }, [ (_, Some arg) ])
      when is_raise path -> (
      match arg.T.exp_desc with
      | T.Texp_construct (_, cd, cargs) -> (
        (match exn_name env cd with
         | Some name when Hashtbl.mem allow_raise_set name ->
           () (* tagged protocol error, sanctioned by allow-raise *)
         | Some name -> note_effect Raise ("raise " ^ name) e.T.exp_loc
         | None -> note_effect Raise "raise" e.T.exp_loc);
        List.iter (self.Tast_iterator.expr self) cargs)
      | _ ->
        (* re-raise of a variable or computed exception *)
        note_effect Raise "raise" e.T.exp_loc;
        self.Tast_iterator.expr self arg)
    | T.Texp_try (body, handlers) ->
      (* Assume the handlers cover whatever the body raises: may-raise is
         masked under a try, nondeterminism never is. *)
      incr try_depth;
      self.Tast_iterator.expr self body;
      decr try_depth;
      List.iter (fun c -> self.Tast_iterator.case self c) handlers
    | T.Texp_assert (cond, _) ->
      (match cond.T.exp_desc with
       | T.Texp_construct (_, { Types.cstr_name = "false"; _ }, _) ->
         note_effect Raise "assert false" e.T.exp_loc
       | _ -> note_effect Raise "assert" e.T.exp_loc);
      self.Tast_iterator.expr self cond
    | _ -> Tast_iterator.default_iterator.expr self e
  in
  iter.Tast_iterator.expr iter body

(* Analysis pass: walk the same shape as Tt.register_structure,
   creating graph nodes. *)

let rec analyze_structure env prefix (str : T.structure) =
  List.iter (analyze_item env prefix) str.T.str_items

and analyze_item env prefix (item : T.structure_item) =
  match item.T.str_desc with
  | T.Tstr_value (_, vbs) ->
    List.iteri
      (fun i vb ->
        let key =
          match vb_name vb with
          | Some (_, name) -> prefix ^ "." ^ name
          | None -> Printf.sprintf "%s.<toplevel#%d>" prefix i
        in
        let node = get_node key ~loc:vb.T.vb_loc in
        apply_attrs node vb.T.vb_attributes;
        analyze_body env node vb.T.vb_expr)
      vbs
  | T.Tstr_module mb -> analyze_module env prefix mb
  | T.Tstr_recmodule mbs -> List.iter (analyze_module env prefix) mbs
  | _ -> ()

and analyze_module env prefix (mb : T.module_binding) =
  match mb.T.mb_id with
  | None -> ()
  | Some id -> (
    let sub = prefix ^ "." ^ Ident.name id in
    let me = unwrap_module_expr mb.T.mb_expr in
    match me.T.mod_desc with
    | T.Tmod_structure str -> analyze_structure env sub str
    | T.Tmod_functor _ ->
      let rec peel (me : T.module_expr) =
        match me.T.mod_desc with
        | T.Tmod_functor (_, body) -> peel (unwrap_module_expr body)
        | T.Tmod_structure str -> analyze_structure env sub str
        | _ -> ()
      in
      peel me
    | _ -> ())

(* Interface pass: [@@rsmr.*] on .mli vals name annotation roots.
   Recurses into concrete submodule signatures (module M : sig ... end)
   so e.g. Vr.Msg.decode is annotatable; module *types* are skipped —
   they have no implementation of their own. *)
let rec scan_interface prefix (sg : T.signature) =
  List.iter
    (fun (item : T.signature_item) ->
      match item.T.sig_desc with
      | T.Tsig_value vd ->
        let key = prefix ^ "." ^ vd.T.val_name.txt in
        List.iter
          (fun a ->
            match attr_name a with
            | "rsmr.deterministic" | "rsmr.total" | "rsmr.assume_deterministic"
            | "rsmr.assume_total" ->
              pending_roots := (attr_name a, key) :: !pending_roots
            | _ -> ())
          vd.T.val_attributes
      | T.Tsig_module md -> (
        match (md.T.md_name.txt, md.T.md_type.T.mty_desc) with
        | Some name, T.Tmty_signature sub ->
          scan_interface (prefix ^ "." ^ name) sub
        | _ -> ())
      | _ -> ())
    sg.T.sig_items

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ ->
    Printf.eprintf "rsmr_flow: cannot read %s (skipped)\n" path
  | cmt -> (
    let modname = unit_display cmt.Cmt_format.cmt_modname in
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      incr modules_loaded;
      let env = fresh_env () in
      register_structure env modname str;
      analyze_structure env modname str
    | Cmt_format.Interface sg -> scan_interface modname sg
    | _ -> ())

(* ---------------------------------------------------------- the solver *)

let apply_pending_roots () =
  List.iter
    (fun (attr, key) ->
      match Hashtbl.find_opt nodes key with
      | Some node ->
        if attr = "rsmr.deterministic" then node.n_root_det <- true;
        if attr = "rsmr.total" then node.n_root_total <- true;
        if attr = "rsmr.assume_deterministic" then node.n_assume_det <- true;
        if attr = "rsmr.assume_total" then node.n_assume_total <- true
      | None ->
        diagnostics :=
          {
            Diag.file = "<interface>";
            line = 1;
            col = 0;
            rule = "flow-nondet";
            sev = Diag.Warn;
            msg =
              Printf.sprintf
                "[@@%s] on %s names no analyzable implementation (alias-only \
                 or external definition?)"
                attr key;
            chain = [];
          }
          :: !diagnostics)
    !pending_roots

let assumed node = function
  | Nondet -> node.n_assume_det
  | Raise -> node.n_assume_total

let annotation_name = function
  | Nondet -> "[@@rsmr.deterministic]"
  | Raise -> "[@@rsmr.total]"

let effect_phrase = function
  | Nondet -> "reaches nondeterministic"
  | Raise -> "may raise via"

let check_root cfg root dim =
  let rule = rule_of_dim dim in
  if Lint_config.severity cfg rule = Diag.Off then ()
  else begin
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let reported : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    (* Breadth-first so the reported chain is a shortest path. *)
    let queue = Queue.create () in
    Queue.add (root, [ root.n_key ]) queue;
    Hashtbl.replace seen root.n_key ();
    while not (Queue.is_empty queue) do
      match Queue.take_opt queue with
      | None -> ()
      | Some (node, rev_path) ->
        if not (assumed node dim) then begin
          List.iter
            (fun e ->
              if
                e.e_dim = dim
                && not (dim = Raise && e.e_in_try)
                && not (Lint_config.exempt cfg rule node.n_file)
                && not (Lint_config.exempt cfg rule root.n_file)
              then begin
                let dedupe = node.n_key ^ "\x00" ^ e.e_source in
                if not (Hashtbl.mem reported dedupe) then begin
                  Hashtbl.replace reported dedupe ();
                  diagnostics :=
                    {
                      Diag.file = root.n_file;
                      line = root.n_line;
                      col = root.n_col;
                      rule;
                      sev = Lint_config.severity cfg rule;
                      msg =
                        Printf.sprintf "%s is annotated %s but %s %s (in %s)"
                          root.n_key (annotation_name dim)
                          (effect_phrase dim) e.e_source node.n_key;
                      chain = List.rev (e.e_source :: rev_path);
                    }
                    :: !diagnostics
                end
              end)
            node.n_effects;
          List.iter
            (fun (callee, in_try) ->
              if not (dim = Raise && in_try) then
                match Hashtbl.find_opt nodes callee with
                | Some next when not (Hashtbl.mem seen callee) ->
                  Hashtbl.replace seen callee ();
                  Queue.add (next, callee :: rev_path) queue
                | _ -> ())
            node.n_calls
        end
    done
  end

(* ------------------------------------------------------------------ main *)

let usage =
  "usage: rsmr_flow [--config FILE] [--format text|json] DIR-or-CMT..."

let () =
  let config_file = ref None in
  let format = ref Diag.Text in
  let inputs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: f :: rest ->
      config_file := Some f;
      parse_args rest
    | "--format" :: f :: rest -> (
      match Diag.format_of_string f with
      | Some f ->
        format := f;
        parse_args rest
      | None ->
        Printf.eprintf "rsmr_flow: unknown format %S\n%s\n" f usage;
        exit 2)
    | d :: rest when not (starts_with "--" d) ->
      inputs := d :: !inputs;
      parse_args rest
    | arg :: _ ->
      Printf.eprintf "rsmr_flow: unknown argument %S\n%s\n" arg usage;
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !inputs = [] then begin
    Printf.eprintf "%s\n" usage;
    exit 2
  end;
  let cfg =
    match !config_file with
    | Some f -> Lint_config.parse f
    | None -> Lint_config.default ()
  in
  List.iter
    (fun exn -> Hashtbl.replace allow_raise_set exn ())
    cfg.Lint_config.allow_raise;
  let files = List.concat_map (fun d -> List.rev (walk d [])) (List.rev !inputs) in
  (* Wrapper names must be known before the first typedtree is resolved,
     so learn them from the full file list up front. *)
  List.iter register_wrapper_of_filename files;
  List.iter load_cmt files;
  apply_pending_roots ();
  let roots =
    Hashtbl.fold (fun _ n acc -> n :: acc) nodes []
    |> List.filter (fun n -> n.n_root_det || n.n_root_total)
    |> List.sort (fun a b -> String.compare a.n_key b.n_key)
  in
  List.iter
    (fun root ->
      if root.n_root_det then check_root cfg root Nondet;
      if root.n_root_total then check_root cfg root Raise)
    roots;
  let ds = List.sort Diag.compare !diagnostics in
  let errors = Diag.errors ds in
  let warns = Diag.warnings ds in
  let summary =
    Printf.sprintf
      "rsmr-flow: %d module(s) loaded, %d function(s), %d root(s) checked, \
       %d error(s), %d warning(s)"
      !modules_loaded (Hashtbl.length nodes) (List.length roots) errors warns
  in
  Diag.print ~format:!format ~tool:"rsmr-flow" ds ~summary;
  exit (if errors > 0 then 1 else 0)
