(* rsmr-mirror — symbolic write/read shape analysis.

   Every wire message, command envelope and snapshot in this repo goes
   through a hand-rolled codec (lib/app/codec.ml).  rsmr-lint checks
   surface idioms and rsmr-flow checks effect reachability, but neither
   can see the one property hand-rolled codecs actually break: that the
   decoder consumes byte-for-byte what the encoder produces.  A codec
   bug (swapped fields, a tag emitted but never dispatched, zigzag read
   as varint) round-trips fine on the values the unit tests happen to
   pick, or worse, decodes cleanly into the wrong value.

   This tool lifts every write and read body into a symbolic byte shape
   (tools/mirror/shape.mli) from the .cmt typedtrees dune already
   produces, pairs encoders with decoders by naming convention or an
   explicit [[@@rsmr.codec "Name"]] attribute, and checks per pair:

   - per-constructor shape equality up to the zero-copy equivalences
     (Writer.string ~ Reader.string/view, Writer.nested Sub.write ~
     Sub.read (Reader.view r)), with the shortest divergence witness
     per mismatch                                        [mirror-shape]
   - encoder tag set = decoder dispatched tag set, no duplicates on
     either side                                           [mirror-tag]
   - every decoder tag dispatch defaults to raising Codec.Truncated
                                                       [mirror-default]
   - every writer body has a reader counterpart and vice versa
     (one-way canonical encoders opt out with
     [[@@rsmr.codec.oneway]]; pure delegation like [size] is exempt)
                                                      [mirror-unpaired]
   - at most one effectful codec operation per unspecified-evaluation-
     order position (tuple/constructor/record/argument siblings)
                                                    [mirror-eval-order]
   - constructs the abstraction cannot see through are surfaced, not
     silently trusted                                   [mirror-opaque]

   Severities and path exemptions come from the shared lint.conf; the
   unit "Codec" itself (the combinator library) is skipped. *)

module T = Typedtree
module Diag = Rsmr_diag.Diag
module Lint_config = Rsmr_diag.Lint_config
open Rsmr_tt.Tt

let findings : Shape.finding list ref = ref []
let note f = findings := f :: !findings
let bodies : Lift.body list ref = ref []
let modules_loaded = ref 0

(* ------------------------------------------------------- cmt traversal *)

let rec collect_structure env prefix (str : T.structure) =
  List.iter (collect_item env prefix) str.T.str_items

and collect_item env prefix (item : T.structure_item) =
  match item.T.str_desc with
  | T.Tstr_value (_, vbs) ->
    List.iter
      (fun vb ->
        match vb_name vb with
        | Some (_, name) -> (
          let key = prefix ^ "." ^ name in
          match Lift.lift_binding ~note ~env ~key vb with
          | Some body -> bodies := body :: !bodies
          | None -> ())
        | None -> ())
      vbs
  | T.Tstr_module mb -> collect_module env prefix mb
  | T.Tstr_recmodule mbs -> List.iter (collect_module env prefix) mbs
  | _ -> ()

and collect_module env prefix (mb : T.module_binding) =
  match mb.T.mb_id with
  | None -> ()
  | Some id -> (
    let sub = prefix ^ "." ^ Ident.name id in
    let me = unwrap_module_expr mb.T.mb_expr in
    match me.T.mod_desc with
    | T.Tmod_structure str -> collect_structure env sub str
    | T.Tmod_functor _ ->
      let rec peel (me : T.module_expr) =
        match me.T.mod_desc with
        | T.Tmod_functor (_, body) -> peel (unwrap_module_expr body)
        | T.Tmod_structure str -> collect_structure env sub str
        | _ -> ()
      in
      peel me
    | _ -> ())

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ ->
    Printf.eprintf "rsmr_mirror: cannot read %s (skipped)\n" path
  | cmt -> (
    let modname = unit_display cmt.Cmt_format.cmt_modname in
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation _ when modname = "Codec" ->
      (* the combinator library itself defines the primitives; its
         bodies are the abstraction's ground truth, not codecs *)
      incr modules_loaded
    | Cmt_format.Implementation str ->
      incr modules_loaded;
      let env = fresh_env () in
      register_structure env modname str;
      collect_structure env modname str
    | _ -> ())

(* ------------------------------------------------------------- pairing *)

(* A body whose shape is nothing but same-sink delegation ([size],
   [encode] wrappers) adds no shape information of its own; it is
   checked if it pairs, but never demanded to. *)
let pure_delegation (b : Lift.body) =
  List.for_all (function Shape.Call _ -> true | _ -> false) b.Lift.b_items

let assemble_pairs ws rs =
  let paired : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let pairs = ref [] in
  let add (w : Lift.body) (r : Lift.body) =
    Hashtbl.replace paired w.Lift.b_key r.Lift.b_key;
    pairs := (w, r) :: !pairs
  in
  (* explicit [@@rsmr.codec "Name"] groups first *)
  let named side =
    List.filter_map
      (fun (b : Lift.body) ->
        match b.Lift.b_codec_name with
        | Some n -> Some (n, b)
        | None -> None)
      side
  in
  let wnamed = named ws and rnamed = named rs in
  List.iter
    (fun (n, (w : Lift.body)) ->
      match List.filter (fun (n', _) -> n' = n) rnamed with
      | [ (_, r) ] -> add w r
      | [] ->
        note
          (Shape.finding ~rule:"mirror-unpaired" w.Lift.b_loc
             (Printf.sprintf
                "encoder %s is tagged [@@rsmr.codec %S] but no reader \
                 body carries that tag"
                w.Lift.b_key n)
             ())
      | _ :: _ :: _ ->
        note
          (Shape.finding ~rule:"mirror-unpaired" w.Lift.b_loc
             (Printf.sprintf
                "[@@rsmr.codec %S] tags more than one reader body" n)
             ()))
    wnamed;
  List.iter
    (fun (n, (r : Lift.body)) ->
      if not (List.exists (fun (n', _) -> n' = n) wnamed) then
        note
          (Shape.finding ~rule:"mirror-unpaired" r.Lift.b_loc
             (Printf.sprintf
                "decoder %s is tagged [@@rsmr.codec %S] but no writer \
                 body carries that tag"
                r.Lift.b_key n)
             ()))
    rnamed;
  (* then naming conventions *)
  List.iter
    (fun (w : Lift.body) ->
      if w.Lift.b_codec_name = None && not (Hashtbl.mem paired w.Lift.b_key)
      then
        let prefix, name = Pairing.split_key w.Lift.b_key in
        match Pairing.reader_name name with
        | None -> ()
        | Some rname -> (
          let rkey =
            if prefix = "" then rname else prefix ^ "." ^ rname
          in
          match
            List.find_opt (fun (r : Lift.body) -> r.Lift.b_key = rkey) rs
          with
          | Some r when r.Lift.b_codec_name = None -> add w r
          | _ -> ()))
    ws;
  !pairs

(* ---------------------------------------------------------- rendering *)

let diag_of_finding cfg (f : Shape.finding) =
  let rule = f.Shape.f_rule in
  let sev = Lint_config.severity cfg rule in
  let file, line, col = loc_pos f.Shape.f_loc in
  if sev = Diag.Off then None
  else if Lint_config.exempt cfg rule file then None
  else if
    match f.Shape.f_alt_file with
    | Some alt -> Lint_config.exempt cfg rule alt
    | None -> false
  then None
  else
    Some
      {
        Diag.file;
        line;
        col;
        rule;
        sev;
        msg = f.Shape.f_msg;
        chain = f.Shape.f_chain;
      }

(* ------------------------------------------------------------------ main *)

let usage =
  "usage: rsmr_mirror [--config FILE] [--format text|json] [--min-pairs N] \
   DIR-or-CMT..."

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let config_file = ref None in
  let format = ref Diag.Text in
  let min_pairs = ref 0 in
  let inputs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: f :: rest ->
      config_file := Some f;
      parse_args rest
    | "--min-pairs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
        min_pairs := n;
        parse_args rest
      | Some _ | None ->
        Printf.eprintf "rsmr_mirror: --min-pairs expects a count, got %S\n%s\n"
          n usage;
        exit 2)
    | "--format" :: f :: rest -> (
      match Diag.format_of_string f with
      | Some f ->
        format := f;
        parse_args rest
      | None ->
        Printf.eprintf "rsmr_mirror: unknown format %S\n%s\n" f usage;
        exit 2)
    | d :: rest when not (starts_with "--" d) ->
      inputs := d :: !inputs;
      parse_args rest
    | arg :: _ ->
      Printf.eprintf "rsmr_mirror: unknown argument %S\n%s\n" arg usage;
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !inputs = [] then begin
    Printf.eprintf "%s\n" usage;
    exit 2
  end;
  let cfg =
    match !config_file with
    | Some f -> Lint_config.parse f
    | None -> Lint_config.default ()
  in
  let files =
    List.concat_map (fun d -> List.rev (walk d [])) (List.rev !inputs)
  in
  List.iter register_wrapper_of_filename files;
  List.iter load_cmt files;
  let all =
    List.sort
      (fun (a : Lift.body) b -> String.compare a.Lift.b_key b.Lift.b_key)
      !bodies
  in
  let ws = List.filter (fun b -> b.Lift.b_writer && not b.Lift.b_reader) all
  and rs = List.filter (fun b -> b.Lift.b_reader && not b.Lift.b_writer) all
  and mixed =
    List.filter (fun b -> b.Lift.b_writer && b.Lift.b_reader) all
  in
  if Sys.getenv_opt "RSMR_MIRROR_DEBUG" <> None then
    List.iter
      (fun (b : Lift.body) ->
        Printf.eprintf "%s [%s%s] %s\n" b.Lift.b_key
          (if b.Lift.b_writer then "W" else "")
          (if b.Lift.b_reader then "R" else "")
          (Shape.render (Shape.normalize b.Lift.b_items)))
      all;
  List.iter
    (fun (b : Lift.body) ->
      note
        (Shape.finding ~rule:"mirror-unpaired" b.Lift.b_loc
           (Printf.sprintf
              "%s touches both a writer and a reader sink; it cannot be \
               paired"
              b.Lift.b_key)
           ()))
    mixed;
  let pairs = assemble_pairs ws rs in
  let pair_tbl : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((w : Lift.body), (r : Lift.body)) ->
      Hashtbl.replace pair_tbl (w.Lift.b_key ^ "\x00" ^ r.Lift.b_key) ())
    pairs;
  let pairs_ok a b =
    Hashtbl.mem pair_tbl (a ^ "\x00" ^ b)
    || Hashtbl.mem pair_tbl (b ^ "\x00" ^ a)
    || Pairing.conventional a b
    || Pairing.conventional b a
  in
  let in_pair : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((w : Lift.body), (r : Lift.body)) ->
      Hashtbl.replace in_pair w.Lift.b_key ();
      Hashtbl.replace in_pair r.Lift.b_key ())
    pairs;
  List.iter
    (fun (b : Lift.body) ->
      if
        (not (Hashtbl.mem in_pair b.Lift.b_key))
        && (not b.Lift.b_oneway)
        && not (pure_delegation b)
      then
        note
          (Shape.finding ~rule:"mirror-unpaired" b.Lift.b_loc
             (Printf.sprintf
                "%s %s has no %s counterpart (pair by naming convention \
                 or [@@rsmr.codec], or mark [@@rsmr.codec.oneway])"
                (if b.Lift.b_writer then "encoder" else "decoder")
                b.Lift.b_key
                (if b.Lift.b_writer then "decoder" else "encoder"))
             ()))
    (ws @ rs);
  List.iter
    (fun (w, r) -> Check.check_pair ~note ~pairs_ok ~writer:w ~reader:r)
    pairs;
  List.iter (fun r -> Check.check_reader_defaults ~note r) rs;
  let ds =
    List.filter_map (diag_of_finding cfg) !findings |> List.sort Diag.compare
  in
  let errors = Diag.errors ds in
  let warns = Diag.warnings ds in
  let summary =
    Printf.sprintf
      "rsmr-mirror: %d module(s) loaded, %d codec body(ies) (%d writer(s), \
       %d reader(s)), %d pair(s) checked, %d error(s), %d warning(s)"
      !modules_loaded (List.length all) (List.length ws) (List.length rs)
      (List.length pairs) errors warns
  in
  Diag.print ~format:!format ~tool:"rsmr-mirror" ds ~summary;
  (* Coverage floor: a refactor that silently drops codec bodies out of
     the analysis (renamed sink, lost attribute) would otherwise pass
     with a shrunken, vacuous pair set. *)
  if List.length pairs < !min_pairs then begin
    Printf.eprintf
      "rsmr-mirror: only %d pair(s) assembled, expected at least %d — did a \
       codec fall out of the analysis?\n"
      (List.length pairs) !min_pairs;
    exit 1
  end;
  exit (if errors > 0 then 1 else 0)
