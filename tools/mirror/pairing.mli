(** Write/read pairing by naming convention.

    Codec halves pair when they live under the same module prefix and
    their last segments are related by one of:

    - [write] / [read]
    - [encode] / [decode]
    - [write_X] / [read_X]
    - [encode_X] / [decode_X]
    - [snapshot] / [restore]

    Bodies the conventions cannot reach carry an explicit
    [[@@rsmr.codec "Name"]] attribute instead (both halves, same name),
    and canonical one-way encoders (fingerprints) opt out with
    [[@@rsmr.codec.oneway]]. *)

val split_key : string -> string * string
(** ["Wire.write"] → [("Wire", "write")]; a bare name gets prefix
    [""]. *)

val reader_name : string -> string option
(** The decoder name an encoder name pairs with, by convention:
    [reader_name "encode_entry" = Some "decode_entry"];
    [None] when no convention applies. *)

val conventional : string -> string -> bool
(** [conventional wkey rkey]: same prefix, and the last segments are a
    conventional pair. *)
