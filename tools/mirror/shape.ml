type prim = U8 | Varint | Zigzag | Bool | Float

type t =
  | Prim of prim
  | Const of int
  | Framed of string option
  | Opt of t list
  | Rep of t list
  | Loop of t list
  | Call of string
  | Branch of t list list
  | Switch of switch
  | Opaque of string

and switch = {
  sw_tag : prim option;
  sw_cases : case list;
  sw_default : default;
}

and case = { c_tag : int option; c_label : string; c_items : t list }
and default = No_default | Truncates | Default_other of string

type finding = {
  f_rule : string;
  f_loc : Location.t;
  f_alt_file : string option;
  f_msg : string;
  f_chain : string list;
}

let finding ?alt_file ~rule loc msg ?(chain = []) () =
  { f_rule = rule; f_loc = loc; f_alt_file = alt_file; f_msg = msg;
    f_chain = chain }

let prim_name = function
  | U8 -> "u8"
  | Varint -> "varint"
  | Zigzag -> "zigzag"
  | Bool -> "bool"
  | Float -> "float"

let rec to_string = function
  | Prim p -> prim_name p
  | Const n -> Printf.sprintf "u8 %d" n
  | Framed None -> "bytes"
  | Framed (Some k) -> Printf.sprintf "bytes<%s>" k
  | Opt sub -> Printf.sprintf "option(%s)" (render sub)
  | Rep sub -> Printf.sprintf "list(%s)" (render sub)
  | Loop sub -> Printf.sprintf "loop(%s)" (render sub)
  | Call k -> Printf.sprintf "call(%s)" k
  | Branch alts ->
    Printf.sprintf "branch(%s)" (String.concat " | " (List.map render alts))
  | Switch sw ->
    Printf.sprintf "switch{%s}"
      (String.concat ","
         (List.map
            (fun c ->
              match c.c_tag with
              | Some n -> string_of_int n
              | None -> c.c_label)
            sw.sw_cases))
  | Opaque what -> Printf.sprintf "opaque:%s" what

and render = function
  | [] -> "\xce\xb5" (* ε *)
  | items -> String.concat " \xc2\xb7 " (List.map to_string items)

let int_cases cases =
  cases <> [] && List.for_all (fun c -> c.c_tag <> None) cases

(* [let tag = R.u8 r in match tag with ...] lifts to a [Prim] followed
   by a tagless int switch; fuse them so the idiom compares equal to
   [match R.u8 r with ...]. *)
let rec fuse_tag = function
  | Prim p :: Switch ({ sw_tag = None; sw_cases; _ } as sw) :: rest
    when int_cases sw_cases ->
    Switch { sw with sw_tag = Some p } :: fuse_tag rest
  | x :: rest -> x :: fuse_tag rest
  | [] -> []

let rec normalize items = fuse_tag (List.concat_map norm1 items)

and norm1 = function
  | Rep sub -> [ Prim Varint; Loop (norm_loop sub) ]
  | Opt sub -> [ Opt (normalize sub) ]
  | Loop sub -> [ Loop (norm_loop sub) ]
  | Branch alts -> (
    match List.map normalize alts with
    | [] -> []
    | a :: rest when List.for_all (fun b -> b = a) rest -> a
    | alts -> [ Branch alts ])
  | Switch
      {
        sw_tag = None;
        sw_cases = [ ({ c_tag = None; _ } as c) ];
        sw_default = No_default;
      }
    when (match normalize c.c_items with Const _ :: _ -> false | _ -> true)
    ->
    (* single-constructor dispatch carries no information on the wire —
       unless the case still writes a tag byte, which must stay a
       switch for tag-set checking *)
    normalize c.c_items
  | Switch sw ->
    [
      Switch
        {
          sw with
          sw_cases =
            List.map
              (fun c -> { c with c_items = normalize c.c_items })
              sw.sw_cases;
        };
    ]
  | x -> [ x ]

(* A [let rec] decode loop lifts to [Branch [stop; step]] with the stop
   arm empty; inside the enclosing Loop only the live arm carries
   bytes-per-iteration, so keep just that. *)
and norm_loop sub =
  match normalize sub with
  | [ Branch alts ] -> (
    match List.filter (fun a -> a <> []) alts with
    | [ live ] -> live
    | _ -> [ Branch alts ])
  | items -> items
