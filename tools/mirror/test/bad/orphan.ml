(* An encoder with no decoder counterpart and no
   [@@rsmr.codec.oneway] opt-out. *)

module W = Rsmr_app.Codec.Writer

let write_event w (n : int) = W.varint w n
