(* Mutation fixture: the decoder dropped the dispatch arm for tag 2, so
   every [C _] value encodes fine and then fails to decode. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t = A | B of int | C of string

let write w = function
  | A -> W.u8 w 0
  | B n ->
    W.u8 w 1;
    W.zigzag w n
  | C s ->
    W.u8 w 2;
    W.string w s

let read r =
  match R.u8 r with
  | 0 -> A
  | 1 -> B (R.zigzag r)
  | _ -> raise Rsmr_app.Codec.Truncated
