(* Decoder default-branch fixtures: unknown tags must raise
   [Codec.Truncated], not [Failure] (read) and not [Match_failure]
   (read_partial — its dispatch has no wildcard at all; the library is
   compiled with -w -8 to let that through). *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t = P | Q

let write w = function
  | P -> W.u8 w 0
  | Q -> W.u8 w 1

let read r =
  match R.u8 r with
  | 0 -> P
  | 1 -> Q
  | n -> failwith (Printf.sprintf "bad tag %d" n)

let write_partial w = function
  | P -> W.u8 w 0
  | Q -> W.u8 w 1

let read_partial r =
  match R.u8 r with
  | 0 -> P
  | 1 -> Q
