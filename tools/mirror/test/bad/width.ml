(* Width bug: deltas are signed, the encoder zigzags them, but the
   decoder reads a plain varint — negative deltas decode as garbage. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

let encode_delta w (d : int) = W.zigzag w d
let decode_delta r = R.varint r
