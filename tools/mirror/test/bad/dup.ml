(* Copy-paste bug: both constructors encode under tag 0, so [Y 5]
   decodes as [X 5] and tag 1 is dead dispatch. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t = X of int | Y of int

let write w = function
  | X n ->
    W.u8 w 0;
    W.varint w n
  | Y n ->
    W.u8 w 0;
    W.varint w n

let read r =
  match R.u8 r with
  | 0 -> X (R.varint r)
  | 1 -> Y (R.varint r)
  | _ -> raise Rsmr_app.Codec.Truncated
