(* Two effectful reads in record-literal sibling positions: OCaml does
   not specify their evaluation order, so the wire layout this decoder
   implements is formally unspecified even though both fields are the
   same width. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type pair = { a : int; b : int }

let write_pair w p =
  W.varint w p.a;
  W.varint w p.b

let read_pair r = { a = R.varint r; b = R.varint r }
