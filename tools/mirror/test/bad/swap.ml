(* Mutation fixture: the decoder reads the two fields in the opposite
   order from the encoder.  Round-trips "work" whenever both fields
   happen to hold small non-negative values, so value-based tests can
   miss it; the shapes (varint·zigzag vs zigzag·varint) cannot. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t = { round : int; node : int }

let write w t =
  W.varint w t.round;
  W.zigzag w t.node

let read r =
  let node = R.zigzag r in
  let round = R.varint r in
  { round; node }
