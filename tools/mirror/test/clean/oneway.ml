(* A canonical fingerprint-style encoder: nothing ever decodes it, so
   it opts out of pairing with [@@rsmr.codec.oneway]. *)

module W = Rsmr_app.Codec.Writer

let checksum (t : int list) =
  let w = W.create () in
  W.varint w (List.length t);
  List.iter (fun x -> W.varint w x) t;
  W.contents w
[@@rsmr.codec.oneway]
