(* A symmetric tagged codec exercising every combinator the lift
   models: constant tags, list/option combinators, and the pure
   delegation wrappers ([encode]/[decode]/[size]) that ride on
   [write]/[read]. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t = Ping | Payload of string list | Gap of int option

let write w = function
  | Ping -> W.u8 w 0
  | Payload ss ->
    W.u8 w 1;
    W.list w W.string ss
  | Gap d ->
    W.u8 w 2;
    W.option w W.zigzag d

let read r =
  match R.u8 r with
  | 0 -> Ping
  | 1 -> Payload (R.list r R.string)
  | 2 -> Gap (R.option r R.zigzag)
  | _ -> raise Rsmr_app.Codec.Truncated

let encode t =
  let w = W.create () in
  write w t;
  W.contents w

let decode s = read (R.of_string s)

let size t =
  let c = W.counter () in
  write c t;
  W.written c
