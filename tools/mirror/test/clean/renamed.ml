(* Halves whose names no convention relates, paired explicitly with
   [@@rsmr.codec "record"] on both bindings. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

let emit w (n : int) =
  W.varint w n;
  W.bool w (n > 0)
[@@rsmr.codec "record"]

let parse r =
  let n = R.varint r in
  let _pos = R.bool r in
  n
[@@rsmr.codec "record"]
