(* The zero-copy equivalences: [Writer.nested write_item] must compare
   equal to [read_item (Reader.view r)], and a manual count-plus-[let
   rec] decode loop must compare equal to the encoder's
   count-plus-[List.iter]. *)

module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type item = { k : int; v : string }

let write_item w i =
  W.varint w i.k;
  W.string w i.v

let read_item r =
  let k = R.varint r in
  let v = R.string r in
  { k; v }

let write w (t : item list) =
  W.varint w (List.length t);
  List.iter (fun i -> W.nested w write_item i) t

let read r =
  let n = R.varint r in
  let rec go acc i =
    if i = n then List.rev acc else go (read_item (R.view r) :: acc) (i + 1)
  in
  go [] 0
