module S = Shape

type ctx = {
  note : S.finding -> unit;
  pairs_ok : string -> string -> bool;
  wkey : string;
  rkey : string;
  wloc : Location.t;
  rloc : Location.t;
  wfile : string;
  rfile : string;
}

(* Witness chains are accumulated innermost-first; reverse on report so
   they read outside-in ("tag 3 (Heartbeat)" then "item 2"). *)
let mism ctx path msg =
  ctx.note
    (S.finding ~alt_file:ctx.rfile ~rule:"mirror-shape" ctx.wloc
       (Printf.sprintf "%s / %s: %s" ctx.wkey ctx.rkey msg)
       ~chain:(List.rev path) ())

let tag_note ctx ~reader path msg =
  let loc, alt = if reader then (ctx.rloc, ctx.wfile) else (ctx.wloc, ctx.rfile) in
  ctx.note
    (S.finding ~alt_file:alt ~rule:"mirror-tag" loc
       (Printf.sprintf "%s / %s: %s" ctx.wkey ctx.rkey msg)
       ~chain:(List.rev path) ())

(* ---------- writer-side preparation -------------------------------- *)

(* A writer constructor dispatch emits its tag as a leading literal byte
   per case; pull it out into [c_tag] so the tag sets can be compared
   against the decoder's dispatch. *)
let rec assign_tags items = List.map assign1 items

and assign1 = function
  | S.Switch ({ sw_tag = None; sw_cases; _ } as sw)
    when List.for_all (fun c -> c.S.c_tag = None) sw_cases ->
    let cases =
      List.map
        (fun c ->
          match assign_tags c.S.c_items with
          | S.Const n :: rest -> { c with S.c_tag = Some n; c_items = rest }
          | items -> { c with S.c_items = items })
        sw_cases
    in
    S.Switch { sw with sw_cases = cases }
  | S.Switch sw ->
    S.Switch
      {
        sw with
        sw_cases =
          List.map
            (fun c -> { c with S.c_items = assign_tags c.S.c_items })
            sw.S.sw_cases;
      }
  | S.Opt sub -> S.Opt (assign_tags sub)
  | S.Rep sub -> S.Rep (assign_tags sub)
  | S.Loop sub -> S.Loop (assign_tags sub)
  | S.Branch alts -> S.Branch (List.map assign_tags alts)
  | x -> x

(* ---------- comparison --------------------------------------------- *)

let rec compare_items ctx path i ws rs =
  match (ws, rs) with
  | [], [] -> ()
  | [], r :: _ ->
    mism ctx
      (Printf.sprintf "item %d" i :: path)
      (Printf.sprintf
         "the encoder is done but the decoder still reads %s"
         (S.to_string r))
  | w :: _, [] ->
    mism ctx
      (Printf.sprintf "item %d" i :: path)
      (Printf.sprintf
         "the decoder is done but the encoder still writes %s"
         (S.to_string w))
  | w :: ws', r :: rs' ->
    if compare_item ctx (Printf.sprintf "item %d" i :: path) w r then
      compare_items ctx path (i + 1) ws' rs'
      (* stop at the first divergence per level: shortest witness *)

and compare_item ctx path w r =
  let leaf_mism () =
    mism ctx path
      (Printf.sprintf "write = %s, read = %s" (S.to_string w)
         (S.to_string r));
    false
  in
  match (w, r) with
  | S.Opaque _, _ | _, S.Opaque _ -> true
  | S.Prim a, S.Prim b -> if a = b then true else leaf_mism ()
  | S.Const _, S.Prim S.U8 | S.Prim S.U8, S.Const _ -> true
  | S.Const a, S.Const b -> if a = b then true else leaf_mism ()
  | S.Framed a, S.Framed b -> (
    match (a, b) with
    | None, _ | _, None -> true
    | Some x, Some y ->
      if x = y || ctx.pairs_ok x y then true else leaf_mism ())
  | S.Call a, S.Call b ->
    if a = b || ctx.pairs_ok a b then true else leaf_mism ()
  | S.Opt a, S.Opt b ->
    compare_items ctx ("option body" :: path) 1 a b;
    true
  | S.Loop a, S.Loop b ->
    compare_items ctx ("per-iteration body" :: path) 1 a b;
    true
  | S.Branch a, S.Branch b ->
    if List.length a <> List.length b then leaf_mism ()
    else begin
      List.iteri
        (fun k (x, y) ->
          compare_items ctx
            (Printf.sprintf "branch %d" (k + 1) :: path)
            1 x y)
        (List.combine a b);
      true
    end
  | S.Switch sw, S.Switch sr -> compare_switch ctx path sw sr
  | _ -> leaf_mism ()

and compare_switch ctx path (w : S.switch) (r : S.switch) =
  match r.S.sw_tag with
  | None ->
    (* constructor dispatch on both sides (no tag byte): positional *)
    if
      w.S.sw_tag = None
      && List.length w.S.sw_cases = List.length r.S.sw_cases
      && List.for_all (fun c -> c.S.c_tag = None) w.S.sw_cases
      && List.for_all (fun c -> c.S.c_tag = None) r.S.sw_cases
    then begin
      List.iter2
        (fun wc rc ->
          compare_items ctx
            (Printf.sprintf "case %s" wc.S.c_label :: path)
            1 wc.S.c_items rc.S.c_items)
        w.S.sw_cases r.S.sw_cases;
      true
    end
    else begin
      mism ctx path
        (Printf.sprintf
           "dispatch structure differs: write = %s, read = %s"
           (S.to_string (S.Switch w))
           (S.to_string (S.Switch r)));
      false
    end
  | Some rp ->
    (* tag-byte dispatch.  Tag values below 128 encode identically as u8
       and varint, which covers every tag this abstraction can extract
       (u8 literals), so either dispatch width is accepted. *)
    if rp <> S.U8 && rp <> S.Varint then begin
      mism ctx path
        (Printf.sprintf "decoder dispatches on %s, not a tag byte"
           (S.prim_name rp));
      false
    end
    else begin
      (match w.S.sw_tag with
       | Some wp when wp <> rp && wp <> S.U8 && wp <> S.Varint ->
         mism ctx path
           (Printf.sprintf "tag written as %s but dispatched as %s"
              (S.prim_name wp) (S.prim_name rp))
       | _ -> ());
      List.iter
        (fun c ->
          if c.S.c_tag = None then
            tag_note ctx ~reader:false path
              (Printf.sprintf
                 "encoder case %s writes no leading literal tag byte"
                 c.S.c_label))
        w.S.sw_cases;
      let wtags =
        List.filter_map
          (fun c ->
            match c.S.c_tag with Some n -> Some (n, c) | None -> None)
          w.S.sw_cases
      and rtags =
        List.filter_map
          (fun c ->
            match c.S.c_tag with Some n -> Some (n, c) | None -> None)
          r.S.sw_cases
      in
      let dups side ~reader tags =
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (n, (c : S.case)) ->
            match Hashtbl.find_opt seen n with
            | Some first ->
              tag_note ctx ~reader path
                (Printf.sprintf "%s emits tag %d for both %s and %s" side
                   n first c.S.c_label)
            | None -> Hashtbl.replace seen n c.S.c_label)
          tags
      in
      dups "encoder" ~reader:false wtags;
      dups "decoder" ~reader:true rtags;
      List.iter
        (fun (n, (c : S.case)) ->
          if not (List.mem_assoc n rtags) then
            tag_note ctx ~reader:false path
              (Printf.sprintf
                 "encoder writes tag %d (%s) but the decoder never \
                  dispatches it"
                 n c.S.c_label))
        wtags;
      List.iter
        (fun (n, _) ->
          if not (List.mem_assoc n wtags) then
            tag_note ctx ~reader:true path
              (Printf.sprintf
                 "decoder dispatches tag %d but the encoder never writes \
                  it"
                 n))
        rtags;
      List.iter
        (fun (n, (wc : S.case)) ->
          match List.assoc_opt n rtags with
          | Some rc ->
            compare_items ctx
              (Printf.sprintf "tag %d (%s)" n wc.S.c_label :: path)
              1 wc.S.c_items rc.S.c_items
          | None -> ())
        wtags;
      true
    end

(* ---------- entry points ------------------------------------------- *)

let check_pair ~note ~pairs_ok ~(writer : Lift.body) ~(reader : Lift.body) =
  let file loc = let f, _, _ = Rsmr_tt.Tt.loc_pos loc in f in
  let ctx =
    {
      note;
      pairs_ok;
      wkey = writer.Lift.b_key;
      rkey = reader.Lift.b_key;
      wloc = writer.Lift.b_loc;
      rloc = reader.Lift.b_loc;
      wfile = file writer.Lift.b_loc;
      rfile = file reader.Lift.b_loc;
    }
  in
  let wn = assign_tags (S.normalize writer.Lift.b_items) in
  let rn = S.normalize reader.Lift.b_items in
  compare_items ctx [] 1 wn rn

let check_reader_defaults ~note (body : Lift.body) =
  let bad msg = function
    | S.No_default ->
      Some (Printf.sprintf "%s has no default branch; an unknown tag %s" body.Lift.b_key msg)
    | S.Default_other what ->
      Some
        (Printf.sprintf "%s's default branch %s instead of raising Codec.Truncated"
           body.Lift.b_key what)
    | S.Truncates -> None
  in
  let rec scan = function
    | S.Switch sw ->
      (match sw.S.sw_tag with
       | Some _ -> (
         match
           bad "crashes with Match_failure instead of Codec.Truncated"
             sw.S.sw_default
         with
         | Some msg ->
           note
             (S.finding ~rule:"mirror-default" body.Lift.b_loc msg ())
         | None -> ())
       | None -> ());
      List.iter (fun c -> List.iter scan c.S.c_items) sw.S.sw_cases
    | S.Opt sub | S.Rep sub | S.Loop sub -> List.iter scan sub
    | S.Branch alts -> List.iter (List.iter scan) alts
    | _ -> ()
  in
  List.iter scan (S.normalize body.Lift.b_items)
