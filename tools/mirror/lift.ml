(* Lift a typedtree codec body into its symbolic byte shape.

   The abstraction tracks only what touches a sink ([Codec.Writer.t] /
   [Codec.Reader.t], recognized by type): primitive calls become width
   items, combinators become [Opt]/[Rep], manual iteration becomes
   [Loop], passing a sink to another resolved codec body becomes [Call],
   and tag dispatch becomes [Switch].  Everything value-level (arithmetic,
   constructors, map rebuilding) lifts to nothing.  Constructs the
   abstraction cannot see through lift to [Opaque] and are reported as
   [mirror-opaque] so the soundness gap is visible rather than silent. *)

module T = Typedtree
module Tt = Rsmr_tt.Tt

type body = {
  b_key : string;
  b_loc : Location.t;
  b_items : Shape.t list;
  b_writer : bool;
  b_reader : bool;
  b_codec_name : string option;
  b_oneway : bool;
}

type local_fn = {
  lf_expr : T.expression;  (** the function expression (lambda) *)
  lf_rec : bool;
  mutable lf_busy : bool;  (** currently being lifted (recursion guard) *)
  mutable lf_items : Shape.t list option;  (** memo *)
}

type state = {
  env : Tt.env;
  note : Shape.finding -> unit;
  locals : (string, local_fn) Hashtbl.t;  (** Ident.unique_name → fn *)
  mutable used_writer : bool;
  mutable used_reader : bool;
}

(* ---------- classification ---------------------------------------- *)

type role = Writer_sink | Reader_sink

(* Sink types usually surface through module aliases ([module W =
   Rsmr_app.Codec.Writer] makes the inferred type path "W.t"), so the
   path must be resolved through the same environment as value paths
   before suffix-matching. *)
let rec sink_role_of_type env ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) ->
    let name =
      match Tt.resolve_value env path with
      | Some resolved -> resolved
      | None -> Path.name path
    in
    if Tt.ends_with_component ~suffix:"Codec.Writer.t" name then
      Some Writer_sink
    else if Tt.ends_with_component ~suffix:"Codec.Reader.t" name then
      Some Reader_sink
    else None
  | Types.Tpoly (ty, _) -> sink_role_of_type env ty
  | _ -> None

let is_sink env e = sink_role_of_type env e.T.exp_type <> None

let is_arrow_type ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let writer_prims =
  [ "u8"; "varint"; "zigzag"; "bool"; "float"; "string"; "option"; "list";
    "nested"; "create"; "counter"; "written"; "contents"; "length" ]

let reader_prims =
  [ "u8"; "varint"; "zigzag"; "bool"; "float"; "string"; "view"; "option";
    "list"; "of_string"; "at_end" ]

let find_prim module_ prims key =
  List.find_opt
    (fun p -> Tt.ends_with_component ~suffix:(module_ ^ "." ^ p) key)
    prims

let writer_prim key = find_prim "Codec.Writer" writer_prims key
let reader_prim key = find_prim "Codec.Reader" reader_prims key

let prim_of_name = function
  | "u8" -> Some Shape.U8
  | "varint" -> Some Shape.Varint
  | "zigzag" -> Some Shape.Zigzag
  | "bool" -> Some Shape.Bool
  | "float" -> Some Shape.Float
  | _ -> None

(* Does [key] name a byte-moving primitive (as opposed to sink
   construction / bookkeeping)?  Used to decide whether an unliftable
   expression hides wire traffic. *)
let byte_prim key =
  match writer_prim key with
  | Some ("create" | "counter" | "written" | "contents" | "length") -> false
  | Some _ -> true
  | None -> (
    match reader_prim key with
    | Some ("of_string" | "at_end") -> false
    | Some _ -> true
    | None -> false)

let contains_byte_prim st (e : T.expression) =
  let found = ref false in
  let expr self (x : T.expression) =
    (match x.T.exp_desc with
     | T.Texp_ident (path, _, _) -> (
       match Tt.resolve_value st.env path with
       | Some key -> if byte_prim key then found := true
       | None -> ())
     | _ -> ());
    Tast_iterator.default_iterator.expr self x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it e;
  !found

(* [f (Reader.view r)]: the nested-frame read idiom. *)
let is_view_app st (a : T.expression) =
  match a.T.exp_desc with
  | T.Texp_apply ({ T.exp_desc = T.Texp_ident (path, _, _); _ }, _) -> (
    match Tt.resolve_value st.env path with
    | Some key -> reader_prim key = Some "view"
    | None -> false)
  | _ -> false

let exn_key st (cd : Types.constructor_description) =
  match cd.Types.cstr_tag with
  | Types.Cstr_extension (path, _) -> (
    match Tt.resolve_value st.env path with
    | Some key -> Some key
    | None -> (
      match path with
      | Path.Pident id -> Some (Ident.name id)
      | _ -> Some (Path.name path)))
  | _ -> None

let is_truncated_key key =
  key = "Truncated" || Tt.ends_with_component ~suffix:"Codec.Truncated" key

(* ---------- pattern kinds ------------------------------------------ *)

type pkind =
  | KInt of int  (** integer or char constant *)
  | KCtor of string
  | KDefault  (** wildcard or variable *)
  | KOther  (** tuples, records, guards on structure, ... *)

let rec pat_kinds : type k. k T.general_pattern -> pkind list =
 fun p ->
  match p.T.pat_desc with
  | T.Tpat_value v -> pat_kinds (v :> T.value T.general_pattern)
  | T.Tpat_exception _ -> [ KOther ]
  | T.Tpat_or (a, b, _) -> pat_kinds a @ pat_kinds b
  | T.Tpat_alias (q, _, _) -> pat_kinds q
  | T.Tpat_constant (Asttypes.Const_int n) -> [ KInt n ]
  | T.Tpat_constant (Asttypes.Const_char c) -> [ KInt (Char.code c) ]
  | T.Tpat_constant _ -> [ KOther ]
  | T.Tpat_any -> [ KDefault ]
  | T.Tpat_var _ -> [ KDefault ]
  | T.Tpat_construct (_, cd, _, _) -> [ KCtor cd.Types.cstr_name ]
  | _ -> [ KOther ]

(* Case info with the pattern's existential type eliminated, so writer
   (value cases) and reader (computation cases) share one builder. *)
type case_info = {
  ci_kinds : pkind list;
  ci_guarded : bool;
  ci_rhs : T.expression;
}

let case_info (c : _ T.case) =
  {
    ci_kinds = pat_kinds c.T.c_lhs;
    ci_guarded = c.T.c_guard <> None;
    ci_rhs = c.T.c_rhs;
  }

(* ---------- lifting ------------------------------------------------ *)

let rec lift st (e : T.expression) : Shape.t list =
  match e.T.exp_desc with
  | T.Texp_ident _ | T.Texp_constant _ | T.Texp_unreachable -> []
  | T.Texp_let (rf, vbs, body) ->
    let pre = List.concat_map (lift_let_binding st rf vbs) vbs in
    pre @ lift st body
  | T.Texp_letmodule (id, _, _, me, body) ->
    Tt.register_letmodule st.env id me;
    lift st body
  | T.Texp_letexception (_, body) -> lift st body
  | T.Texp_sequence (a, b) -> lift st a @ lift st b
  | T.Texp_open (_, body) -> lift st body
  | T.Texp_apply (fn, args) -> lift_apply st e.T.exp_loc fn args
  | T.Texp_match (scrut, cases, partial) ->
    let scrut_items = lift st scrut in
    build_match st ~loc:e.T.exp_loc ~scrut_items
      (List.map case_info cases)
      partial
  | T.Texp_function _ ->
    (* a lambda in value position: its body only runs if applied later,
       which the lift cannot follow *)
    if contains_byte_prim st e then begin
      st.note
        (Shape.finding ~rule:"mirror-opaque" e.T.exp_loc
           "codec primitives inside a lambda in value position; the \
            shape of this body cannot be determined"
           ());
      [ Shape.Opaque "lambda" ]
    end
    else []
  | T.Texp_ifthenelse (cond, then_, else_) ->
    let ci = lift st cond in
    let alts =
      [ lift st then_;
        (match else_ with Some e -> lift st e | None -> []) ]
    in
    if List.for_all (fun a -> a = []) alts then ci
    else ci @ [ Shape.Branch alts ]
  | T.Texp_construct (_, _, args) | T.Texp_tuple args | T.Texp_array args ->
    siblings st e.T.exp_loc (List.map (lift st) args)
  | T.Texp_variant (_, arg) -> (
    match arg with Some a -> lift st a | None -> [])
  | T.Texp_record { fields; extended_expression; _ } ->
    let base =
      match extended_expression with Some b -> lift st b | None -> []
    in
    let parts =
      Array.to_list fields
      |> List.map (fun (_, def) ->
             match def with
             | T.Overridden (_, e) -> lift st e
             | T.Kept _ -> [])
    in
    base @ siblings st e.T.exp_loc parts
  | T.Texp_field (e, _, _) -> lift st e
  | T.Texp_setfield (a, _, _, b) -> lift st a @ lift st b
  | T.Texp_try (body, _) ->
    (* handlers run only on the exceptional path *)
    lift st body
  | T.Texp_while (cond, body) ->
    let ci = lift st cond and bi = lift st body in
    if bi = [] && ci = [] then []
    else [ Shape.Loop (ci @ bi) ]
  | T.Texp_for (_, _, lo, hi, _, body) ->
    let bounds = lift st lo @ lift st hi in
    let bi = lift st body in
    bounds @ (if bi = [] then [] else [ Shape.Loop bi ])
  | T.Texp_assert _ -> []
  | T.Texp_lazy body -> lift st body
  | _ ->
    if contains_byte_prim st e then begin
      st.note
        (Shape.finding ~rule:"mirror-opaque" e.T.exp_loc
           "codec primitives inside a construct the shape lift does not \
            model"
           ());
      [ Shape.Opaque "expression" ]
    end
    else []

and lift_let_binding st rf vbs (vb : T.value_binding) =
  match (Tt.vb_name vb, vb.T.vb_expr.T.exp_desc) with
  | Some (id, _), T.Texp_function _ ->
    (* a local helper: remember the lambda, lift on call.  Under
       [let rec], every sibling binding is visible from each body, so
       register before any body is lifted (done per binding here —
       callers only resolve at call time, so order of registration
       within the group does not matter). *)
    Hashtbl.replace st.locals (Ident.unique_name id)
      {
        lf_expr = vb.T.vb_expr;
        lf_rec = rf = Asttypes.Recursive;
        lf_busy = false;
        lf_items = None;
      };
    ignore vbs;
    []
  | _ -> lift st vb.T.vb_expr

and call_local st (lf : local_fn) =
  match lf.lf_items with
  | Some items -> items
  | None ->
    if lf.lf_busy then []
      (* recursive self-call: contributes nothing beyond the enclosing
         iteration, which the [Loop] wrapper below accounts for *)
    else begin
      lf.lf_busy <- true;
      let items = lift_fn_body st lf.lf_expr in
      lf.lf_busy <- false;
      let items =
        if lf.lf_rec && items <> [] then [ Shape.Loop items ] else items
      in
      lf.lf_items <- Some items;
      items
    end

(* Strip the leading single-parameter lambdas off a function expression
   and lift what remains.  A trailing multi-case [function] is an
   implicit match on the last parameter (constructor dispatch with no
   scrutinee bytes). *)
and lift_fn_body st (e : T.expression) =
  match e.T.exp_desc with
  | T.Texp_function { cases = [ c ]; _ } when c.T.c_guard = None ->
    lift_fn_body st c.T.c_rhs
  | T.Texp_function { cases; partial; _ } ->
    build_match st ~loc:e.T.exp_loc ~scrut_items:[]
      (List.map case_info cases)
      partial
  | _ -> lift st e

(* A function argument of a combinator ([Writer.option w FN v]): the
   shape its calls would produce per element. *)
and sub_fn_items st (fn : T.expression) =
  match fn.T.exp_desc with
  | T.Texp_function _ -> lift_fn_body st fn
  | T.Texp_ident (Path.Pident id, _, _)
    when Hashtbl.mem st.locals (Ident.unique_name id) ->
    call_local st (Hashtbl.find st.locals (Ident.unique_name id))
  | T.Texp_ident (path, _, _) -> (
    match Tt.resolve_value st.env path with
    | Some key -> (
      match writer_prim key with
      | Some p -> (
        st.used_writer <- true;
        match prim_of_name p with
        | Some prim -> [ Shape.Prim prim ]
        | None -> if p = "string" then [ Shape.Framed None ] else [])
      | None -> (
        match reader_prim key with
        | Some p -> (
          st.used_reader <- true;
          match prim_of_name p with
          | Some prim -> [ Shape.Prim prim ]
          | None ->
            if p = "string" then [ Shape.Framed None ]
            else if p = "view" then [ Shape.Framed None ]
            else [])
        | None -> [ Shape.Call key ]))
    | None ->
      st.note
        (Shape.finding ~rule:"mirror-opaque" fn.T.exp_loc
           "unresolvable element codec passed to a combinator" ());
      [ Shape.Opaque "element-codec" ])
  | _ ->
    st.note
      (Shape.finding ~rule:"mirror-opaque" fn.T.exp_loc
         "computed element codec passed to a combinator" ());
    [ Shape.Opaque "element-codec" ]

and lift_apply st loc (fn : T.expression) args =
  let argexprs = List.filter_map (fun (_, a) -> a) args in
  match fn.T.exp_desc with
  | T.Texp_ident (Path.Pident id, _, _)
    when Hashtbl.mem st.locals (Ident.unique_name id) ->
    (* local helper: argument effects first (they evaluate before the
       call), then the helper's own shape *)
    let pre = siblings st loc (List.map (lift st) argexprs) in
    pre @ call_local st (Hashtbl.find st.locals (Ident.unique_name id))
  | T.Texp_ident (path, _, _) -> (
    match Tt.resolve_value st.env path with
    | Some key -> (
      match writer_prim key with
      | Some p -> lift_writer_prim st loc p argexprs
      | None -> (
        match reader_prim key with
        | Some p -> lift_reader_prim st loc p argexprs
        | None -> lift_known_call st loc key argexprs))
    | None -> lift_unknown_call st loc fn argexprs)
  | _ ->
    (* computed function: lift it plus the arguments *)
    lift_unknown_call st loc fn argexprs

and lift_writer_prim st loc p argexprs =
  let item =
    match prim_of_name p with
    | Some prim -> (
      st.used_writer <- true;
      (* [u8 w 3]: a literal byte — the tag idiom *)
      match (prim, argexprs) with
      | ( Shape.U8,
          [ _; { T.exp_desc = T.Texp_constant (Asttypes.Const_int n); _ } ] )
        ->
        [ Shape.Const n ]
      | ( Shape.U8,
          [ _; { T.exp_desc = T.Texp_constant (Asttypes.Const_char c); _ } ]
        ) ->
        [ Shape.Const (Char.code c) ]
      | _ -> [ Shape.Prim prim ])
    | None -> (
      match p with
      | "string" ->
        st.used_writer <- true;
        [ Shape.Framed None ]
      | "option" | "list" ->
        st.used_writer <- true;
        let sub =
          match
            List.find_opt (fun a -> is_arrow_type a.T.exp_type) argexprs
          with
          | Some f -> sub_fn_items st f
          | None -> [ Shape.Opaque "element-codec" ]
        in
        if p = "option" then [ Shape.Opt sub ] else [ Shape.Rep sub ]
      | "nested" -> (
        st.used_writer <- true;
        match
          List.find_opt (fun a -> is_arrow_type a.T.exp_type) argexprs
        with
        | Some f -> (
          match sub_fn_items st f with
          | [ Shape.Call key ] -> [ Shape.Framed (Some key) ]
          | sub ->
            (* inline lambda or primitive body: an anonymous frame *)
            ignore sub;
            [ Shape.Framed None ])
        | None -> [ Shape.Framed None ])
      | _ -> (* create / counter / written / contents / length *) [])
  in
  (* value arguments evaluate before the primitive runs; only non-sink,
     non-function arguments can themselves move bytes *)
  let pre =
    List.concat_map
      (fun a ->
        if is_sink st.env a || is_arrow_type a.T.exp_type then [] else lift st a)
      argexprs
  in
  ignore loc;
  pre @ item

and lift_reader_prim st loc p argexprs =
  let item =
    match prim_of_name p with
    | Some prim ->
      st.used_reader <- true;
      [ Shape.Prim prim ]
    | None -> (
      match p with
      | "string" | "view" ->
        st.used_reader <- true;
        [ Shape.Framed None ]
      | "option" | "list" ->
        st.used_reader <- true;
        let sub =
          match
            List.find_opt (fun a -> is_arrow_type a.T.exp_type) argexprs
          with
          | Some f -> sub_fn_items st f
          | None -> [ Shape.Opaque "element-codec" ]
        in
        if p = "option" then [ Shape.Opt sub ] else [ Shape.Rep sub ]
      | _ -> (* of_string / at_end *) [])
  in
  let pre =
    List.concat_map
      (fun a ->
        if is_sink st.env a || is_arrow_type a.T.exp_type then [] else lift st a)
      argexprs
  in
  ignore loc;
  pre @ item

(* A call to a resolved non-primitive.  If a sink flows into it the
   callee continues this body's byte stream ([Call]); a sink wrapped in
   [Reader.view] is the nested-frame idiom ([Framed]).  Otherwise it is
   value-level and only its arguments matter. *)
and lift_known_call st loc key argexprs =
  if List.exists (is_view_app st) argexprs then begin
    st.used_reader <- true;
    let other =
      List.concat_map
        (fun a -> if is_view_app st a then [] else lift st a)
        argexprs
    in
    other @ [ Shape.Framed (Some key) ]
  end
  else
    match
      List.find_map (fun a -> sink_role_of_type st.env a.T.exp_type) argexprs
    with
    | Some role ->
      (match role with
       | Writer_sink -> st.used_writer <- true
       | Reader_sink -> st.used_reader <- true);
      let other =
        List.concat_map
          (fun a -> if is_sink st.env a then [] else lift st a)
          argexprs
      in
      other @ [ Shape.Call key ]
    | None -> lift_call_args st loc argexprs

(* Arguments of a value-level call.  A lambda (or local helper) argument
   that moves bytes is almost certainly an iteration callback
   ([Map.iter], [List.iter], [fold]), so wrap its shape in [Loop]. *)
and lift_call_args st loc argexprs =
  let parts =
    List.map
      (fun a ->
        match a.T.exp_desc with
        | T.Texp_function _ ->
          let items = lift_fn_body st a in
          if items = [] then [] else [ Shape.Loop items ]
        | T.Texp_ident (Path.Pident id, _, _)
          when Hashtbl.mem st.locals (Ident.unique_name id) ->
          let items =
            call_local st (Hashtbl.find st.locals (Ident.unique_name id))
          in
          if items = [] then [] else [ Shape.Loop items ]
        | _ -> lift st a)
      argexprs
  in
  siblings st loc parts

(* Unresolvable callee (member of an opaque module, functor parameter,
   computed).  A sink argument means unknown bytes. *)
and lift_unknown_call st loc fn argexprs =
  let sink_arg = List.exists (is_sink st.env) argexprs in
  if sink_arg then begin
    (match
       List.find_map (fun a -> sink_role_of_type st.env a.T.exp_type) argexprs
     with
    | Some Writer_sink -> st.used_writer <- true
    | Some Reader_sink -> st.used_reader <- true
    | None -> ());
    st.note
      (Shape.finding ~rule:"mirror-opaque" loc
         "a codec sink escapes to an unresolvable function" ());
    [ Shape.Opaque "sink-escape" ]
  end
  else
    let fn_items =
      match fn.T.exp_desc with T.Texp_ident _ -> [] | _ -> lift st fn
    in
    fn_items @ lift_call_args st loc argexprs

(* Two or more effectful codec operations in sibling positions (tuple
   components, constructor/record arguments, arguments of one call):
   OCaml does not specify their evaluation order, so the wire layout is
   formally unspecified even if the current compiler is consistent. *)
and siblings st loc parts =
  let effectful = List.length (List.filter (fun p -> p <> []) parts) in
  if effectful >= 2 then
    st.note
      (Shape.finding ~rule:"mirror-eval-order" loc
         (Printf.sprintf
            "%d effectful codec operations in sibling positions; their \
             evaluation order is unspecified"
            effectful)
         ());
  List.concat parts

and build_match st ~loc ~scrut_items (infos : case_info list) partial =
  if List.exists (fun ci -> ci.ci_guarded) infos then begin
    if List.exists (fun ci -> contains_byte_prim st ci.ci_rhs) infos then begin
      st.note
        (Shape.finding ~rule:"mirror-opaque" loc
           "codec primitives under a guarded match; guards are not \
            modeled"
           ());
      scrut_items @ [ Shape.Opaque "guarded-match" ]
    end
    else scrut_items
  end
  else
    let kinds = List.concat_map (fun ci -> ci.ci_kinds) infos in
    let is_int_dispatch =
      List.exists (function KInt _ -> true | _ -> false) kinds
      && List.for_all
           (function KInt _ | KDefault -> true | _ -> false)
           kinds
    and is_ctor_dispatch =
      List.exists (function KCtor _ -> true | _ -> false) kinds
      && List.for_all
           (function KCtor _ | KDefault -> true | _ -> false)
           kinds
    in
    if is_int_dispatch then begin
      let default = ref Shape.No_default in
      let cases =
        List.concat_map
          (fun ci ->
            let items = lift st ci.ci_rhs in
            List.filter_map
              (function
                | KInt n ->
                  Some
                    {
                      Shape.c_tag = Some n;
                      c_label = string_of_int n;
                      c_items = items;
                    }
                | KDefault ->
                  default := default_kind st ci.ci_rhs;
                  None
                | _ -> None)
              ci.ci_kinds)
          infos
      in
      ignore partial;
      let sw =
        Shape.Switch
          { sw_tag = None; sw_cases = cases; sw_default = !default }
      in
      (* when the scrutinee is exactly one primitive read, that read IS
         the dispatch byte: absorb it into the switch *)
      match scrut_items with
      | [ Shape.Prim p ] ->
        [ Shape.Switch
            { sw_tag = Some p; sw_cases = cases; sw_default = !default } ]
      | _ -> scrut_items @ [ sw ]
    end
    else if is_ctor_dispatch then begin
      let cases =
        List.concat_map
          (fun ci ->
            let items = lift st ci.ci_rhs in
            let labels =
              List.filter_map
                (function
                  | KCtor name -> Some name
                  | KDefault -> Some "_"
                  | _ -> None)
                ci.ci_kinds
            in
            match labels with
            | [] -> []
            | _ ->
              [ { Shape.c_tag = None;
                  c_label = String.concat "|" labels;
                  c_items = items;
                } ])
          infos
      in
      (* pure two-constructor dispatch with no bytes anywhere (bool
         tests and the like) is value-level *)
      if List.for_all (fun c -> c.Shape.c_items = []) cases then scrut_items
      else
        scrut_items
        @ [ Shape.Switch
              { sw_tag = None; sw_cases = cases; sw_default = No_default } ]
    end
    else
      let alts = List.map (fun ci -> lift st ci.ci_rhs) infos in
      if List.for_all (fun a -> a = []) alts then scrut_items
      else scrut_items @ [ Shape.Branch alts ]

(* What does the wildcard branch of a tag dispatch do?  Decoders must
   raise [Codec.Truncated] there. *)
and default_kind st (e : T.expression) =
  match e.T.exp_desc with
  | T.Texp_apply ({ T.exp_desc = T.Texp_ident (path, _, _); _ }, args) -> (
    let callee = Tt.resolve_value st.env path in
    match (callee, args) with
    | Some ("Stdlib.raise" | "Stdlib.raise_notrace"), [ (_, Some arg) ]
    | Some ("raise" | "raise_notrace"), [ (_, Some arg) ] -> (
      match arg.T.exp_desc with
      | T.Texp_construct (_, cd, _) -> (
        match exn_key st cd with
        | Some key when is_truncated_key key -> Shape.Truncates
        | Some key -> Shape.Default_other ("raises " ^ key)
        | None -> Shape.Default_other "raises an unresolved exception")
      | _ -> Shape.Default_other "raises a computed exception")
    | Some ("Stdlib.failwith" | "failwith"), _ ->
      Shape.Default_other "calls failwith"
    | Some ("Stdlib.invalid_arg" | "invalid_arg"), _ ->
      Shape.Default_other "calls invalid_arg"
    | _ -> Shape.Default_other "does not raise Codec.Truncated")
  | _ -> Shape.Default_other "does not raise Codec.Truncated"

(* ---------- entry point -------------------------------------------- *)

let lift_binding ~note ~env ~key (vb : T.value_binding) =
  let st =
    {
      env;
      note;
      locals = Hashtbl.create 8;
      used_writer = false;
      used_reader = false;
    }
  in
  let items = lift_fn_body st vb.T.vb_expr in
  if items = [] || not (st.used_writer || st.used_reader) then None
  else
    let codec_name =
      List.find_map
        (fun a ->
          if Tt.attr_name a = "rsmr.codec" then Tt.attr_string_payload a
          else None)
        vb.T.vb_attributes
    in
    Some
      {
        b_key = key;
        b_loc = vb.T.vb_loc;
        b_items = items;
        b_writer = st.used_writer;
        b_reader = st.used_reader;
        b_codec_name = codec_name;
        b_oneway = Tt.has_attr "rsmr.codec.oneway" vb.T.vb_attributes;
      }
