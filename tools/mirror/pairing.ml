let split_key key =
  match String.rindex_opt key '.' with
  | Some i ->
    ( String.sub key 0 i,
      String.sub key (i + 1) (String.length key - i - 1) )
  | None -> ("", key)

let drop n s = String.sub s n (String.length s - n)

let reader_name = function
  | "write" -> Some "read"
  | "encode" -> Some "decode"
  | "snapshot" -> Some "restore"
  | n when String.starts_with ~prefix:"write_" n ->
    Some ("read_" ^ drop 6 n)
  | n when String.starts_with ~prefix:"encode_" n ->
    Some ("decode_" ^ drop 7 n)
  | _ -> None

let conventional wkey rkey =
  let wp, wn = split_key wkey and rp, rn = split_key rkey in
  wp = rp && reader_name wn = Some rn
