(** Symbolic byte shapes.

    A shape is what a codec body does to the wire, abstracted from the
    values it moves: a sequence of width-tagged primitives, framed
    (length-prefixed) blobs, combinators, repetition, tag dispatch, and
    delegation to other codec bodies.  [Lift] produces one shape list
    per write/read body; [Check] compares paired shapes up to the
    zero-copy equivalences (string↔view, nested↔view). *)

type prim = U8 | Varint | Zigzag | Bool | Float

type t =
  | Prim of prim
  | Const of int
      (** a literal byte ([Writer.u8 w 3]) — tag bytes surface as these *)
  | Framed of string option
      (** length-prefixed blob: [Writer.string]/[Reader.string], a bare
          [Reader.view], or — with the sub-codec's key — [Writer.nested f]
          / [f (Reader.view r)] *)
  | Opt of t list  (** [option] combinator: presence bool + maybe body *)
  | Rep of t list  (** [list] combinator: varint count + repeated body *)
  | Loop of t list
      (** repetition whose count is accounted for elsewhere: manual
          iteration ([Map.iter], [let rec] decode loops, for/while) *)
  | Call of string  (** same-sink delegation to another codec body *)
  | Branch of t list list  (** data-dependent alternatives (if/match) *)
  | Switch of switch
  | Opaque of string
      (** unliftable constructs; compares equal to anything (soundness
          limit, surfaced separately as [mirror-opaque]) *)

and switch = {
  sw_tag : prim option;
      (** reader-style dispatch: the primitive consumed by the
          scrutinee; [None] for writer-style constructor dispatch *)
  sw_cases : case list;
  sw_default : default;
}

and case = {
  c_tag : int option;
      (** reader: the dispatched constant; writer: extracted from the
          case's leading [Const] by {!Check} *)
  c_label : string;  (** constructor name, or the printed tag *)
  c_items : t list;
}

and default = No_default | Truncates | Default_other of string

(** A raw diagnostic produced during lifting or checking, before
    severity/exemption filtering. *)
type finding = {
  f_rule : string;
  f_loc : Location.t;
  f_alt_file : string option;
      (** second file involved (the other half of a pair) — exempting
          either file silences the finding *)
  f_msg : string;
  f_chain : string list;
}

val finding :
  ?alt_file:string -> rule:string -> Location.t -> string ->
  ?chain:string list -> unit -> finding

val prim_name : prim -> string

val to_string : t -> string
(** Compact rendering of one item: ["u8 3"], ["list(zigzag)"],
    ["bytes<Client_msg.write>"], ["switch{0,1,2}"]. *)

val render : t list -> string
(** Items joined with [" · "]; ["ε"] when empty. *)

val normalize : t list -> t list
(** Canonical form for comparison: [Rep sub] becomes
    [Prim Varint; Loop sub] so combinator-style and manual
    count-plus-loop codecs compare equal; single-alternative and
    all-equal [Branch]es collapse; a [Loop] whose body is a two-way
    branch with one empty arm (the recursion's termination test) keeps
    only the live arm. *)
