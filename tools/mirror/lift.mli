(** Abstract interpreter lifting a typedtree codec body into its
    symbolic byte shape.

    A body qualifies as a codec body when lifting it produces at least
    one shape item, i.e. it calls a [Codec.Writer] or [Codec.Reader]
    primitive (directly, through a combinator sub-function, a local
    helper, or by passing a sink to another codec body).  Sinks are
    recognized by type ([Codec.Writer.t] / [Codec.Reader.t]), so bodies
    that create their own sink ([let w = Writer.create () in ...]) are
    lifted the same as bodies taking one as a parameter. *)

type body = {
  b_key : string;  (** canonical key, e.g. ["Wire.write"] *)
  b_loc : Location.t;
  b_items : Shape.t list;  (** un-normalized lifted shape *)
  b_writer : bool;  (** touches a [Codec.Writer] sink *)
  b_reader : bool;  (** touches a [Codec.Reader] sink *)
  b_codec_name : string option;  (** [[@@rsmr.codec "Name"]] pairing *)
  b_oneway : bool;  (** [[@@rsmr.codec.oneway]]: canonical encoder *)
}

val lift_binding :
  note:(Shape.finding -> unit) ->
  env:Rsmr_tt.Tt.env ->
  key:string ->
  Typedtree.value_binding ->
  body option
(** [None] when the binding produces no shape items or never touches a
    sink (not a codec body — value-level tag matches like
    [tag_of_encoded] lift to switches but read no sink).
    [note] receives lift-time findings: [mirror-opaque] for constructs
    the abstraction cannot see through, [mirror-eval-order] for two or
    more effectful codec operations in sibling positions whose
    evaluation order OCaml leaves unspecified. *)
