(** Compare the normalized shapes of a write/read pair.

    Findings go to [note]:
    - [mirror-shape]: per-position divergence between what the encoder
      writes and what the decoder reads, with the shortest witness chain
      leading to the first differing item at each nesting level;
    - [mirror-tag]: encoder/decoder tag-set disagreement (duplicate
      tags, tags written but never dispatched, tags dispatched but never
      written, a dispatch case that writes no leading tag byte);
    - [mirror-default]: a decoder tag dispatch whose wildcard branch
      does not raise [Codec.Truncated] (or is missing entirely).

    [pairs_ok a b] answers whether keys [a] and [b] are two halves of a
    known codec pair, so [Writer.nested w Sub.write] compares equal to
    [Sub.read (Reader.view r)] and delegating [encode]/[decode] wrappers
    compare equal. *)

val check_pair :
  note:(Shape.finding -> unit) ->
  pairs_ok:(string -> string -> bool) ->
  writer:Lift.body ->
  reader:Lift.body ->
  unit

val check_reader_defaults : note:(Shape.finding -> unit) -> Lift.body -> unit
(** [mirror-default] scan over one reader body, independent of pairing,
    so even an unpaired decoder's tag dispatch must end in
    [raise Codec.Truncated]. *)
