(* Elastic scaling, platform edition: two composed shards over one shared
   node pool, each behind its own epoch chain, with the shard directory
   itself hosted on a composed RSMR instance (the paper's recursion).
   When the burst arrives we rebalance a node from the cold shard to the
   hot one — a rolling wedge→transfer→handoff on both shards — and move
   it back once load subsides.

     dune exec examples/elastic_scaling.exe

   (Scaling a majority-quorum shard out does not increase its write
   throughput — it increases fault tolerance; the point here is that the
   platform absorbs cross-shard rebalances while serving, and that
   endpoints that lose a shard's trail re-find it through the replicated
   directory, not a private oracle.) *)

module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Platform = Rsmr_shard.Platform.Core
module Keyspace = Rsmr_shard.Keyspace
module Driver = Rsmr_workload.Driver
module Tenant = Rsmr_workload.Tenant

let () =
  let engine = Engine.create ~seed:99 () in
  let pool = List.init 7 Fun.id in
  let n_keys = 2_000 in
  let pf =
    Platform.create ~engine ~pool
      ~shards:[ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]
      ~keyspace:(Keyspace.ranges ~shards:2 ~n_keys)
      ()
  in
  let cluster = Platform.cluster pf in

  Driver.preload ~cluster
    ~client:(Platform.first_client_id pf)
    ~commands:(Rsmr_workload.Kv_gen.preload_commands ~n_keys ~value_size:64)
    ~deadline:60.0 ();
  let t0 = Engine.now engine in

  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  let gen =
    Tenant.create ~rng ~tenants:20 ~keys_per_tenant:(n_keys / 20)
      ~read_ratio:0.9 ()
  in
  (* Ops reaction, scheduled up front: when the burst lands, lend shard 1
     a replica from shard 0; give it back after. *)
  ignore
    (Engine.at engine ~time:(t0 +. 4.0) (fun () ->
         Platform.rebalance pf ~node:2 ~from_:0 ~to_:1 ()));
  ignore
    (Engine.at engine ~time:(t0 +. 9.0) (fun () ->
         Platform.rebalance pf ~node:2 ~from_:1 ~to_:0 ()));
  (* A driver owns the cluster's reply slot, so phases run back-to-back:
     each is created when the previous one has drained.  Each phase gets
     its own client-id block — drivers restart seq numbering, so reusing
     ids would make later phases' (client, seq) pairs look like
     duplicates to the shards' session tables. *)
  let phase ~idx ~rate ~start ~duration =
    let stats =
      Driver.run_open ~cluster ~n_clients:8
        ~first_client_id:(Platform.first_client_id pf + 1 + (idx * 8))
        ~gen:(fun ~client:_ ~seq:_ -> Tenant.next gen)
        ~rate ~start:(t0 +. start) ~duration ()
    in
    Engine.run ~until:(t0 +. start +. duration +. 0.4) engine;
    stats
  in
  let calm1 = phase ~idx:0 ~rate:300.0 ~start:0.5 ~duration:3.5 in
  let burst = phase ~idx:1 ~rate:1500.0 ~start:4.5 ~duration:4.0 in
  let calm2 = phase ~idx:2 ~rate:300.0 ~start:9.0 ~duration:4.0 in
  Engine.run ~until:(t0 +. 20.0) engine;

  let report name (stats : Driver.stats) =
    Printf.printf "%-24s %6d done  %s\n" name stats.Driver.completed
      (Format.asprintf "%a" Histogram.pp_summary stats.Driver.latency)
  in
  Printf.printf "\nphase                    completions / latency\n";
  report "calm (3+3 replicas)" calm1;
  report "burst (shard1 at 4)" burst;
  report "calm (rebalanced back)" calm2;
  let members s =
    String.concat "," (List.map string_of_int (Platform.shard_members pf s))
  in
  Printf.printf
    "\nshard0 {%s}  shard1 {%s}  rebalances done: %d  dir regressions: %d\n"
    (members 0) (members 1)
    (Rsmr_sim.Counters.get (Platform.counters pf) "rebalances_done")
    (Platform.dir_epoch_regressions pf);
  assert (List.sort compare (Platform.shard_members pf 0) = [ 0; 1; 2 ]);
  assert (List.sort compare (Platform.shard_members pf 1) = [ 3; 4; 5 ]);
  assert (Rsmr_sim.Counters.get (Platform.counters pf) "rebalances_done" = 2);
  assert (Platform.dir_epoch_regressions pf = 0)
