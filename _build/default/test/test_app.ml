(* Tests for the codec and the state machines, including roundtrip
   properties for every command/response/snapshot encoding. *)

module Codec = Rsmr_app.Codec
module Kv = Rsmr_app.Kv
module Counter = Rsmr_app.Counter
module Bank = Rsmr_app.Bank
module Register = Rsmr_app.Register

(* --- codec --- *)

let test_codec_roundtrip_primitives () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 200;
  Codec.Writer.varint w 0;
  Codec.Writer.varint w 127;
  Codec.Writer.varint w 128;
  Codec.Writer.varint w 300_000_000;
  Codec.Writer.zigzag w (-42);
  Codec.Writer.zigzag w 42;
  Codec.Writer.bool w true;
  Codec.Writer.float w 3.14159;
  Codec.Writer.string w "hello";
  Codec.Writer.option w Codec.Writer.string None;
  Codec.Writer.option w Codec.Writer.string (Some "x");
  Codec.Writer.list w Codec.Writer.varint [ 1; 2; 3 ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 200 (Codec.Reader.u8 r);
  Alcotest.(check int) "varint 0" 0 (Codec.Reader.varint r);
  Alcotest.(check int) "varint 127" 127 (Codec.Reader.varint r);
  Alcotest.(check int) "varint 128" 128 (Codec.Reader.varint r);
  Alcotest.(check int) "varint big" 300_000_000 (Codec.Reader.varint r);
  Alcotest.(check int) "zigzag neg" (-42) (Codec.Reader.zigzag r);
  Alcotest.(check int) "zigzag pos" 42 (Codec.Reader.zigzag r);
  Alcotest.(check bool) "bool" true (Codec.Reader.bool r);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (Codec.Reader.float r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check (option string)) "none" None
    (Codec.Reader.option r Codec.Reader.string);
  Alcotest.(check (option string)) "some" (Some "x")
    (Codec.Reader.option r Codec.Reader.string);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (Codec.Reader.list r Codec.Reader.varint);
  Alcotest.(check bool) "at end" true (Codec.Reader.at_end r)

let test_codec_truncated () =
  let r = Codec.Reader.of_string "\x05ab" in
  Alcotest.check_raises "short string raises" Codec.Truncated (fun () ->
      ignore (Codec.Reader.string r))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound max_int)
    (fun n ->
      let w = Codec.Writer.create () in
      Codec.Writer.varint w n;
      Codec.Reader.varint (Codec.Reader.of_string (Codec.Writer.contents w)) = n)

let prop_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:500 QCheck.int (fun n ->
      let w = Codec.Writer.create () in
      Codec.Writer.zigzag w n;
      Codec.Reader.zigzag (Codec.Reader.of_string (Codec.Writer.contents w)) = n)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:200 QCheck.string (fun s ->
      let w = Codec.Writer.create () in
      Codec.Writer.string w s;
      Codec.Reader.string (Codec.Reader.of_string (Codec.Writer.contents w)) = s)

(* --- kv --- *)

let test_kv_semantics () =
  let t = Kv.init () in
  let t, r = Kv.apply t (Kv.Get "a") in
  Alcotest.(check bool) "missing get" true (r = Kv.Value None);
  let t, r = Kv.apply t (Kv.Put ("a", "1")) in
  Alcotest.(check bool) "put ok" true (r = Kv.Ok);
  let t, r = Kv.apply t (Kv.Get "a") in
  Alcotest.(check bool) "get after put" true (r = Kv.Value (Some "1"));
  let t, r = Kv.apply t (Kv.Cas ("a", Some "1", "2")) in
  Alcotest.(check bool) "cas success" true (r = Kv.Cas_result true);
  let t, r = Kv.apply t (Kv.Cas ("a", Some "1", "3")) in
  Alcotest.(check bool) "cas failure" true (r = Kv.Cas_result false);
  let t, _ = Kv.apply t (Kv.Append ("a", "x")) in
  let t, r = Kv.apply t (Kv.Get "a") in
  Alcotest.(check bool) "append" true (r = Kv.Value (Some "2x"));
  let t, _ = Kv.apply t (Kv.Delete "a") in
  let _, r = Kv.apply t (Kv.Get "a") in
  Alcotest.(check bool) "delete" true (r = Kv.Value None)

let test_kv_snapshot_roundtrip () =
  let t = ref (Kv.init ()) in
  for i = 0 to 99 do
    let s, _ = Kv.apply !t (Kv.Put (Printf.sprintf "k%03d" i, string_of_int i)) in
    t := s
  done;
  let restored = Kv.restore (Kv.snapshot !t) in
  Alcotest.(check int) "cardinality" 100 (Kv.cardinal restored);
  Alcotest.(check (option string)) "spot check" (Some "42")
    (Kv.find restored "k042")

let kv_command_gen =
  QCheck.Gen.(
    let key = map (Printf.sprintf "k%d") (int_bound 20) in
    let value = map (Printf.sprintf "v%d") (int_bound 1000) in
    oneof
      [
        map (fun k -> Kv.Get k) key;
        map2 (fun k v -> Kv.Put (k, v)) key value;
        map (fun k -> Kv.Delete k) key;
        map3 (fun k e v -> Kv.Cas (k, e, v)) key (option value) value;
        map2 (fun k v -> Kv.Append (k, v)) key value;
      ])

let prop_kv_command_roundtrip =
  QCheck.Test.make ~name:"kv command codec roundtrip" ~count:500
    (QCheck.make kv_command_gen) (fun c ->
      Kv.decode_command (Kv.encode_command c) = c)

let prop_kv_snapshot_roundtrip =
  QCheck.Test.make ~name:"kv snapshot roundtrip preserves state" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 50) (QCheck.make kv_command_gen))
    (fun cmds ->
      let final =
        List.fold_left (fun t c -> fst (Kv.apply t c)) (Kv.init ()) cmds
      in
      let restored = Kv.restore (Kv.snapshot final) in
      (* States agree iff every key matches; compare via snapshots which are
         canonically ordered by Map iteration. *)
      Kv.snapshot restored = Kv.snapshot final)

let prop_kv_apply_deterministic =
  QCheck.Test.make ~name:"kv apply is deterministic" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 30) (QCheck.make kv_command_gen))
    (fun cmds ->
      let run () =
        List.fold_left
          (fun (t, acc) c ->
            let t, r = Kv.apply t c in
            (t, r :: acc))
          (Kv.init (), [])
          cmds
      in
      let _, r1 = run () and _, r2 = run () in
      r1 = r2)

(* --- counter --- *)

let test_counter () =
  let t = Counter.init () in
  let t, r = Counter.apply t (Counter.Incr 5) in
  Alcotest.(check bool) "incr" true (r = Counter.Current 5);
  let t, r = Counter.apply t (Counter.Incr (-2)) in
  Alcotest.(check bool) "decr" true (r = Counter.Current 3);
  let _, r = Counter.apply t Counter.Read in
  Alcotest.(check bool) "read" true (r = Counter.Current 3);
  let restored = Counter.restore (Counter.snapshot t) in
  Alcotest.(check int) "snapshot" 3 (Counter.value restored)

(* --- bank --- *)

let test_bank_semantics () =
  let t = Bank.init () in
  let t, _ = Bank.apply t (Bank.Open ("alice", 100)) in
  let t, _ = Bank.apply t (Bank.Open ("bob", 50)) in
  let t, r = Bank.apply t (Bank.Transfer ("alice", "bob", 30)) in
  Alcotest.(check bool) "transfer ok" true (r = Bank.Ok);
  let t, r = Bank.apply t (Bank.Transfer ("alice", "bob", 1000)) in
  Alcotest.(check bool) "insufficient" true (r = Bank.Insufficient);
  let t, r = Bank.apply t (Bank.Transfer ("alice", "nobody", 1)) in
  Alcotest.(check bool) "no account" true (r = Bank.No_account);
  let _, r = Bank.apply t (Bank.Balance "bob") in
  Alcotest.(check bool) "balance" true (r = Bank.Amount 80);
  Alcotest.(check int) "total conserved" 150 (Bank.total t)

let bank_command_gen =
  QCheck.Gen.(
    let acct = map (Printf.sprintf "a%d") (int_bound 5) in
    oneof
      [
        map2 (fun a n -> Bank.Open (a, n)) acct (int_bound 100);
        map3
          (fun s d n -> Bank.Transfer (s, d, n))
          acct acct (int_bound 100);
        map (fun a -> Bank.Balance a) acct;
        return Bank.Total;
      ])

let prop_bank_transfer_conserves_total =
  QCheck.Test.make ~name:"transfers conserve total balance" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (QCheck.make bank_command_gen))
    (fun cmds ->
      (* Transfers and queries never change the total; only Open does. *)
      let _, ok =
        List.fold_left
          (fun (t, ok) c ->
            let before = Bank.total t in
            let t', _ = Bank.apply t c in
            let preserved =
              match c with
              | Bank.Open _ -> true
              | Bank.Transfer _ | Bank.Balance _ | Bank.Total ->
                Bank.total t' = before
            in
            (t', ok && preserved))
          (Bank.init (), true)
          cmds
      in
      ok)

let prop_bank_command_roundtrip =
  QCheck.Test.make ~name:"bank command codec roundtrip" ~count:300
    (QCheck.make bank_command_gen) (fun c ->
      Bank.decode_command (Bank.encode_command c) = c)

(* --- register --- *)

let test_register () =
  let t = Register.init () in
  let t, r = Register.apply t Register.Read in
  Alcotest.(check bool) "initial" true (r = Register.Value 0);
  let t, _ = Register.apply t (Register.Write 7) in
  let t, r = Register.apply t (Register.Cas (7, 9)) in
  Alcotest.(check bool) "cas hit" true (r = Register.Cas_result true);
  let _, r = Register.apply t (Register.Cas (7, 11)) in
  Alcotest.(check bool) "cas miss" true (r = Register.Cas_result false)

let register_command_gen =
  QCheck.Gen.(
    oneof
      [
        return Register.Read;
        map (fun v -> Register.Write v) (int_bound 100);
        map2 (fun e v -> Register.Cas (e, v)) (int_bound 100) (int_bound 100);
      ])

let prop_register_roundtrips =
  QCheck.Test.make ~name:"register codecs roundtrip" ~count:300
    (QCheck.make register_command_gen) (fun c ->
      let ok_cmd = Register.decode_command (Register.encode_command c) = c in
      let _, r = Register.apply (Register.init ()) c in
      let ok_resp = Register.decode_response (Register.encode_response r) = r in
      ok_cmd && ok_resp)

let () =
  Alcotest.run "app"
    [
      ( "codec",
        [
          Alcotest.test_case "primitives roundtrip" `Quick
            test_codec_roundtrip_primitives;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          QCheck_alcotest.to_alcotest prop_varint_roundtrip;
          QCheck_alcotest.to_alcotest prop_zigzag_roundtrip;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
        ] );
      ( "kv",
        [
          Alcotest.test_case "semantics" `Quick test_kv_semantics;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_kv_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_kv_command_roundtrip;
          QCheck_alcotest.to_alcotest prop_kv_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_kv_apply_deterministic;
        ] );
      ("counter", [ Alcotest.test_case "semantics" `Quick test_counter ]);
      ( "bank",
        [
          Alcotest.test_case "semantics" `Quick test_bank_semantics;
          QCheck_alcotest.to_alcotest prop_bank_transfer_conserves_total;
          QCheck_alcotest.to_alcotest prop_bank_command_roundtrip;
        ] );
      ( "register",
        [
          Alcotest.test_case "semantics" `Quick test_register;
          QCheck_alcotest.to_alcotest prop_register_roundtrips;
        ] );
    ]
