(* Tests for workload generators, schedules and the load drivers. *)

module Engine = Rsmr_sim.Engine
module Rng = Rsmr_sim.Rng
module Histogram = Rsmr_sim.Histogram
module Kv = Rsmr_app.Kv
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule
module KvService = Rsmr_core.Service.Make (Rsmr_app.Kv)

let test_uniform_bounds () =
  let rng = Rng.create 1 in
  let k = Keys.uniform ~n:10 in
  for _ = 1 to 1000 do
    let v = Keys.sample k rng in
    if v < 0 || v >= 10 then Alcotest.fail "uniform out of range"
  done

let test_zipf_skew () =
  let rng = Rng.create 2 in
  let k = Keys.zipf ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Keys.sample k rng in
    counts.(v) <- counts.(v) + 1
  done;
  (* Key 0 should dominate: with theta=0.99 over 100 keys it draws ~19%. *)
  Alcotest.(check bool) "head key is hot" true
    (float_of_int counts.(0) /. float_of_int n > 0.10);
  Alcotest.(check bool) "head hotter than mid" true (counts.(0) > counts.(50) * 5)

let test_zipf_theta_zero_is_uniform () =
  let rng = Rng.create 3 in
  let k = Keys.zipf ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    counts.(Keys.sample k rng) <- counts.(Keys.sample k rng) + 0;
    let v = Keys.sample k rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      if c < 700 || c > 1300 then
        Alcotest.failf "theta=0 not near-uniform: %d" c)
    counts

let test_kv_gen_mix () =
  let rng = Rng.create 4 in
  let gen =
    Kv_gen.create ~rng ~keys:(Keys.uniform ~n:50) ~read_ratio:0.7 ()
  in
  let reads = ref 0 and writes = ref 0 in
  for _ = 1 to 2000 do
    match Kv.decode_command (Kv_gen.next gen) with
    | Kv.Get _ -> incr reads
    | Kv.Put _ -> incr writes
    | Kv.Delete _ | Kv.Cas _ | Kv.Append _ -> Alcotest.fail "unexpected op"
  done;
  let ratio = float_of_int !reads /. 2000.0 in
  if ratio < 0.65 || ratio > 0.75 then Alcotest.failf "read ratio off: %f" ratio

let test_preload_commands () =
  let cmds = Kv_gen.preload_commands ~n_keys:5 ~value_size:10 in
  Alcotest.(check int) "five commands" 5 (List.length cmds);
  List.iter
    (fun c ->
      match Kv.decode_command c with
      | Kv.Put (_, v) -> Alcotest.(check int) "value size" 10 (String.length v)
      | _ -> Alcotest.fail "preload must be Put")
    cmds

let test_rolling_plan () =
  let universe = [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "step 0" [ 0; 1; 2 ]
    (Schedule.rolling_plan ~universe ~size:3 ~step:0);
  Alcotest.(check (list int)) "step 1" [ 1; 2; 3 ]
    (Schedule.rolling_plan ~universe ~size:3 ~step:1);
  Alcotest.(check (list int)) "wraps" [ 4; 0; 1 ]
    (Schedule.rolling_plan ~universe ~size:3 ~step:4)

let test_closed_loop_driver () =
  let engine = Engine.create ~seed:9 () in
  let svc = KvService.create ~engine ~members:[ 0; 1; 2 ] () in
  let cluster = KvService.cluster svc in
  let rng = Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:100) () in
  let stats =
    Driver.run_closed ~cluster ~n_clients:4 ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:0.5 ~duration:3.0 ()
  in
  Engine.run ~until:10.0 engine;
  Alcotest.(check bool) "work happened" true (stats.Driver.completed > 100);
  Alcotest.(check bool) "closed loop: completed ~ submitted" true
    (stats.Driver.submitted - stats.Driver.completed <= 4);
  Alcotest.(check bool) "latencies recorded" true
    (Histogram.count stats.Driver.latency = stats.Driver.completed);
  (* LAN + paxos round trip: median latency should be around a millisecond,
     definitely under 20ms when healthy. *)
  Alcotest.(check bool) "sane median latency" true
    (Histogram.percentile stats.Driver.latency 50.0 < 0.020)

let test_open_loop_driver_rate () =
  let engine = Engine.create ~seed:10 () in
  let svc = KvService.create ~engine ~members:[ 0; 1; 2 ] () in
  let cluster = KvService.cluster svc in
  let rng = Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:100) () in
  let stats =
    Driver.run_open ~cluster ~n_clients:8 ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~rate:200.0 ~start:0.5 ~duration:4.0 ()
  in
  Engine.run ~until:15.0 engine;
  (* 200 req/s for 4 s ~ 800 submissions, Poisson noise aside. *)
  Alcotest.(check bool) "rate roughly honored" true
    (stats.Driver.submitted > 600 && stats.Driver.submitted < 1000);
  Alcotest.(check bool) "vast majority completed" true
    (stats.Driver.completed > stats.Driver.submitted * 9 / 10)

let test_preload_driver () =
  let engine = Engine.create ~seed:11 () in
  let svc = KvService.create ~engine ~members:[ 0; 1; 2 ] () in
  let cluster = KvService.cluster svc in
  Driver.preload ~cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:200 ~value_size:32)
    ~deadline:60.0 ();
  match KvService.app_state svc 0 with
  | Some st -> Alcotest.(check int) "all keys installed" 200 (Kv.cardinal st)
  | None -> Alcotest.fail "no state"

let () =
  Alcotest.run "workload"
    [
      ( "keys",
        [
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf theta=0" `Quick test_zipf_theta_zero_is_uniform;
        ] );
      ( "gen",
        [
          Alcotest.test_case "kv mix" `Quick test_kv_gen_mix;
          Alcotest.test_case "preload commands" `Quick test_preload_commands;
        ] );
      ( "schedule",
        [ Alcotest.test_case "rolling plan" `Quick test_rolling_plan ] );
      ( "driver",
        [
          Alcotest.test_case "closed loop" `Quick test_closed_loop_driver;
          Alcotest.test_case "open loop rate" `Quick test_open_loop_driver_rate;
          Alcotest.test_case "preload" `Quick test_preload_driver;
        ] );
    ]
