test/test_smr.ml: Alcotest Array Fun List Option Printf QCheck QCheck_alcotest Rsmr_net Rsmr_sim Rsmr_smr
