test/test_raft.mli:
