test/test_vr.ml: Alcotest Array Fun Hashtbl List Option Printf QCheck QCheck_alcotest Rsmr_app Rsmr_core Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr
