test/test_core.ml: Alcotest Char Hashtbl List Option Printf QCheck QCheck_alcotest Rsmr_app Rsmr_client Rsmr_core Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr String
