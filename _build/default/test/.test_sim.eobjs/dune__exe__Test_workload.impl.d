test/test_workload.ml: Alcotest Array List Rsmr_app Rsmr_core Rsmr_sim Rsmr_workload String
