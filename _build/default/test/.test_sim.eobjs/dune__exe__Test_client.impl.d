test/test_client.ml: Alcotest List Rsmr_client Rsmr_net Rsmr_sim
