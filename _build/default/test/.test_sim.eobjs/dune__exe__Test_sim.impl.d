test/test_sim.ml: Alcotest Array Fun Gen List QCheck QCheck_alcotest Rsmr_sim
