test/test_smr.mli:
