test/test_checker.mli:
