test/test_vr.mli:
