test/test_client.mli:
