test/test_app.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Rsmr_app
