test/test_raft.ml: Alcotest Hashtbl List Option Printf QCheck QCheck_alcotest Rsmr_app Rsmr_baselines Rsmr_iface Rsmr_net Rsmr_sim
