test/test_app.mli:
