test/test_checker.ml: Alcotest List Rsmr_app Rsmr_baselines Rsmr_checker Rsmr_core Rsmr_sim Rsmr_smr Rsmr_workload
