test/test_net.ml: Alcotest Array List QCheck QCheck_alcotest Rsmr_net Rsmr_sim String
