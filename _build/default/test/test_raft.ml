(* Tests for the natively-reconfigurable Raft baseline: elections,
   replication, compaction + InstallSnapshot, single-server membership
   changes and full fleet replacement. *)

module Engine = Rsmr_sim.Engine
module Counters = Rsmr_sim.Counters
module Node_id = Rsmr_net.Node_id
module Kv = Rsmr_app.Kv
module Counter = Rsmr_app.Counter
module Raft_log = Rsmr_baselines.Raft_log
module Raft_msg = Rsmr_baselines.Raft_msg
module KvRaft = Rsmr_baselines.Raft.Make (Rsmr_app.Kv)
module CtrRaft = Rsmr_baselines.Raft.Make (Rsmr_app.Counter)

(* --- log units --- *)

let entry term payload = { Raft_log.term; payload }

let test_log_append_get () =
  let l = Raft_log.create () in
  Alcotest.(check int) "empty last" 0 (Raft_log.last_index l);
  let i1 = Raft_log.append l (entry 1 Raft_log.Noop) in
  Alcotest.(check int) "first index is 1" 1 i1;
  let _ = Raft_log.append l (entry 1 (Raft_log.App { client = 9; seq = 1; low_water = 0; cmd = "c" })) in
  Alcotest.(check int) "last" 2 (Raft_log.last_index l);
  Alcotest.(check (option int)) "term at 1" (Some 1) (Raft_log.term_at l 1);
  Alcotest.(check (option int)) "term at base" (Some 0) (Raft_log.term_at l 0);
  Alcotest.(check (option int)) "term beyond" None (Raft_log.term_at l 3)

let test_log_truncate () =
  let l = Raft_log.create () in
  for i = 1 to 5 do
    ignore (Raft_log.append l (entry i Raft_log.Noop))
  done;
  Raft_log.truncate_from l 3;
  Alcotest.(check int) "truncated" 2 (Raft_log.last_index l);
  let i = Raft_log.append l (entry 9 Raft_log.Noop) in
  Alcotest.(check int) "append after truncate" 3 i;
  Alcotest.(check (option int)) "new term" (Some 9) (Raft_log.term_at l 3)

let test_log_compaction () =
  let l = Raft_log.create () in
  for i = 1 to 10 do
    ignore (Raft_log.append l (entry ((i / 3) + 1) Raft_log.Noop))
  done;
  Raft_log.compact_to l 6;
  Alcotest.(check int) "base moved" 6 (Raft_log.base_index l);
  Alcotest.(check int) "last unchanged" 10 (Raft_log.last_index l);
  Alcotest.(check (option int)) "below base inaccessible" None
    (Raft_log.term_at l 5);
  Alcotest.(check bool) "entries above base alive" true
    (Raft_log.get l 7 <> None);
  let entries = Raft_log.entries_from l 1 ~max:100 in
  Alcotest.(check (list int)) "entries_from clamps to base+1" [ 7; 8; 9; 10 ]
    (List.map fst entries)

let test_log_latest_config () =
  let l = Raft_log.create () in
  ignore (Raft_log.append l (entry 1 Raft_log.Noop));
  Alcotest.(check bool) "no config" true (Raft_log.latest_config l = None);
  ignore (Raft_log.append l (entry 1 (Raft_log.Config [ 0; 1 ])));
  ignore (Raft_log.append l (entry 1 Raft_log.Noop));
  ignore (Raft_log.append l (entry 2 (Raft_log.Config [ 0; 1; 2 ])));
  Alcotest.(check bool) "latest config" true
    (Raft_log.latest_config l = Some [ 0; 1; 2 ]);
  Raft_log.truncate_from l 4;
  Alcotest.(check bool) "config reverts on truncation" true
    (Raft_log.latest_config l = Some [ 0; 1 ])

let test_msg_roundtrip () =
  let cases =
    [
      Raft_msg.Request_vote { term = 3; last_index = 10; last_term = 2 };
      Raft_msg.Vote { term = 3; granted = true };
      Raft_msg.Append
        {
          term = 4;
          prev_index = 9;
          prev_term = 3;
          entries =
            [
              (10, entry 4 Raft_log.Noop);
              (11, entry 4 (Raft_log.App { client = 7; seq = 2; low_water = 1; cmd = "x" }));
              (12, entry 4 (Raft_log.Config [ 1; 2; 3 ]));
            ];
          commit = 9;
        };
      Raft_msg.Append_reply { term = 4; success = false; match_index = 5 };
      Raft_msg.Install_snapshot
        {
          term = 4;
          last_index = 20;
          last_term = 3;
          members = [ 1; 2 ];
          offset = 128;
          data = "blob";
          is_last = true;
        };
      Raft_msg.Snapshot_chunk_ok { term = 4; offset = 192 };
      Raft_msg.Snapshot_reply { term = 4; last_index = 20 };
    ]
  in
  List.iter
    (fun m ->
      if Raft_msg.decode (Raft_msg.encode m) <> m then
        Alcotest.failf "roundtrip failed for %a" Raft_msg.pp m)
    cases

(* --- end-to-end harness --- *)

type harness = {
  engine : Engine.t;
  svc : KvRaft.t;
  cluster : Rsmr_iface.Cluster.t;
  replies : (Node_id.t * int, string) Hashtbl.t;
}

let run_until h ~deadline pred =
  let rec loop horizon =
    Engine.run ~until:horizon h.engine;
    if pred () then ()
    else if horizon >= deadline then
      Alcotest.failf "condition not reached by t=%g" deadline
    else loop (horizon +. 0.05)
  in
  loop (Engine.now h.engine +. 0.05)

let harness ?(seed = 1) ?drop ?snapshot_threshold ?universe ~members ~clients () =
  let engine = Engine.create ~seed () in
  let svc =
    KvRaft.create ~engine ?drop ?snapshot_threshold ?universe ~members ()
  in
  let cluster = KvRaft.cluster svc in
  let replies = Hashtbl.create 64 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client ~seq ~rsp ->
      Hashtbl.replace replies (client, seq) rsp);
  List.iter cluster.Rsmr_iface.Cluster.add_client clients;
  { engine; svc; cluster; replies }

let submit h ~client ~seq cmd =
  h.cluster.Rsmr_iface.Cluster.submit ~client ~seq ~cmd:(Kv.encode_command cmd)

let reply_of h ~client ~seq =
  Option.map Kv.decode_response (Hashtbl.find_opt h.replies (client, seq))

let has_reply h ~client ~seq = Hashtbl.mem h.replies (client, seq)
let c1 = 100

let test_election_and_command () =
  let h = harness ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  submit h ~client:c1 ~seq:1 (Kv.Put ("a", "1"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  Alcotest.(check bool) "put acked" true (reply_of h ~client:c1 ~seq:1 = Some Kv.Ok);
  Alcotest.(check bool) "a leader exists" true (KvRaft.leader h.svc <> None);
  submit h ~client:c1 ~seq:2 (Kv.Get "a");
  run_until h ~deadline:10.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "get sees put" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "1")))

let test_replicas_converge () =
  let h = harness ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  for i = 1 to 30 do
    submit h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%d" i, string_of_int i))
  done;
  run_until h ~deadline:15.0 (fun () ->
      List.for_all (fun i -> has_reply h ~client:c1 ~seq:i)
        (List.init 30 (fun i -> i + 1)));
  (* All replicas converge to the same state. *)
  run_until h ~deadline:25.0 (fun () ->
      List.for_all
        (fun n ->
          match KvRaft.app_state h.svc n with
          | Some st -> Kv.cardinal st = 30
          | None -> false)
        [ 0; 1; 2 ]);
  let snap n =
    match KvRaft.app_state h.svc n with
    | Some st -> Kv.snapshot st
    | None -> ""
  in
  Alcotest.(check string) "0=1" (snap 0) (snap 1);
  Alcotest.(check string) "1=2" (snap 1) (snap 2)

let test_leader_crash_failover () =
  let h = harness ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  submit h ~client:c1 ~seq:1 (Kv.Put ("pre", "crash"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  let l0 =
    match KvRaft.leader h.svc with Some l -> l | None -> Alcotest.fail "no leader"
  in
  h.cluster.Rsmr_iface.Cluster.crash l0;
  submit h ~client:c1 ~seq:2 (Kv.Put ("post", "crash"));
  run_until h ~deadline:20.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  submit h ~client:c1 ~seq:3 (Kv.Get "pre");
  run_until h ~deadline:25.0 (fun () -> has_reply h ~client:c1 ~seq:3);
  Alcotest.(check bool) "history survives failover" true
    (reply_of h ~client:c1 ~seq:3 = Some (Kv.Value (Some "crash")))

let test_exactly_once_retry () =
  let engine = Engine.create ~seed:7 () in
  let svc = CtrRaft.create ~engine ~members:[ 0; 1; 2 ] () in
  let cluster = CtrRaft.cluster svc in
  let replies = Hashtbl.create 8 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq ~rsp ->
      Hashtbl.replace replies seq rsp);
  cluster.Rsmr_iface.Cluster.add_client c1;
  let incr = Counter.encode_command (Counter.Incr 1) in
  cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:1 ~cmd:incr;
  ignore
    (Engine.schedule engine ~delay:0.8 (fun () ->
         cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:1 ~cmd:incr));
  Engine.run ~until:4.0 engine;
  cluster.Rsmr_iface.Cluster.submit ~client:c1 ~seq:2
    ~cmd:(Counter.encode_command Counter.Read);
  Engine.run ~until:8.0 engine;
  match Hashtbl.find_opt replies 2 with
  | Some rsp ->
    let (Counter.Current v) = Counter.decode_response rsp in
    Alcotest.(check int) "applied exactly once" 1 v
  | None -> Alcotest.fail "no read reply"

let test_add_server () =
  let h =
    harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3 ] ~clients:[ c1 ] ()
  in
  submit h ~client:c1 ~seq:1 (Kv.Put ("x", "1"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 0; 1; 2; 3 ];
  run_until h ~deadline:20.0 (fun () ->
      match KvRaft.leader h.svc with
      | Some l -> KvRaft.config_of h.svc l = Some [ 0; 1; 2; 3 ]
      | None -> false);
  (* The new server catches up and holds the data. *)
  run_until h ~deadline:30.0 (fun () ->
      match KvRaft.app_state h.svc 3 with
      | Some st -> Kv.find st "x" = Some "1"
      | None -> false)

let test_remove_server () =
  let h = harness ~members:[ 0; 1; 2; 3; 4 ] ~clients:[ c1 ] () in
  submit h ~client:c1 ~seq:1 (Kv.Put ("x", "1"));
  run_until h ~deadline:5.0 (fun () -> has_reply h ~client:c1 ~seq:1);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 0; 1; 2 ];
  run_until h ~deadline:20.0 (fun () ->
      match KvRaft.leader h.svc with
      | Some l -> KvRaft.config_of h.svc l = Some [ 0; 1; 2 ]
      | None -> false);
  submit h ~client:c1 ~seq:2 (Kv.Get "x");
  run_until h ~deadline:30.0 (fun () -> has_reply h ~client:c1 ~seq:2);
  Alcotest.(check bool) "shrunk cluster serves" true
    (reply_of h ~client:c1 ~seq:2 = Some (Kv.Value (Some "1")))

let test_full_replacement () =
  let h =
    harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ] ~clients:[ c1 ]
      ()
  in
  for i = 1 to 5 do
    submit h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%d" i, "v"))
  done;
  run_until h ~deadline:10.0 (fun () -> has_reply h ~client:c1 ~seq:5);
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  run_until h ~deadline:60.0 (fun () ->
      match KvRaft.leader h.svc with
      | Some l ->
        List.mem l [ 3; 4; 5 ] && KvRaft.config_of h.svc l = Some [ 3; 4; 5 ]
      | None -> false);
  submit h ~client:c1 ~seq:6 (Kv.Get "k3");
  run_until h ~deadline:90.0 (fun () -> has_reply h ~client:c1 ~seq:6);
  Alcotest.(check bool) "data crossed replacement" true
    (reply_of h ~client:c1 ~seq:6 = Some (Kv.Value (Some "v")));
  (* Old nodes end up out of the configuration (halted or at least not
     leading). *)
  match KvRaft.leader h.svc with
  | Some l -> Alcotest.(check bool) "leader is a new node" true (List.mem l [ 3; 4; 5 ])
  | None -> Alcotest.fail "no leader at end"

let test_compaction_and_install_snapshot () =
  let h =
    harness ~snapshot_threshold:32 ~members:[ 0; 1; 2 ]
      ~universe:[ 0; 1; 2; 3 ] ~clients:[ c1 ] ()
  in
  for i = 1 to 100 do
    submit h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%03d" i, "v"))
  done;
  run_until h ~deadline:30.0 (fun () ->
      List.for_all (fun i -> has_reply h ~client:c1 ~seq:i)
        (List.init 100 (fun i -> i + 1)));
  (* Compaction must have happened somewhere. *)
  run_until h ~deadline:40.0 (fun () ->
      Counters.get (KvRaft.counters h.svc) "compactions" > 0);
  (* Now add a fresh server: it is too far behind the compacted logs and
     must be fed an InstallSnapshot. *)
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 0; 1; 2; 3 ];
  run_until h ~deadline:80.0 (fun () ->
      match KvRaft.app_state h.svc 3 with
      | Some st -> Kv.cardinal st = 100
      | None -> false);
  Alcotest.(check bool) "snapshot was shipped" true
    (Counters.get (KvRaft.counters h.svc) "snapshots_installed" >= 1)

let test_commit_under_loss () =
  let h = harness ~seed:5 ~drop:0.08 ~members:[ 0; 1; 2 ] ~clients:[ c1 ] () in
  for i = 1 to 15 do
    submit h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%d" i, "v"))
  done;
  run_until h ~deadline:60.0 (fun () ->
      List.for_all (fun i -> has_reply h ~client:c1 ~seq:i)
        (List.init 15 (fun i -> i + 1)))

let prop_log_prefix_agreement =
  QCheck.Test.make ~name:"kv state converges under crash + loss" ~count:10
    QCheck.(pair small_int (float_range 0.0 0.08))
    (fun (seed, drop) ->
      let h = harness ~seed:(seed + 1) ~drop ~members:[ 0; 1; 2; 3; 4 ] ~clients:[ c1 ] () in
      for i = 1 to 20 do
        ignore
          (Engine.schedule h.engine
             ~delay:(0.3 +. (float_of_int i *. 0.08))
             (fun () ->
               submit h ~client:c1 ~seq:i (Kv.Put (Printf.sprintf "k%d" i, "v"))))
      done;
      ignore
        (Engine.schedule h.engine ~delay:1.0 (fun () ->
             h.cluster.Rsmr_iface.Cluster.crash (seed mod 5)));
      Engine.run ~until:60.0 h.engine;
      (* All replies arrived despite the crash. *)
      List.for_all (fun i -> has_reply h ~client:c1 ~seq:i)
        (List.init 20 (fun i -> i + 1)))

let () =
  Alcotest.run "raft"
    [
      ( "log",
        [
          Alcotest.test_case "append/get" `Quick test_log_append_get;
          Alcotest.test_case "truncate" `Quick test_log_truncate;
          Alcotest.test_case "compaction" `Quick test_log_compaction;
          Alcotest.test_case "latest config" `Quick test_log_latest_config;
          Alcotest.test_case "msg roundtrip" `Quick test_msg_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "election and command" `Quick
            test_election_and_command;
          Alcotest.test_case "replicas converge" `Quick test_replicas_converge;
          Alcotest.test_case "leader crash failover" `Quick
            test_leader_crash_failover;
          Alcotest.test_case "exactly-once retry" `Quick test_exactly_once_retry;
          Alcotest.test_case "commit under loss" `Quick test_commit_under_loss;
          QCheck_alcotest.to_alcotest prop_log_prefix_agreement;
        ] );
      ( "membership",
        [
          Alcotest.test_case "add server" `Quick test_add_server;
          Alcotest.test_case "remove server" `Quick test_remove_server;
          Alcotest.test_case "full replacement" `Quick test_full_replacement;
          Alcotest.test_case "compaction + install snapshot" `Quick
            test_compaction_and_install_snapshot;
        ] );
    ]
