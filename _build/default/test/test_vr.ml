(* Tests for the static Viewstamped Replication building block, standalone
   and — the point of the paper — composed into the reconfigurable service
   by the SAME composition layer that drives Multi-Paxos. *)

module Engine = Rsmr_sim.Engine
module Network = Rsmr_net.Network
module Params = Rsmr_smr.Params
module Config = Rsmr_smr.Config
module Vr = Rsmr_smr.Vr
module Kv = Rsmr_app.Kv
module KvOnVr = Rsmr_core.Service.Make_on (Rsmr_smr.Vr) (Rsmr_app.Kv)

let test_msg_roundtrip () =
  let cases =
    [
      Vr.Msg.Request { value = "v" };
      Vr.Msg.Prepare { view = 2; op = 7; value = "x"; commit = 6 };
      Vr.Msg.Prepare_ok { view = 2; op = 7 };
      Vr.Msg.Commit { view = 2; commit = 7 };
      Vr.Msg.Start_view_change { view = 3 };
      Vr.Msg.Do_view_change
        { view = 3; log = [ "a"; "b" ]; last_normal = 2; commit = 1 };
      Vr.Msg.Start_view { view = 3; log = [ "a"; "b" ]; commit = 2 };
      Vr.Msg.Get_state { view = 3; from = 5 };
      Vr.Msg.New_state { view = 3; from = 5; ops = [ "c" ]; commit = 6 };
    ]
  in
  List.iter
    (fun m ->
      if Vr.Msg.decode (Vr.Msg.encode m) <> m then
        Alcotest.failf "vr msg roundtrip failed (%s)" (Vr.Msg.tag m))
    cases

(* --- standalone cluster harness --- *)

module Cluster = struct
  type t = {
    engine : Engine.t;
    net : Vr.Msg.t Network.t;
    replicas : Vr.t array;
    decided : (int * string) list ref array;
  }

  let create ?(seed = 1) ?(drop = 0.0) n =
    let engine = Engine.create ~seed () in
    let net = Network.create engine ~drop ~sizer:Vr.Msg.size () in
    let cfg = Config.make ~instance_id:0 ~members:(List.init n Fun.id) in
    let decided = Array.init n (fun _ -> ref []) in
    let replicas =
      Array.init n (fun i ->
          Vr.create ~engine ~params:Params.default ~config:cfg ~me:i
            ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
            ~on_decide:(fun idx v -> decided.(i) := (idx, v) :: !(decided.(i)))
            ())
    in
    Array.iteri
      (fun i r ->
        Network.register net i (fun env ->
            Vr.handle r ~src:env.Network.src env.Network.payload))
      replicas;
    { engine; net; replicas; decided }

  let decided_values t i = List.rev_map snd !(t.decided.(i))

  let primary t =
    Array.to_list t.replicas
    |> List.mapi (fun i r -> (i, r))
    |> List.find_opt (fun (i, r) ->
           Vr.is_leader r && not (Network.is_crashed t.net i))
end

let test_primary_is_immediate () =
  (* View 0's primary serves without any election. *)
  let c = Cluster.create 3 in
  Vr.submit c.Cluster.replicas.(0) "first";
  Engine.run ~until:1.0 c.Cluster.engine;
  Alcotest.(check (list string)) "decided at once" [ "first" ]
    (Cluster.decided_values c 0);
  Alcotest.(check bool) "node 0 is primary of view 0" true
    (Vr.is_leader c.Cluster.replicas.(0))

let test_replication_and_agreement () =
  let c = Cluster.create 5 in
  for i = 1 to 40 do
    Vr.submit c.Cluster.replicas.(0) (Printf.sprintf "op%02d" i)
  done;
  Engine.run ~until:5.0 c.Cluster.engine;
  let d0 = Cluster.decided_values c 0 in
  Alcotest.(check int) "all decided" 40 (List.length d0);
  for i = 1 to 4 do
    Alcotest.(check (list string)) "replicas agree" d0 (Cluster.decided_values c i)
  done

let test_backup_forwards () =
  let c = Cluster.create 3 in
  Vr.submit c.Cluster.replicas.(2) "via-backup";
  Engine.run ~until:2.0 c.Cluster.engine;
  Alcotest.(check (list string)) "forwarded and decided" [ "via-backup" ]
    (Cluster.decided_values c 2)

let test_view_change_on_primary_crash () =
  let c = Cluster.create 3 in
  Vr.submit c.Cluster.replicas.(0) "before";
  Engine.run ~until:1.0 c.Cluster.engine;
  Network.crash c.Cluster.net 0;
  Engine.run ~until:4.0 c.Cluster.engine;
  (match Cluster.primary c with
   | Some (p, r) ->
     Alcotest.(check bool) "new primary is a backup" true (p <> 0);
     Alcotest.(check bool) "view advanced" true (Vr.view r > 0);
     Vr.submit r "after"
   | None -> Alcotest.fail "no primary after view change");
  Engine.run ~until:8.0 c.Cluster.engine;
  Alcotest.(check (list string)) "history preserved" [ "before"; "after" ]
    (Cluster.decided_values c 1)

let test_commit_under_loss () =
  let c = Cluster.create ~seed:5 ~drop:0.08 3 in
  for i = 1 to 15 do
    Vr.submit c.Cluster.replicas.(0) (Printf.sprintf "lossy%02d" i)
  done;
  Engine.run ~until:30.0 c.Cluster.engine;
  (* The submitting node is the primary; entries may be lost on first send
     but the resend timer recovers them. *)
  let live =
    List.filter (fun i -> not (Network.is_crashed c.Cluster.net i)) [ 0; 1; 2 ]
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d converged" i)
        true
        (List.length (Cluster.decided_values c i) >= 15))
    live;
  (* Prefix agreement. *)
  let rec common_prefix a b =
    match (a, b) with
    | x :: xs, y :: ys -> x = y && common_prefix xs ys
    | _, [] | [], _ -> true
  in
  Alcotest.(check bool) "prefix agreement" true
    (common_prefix (Cluster.decided_values c 0) (Cluster.decided_values c 1))

let prop_vr_agreement =
  QCheck.Test.make ~name:"vr prefix agreement under loss + crash" ~count:15
    QCheck.(pair small_int (float_range 0.0 0.1))
    (fun (seed, drop) ->
      let c = Cluster.create ~seed:(seed + 1) ~drop 5 in
      for i = 0 to 19 do
        ignore
          (Engine.schedule c.Cluster.engine
             ~delay:(0.2 +. (float_of_int i *. 0.05))
             (fun () ->
               Vr.submit c.Cluster.replicas.(i mod 5) (Printf.sprintf "p%02d" i)))
      done;
      ignore
        (Engine.schedule c.Cluster.engine ~delay:0.7 (fun () ->
             Network.crash c.Cluster.net (seed mod 5)));
      Engine.run ~until:30.0 c.Cluster.engine;
      let decided = List.init 5 (Cluster.decided_values c) in
      let rec common_prefix a b =
        match (a, b) with
        | x :: xs, y :: ys -> x = y && common_prefix xs ys
        | _, [] | [], _ -> true
      in
      List.for_all
        (fun a -> List.for_all (fun b -> common_prefix a b) decided)
        decided)

(* --- the reconfigurable service over the VR block --- *)

type harness = {
  engine : Engine.t;
  svc : KvOnVr.t;
  cluster : Rsmr_iface.Cluster.t;
  replies : (int * int, string) Hashtbl.t;
}

let vr_harness ?(seed = 1) ~members ~universe () =
  let engine = Engine.create ~seed () in
  let svc = KvOnVr.create ~engine ~members ~universe () in
  let cluster = KvOnVr.cluster svc in
  let replies = Hashtbl.create 32 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client ~seq ~rsp ->
      Hashtbl.replace replies (client, seq) rsp);
  cluster.Rsmr_iface.Cluster.add_client 100;
  { engine; svc; cluster; replies }

let run_until h ~deadline pred =
  let rec loop horizon =
    Engine.run ~until:horizon h.engine;
    if pred () then ()
    else if horizon >= deadline then
      Alcotest.failf "condition not reached by t=%g" deadline
    else loop (horizon +. 0.05)
  in
  loop (Engine.now h.engine +. 0.05)

let submit h ~seq cmd =
  h.cluster.Rsmr_iface.Cluster.submit ~client:100 ~seq
    ~cmd:(Kv.encode_command cmd)

let reply_of h ~seq =
  Option.map Kv.decode_response (Hashtbl.find_opt h.replies (100, seq))

let test_service_over_vr_basic () =
  let h = vr_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2 ] () in
  submit h ~seq:1 (Kv.Put ("block", "agnostic"));
  run_until h ~deadline:5.0 (fun () -> Hashtbl.mem h.replies (100, 1));
  submit h ~seq:2 (Kv.Get "block");
  run_until h ~deadline:10.0 (fun () -> Hashtbl.mem h.replies (100, 2));
  Alcotest.(check bool) "get sees put through VR" true
    (reply_of h ~seq:2 = Some (Kv.Value (Some "agnostic")))

let test_service_over_vr_reconfigures () =
  (* The headline: the SAME composition layer reconfigures a service built
     from a completely different black box. *)
  let h = vr_harness ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ] () in
  for i = 1 to 8 do
    submit h ~seq:i (Kv.Put (Printf.sprintf "k%d" i, string_of_int i))
  done;
  run_until h ~deadline:10.0 (fun () ->
      List.for_all (fun i -> Hashtbl.mem h.replies (100, i))
        (List.init 8 (fun i -> i + 1)));
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  run_until h ~deadline:60.0 (fun () -> KvOnVr.current_epoch h.svc = 1);
  submit h ~seq:9 (Kv.Get "k5");
  run_until h ~deadline:90.0 (fun () -> Hashtbl.mem h.replies (100, 9));
  Alcotest.(check bool) "state crossed the VR-block transfer" true
    (reply_of h ~seq:9 = Some (Kv.Value (Some "5")));
  (* New members hold the data. *)
  run_until h ~deadline:120.0 (fun () ->
      match KvOnVr.app_state h.svc 4 with
      | Some st -> Kv.cardinal st = 8
      | None -> false)

let test_service_over_vr_exactly_once () =
  let h = vr_harness ~seed:3 ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ] () in
  submit h ~seq:1 (Kv.Append ("acc", "x"));
  run_until h ~deadline:5.0 (fun () -> Hashtbl.mem h.replies (100, 1));
  (* Retry the same sequence around a reconfiguration. *)
  h.cluster.Rsmr_iface.Cluster.reconfigure [ 2; 3; 4 ];
  submit h ~seq:1 (Kv.Append ("acc", "x"));
  run_until h ~deadline:60.0 (fun () -> KvOnVr.current_epoch h.svc = 1);
  submit h ~seq:2 (Kv.Get "acc");
  run_until h ~deadline:90.0 (fun () -> Hashtbl.mem h.replies (100, 2));
  Alcotest.(check bool) "applied exactly once across blocks+reconfig" true
    (reply_of h ~seq:2 = Some (Kv.Value (Some "x")))

let () =
  Alcotest.run "vr"
    [
      ("msg", [ Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip ]);
      ( "protocol",
        [
          Alcotest.test_case "primary immediate" `Quick test_primary_is_immediate;
          Alcotest.test_case "replication+agreement" `Quick
            test_replication_and_agreement;
          Alcotest.test_case "backup forwards" `Quick test_backup_forwards;
          Alcotest.test_case "view change on crash" `Quick
            test_view_change_on_primary_crash;
          Alcotest.test_case "commit under loss" `Quick test_commit_under_loss;
          QCheck_alcotest.to_alcotest prop_vr_agreement;
        ] );
      ( "composition",
        [
          Alcotest.test_case "service over VR: basic" `Quick
            test_service_over_vr_basic;
          Alcotest.test_case "service over VR: reconfigures" `Quick
            test_service_over_vr_reconfigures;
          Alcotest.test_case "service over VR: exactly-once" `Quick
            test_service_over_vr_exactly_once;
        ] );
    ]
