(* Benchmark entry point.

   Default mode regenerates every experiment table/figure of the
   reproduction (DESIGN.md §3) as aligned text tables, then runs the
   Bechamel section: one [Test.make] per experiment table (a scaled-down
   run, so per-experiment cost is tracked like any other bench) plus
   micro-benchmarks of the hot substrate paths.

     dune exec bench/main.exe                 # full suite + bechamel
     dune exec bench/main.exe -- --quick      # scaled-down tables
     dune exec bench/main.exe -- f2 t2        # subset by experiment id
     dune exec bench/main.exe -- --bechamel   # bechamel section only
     dune exec bench/main.exe -- --tables     # tables only *)

module Registry = Rsmr_experiments.Registry
module Table = Rsmr_experiments.Table

let run_experiments ~quick ids =
  let entries =
    match ids with
    | [] -> Registry.all
    | ids ->
      List.filter_map
        (fun id ->
          match Registry.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment id: %s\n" id;
            None)
        ids
  in
  Printf.printf
    "Reconfigurable SMR from non-reconfigurable building blocks — evaluation \
     suite (%s mode)\n"
    (if quick then "quick" else "full");
  List.iter
    (fun (e : Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let table = e.Registry.run ~quick () in
      Table.print table;
      Printf.printf "  [%s finished in %.1fs wall]\n%!" e.Registry.id
        (Unix.gettimeofday () -. t0))
    entries

(* --- Bechamel --- *)

let bechamel_tests () =
  let open Bechamel in
  (* One Test.make per experiment table, running its quick variant. *)
  let experiment_tests =
    List.map
      (fun (e : Registry.entry) ->
        Test.make
          ~name:("table-" ^ String.lowercase_ascii e.Registry.id)
          (Staged.stage (fun () -> ignore (e.Registry.run ~quick:true ()))))
      Registry.all
  in
  let codec =
    let cmd = Rsmr_app.Kv.Put ("key00000042", String.make 64 'x') in
    Test.make ~name:"kv-command-codec-roundtrip"
      (Staged.stage (fun () ->
           ignore (Rsmr_app.Kv.decode_command (Rsmr_app.Kv.encode_command cmd))))
  in
  let histogram =
    let h = Rsmr_sim.Histogram.create () in
    Test.make ~name:"histogram-record"
      (Staged.stage (fun () -> Rsmr_sim.Histogram.record h 0.00123))
  in
  let engine =
    Test.make ~name:"engine-10k-timer-events"
      (Staged.stage (fun () ->
           let e = Rsmr_sim.Engine.create () in
           for i = 1 to 10_000 do
             ignore
               (Rsmr_sim.Engine.schedule e
                  ~delay:(float_of_int (i mod 97) /. 100.0)
                  (fun () -> ()))
           done;
           Rsmr_sim.Engine.run e))
  in
  let paxos =
    Test.make ~name:"core-100-commands-3-replicas"
      (Staged.stage (fun () ->
           let module KvCore = Rsmr_core.Service.Make (Rsmr_app.Kv) in
           let engine = Rsmr_sim.Engine.create ~seed:3 () in
           let svc = KvCore.create ~engine ~members:[ 0; 1; 2 ] () in
           let cluster = KvCore.cluster svc in
           Rsmr_workload.Driver.preload ~cluster ~client:99
             ~commands:
               (Rsmr_workload.Kv_gen.preload_commands ~n_keys:100 ~value_size:32)
             ~deadline:30.0 ()))
  in
  [ codec; histogram; engine; paxos ] @ experiment_tests

let run_bechamel () =
  let open Bechamel in
  print_endline "\n== Bechamel micro/meso benchmarks ==";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:40 ~quota:(Time.second 1.0) () in
  let grouped = Test.make_grouped ~name:"rsmr" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-45s %15s\n" name "-"
      else if ns > 1e9 then Printf.printf "%-45s %12.2f s/run\n" name (ns /. 1e9)
      else if ns > 1e6 then Printf.printf "%-45s %12.2f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "%-45s %12.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "%-45s %12.0f ns/run\n" name ns)
    rows

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let bechamel_only = List.mem "--bechamel" args in
  let tables_only = List.mem "--tables" args in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if bechamel_only then run_bechamel ()
  else begin
    run_experiments ~quick ids;
    if not tables_only then run_bechamel ()
  end
