(* T3 — Leader crash in the middle of a reconfiguration.
   The worst moment to lose a leader: the old configuration has wedged and
   the new one is still assembling state.  Both protocols must recover in
   about one election; the composed protocol additionally relies on
   surviving old members to keep serving the snapshot. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule

let id = "T3"
let title = "Leader crash during reconfiguration: recovery"

let run_one proto ~seed =
  let members = [ 0; 1; 2 ] and universe = Common.default_universe 6 in
  let setup = Common.make ~seed ~bandwidth:2.5e7 proto ~members ~universe in
  Driver.preload ~cluster:setup.Common.cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:5_000 ~value_size:100)
    ~deadline:120.0 ();
  let t0 = Engine.now setup.Common.engine in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:5_000) ~read_ratio:0.8 () in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:4
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration:40.0 ()
  in
  let t_rc = t0 +. 2.0 in
  Schedule.reconfigure_at setup.Common.cluster ~time:t_rc [ 3; 4; 5 ];
  (* Crash whoever leads shortly after the reconfiguration was submitted —
     mid-wedge / mid-transfer. *)
  let crash_time = t_rc +. 0.05 in
  Schedule.at setup.Common.cluster ~time:crash_time (fun () ->
      match setup.Common.leader () with
      | Some l -> setup.Common.cluster.Rsmr_iface.Cluster.crash l
      | None -> setup.Common.cluster.Rsmr_iface.Cluster.crash 0);
  let completion =
    Common.wait_for_live setup ~target:[ 3; 4; 5 ] ~deadline:(t_rc +. 90.0)
  in
  Common.run_to setup (t_rc +. 35.0);
  let outage = Common.downtime stats ~from_:crash_time ~window:30.0 in
  let comp = match completion with Some t -> t -. t_rc | None -> Float.nan in
  (outage, comp)

let run ?(quick = false) () =
  let seeds = if quick then [ 31 ] else [ 31; 32; 33 ] in
  let rows =
    List.concat_map
      (fun proto ->
        List.map
          (fun seed ->
            let outage, comp = run_one proto ~seed in
            [
              Common.proto_name proto;
              string_of_int seed;
              Table.cell_ms outage;
              (if Float.is_nan comp then "never" else Table.cell_f comp ^ "s");
            ])
          seeds)
      [ Common.Core; Common.Raft ]
  in
  Table.make ~id ~title
    ~headers:[ "protocol"; "seed"; "worst latency"; "reconf done" ]
    ~notes:
      [
        "leader crashed 50ms after the reconfiguration is submitted; 5k keys";
        "expected shape: both recover in ~ one election timeout; reconfig \
         still completes from surviving members";
      ]
    rows
