(* T2 — Unavailability window vs application state size.
   The speculative handoff claim, quantified: the composed protocol's
   client-visible outage should stay ~flat as the snapshot grows, because
   the new instance orders (and the old one answers reads... no — clients
   block, but only on execution) while the transfer streams; without
   speculation the outage grows linearly with state size. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver
module Schedule = Rsmr_workload.Schedule

let id = "T2"
let title = "Unavailability window vs state size (fleet replacement)"
let bandwidth = 5e6 (* 40 Mb/s: makes transfer time dominate *)

let run_one proto ~n_keys =
  let members = [ 0; 1; 2 ] and universe = Common.default_universe 6 in
  let setup = Common.make ~seed:23 ~bandwidth proto ~members ~universe in
  Driver.preload ~cluster:setup.Common.cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys ~value_size:100)
    ~deadline:300.0 ();
  let t0 = Engine.now setup.Common.engine in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:n_keys) ~read_ratio:0.8 () in
  let stats =
    Driver.run_closed ~cluster:setup.Common.cluster ~n_clients:4
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration:40.0 ()
  in
  let t_rc = t0 +. 2.0 in
  Schedule.reconfigure_at setup.Common.cluster ~time:t_rc [ 3; 4; 5 ];
  let completion =
    Common.wait_for_live setup ~target:[ 3; 4; 5 ] ~deadline:(t_rc +. 60.0)
  in
  Common.run_to setup (t_rc +. 35.0);
  let dt = Common.downtime stats ~from_:t_rc ~window:30.0 in
  let comp =
    match completion with Some t -> t -. t_rc | None -> Float.nan
  in
  (dt, comp)

let run ?(quick = false) () =
  let sizes = if quick then [ 500; 2_000 ] else [ 1_000; 10_000; 50_000 ] in
  let protos = [ Common.Core; Common.Core_nospec; Common.Stopworld; Common.Raft ] in
  let rows =
    List.map
      (fun n_keys ->
        let cells =
          List.concat_map
            (fun proto ->
              let dt, comp = run_one proto ~n_keys in
              [ Table.cell_ms dt; Table.cell_f comp ^ "s" ])
            protos
        in
        (Printf.sprintf "%.1fk keys (%.1f MB)"
           (float_of_int n_keys /. 1000.0)
           (float_of_int (n_keys * 112) /. 1e6))
        :: cells)
      sizes
  in
  Table.make ~id ~title
    ~headers:
      ("state"
       :: List.concat_map
            (fun p -> [ Common.proto_name p ^ " outage"; "done" ])
            protos)
    ~notes:
      [
        "outage = worst client latency in the 30s after the reconfig; done = \
         time until the target membership has an elected leader; 40Mb/s \
         uplinks; 100B values";
        "expected shape: core outage ~ transfer time (ordering overlaps, \
         execution must wait for the snapshot); nospec/stopworld add \
         election + client-retry rounds on top; raft keeps a serving quorum \
         during each single-server step so its outage stays small, at the \
         cost of the slowest completion";
      ]
    rows
